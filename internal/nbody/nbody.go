// Package nbody provides the gravitational N-body machinery the paper's
// evaluation runs: direct-summation forces (the baseline and accuracy
// reference for the treecode), initial-condition generators, a leapfrog
// integrator, energy diagnostics, flop accounting, and the density
// renderer that reproduces Figure 3's view of the 9.7-million-particle
// simulation.
package nbody

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/sim"
)

// FlopsPerInteraction is the flop-counting convention of the original
// treecode papers (monopole interaction with softening): the constant the
// authors' Gflop ratings — and therefore ours — are built on.
const FlopsPerInteraction = 38

// System is a particle set in struct-of-arrays layout.
type System struct {
	X, Y, Z    []float64
	VX, VY, VZ []float64
	AX, AY, AZ []float64
	M          []float64
	// Eps is the Plummer softening length.
	Eps float64
	// G is the gravitational constant (1 in model units).
	G float64
	// Interactions accumulates the pairwise interactions evaluated, for
	// flop accounting.
	Interactions uint64
}

// NewSystem allocates an n-particle system.
func NewSystem(n int) *System {
	return &System{
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		VX: make([]float64, n), VY: make([]float64, n), VZ: make([]float64, n),
		AX: make([]float64, n), AY: make([]float64, n), AZ: make([]float64, n),
		M:   make([]float64, n),
		Eps: 0.01,
		G:   1,
	}
}

// N returns the particle count.
func (s *System) N() int { return len(s.X) }

// Validate checks array consistency.
func (s *System) Validate() error {
	n := s.N()
	for _, a := range [][]float64{s.Y, s.Z, s.VX, s.VY, s.VZ, s.AX, s.AY, s.AZ, s.M} {
		if len(a) != n {
			return fmt.Errorf("nbody: inconsistent array lengths")
		}
	}
	if s.Eps < 0 {
		return fmt.Errorf("nbody: negative softening")
	}
	return nil
}

// NewUniformCube fills the unit cube with equal-mass particles
// (total mass 1), deterministically from the seed.
func NewUniformCube(n int, seed uint64) *System {
	s := NewSystem(n)
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		s.X[i] = rng.Float64()
		s.Y[i] = rng.Float64()
		s.Z[i] = rng.Float64()
		s.M[i] = 1 / float64(n)
	}
	return s
}

// NewPlummer samples the Plummer sphere (scale radius a, total mass 1),
// the standard stellar-dynamics initial condition, with virial-consistent
// velocities drawn by von Neumann rejection (Aarseth, Hénon & Wielen).
func NewPlummer(n int, a float64, seed uint64) *System {
	s := NewSystem(n)
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		// Radius from the inverse cumulative mass profile, with the
		// customary cut at 10a to avoid unbounded outliers.
		var r float64
		for {
			m := rng.Float64()
			for m == 0 {
				m = rng.Float64()
			}
			r = a / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
			if r <= 10*a {
				break
			}
		}
		x, y, z := randUnitVector(rng)
		s.X[i], s.Y[i], s.Z[i] = r*x, r*y, r*z
		// Speed by rejection against g(q) = q²(1-q²)^3.5.
		var q float64
		for {
			q = rng.Float64()
			g := q * q * math.Pow(1-q*q, 3.5)
			if rng.Float64()*0.1 < g {
				break
			}
		}
		ve := math.Sqrt2 * math.Pow(1+r*r/(a*a), -0.25) / math.Sqrt(a)
		v := q * ve
		vx, vy, vz := randUnitVector(rng)
		s.VX[i], s.VY[i], s.VZ[i] = v*vx, v*vy, v*vz
		s.M[i] = 1 / float64(n)
	}
	return s
}

func randUnitVector(rng *sim.RNG) (x, y, z float64) {
	for {
		x = 2*rng.Float64() - 1
		y = 2*rng.Float64() - 1
		z = 2*rng.Float64() - 1
		r2 := x*x + y*y + z*z
		if r2 > 0 && r2 <= 1 {
			r := math.Sqrt(r2)
			return x / r, y / r, z / r
		}
	}
}

// directGrain is the per-chunk particle count of the parallel direct
// loop (each particle already costs O(N) inner work).
const directGrain = 64

// DirectForces computes softened gravitational accelerations by direct
// summation — O(N²), the accuracy reference for the treecode. The outer
// loop runs on the process-wide host worker pool; each particle's inner
// accumulation is serial and unchanged, so results are bit-identical to
// a single-threaded run at any worker count.
func (s *System) DirectForces() { s.DirectForcesWith(par.Default()) }

// DirectForcesWith is DirectForces on an explicit worker pool.
func (s *System) DirectForcesWith(pool *par.Pool) {
	n := s.N()
	eps2 := s.Eps * s.Eps
	pool.For(n, directGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			xi, yi, zi := s.X[i], s.Y[i], s.Z[i]
			var ax, ay, az float64
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				dx := s.X[j] - xi
				dy := s.Y[j] - yi
				dz := s.Z[j] - zi
				r2 := dx*dx + dy*dy + dz*dz + eps2
				rinv := 1 / math.Sqrt(r2)
				rinv3 := s.G * s.M[j] * rinv * rinv * rinv
				ax += rinv3 * dx
				ay += rinv3 * dy
				az += rinv3 * dz
			}
			s.AX[i], s.AY[i], s.AZ[i] = ax, ay, az
		}
	})
	s.Interactions += uint64(n) * uint64(n-1)
}

// Flops returns the accumulated flop count under the treecode-paper
// convention.
func (s *System) Flops() uint64 {
	return s.Interactions * FlopsPerInteraction
}

// Forcer computes accelerations into the system's AX/AY/AZ arrays.
type Forcer interface {
	Forces(s *System) error
}

// DirectForcer adapts DirectForces to the Forcer interface.
type DirectForcer struct{}

// Forces implements Forcer.
func (DirectForcer) Forces(s *System) error {
	s.DirectForces()
	return nil
}

// Leapfrog advances the system by steps of size dt using kick-drift-kick,
// the symplectic integrator every production N-body code uses.
func (s *System) Leapfrog(f Forcer, dt float64, steps int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if dt <= 0 || steps < 0 {
		return fmt.Errorf("nbody: bad dt %v or steps %d", dt, steps)
	}
	if err := f.Forces(s); err != nil {
		return err
	}
	n := s.N()
	for step := 0; step < steps; step++ {
		for i := 0; i < n; i++ {
			s.VX[i] += 0.5 * dt * s.AX[i]
			s.VY[i] += 0.5 * dt * s.AY[i]
			s.VZ[i] += 0.5 * dt * s.AZ[i]
			s.X[i] += dt * s.VX[i]
			s.Y[i] += dt * s.VY[i]
			s.Z[i] += dt * s.VZ[i]
		}
		if err := f.Forces(s); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			s.VX[i] += 0.5 * dt * s.AX[i]
			s.VY[i] += 0.5 * dt * s.AY[i]
			s.VZ[i] += 0.5 * dt * s.AZ[i]
		}
	}
	return nil
}

// energyGrain is the fixed row-chunk size of the parallel potential
// sum. Fixed (never derived from the worker count) so chunk boundaries
// — and therefore the floating-point fold — are a pure function of n.
const energyGrain = 256

// Energy returns kinetic and potential energy (potential by direct
// summation with the same softening as the forces, so leapfrog
// conservation can be checked consistently). The O(n²) potential runs
// on the process-wide worker pool; see EnergyWith.
func (s *System) Energy() (kinetic, potential float64) {
	return s.EnergyWith(par.Default())
}

// EnergyWith is Energy over an explicit worker pool. The pair sum is
// chunked by target row at a fixed grain, each chunk accumulates into
// its own slot, and the slots fold serially in chunk order — so the
// result is bit-identical at every worker width (the internal/par
// determinism contract), though not to the retired single-accumulator
// serial sum (a different fold shape).
func (s *System) EnergyWith(pool *par.Pool) (kinetic, potential float64) {
	n := s.N()
	for i := 0; i < n; i++ {
		v2 := s.VX[i]*s.VX[i] + s.VY[i]*s.VY[i] + s.VZ[i]*s.VZ[i]
		kinetic += 0.5 * s.M[i] * v2
	}
	eps2 := s.Eps * s.Eps
	nc := par.NumChunks(n, energyGrain)
	partial := make([]float64, nc)
	pool.ForChunks(n, energyGrain, func(c, lo, hi int) {
		var pot float64
		for i := lo; i < hi; i++ {
			for j := i + 1; j < n; j++ {
				dx := s.X[j] - s.X[i]
				dy := s.Y[j] - s.Y[i]
				dz := s.Z[j] - s.Z[i]
				r := math.Sqrt(dx*dx + dy*dy + dz*dz + eps2)
				pot -= s.G * s.M[i] * s.M[j] / r
			}
		}
		partial[c] = pot
	})
	for _, p := range partial {
		potential += p
	}
	return kinetic, potential
}

// CenterOfMass returns the mass-weighted mean position.
func (s *System) CenterOfMass() (x, y, z float64) {
	var mt float64
	for i := 0; i < s.N(); i++ {
		x += s.M[i] * s.X[i]
		y += s.M[i] * s.Y[i]
		z += s.M[i] * s.Z[i]
		mt += s.M[i]
	}
	if mt > 0 {
		x, y, z = x/mt, y/mt, z/mt
	}
	return
}

// Momentum returns the total momentum vector.
func (s *System) Momentum() (px, py, pz float64) {
	for i := 0; i < s.N(); i++ {
		px += s.M[i] * s.VX[i]
		py += s.M[i] * s.VY[i]
		pz += s.M[i] * s.VZ[i]
	}
	return
}
