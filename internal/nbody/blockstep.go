package nbody

import (
	"fmt"
	"math"

	"repro/internal/obs"
)

// Hierarchical block timesteps (the scheme of GADGET and the
// production treecodes): each particle is assigned a power-of-two
// timestep rung from a local accuracy criterion — rung r advances
// with dt_r = DT/2^r — and one base step of size DT runs 2^MaxRung
// synchronized ticks of the finest step h. A particle on rung r
// opens a kick-drift-kick substep every 2^(MaxRung-r) ticks, drifts
// with everyone at every tick (positions stay synchronized, so force
// evaluations need no prediction), and closes — with a fresh force
// evaluation restricted to the closing rungs — at its substep
// boundaries. Slow halo particles on coarse rungs stop paying for the
// dense core's force updates, which is where the multiplicative
// speedup over uniform stepping at the finest dt comes from.

// ActiveForcer is a Forcer that can restrict a force computation to an
// active subset of targets: when active is non-nil, only particles
// with active[i] true get their accelerations recomputed; the rest
// keep their previous values. Sources always cover every particle at
// its current position. A nil mask must be equivalent to Forces.
type ActiveForcer interface {
	Forcer
	ForcesActive(s *System, active []bool) error
}

// ForcesActive implements ActiveForcer for direct summation: inner
// accumulation over every source, outer loop over active targets only.
func (DirectForcer) ForcesActive(s *System, active []bool) error {
	if active == nil {
		s.DirectForces()
		return nil
	}
	n := s.N()
	eps2 := s.Eps * s.Eps
	updated := 0
	for i := 0; i < n; i++ {
		if !active[i] {
			continue
		}
		xi, yi, zi := s.X[i], s.Y[i], s.Z[i]
		var ax, ay, az float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := s.X[j] - xi
			dy := s.Y[j] - yi
			dz := s.Z[j] - zi
			r2 := dx*dx + dy*dy + dz*dz + eps2
			rinv := 1 / math.Sqrt(r2)
			rinv3 := s.G * s.M[j] * rinv * rinv * rinv
			ax += rinv3 * dx
			ay += rinv3 * dy
			az += rinv3 * dz
		}
		s.AX[i], s.AY[i], s.AZ[i] = ax, ay, az
		updated++
	}
	s.Interactions += uint64(updated) * uint64(n-1)
	return nil
}

// MaxRungLimit bounds the rung hierarchy: 2^12 ticks per base step is
// far beyond any sane DT choice.
const MaxRungLimit = 12

// DefaultEta is the dimensionless accuracy parameter of the timestep
// criterion dt_i = Eta·sqrt(Eps/|a_i|) (Eta/sqrt(|a_i|) when the
// softening is zero) — the standard collisionless choice.
const DefaultEta = 0.05

// BlockConfig configures a block-timestep integration.
type BlockConfig struct {
	// DT is the base (coarsest, rung-0) timestep.
	DT float64
	// MaxRung bounds the hierarchy: the finest step is DT/2^MaxRung.
	// MaxRung = 0 degenerates to plain uniform Leapfrog, bit for bit.
	MaxRung int
	// Eta scales the accuracy criterion (0 = DefaultEta).
	Eta float64
}

// RungStats accumulates block-timestep work accounting across Run
// calls.
type RungStats struct {
	// BaseSteps and Substeps count base steps and finest-resolution
	// ticks processed.
	BaseSteps, Substeps uint64
	// Updates counts per-particle force recomputations; Saved counts
	// the updates a uniform integrator at the finest dt would have done
	// on top of that (n per tick in total).
	Updates, Saved uint64
	// Kicks counts half-kicks applied.
	Kicks uint64
	// MaxRungUsed is the highest rung any particle ever occupied.
	MaxRungUsed int
}

// BlockStepper integrates a system with hierarchical block timesteps.
// The zero value is ready; rung and mask storage is reused across Run
// calls, so steady-state stepping allocates nothing in the integrator.
type BlockStepper struct {
	Stats RungStats

	rungs []int8
	mask  []bool
}

// Rungs returns the current rung assignment (live storage, valid until
// the next Run call).
func (b *BlockStepper) Rungs() []int8 { return b.rungs }

// Histogram returns the particle count per rung 0..MaxRungUsed.
func (b *BlockStepper) Histogram() []int {
	h := make([]int, b.Stats.MaxRungUsed+1)
	for _, r := range b.rungs {
		h[r]++
	}
	return h
}

// rungTarget maps a particle's current acceleration to its desired
// rung: the smallest r with DT/2^r at or below the criterion step.
func rungTarget(s *System, i int, cfg *BlockConfig) int8 {
	ax, ay, az := s.AX[i], s.AY[i], s.AZ[i]
	a := math.Sqrt(ax*ax + ay*ay + az*az)
	if a == 0 {
		return 0
	}
	var dt float64
	if s.Eps > 0 {
		dt = cfg.Eta * math.Sqrt(s.Eps/a)
	} else {
		dt = cfg.Eta / math.Sqrt(a)
	}
	var r int8
	step := cfg.DT
	for step > dt && int(r) < cfg.MaxRung {
		step *= 0.5
		r++
	}
	return r
}

// BlockLeapfrog advances the system by steps base steps of size cfg.DT
// with a throwaway stepper — the convenience path for callers that do
// not need rung inspection between runs.
func (s *System) BlockLeapfrog(f Forcer, cfg BlockConfig, steps int) error {
	var b BlockStepper
	return b.Run(s, f, cfg, steps)
}

// Run advances the system by steps base steps of size cfg.DT. With
// MaxRung = 0 the schedule, the force calls and the arithmetic are
// exactly Leapfrog's, so results are bit-identical to it; with
// MaxRung > 0 the forcer must implement ActiveForcer and only closing
// rungs get force updates. Rungs may rise freely at a particle's own
// substep boundaries (finer substeps are always aligned); they fall
// only to boundaries the synchronized schedule has actually reached,
// so the hierarchy never desynchronizes.
func (b *BlockStepper) Run(s *System, f Forcer, cfg BlockConfig, steps int) error {
	if err := s.Validate(); err != nil {
		return err
	}
	if cfg.DT <= 0 || steps < 0 {
		return fmt.Errorf("nbody: bad dt %v or steps %d", cfg.DT, steps)
	}
	if cfg.MaxRung < 0 || cfg.MaxRung > MaxRungLimit {
		return fmt.Errorf("nbody: MaxRung %d outside [0, %d]", cfg.MaxRung, MaxRungLimit)
	}
	if cfg.Eta <= 0 {
		cfg.Eta = DefaultEta
	}
	af, activeOK := f.(ActiveForcer)
	if !activeOK && cfg.MaxRung > 0 {
		return fmt.Errorf("nbody: %T does not implement ActiveForcer (required for MaxRung > 0)", f)
	}
	n := s.N()
	if cap(b.rungs) < n {
		b.rungs = make([]int8, n)
		b.mask = make([]bool, n)
	}
	b.rungs = b.rungs[:n]
	b.mask = b.mask[:n]
	if err := f.Forces(s); err != nil {
		return err
	}
	maxUsed := b.Stats.MaxRungUsed
	for i := 0; i < n; i++ {
		r := rungTarget(s, i, &cfg)
		b.rungs[i] = r
		if int(r) > maxUsed {
			maxUsed = int(r)
		}
	}
	nt := 1 << cfg.MaxRung
	h := cfg.DT / float64(nt)
	var substeps, updates, saved, kicks uint64
	for step := 0; step < steps; step++ {
		for tick := 0; tick < nt; tick++ {
			// Opening half-kicks for every rung starting a substep here.
			for i := 0; i < n; i++ {
				ntr := nt >> b.rungs[i]
				if tick%ntr == 0 {
					dtr := h * float64(ntr)
					s.VX[i] += 0.5 * dtr * s.AX[i]
					s.VY[i] += 0.5 * dtr * s.AY[i]
					s.VZ[i] += 0.5 * dtr * s.AZ[i]
					kicks++
				}
			}
			// Synchronized drift: everyone moves every tick, so positions
			// are always current and force evaluations need no prediction.
			for i := 0; i < n; i++ {
				s.X[i] += h * s.VX[i]
				s.Y[i] += h * s.VY[i]
				s.Z[i] += h * s.VZ[i]
			}
			// Closing rungs get fresh forces — and only them.
			nclose := 0
			for i := 0; i < n; i++ {
				act := (tick+1)%(nt>>b.rungs[i]) == 0
				b.mask[i] = act
				if act {
					nclose++
				}
			}
			if nclose == n {
				// Everyone closes (always the case at base-step boundaries
				// and for MaxRung = 0): the unmasked path, bit-identical to
				// what Leapfrog would call.
				if err := f.Forces(s); err != nil {
					return err
				}
			} else if nclose > 0 {
				if err := af.ForcesActive(s, b.mask); err != nil {
					return err
				}
			}
			substeps++
			updates += uint64(nclose)
			saved += uint64(n - nclose)
			// Closing half-kicks, then rung reassignment from the fresh
			// accelerations.
			for i := 0; i < n; i++ {
				if !b.mask[i] {
					continue
				}
				r := b.rungs[i]
				ntr := nt >> r
				dtr := h * float64(ntr)
				s.VX[i] += 0.5 * dtr * s.AX[i]
				s.VY[i] += 0.5 * dtr * s.AY[i]
				s.VZ[i] += 0.5 * dtr * s.AZ[i]
				kicks++
				want := rungTarget(s, i, &cfg)
				if want < r {
					// A coarser rung is joined only at one of its own
					// boundaries; until then the particle keeps the finest
					// aligned rung at or above its target.
					for want < r && (tick+1)%(nt>>want) != 0 {
						want++
					}
				}
				b.rungs[i] = want
				if int(want) > maxUsed {
					maxUsed = int(want)
				}
			}
		}
		b.Stats.BaseSteps++
	}
	b.Stats.Substeps += substeps
	b.Stats.Updates += updates
	b.Stats.Saved += saved
	b.Stats.Kicks += kicks
	b.Stats.MaxRungUsed = maxUsed
	rungSubsteps.Add(substeps)
	rungUpdates.Add(updates)
	rungSaved.Add(saved)
	rungKicks.Add(kicks)
	return nil
}

// Block-timestep telemetry on the unified obs layer, package-wide like
// the treecode list counters: hot loops count locally, Run flushes
// once.
var (
	rungReg      = obs.NewRegistry()
	rungSubsteps = rungReg.Counter("nbody.rung.substeps", "", "block-timestep ticks processed at the finest resolution")
	rungUpdates  = rungReg.Counter("nbody.rung.updates", "", "per-particle force updates performed by block stepping")
	rungSaved    = rungReg.Counter("nbody.rung.saved", "", "force updates avoided vs uniform stepping at the finest dt")
	rungKicks    = rungReg.Counter("nbody.rung.kicks", "", "half-kicks applied by the block integrator")
)

// RungTelemetry returns the obs source for the block-timestep
// process-wide counters (live cumulative semantics).
func RungTelemetry() obs.Source { return rungReg }
