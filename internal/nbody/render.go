package nbody

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// DensityImage is a log-scaled projected surface-density map of the
// particle distribution — the kind of view Figure 3 shows of the
// 9.7-million-particle run.
type DensityImage struct {
	W, H int
	// Pix holds 0..255 grayscale values, row-major.
	Pix []byte
}

// RenderDensity projects the system onto the x–y plane over the given
// bounds and log-scales counts into grayscale.
func RenderDensity(s *System, w, h int, xmin, xmax, ymin, ymax float64) (*DensityImage, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("nbody: bad image size %dx%d", w, h)
	}
	if xmax <= xmin || ymax <= ymin {
		return nil, fmt.Errorf("nbody: empty render bounds")
	}
	counts := make([]float64, w*h)
	for i := 0; i < s.N(); i++ {
		px := int(float64(w) * (s.X[i] - xmin) / (xmax - xmin))
		py := int(float64(h) * (s.Y[i] - ymin) / (ymax - ymin))
		if px < 0 || px >= w || py < 0 || py >= h {
			continue
		}
		counts[py*w+px] += s.M[i]
	}
	maxC := 0.0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	img := &DensityImage{W: w, H: h, Pix: make([]byte, w*h)}
	if maxC == 0 {
		return img, nil
	}
	logMax := math.Log1p(maxC * 1e6)
	for i, c := range counts {
		img.Pix[i] = byte(255 * math.Log1p(c*1e6) / logMax)
	}
	return img, nil
}

// RenderAuto renders with bounds fit to the particle distribution plus a
// 5% margin.
func RenderAuto(s *System, w, h int) (*DensityImage, error) {
	if s.N() == 0 {
		return nil, fmt.Errorf("nbody: empty system")
	}
	xmin, xmax := s.X[0], s.X[0]
	ymin, ymax := s.Y[0], s.Y[0]
	for i := 1; i < s.N(); i++ {
		xmin = math.Min(xmin, s.X[i])
		xmax = math.Max(xmax, s.X[i])
		ymin = math.Min(ymin, s.Y[i])
		ymax = math.Max(ymax, s.Y[i])
	}
	mx := 0.05 * (xmax - xmin)
	my := 0.05 * (ymax - ymin)
	if mx == 0 {
		mx = 1
	}
	if my == 0 {
		my = 1
	}
	return RenderDensity(s, w, h, xmin-mx, xmax+mx, ymin-my, ymax+my)
}

// WritePGM emits the image as a binary PGM (P5) stream.
func (img *DensityImage) WritePGM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", img.W, img.H); err != nil {
		return err
	}
	_, err := w.Write(img.Pix)
	return err
}

// ASCII renders the image as text with a 10-step brightness ramp, for
// terminal output.
func (img *DensityImage) ASCII() string {
	const ramp = " .:-=+*#%@"
	var b strings.Builder
	for y := 0; y < img.H; y++ {
		for x := 0; x < img.W; x++ {
			v := int(img.Pix[y*img.W+x]) * (len(ramp) - 1) / 255
			b.WriteByte(ramp[v])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
