package nbody

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTwoBodyForceAnalytical(t *testing.T) {
	s := NewSystem(2)
	s.Eps = 0
	s.X[1] = 2 // separation 2 along x
	s.M[0], s.M[1] = 1, 3
	s.DirectForces()
	// a0 = G·m1/r² = 3/4 toward +x; a1 = 1/4 toward −x.
	if math.Abs(s.AX[0]-0.75) > 1e-15 || math.Abs(s.AX[1]+0.25) > 1e-15 {
		t.Fatalf("ax = %v, %v; want 0.75, -0.25", s.AX[0], s.AX[1])
	}
	if s.AY[0] != 0 || s.AZ[0] != 0 {
		t.Fatal("off-axis acceleration nonzero")
	}
}

func TestNewtonThirdLaw(t *testing.T) {
	// Total force on an equal-mass system must vanish (softening is
	// symmetric).
	s := NewUniformCube(64, 5)
	s.DirectForces()
	var fx, fy, fz float64
	for i := 0; i < s.N(); i++ {
		fx += s.M[i] * s.AX[i]
		fy += s.M[i] * s.AY[i]
		fz += s.M[i] * s.AZ[i]
	}
	if math.Abs(fx)+math.Abs(fy)+math.Abs(fz) > 1e-12 {
		t.Fatalf("net force (%g,%g,%g) not zero", fx, fy, fz)
	}
}

func TestSofteningBoundsForce(t *testing.T) {
	s := NewSystem(2)
	s.Eps = 0.1
	s.X[1] = 1e-12 // nearly coincident
	s.M[0], s.M[1] = 1, 1
	s.DirectForces()
	if math.IsInf(s.AX[0], 0) || math.IsNaN(s.AX[0]) {
		t.Fatal("softened force blew up")
	}
	if math.Abs(s.AX[0]) > 1/(s.Eps*s.Eps) {
		t.Fatalf("force %v exceeds softening bound", s.AX[0])
	}
}

func TestInteractionCountingDirect(t *testing.T) {
	s := NewUniformCube(10, 1)
	s.DirectForces()
	if s.Interactions != 90 {
		t.Fatalf("Interactions = %d, want 10×9", s.Interactions)
	}
	if s.Flops() != 90*FlopsPerInteraction {
		t.Fatalf("Flops = %d", s.Flops())
	}
}

func TestLeapfrogEnergyConservation(t *testing.T) {
	s := NewPlummer(64, 1, 42)
	k0, p0 := s.Energy()
	e0 := k0 + p0
	if err := s.Leapfrog(DirectForcer{}, 0.001, 200); err != nil {
		t.Fatal(err)
	}
	k1, p1 := s.Energy()
	e1 := k1 + p1
	drift := math.Abs((e1 - e0) / e0)
	if drift > 5e-3 {
		t.Fatalf("energy drift %g over 200 steps, want < 5e-3", drift)
	}
}

func TestLeapfrogMomentumConservation(t *testing.T) {
	s := NewPlummer(32, 1, 11)
	px0, py0, pz0 := s.Momentum()
	if err := s.Leapfrog(DirectForcer{}, 0.001, 100); err != nil {
		t.Fatal(err)
	}
	px1, py1, pz1 := s.Momentum()
	if math.Abs(px1-px0)+math.Abs(py1-py0)+math.Abs(pz1-pz0) > 1e-12 {
		t.Fatal("momentum not conserved")
	}
}

func TestLeapfrogTimeReversibility(t *testing.T) {
	// Integrate forward then backward: positions must return (symplectic
	// integrators are exactly time-reversible up to roundoff).
	s := NewPlummer(16, 1, 3)
	x0 := append([]float64(nil), s.X...)
	if err := s.Leapfrog(DirectForcer{}, 0.01, 20); err != nil {
		t.Fatal(err)
	}
	// Reverse velocities and integrate the same distance.
	for i := range s.VX {
		s.VX[i], s.VY[i], s.VZ[i] = -s.VX[i], -s.VY[i], -s.VZ[i]
	}
	if err := s.Leapfrog(DirectForcer{}, 0.01, 20); err != nil {
		t.Fatal(err)
	}
	for i := range x0 {
		if math.Abs(s.X[i]-x0[i]) > 1e-9 {
			t.Fatalf("particle %d did not return: %g vs %g", i, s.X[i], x0[i])
		}
	}
}

func TestLeapfrogValidation(t *testing.T) {
	s := NewUniformCube(4, 1)
	if err := s.Leapfrog(DirectForcer{}, 0, 10); err == nil {
		t.Error("dt=0 accepted")
	}
	if err := s.Leapfrog(DirectForcer{}, 0.1, -1); err == nil {
		t.Error("negative steps accepted")
	}
	s.Eps = -1
	if err := s.Leapfrog(DirectForcer{}, 0.1, 1); err == nil {
		t.Error("negative softening accepted")
	}
}

func TestPlummerProperties(t *testing.T) {
	s := NewPlummer(4000, 1, 99)
	// Total mass 1.
	var mt float64
	for _, m := range s.M {
		mt += m
	}
	if math.Abs(mt-1) > 1e-9 {
		t.Fatalf("total mass %v", mt)
	}
	// Half-mass radius of a Plummer sphere ≈ 1.305a.
	r := make([]float64, s.N())
	for i := range r {
		r[i] = math.Sqrt(s.X[i]*s.X[i] + s.Y[i]*s.Y[i] + s.Z[i]*s.Z[i])
	}
	n := 0
	for _, ri := range r {
		if ri < 1.305 {
			n++
		}
	}
	frac := float64(n) / float64(s.N())
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("mass inside 1.305a = %v, want ≈0.5", frac)
	}
	// Roughly virialized: 2K + U ≈ 0 within sampling noise.
	k, p := s.Energy()
	vir := (2*k + p) / math.Abs(p)
	if math.Abs(vir) > 0.25 {
		t.Fatalf("virial ratio residual %v too large", vir)
	}
}

func TestUniformCubeInBounds(t *testing.T) {
	s := NewUniformCube(1000, 7)
	for i := 0; i < s.N(); i++ {
		if s.X[i] < 0 || s.X[i] >= 1 || s.Y[i] < 0 || s.Y[i] >= 1 || s.Z[i] < 0 || s.Z[i] >= 1 {
			t.Fatal("particle outside unit cube")
		}
	}
}

func TestDeterministicICs(t *testing.T) {
	a := NewPlummer(50, 1, 5)
	b := NewPlummer(50, 1, 5)
	for i := range a.X {
		if a.X[i] != b.X[i] || a.VX[i] != b.VX[i] {
			t.Fatal("same seed gave different ICs")
		}
	}
}

func TestRenderDensity(t *testing.T) {
	s := NewPlummer(2000, 1, 13)
	img, err := RenderAuto(s, 40, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Center must be brighter than the corner for a Plummer sphere.
	center := img.Pix[10*40+20]
	corner := img.Pix[0]
	if center <= corner {
		t.Fatalf("center %d not brighter than corner %d", center, corner)
	}
	art := img.ASCII()
	if len(strings.Split(strings.TrimRight(art, "\n"), "\n")) != 20 {
		t.Fatal("ASCII render has wrong height")
	}
}

func TestWritePGM(t *testing.T) {
	s := NewUniformCube(100, 3)
	img, err := RenderAuto(s, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := img.WritePGM(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("P5\n8 8\n255\n")) {
		t.Fatalf("bad PGM header: %q", buf.Bytes()[:16])
	}
	if buf.Len() != len("P5\n8 8\n255\n")+64 {
		t.Fatalf("bad PGM size %d", buf.Len())
	}
}

func TestRenderValidation(t *testing.T) {
	s := NewUniformCube(10, 1)
	if _, err := RenderDensity(s, 0, 10, 0, 1, 0, 1); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := RenderDensity(s, 10, 10, 1, 1, 0, 1); err == nil {
		t.Error("empty bounds accepted")
	}
	empty := NewSystem(0)
	if _, err := RenderAuto(empty, 4, 4); err == nil {
		t.Error("empty system accepted")
	}
}
