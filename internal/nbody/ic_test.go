package nbody

import (
	"math"
	"testing"

	"repro/internal/par"
)

// icConservation runs each named preset through a short direct-force
// leapfrog and checks the invariants an IC must deliver: exactly-zeroed
// bulk momentum that stays zero, a stationary centre of mass, and
// bounded energy drift.
func TestICPresetsConservation(t *testing.T) {
	for _, tc := range []struct {
		name  string
		mk    func(n int, seed uint64) *System
		dt    float64
		drift float64
	}{
		// The cold disk is rotationally supported, not in exact
		// equilibrium (the enclosed-mass circular speed is an
		// approximation for a flattened system), so its energy bound is
		// looser than the virial Plummer merger's.
		{"colddisk", NewColdDisk, 0.002, 5e-3},
		{"twocluster", NewTwoCluster, 0.002, 1e-3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.mk(600, 42)
			s.Eps = 0.05
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			var mt float64
			for i := 0; i < s.N(); i++ {
				if s.M[i] <= 0 {
					t.Fatalf("particle %d has mass %v", i, s.M[i])
				}
				mt += s.M[i]
			}
			if math.Abs(mt-1) > 1e-12 {
				t.Fatalf("total mass %v, want 1", mt)
			}
			px, py, pz := s.Momentum()
			if p := math.Sqrt(px*px + py*py + pz*pz); p > 1e-14 {
				t.Fatalf("initial momentum %g, want ~0", p)
			}
			cx0, cy0, cz0 := s.CenterOfMass()

			k0, p0 := s.Energy()
			e0 := k0 + p0
			if err := s.Leapfrog(DirectForcer{}, tc.dt, 25); err != nil {
				t.Fatal(err)
			}
			k1, p1 := s.Energy()
			if d := math.Abs((k1 + p1 - e0) / e0); d > tc.drift {
				t.Fatalf("relative energy drift %g exceeds %g", d, tc.drift)
			}
			px, py, pz = s.Momentum()
			if p := math.Sqrt(px*px + py*py + pz*pz); p > 1e-10 {
				t.Fatalf("momentum after integration %g, want ~0", p)
			}
			cx, cy, cz := s.CenterOfMass()
			if d := math.Abs(cx-cx0) + math.Abs(cy-cy0) + math.Abs(cz-cz0); d > 1e-10 {
				t.Fatalf("centre of mass moved by %g", d)
			}
		})
	}
}

// TestICPresetsDeterministic: same seed, same system, bit for bit;
// different seed differs.
func TestICPresetsDeterministic(t *testing.T) {
	for _, mk := range []func(n int, seed uint64) *System{NewColdDisk, NewTwoCluster} {
		a, b := mk(500, 7), mk(500, 7)
		for i := 0; i < a.N(); i++ {
			if math.Float64bits(a.X[i]) != math.Float64bits(b.X[i]) ||
				math.Float64bits(a.VX[i]) != math.Float64bits(b.VX[i]) {
				t.Fatalf("same seed diverged at particle %d", i)
			}
		}
		c := mk(500, 8)
		same := true
		for i := 0; i < a.N(); i++ {
			if a.X[i] != c.X[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical positions")
		}
	}
}

// TestColdDiskGeometry pins the disk's advertised shape: inside the
// unit radius, within the slab thickness, rotating about +z.
func TestColdDiskGeometry(t *testing.T) {
	s := NewColdDisk(2000, 3)
	var lz float64
	for i := 0; i < s.N(); i++ {
		r := math.Hypot(s.X[i], s.Y[i])
		if r > 1 {
			t.Fatalf("particle %d at cylindrical radius %g > 1", i, r)
		}
		if math.Abs(s.Z[i]) > DiskThickness/2 {
			t.Fatalf("particle %d at |z| = %g > %g", i, math.Abs(s.Z[i]), DiskThickness/2)
		}
		lz += s.M[i] * (s.X[i]*s.VY[i] - s.Y[i]*s.VX[i])
	}
	if lz <= 0 {
		t.Fatalf("disk angular momentum %g, want positive (prograde about +z)", lz)
	}
}

// TestTwoClusterGeometry pins the merger setup: two groups around
// x = ±2 approaching each other.
func TestTwoClusterGeometry(t *testing.T) {
	s := NewTwoCluster(2000, 3)
	var left, right int
	for i := 0; i < s.N(); i++ {
		if s.X[i] > 0 {
			right++
		} else {
			left++
		}
	}
	if left < s.N()/3 || right < s.N()/3 {
		t.Fatalf("lopsided split %d/%d", left, right)
	}
	// The halves must approach: mean vx of the +x half is negative.
	var vright float64
	for i := 0; i < s.N(); i++ {
		if s.X[i] > 0 {
			vright += s.VX[i]
		}
	}
	if vright/float64(right) >= 0 {
		t.Fatal("+x cluster is not approaching the origin")
	}
}

// TestEnergyWorkerDeterminism is the parallel-potential contract: the
// chunked reduction is bit-identical at worker widths 1, 2 and 8.
func TestEnergyWorkerDeterminism(t *testing.T) {
	s := NewPlummer(3000, 1, 17)
	s.Eps = 0.01
	k1, p1 := s.EnergyWith(par.New(1))
	for _, w := range []int{2, 8} {
		k, p := s.EnergyWith(par.New(w))
		if math.Float64bits(k) != math.Float64bits(k1) || math.Float64bits(p) != math.Float64bits(p1) {
			t.Fatalf("workers=%d: energy (%v, %v) differs from serial (%v, %v)", w, k, p, k1, p1)
		}
	}
	// Sanity: a bound virial-ish system has negative total energy.
	if k1+p1 >= 0 {
		t.Fatalf("Plummer total energy %g, want negative", k1+p1)
	}
}
