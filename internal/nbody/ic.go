package nbody

// Named initial-condition presets beyond the Plummer sphere (ROADMAP
// item 4's leftover half): a cold rotating disk and a two-cluster
// merger, the scenarios the paper-era treecode runs exercised beyond
// isolated spheres. All presets are deterministic in the seed, use
// total mass 1 and G = 1 (the repo's N-body units), and zero the bulk
// momentum exactly so conservation checks start from a clean baseline.

import (
	"math"

	"repro/internal/sim"
)

// DiskThickness is the cold disk's vertical extent (uniform slab),
// relative to its unit radius.
const DiskThickness = 0.05

// NewColdDisk samples a cold, rotation-supported disk: uniform surface
// density out to radius 1, thickness DiskThickness, total mass 1. Each
// particle moves on the circular orbit of the spherically-enclosed
// mass approximation, v²(r) = M(<r)/r with M(<r) = r² — "cold" because
// there is no velocity dispersion on top. The bulk momentum is
// subtracted exactly, so the disk's centre of mass stays put.
func NewColdDisk(n int, seed uint64) *System {
	s := NewSystem(n)
	rng := sim.NewRNG(seed)
	for i := 0; i < n; i++ {
		// r = √u is the inverse CDF of a uniform surface density.
		r := math.Sqrt(rng.Float64())
		phi := 2 * math.Pi * rng.Float64()
		sinp, cosp := math.Sin(phi), math.Cos(phi)
		s.X[i] = r * cosp
		s.Y[i] = r * sinp
		s.Z[i] = DiskThickness * (rng.Float64() - 0.5)
		v := math.Sqrt(r) // √(M(<r)/r) with M(<r)=r²
		s.VX[i] = -v * sinp
		s.VY[i] = v * cosp
		s.VZ[i] = 0
		s.M[i] = 1 / float64(n)
	}
	zeroMomentum(s)
	return s
}

// NewTwoCluster builds a head-on merger: two equal Plummer spheres
// (scale radius 0.5, mass 1/2 each, internally virial for their own
// mass) separated by ±2 on x and approaching at ±0.1 — the standard
// collision scenario of the production treecode runs. Total mass 1;
// bulk momentum is exactly zero by construction and then re-zeroed
// against rounding.
func NewTwoCluster(n int, seed uint64) *System {
	const (
		a      = 0.5
		offset = 2.0
		vapp   = 0.1
	)
	n1 := n / 2
	halves := [2]*System{NewPlummer(n1, a, seed), NewPlummer(n-n1, a, seed+1)}
	s := NewSystem(n)
	i := 0
	for h, half := range halves {
		sign := 1.0
		if h == 1 {
			sign = -1
		}
		// Each half keeps its Plummer virial structure for mass 1/2:
		// masses scale by 1/2, internal velocities by √(1/2).
		vs := math.Sqrt(0.5)
		for j := 0; j < half.N(); j++ {
			s.X[i] = half.X[j] + sign*offset
			s.Y[i] = half.Y[j]
			s.Z[i] = half.Z[j]
			s.VX[i] = vs*half.VX[j] - sign*vapp
			s.VY[i] = vs * half.VY[j]
			s.VZ[i] = vs * half.VZ[j]
			s.M[i] = 0.5 * half.M[j]
			i++
		}
	}
	zeroMomentum(s)
	return s
}

// zeroMomentum subtracts the mass-weighted mean velocity so the total
// momentum is zero to rounding.
func zeroMomentum(s *System) {
	var px, py, pz, mt float64
	for i := 0; i < s.N(); i++ {
		px += s.M[i] * s.VX[i]
		py += s.M[i] * s.VY[i]
		pz += s.M[i] * s.VZ[i]
		mt += s.M[i]
	}
	if mt == 0 {
		return
	}
	vx, vy, vz := px/mt, py/mt, pz/mt
	for i := 0; i < s.N(); i++ {
		s.VX[i] -= vx
		s.VY[i] -= vy
		s.VZ[i] -= vz
	}
}
