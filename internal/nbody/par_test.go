package nbody

import (
	"testing"

	"repro/internal/par"
)

// TestDirectForcesBitIdentical asserts the parallel direct-summation
// loop produces bit-identical accelerations (and the same interaction
// count) at worker counts 1, 2 and 8.
func TestDirectForcesBitIdentical(t *testing.T) {
	run := func(w int) *System {
		s := NewPlummer(1500, 1, 77)
		s.DirectForcesWith(par.New(w))
		return s
	}
	ref := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if got.Interactions != ref.Interactions {
			t.Fatalf("workers=%d interactions %d != serial %d", w, got.Interactions, ref.Interactions)
		}
		for i := 0; i < ref.N(); i++ {
			if got.AX[i] != ref.AX[i] || got.AY[i] != ref.AY[i] || got.AZ[i] != ref.AZ[i] {
				t.Fatalf("workers=%d: acceleration of particle %d differs from serial", w, i)
			}
		}
	}
}
