package nbody

import (
	"math"
	"testing"
)

// cloneSystem deep-copies a system so two integrators can run the same
// initial conditions.
func cloneSystem(s *System) *System {
	c := *s
	c.X = append([]float64(nil), s.X...)
	c.Y = append([]float64(nil), s.Y...)
	c.Z = append([]float64(nil), s.Z...)
	c.VX = append([]float64(nil), s.VX...)
	c.VY = append([]float64(nil), s.VY...)
	c.VZ = append([]float64(nil), s.VZ...)
	c.AX = append([]float64(nil), s.AX...)
	c.AY = append([]float64(nil), s.AY...)
	c.AZ = append([]float64(nil), s.AZ...)
	c.M = append([]float64(nil), s.M...)
	return &c
}

// TestBlockLeapfrogDegeneratesToLeapfrog: MaxRung = 0 must reproduce
// plain Leapfrog bit for bit — same schedule, same force calls, same
// arithmetic shapes.
func TestBlockLeapfrogDegeneratesToLeapfrog(t *testing.T) {
	ref := NewPlummer(300, 1, 9)
	blk := cloneSystem(ref)
	if err := ref.Leapfrog(DirectForcer{}, 0.005, 10); err != nil {
		t.Fatal(err)
	}
	if err := blk.BlockLeapfrog(DirectForcer{}, BlockConfig{DT: 0.005}, 10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ref.N(); i++ {
		if math.Float64bits(ref.X[i]) != math.Float64bits(blk.X[i]) ||
			math.Float64bits(ref.VX[i]) != math.Float64bits(blk.VX[i]) ||
			math.Float64bits(ref.AX[i]) != math.Float64bits(blk.AX[i]) {
			t.Fatalf("particle %d: MaxRung=0 block step diverged from Leapfrog", i)
		}
	}
}

// TestBlockStepperEnergyAndMomentum: with a live rung hierarchy the
// integration must still conserve energy to the |ΔE/E| ≤ 1e-3 level
// the PR 6 guard demands, keep momentum bounded, and do strictly less
// force work than uniform stepping at the finest occupied dt.
func TestBlockStepperEnergyAndMomentum(t *testing.T) {
	s := NewPlummer(256, 1, 42)
	k0, p0 := s.Energy()
	e0 := k0 + p0
	px0, py0, pz0 := s.Momentum()
	var b BlockStepper
	if err := b.Run(s, DirectForcer{}, BlockConfig{DT: 0.01, MaxRung: 4, Eta: 0.05}, 100); err != nil {
		t.Fatal(err)
	}
	k1, p1 := s.Energy()
	drift := math.Abs((k1 + p1 - e0) / e0)
	t.Logf("energy drift %.3e over 100 base steps; max rung %d; updates %d, saved %d",
		drift, b.Stats.MaxRungUsed, b.Stats.Updates, b.Stats.Saved)
	if drift > 1e-3 {
		t.Fatalf("energy drift %g over 100 base steps, want <= 1e-3", drift)
	}
	// Asynchronous force updates break the exact pairwise cancellation
	// uniform leapfrog enjoys, so momentum drifts at the truncation
	// level rather than roundoff — it must stay far below typical
	// particle momenta (~1/N here).
	px1, py1, pz1 := s.Momentum()
	if math.Abs(px1-px0)+math.Abs(py1-py0)+math.Abs(pz1-pz0) > 1e-4 {
		t.Fatal("momentum drifted beyond the truncation level")
	}
	if b.Stats.MaxRungUsed == 0 {
		t.Fatal("no particle left rung 0 — the hierarchy never engaged")
	}
	if b.Stats.Saved == 0 {
		t.Fatal("block stepping saved no force updates")
	}
	if b.Stats.Updates+b.Stats.Saved != b.Stats.Substeps*uint64(s.N()) {
		t.Fatalf("update accounting inconsistent: %d + %d != %d substep-particles",
			b.Stats.Updates, b.Stats.Saved, b.Stats.Substeps*uint64(s.N()))
	}
}

// TestBlockStepperRungSanity: rung assignments stay within bounds,
// inner (high-acceleration) particles sit on finer rungs than the mean
// of the outer halo, and the histogram covers every particle.
func TestBlockStepperRungSanity(t *testing.T) {
	s := NewPlummer(512, 1, 7)
	var b BlockStepper
	if err := b.Run(s, DirectForcer{}, BlockConfig{DT: 0.01, MaxRung: 5}, 1); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range b.Histogram() {
		total += c
	}
	if total != s.N() {
		t.Fatalf("histogram covers %d of %d particles", total, s.N())
	}
	var innerSum, innerN, outerSum, outerN float64
	for i, r := range b.Rungs() {
		if r < 0 || int(r) > 5 {
			t.Fatalf("particle %d on rung %d outside [0, 5]", i, r)
		}
		rad := math.Sqrt(s.X[i]*s.X[i] + s.Y[i]*s.Y[i] + s.Z[i]*s.Z[i])
		if rad < 0.5 {
			innerSum += float64(r)
			innerN++
		} else if rad > 2 {
			outerSum += float64(r)
			outerN++
		}
	}
	if innerN == 0 || outerN == 0 {
		t.Skip("degenerate radial split")
	}
	if innerSum/innerN <= outerSum/outerN {
		t.Fatalf("inner particles on coarser rungs (%.2f) than outer (%.2f)",
			innerSum/innerN, outerSum/outerN)
	}
}

// TestBlockStepperRequiresActiveForcer: a forcer without ForcesActive
// cannot serve a rung hierarchy and must be rejected up front.
func TestBlockStepperRequiresActiveForcer(t *testing.T) {
	plain := forcerFunc(func(s *System) error { s.DirectForces(); return nil })
	s := NewPlummer(32, 1, 1)
	if err := s.BlockLeapfrog(plain, BlockConfig{DT: 0.01, MaxRung: 2}, 1); err == nil {
		t.Fatal("MaxRung > 0 accepted a forcer without ForcesActive")
	}
	// MaxRung = 0 needs no masked path.
	if err := s.BlockLeapfrog(plain, BlockConfig{DT: 0.01}, 1); err != nil {
		t.Fatal(err)
	}
}

type forcerFunc func(*System) error

func (f forcerFunc) Forces(s *System) error { return f(s) }

// TestBlockStepperValidation covers the config guards.
func TestBlockStepperValidation(t *testing.T) {
	s := NewPlummer(16, 1, 2)
	if err := s.BlockLeapfrog(DirectForcer{}, BlockConfig{DT: 0}, 1); err == nil {
		t.Fatal("accepted DT=0")
	}
	if err := s.BlockLeapfrog(DirectForcer{}, BlockConfig{DT: 0.01, MaxRung: MaxRungLimit + 1}, 1); err == nil {
		t.Fatal("accepted MaxRung beyond limit")
	}
	if err := s.BlockLeapfrog(DirectForcer{}, BlockConfig{DT: 0.01}, -1); err == nil {
		t.Fatal("accepted negative steps")
	}
}

// TestRungTelemetry: a block run must flush substep/update/saved/kick
// counts to the package counters.
func TestRungTelemetry(t *testing.T) {
	before := rungUpdates.Value()
	beforeSaved := rungSaved.Value()
	s := NewPlummer(128, 1, 77)
	if err := s.BlockLeapfrog(DirectForcer{}, BlockConfig{DT: 0.01, MaxRung: 3}, 2); err != nil {
		t.Fatal(err)
	}
	if rungUpdates.Value() == before {
		t.Fatal("no force updates recorded")
	}
	if rungSaved.Value() == beforeSaved {
		t.Fatal("no saved updates recorded")
	}
}
