package designopt

import "testing"

// TestEvalZeroAllocSteadyState pins the inner loop's allocation
// contract: once the memo table is warm, scoring a candidate allocates
// nothing — the property that lets the optimizer sustain production
// request volume. benchreport guards the same bar (designopt/eval).
func TestEvalZeroAllocSteadyState(t *testing.T) {
	g := DefaultGrid()
	memo := NewMemo(g)
	ev := NewEvaluator(g, memo)
	na, nn, nf := len(g.Ambients), len(g.Nodes), len(g.Fabrics)
	var pt Point
	// Warm every memo cell so the measured loop is pure steady state.
	for fi := 0; fi < nf; fi++ {
		for ni := 0; ni < nn; ni++ {
			ev.Eval(0, 0, fi, ni, 0, &pt)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		ci := i % len(g.CPUs)
		ki := (i / len(g.CPUs)) % len(g.Packs)
		fi := i % nf
		ni := i % nn
		ai := i % na
		ev.Eval(ci, ki, fi, ni, ai, &pt)
		i++
	})
	if allocs != 0 {
		t.Errorf("steady-state Eval allocates %.1f per call, want 0", allocs)
	}
}
