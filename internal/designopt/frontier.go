package designopt

import (
	"hash/fnv"
	"math"
	"sort"
)

// dominates reports whether a Pareto-dominates b: no worse in every
// objective (ToPPeR minimized, perf/watt and perf/space maximized) and
// strictly better in at least one. Equal vectors dominate neither way,
// so the non-dominated set — and therefore the frontier — is a pure
// function of the candidate set, independent of evaluation order.
func dominates(a, b *Point) bool {
	if a.ToPPeR > b.ToPPeR || a.PerfPerWatt < b.PerfPerWatt || a.PerfPerSpace < b.PerfPerSpace {
		return false
	}
	return a.ToPPeR < b.ToPPeR || a.PerfPerWatt > b.PerfPerWatt || a.PerfPerSpace > b.PerfPerSpace
}

// Frontier maintains the running non-dominated set.
type Frontier struct {
	pts []Point
}

// Insert adds a candidate, dropping it if dominated and evicting any
// points it dominates. Returns whether the point survived.
func (f *Frontier) Insert(p Point) bool {
	for i := range f.pts {
		if dominates(&f.pts[i], &p) {
			return false
		}
	}
	keep := f.pts[:0]
	for i := range f.pts {
		if !dominates(&p, &f.pts[i]) {
			keep = append(keep, f.pts[i])
		}
	}
	f.pts = append(keep, p)
	return true
}

// Merge inserts every point of another frontier.
func (f *Frontier) Merge(o *Frontier) {
	for i := range o.pts {
		f.Insert(o.pts[i])
	}
}

// Len returns the current frontier size.
func (f *Frontier) Len() int { return len(f.pts) }

// Sorted returns the frontier in canonical order: ascending ToPPeR,
// then descending perf/watt and perf/space, then the candidate
// coordinates as the total tie-break. Canonical order plus
// order-independent membership is what makes the emitted frontier
// bit-identical at any worker count and under pruning.
func (f *Frontier) Sorted() []Point {
	out := append([]Point(nil), f.pts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		switch {
		case a.ToPPeR != b.ToPPeR:
			return a.ToPPeR < b.ToPPeR
		case a.PerfPerWatt != b.PerfPerWatt:
			return a.PerfPerWatt > b.PerfPerWatt
		case a.PerfPerSpace != b.PerfPerSpace:
			return a.PerfPerSpace > b.PerfPerSpace
		case a.CPU != b.CPU:
			return a.CPU < b.CPU
		case a.Pack != b.Pack:
			return a.Pack < b.Pack
		case a.Fabric != b.Fabric:
			return a.Fabric < b.Fabric
		case a.Nodes != b.Nodes:
			return a.Nodes < b.Nodes
		default:
			return a.AmbientC < b.AmbientC
		}
	})
	return out
}

// Fingerprint hashes a frontier bit-exactly (FNV-1a over the raw
// float bits and coordinates), for determinism cross-checks.
func Fingerprint(pts []Point) uint64 {
	h := fnv.New64a()
	buf := make([]byte, 8)
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf)
	}
	wf := func(v float64) { w64(math.Float64bits(v)) }
	for i := range pts {
		p := &pts[i]
		h.Write([]byte(p.CPU))
		h.Write([]byte(p.Pack))
		h.Write([]byte(p.Fabric))
		w64(uint64(p.Nodes))
		wf(p.AmbientC)
		wf(p.Eff)
		wf(p.Gflops)
		wf(p.TCOUSD)
		wf(p.ToPPeR)
		wf(p.PerfPerWatt)
		wf(p.PerfPerSpace)
		wf(p.Breakdown.Acquisition)
		wf(p.Breakdown.SysAdmin)
		wf(p.Breakdown.PowerCooling)
		wf(p.Breakdown.Space)
		wf(p.Breakdown.Downtime)
	}
	return h.Sum64()
}
