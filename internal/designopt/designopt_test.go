package designopt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
)

// testGrid is a small grid with every interesting feature: multiple
// fabrics/topologies, both packagings, a dominated slab (Power3
// traditional) and node counts that span the efficiency curve.
func testGrid() *Grid {
	fe, _ := ParseFabric("fe")
	ge, _ := ParseFabric("ge")
	ft, _ := ParseFabric("fe-fattree")
	g := DefaultGrid()
	g.Fabrics = []FabricChoice{fe, ge, ft}
	g.Nodes = []int{4, 16, 64, 256}
	g.Ambients = []float64{18, 27, 35}
	return g
}

func fingerprintOf(t *testing.T, g *Grid, opt Options) (uint64, *Result) {
	t.Helper()
	res, err := Optimize(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return Fingerprint(res.Frontier), res
}

// TestOptimizeDeterministicAcrossWorkers pins the headline contract:
// the frontier is bit-identical at workers 1, 2 and 8, memo on or off.
func TestOptimizeDeterministicAcrossWorkers(t *testing.T) {
	g := testGrid()
	ref, refRes := fingerprintOf(t, g, Options{Workers: 1})
	if len(refRes.Frontier) == 0 {
		t.Fatal("empty frontier on the test grid")
	}
	for _, w := range []int{2, 8} {
		fp, _ := fingerprintOf(t, g, Options{Workers: w})
		if fp != ref {
			t.Errorf("workers=%d frontier differs from workers=1", w)
		}
	}
	fp, _ := fingerprintOf(t, g, Options{Workers: 8, NoMemo: true})
	if fp != ref {
		t.Error("memo-off frontier differs from memo-on")
	}
}

// TestPrunedFrontierMatchesExhaustive is the pruning correctness
// cross-check: at workers 1, 2 and 8, the pruned search's frontier is
// bit-identical to exhaustive enumeration, and on the default grid
// pruning actually fires.
func TestPrunedFrontierMatchesExhaustive(t *testing.T) {
	for _, g := range []*Grid{DefaultGrid(), testGrid()} {
		exhaustive, exRes := fingerprintOf(t, g, Options{Workers: 1, NoPrune: true})
		if exRes.Pruned != 0 || exRes.Evaluated != exRes.Candidates {
			t.Fatalf("exhaustive run pruned %d of %d", exRes.Pruned, exRes.Candidates)
		}
		for _, w := range []int{1, 2, 8} {
			fp, res := fingerprintOf(t, g, Options{Workers: w})
			if fp != exhaustive {
				t.Errorf("workers=%d pruned frontier differs from exhaustive", w)
			}
			if res.Evaluated+res.Pruned != res.Candidates {
				t.Errorf("workers=%d: evaluated %d + pruned %d != candidates %d",
					w, res.Evaluated, res.Pruned, res.Candidates)
			}
		}
	}
	_, res := fingerprintOf(t, DefaultGrid(), Options{})
	if res.Pruned == 0 || res.SlabsPruned == 0 {
		t.Errorf("pruning never fired on the default grid (pruned=%d slabs=%d)", res.Pruned, res.SlabsPruned)
	}
}

// TestMemoCountersDeterministic pins that the hit/miss counters are a
// pure function of the grid — even under a parallel sweep — and that
// the default grid amortizes ≥90% of its network solves.
func TestMemoCountersDeterministic(t *testing.T) {
	g := DefaultGrid()
	_, a := fingerprintOf(t, g, Options{Workers: 8})
	_, b := fingerprintOf(t, g, Options{Workers: 8})
	_, serial := fingerprintOf(t, g, Options{Workers: 1})
	if a.MemoHits != b.MemoHits || a.MemoMisses != b.MemoMisses {
		t.Errorf("memo counters raced: %d/%d vs %d/%d", a.MemoHits, a.MemoMisses, b.MemoHits, b.MemoMisses)
	}
	if a.MemoHits != serial.MemoHits || a.MemoMisses != serial.MemoMisses {
		t.Errorf("memo counters depend on workers: %d/%d vs serial %d/%d",
			a.MemoHits, a.MemoMisses, serial.MemoHits, serial.MemoMisses)
	}
	if max := uint64(len(g.Fabrics) * len(g.Nodes)); a.MemoMisses > max {
		t.Errorf("%d misses for %d distinct (fabric, p) cells", a.MemoMisses, max)
	}
	if hr := a.MemoHitRate(); hr < 0.9 {
		t.Errorf("default-grid memo hit rate %.3f, want ≥ 0.9", hr)
	}
}

// TestDegenerateChoicesCannotNaN is the sweep-robustness guard: a CPU
// with no flops, a node with no watts and a zero-MTBF reliability
// model must yield a finite frontier with the degenerates excluded.
func TestDegenerateChoicesCannotNaN(t *testing.T) {
	g := testGrid()
	g.CPUs = append(g.CPUs,
		CPUChoice{Name: "NoFlops", Node: cluster.NodeP4, MflopsPerCPU: 0, AcqPerNodeUSD: 500},
		CPUChoice{Name: "NoWatts", Node: cluster.NodeSpec{Name: "w0", CPUModel: "w0", WattsLoad: 0}, MflopsPerCPU: 100, AcqPerNodeUSD: 500},
	)
	g.Rel.BaseMTBFHours = 0
	res, err := Optimize(g, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("degenerate choices emptied the frontier")
	}
	for i := range res.Frontier {
		p := &res.Frontier[i]
		if p.CPU == "NoFlops" || p.CPU == "NoWatts" {
			t.Errorf("degenerate CPU on the frontier: %s", p.String())
		}
		for _, v := range []float64{p.Eff, p.Gflops, p.TCOUSD, p.ToPPeR, p.PerfPerWatt, p.PerfPerSpace} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite objective in %s", p.String())
			}
		}
	}
	// And the pruned/exhaustive contract must survive the degenerates.
	pr, _ := fingerprintOf(t, g, Options{Workers: 2})
	ex, _ := fingerprintOf(t, g, Options{Workers: 2, NoPrune: true})
	if pr != ex {
		t.Error("degenerate slabs broke the pruned == exhaustive contract")
	}
}

// TestSlabBoundIsOptimistic cross-checks the pruning bounds against
// every feasible candidate: no design may beat its slab's bound in any
// objective (that is what makes skipping a dominated slab safe).
func TestSlabBoundIsOptimistic(t *testing.T) {
	g := testGrid()
	ev := NewEvaluator(g, NewMemo(g))
	var pt Point
	for ci := range g.CPUs {
		for ki := range g.Packs {
			for fi := range g.Fabrics {
				b := g.slabBoundAt(ci, ki, fi)
				for ni := range g.Nodes {
					for ai := range g.Ambients {
						if !ev.Eval(ci, ki, fi, ni, ai, &pt) {
							continue
						}
						if pt.ToPPeR < b.topperLB || pt.PerfPerWatt > b.ppwUB || pt.PerfPerSpace > b.ppsUB {
							t.Fatalf("bound not optimistic for %s: LB/UBs %.3f %.3f %.3f",
								pt.String(), b.topperLB, b.ppwUB, b.ppsUB)
						}
					}
				}
			}
		}
	}
}

// TestFrontierOrderIndependent inserts the same point set in shuffled
// orders and demands the same sorted frontier — the membership
// property the worker-count invariance rests on.
func TestFrontierOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pts := make([]Point, 60)
	for i := range pts {
		pts[i] = Point{
			CPU:          "X",
			Nodes:        i,
			ToPPeR:       math.Floor(rng.Float64()*10) + 1,
			PerfPerWatt:  math.Floor(rng.Float64()*10) + 1,
			PerfPerSpace: math.Floor(rng.Float64()*10) + 1,
		}
	}
	var ref Frontier
	for _, p := range pts {
		ref.Insert(p)
	}
	want := Fingerprint(ref.Sorted())
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(pts))
		var f Frontier
		for _, i := range perm {
			f.Insert(pts[i])
		}
		if Fingerprint(f.Sorted()) != want {
			t.Fatalf("trial %d: frontier depends on insertion order", trial)
		}
	}
	// Spot-check dominance on the survivors: no frontier point may
	// dominate another.
	s := ref.Sorted()
	for i := range s {
		for j := range s {
			if i != j && dominates(&s[i], &s[j]) {
				t.Fatalf("frontier keeps dominated point: %v dominates %v", s[i], s[j])
			}
		}
	}
}

// TestBudgetCapsFeasibility pins the budget guards: every frontier
// point respects the caps, and an impossible budget empties the
// frontier rather than erroring.
func TestBudgetCapsFeasibility(t *testing.T) {
	g := testGrid()
	g.Budget = Budget{MaxPowerKW: 3, MaxSpaceSqFt: 40, MaxTCOUSD: 120000}
	res, err := Optimize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) == 0 {
		t.Fatal("modest budget emptied the frontier")
	}
	for i := range res.Frontier {
		p := &res.Frontier[i]
		if p.TCOUSD > g.Budget.MaxTCOUSD {
			t.Errorf("frontier point over TCO budget: %s", p.String())
		}
	}
	fpB, _ := fingerprintOf(t, g, Options{NoPrune: true})
	if fp := Fingerprint(res.Frontier); fp != fpB {
		t.Error("budget-capped pruned frontier differs from exhaustive")
	}
	g.Budget = Budget{MaxTCOUSD: 1} // nothing fits
	res, err = Optimize(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) != 0 || res.Feasible != 0 {
		t.Errorf("impossible budget left %d feasible, frontier %d", res.Feasible, len(res.Frontier))
	}
}

// TestParseAxes pins the axis-name surface the spec and CLI share.
func TestParseAxes(t *testing.T) {
	for _, name := range []string{"fe", "ge", "e10", "fe-fattree", "ge-torus2d", "e10-torus3d", "FE-STAR"} {
		if _, err := ParseFabric(name); err != nil {
			t.Errorf("ParseFabric(%q): %v", name, err)
		}
	}
	for _, name := range []string{"myrinet", "fe-hypercube", ""} {
		if _, err := ParseFabric(name); err == nil {
			t.Errorf("ParseFabric(%q) accepted", name)
		}
	}
	base, _ := ParseFabric("fe")
	tree, _ := ParseFabric("fe-fattree")
	if tree.PortCostUSD <= base.PortCostUSD {
		t.Error("fat-tree ports should cost more than a star's")
	}
	for _, name := range []string{"PIII", "alpha", "TM5600", "Power3", "athlon"} {
		if _, err := ParseCPU(name); err != nil {
			t.Errorf("ParseCPU(%q): %v", name, err)
		}
	}
	if _, err := ParseCPU("P5"); err == nil {
		t.Error("ParseCPU accepted an unknown model")
	}
	for _, name := range []string{"traditional", "Blade"} {
		if _, err := ParsePack(name); err != nil {
			t.Errorf("ParsePack(%q): %v", name, err)
		}
	}
	if _, err := ParsePack("dense"); err == nil {
		t.Error("ParsePack accepted an unknown packaging")
	}
}

// TestGridValidate pins the structural-degeneracy errors.
func TestGridValidate(t *testing.T) {
	bad := []func(*Grid){
		func(g *Grid) { g.CPUs = nil },
		func(g *Grid) { g.Nodes = []int{0} },
		func(g *Grid) { g.Ambients = []float64{math.NaN()} },
		func(g *Grid) { g.Budget.MaxPowerKW = -1 },
		func(g *Grid) { g.Workload.Particles = 0 },
		func(g *Grid) { g.Fabrics[0].Template = nil },
		func(g *Grid) { g.Rates.Years = 0 },
	}
	for i, mutate := range bad {
		g := DefaultGrid()
		mutate(g)
		if _, err := Optimize(g, Options{}); err == nil {
			t.Errorf("case %d: degenerate grid accepted", i)
		}
	}
}
