package designopt

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/tco"
)

// Memo caches the netsim efficiency solves, keyed by (fabric index,
// node-count index) — the workload is fixed per Grid, so those two
// coordinates identify a solve. Cells are solved at most once; the
// hit/miss counts are deterministic because a racing reader that finds
// the lock held waits and counts as a hit (exactly one goroutine ever
// counts the miss for a cell).
type Memo struct {
	cells  []memoCell
	np     int
	hits   atomic.Uint64
	misses atomic.Uint64
}

type memoCell struct {
	done atomic.Uint32
	mu   sync.Mutex
	comm float64
}

// NewMemo sizes a memo table for a grid.
func NewMemo(g *Grid) *Memo {
	return &Memo{
		cells: make([]memoCell, len(g.Fabrics)*len(g.Nodes)),
		np:    len(g.Nodes),
	}
}

// Hits and Misses report the lookup counters.
func (m *Memo) Hits() uint64   { return m.hits.Load() }
func (m *Memo) Misses() uint64 { return m.misses.Load() }

// Evaluator scores candidates against one grid. It owns a scratch
// cluster so the steady-state Eval path allocates nothing; use one
// Evaluator per worker.
type Evaluator struct {
	g       *Grid
	memo    *Memo // nil: recompute the network solve per candidate
	scratch cluster.Cluster
}

// NewEvaluator builds a per-worker evaluator. A nil memo disables
// memoization (every Eval pays the full network solve).
func NewEvaluator(g *Grid, memo *Memo) *Evaluator {
	return &Evaluator{g: g, memo: memo}
}

// solveComm runs the network solve for (fabric fi, node count at ni):
// copy the fabric template, size the topology to p, and price the
// workload's communication schedule on it.
func (e *Evaluator) solveComm(fi, ni int) float64 {
	fc := &e.g.Fabrics[fi]
	p := e.g.Nodes[ni]
	f := *fc.Template
	if err := netsim.ApplyTopology(&f, fc.Topology, p); err != nil {
		// Grid fabrics are parsed through ParseFabric, so the only
		// way here is a hand-built grid with a bad topology name;
		// treat the fabric as unusable (efficiency 0 → infeasible)
		// rather than poison the sweep.
		return math.Inf(1)
	}
	return e.g.Workload.CommSecondsPerStep(&f, p)
}

// commSeconds returns the (possibly memoized) network solve.
func (e *Evaluator) commSeconds(fi, ni int) float64 {
	if e.memo == nil {
		return e.solveComm(fi, ni)
	}
	c := &e.memo.cells[fi*e.memo.np+ni]
	if c.done.Load() == 1 {
		e.memo.hits.Add(1)
		return c.comm
	}
	c.mu.Lock()
	if c.done.Load() == 0 {
		c.comm = e.solveComm(fi, ni)
		c.done.Store(1)
		c.mu.Unlock()
		e.memo.misses.Add(1)
		return c.comm
	}
	v := c.comm
	c.mu.Unlock()
	e.memo.hits.Add(1)
	return v
}

// Point is one evaluated design: the candidate coordinates plus the
// three Pareto objectives and their supporting figures.
type Point struct {
	CPU      string  `json:"cpu"`
	Pack     string  `json:"pack"`
	Fabric   string  `json:"fabric"`
	Nodes    int     `json:"nodes"`
	AmbientC float64 `json:"ambient_c"`

	Eff    float64 `json:"eff"`     // parallel efficiency on the fabric
	Gflops float64 `json:"gflops"`  // delivered performance
	TCOUSD float64 `json:"tco_usd"` // total cost of ownership

	ToPPeR       float64 `json:"topper"`         // $/Mflops — minimize
	PerfPerWatt  float64 `json:"perf_per_watt"`  // Gflops/kW — maximize
	PerfPerSpace float64 `json:"perf_per_space"` // Mflops/ft² — maximize

	Breakdown tco.Breakdown `json:"breakdown"`
}

// Eval scores the candidate at (cpu ci, pack ki, fabric fi, nodes ni,
// ambient ai) into out and reports whether it is feasible. Degenerate
// node specs (zero rate, zero watts) and budget violations are
// infeasible, never NaN. The steady-state path (memo hit) allocates
// nothing.
func (e *Evaluator) Eval(ci, ki, fi, ni, ai int, out *Point) bool {
	g := e.g
	cp := &g.CPUs[ci]
	pk := &g.Packs[ki]
	fb := &g.Fabrics[fi]
	p := g.Nodes[ni]
	amb := g.Ambients[ai]

	// Degenerate-input guard: a node that computes nothing or draws
	// nothing cannot be priced (ToPPeR and perf/watt would divide by
	// zero); the sweep skips it instead of letting NaN reach the
	// frontier.
	if !(cp.MflopsPerCPU > 0) || !(cp.Node.WattsLoad > 0) || p <= 0 {
		return false
	}

	e.scratch = cluster.Cluster{
		Name:     cp.Name,
		Node:     cp.Node,
		Pack:     pk.Pack,
		Nodes:    p,
		AmbientC: amb,
	}
	cl := &e.scratch

	comm := 0.0
	if p > 1 {
		comm = e.commSeconds(fi, ni)
	}
	eff := g.Workload.Efficiency(cp.MflopsPerCPU, p, comm)
	gflops := cp.MflopsPerCPU * float64(p) * eff / 1000
	if !(gflops > 0) {
		return false
	}

	// Admin and outage profiles follow the packaging, with the
	// paper's 24-node labour figures scaled to the candidate size and
	// the outage rate taken from the thermal failure model — this is
	// where ambient temperature enters the cost side.
	fails := cl.ExpectedFailuresPerYear(g.Rel)
	scale := float64(p) / 24
	var admin tco.AdminProfile
	var outages tco.OutageProfile
	if pk.Blade {
		admin = tco.AdminProfile{SetupHours: 2.5 * scale, AnnualRepairUSD: 1200 * fails}
		outages = tco.OutageProfile{OutagesPerYear: fails, HoursPerOutage: 1, WholeCluster: false}
	} else {
		admin = tco.AdminProfile{SetupHours: 40 * scale, AnnualLabourUSD: 14000 * scale}
		outages = tco.OutageProfile{OutagesPerYear: fails, HoursPerOutage: g.Rel.RepairHours, WholeCluster: true}
	}

	acq := float64(p) * (cp.AcqPerNodeUSD + fb.PortCostUSD)
	b, err := tco.Compute(tco.Config{
		Name:           cp.Name,
		AcquisitionUSD: acq,
		Cluster:        cl,
		Admin:          admin,
		Outages:        outages,
	}, g.Rates)
	if err != nil {
		return false
	}

	total := b.TCO()
	powerKW := cl.TotalPowerKW()
	sqft := cl.FootprintSqFt()
	if bd := g.Budget; (bd.MaxPowerKW > 0 && powerKW > bd.MaxPowerKW) ||
		(bd.MaxSpaceSqFt > 0 && sqft > bd.MaxSpaceSqFt) ||
		(bd.MaxTCOUSD > 0 && total > bd.MaxTCOUSD) {
		return false
	}

	out.CPU = cp.Name
	out.Pack = pk.Name
	out.Fabric = fb.Name
	out.Nodes = p
	out.AmbientC = amb
	out.Eff = eff
	out.Gflops = gflops
	out.TCOUSD = total
	out.ToPPeR = tco.ToPPeR(total, gflops)
	out.PerfPerWatt = tco.PerfPerPower(gflops, powerKW)
	out.PerfPerSpace = tco.PerfPerSpace(gflops, sqft)
	out.Breakdown = b
	return true
}

// String renders a point for error messages and logs.
func (pt *Point) String() string {
	return fmt.Sprintf("%s/%s/%s p=%d %g°C: %.2f Gflops eff=%.3f ToPPeR=%.2f $/Mflops %.2f Gf/kW %.1f Mf/ft²",
		pt.CPU, pt.Pack, pt.Fabric, pt.Nodes, pt.AmbientC, pt.Gflops, pt.Eff, pt.ToPPeR, pt.PerfPerWatt, pt.PerfPerSpace)
}
