package designopt

import (
	"math"
	"sort"

	"repro/internal/par"
)

// Options are the search's execution knobs. None of them change the
// emitted frontier — worker count, memoization and pruning are all
// result-invariant (tests pin this) — only how fast it is found.
type Options struct {
	// Workers sizes the par pool; 0 uses the process default.
	Workers int
	// NoMemo recomputes the network solve for every candidate
	// (benchmark baseline for the memo's speedup guard).
	NoMemo bool
	// NoPrune disables slab dominance pruning (exhaustive
	// enumeration, the correctness cross-check).
	NoPrune bool
	// Grain is candidates per chunk; 0 uses a default of 64.
	Grain int
}

// Result is one optimization run's outcome and telemetry. Every field
// is deterministic for a given grid — including the memo counters,
// because each distinct (fabric, p) cell is solved (missed) exactly
// once and the lookup count is fixed by the deterministic prune
// decisions.
type Result struct {
	// Frontier is the Pareto-optimal set in canonical order.
	Frontier []Point
	// Candidates is the full design-space size; Evaluated is how many
	// the search actually scored; Pruned is how many were skipped by
	// slab dominance bounds (Evaluated + Pruned == Candidates).
	Candidates int
	Evaluated  int
	Pruned     int
	// Feasible counts evaluated candidates that passed the degenerate
	// and budget guards.
	Feasible int
	// Slabs is the number of (CPU × packaging × fabric) subspaces;
	// SlabsPruned how many were skipped wholesale.
	Slabs       int
	SlabsPruned int
	// MemoHits/MemoMisses are the network-solve cache counters.
	MemoHits   uint64
	MemoMisses uint64
}

// slabBound is the optimistic objective vector of one slab: no design
// in the slab can beat any component. ToPPeR is bounded below by
// acquisition-only cost at perfect efficiency; perf/watt by the bare
// node draw (plus the cooling tax) at perfect efficiency; perf/space
// by a full rack of nodes at perfect efficiency.
type slabBound struct {
	ci, ki, fi int
	topperLB   float64
	ppwUB      float64
	ppsUB      float64
}

func (g *Grid) slabBoundAt(ci, ki, fi int) slabBound {
	b := slabBound{ci: ci, ki: ki, fi: fi}
	cp := &g.CPUs[ci]
	pk := &g.Packs[ki]
	fb := &g.Fabrics[fi]
	if !(cp.MflopsPerCPU > 0) || !(cp.Node.WattsLoad > 0) {
		// Degenerate slab: nothing in it is feasible, so its bound is
		// the worst possible vector and any frontier point prunes it.
		b.topperLB = math.Inf(1)
		return b
	}
	// TCO ≥ acquisition = p·(node + port); Mflops ≤ p·rate·1 (eff ≤ 1).
	b.topperLB = (cp.AcqPerNodeUSD + fb.PortCostUSD) / cp.MflopsPerCPU
	coolF := 1.0
	if cp.Node.RequiresActiveCooling {
		coolF = 1.5
	}
	// Gflops/kW ≤ rate/(watts·cooling): chassis overhead only lowers it.
	b.ppwUB = cp.MflopsPerCPU / (cp.Node.WattsLoad * coolF)
	// Mflops/ft² ≤ a full rack at perfect efficiency. The chassis-per-
	// rack clamp mirrors Cluster.Racks so the bound stays an upper
	// bound even for chassis taller than the rack.
	chassisPerRack := pk.Pack.RackU / pk.Pack.ChassisU
	if chassisPerRack < 1 {
		chassisPerRack = 1
	}
	b.ppsUB = cp.MflopsPerCPU * float64(chassisPerRack*pk.Pack.NodesPerChassis) / pk.Pack.FootprintPerRack
	return b
}

// strictlyBeats reports whether some frontier point is strictly better
// than the bound in every objective. Since every design in the slab is
// no better than the bound componentwise, such a point strictly
// dominates every design in the slab — none can join the frontier, so
// skipping the slab cannot change the result.
func (f *Frontier) strictlyBeats(b slabBound) bool {
	for i := range f.pts {
		p := &f.pts[i]
		if p.ToPPeR < b.topperLB && p.PerfPerWatt > b.ppwUB && p.PerfPerSpace > b.ppsUB {
			return true
		}
	}
	return false
}

// chunkState is one chunk's private accumulation; merged serially in
// chunk order after the parallel phase.
type chunkState struct {
	fr       Frontier
	feasible int
}

// Optimize runs the design-space search and returns the Pareto
// frontier plus telemetry. The frontier is bit-identical at any worker
// count, with or without memoization, and with or without pruning.
func Optimize(g *Grid, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	grain := opt.Grain
	if grain <= 0 {
		grain = 64
	}
	pool := par.New(opt.Workers)
	var memo *Memo
	if !opt.NoMemo {
		memo = NewMemo(g)
	}
	evals := make([]*Evaluator, pool.Width())
	for i := range evals {
		evals[i] = NewEvaluator(g, memo)
	}

	// Slabs in ascending order of their ToPPeR lower bound (ties by
	// enumeration order): evaluating the most promising subspaces
	// first seeds the frontier with strong points, which is what lets
	// later bounds prune. The order affects only how much is pruned,
	// never the frontier (membership is order-independent).
	nf, nn, na := len(g.Fabrics), len(g.Nodes), len(g.Ambients)
	slabs := make([]slabBound, 0, len(g.CPUs)*len(g.Packs)*nf)
	for ci := range g.CPUs {
		for ki := range g.Packs {
			for fi := range g.Fabrics {
				slabs = append(slabs, g.slabBoundAt(ci, ki, fi))
			}
		}
	}
	sort.SliceStable(slabs, func(i, j int) bool { return slabs[i].topperLB < slabs[j].topperLB })

	res := &Result{Candidates: g.Candidates(), Slabs: len(slabs)}
	slabSize := nn * na
	var front Frontier
	chunks := par.NumChunks(slabSize, grain)
	states := make([]chunkState, chunks)
	for _, sb := range slabs {
		if !opt.NoPrune && front.strictlyBeats(sb) {
			res.Pruned += slabSize
			res.SlabsPruned++
			continue
		}
		for c := range states {
			states[c].fr.pts = states[c].fr.pts[:0]
			states[c].feasible = 0
		}
		ci, ki, fi := sb.ci, sb.ki, sb.fi
		pool.ForChunksWorker(slabSize, grain, func(w, c, lo, hi int) {
			ev := evals[w]
			st := &states[c]
			var pt Point
			for i := lo; i < hi; i++ {
				if ev.Eval(ci, ki, fi, i/na, i%na, &pt) {
					st.feasible++
					st.fr.Insert(pt)
				}
			}
		})
		res.Evaluated += slabSize
		for c := range states {
			res.Feasible += states[c].feasible
			front.Merge(&states[c].fr)
		}
	}

	res.Frontier = front.Sorted()
	if memo != nil {
		res.MemoHits = memo.Hits()
		res.MemoMisses = memo.Misses()
	}
	return res, nil
}

// MemoHitRate returns hits/(hits+misses), 0 when no lookups happened.
func (r *Result) MemoHitRate() float64 {
	total := r.MemoHits + r.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(r.MemoHits) / float64(total)
}
