package designopt

import (
	"fmt"
	"math"

	"repro/internal/netsim"
)

// Workload is the target application mix in machine-independent terms:
// how much arithmetic one timestep costs and how much data each rank
// must exchange per step. Per-CPU speed comes from CPUChoice (Table 1
// rates); the fabric-dependent communication time comes from
// CommSecondsPerStep, which is the expensive netsim solve the memo
// table amortizes.
type Workload struct {
	Name string `json:"name"`
	// Particles is the global problem size.
	Particles int `json:"particles"`
	// MflopPerStep is the total arithmetic per timestep, in Mflop.
	MflopPerStep float64 `json:"mflop_per_step"`
	// BytesPerParticle is the locally-essential-tree export volume per
	// boundary particle: positions, masses and multipole moments,
	// summed over the force passes one step makes.
	BytesPerParticle float64 `json:"bytes_per_particle"`
}

// TreecodeWorkload returns the paper's workload: one Warren–Salmon
// treecode timestep at the given problem size. The arithmetic cost
// (~18.5 kflop per particle per step) and the LET export volume
// (448 B per boundary particle across the step's passes) are
// calibrated so the Fast Ethernet star lands in Table 2's measured
// efficiency band (~60% at p=24).
func TreecodeWorkload(particles int) Workload {
	return Workload{
		Name:             fmt.Sprintf("treecode n=%d", particles),
		Particles:        particles,
		MflopPerStep:     0.0185 * float64(particles),
		BytesPerParticle: 448,
	}
}

// Validate checks the workload.
func (w *Workload) Validate() error {
	if w.Particles <= 0 {
		return fmt.Errorf("designopt: workload %q: particles %d", w.Name, w.Particles)
	}
	if !(w.MflopPerStep > 0) || !(w.BytesPerParticle > 0) {
		return fmt.Errorf("designopt: workload %q: mflop_per_step %g, bytes_per_particle %g",
			w.Name, w.MflopPerStep, w.BytesPerParticle)
	}
	return nil
}

// CommSecondsPerStep is the network solve: one treecode step's
// communication time on p ranks of the given (topology-applied)
// fabric. It is deliberately the full closed-form schedule, not a
// single formula — the O(p) locally-essential-tree exchange plus a
// segment-size-tuned broadcast — because this is the per-cell cost the
// memo table amortizes across the O(designs) evaluation loop.
func (w *Workload) CommSecondsPerStep(f *netsim.Fabric, p int) float64 {
	if p <= 1 {
		return 0
	}
	// Per-rank boundary surface: an ORB domain of n/p particles
	// exports ~ (n/p)^(2/3) boundary particles to its neighbours.
	local := float64(w.Particles) / float64(p)
	surface := w.BytesPerParticle * math.Cbrt(local*local)

	// 1. Domain decomposition: bisection bounds allreduce (48 B of
	// box extents) and a barrier, with the library's choice between
	// the classic and recursive-doubling allreduce.
	t := math.Min(f.Allreduce(p, 48), f.AllreduceRecDbl(p, 48)) + f.Barrier(p)

	// 2. Top-of-tree broadcast: every rank needs the root octants
	// before it can request remote cells. Tune the pipelined ring's
	// segment size across the power-of-two range and take the best,
	// against the binomial tree as the fallback.
	const topBytes = 8192
	best := f.Bcast(p, topBytes)
	for seg := 512; seg <= 65536; seg *= 2 {
		if v := f.BcastPipelined(p, topBytes, seg); v < best {
			best = v
		}
	}
	t += best

	// 3. LET exchange: p-1 ring rounds. The imported volume decays
	// with domain distance — the shell at ring distance r is ~r^(1/3)
	// domains away, so its essential surface shrinks by cbrt(r).
	for r := 1; r < p; r++ {
		t += f.PointToPoint(int(surface / math.Cbrt(float64(r))))
	}

	// 4. Work-imbalance fan-in: per-rank interaction counts to rank 0
	// for the next step's cost-zone balancing.
	t += f.FanIn(p, 16)

	// 5. Step diagnostics: energy/momentum allreduce.
	t += math.Min(f.Allreduce(p, 64), f.AllreduceRecDbl(p, 64))
	return t
}

// Efficiency converts a communication time into Table 2-style parallel
// efficiency for a CPU delivering mflops per rank: the step's compute
// time shrinks as 1/p while the communication does not.
func (w *Workload) Efficiency(mflops float64, p int, commSeconds float64) float64 {
	if p <= 1 {
		return 1
	}
	if !(mflops > 0) {
		return 0
	}
	tcomp := w.MflopPerStep / mflops / float64(p)
	return tcomp / (tcomp + commSeconds)
}
