// Package designopt is the ToPPeR design-space optimizer: a
// deterministic parallel search over cluster designs — CPU model ×
// node count × fabric/topology × packaging × ambient — that evaluates
// every candidate through the existing cluster → tco → netsim models
// against a workload mix (Table 1 per-CPU Mflops × Table 2-style
// parallel efficiency on the candidate fabric) and emits the Pareto
// frontier for the paper's three figures of merit: ToPPeR ($/Mflops,
// minimize), performance per watt (Gflops/kW, maximize) and
// performance per floor space (Mflops/ft², maximize).
//
// The search is engineered for production request volume:
//
//   - Chunked evaluation on the internal/par pool. The frontier is the
//     unique non-dominated subset of the candidates, so it is
//     bit-identical at any worker count.
//   - A memo table for the expensive netsim efficiency solves, keyed by
//     (fabric, p): the O(designs) loop amortizes to O(distinct
//     fabrics×p) network solves. Hit/miss counts are deterministic —
//     each distinct cell is solved exactly once.
//   - Monotone cost-bound dominance pruning: a slab (one CPU ×
//     packaging × fabric combination) whose optimistic bound vector is
//     strictly dominated by a frontier point already found cannot
//     contribute to the frontier and is skipped wholesale. Pruning is
//     cross-checked against exhaustive enumeration by tests.
//   - A zero-allocation steady-state inner loop (Evaluator.Eval),
//     pinned by an AllocsPerRun test and a benchreport guard.
package designopt

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/netsim"
	"repro/internal/tco"
)

// PinnedKarpMflops are the Table 1 Karp-sqrt microkernel rates of the
// five evaluation CPUs, at the simulator's full precision (EXPERIMENTS
// Table 1 prints them rounded to one decimal). The optimizer uses them
// as the per-CPU workload rates so a sweep costs no simulator runs;
// TestPinnedRatesMatchTable1 in internal/core cross-checks them against
// the live microkernel, so they cannot drift from the CPU models.
var PinnedKarpMflops = map[string]float64{
	"PIII":   163.36548713047387,
	"Alpha":  168.17227913107254,
	"TM5600": 181.19897848764228,
	"Power3": 365.22830205166019,
	"Athlon": 269.13701162959472,
}

// CPUChoice is one node option in the design space.
type CPUChoice struct {
	// Name is the short axis label ("TM5600").
	Name string `json:"name"`
	// Node carries the physical node parameters (watts, cooling).
	Node cluster.NodeSpec `json:"-"`
	// MflopsPerCPU is the workload's per-processor rate (Table 1).
	MflopsPerCPU float64 `json:"mflops_per_cpu"`
	// AcqPerNodeUSD is the per-node acquisition cost (Table 5's
	// cluster prices divided by their 24 nodes; the Power3 node is a
	// workstation-class machine priced accordingly).
	AcqPerNodeUSD float64 `json:"acq_per_node_usd"`
}

// DefaultCPUChoices returns the five Table 1 CPUs with their pinned
// microkernel rates, paper node specs and Table 5 per-node prices.
func DefaultCPUChoices() []CPUChoice {
	return []CPUChoice{
		{Name: "PIII", Node: cluster.NodePIII, MflopsPerCPU: PinnedKarpMflops["PIII"], AcqPerNodeUSD: 16000.0 / 24},
		{Name: "Alpha", Node: cluster.NodeAlpha, MflopsPerCPU: PinnedKarpMflops["Alpha"], AcqPerNodeUSD: 17000.0 / 24},
		{Name: "TM5600", Node: cluster.NodeTM5600, MflopsPerCPU: PinnedKarpMflops["TM5600"], AcqPerNodeUSD: 26000.0 / 24},
		{Name: "Power3", Node: cluster.NodePower3, MflopsPerCPU: PinnedKarpMflops["Power3"], AcqPerNodeUSD: 10000},
		{Name: "Athlon", Node: cluster.NodeAthlon, MflopsPerCPU: PinnedKarpMflops["Athlon"], AcqPerNodeUSD: 15000.0 / 24},
	}
}

// ParseCPU resolves a CPU axis name.
func ParseCPU(name string) (CPUChoice, error) {
	for _, c := range DefaultCPUChoices() {
		if strings.EqualFold(c.Name, name) {
			return c, nil
		}
	}
	return CPUChoice{}, fmt.Errorf("designopt: unknown cpu %q (want PIII, Alpha, TM5600, Power3 or Athlon)", name)
}

// PackChoice is one packaging option.
type PackChoice struct {
	// Name is the axis label ("traditional", "blade").
	Name string `json:"name"`
	Pack cluster.Packaging `json:"-"`
	// Blade selects the bladed admin/outage profile: managed chassis,
	// per-failure repair billing, single-node outages.
	Blade bool `json:"blade"`
}

// DefaultPackChoices returns the paper's two packagings.
func DefaultPackChoices() []PackChoice {
	return []PackChoice{
		{Name: "traditional", Pack: cluster.TraditionalPackaging(), Blade: false},
		{Name: "blade", Pack: cluster.BladePackaging(), Blade: true},
	}
}

// ParsePack resolves a packaging axis name.
func ParsePack(name string) (PackChoice, error) {
	for _, p := range DefaultPackChoices() {
		if strings.EqualFold(p.Name, name) {
			return p, nil
		}
	}
	return PackChoice{}, fmt.Errorf("designopt: unknown packaging %q (want traditional or blade)", name)
}

// FabricChoice is one interconnect option: a base fabric (bandwidth
// class), an optional topology, and the per-node interconnect cost the
// acquisition model charges (NIC + switch-port share; multi-stage
// topologies buy more switches per host).
type FabricChoice struct {
	Name        string `json:"name"`
	Template    *netsim.Fabric `json:"-"`
	Topology    string `json:"topology,omitempty"`
	PortCostUSD float64 `json:"port_cost_usd"`
}

// ParseFabric resolves a fabric axis name of the form base[-topology]:
// bases e10 (10 Mb/s Ethernet), fe (Fast Ethernet), ge (Gigabit);
// topologies star (default), fattree, torus2d, torus3d. Examples:
// "fe", "ge", "fe-fattree", "ge-torus3d".
func ParseFabric(name string) (FabricChoice, error) {
	base, topo := strings.ToLower(name), ""
	if i := strings.IndexByte(base, '-'); i >= 0 {
		base, topo = base[:i], base[i+1:]
	}
	fc := FabricChoice{Name: strings.ToLower(name)}
	switch base {
	case "e10":
		fc.Template = netsim.Ethernet10()
		fc.PortCostUSD = 30
	case "fe":
		fc.Template = netsim.FastEthernet()
		fc.PortCostUSD = 100
	case "ge":
		fc.Template = netsim.GigabitEthernet()
		fc.PortCostUSD = 300
	default:
		return fc, fmt.Errorf("designopt: unknown fabric base %q in %q (want e10, fe or ge)", base, name)
	}
	switch topo {
	case "", "star":
		fc.Topology = ""
	case "fattree":
		// A multi-stage fat-tree needs ~2.5x the switch ports per host.
		fc.Topology = "fattree"
		fc.PortCostUSD *= 2.5
	case "torus2d":
		fc.Topology = "torus2d"
		fc.PortCostUSD *= 1.5
	case "torus3d":
		fc.Topology = "torus3d"
		fc.PortCostUSD *= 2
	default:
		return fc, fmt.Errorf("designopt: unknown fabric topology %q in %q (want star, fattree, torus2d or torus3d)", topo, name)
	}
	return fc, nil
}

// DefaultFabricChoices returns the default interconnect axis: the
// paper's Fast Ethernet star and the Gigabit ablation.
func DefaultFabricChoices() []FabricChoice {
	fe, _ := ParseFabric("fe")
	ge, _ := ParseFabric("ge")
	return []FabricChoice{fe, ge}
}

// Budget caps the feasible region. Zero means uncapped — explicit zero
// budgets are rejected by Grid.Validate as degenerate rather than
// treated as "no cluster fits".
type Budget struct {
	MaxPowerKW   float64 `json:"max_power_kw,omitempty"`
	MaxSpaceSqFt float64 `json:"max_space_sqft,omitempty"`
	MaxTCOUSD    float64 `json:"max_tco_usd,omitempty"`
}

// Grid is the full design space: the cross product of the five axes,
// evaluated against one workload under one set of cost rates.
type Grid struct {
	CPUs     []CPUChoice
	Packs    []PackChoice
	Fabrics  []FabricChoice
	Nodes    []int
	Ambients []float64
	Budget   Budget
	Workload Workload
	Rates    tco.Rates
	Rel      cluster.ReliabilityParams
}

// DefaultGrid returns the product-default design space: the five
// Table 1 CPUs, both packagings, Fast and Gigabit Ethernet stars, node
// counts from a chassis-pair to half a K, and four machine-room
// ambients from chilled to hot-aisle.
func DefaultGrid() *Grid {
	return &Grid{
		CPUs:     DefaultCPUChoices(),
		Packs:    DefaultPackChoices(),
		Fabrics:  DefaultFabricChoices(),
		Nodes:    []int{8, 16, 24, 32, 48, 64, 96, 128, 192, 256},
		Ambients: []float64{18, 24, 27, 35},
		Workload: TreecodeWorkload(60000),
		Rates:    tco.PaperRates(),
		Rel:      cluster.DefaultReliability(),
	}
}

// Candidates returns the enumerable design count.
func (g *Grid) Candidates() int {
	return len(g.CPUs) * len(g.Packs) * len(g.Fabrics) * len(g.Nodes) * len(g.Ambients)
}

// Validate checks the grid. Degenerate CPU choices (zero rate, zero
// watts) are allowed — Eval marks them infeasible instead of letting a
// division produce NaN — but structural emptiness is an error.
func (g *Grid) Validate() error {
	if len(g.CPUs) == 0 || len(g.Packs) == 0 || len(g.Fabrics) == 0 ||
		len(g.Nodes) == 0 || len(g.Ambients) == 0 {
		return fmt.Errorf("designopt: empty grid axis (cpus=%d packs=%d fabrics=%d nodes=%d ambients=%d)",
			len(g.CPUs), len(g.Packs), len(g.Fabrics), len(g.Nodes), len(g.Ambients))
	}
	for _, p := range g.Nodes {
		if p <= 0 {
			return fmt.Errorf("designopt: node count %d", p)
		}
	}
	for _, a := range g.Ambients {
		if a < -273.15 || a != a {
			return fmt.Errorf("designopt: ambient %g°C", a)
		}
	}
	for i := range g.Fabrics {
		if g.Fabrics[i].Template == nil {
			return fmt.Errorf("designopt: fabric %q has no template", g.Fabrics[i].Name)
		}
	}
	if err := g.Rates.Validate(); err != nil {
		return err
	}
	if err := g.Workload.Validate(); err != nil {
		return err
	}
	if g.Budget.MaxPowerKW < 0 || g.Budget.MaxSpaceSqFt < 0 || g.Budget.MaxTCOUSD < 0 {
		return fmt.Errorf("designopt: negative budget %+v", g.Budget)
	}
	return nil
}
