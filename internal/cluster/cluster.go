// Package cluster models the physical side of the paper's machines: nodes
// composed into blades, chassis, and racks, with power draw, footprint,
// thermal behaviour, and the reliability rule the paper quotes —
// "unpublished (but reliable) empirical data from two leading vendors
// indicates that the failure rate of a component doubles for every
// 10 °C increase in temperature." These attributes feed the TCO model
// (Table 5) and the performance/space and performance/power metrics
// (Tables 6 and 7).
package cluster

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// NodeSpec is one compute node's physical parameters.
type NodeSpec struct {
	Name string
	// CPUModel names the processor (ties into internal/cpu specs).
	CPUModel string
	// WattsLoad is the whole-node draw under load (CPU, memory, disk,
	// NIC), in watts.
	WattsLoad float64
	// RequiresActiveCooling: traditional nodes need ~0.5 W of cooling per
	// watt dissipated; fanless blades do not (paper §4.1).
	RequiresActiveCooling bool
}

// Paper-grade node specs (§4.1's power figures: a complete P4 node draws
// ~85 W under load; a TM5600 blade node ~17 W so that 24 nodes dissipate
// 0.4 kW).
var (
	NodeTM5600 = NodeSpec{Name: "RLX ServerBlade (TM5600)", CPUModel: "TM5600", WattsLoad: 17, RequiresActiveCooling: false}
	NodeTM5800 = NodeSpec{Name: "RLX ServerBlade (TM5800)", CPUModel: "TM5800", WattsLoad: 15, RequiresActiveCooling: false}
	NodeP4     = NodeSpec{Name: "Pentium 4 node", CPUModel: "P4-1300", WattsLoad: 85, RequiresActiveCooling: true}
	NodePIII   = NodeSpec{Name: "Pentium III node", CPUModel: "PIII-500", WattsLoad: 45, RequiresActiveCooling: true}
	NodeAthlon = NodeSpec{Name: "Athlon node", CPUModel: "AthlonMP-1200", WattsLoad: 50, RequiresActiveCooling: true}
	NodeAlpha  = NodeSpec{Name: "Alpha EV56 node", CPUModel: "AlphaEV56-533", WattsLoad: 90, RequiresActiveCooling: true}
	// NodePower3 is a workstation-class RS/6000 node (Table 1's fifth
	// CPU): fast, hot and priced like a workstation, which is exactly
	// the trade-off the design-space optimizer exists to expose.
	NodePower3 = NodeSpec{Name: "Power3 node", CPUModel: "Power3-375", WattsLoad: 140, RequiresActiveCooling: true}
)

// Packaging describes how nodes are aggregated physically.
type Packaging struct {
	Name string
	// NodesPerChassis and the chassis' rack-unit height.
	NodesPerChassis int
	ChassisU        int
	// RackU is usable rack units per rack; FootprintPerRack is the floor
	// space one rack (with service clearance) occupies, in square feet.
	RackU            int
	FootprintPerRack float64
	// ChassisOverheadWatts covers the chassis' shared infrastructure
	// (power supplies, management and network-connect cards).
	ChassisOverheadWatts float64
}

// BladePackaging is the RLX System 324: 24 blades in a 3U chassis,
// ten chassis per 42U rack, six square feet of floor per rack.
func BladePackaging() Packaging {
	return Packaging{
		Name:                 "RLX System 324 (bladed)",
		NodesPerChassis:      24,
		ChassisU:             3,
		RackU:                42,
		FootprintPerRack:     6,
		ChassisOverheadWatts: 120,
	}
}

// TraditionalPackaging is a 2001-era tower/shelf cluster: 24 nodes per
// 20 ft² bay including service clearance, scaling linearly with node
// count, exactly as the paper's §4.1 space figures do (20 ft² at 24
// nodes, 200 ft² at 240).
func TraditionalPackaging() Packaging {
	return Packaging{
		Name:             "traditional rackmount",
		NodesPerChassis:  1,
		ChassisU:         1,
		RackU:            24,
		FootprintPerRack: 20,
		// The paper's per-node wattages are complete-node figures, so the
		// traditional config carries no separate chassis overhead.
		ChassisOverheadWatts: 0,
	}
}

// Cluster is a complete machine.
type Cluster struct {
	Name     string
	Node     NodeSpec
	Pack     Packaging
	Nodes    int
	AmbientC float64 // machine-room ambient temperature, °C
}

// New builds a cluster and validates it.
func New(name string, node NodeSpec, pack Packaging, nodes int, ambientC float64) (*Cluster, error) {
	c := &Cluster{Name: name, Node: node, Pack: pack, Nodes: nodes, AmbientC: ambientC}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c, nil
}

// Validate checks the configuration.
func (c *Cluster) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("cluster: %s: no nodes", c.Name)
	}
	if c.Node.WattsLoad <= 0 {
		return fmt.Errorf("cluster: %s: node draws no power", c.Name)
	}
	if c.Pack.NodesPerChassis <= 0 || c.Pack.ChassisU <= 0 || c.Pack.RackU <= 0 {
		return fmt.Errorf("cluster: %s: bad packaging %+v", c.Name, c.Pack)
	}
	if c.Pack.FootprintPerRack <= 0 {
		return fmt.Errorf("cluster: %s: no footprint", c.Name)
	}
	return nil
}

// Chassis returns the chassis count.
func (c *Cluster) Chassis() int {
	return (c.Nodes + c.Pack.NodesPerChassis - 1) / c.Pack.NodesPerChassis
}

// Racks returns the rack count.
func (c *Cluster) Racks() int {
	perRack := c.Pack.RackU / c.Pack.ChassisU
	if perRack < 1 {
		perRack = 1
	}
	return (c.Chassis() + perRack - 1) / perRack
}

// FootprintSqFt returns floor space in square feet.
func (c *Cluster) FootprintSqFt() float64 {
	return float64(c.Racks()) * c.Pack.FootprintPerRack
}

// ComputePowerKW is the IT load: nodes plus chassis overhead, in kW.
func (c *Cluster) ComputePowerKW() float64 {
	w := float64(c.Nodes)*c.Node.WattsLoad + float64(c.Chassis())*c.Pack.ChassisOverheadWatts
	return w / 1000
}

// CoolingPowerKW is the cooling draw: the paper charges half a watt of
// cooling per watt dissipated for traditional clusters and none for the
// fanless blades.
func (c *Cluster) CoolingPowerKW() float64 {
	if !c.Node.RequiresActiveCooling {
		return 0
	}
	return 0.5 * c.ComputePowerKW()
}

// TotalPowerKW is compute plus cooling.
func (c *Cluster) TotalPowerKW() float64 {
	return c.ComputePowerKW() + c.CoolingPowerKW()
}

// --- Reliability ---

// ReliabilityParams hold the failure model's constants.
type ReliabilityParams struct {
	// BaseMTBFHours is a node's mean time between failures at BaseTempC.
	BaseMTBFHours float64
	BaseTempC     float64
	// RepairHours is the mean outage per failure (diagnosis + swap).
	RepairHours float64
	// WholeClusterOutage: the paper's conservative assumption that a
	// single failure takes the whole cluster down for the repair period.
	WholeClusterOutage bool
}

// DefaultReliability reproduces the paper's anecdotes: a traditional
// Beowulf in a 75 °F (≈24 °C) office sees "a failure and subsequent
// four-hour outage (on average) every two months". The baseline is
// anchored at the *component* temperature of such a node (≈45 °C for an
// 85 W node in a 24 °C room under this package's thermal model), so that
// the 24-node traditional cluster lands at six failures per year.
func DefaultReliability() ReliabilityParams {
	return ReliabilityParams{
		BaseMTBFHours:      24 * 1460, // one failure per 2 months across 24 nodes
		BaseTempC:          45,
		RepairHours:        4,
		WholeClusterOutage: true,
	}
}

// NodeTempC estimates component temperature: ambient plus a rise
// proportional to node power (hot components run well above ambient; a
// dense 85 W node runs hotter than a 17 W blade).
func (c *Cluster) NodeTempC() float64 {
	const riseCPerWatt = 0.25
	return c.AmbientC + riseCPerWatt*c.Node.WattsLoad
}

// FailureRateMultiplier applies the paper's doubling-per-10 °C rule
// relative to the reliability baseline temperature.
func (c *Cluster) FailureRateMultiplier(r ReliabilityParams) float64 {
	return math.Pow(2, (c.NodeTempC()-r.BaseTempC)/10)
}

// ExpectedFailuresPerYear returns the cluster-wide failure rate. A
// degenerate reliability model (non-positive MTBF) yields zero rather
// than a division by zero, so an optimizer sweep over hand-built
// parameters cannot push NaN or Inf into a cost frontier.
func (c *Cluster) ExpectedFailuresPerYear(r ReliabilityParams) float64 {
	if r.BaseMTBFHours <= 0 {
		return 0
	}
	perNodeRate := c.FailureRateMultiplier(r) / r.BaseMTBFHours // failures/hour
	return perNodeRate * float64(c.Nodes) * 8760
}

// ExpectedDowntimeHoursPerYear returns cluster outage hours per year
// under the paper's whole-cluster-outage assumption.
func (c *Cluster) ExpectedDowntimeHoursPerYear(r ReliabilityParams) float64 {
	if !r.WholeClusterOutage {
		return 0
	}
	return c.ExpectedFailuresPerYear(r) * r.RepairHours
}

// Availability returns the expected fraction of the year the cluster is
// up.
func (c *Cluster) Availability(r ReliabilityParams) float64 {
	down := c.ExpectedDowntimeHoursPerYear(r)
	return 1 - down/8760
}

// --- Failure-injection simulation ---

// FailureSim runs a discrete-event reliability simulation over `years`
// and returns observed failures and downtime hours. It exists to validate
// the closed-form expectations above and to support failure-injection
// tests.
func (c *Cluster) FailureSim(r ReliabilityParams, years float64, seed uint64) (failures int, downtimeHours float64) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(seed)
	horizon := years * 8760
	perNodeMTBF := r.BaseMTBFHours / c.FailureRateMultiplier(r)
	// Degenerate inputs (zero/negative MTBF, or a multiplier driven to
	// Inf) would make every exponential draw zero — an event storm
	// pinned at t=0 that never advances. Report zero failures instead.
	if !(perNodeMTBF > 0) || math.IsInf(perNodeMTBF, 0) || c.Nodes <= 0 {
		return 0, 0
	}

	var scheduleNode func(node int)
	scheduleNode = func(node int) {
		dt := rng.Exp(perNodeMTBF)
		eng.Schedule(dt, func() {
			if eng.Now() > horizon {
				return
			}
			failures++
			downtimeHours += r.RepairHours
			scheduleNode(node)
		})
	}
	for n := 0; n < c.Nodes; n++ {
		scheduleNode(n)
	}
	eng.RunUntil(horizon)
	return failures, downtimeHours
}
