package cluster

import (
	"math"
	"testing"
)

func metaBlade(t *testing.T) *Cluster {
	t.Helper()
	c, err := New("MetaBlade", NodeTM5600, BladePackaging(), 24, 27)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func traditional(t *testing.T, node NodeSpec) *Cluster {
	t.Helper()
	c, err := New("traditional", node, TraditionalPackaging(), 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestValidation(t *testing.T) {
	if _, err := New("x", NodeTM5600, BladePackaging(), 0, 24); err == nil {
		t.Error("zero nodes accepted")
	}
	bad := NodeTM5600
	bad.WattsLoad = 0
	if _, err := New("x", bad, BladePackaging(), 24, 24); err == nil {
		t.Error("zero power accepted")
	}
	badPack := BladePackaging()
	badPack.FootprintPerRack = 0
	if _, err := New("x", NodeTM5600, badPack, 24, 24); err == nil {
		t.Error("zero footprint accepted")
	}
}

func TestMetaBladeGeometry(t *testing.T) {
	c := metaBlade(t)
	if c.Chassis() != 1 {
		t.Fatalf("Chassis = %d, want 1 (24 blades per 3U chassis)", c.Chassis())
	}
	if c.Racks() != 1 {
		t.Fatalf("Racks = %d", c.Racks())
	}
	if c.FootprintSqFt() != 6 {
		t.Fatalf("Footprint = %v ft², paper says 6", c.FootprintSqFt())
	}
}

func TestGreenDestinyGeometry(t *testing.T) {
	// 240 nodes = 10 chassis = 30U: one rack, still six square feet —
	// the "cluster in a rack" the paper's footnote 5 describes.
	c, err := New("Green Destiny", NodeTM5800, BladePackaging(), 240, 27)
	if err != nil {
		t.Fatal(err)
	}
	if c.Chassis() != 10 {
		t.Fatalf("Chassis = %d, want 10", c.Chassis())
	}
	if c.Racks() != 1 {
		t.Fatalf("Racks = %d, want 1 (10 × 3U fits a 42U rack)", c.Racks())
	}
	if c.FootprintSqFt() != 6 {
		t.Fatalf("Footprint = %v, want 6", c.FootprintSqFt())
	}
}

func TestTraditionalFootprintLarger(t *testing.T) {
	trad := traditional(t, NodeP4)
	blade := metaBlade(t)
	if trad.FootprintSqFt() <= blade.FootprintSqFt() {
		t.Fatalf("traditional %v ft² not larger than blade %v ft²", trad.FootprintSqFt(), blade.FootprintSqFt())
	}
	if trad.FootprintSqFt() != 20 {
		t.Fatalf("24-node traditional = %v ft², paper says 20", trad.FootprintSqFt())
	}
}

func TestMetaBladePowerMatchesPaper(t *testing.T) {
	// Paper: "our 24-node MetaBlade ... dissipates 0.4 kW at load and
	// requires no fans or active cooling".
	c := metaBlade(t)
	if p := c.ComputePowerKW(); math.Abs(p-0.52) > 0.15 {
		t.Fatalf("MetaBlade compute power %v kW, want ≈0.5", p)
	}
	if c.CoolingPowerKW() != 0 {
		t.Fatalf("blade cooling power %v, want 0", c.CoolingPowerKW())
	}
}

func TestP4ClusterPowerMatchesPaper(t *testing.T) {
	// Paper: a P4 node ≈85 W ⇒ 2.04 kW for 24 nodes; cooling pushes the
	// total 50% higher.
	c := traditional(t, NodeP4)
	if p := c.ComputePowerKW(); math.Abs(p-2.04) > 0.15 {
		t.Fatalf("P4 cluster %v kW, want ≈2.04", p)
	}
	if r := c.TotalPowerKW() / c.ComputePowerKW(); math.Abs(r-1.5) > 1e-9 {
		t.Fatalf("cooling multiplier %v, want 1.5", r)
	}
}

func TestFailureRateDoublesPer10C(t *testing.T) {
	r := DefaultReliability()
	c := metaBlade(t)
	c.AmbientC = r.BaseTempC - 0.25*c.Node.WattsLoad // node temp == base
	base := c.ExpectedFailuresPerYear(r)
	c.AmbientC += 10
	hot := c.ExpectedFailuresPerYear(r)
	if math.Abs(hot/base-2) > 1e-9 {
		t.Fatalf("failure rate ratio %v per +10°C, want 2", hot/base)
	}
}

func TestBladeFailsLessThanTraditionalAtSameAmbient(t *testing.T) {
	// Lower power ⇒ cooler components ⇒ fewer failures, even in the
	// paper's dustier, warmer blade environment (80 °F vs 75 °F).
	r := DefaultReliability()
	blade := metaBlade(t) // 27 °C ambient (80 °F)
	trad := traditional(t, NodeP4)
	trad.AmbientC = 24 // 75 °F office
	if blade.ExpectedFailuresPerYear(r) >= trad.ExpectedFailuresPerYear(r) {
		t.Fatalf("blade failures/yr %v not below traditional %v",
			blade.ExpectedFailuresPerYear(r), trad.ExpectedFailuresPerYear(r))
	}
}

func TestTraditionalDowntimeMatchesPaperAnecdote(t *testing.T) {
	// Paper: traditional Beowulf fails every two months with a 4-hour
	// outage ⇒ ~24 h/year of downtime.
	r := DefaultReliability()
	trad := traditional(t, NodeP4)
	trad.AmbientC = 24
	down := trad.ExpectedDowntimeHoursPerYear(r)
	if down < 12 || down > 48 {
		t.Fatalf("traditional downtime %v h/yr, want ≈24", down)
	}
}

func TestAvailabilityInRange(t *testing.T) {
	r := DefaultReliability()
	for _, c := range []*Cluster{metaBlade(t), traditional(t, NodeP4)} {
		a := c.Availability(r)
		if a <= 0.9 || a > 1 {
			t.Fatalf("%s availability %v out of plausible range", c.Name, a)
		}
	}
}

func TestFailureSimMatchesExpectation(t *testing.T) {
	// The discrete-event simulation must agree with the closed form
	// within sampling error over many years.
	r := DefaultReliability()
	c := traditional(t, NodeP4)
	c.AmbientC = 24
	years := 200.0
	fails, down := c.FailureSim(r, years, 42)
	wantFails := c.ExpectedFailuresPerYear(r) * years
	if math.Abs(float64(fails)-wantFails)/wantFails > 0.15 {
		t.Fatalf("sim failures %d vs expected %.0f", fails, wantFails)
	}
	wantDown := c.ExpectedDowntimeHoursPerYear(r) * years
	if math.Abs(down-wantDown)/wantDown > 0.15 {
		t.Fatalf("sim downtime %v vs expected %v", down, wantDown)
	}
}

func TestFailureSimDeterministicPerSeed(t *testing.T) {
	r := DefaultReliability()
	c := metaBlade(t)
	f1, d1 := c.FailureSim(r, 50, 7)
	f2, d2 := c.FailureSim(r, 50, 7)
	if f1 != f2 || d1 != d2 {
		t.Fatal("same seed gave different results")
	}
	f3, _ := c.FailureSim(r, 50, 8)
	if f1 == f3 {
		t.Log("different seeds coincided (possible but unlikely); not fatal")
	}
}

func TestFailureSimDegenerateInputsReturnZero(t *testing.T) {
	// A zero or negative MTBF must not divide by zero in the closed
	// form, and must not pin the event simulation at t=0 (every
	// exponential draw would be zero — an infinite loop). The design-
	// space optimizer sweeps hand-built parameter sets, so degenerate
	// inputs have to degrade to "no failures", never NaN or a hang.
	c := metaBlade(t)
	for _, mtbf := range []float64{0, -10} {
		r := DefaultReliability()
		r.BaseMTBFHours = mtbf
		if got := c.ExpectedFailuresPerYear(r); got != 0 {
			t.Errorf("MTBF %g: expected failures %g, want 0", mtbf, got)
		}
		f, d := c.FailureSim(r, 50, 7)
		if f != 0 || d != 0 {
			t.Errorf("MTBF %g: sim reported %d failures, %g h", mtbf, f, d)
		}
	}
	// An absurdly cold baseline drives the multiplier toward +Inf and
	// the per-node MTBF toward 0 — same guard, different route.
	r := DefaultReliability()
	r.BaseTempC = -1e7
	if f, d := c.FailureSim(r, 50, 7); f != 0 || d != 0 {
		t.Errorf("divergent multiplier: sim reported %d failures, %g h", f, d)
	}
	if got := c.Availability(DefaultReliability()); math.IsNaN(got) {
		t.Error("availability NaN")
	}
}

func TestChassisOverheadCounted(t *testing.T) {
	with, _ := New("x", NodeTM5600, BladePackaging(), 24, 24)
	packNo := BladePackaging()
	packNo.ChassisOverheadWatts = 0
	without, _ := New("y", NodeTM5600, packNo, 24, 24)
	if with.ComputePowerKW() <= without.ComputePowerKW() {
		t.Fatal("chassis overhead not charged")
	}
}

func TestMultiRackGeometry(t *testing.T) {
	// 480 blades = 20 chassis = 60U → 2 racks, 12 ft².
	c, err := New("2 racks", NodeTM5800, BladePackaging(), 480, 24)
	if err != nil {
		t.Fatal(err)
	}
	if c.Racks() != 2 {
		t.Fatalf("Racks = %d, want 2", c.Racks())
	}
	if c.FootprintSqFt() != 12 {
		t.Fatalf("Footprint = %v, want 12", c.FootprintSqFt())
	}
}
