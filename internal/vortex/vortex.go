// Package vortex implements the vortex particle method on top of the
// treecode library — the first of the paper's §3.5.1 client codes ("The
// vortex particle method requires only 2500 lines interfaced to the same
// treecode library"), citing Salmon, Warren & Winckelmans, "Fast Parallel
// Treecodes for Gravitational and Fluid Dynamical N-body Problems".
//
// Vortex particles carry a circulation vector Γ; the fluid velocity they
// induce is the Biot–Savart sum
//
//	u(x) = -(1/4π) Σ_j (x − x_j) × Γ_j / |x − x_j|³   (softened)
//
// Each Cartesian component of the sum is structurally a gravitational
// force sum with "mass" Γ_c, so the method reuses the gravity treecode
// verbatim: three tree passes (one per circulation component) assemble
// the cross product. This is precisely the library-reuse economics the
// paper describes.
package vortex

import (
	"fmt"
	"math"

	"repro/internal/par"
	"repro/internal/treecode"
)

// Particles is a set of vortex particles.
type Particles struct {
	X, Y, Z    []float64
	GX, GY, GZ []float64 // circulation vector Γ per particle
	// Eps is the Rosenhead–Moore softening.
	Eps float64
}

// New allocates n vortex particles.
func New(n int) *Particles {
	return &Particles{
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		GX: make([]float64, n), GY: make([]float64, n), GZ: make([]float64, n),
		Eps: 0.05,
	}
}

// N returns the particle count.
func (p *Particles) N() int { return len(p.X) }

// Validate checks array consistency.
func (p *Particles) Validate() error {
	n := p.N()
	for _, a := range [][]float64{p.Y, p.Z, p.GX, p.GY, p.GZ} {
		if len(a) != n {
			return fmt.Errorf("vortex: inconsistent array lengths")
		}
	}
	if p.Eps < 0 {
		return fmt.Errorf("vortex: negative softening")
	}
	return nil
}

// VelocityDirect evaluates the Biot–Savart velocity at (x,y,z) by direct
// summation — the accuracy reference.
func (p *Particles) VelocityDirect(x, y, z float64) (ux, uy, uz float64) {
	eps2 := p.Eps * p.Eps
	for j := 0; j < p.N(); j++ {
		dx := x - p.X[j]
		dy := y - p.Y[j]
		dz := z - p.Z[j]
		r2 := dx*dx + dy*dy + dz*dz + eps2
		rinv3 := 1 / (r2 * math.Sqrt(r2))
		// (d × Γ)/r³
		cx := dy*p.GZ[j] - dz*p.GY[j]
		cy := dz*p.GX[j] - dx*p.GZ[j]
		cz := dx*p.GY[j] - dy*p.GX[j]
		ux += cx * rinv3
		uy += cy * rinv3
		uz += cz * rinv3
	}
	s := -1 / (4 * math.Pi)
	return s * ux, s * uy, s * uz
}

// FieldTrees hold the component trees used for fast evaluation. Because
// circulation components are signed and the gravity tree's monopole
// (centre-of-"mass") degenerates when a cell's net source cancels, each
// component is split into its positive and negative parts — six
// well-conditioned, non-negative trees in all.
type FieldTrees struct {
	pos, neg [3]*treecode.Tree
	eps      float64
	// Stats accumulates interaction counts across evaluations.
	Stats treecode.Stats
}

// BuildTrees constructs the signed-split circulation-component trees
// (the gravity tree with |Γ_c^±| as mass).
func (p *Particles) BuildTrees(opt treecode.BuildOptions) (*FieldTrees, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	mk := func(g []float64, sign float64) (*treecode.Tree, error) {
		srcs := make([]treecode.Source, p.N())
		for i := range srcs {
			m := sign * g[i]
			if m < 0 {
				m = 0
			}
			srcs[i] = treecode.Source{X: p.X[i], Y: p.Y[i], Z: p.Z[i], M: m, Index: i}
		}
		return treecode.Build(srcs, opt)
	}
	f := &FieldTrees{eps: p.Eps}
	// The six signed-component trees are independent builds; run them on
	// the pool (each Build also parallelizes internally for large N).
	comps := [3][]float64{p.GX, p.GY, p.GZ}
	var errs [6]error
	tasks := make([]func(), 0, 6)
	for c := 0; c < 3; c++ {
		c := c
		tasks = append(tasks,
			func() { f.pos[c], errs[2*c] = mk(comps[c], 1) },
			func() { f.neg[c], errs[2*c+1] = mk(comps[c], -1) })
	}
	par.New(opt.Workers).Do(tasks...)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// Velocity evaluates the Biot–Savart velocity at a point with the trees:
// F^c(x) = Σ Γ_c,j (x_j − x)/|…|³ comes from ForceAt with mass Γ_c, and
// the cross product is assembled from the three component fields. The
// MAC θ trades accuracy for work exactly as in the gravity code.
func (f *FieldTrees) Velocity(x, y, z, theta float64) (ux, uy, uz float64) {
	return f.VelocityStats(x, y, z, theta, &f.Stats)
}

// VelocityStats is Velocity with an explicit interaction-stats
// accumulator, for callers evaluating many points concurrently (the
// shared Stats field would otherwise race).
func (f *FieldTrees) VelocityStats(x, y, z, theta float64, st *treecode.Stats) (ux, uy, uz float64) {
	// ForceAt returns F^m = Σ m_j d_j/|d_j|³ with d_j = x_j − x (toward
	// the source); Biot–Savart needs Σ (x − x_j) × Γ_j = Σ (−d_j) × Γ_j,
	// and with the −1/(4π) prefactor the signs cancel to +1/(4π).
	var fc [3][3]float64 // fc[c] = F^{Γ_c}
	for c := 0; c < 3; c++ {
		px, py, pz := f.pos[c].ForceAt(x, y, z, -1, theta, f.eps, st)
		nx, ny, nz := f.neg[c].ForceAt(x, y, z, -1, theta, f.eps, st)
		fc[c] = [3]float64{px - nx, py - ny, pz - nz}
	}
	s := 1 / (4 * math.Pi)
	ux = s * (fc[2][1] - fc[1][2]) // F^z_y − F^y_z
	uy = s * (fc[0][2] - fc[2][0])
	uz = s * (fc[1][0] - fc[0][1])
	return ux, uy, uz
}

// VelocityArena is VelocityStats evaluated through the interaction-list
// engine with a caller-owned walk arena: the six component walks per
// point reuse the arena's storage, so a warm sweep over many points
// allocates nothing. Bit-identical to VelocityStats.
func (f *FieldTrees) VelocityArena(x, y, z, theta float64, st *treecode.Stats, ar *treecode.WalkArena) (ux, uy, uz float64) {
	var fc [3][3]float64
	for c := 0; c < 3; c++ {
		px, py, pz := f.pos[c].ForceAtList(x, y, z, -1, theta, f.eps, st, ar)
		nx, ny, nz := f.neg[c].ForceAtList(x, y, z, -1, theta, f.eps, st, ar)
		fc[c] = [3]float64{px - nx, py - ny, pz - nz}
	}
	s := 1 / (4 * math.Pi)
	ux = s * (fc[2][1] - fc[1][2])
	uy = s * (fc[0][2] - fc[2][0])
	uz = s * (fc[1][0] - fc[0][1])
	return ux, uy, uz
}

// velGrain is the per-chunk particle count of the parallel Biot–Savart
// evaluation loop.
const velGrain = 128

// SelfVelocities computes the induced velocity at every particle
// position with the tree method. Evaluations run on the host worker
// pool (width from opt.Workers; 0 follows par.Workers()) and are
// bit-identical at every width.
func (p *Particles) SelfVelocities(theta float64, opt treecode.BuildOptions) (ux, uy, uz []float64, stats treecode.Stats, err error) {
	trees, err := p.BuildTrees(opt)
	if err != nil {
		return nil, nil, nil, stats, err
	}
	n := p.N()
	ux = make([]float64, n)
	uy = make([]float64, n)
	uz = make([]float64, n)
	pool := par.New(opt.Workers)
	chunkStats := make([]treecode.Stats, par.NumChunks(n, velGrain))
	// Per-worker walk arenas: each worker owns one reusable interaction
	// list across all six component walks of all its chunks, so the
	// sweep is allocation-free after the first few walks. Results stay
	// bit-identical at any width (the arena is scratch, never state).
	arenas := make([]*treecode.WalkArena, pool.Width())
	for w := range arenas {
		arenas[w] = treecode.NewWalkArena()
	}
	pool.ForChunksWorker(n, velGrain, func(w, c, lo, hi int) {
		st := &chunkStats[c]
		ar := arenas[w]
		for i := lo; i < hi; i++ {
			ux[i], uy[i], uz[i] = trees.VelocityArena(p.X[i], p.Y[i], p.Z[i], theta, st, ar)
		}
	})
	for _, ar := range arenas {
		ar.FlushTelemetry()
	}
	for _, cs := range chunkStats {
		trees.Stats.PP += cs.PP
		trees.Stats.PC += cs.PC
	}
	return ux, uy, uz, trees.Stats, nil
}

// Ring initializes a discretized vortex ring of the given radius and
// total circulation in the z=0 plane, centred at the origin.
func Ring(n int, radius, circulation float64) *Particles {
	p := New(n)
	for i := 0; i < n; i++ {
		phi := 2 * math.Pi * float64(i) / float64(n)
		p.X[i] = radius * math.Cos(phi)
		p.Y[i] = radius * math.Sin(phi)
		// Γ tangent to the ring, magnitude Γ_total·(arc length)/segment.
		seg := circulation * 2 * math.Pi * radius / float64(n)
		p.GX[i] = -seg * math.Sin(phi)
		p.GY[i] = seg * math.Cos(phi)
	}
	return p
}

// Step advances the particles by forward-Euler advection in their own
// induced field (vortex methods advect particles with the flow).
func (p *Particles) Step(dt, theta float64) error {
	if dt <= 0 {
		return fmt.Errorf("vortex: non-positive dt")
	}
	ux, uy, uz, _, err := p.SelfVelocities(theta, treecode.BuildOptions{})
	if err != nil {
		return err
	}
	for i := 0; i < p.N(); i++ {
		p.X[i] += dt * ux[i]
		p.Y[i] += dt * uy[i]
		p.Z[i] += dt * uz[i]
	}
	return nil
}

// TotalCirculation returns ΣΓ (an invariant of inviscid advection).
func (p *Particles) TotalCirculation() (gx, gy, gz float64) {
	for i := 0; i < p.N(); i++ {
		gx += p.GX[i]
		gy += p.GY[i]
		gz += p.GZ[i]
	}
	return
}
