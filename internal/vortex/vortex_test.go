package vortex

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/treecode"
)

func randomBlob(n int, seed uint64) *Particles {
	rng := sim.NewRNG(seed)
	p := New(n)
	for i := 0; i < n; i++ {
		p.X[i] = rng.Float64()
		p.Y[i] = rng.Float64()
		p.Z[i] = rng.Float64()
		p.GX[i] = rng.Float64() - 0.5
		p.GY[i] = rng.Float64() - 0.5
		p.GZ[i] = rng.Float64() - 0.5
	}
	return p
}

func TestTreeMatchesDirectBiotSavart(t *testing.T) {
	p := randomBlob(800, 3)
	trees, err := p.BuildTrees(treecode.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var sumErr, sumMag float64
	for probe := 0; probe < 50; probe++ {
		x, y, z := p.X[probe*13%800], p.Y[probe*13%800]+0.01, p.Z[probe*13%800]
		dx, dy, dz := p.VelocityDirect(x, y, z)
		tx, ty, tz := trees.Velocity(x, y, z, 0.4)
		sumErr += (dx-tx)*(dx-tx) + (dy-ty)*(dy-ty) + (dz-tz)*(dz-tz)
		sumMag += dx*dx + dy*dy + dz*dz
	}
	rms := math.Sqrt(sumErr / sumMag)
	if rms > 0.02 {
		t.Fatalf("tree Biot–Savart RMS error %g vs direct", rms)
	}
	if trees.Stats.Interactions() == 0 {
		t.Fatal("no interactions recorded")
	}
}

func TestSingleVortexAnalytic(t *testing.T) {
	// One particle with Γ = ẑ at the origin: u(x,0,0) points in -ŷ?
	// u = -(1/4π)(x−x_j)×Γ/r³: (x̂ × ẑ) = -ŷ ⇒ u = +(1/4π)/x² · ŷ... check
	// against the direct evaluator and magnitude 1/(4π x²) (softening off).
	p := New(1)
	p.Eps = 0
	p.GZ[0] = 1
	ux, uy, uz := p.VelocityDirect(2, 0, 0)
	want := 1.0 / (4 * math.Pi * 4)
	if math.Abs(ux) > 1e-15 || math.Abs(uz) > 1e-15 {
		t.Fatalf("off-axis components: %g, %g", ux, uz)
	}
	if math.Abs(math.Abs(uy)-want) > 1e-12 {
		t.Fatalf("|u_y| = %g, want %g", math.Abs(uy), want)
	}
}

func TestRingTranslatesAlongAxis(t *testing.T) {
	// A vortex ring self-advects along its axis (+z for positive
	// circulation) without changing radius much — the classic smoke-ring.
	p := Ring(64, 1.0, 1.0)
	z0 := meanZ(p)
	r0 := meanR(p)
	for step := 0; step < 10; step++ {
		if err := p.Step(0.01, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	z1 := meanZ(p)
	r1 := meanR(p)
	if math.Abs(z1-z0) < 1e-4 {
		t.Fatalf("ring did not translate: Δz = %g", z1-z0)
	}
	// Radius approximately preserved.
	if math.Abs(r1-r0)/r0 > 0.05 {
		t.Fatalf("ring radius drifted: %g → %g", r0, r1)
	}
	// All particles moved the same way (rigid translation).
	var spread float64
	for i := 0; i < p.N(); i++ {
		spread += (p.Z[i] - z1) * (p.Z[i] - z1)
	}
	if math.Sqrt(spread/float64(p.N())) > 0.01 {
		t.Fatalf("ring deformed along z")
	}
}

func meanZ(p *Particles) float64 {
	var s float64
	for i := 0; i < p.N(); i++ {
		s += p.Z[i]
	}
	return s / float64(p.N())
}

func meanR(p *Particles) float64 {
	var s float64
	for i := 0; i < p.N(); i++ {
		s += math.Sqrt(p.X[i]*p.X[i] + p.Y[i]*p.Y[i])
	}
	return s / float64(p.N())
}

func TestCirculationInvariant(t *testing.T) {
	p := Ring(32, 1, 2)
	gx0, gy0, gz0 := p.TotalCirculation()
	// A closed ring's total circulation vector sums to ~0.
	if math.Abs(gx0)+math.Abs(gy0)+math.Abs(gz0) > 1e-12 {
		t.Fatalf("ring circulation not closed: %g %g %g", gx0, gy0, gz0)
	}
	if err := p.Step(0.01, 0.5); err != nil {
		t.Fatal(err)
	}
	gx1, gy1, gz1 := p.TotalCirculation()
	if gx1 != gx0 || gy1 != gy0 || gz1 != gz0 {
		t.Fatal("advection changed circulation")
	}
}

func TestValidation(t *testing.T) {
	p := New(4)
	p.Eps = -1
	if _, err := p.BuildTrees(treecode.BuildOptions{}); err == nil {
		t.Fatal("negative softening accepted")
	}
	p = New(4)
	if err := p.Step(0, 0.5); err == nil {
		t.Fatal("dt=0 accepted")
	}
}
