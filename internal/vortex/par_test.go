package vortex

import (
	"testing"

	"repro/internal/treecode"
)

// TestSelfVelocitiesBitIdentical asserts the parallel Biot–Savart
// evaluation (and its six concurrent tree builds) is bit-identical to
// serial at worker counts 1, 2 and 8, including interaction stats.
func TestSelfVelocitiesBitIdentical(t *testing.T) {
	run := func(w int) (ux, uy, uz []float64, st treecode.Stats) {
		ring := Ring(700, 1, 1)
		ux, uy, uz, st, err := ring.SelfVelocities(0.5, treecode.BuildOptions{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		return ux, uy, uz, st
	}
	rx, ry, rz, rst := run(1)
	for _, w := range []int{2, 8} {
		gx, gy, gz, gst := run(w)
		if gst != rst {
			t.Fatalf("workers=%d stats %+v differ from serial %+v", w, gst, rst)
		}
		for i := range rx {
			if gx[i] != rx[i] || gy[i] != ry[i] || gz[i] != rz[i] {
				t.Fatalf("workers=%d: velocity of particle %d differs from serial", w, i)
			}
		}
	}
}
