package vliw

import (
	"testing"

	"repro/internal/isa"
)

// TestExecuteZeroAlloc pins the VLIW execution core as allocation-free:
// Execute commits molecule writes through a fixed-size buffer, so running
// a translation — including loads, stores, FP ops and a taken branch —
// must not touch the heap.
func TestExecuteZeroAlloc(t *testing.T) {
	arch := isa.NewState(8)
	st := NewState(arch)
	tr := &Translation{
		EntryPC: 0,
		FallPC:  9,
		Molecules: []Molecule{
			mol(Atom{Op: AMovI, Dst: 1, Imm: 3}, Atom{Op: AMovI, Dst: 2, Imm: 4}),
			mol(Atom{Op: AAdd, Dst: 3, Src1: 1, Src2: 2}, Atom{Op: ASt, Src1: 0, Src2: 3}),
			mol(Atom{Op: ALd, Dst: 4, Src1: 0}, Atom{Op: AFMovI, Dst: 1, F: 2.0}),
			mol(Atom{Op: AFMul, Dst: 2, Src1: 1, Src2: 1}, Atom{Op: ACmpI, Src1: 4, Imm: 7}),
			mol(Atom{Op: ABrZ, Imm: 5}),
		},
		SrcInstrs: 8,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(TM5600Timing())
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := m.Execute(tr, st); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Execute allocated %.1f times per run, want 0", allocs)
	}
}
