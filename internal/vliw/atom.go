// Package vliw models the Transmeta Crusoe's native very-long-instruction-
// word engine as the paper's §2.1 describes it: two integer units (7-stage
// pipelines), one floating-point unit (10-stage pipeline), one load/store
// unit, and one branch unit. Native RISC-like operations ("atoms") are
// packed into 64- or 128-bit "molecules" of up to four atoms that issue
// together, strictly in order; the molecule format routes atoms to
// functional units, so there is no out-of-order hardware at all.
//
// The machine here both executes atoms (against architectural isa.State,
// so translations can be checked for semantic equivalence against the
// reference interpreter) and accounts cycles with a scoreboard: a molecule
// issues when its source registers are ready and its units free; divides
// and square roots block the FP unit.
package vliw

import (
	"fmt"

	"repro/internal/isa"
)

// Unit identifies a functional unit slot in a molecule.
type Unit uint8

const (
	UnitALU Unit = iota // two available per molecule
	UnitFPU             // one
	UnitLSU             // one
	UnitBRU             // one
	numUnits
)

func (u Unit) String() string {
	switch u {
	case UnitALU:
		return "ALU"
	case UnitFPU:
		return "FPU"
	case UnitLSU:
		return "LSU"
	case UnitBRU:
		return "BRU"
	}
	return "?"
}

// AtomOp enumerates native operations.
type AtomOp uint8

const (
	ANop AtomOp = iota

	// Integer (ALU).
	AMovI
	AMov
	AAdd
	AAddI
	ASub
	ASubI
	AMul
	AAnd
	AOr
	AXor
	AShl // shift amount in Imm
	AShr
	ACmp // sets flags
	ACmpI

	// Memory (LSU). Address = R[Src1] + Imm.
	ALd
	ASt // stores R[Src2]
	AFLd
	AFSt // stores F[Src2]

	// Floating point (FPU).
	AFMovI
	AFMov
	AFAdd
	AFSub
	AFMul
	AFDiv
	AFSqrt
	AFNeg
	AFAbs
	ACvtIF // F[Dst] ← float(R[Src1])
	ACvtFI // R[Dst] ← int(F[Src1])
	AFCmp  // sets flags

	// Branch (BRU). Branches exit the translation to an x86 PC (Imm) when
	// the condition holds; an unconditional ABr always exits. Execution of
	// the translation otherwise falls through to the next molecule.
	ABr
	ABrZ
	ABrNZ
	ABrL
	ABrLE
	ABrG
	ABrGE

	numAtomOps
)

var atomNames = [numAtomOps]string{
	ANop: "nop", AMovI: "movi", AMov: "mov", AAdd: "add", AAddI: "addi",
	ASub: "sub", ASubI: "subi", AMul: "mul", AAnd: "and", AOr: "or",
	AXor: "xor", AShl: "shl", AShr: "shr", ACmp: "cmp", ACmpI: "cmpi",
	ALd: "ld", ASt: "st", AFLd: "fld", AFSt: "fst",
	AFMovI: "fmovi", AFMov: "fmov", AFAdd: "fadd", AFSub: "fsub",
	AFMul: "fmul", AFDiv: "fdiv", AFSqrt: "fsqrt", AFNeg: "fneg",
	AFAbs: "fabs", ACvtIF: "cvtif", ACvtFI: "cvtfi", AFCmp: "fcmp",
	ABr: "br", ABrZ: "brz", ABrNZ: "brnz", ABrL: "brl", ABrLE: "brle",
	ABrG: "brg", ABrGE: "brge",
}

func (op AtomOp) String() string {
	if int(op) < len(atomNames) && atomNames[op] != "" {
		return atomNames[op]
	}
	return fmt.Sprintf("atom(%d)", uint8(op))
}

// UnitOf maps an atom to the functional unit that executes it.
func UnitOf(op AtomOp) Unit {
	switch {
	case op >= AMovI && op <= ACmpI, op == ANop:
		return UnitALU
	case op >= ALd && op <= AFSt:
		return UnitLSU
	case op >= AFMovI && op <= AFCmp:
		return UnitFPU
	case op >= ABr && op <= ABrGE:
		return UnitBRU
	}
	panic(fmt.Sprintf("vliw: unit of unknown atom %d", op))
}

// IsBranch reports whether the atom can exit the translation.
func IsBranch(op AtomOp) bool { return op >= ABr && op <= ABrGE }

// Register-file sizes. The Crusoe's native machine exposes more registers
// than x86 so the translator can rename; registers 0..isa.NumRegs-1 shadow
// the architectural files and the remainder are translation temporaries.
const (
	NumIntRegs = 64
	NumFPRegs  = 32
)

// Atom is one native operation. Interpretation of fields mirrors isa.Instr:
// Dst/Src1/Src2 index the int or FP native file depending on the op; Imm is
// the immediate, memory displacement, or branch-exit x86 PC; F holds FP
// immediates.
type Atom struct {
	Op   AtomOp
	Dst  uint8
	Src1 uint8
	Src2 uint8
	Imm  int64
	F    float64
}

// Molecule is a bundle of up to four atoms that issue together. Wide
// reports the 128-bit format (up to 4 atoms); the 64-bit format packs at
// most 2. The paper: "Each molecule can be 64 bits or 128 bits long and
// can contain up to four RISC-like instructions called atoms, which are
// executed in parallel."
type Molecule struct {
	Atoms []Atom
	Wide  bool
}

// Slots returns the maximum atom count for the molecule format.
func (m *Molecule) Slots() int {
	if m.Wide {
		return 4
	}
	return 2
}

// Validate checks packing rules: at most 2 ALU / 1 FPU / 1 LSU / 1 BRU
// atoms, a branch only in the last slot, register indices in range, and no
// two atoms writing the same destination register (parallel-write
// conflict).
func (m *Molecule) Validate() error {
	if len(m.Atoms) == 0 {
		return fmt.Errorf("vliw: empty molecule")
	}
	if len(m.Atoms) > m.Slots() {
		return fmt.Errorf("vliw: %d atoms exceed %d slots", len(m.Atoms), m.Slots())
	}
	var used [numUnits]int
	intWrites := map[uint8]bool{}
	fpWrites := map[uint8]bool{}
	for i, a := range m.Atoms {
		if a.Op >= numAtomOps {
			return fmt.Errorf("vliw: atom %d: bad op %d", i, a.Op)
		}
		u := UnitOf(a.Op)
		used[u]++
		if IsBranch(a.Op) && i != len(m.Atoms)-1 {
			return fmt.Errorf("vliw: branch atom not in last slot")
		}
		wi, wf, ok := atomWrites(a)
		if ok {
			if wf {
				if fpWrites[wi] {
					return fmt.Errorf("vliw: two atoms write f%d", wi)
				}
				fpWrites[wi] = true
			} else {
				if intWrites[wi] {
					return fmt.Errorf("vliw: two atoms write r%d", wi)
				}
				intWrites[wi] = true
			}
		}
		if err := checkAtomRegs(a); err != nil {
			return fmt.Errorf("vliw: atom %d (%s): %v", i, a.Op, err)
		}
	}
	if used[UnitALU] > 2 {
		return fmt.Errorf("vliw: %d ALU atoms (max 2)", used[UnitALU])
	}
	for _, u := range []Unit{UnitFPU, UnitLSU, UnitBRU} {
		if used[u] > 1 {
			return fmt.Errorf("vliw: %d %s atoms (max 1)", used[u], u)
		}
	}
	return nil
}

// atomWrites returns the register the atom writes (reg, isFP, writes-any).
func atomWrites(a Atom) (uint8, bool, bool) {
	switch a.Op {
	case ANop, ACmp, ACmpI, AFCmp, ASt, AFSt,
		ABr, ABrZ, ABrNZ, ABrL, ABrLE, ABrG, ABrGE:
		return 0, false, false
	case AFMovI, AFMov, AFAdd, AFSub, AFMul, AFDiv, AFSqrt, AFNeg, AFAbs, ACvtIF, AFLd:
		return a.Dst, true, true
	default:
		return a.Dst, false, true
	}
}

func checkAtomRegs(a Atom) error {
	checkInt := func(r uint8) error {
		if r >= NumIntRegs {
			return fmt.Errorf("int register %d out of range", r)
		}
		return nil
	}
	checkFP := func(r uint8) error {
		if r >= NumFPRegs {
			return fmt.Errorf("fp register %d out of range", r)
		}
		return nil
	}
	switch a.Op {
	case ANop, ABr, ABrZ, ABrNZ, ABrL, ABrLE, ABrG, ABrGE:
		return nil
	case AMovI:
		return checkInt(a.Dst)
	case AMov:
		return firstErr(checkInt(a.Dst), checkInt(a.Src1))
	case AAdd, ASub, AMul, AAnd, AOr, AXor:
		return firstErr(checkInt(a.Dst), checkInt(a.Src1), checkInt(a.Src2))
	case AAddI, ASubI, AShl, AShr:
		return firstErr(checkInt(a.Dst), checkInt(a.Src1))
	case ACmp:
		return firstErr(checkInt(a.Src1), checkInt(a.Src2))
	case ACmpI:
		return checkInt(a.Src1)
	case ALd:
		return firstErr(checkInt(a.Dst), checkInt(a.Src1))
	case ASt:
		return firstErr(checkInt(a.Src1), checkInt(a.Src2))
	case AFLd:
		return firstErr(checkFP(a.Dst), checkInt(a.Src1))
	case AFSt:
		return firstErr(checkInt(a.Src1), checkFP(a.Src2))
	case AFMovI:
		return checkFP(a.Dst)
	case AFMov, AFSqrt, AFNeg, AFAbs:
		return firstErr(checkFP(a.Dst), checkFP(a.Src1))
	case AFAdd, AFSub, AFMul, AFDiv:
		return firstErr(checkFP(a.Dst), checkFP(a.Src1), checkFP(a.Src2))
	case ACvtIF:
		return firstErr(checkFP(a.Dst), checkInt(a.Src1))
	case ACvtFI:
		return firstErr(checkInt(a.Dst), checkFP(a.Src1))
	case AFCmp:
		return firstErr(checkFP(a.Src1), checkFP(a.Src2))
	}
	return fmt.Errorf("unknown atom op %d", a.Op)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Translation is a unit of translated code: the molecules for one x86
// region plus bookkeeping the translation cache needs.
type Translation struct {
	EntryPC   int // x86 PC this translation begins at
	Molecules []Molecule
	// SrcInstrs is the number of x86 instructions covered (for accounting
	// translation cost and speedup).
	SrcInstrs int
	// FallPC is the x86 PC execution continues at when the last molecule
	// falls through (no branch taken).
	FallPC int
	// Gear is the translation tier that produced this code: 0 for the
	// single-gear translator, 1 for the quick block gear, 2 for the
	// superblock reoptimizer.
	Gear int
	// MainExit is the x86 PC a gear-2 superblock exits to on its expected
	// (profiled-hot) path; any other taken exit is a side exit. -1 when the
	// superblock ends in a halt. Meaningless below gear 2.
	MainExit int
}

// Validate validates every molecule.
func (t *Translation) Validate() error {
	if len(t.Molecules) == 0 {
		return fmt.Errorf("vliw: empty translation at pc %d", t.EntryPC)
	}
	for i := range t.Molecules {
		if err := t.Molecules[i].Validate(); err != nil {
			return fmt.Errorf("molecule %d: %w", i, err)
		}
	}
	return nil
}

// Atoms returns the total atom count (for packing-density stats).
func (t *Translation) Atoms() int {
	n := 0
	for i := range t.Molecules {
		n += len(t.Molecules[i].Atoms)
	}
	return n
}

// ClassOfAtom buckets atoms into the shared isa timing classes, used for
// statistics and for calibrating the coarse CPU model from VLIW runs.
func ClassOfAtom(op AtomOp) isa.Class {
	switch op {
	case ANop:
		return isa.ClassNop
	case AMovI, AMov, AAdd, AAddI, ASub, ASubI, AAnd, AOr, AXor, AShl, AShr, ACmp, ACmpI:
		return isa.ClassIntALU
	case AMul:
		return isa.ClassIntMul
	case ALd, AFLd:
		return isa.ClassLoad
	case ASt, AFSt:
		return isa.ClassStore
	case AFMovI, AFMov, AFAdd, AFSub, AFNeg, AFAbs, ACvtIF, ACvtFI, AFCmp:
		return isa.ClassFPAdd
	case AFMul:
		return isa.ClassFPMul
	case AFDiv:
		return isa.ClassFPDiv
	case AFSqrt:
		return isa.ClassFPSqrt
	case ABr, ABrZ, ABrNZ, ABrL, ABrLE, ABrG, ABrGE:
		return isa.ClassBranch
	}
	panic(fmt.Sprintf("vliw: class of unknown atom %d", op))
}
