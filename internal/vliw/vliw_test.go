package vliw

import (
	"testing"

	"repro/internal/isa"
)

func mol(atoms ...Atom) Molecule { return Molecule{Atoms: atoms, Wide: true} }

func TestUnitOfCoversAllAtoms(t *testing.T) {
	for op := AtomOp(0); op < numAtomOps; op++ {
		u := UnitOf(op)
		if u >= numUnits {
			t.Fatalf("UnitOf(%s) = %d", op, u)
		}
		c := ClassOfAtom(op)
		if c >= isa.NumClasses {
			t.Fatalf("ClassOfAtom(%s) = %d", op, c)
		}
	}
}

func TestMoleculeValidatePackingRules(t *testing.T) {
	ok := []Molecule{
		mol(Atom{Op: AAdd, Dst: 1, Src1: 2, Src2: 3}),
		mol(
			Atom{Op: AAdd, Dst: 1, Src1: 2, Src2: 3},
			Atom{Op: ASub, Dst: 4, Src1: 5, Src2: 6},
			Atom{Op: AFMul, Dst: 1, Src1: 2, Src2: 3},
			Atom{Op: ALd, Dst: 7, Src1: 8},
		),
		mol(
			Atom{Op: AAdd, Dst: 1, Src1: 2, Src2: 3},
			Atom{Op: ABrZ, Imm: 5},
		),
		{Atoms: []Atom{{Op: AAdd, Dst: 1}, {Op: AFAdd, Dst: 1}}, Wide: false},
	}
	for i, m := range ok {
		if err := m.Validate(); err != nil {
			t.Errorf("valid molecule %d rejected: %v", i, err)
		}
	}
	bad := []struct {
		name string
		m    Molecule
	}{
		{"empty", Molecule{Wide: true}},
		{"five atoms", mol(
			Atom{Op: AAdd, Dst: 1}, Atom{Op: ASub, Dst: 2},
			Atom{Op: AFAdd, Dst: 3}, Atom{Op: ALd, Dst: 4}, Atom{Op: ANop})},
		{"three ALU", mol(Atom{Op: AAdd, Dst: 1}, Atom{Op: ASub, Dst: 2}, Atom{Op: AXor, Dst: 3})},
		{"two FPU", mol(Atom{Op: AFAdd, Dst: 1}, Atom{Op: AFMul, Dst: 2})},
		{"two LSU", mol(Atom{Op: ALd, Dst: 1}, Atom{Op: ALd, Dst: 2})},
		{"branch not last", mol(Atom{Op: ABr, Imm: 0}, Atom{Op: AAdd, Dst: 1})},
		{"dup int write", mol(Atom{Op: AAdd, Dst: 1}, Atom{Op: ASub, Dst: 1})},
		{"dup fp write", mol(Atom{Op: AFAdd, Dst: 1}, Atom{Op: AFLd, Dst: 1})},
		{"narrow overflow", Molecule{Atoms: []Atom{{Op: AAdd, Dst: 1}, {Op: ASub, Dst: 2}, {Op: ANop}}, Wide: false}},
		{"bad int reg", mol(Atom{Op: AAdd, Dst: 64})},
		{"bad fp reg", mol(Atom{Op: AFAdd, Dst: 32})},
	}
	for _, c := range bad {
		if err := c.m.Validate(); err == nil {
			t.Errorf("%s: invalid molecule accepted", c.name)
		}
	}
}

func TestExecuteStraightLine(t *testing.T) {
	arch := isa.NewState(8)
	st := NewState(arch)
	tr := &Translation{
		EntryPC: 0,
		FallPC:  10,
		Molecules: []Molecule{
			mol(Atom{Op: AMovI, Dst: 1, Imm: 6}, Atom{Op: AMovI, Dst: 2, Imm: 7}),
			mol(Atom{Op: AMul, Dst: 3, Src1: 1, Src2: 2}),
		},
		SrcInstrs: 3,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(TM5600Timing())
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	if arch.R[3] != 42 {
		t.Fatalf("r3 = %d, want 42", arch.R[3])
	}
	if res.ExitPC != 10 {
		t.Fatalf("ExitPC = %d, want fallthrough 10", res.ExitPC)
	}
	if res.Taken {
		t.Fatal("fallthrough reported as taken")
	}
	if res.Molecules != 2 || res.Atoms != 3 {
		t.Fatalf("molecules=%d atoms=%d, want 2,3", res.Molecules, res.Atoms)
	}
}

func TestExecuteParallelReadSemantics(t *testing.T) {
	// Swap r1,r2 in one molecule: both atoms must read pre-molecule values.
	arch := isa.NewState(0)
	arch.R[1], arch.R[2] = 11, 22
	st := NewState(arch)
	tr := &Translation{
		Molecules: []Molecule{
			mol(Atom{Op: AMov, Dst: 1, Src1: 2}, Atom{Op: AMov, Dst: 2, Src1: 1}),
		},
	}
	m := NewMachine(TM5600Timing())
	if _, err := m.Execute(tr, st); err != nil {
		t.Fatal(err)
	}
	if arch.R[1] != 22 || arch.R[2] != 11 {
		t.Fatalf("swap gave r1=%d r2=%d, want 22,11", arch.R[1], arch.R[2])
	}
}

func TestExecuteBranchTaken(t *testing.T) {
	arch := isa.NewState(0)
	arch.R[1] = 5
	st := NewState(arch)
	tr := &Translation{
		FallPC: 100,
		Molecules: []Molecule{
			mol(Atom{Op: ACmpI, Src1: 1, Imm: 5}),
			mol(Atom{Op: ABrZ, Imm: 42}),
			mol(Atom{Op: AMovI, Dst: 9, Imm: 1}), // must not execute
		},
	}
	m := NewMachine(TM5600Timing())
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Taken || res.ExitPC != 42 {
		t.Fatalf("taken=%v exit=%d, want true,42", res.Taken, res.ExitPC)
	}
	if arch.R[9] != 0 {
		t.Fatal("molecule after taken branch executed")
	}
}

func TestExecuteBranchNotTakenFallsThrough(t *testing.T) {
	arch := isa.NewState(0)
	arch.R[1] = 4
	st := NewState(arch)
	tr := &Translation{
		FallPC: 100,
		Molecules: []Molecule{
			mol(Atom{Op: ACmpI, Src1: 1, Imm: 5}),
			mol(Atom{Op: ABrZ, Imm: 42}),
			mol(Atom{Op: AMovI, Dst: 9, Imm: 1}),
		},
	}
	m := NewMachine(TM5600Timing())
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Taken || res.ExitPC != 100 {
		t.Fatalf("taken=%v exit=%d, want false,100", res.Taken, res.ExitPC)
	}
	if arch.R[9] != 1 {
		t.Fatal("fallthrough molecule skipped")
	}
}

func TestExecuteHalt(t *testing.T) {
	arch := isa.NewState(0)
	st := NewState(arch)
	tr := &Translation{
		Molecules: []Molecule{mol(Atom{Op: ABr, Imm: HaltExit})},
	}
	m := NewMachine(TM5600Timing())
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || !arch.Halted {
		t.Fatal("halt exit did not halt")
	}
}

func TestExecuteTempRegistersIsolated(t *testing.T) {
	arch := isa.NewState(0)
	st := NewState(arch)
	tr := &Translation{
		Molecules: []Molecule{
			mol(Atom{Op: AMovI, Dst: 40, Imm: 99}), // temp reg
			mol(Atom{Op: AMov, Dst: 2, Src1: 40}),
		},
	}
	m := NewMachine(TM5600Timing())
	if _, err := m.Execute(tr, st); err != nil {
		t.Fatal(err)
	}
	if arch.R[2] != 99 {
		t.Fatalf("value did not flow through temp reg: r2=%d", arch.R[2])
	}
	// Architectural registers beyond r2 untouched.
	for i, v := range arch.R {
		if i != 2 && v != 0 {
			t.Fatalf("architectural r%d polluted: %d", i, v)
		}
	}
}

func TestCyclesIndependentMoleculesPipeline(t *testing.T) {
	// N independent single-atom molecules issue 1/cycle.
	arch := isa.NewState(0)
	st := NewState(arch)
	var mols []Molecule
	for i := 0; i < 10; i++ {
		mols = append(mols, mol(Atom{Op: AMovI, Dst: uint8(i), Imm: int64(i)}))
	}
	tr := &Translation{Molecules: mols}
	m := NewMachine(TM5600Timing())
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 10 {
		t.Fatalf("10 independent molecules took %d cycles, want 10", res.Cycles)
	}
}

func TestCyclesDependencyStall(t *testing.T) {
	// fmul f1←f0; fadd f2←f1: second must wait FPLatency after first.
	arch := isa.NewState(0)
	st := NewState(arch)
	tr := &Translation{
		Molecules: []Molecule{
			mol(Atom{Op: AFMul, Dst: 1, Src1: 0, Src2: 0}),
			mol(Atom{Op: AFAdd, Dst: 2, Src1: 1, Src2: 1}),
		},
	}
	tm := TM5600Timing()
	m := NewMachine(tm)
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	// First issues at 0; f1 ready at FPLatency; second issues then; +1.
	want := uint64(tm.FPLatency + 1)
	if res.Cycles != want {
		t.Fatalf("dependent FP chain took %d cycles, want %d", res.Cycles, want)
	}
}

func TestCyclesFDivBlocksFPU(t *testing.T) {
	// fdiv then an independent fadd: the fadd stalls on the busy FPU.
	arch := isa.NewState(0)
	arch.F[0] = 1
	st := NewState(arch)
	tr := &Translation{
		Molecules: []Molecule{
			mol(Atom{Op: AFDiv, Dst: 1, Src1: 0, Src2: 0}),
			mol(Atom{Op: AFAdd, Dst: 2, Src1: 3, Src2: 3}), // independent regs
		},
	}
	tm := TM5600Timing()
	m := NewMachine(tm)
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(tm.FDivLatency + 1)
	if res.Cycles != want {
		t.Fatalf("fdiv+independent fadd took %d cycles, want %d (FPU blocked)", res.Cycles, want)
	}
}

func TestCyclesIndependentIntNotBlockedByFDiv(t *testing.T) {
	arch := isa.NewState(0)
	arch.F[0] = 1
	st := NewState(arch)
	tr := &Translation{
		Molecules: []Molecule{
			mol(Atom{Op: AFDiv, Dst: 1, Src1: 0, Src2: 0}),
			mol(Atom{Op: AAdd, Dst: 2, Src1: 3, Src2: 3}),
		},
	}
	m := NewMachine(TM5600Timing())
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != 2 {
		t.Fatalf("int op after fdiv took %d cycles, want 2 (no FPU dependence)", res.Cycles)
	}
}

func TestCyclesTakenBranchPenalty(t *testing.T) {
	arch := isa.NewState(0)
	st := NewState(arch)
	tm := TM5600Timing()
	m := NewMachine(tm)

	taken := &Translation{Molecules: []Molecule{mol(Atom{Op: ABr, Imm: 7})}}
	res, err := m.Execute(taken, st)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1 + tm.BranchPenalty)
	if res.Cycles != want {
		t.Fatalf("taken branch = %d cycles, want %d", res.Cycles, want)
	}
}

func TestExecuteMemoryFault(t *testing.T) {
	arch := isa.NewState(4)
	st := NewState(arch)
	tr := &Translation{
		Molecules: []Molecule{
			mol(Atom{Op: AMovI, Dst: 1, Imm: 100}),
			mol(Atom{Op: ALd, Dst: 2, Src1: 1}),
		},
	}
	m := NewMachine(TM5600Timing())
	if _, err := m.Execute(tr, st); err == nil {
		t.Fatal("out-of-range load did not error")
	}
}

func TestLoadUseStall(t *testing.T) {
	arch := isa.NewState(4)
	arch.StoreI(0, 5)
	st := NewState(arch)
	tr := &Translation{
		Molecules: []Molecule{
			mol(Atom{Op: ALd, Dst: 1, Src1: 0}),
			mol(Atom{Op: AAddI, Dst: 2, Src1: 1, Imm: 1}),
		},
	}
	tm := TM5600Timing()
	m := NewMachine(tm)
	res, err := m.Execute(tr, st)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(tm.LoadLatency + 1)
	if res.Cycles != want {
		t.Fatalf("load-use chain = %d cycles, want %d", res.Cycles, want)
	}
	if arch.R[2] != 6 {
		t.Fatalf("r2 = %d, want 6", arch.R[2])
	}
}

func TestTranslationAtomsCount(t *testing.T) {
	tr := &Translation{Molecules: []Molecule{
		mol(Atom{Op: AAdd, Dst: 1}, Atom{Op: ASub, Dst: 2}),
		mol(Atom{Op: ANop}),
	}}
	if tr.Atoms() != 3 {
		t.Fatalf("Atoms = %d, want 3", tr.Atoms())
	}
}
