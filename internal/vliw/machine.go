package vliw

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Timing holds the cycle-accounting parameters of the native engine.
// Latencies are producer→consumer distances in cycles; divide and square
// root additionally block the FP unit (they are not pipelined on Crusoe-
// class FPUs).
type Timing struct {
	IntLatency    int // simple ALU results
	MulLatency    int
	LoadLatency   int // load-use distance
	FPLatency     int // pipelined FP add/mul etc.
	FDivLatency   int
	FSqrtLatency  int
	BranchPenalty int // taken-branch bubble (short in-order pipeline)
}

// TM5600Timing is the default model of the 633-MHz TM5600's engine. The
// values follow the pipeline depths the paper gives (7-stage integer,
// 10-stage FP) and typical latencies for that class of core.
func TM5600Timing() Timing {
	return Timing{
		IntLatency:   1,
		MulLatency:   3,
		LoadLatency:  2,
		FPLatency:    2,
		FDivLatency:  22,
		FSqrtLatency: 28,
		// CMS chains translations and predicts loop back-edges; the
		// residual taken-branch bubble is short.
		BranchPenalty: 1,
	}
}

// State is the native machine state: the architectural isa.State (whose
// registers 0..isa.NumRegs-1 the low native registers shadow) plus the
// translator's temporary registers.
type State struct {
	Arch *isa.State
	// Temps hold native registers isa.NumRegs..NumIntRegs-1 and
	// isa.NumRegs..NumFPRegs-1.
	TmpR [NumIntRegs - isa.NumRegs]int64
	TmpF [NumFPRegs - isa.NumRegs]float64
}

// NewState wraps an architectural state.
func NewState(arch *isa.State) *State {
	return &State{Arch: arch}
}

func (s *State) getR(r uint8) int64 {
	if r < isa.NumRegs {
		return s.Arch.R[r]
	}
	return s.TmpR[r-isa.NumRegs]
}

func (s *State) setR(r uint8, v int64) {
	if r < isa.NumRegs {
		s.Arch.R[r] = v
		return
	}
	s.TmpR[r-isa.NumRegs] = v
}

func (s *State) getF(r uint8) float64 {
	if r < isa.NumRegs {
		return s.Arch.F[r]
	}
	return s.TmpF[r-isa.NumRegs]
}

func (s *State) setF(r uint8, v float64) {
	if r < isa.NumRegs {
		s.Arch.F[r] = v
		return
	}
	s.TmpF[r-isa.NumRegs] = v
}

// ExecResult reports one translation execution.
type ExecResult struct {
	ExitPC    int    // x86 PC to continue at
	Cycles    uint64 // cycles the translation took, per the Timing model
	Taken     bool   // whether the exit was a taken branch
	Atoms     uint64 // atoms executed
	Molecules uint64 // molecules issued
	Halted    bool
	// ByClass/Flops count executed atoms for Mflops accounting.
	ByClass [isa.NumClasses]uint64
	Flops   uint64
}

// AtomIsFlop mirrors isa.IsFlop for native atoms.
func AtomIsFlop(op AtomOp) bool {
	switch op {
	case AFAdd, AFSub, AFMul, AFDiv, AFSqrt, AFNeg, AFAbs:
		return true
	}
	return false
}

// Machine executes translations with cycle accounting. The scoreboard
// (register-ready times and FP-unit busy time) persists across molecules
// within one Execute call and is reset between calls; cross-translation
// stalls are absorbed into the chaining cost the CMS layer charges.
type Machine struct {
	T Timing
}

// NewMachine returns a machine with the given timing.
func NewMachine(t Timing) *Machine { return &Machine{T: t} }

type pendingWrite struct {
	fp  bool
	reg uint8
	vi  int64
	vf  float64
}

// maxMoleculeAtoms is the widest molecule format's capacity; it bounds the
// parallel-commit buffer so Execute needs no heap allocation.
const maxMoleculeAtoms = 4

// Execute runs the translation against st until a branch exits, the last
// molecule falls through, or an Hlt-encoded exit (ExitPC < 0 means halt).
// Branch atoms with Imm = HaltExit halt the machine.
//
// Execute is the simulator's hottest host loop and performs no heap
// allocation: the commit buffer is a fixed array and all register-read
// queries return by value.
func (m *Machine) Execute(t *Translation, st *State) (ExecResult, error) {
	var res ExecResult
	var regReadyR [NumIntRegs]uint64
	var regReadyF [NumFPRegs]uint64
	var fpuBusyUntil uint64
	var cycle uint64
	var writes [maxMoleculeAtoms]pendingWrite

	mi := 0
	for mi < len(t.Molecules) {
		mol := &t.Molecules[mi]
		// Issue time: all sources ready, FP unit free if an FP atom issues.
		issue := cycle
		for i := range mol.Atoms {
			a := &mol.Atoms[i]
			ir, ni := atomIntReads(a)
			for k := 0; k < ni; k++ {
				if regReadyR[ir[k]] > issue {
					issue = regReadyR[ir[k]]
				}
			}
			fr, nf := atomFPReads(a)
			for k := 0; k < nf; k++ {
				if regReadyF[fr[k]] > issue {
					issue = regReadyF[fr[k]]
				}
			}
			if UnitOf(a.Op) == UnitFPU && fpuBusyUntil > issue {
				issue = fpuBusyUntil
			}
		}

		// Parallel semantics: compute all results, then commit.
		nw := 0
		var branchTo int
		var branched, halted bool
		for i := range mol.Atoms {
			wrote, br, taken, halt, err := execAtom(&mol.Atoms[i], st, &writes[nw])
			if err != nil {
				return res, fmt.Errorf("vliw: molecule %d: %w", mi, err)
			}
			if wrote {
				nw++
			}
			if taken {
				branched, branchTo = true, br
			}
			if halt {
				halted = true
			}
		}
		for i := 0; i < nw; i++ {
			w := &writes[i]
			if w.fp {
				st.setF(w.reg, w.vf)
			} else {
				st.setR(w.reg, w.vi)
			}
		}

		// Scoreboard updates.
		for i := range mol.Atoms {
			a := &mol.Atoms[i]
			lat := m.latency(a.Op)
			if wr, fp, ok := atomWrites(*a); ok {
				if fp {
					regReadyF[wr] = issue + uint64(lat)
				} else {
					regReadyR[wr] = issue + uint64(lat)
				}
			}
			if a.Op == AFDiv {
				fpuBusyUntil = issue + uint64(m.T.FDivLatency)
			} else if a.Op == AFSqrt {
				fpuBusyUntil = issue + uint64(m.T.FSqrtLatency)
			}
		}

		cycle = issue + 1
		res.Molecules++
		res.Atoms += uint64(len(mol.Atoms))
		for i := range mol.Atoms {
			op := mol.Atoms[i].Op
			res.ByClass[ClassOfAtom(op)]++
			if AtomIsFlop(op) {
				res.Flops++
			}
		}

		if halted {
			st.Arch.Halted = true
			res.Halted = true
			res.Cycles = cycle
			res.ExitPC = branchTo
			return res, nil
		}
		if branched {
			cycle += uint64(m.T.BranchPenalty)
			res.Cycles = cycle
			res.ExitPC = branchTo
			res.Taken = true
			return res, nil
		}
		mi++
	}
	res.Cycles = cycle
	res.ExitPC = t.FallPC
	return res, nil
}

// HaltCode encodes a halt exit for a branch atom's Imm: the machine halts
// and reports nextPC (the architectural PC after the x86 hlt) as the exit.
func HaltCode(nextPC int) int64 { return -int64(nextPC) - 1 }

// HaltExit is HaltCode(0), kept for hand-built translations in tests.
const HaltExit = -1

func (m *Machine) latency(op AtomOp) int {
	switch ClassOfAtom(op) {
	case isa.ClassIntALU, isa.ClassNop, isa.ClassBranch, isa.ClassStore:
		return m.T.IntLatency
	case isa.ClassIntMul:
		return m.T.MulLatency
	case isa.ClassLoad:
		return m.T.LoadLatency
	case isa.ClassFPAdd, isa.ClassFPMul:
		return m.T.FPLatency
	case isa.ClassFPDiv:
		return m.T.FDivLatency
	case isa.ClassFPSqrt:
		return m.T.FSqrtLatency
	}
	return 1
}

// atomIntReads returns the integer registers the atom reads, by value so
// the hot loop allocates nothing.
func atomIntReads(a *Atom) (regs [2]uint8, n int) {
	switch a.Op {
	case AMov, AAddI, ASubI, AShl, AShr, ACmpI, ACvtIF:
		regs[0] = a.Src1
		return regs, 1
	case AAdd, ASub, AMul, AAnd, AOr, AXor, ACmp:
		regs[0], regs[1] = a.Src1, a.Src2
		return regs, 2
	case ALd, AFLd:
		regs[0] = a.Src1
		return regs, 1
	case ASt:
		regs[0], regs[1] = a.Src1, a.Src2
		return regs, 2
	case AFSt:
		regs[0] = a.Src1
		return regs, 1
	}
	return regs, 0
}

// atomFPReads returns the FP registers the atom reads, by value.
func atomFPReads(a *Atom) (regs [2]uint8, n int) {
	switch a.Op {
	case AFMov, AFSqrt, AFNeg, AFAbs, ACvtFI:
		regs[0] = a.Src1
		return regs, 1
	case AFAdd, AFSub, AFMul, AFDiv, AFCmp:
		regs[0], regs[1] = a.Src1, a.Src2
		return regs, 2
	case AFSt:
		regs[0] = a.Src2
		return regs, 1
	}
	return regs, 0
}

// execAtom computes the atom's effect. A register write, if any, goes into
// *w (wrote reports whether it did); taken branches return the exit PC and
// a halt flag. Results are returned by value — no escaping pointers — so
// the per-molecule execution loop is allocation-free.
func execAtom(a *Atom, st *State, w *pendingWrite) (wrote bool, branchTo int, taken, halt bool, err error) {
	arch := st.Arch
	iw := func(reg uint8, v int64) {
		w.fp, w.reg, w.vi = false, reg, v
		wrote = true
	}
	fw := func(reg uint8, v float64) {
		w.fp, w.reg, w.vf = true, reg, v
		wrote = true
	}
	switch a.Op {
	case ANop:
	case AMovI:
		iw(a.Dst, a.Imm)
	case AMov:
		iw(a.Dst, st.getR(a.Src1))
	case AAdd:
		iw(a.Dst, st.getR(a.Src1)+st.getR(a.Src2))
	case AAddI:
		iw(a.Dst, st.getR(a.Src1)+a.Imm)
	case ASub:
		iw(a.Dst, st.getR(a.Src1)-st.getR(a.Src2))
	case ASubI:
		iw(a.Dst, st.getR(a.Src1)-a.Imm)
	case AMul:
		iw(a.Dst, st.getR(a.Src1)*st.getR(a.Src2))
	case AAnd:
		iw(a.Dst, st.getR(a.Src1)&st.getR(a.Src2))
	case AOr:
		iw(a.Dst, st.getR(a.Src1)|st.getR(a.Src2))
	case AXor:
		iw(a.Dst, st.getR(a.Src1)^st.getR(a.Src2))
	case AShl:
		iw(a.Dst, st.getR(a.Src1)<<uint(a.Imm&63))
	case AShr:
		iw(a.Dst, int64(uint64(st.getR(a.Src1))>>uint(a.Imm&63)))
	case ACmp:
		x, y := st.getR(a.Src1), st.getR(a.Src2)
		arch.FlagZ, arch.FlagL = x == y, x < y
	case ACmpI:
		x := st.getR(a.Src1)
		arch.FlagZ, arch.FlagL = x == a.Imm, x < a.Imm
	case ALd:
		addr := st.getR(a.Src1) + a.Imm
		if addr < 0 || addr >= int64(len(arch.Mem)) {
			return false, 0, false, false, fmt.Errorf("load address %d out of range", addr)
		}
		iw(a.Dst, arch.LoadI(addr))
	case ASt:
		addr := st.getR(a.Src1) + a.Imm
		if addr < 0 || addr >= int64(len(arch.Mem)) {
			return false, 0, false, false, fmt.Errorf("store address %d out of range", addr)
		}
		arch.StoreI(addr, st.getR(a.Src2))
	case AFLd:
		addr := st.getR(a.Src1) + a.Imm
		if addr < 0 || addr >= int64(len(arch.Mem)) {
			return false, 0, false, false, fmt.Errorf("fload address %d out of range", addr)
		}
		fw(a.Dst, arch.LoadF(addr))
	case AFSt:
		addr := st.getR(a.Src1) + a.Imm
		if addr < 0 || addr >= int64(len(arch.Mem)) {
			return false, 0, false, false, fmt.Errorf("fstore address %d out of range", addr)
		}
		arch.StoreF(addr, st.getF(a.Src2))
	case AFMovI:
		fw(a.Dst, a.F)
	case AFMov:
		fw(a.Dst, st.getF(a.Src1))
	case AFAdd:
		fw(a.Dst, st.getF(a.Src1)+st.getF(a.Src2))
	case AFSub:
		fw(a.Dst, st.getF(a.Src1)-st.getF(a.Src2))
	case AFMul:
		fw(a.Dst, st.getF(a.Src1)*st.getF(a.Src2))
	case AFDiv:
		fw(a.Dst, st.getF(a.Src1)/st.getF(a.Src2))
	case AFSqrt:
		fw(a.Dst, math.Sqrt(st.getF(a.Src1)))
	case AFNeg:
		fw(a.Dst, -st.getF(a.Src1))
	case AFAbs:
		fw(a.Dst, math.Abs(st.getF(a.Src1)))
	case ACvtIF:
		fw(a.Dst, float64(st.getR(a.Src1)))
	case ACvtFI:
		iw(a.Dst, int64(st.getF(a.Src1)))
	case AFCmp:
		x, y := st.getF(a.Src1), st.getF(a.Src2)
		arch.FlagZ, arch.FlagL = x == y, x < y
	case ABr, ABrZ, ABrNZ, ABrL, ABrLE, ABrG, ABrGE:
		take := false
		switch a.Op {
		case ABr:
			take = true
		case ABrZ:
			take = arch.FlagZ
		case ABrNZ:
			take = !arch.FlagZ
		case ABrL:
			take = arch.FlagL
		case ABrLE:
			take = arch.FlagL || arch.FlagZ
		case ABrG:
			take = !arch.FlagL && !arch.FlagZ
		case ABrGE:
			take = !arch.FlagL
		}
		if !take {
			return false, 0, false, false, nil
		}
		if a.Imm < 0 {
			return false, int(-a.Imm - 1), true, true, nil
		}
		return false, int(a.Imm), true, false, nil
	default:
		return false, 0, false, false, fmt.Errorf("unknown atom op %d", a.Op)
	}
	return wrote, 0, false, false, nil
}
