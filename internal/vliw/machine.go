package vliw

import (
	"fmt"
	"math"

	"repro/internal/isa"
)

// Timing holds the cycle-accounting parameters of the native engine.
// Latencies are producer→consumer distances in cycles; divide and square
// root additionally block the FP unit (they are not pipelined on Crusoe-
// class FPUs).
type Timing struct {
	IntLatency    int // simple ALU results
	MulLatency    int
	LoadLatency   int // load-use distance
	FPLatency     int // pipelined FP add/mul etc.
	FDivLatency   int
	FSqrtLatency  int
	BranchPenalty int // taken-branch bubble (short in-order pipeline)
}

// TM5600Timing is the default model of the 633-MHz TM5600's engine. The
// values follow the pipeline depths the paper gives (7-stage integer,
// 10-stage FP) and typical latencies for that class of core.
func TM5600Timing() Timing {
	return Timing{
		IntLatency:   1,
		MulLatency:   3,
		LoadLatency:  2,
		FPLatency:    2,
		FDivLatency:  22,
		FSqrtLatency: 28,
		// CMS chains translations and predicts loop back-edges; the
		// residual taken-branch bubble is short.
		BranchPenalty: 1,
	}
}

// State is the native machine state: the architectural isa.State (whose
// registers 0..isa.NumRegs-1 the low native registers shadow) plus the
// translator's temporary registers.
type State struct {
	Arch *isa.State
	// Temps hold native registers isa.NumRegs..NumIntRegs-1 and
	// isa.NumRegs..NumFPRegs-1.
	TmpR [NumIntRegs - isa.NumRegs]int64
	TmpF [NumFPRegs - isa.NumRegs]float64
}

// NewState wraps an architectural state.
func NewState(arch *isa.State) *State {
	return &State{Arch: arch}
}

func (s *State) getR(r uint8) int64 {
	if r < isa.NumRegs {
		return s.Arch.R[r]
	}
	return s.TmpR[r-isa.NumRegs]
}

func (s *State) setR(r uint8, v int64) {
	if r < isa.NumRegs {
		s.Arch.R[r] = v
		return
	}
	s.TmpR[r-isa.NumRegs] = v
}

func (s *State) getF(r uint8) float64 {
	if r < isa.NumRegs {
		return s.Arch.F[r]
	}
	return s.TmpF[r-isa.NumRegs]
}

func (s *State) setF(r uint8, v float64) {
	if r < isa.NumRegs {
		s.Arch.F[r] = v
		return
	}
	s.TmpF[r-isa.NumRegs] = v
}

// ExecResult reports one translation execution.
type ExecResult struct {
	ExitPC    int    // x86 PC to continue at
	Cycles    uint64 // cycles the translation took, per the Timing model
	Taken     bool   // whether the exit was a taken branch
	Atoms     uint64 // atoms executed
	Molecules uint64 // molecules issued
	Halted    bool
	// ByClass/Flops count executed atoms for Mflops accounting.
	ByClass [isa.NumClasses]uint64
	Flops   uint64
}

// AtomIsFlop mirrors isa.IsFlop for native atoms.
func AtomIsFlop(op AtomOp) bool {
	switch op {
	case AFAdd, AFSub, AFMul, AFDiv, AFSqrt, AFNeg, AFAbs:
		return true
	}
	return false
}

// Machine executes translations with cycle accounting. The scoreboard
// (register-ready times and FP-unit busy time) persists across molecules
// within one Execute call and is reset between calls; cross-translation
// stalls are absorbed into the chaining cost the CMS layer charges.
type Machine struct {
	T Timing
}

// NewMachine returns a machine with the given timing.
func NewMachine(t Timing) *Machine { return &Machine{T: t} }

type pendingWrite struct {
	fp  bool
	reg uint8
	vi  int64
	vf  float64
}

// Execute runs the translation against st until a branch exits, the last
// molecule falls through, or an Hlt-encoded exit (ExitPC < 0 means halt).
// Branch atoms with Imm = HaltExit halt the machine.
func (m *Machine) Execute(t *Translation, st *State) (ExecResult, error) {
	var res ExecResult
	var regReadyR [NumIntRegs]uint64
	var regReadyF [NumFPRegs]uint64
	var fpuBusyUntil uint64
	var cycle uint64

	mi := 0
	for mi < len(t.Molecules) {
		mol := &t.Molecules[mi]
		// Issue time: all sources ready, FP unit free if an FP atom issues.
		issue := cycle
		for _, a := range mol.Atoms {
			for _, sr := range atomIntReads(a) {
				if regReadyR[sr] > issue {
					issue = regReadyR[sr]
				}
			}
			for _, sr := range atomFPReads(a) {
				if regReadyF[sr] > issue {
					issue = regReadyF[sr]
				}
			}
			if UnitOf(a.Op) == UnitFPU && fpuBusyUntil > issue {
				issue = fpuBusyUntil
			}
		}

		// Parallel semantics: compute all results, then commit.
		writes := make([]pendingWrite, 0, len(mol.Atoms))
		var branchTo int
		var branched, halted bool
		for _, a := range mol.Atoms {
			w, br, halt, err := execAtom(a, st)
			if err != nil {
				return res, fmt.Errorf("vliw: molecule %d: %w", mi, err)
			}
			if w != nil {
				writes = append(writes, *w)
			}
			if br != nil {
				branched, branchTo = true, *br
			}
			if halt {
				halted = true
			}
		}
		for _, w := range writes {
			if w.fp {
				st.setF(w.reg, w.vf)
			} else {
				st.setR(w.reg, w.vi)
			}
		}

		// Scoreboard updates.
		for _, a := range mol.Atoms {
			lat := m.latency(a.Op)
			if wr, fp, ok := atomWrites(a); ok {
				if fp {
					regReadyF[wr] = issue + uint64(lat)
				} else {
					regReadyR[wr] = issue + uint64(lat)
				}
			}
			if a.Op == AFDiv {
				fpuBusyUntil = issue + uint64(m.T.FDivLatency)
			} else if a.Op == AFSqrt {
				fpuBusyUntil = issue + uint64(m.T.FSqrtLatency)
			}
		}

		cycle = issue + 1
		res.Molecules++
		res.Atoms += uint64(len(mol.Atoms))
		for _, a := range mol.Atoms {
			res.ByClass[ClassOfAtom(a.Op)]++
			if AtomIsFlop(a.Op) {
				res.Flops++
			}
		}

		if halted {
			st.Arch.Halted = true
			res.Halted = true
			res.Cycles = cycle
			res.ExitPC = branchTo
			return res, nil
		}
		if branched {
			cycle += uint64(m.T.BranchPenalty)
			res.Cycles = cycle
			res.ExitPC = branchTo
			res.Taken = true
			return res, nil
		}
		mi++
	}
	res.Cycles = cycle
	res.ExitPC = t.FallPC
	return res, nil
}

// HaltCode encodes a halt exit for a branch atom's Imm: the machine halts
// and reports nextPC (the architectural PC after the x86 hlt) as the exit.
func HaltCode(nextPC int) int64 { return -int64(nextPC) - 1 }

// HaltExit is HaltCode(0), kept for hand-built translations in tests.
const HaltExit = -1

func (m *Machine) latency(op AtomOp) int {
	switch ClassOfAtom(op) {
	case isa.ClassIntALU, isa.ClassNop, isa.ClassBranch, isa.ClassStore:
		return m.T.IntLatency
	case isa.ClassIntMul:
		return m.T.MulLatency
	case isa.ClassLoad:
		return m.T.LoadLatency
	case isa.ClassFPAdd, isa.ClassFPMul:
		return m.T.FPLatency
	case isa.ClassFPDiv:
		return m.T.FDivLatency
	case isa.ClassFPSqrt:
		return m.T.FSqrtLatency
	}
	return 1
}

func atomIntReads(a Atom) []uint8 {
	switch a.Op {
	case AMov, AAddI, ASubI, AShl, AShr, ACmpI, ACvtIF:
		return []uint8{a.Src1}
	case AAdd, ASub, AMul, AAnd, AOr, AXor, ACmp:
		return []uint8{a.Src1, a.Src2}
	case ALd, AFLd:
		return []uint8{a.Src1}
	case ASt:
		return []uint8{a.Src1, a.Src2}
	case AFSt:
		return []uint8{a.Src1}
	}
	return nil
}

func atomFPReads(a Atom) []uint8 {
	switch a.Op {
	case AFMov, AFSqrt, AFNeg, AFAbs, ACvtFI:
		return []uint8{a.Src1}
	case AFAdd, AFSub, AFMul, AFDiv, AFCmp:
		return []uint8{a.Src1, a.Src2}
	case AFSt:
		return []uint8{a.Src2}
	}
	return nil
}

// execAtom computes the atom's effect. It returns the pending register
// write (nil if none), a branch-exit PC (nil if not taken), and a halt
// flag.
func execAtom(a Atom, st *State) (*pendingWrite, *int, bool, error) {
	arch := st.Arch
	iw := func(reg uint8, v int64) *pendingWrite { return &pendingWrite{reg: reg, vi: v} }
	fw := func(reg uint8, v float64) *pendingWrite { return &pendingWrite{fp: true, reg: reg, vf: v} }
	switch a.Op {
	case ANop:
		return nil, nil, false, nil
	case AMovI:
		return iw(a.Dst, a.Imm), nil, false, nil
	case AMov:
		return iw(a.Dst, st.getR(a.Src1)), nil, false, nil
	case AAdd:
		return iw(a.Dst, st.getR(a.Src1)+st.getR(a.Src2)), nil, false, nil
	case AAddI:
		return iw(a.Dst, st.getR(a.Src1)+a.Imm), nil, false, nil
	case ASub:
		return iw(a.Dst, st.getR(a.Src1)-st.getR(a.Src2)), nil, false, nil
	case ASubI:
		return iw(a.Dst, st.getR(a.Src1)-a.Imm), nil, false, nil
	case AMul:
		return iw(a.Dst, st.getR(a.Src1)*st.getR(a.Src2)), nil, false, nil
	case AAnd:
		return iw(a.Dst, st.getR(a.Src1)&st.getR(a.Src2)), nil, false, nil
	case AOr:
		return iw(a.Dst, st.getR(a.Src1)|st.getR(a.Src2)), nil, false, nil
	case AXor:
		return iw(a.Dst, st.getR(a.Src1)^st.getR(a.Src2)), nil, false, nil
	case AShl:
		return iw(a.Dst, st.getR(a.Src1)<<uint(a.Imm&63)), nil, false, nil
	case AShr:
		return iw(a.Dst, int64(uint64(st.getR(a.Src1))>>uint(a.Imm&63))), nil, false, nil
	case ACmp:
		x, y := st.getR(a.Src1), st.getR(a.Src2)
		arch.FlagZ, arch.FlagL = x == y, x < y
		return nil, nil, false, nil
	case ACmpI:
		x := st.getR(a.Src1)
		arch.FlagZ, arch.FlagL = x == a.Imm, x < a.Imm
		return nil, nil, false, nil
	case ALd:
		addr := st.getR(a.Src1) + a.Imm
		if addr < 0 || addr >= int64(len(arch.Mem)) {
			return nil, nil, false, fmt.Errorf("load address %d out of range", addr)
		}
		return iw(a.Dst, arch.LoadI(addr)), nil, false, nil
	case ASt:
		addr := st.getR(a.Src1) + a.Imm
		if addr < 0 || addr >= int64(len(arch.Mem)) {
			return nil, nil, false, fmt.Errorf("store address %d out of range", addr)
		}
		arch.StoreI(addr, st.getR(a.Src2))
		return nil, nil, false, nil
	case AFLd:
		addr := st.getR(a.Src1) + a.Imm
		if addr < 0 || addr >= int64(len(arch.Mem)) {
			return nil, nil, false, fmt.Errorf("fload address %d out of range", addr)
		}
		return fw(a.Dst, arch.LoadF(addr)), nil, false, nil
	case AFSt:
		addr := st.getR(a.Src1) + a.Imm
		if addr < 0 || addr >= int64(len(arch.Mem)) {
			return nil, nil, false, fmt.Errorf("fstore address %d out of range", addr)
		}
		arch.StoreF(addr, st.getF(a.Src2))
		return nil, nil, false, nil
	case AFMovI:
		return fw(a.Dst, a.F), nil, false, nil
	case AFMov:
		return fw(a.Dst, st.getF(a.Src1)), nil, false, nil
	case AFAdd:
		return fw(a.Dst, st.getF(a.Src1)+st.getF(a.Src2)), nil, false, nil
	case AFSub:
		return fw(a.Dst, st.getF(a.Src1)-st.getF(a.Src2)), nil, false, nil
	case AFMul:
		return fw(a.Dst, st.getF(a.Src1)*st.getF(a.Src2)), nil, false, nil
	case AFDiv:
		return fw(a.Dst, st.getF(a.Src1)/st.getF(a.Src2)), nil, false, nil
	case AFSqrt:
		return fw(a.Dst, math.Sqrt(st.getF(a.Src1))), nil, false, nil
	case AFNeg:
		return fw(a.Dst, -st.getF(a.Src1)), nil, false, nil
	case AFAbs:
		return fw(a.Dst, math.Abs(st.getF(a.Src1))), nil, false, nil
	case ACvtIF:
		return fw(a.Dst, float64(st.getR(a.Src1))), nil, false, nil
	case ACvtFI:
		return iw(a.Dst, int64(st.getF(a.Src1))), nil, false, nil
	case AFCmp:
		x, y := st.getF(a.Src1), st.getF(a.Src2)
		arch.FlagZ, arch.FlagL = x == y, x < y
		return nil, nil, false, nil
	case ABr, ABrZ, ABrNZ, ABrL, ABrLE, ABrG, ABrGE:
		take := false
		switch a.Op {
		case ABr:
			take = true
		case ABrZ:
			take = arch.FlagZ
		case ABrNZ:
			take = !arch.FlagZ
		case ABrL:
			take = arch.FlagL
		case ABrLE:
			take = arch.FlagL || arch.FlagZ
		case ABrG:
			take = !arch.FlagL && !arch.FlagZ
		case ABrGE:
			take = !arch.FlagL
		}
		if !take {
			return nil, nil, false, nil
		}
		if a.Imm < 0 {
			pc := int(-a.Imm - 1)
			return nil, &pc, true, nil
		}
		pc := int(a.Imm)
		return nil, &pc, false, nil
	}
	return nil, nil, false, fmt.Errorf("unknown atom op %d", a.Op)
}
