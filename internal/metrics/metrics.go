// Package metrics provides the small shared vocabulary of the experiment
// drivers: speedup/efficiency arithmetic and plain-text table rendering
// in the paper's layout.
package metrics

import (
	"fmt"
	"strings"
)

// Speedup returns t1/tp.
func Speedup(t1, tp float64) float64 {
	if tp <= 0 {
		return 0
	}
	return t1 / tp
}

// Efficiency returns speedup/p.
func Efficiency(t1, tp float64, p int) float64 {
	if p <= 0 {
		return 0
	}
	return Speedup(t1, tp) / float64(p)
}

// Table renders an aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped and
// missing cells rendered empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered
// with %v unless it is a float64, which gets the supplied numeric format.
func (t *Table) AddRowf(numFmt string, cells ...any) {
	out := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case float64:
			out = append(out, fmt.Sprintf(numFmt, v))
		default:
			out = append(out, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(out...)
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
