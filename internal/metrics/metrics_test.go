package metrics

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSpeedupEfficiency(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Fatal("speedup")
	}
	if Speedup(10, 0) != 0 {
		t.Fatal("zero time must not divide")
	}
	if Efficiency(10, 2, 5) != 1 {
		t.Fatal("efficiency")
	}
	if Efficiency(10, 2, 0) != 0 {
		t.Fatal("zero P must not divide")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "Machine", "Gflop")
	tb.AddRow("Avalon", "14.1")
	tb.AddRowf("%.2f", "MetaBlade", 2.75)
	s := tb.String()
	if !strings.HasPrefix(s, "Title\n") {
		t.Fatalf("missing title: %q", s)
	}
	if !strings.Contains(s, "Avalon") || !strings.Contains(s, "2.75") {
		t.Fatalf("missing cells: %q", s)
	}
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	// Column alignment: every line has the second column starting at the
	// same offset.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	header := lines[1]
	idx := strings.Index(header, "Gflop")
	if !strings.HasPrefix(lines[3][idx:], "14.1") {
		t.Fatalf("column misaligned:\n%s", s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("1")                // short
	tb.AddRow("1", "2", "3", "4") // long: extra dropped
	s := tb.String()
	if strings.Contains(s, "4") {
		t.Fatalf("extra cell kept: %q", s)
	}
	if tb.Rows() != 2 {
		t.Fatal("row count")
	}
}

func TestTableNeverPanicsProperty(t *testing.T) {
	f := func(title string, hdr []string, cells []string) bool {
		if len(hdr) > 8 {
			hdr = hdr[:8]
		}
		if len(hdr) == 0 {
			hdr = []string{"x"}
		}
		tb := NewTable(title, hdr...)
		tb.AddRow(cells...)
		return len(tb.String()) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
