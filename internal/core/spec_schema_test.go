package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func readSpecSchema(t *testing.T) []byte {
	t.Helper()
	schemaJSON, err := os.ReadFile(filepath.Join("..", "..", "schema", "experiment_spec_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	return schemaJSON
}

// TestSpecSchemaMatchesRegistry pins the checked-in schema to the
// compiled registry: adding or renaming an experiment kind must update
// schema/experiment_spec_v1.json in the same change.
func TestSpecSchemaMatchesRegistry(t *testing.T) {
	var sc SpecSchema
	if err := json.Unmarshal(readSpecSchema(t), &sc); err != nil {
		t.Fatal(err)
	}
	if sc.Schema != SpecAPI {
		t.Errorf("schema tag %q, want %q", sc.Schema, SpecAPI)
	}
	if !reflect.DeepEqual(sc.Kinds, SpecKinds()) {
		t.Errorf("schema kinds %v\nregistry    %v", sc.Kinds, SpecKinds())
	}
}

func TestValidateSpecJSON(t *testing.T) {
	schemaJSON := readSpecSchema(t)
	good := [][]byte{
		[]byte(`{"api":"repro/spec/v1","kind":"table1"}`),
		[]byte(`{"api":"repro/spec/v1","kind":"tco","spec":{"blade":true}}`),
		[]byte(`{"api":"repro/spec/v1","kind":"nbody","spec":{"n":1000,"engine":"group"}}`),
	}
	for _, doc := range good {
		if err := ValidateSpecJSON(schemaJSON, doc); err != nil {
			t.Errorf("%s: %v", doc, err)
		}
	}
	bad := [][]byte{
		[]byte(`{"api":"repro/spec/v1","kind":"nope"}`),
		[]byte(`{"api":"repro/spec/v2","kind":"table1"}`),
		[]byte(`{"api":"repro/spec/v1","kind":"tco","spec":{"bogus":1}}`),
		[]byte(`{"api":"repro/spec/v1","kind":"tco","spec":{"nodes":-1}}`),
		[]byte(`not json`),
	}
	for _, doc := range bad {
		if err := ValidateSpecJSON(schemaJSON, doc); err == nil {
			t.Errorf("%s: accepted, want error", doc)
		}
	}
	// A schema that silently drops a kind must reject that kind even
	// though the registry knows it.
	narrow := []byte(`{"schema":"repro/spec/v1","kinds":["table1"]}`)
	if err := ValidateSpecJSON(narrow, []byte(`{"api":"repro/spec/v1","kind":"tco"}`)); err == nil {
		t.Error("kind outside schema list accepted")
	}
}
