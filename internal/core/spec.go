package core

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// The unified experiment API: every experiment the repository can run —
// the paper's tables and figure, the NAS rank sweeps, the TCO/ToPPeR
// queries, free-form N-body scenarios — is described by an
// ExperimentSpec. A spec is a plain JSON-marshalable value registered
// under a kind string; it validates itself, normalizes its defaulted
// fields, and executes against a Run. The CLI drivers and the gridd
// HTTP gateway are two thin frontends over this one API: flags parse
// into specs, HTTP bodies decode into specs, and both hand them to
// RunSpec.
//
// Specs are canonically hashable. CanonicalSpec clones a spec through
// its JSON form and normalizes it, so two specs that differ only in
// JSON field order, in defaulted-versus-omitted fields, or in a
// deprecated alias (GroupWalk versus Engine "group") canonicalize to
// the same value — and SpecHash, the SHA-256 of the canonical envelope,
// is the cache key the gateway uses to serve repeated submissions of a
// deterministic experiment for free.

// SpecAPI is the version string of the experiment-spec envelope.
const SpecAPI = "repro/spec/v1"

// ExperimentSpec is one runnable experiment description.
type ExperimentSpec interface {
	// Kind returns the registry name of the experiment ("table1",
	// "nbody", "tco", ...).
	Kind() string
	// Normalize fills defaulted fields in place and folds deprecated
	// aliases, so canonical forms compare and hash identically.
	Normalize()
	// Validate reports whether the (normalized) spec is runnable.
	Validate() error
	// Run executes the experiment, recording metrics and trace spans
	// into the Run, and returns the result.
	Run(r *Run) (*SpecResult, error)
}

// SpecResult is the outcome of one spec execution: the exact text a CLI
// driver prints, plus structured rows for JSON consumers.
type SpecResult struct {
	// Kind echoes the spec's kind.
	Kind string `json:"kind"`
	// Text is the human-readable rendering — byte-identical to what
	// the pre-spec CLI drivers printed.
	Text string `json:"text"`
	// Data carries the experiment's structured rows, when it has any.
	Data any `json:"data,omitempty"`
	// Extra carries host-side artifacts (e.g. the *nbody.System behind
	// a rendering) that never serialize.
	Extra any `json:"-"`
}

// SpecEnvelope is the wire form of a spec: a versioned, kind-tagged
// wrapper around the spec's own JSON body.
type SpecEnvelope struct {
	API  string          `json:"api"`
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec,omitempty"`
}

// specRegistry maps kind names to fresh-spec factories.
var specRegistry = map[string]func() ExperimentSpec{}

// RegisterSpec adds an experiment kind to the registry. Duplicate
// registration panics: kinds are a closed, compile-time vocabulary.
func RegisterSpec(kind string, factory func() ExperimentSpec) {
	if kind == "" || factory == nil {
		panic("core: RegisterSpec with empty kind or nil factory")
	}
	if _, dup := specRegistry[kind]; dup {
		panic("core: duplicate spec kind " + kind)
	}
	specRegistry[kind] = factory
}

// SpecKinds lists the registered experiment kinds, sorted.
func SpecKinds() []string {
	kinds := make([]string, 0, len(specRegistry))
	for k := range specRegistry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// NewSpec returns a fresh zero spec of the given kind.
func NewSpec(kind string) (ExperimentSpec, error) {
	f, ok := specRegistry[kind]
	if !ok {
		return nil, fmt.Errorf("core: unknown experiment kind %q (have %v)", kind, SpecKinds())
	}
	return f(), nil
}

// DecodeSpec parses an envelope document into a spec. Unknown envelope
// or spec fields are errors — the API is versioned, and silently
// dropping a misspelled field would change the experiment a caller
// thinks they submitted.
func DecodeSpec(data []byte) (ExperimentSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var env SpecEnvelope
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("core: bad spec envelope: %w", err)
	}
	if env.API != "" && env.API != SpecAPI {
		return nil, fmt.Errorf("core: spec api %q, want %q", env.API, SpecAPI)
	}
	s, err := NewSpec(env.Kind)
	if err != nil {
		return nil, err
	}
	if len(env.Spec) > 0 {
		sdec := json.NewDecoder(bytes.NewReader(env.Spec))
		sdec.DisallowUnknownFields()
		if err := sdec.Decode(s); err != nil {
			return nil, fmt.Errorf("core: bad %q spec: %w", env.Kind, err)
		}
	}
	return s, nil
}

// CanonicalSpec clones a spec through its JSON form and normalizes the
// clone. The caller's spec is left untouched.
func CanonicalSpec(s ExperimentSpec) (ExperimentSpec, error) {
	body, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("core: marshal %q spec: %w", s.Kind(), err)
	}
	c, err := NewSpec(s.Kind())
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(body, c); err != nil {
		return nil, fmt.Errorf("core: reparse %q spec: %w", s.Kind(), err)
	}
	c.Normalize()
	return c, nil
}

// EncodeSpec renders the canonical envelope bytes of a spec: fixed
// field order (Go struct order), normalized values, compact encoding.
// These are the bytes SpecHash digests.
func EncodeSpec(s ExperimentSpec) ([]byte, error) {
	c, err := CanonicalSpec(s)
	if err != nil {
		return nil, err
	}
	body, err := json.Marshal(c)
	if err != nil {
		return nil, err
	}
	return json.Marshal(SpecEnvelope{API: SpecAPI, Kind: c.Kind(), Spec: body})
}

// SpecHash returns the canonical SHA-256 cache key of a spec, as hex.
// Two specs describing the same experiment — regardless of JSON field
// order, omitted defaults, or deprecated aliases — hash identically.
func SpecHash(s ExperimentSpec) (string, error) {
	enc, err := EncodeSpec(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(enc)
	return hex.EncodeToString(sum[:]), nil
}

// RunSpec canonicalizes, validates and executes a spec on the Run.
// The spec itself is not mutated.
func RunSpec(r *Run, s ExperimentSpec) (*SpecResult, error) {
	c, err := CanonicalSpec(s)
	if err != nil {
		return nil, err
	}
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid %q spec: %w", c.Kind(), err)
	}
	return c.Run(r)
}

// SpecSchema is the checked-in contract an experiment-spec envelope
// document must satisfy (schema/experiment_spec_v1.json).
type SpecSchema struct {
	// Schema is the exact envelope version string required.
	Schema string `json:"schema"`
	// Kinds enumerates the experiment kinds the document may carry.
	Kinds []string `json:"kinds"`
}

// ValidateSpecJSON checks an envelope document against a schema
// document and the registry: the api version must match, the kind must
// be both schema-listed and registered, and the spec body must decode
// strictly and validate.
func ValidateSpecJSON(schemaJSON, doc []byte) error {
	var sc SpecSchema
	if err := json.Unmarshal(schemaJSON, &sc); err != nil {
		return fmt.Errorf("core: bad spec schema document: %w", err)
	}
	if sc.Schema != SpecAPI {
		return fmt.Errorf("core: spec schema document is for %q, want %q", sc.Schema, SpecAPI)
	}
	var env SpecEnvelope
	if err := json.Unmarshal(doc, &env); err != nil {
		return fmt.Errorf("core: bad spec envelope: %w", err)
	}
	listed := false
	for _, k := range sc.Kinds {
		if k == env.Kind {
			listed = true
			break
		}
	}
	if !listed {
		return fmt.Errorf("core: kind %q not in schema kinds %v", env.Kind, sc.Kinds)
	}
	s, err := DecodeSpec(doc)
	if err != nil {
		return err
	}
	c, err := CanonicalSpec(s)
	if err != nil {
		return err
	}
	return c.Validate()
}
