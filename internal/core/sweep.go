package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/par"
)

// The rank-sweep harness: the p=1..24 sweeps behind the paper's
// scalability results run many completely independent Worlds — one per
// rank count — so the host can execute them concurrently on the
// internal/par pool. Per the determinism contract, concurrency is
// invisible in the results: every world's virtual times, byte counts and
// pool statistics are pure functions of its own program, and the
// harness folds rows, gauges and snapshot gathers in rank-count order
// in a serial post-pass, so a sweep at any worker count produces
// bit-identical rows and snapshots.

// sweepChannelDepth bounds per-pair in-flight messages for sweep worlds.
// A concurrent sweep keeps every world's channels alive at once, and the
// kernels here never queue more than a few messages per pair, so the
// deep default would only waste host memory.
const sweepChannelDepth = 256

// NASSweepConfig sizes the parallel NAS rank sweep.
type NASSweepConfig struct {
	// Class is the NPB problem class (S, W, A).
	Class nas.Class
	// Ranks lists the world sizes to sweep.
	Ranks []int
	// Concurrent runs the sweep's independent worlds concurrently on
	// the internal/par pool; results are identical either way.
	Concurrent bool
	// Workers bounds host concurrency when Concurrent (0 = the
	// process-wide default).
	Workers int
	// Native selects the native collective algorithms (recursive
	// doubling, pipelined ring) instead of the classic patterns.
	Native bool
	// Contention enables the per-port occupancy model on the fabric.
	Contention bool
	// Fabric names the interconnect topology: "star" (or empty, the
	// paper's switch), "fattree", "torus2d", "torus3d". Shaped fabrics
	// get topology-aware hop counts and hierarchical collectives.
	Fabric string
	// Mode selects the rank scheduler: "goroutine", "event", or
	// ""/"auto" (event at or above EventAutoThreshold ranks).
	Mode string
	// EPOnly skips the IS kernel. Large-p sweeps set it: IS keys scale
	// with the key space per rank and its all-to-all holds O(p²) live
	// slices, while EP stays lean at any p.
	EPOnly bool
}

// EventAutoThreshold is the world size at which ""/"auto" scheduler
// mode switches from goroutine ranks to the event-driven scheduler.
// Below it the goroutine path is cheap and battle-tested; above it
// size² channels and host stacks dominate. Either choice yields
// bit-identical results.
const EventAutoThreshold = 256

// ResolveMPIMode maps a scheduler-mode name and world size to
// Config.Event: "event" and "goroutine" force, ""/"auto" picks the
// event scheduler at or above EventAutoThreshold ranks.
func ResolveMPIMode(mode string, p int) (bool, error) {
	switch mode {
	case "event":
		return true, nil
	case "goroutine":
		return false, nil
	case "", "auto":
		return p >= EventAutoThreshold, nil
	}
	return false, fmt.Errorf("core: unknown MPI mode %q (want goroutine, event or auto)", mode)
}

// DefaultNASSweepConfig sweeps EP and IS over every blade count of the
// 24-blade chassis with the default (classic, uncontended) substrate.
func DefaultNASSweepConfig() NASSweepConfig {
	ranks := make([]int, 24)
	for i := range ranks {
		ranks[i] = i + 1
	}
	return NASSweepConfig{Class: nas.ClassS, Ranks: ranks}
}

// NASSweepRow is one rank count's measurement.
type NASSweepRow struct {
	Ranks                int
	EPTime, ISTime       float64 // simulated makespans
	EPSpeedup, ISSpeedup float64 // over the one-rank run
	CommBytes            int64   // EP+IS payload bytes
	PoolHits, PoolMisses int64   // buffer-pool traffic across both worlds
}

// nasSweepOut is one rank count's raw results, filled by possibly
// concurrent workers and consumed by the deterministic post-pass.
type nasSweepOut struct {
	ep, is   *nas.ParallelResult
	wEP, wIS *mpi.World
	err      error
}

// NASSweep runs ParallelEP and ParallelIS at every configured rank
// count on the modelled cluster and reports simulated times, speedups
// and substrate statistics. With cfg.Concurrent the independent worlds
// run concurrently via internal/par; rows and snapshot contents are
// bit-identical to the serial sweep.
func (r *Run) NASSweep(cfg NASSweepConfig) ([]NASSweepRow, *metrics.Table, error) {
	if len(cfg.Ranks) == 0 {
		return nil, nil, fmt.Errorf("core: empty NASSweep config")
	}
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateClassW)
	if err != nil {
		return nil, nil, err
	}
	mkWorld := func(p int) (*mpi.World, error) {
		f := netsim.FastEthernet()
		f.PortContention = cfg.Contention
		if err := netsim.ApplyTopology(f, cfg.Fabric, p); err != nil {
			return nil, err
		}
		event, err := ResolveMPIMode(cfg.Mode, p)
		if err != nil {
			return nil, err
		}
		w, err := mpi.NewWorldWithConfig(p, mpi.Config{
			Fabric:       f,
			Native:       cfg.Native,
			ChannelDepth: sweepChannelDepth,
			Event:        event,
		})
		if err != nil {
			return nil, err
		}
		w.Tracer = r.Tracer
		return w, nil
	}
	outs := make([]nasSweepOut, len(cfg.Ranks))
	runOne := func(i int) {
		o := &outs[i]
		p := cfg.Ranks[i]
		wEP, err := mkWorld(p)
		if err != nil {
			o.err = err
			return
		}
		o.wEP = wEP
		if o.ep, o.err = nas.ParallelEP(wEP, cfg.Class, costs); o.err != nil {
			return
		}
		if cfg.EPOnly {
			return
		}
		wIS, err := mkWorld(p)
		if err != nil {
			o.err = err
			return
		}
		o.wIS = wIS
		o.is, o.err = nas.ParallelIS(wIS, cfg.Class, costs)
	}
	if cfg.Concurrent {
		tasks := make([]func(), len(cfg.Ranks))
		for i := range tasks {
			i := i
			tasks[i] = func() { runOne(i) }
		}
		par.New(cfg.Workers).Do(tasks...)
	} else {
		for i, p := range cfg.Ranks {
			sp := r.Tracer.Begin(obs.PidHost, 0, "nassweep", fmt.Sprintf("p%d", p))
			runOne(i)
			sp.End(nil)
		}
	}

	// Deterministic post-pass: rows, gauges and world gathers in
	// rank-count order, independent of completion order.
	var rows []NASSweepRow
	var epT1, isT1 float64
	for i, p := range cfg.Ranks {
		o := &outs[i]
		if o.err != nil {
			return nil, nil, o.err
		}
		if epT1 == 0 {
			epT1 = o.ep.SimTime
			if p != 1 {
				epT1 *= float64(p) // fallback if the sweep skips p=1
			}
		}
		if isT1 == 0 && o.is != nil {
			isT1 = o.is.SimTime
			if p != 1 {
				isT1 *= float64(p)
			}
		}
		hEP, mEP := o.wEP.PoolStats()
		row := NASSweepRow{
			Ranks:      p,
			EPTime:     o.ep.SimTime,
			EPSpeedup:  metrics.Speedup(epT1, o.ep.SimTime),
			CommBytes:  o.ep.CommByte,
			PoolHits:   hEP,
			PoolMisses: mEP,
		}
		if o.is != nil {
			hIS, mIS := o.wIS.PoolStats()
			row.ISTime = o.is.SimTime
			row.ISSpeedup = metrics.Speedup(isT1, o.is.SimTime)
			row.CommBytes += o.is.CommByte
			row.PoolHits += hIS
			row.PoolMisses += mIS
			r.gather(o.wEP, o.wIS)
		} else {
			r.gather(o.wEP)
		}
		pfx := fmt.Sprintf("nassweep.p%02d.", p)
		r.Snap.SetGauge(pfx+"ep.time", "s", "simulated EP makespan", row.EPTime)
		r.Snap.SetGauge(pfx+"ep.speedup", "", "EP speedup over one blade", row.EPSpeedup)
		if o.is != nil {
			r.Snap.SetGauge(pfx+"is.time", "s", "simulated IS makespan", row.ISTime)
			r.Snap.SetGauge(pfx+"is.speedup", "", "IS speedup over one blade", row.ISSpeedup)
		}
		r.Snap.SetGauge(pfx+"bytes", "bytes", "EP+IS payload bytes", float64(row.CommBytes))
		r.Snap.SetGauge(pfx+"pool.hits", "", "buffer-pool hits, EP+IS worlds", float64(row.PoolHits))
		r.Snap.SetGauge(pfx+"pool.misses", "", "buffer-pool misses, EP+IS worlds", float64(row.PoolMisses))
		rows = append(rows, row)
	}
	t := metrics.NewTable(
		fmt.Sprintf("Parallel NAS sweep (class %s) on MetaBlade", cfg.Class),
		"# Ranks", "EP time (s)", "EP speed-up", "IS time (s)", "IS speed-up", "Comm bytes", "Pool hits", "Pool misses")
	for _, row := range rows {
		t.AddRowf("%.4g", fmt.Sprintf("%d", row.Ranks),
			row.EPTime, row.EPSpeedup, row.ISTime, row.ISSpeedup,
			float64(row.CommBytes), float64(row.PoolHits), float64(row.PoolMisses))
	}
	return rows, t, nil
}
