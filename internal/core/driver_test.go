package core

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mpi"
	"repro/internal/obs"
	"repro/internal/par"
)

// TestDriverEnvelope drives the shared flag surface on a private
// FlagSet and checks the written artifact against the checked-in
// schema: meta stamped, counters exact, trace valid.
func TestDriverEnvelope(t *testing.T) {
	dir := t.TempDir()
	obsPath := filepath.Join(dir, "obs.json")
	csvPath := filepath.Join(dir, "obs.csv")
	tracePath := filepath.Join(dir, "out.trace")

	d := &Driver{Name: "drivertest"}
	fs := flag.NewFlagSet("drivertest", flag.ContinueOnError)
	d.RegisterFlags(fs)
	if err := fs.Parse([]string{
		"-obs-json", obsPath, "-obs-csv", csvPath, "-trace", tracePath, "-procs", "2",
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Setup(); err != nil {
		t.Fatal(err)
	}
	defer par.SetWorkers(0)
	if par.Workers() != 2 {
		t.Fatalf("par.Workers() = %d after -procs 2", par.Workers())
	}
	if d.Run == nil || d.Run.Tracer == nil {
		t.Fatal("Setup did not create a traced Run")
	}
	if got := d.Run.Snap.Meta()["driver"]; got != "drivertest" {
		t.Fatalf("driver meta = %q", got)
	}

	// Stand in for an experiment: the cms/treecode contract metrics by
	// hand, the mpi vocabulary gathered from a real (tiny) world so the
	// schema's required samples track what Collect actually emits.
	d.Run.Snap.AddCounter("cms.cycles.total", "cycles", "", 12345)
	d.Run.Snap.AddCounter("treecode.interactions", "", "", 90)
	w, err := mpi.NewWorldWithConfig(2, mpi.Config{ChannelDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(func(c *mpi.Comm) error {
		c.AllreduceInto(mpi.Sum, []float64{float64(c.Rank())})
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	d.Run.Snap.Gather(w)
	sp := d.Run.Tracer.Begin(obs.PidHost, 0, "test", "phase")
	sp.End(nil)

	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	schemaJSON, err := os.ReadFile(filepath.Join("..", "..", "schema", "obs_snapshot_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	snapJSON, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateSnapshotJSON(schemaJSON, snapJSON); err != nil {
		t.Fatalf("driver artifact fails its own schema: %v", err)
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(csv) == 0 {
		t.Fatal("empty CSV artifact")
	}
	trace, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace artifact")
	}
}

func TestDriverRejectsBadFormat(t *testing.T) {
	d := &Driver{Name: "x", Format: "yaml"}
	if err := d.Setup(); err == nil {
		t.Fatal("bad -format accepted")
	}
}

// TestTable2ObsCounterDeterminism is the acceptance check in miniature:
// every counter the instrumented Table 2 sweep produces — treecode
// interaction shards, mpi volumes, cms-derived calibration counts — must
// be bit-identical at host worker widths 1, 2 and 8.
func TestTable2ObsCounterDeterminism(t *testing.T) {
	cfg := Table2Config{Particles: 4000, CPUCounts: []int{1, 2}, Theta: 0.7}
	counters := func(w int) map[string]uint64 {
		par.SetWorkers(w)
		r := NewRun()
		if _, _, err := r.Table2(cfg); err != nil {
			t.Fatal(err)
		}
		out := map[string]uint64{}
		for _, sm := range r.Snap.Samples() {
			if sm.Kind == obs.KindCounter {
				out[sm.Name] = sm.Int
			}
		}
		return out
	}
	defer par.SetWorkers(0)
	ref := counters(1)
	if len(ref) == 0 {
		t.Fatal("no counters gathered from Table2")
	}
	if _, ok := ref["treecode.interactions"]; !ok {
		t.Fatal("treecode.interactions missing from Table2 snapshot")
	}
	if _, ok := ref["mpi.bytes.total"]; !ok {
		t.Fatal("mpi.bytes.total missing from Table2 snapshot")
	}
	for _, w := range []int{2, 8} {
		got := counters(w)
		if len(got) != len(ref) {
			t.Fatalf("width %d: %d counters vs %d", w, len(got), len(ref))
		}
		for name, v := range ref {
			if got[name] != v {
				t.Fatalf("width %d: %s = %d, want %d", w, name, got[name], v)
			}
		}
	}
}

// TestTable1GathersCMS checks the microkernel experiment feeds the CMS
// pipeline counters of the Crusoe runs into the run's snapshot.
func TestTable1GathersCMS(t *testing.T) {
	r := NewRun()
	if _, _, err := r.Table1(); err != nil {
		t.Fatal(err)
	}
	if got := r.Snap.Counter("cms.cycles.total"); got == 0 {
		t.Fatal("cms.cycles.total not gathered from the TM5600 runs")
	}
	if got := r.Snap.Counter("cms.runs"); got != 2 {
		t.Fatalf("cms.runs = %d, want 2 (math + Karp variants)", got)
	}
	if _, ok := r.Snap.Lookup("table1.633_mhz_transmeta_tm5600.math_mflops"); !ok {
		t.Fatal("per-processor rating gauge missing")
	}
}
