// Package core assembles the paper's systems: the machine registry
// (MetaBlade, MetaBlade2, Green Destiny, Avalon, Loki, and the other
// clusters and supercomputers of Table 4) and the experiment drivers that
// regenerate every table and figure of the evaluation. See DESIGN.md's
// experiment index.
package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/nbody"
	"repro/internal/treecode"
)

// Machine is one entry of the historical-machine registry.
type Machine struct {
	Name string
	// CPU is the per-processor timing model.
	CPU cpu.Processor
	// Procs is the processor count of the benchmark run.
	Procs int
	// ParallelEff is the treecode's parallel efficiency on the machine's
	// interconnect (historical codes reported 60–90%).
	ParallelEff float64
	// Physical attributes for Tables 6 and 7 (zero if not applicable).
	Cluster *cluster.Cluster
}

// Registry returns Table 4's machines in the paper's row order. Processor
// models come from the cpu package; counts and efficiencies follow the
// published runs.
func Registry() ([]Machine, error) {
	metaBlade, err := cluster.New("MetaBlade", cluster.NodeTM5600, cluster.BladePackaging(), 24, 27)
	if err != nil {
		return nil, err
	}
	metaBlade2, err := cluster.New("MetaBlade2", cluster.NodeTM5800, cluster.BladePackaging(), 24, 27)
	if err != nil {
		return nil, err
	}
	avalon, err := cluster.New("Avalon", cluster.NodeAlpha, avalonPackaging(), 128, 24)
	if err != nil {
		return nil, err
	}
	return []Machine{
		// ccNUMA shared memory keeps the Origin's parallel efficiency
		// well above the Ethernet clusters'.
		{Name: "LANL SGI Origin 2000", CPU: cpu.R10000_250().AsProcessor(), Procs: 64, ParallelEff: 0.92},
		// Half of MetaBlade2's run happened on the SC'01 showroom floor;
		// its efficiency reflects that venue's networking.
		{Name: "SC'01 MetaBlade2", CPU: cpu.NewTM5800(), Procs: 24, ParallelEff: 0.72, Cluster: metaBlade2},
		{Name: "LANL Avalon", CPU: cpu.AlphaEV56_533().AsProcessor(), Procs: 128, ParallelEff: 0.75, Cluster: avalon},
		{Name: "LANL MetaBlade", CPU: cpu.NewTM5600(), Procs: 24, ParallelEff: 0.78, Cluster: metaBlade},
		{Name: "LANL Loki", CPU: cpu.PentiumPro200().AsProcessor(), Procs: 16, ParallelEff: 0.80},
		{Name: "NAS IBM SP-2 (66/W)", CPU: cpu.Power2_66().AsProcessor(), Procs: 128, ParallelEff: 0.85},
		{Name: "SC'96 Loki+Hyglac", CPU: cpu.PentiumPro200().AsProcessor(), Procs: 32, ParallelEff: 0.70},
		{Name: "Sandia ASCI Red", CPU: cpu.PentiumII333().AsProcessor(), Procs: 6800, ParallelEff: 0.60},
		{Name: "Caltech Naegling", CPU: cpu.PentiumPro200().AsProcessor(), Procs: 96, ParallelEff: 0.72},
		{Name: "NRL TMC CM-5E", CPU: cpu.SuperSPARC40().AsProcessor(), Procs: 256, ParallelEff: 0.70},
		{Name: "Sandia ASCI Red ('97)", CPU: cpu.PentiumPro200().AsProcessor(), Procs: 4096, ParallelEff: 0.55},
		{Name: "JPL Cray T3D", CPU: cpu.Alpha21064_150().AsProcessor(), Procs: 256, ParallelEff: 0.75},
	}, nil
}

// avalonPackaging describes Avalon's shelving: 128 Alpha towers over
// about 120 ft².
func avalonPackaging() cluster.Packaging {
	return cluster.Packaging{
		Name:                 "Avalon shelving",
		NodesPerChassis:      1,
		ChassisU:             1,
		RackU:                22, // ~22 towers per 20 ft² bay ⇒ 6 bays ≈ 120 ft²
		FootprintPerRack:     20,
		ChassisOverheadWatts: 0,
	}
}

// TreecodeRate measures a machine's treecode Mflops per processor: a real
// serial treecode run supplies the interaction counts and operation mix,
// and the machine's calibrated processor model supplies the time.
func TreecodeRate(p cpu.Processor, particles int) (mflopsPerProc float64, err error) {
	costs, err := cpu.CalibrateFor(p, cpu.MissRateTree)
	if err != nil {
		return 0, err
	}
	s := nbody.NewPlummer(particles, 1, 1997)
	f := &treecode.Forcer{Theta: 0.7}
	if err := f.Forces(s); err != nil {
		return 0, err
	}
	inter := f.LastStats.Interactions()
	mix := treecode.InteractionMix()
	mixTotal := *mix
	mixTotal.Scale(inter)
	build := treecode.BuildMix()
	buildTotal := *build
	buildTotal.Scale(uint64(s.N()))
	seconds := costs.Seconds(&mixTotal) + costs.Seconds(&buildTotal)
	if seconds <= 0 {
		return 0, fmt.Errorf("core: zero treecode time for %s", p.Name())
	}
	flops := float64(f.LastStats.Flops())
	return flops / seconds / 1e6, nil
}

// AvailabilityStudy quantifies Table 5's downtime argument with the
// discrete-event failure simulation: lost CPU-hours over the operational
// lifetime for a blade versus a traditional cluster, under the paper's
// whole-cluster-outage assumption for the traditional machine and
// single-blade outages for the managed chassis.
type AvailabilityStudy struct {
	Name              string
	FailuresPerYear   float64
	LostCPUHours      float64 // over the study period
	Availability      float64
	DowntimeCostUSD   float64 // at the paper's $5/CPU-hour
	EffectiveCapacity float64 // fraction of ideal CPU-hours delivered
}

// StudyAvailability runs the reliability simulation over years and
// returns blade-vs-traditional results.
func StudyAvailability(years float64, seed uint64) ([]AvailabilityStudy, error) {
	rel := cluster.DefaultReliability()
	blade, err := cluster.New("MetaBlade", cluster.NodeTM5600, cluster.BladePackaging(), 24, 27)
	if err != nil {
		return nil, err
	}
	trad, err := cluster.New("traditional (P4)", cluster.NodeP4, cluster.TraditionalPackaging(), 24, 24)
	if err != nil {
		return nil, err
	}
	mk := func(c *cluster.Cluster, wholeCluster bool, repairHours float64) AvailabilityStudy {
		r := rel
		r.RepairHours = repairHours
		fails, down := c.FailureSim(r, years, seed)
		cpusDown := 1.0
		if wholeCluster {
			cpusDown = float64(c.Nodes)
		}
		lost := down * cpusDown
		ideal := years * 8760 * float64(c.Nodes)
		return AvailabilityStudy{
			Name:              c.Name,
			FailuresPerYear:   float64(fails) / years,
			LostCPUHours:      lost,
			Availability:      1 - lost/ideal,
			DowntimeCostUSD:   lost * 5,
			EffectiveCapacity: 1 - lost/ideal,
		}
	}
	// Blade: managed chassis diagnoses in an hour, only the blade is down.
	// Traditional: four-hour whole-cluster outages (paper §4.1).
	return []AvailabilityStudy{
		mk(blade, false, 1),
		mk(trad, true, 4),
	}, nil
}
