package core

import (
	"encoding/json"
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/treecode"
)

// goldenSpecHashes pins the canonical hash of every kind's default
// spec. These are the gateway's cache keys: a change here silently
// invalidates every cached run of that kind, so it must be a conscious
// decision, not a drive-by field reorder.
var goldenSpecHashes = map[string]string{
	"figure3":    "1919661b4d26986f62f1e69f20519b507a0adeecf7caa896678e87ebbc4e5b3f",
	"naskernels": "1bdbe067b237392f404c29b11419f015f88d4af3676f6b12c02c23baf10b2ecc",
	"nassweep":   "02c96ae599d831d70600623289db06a52d82b3ded999609d1e904132f92fff2c",
	"nbody":      "a6cc8f49798e840a16e705be75fb429855ae8a993cd405ae7b194764b6748e1a",
	"spacepower": "0ed461b5913670587a431f06b3308a7958bbb325de29cda90c256552f35d7929",
	"table1":     "5d9f6e93fda98c47790a87260082add902ff5083884bd6f0223bea10b8f67c4a",
	"table2":     "b41d73ca30040c3ea87b0d3e02fd74724c6cb49df8740debc2ae14450a0ac700",
	"table3":     "83c21ab301541437be7a55a9aaa45263a99208f972dd07e8c694bd52b32da2e6",
	"table4":     "2c916658fd61d3eed50fd9dcbe797a24edc2dd5d7163030f710ac534f7b4fe4a",
	"table5":     "2d4e807ae85ea2a69799b1ffd90a5ba6b649c63e3b2521e5543128b93ed91507",
	"tco":        "b35f1e0c677fc46ab51485fd11553394ffd72d81919f1bc79e0606280c735cbf",
	"topper":     "278b1092f854b8082b77dc2b87ed69a293fd84757242091e4973f8975d7d5d15",
	"topperopt":  "ae2c646e736982f7a43f3794413ea637a92e863b11bfbc6cb1b557c330290620",
}

// TestSpecRoundTripEveryKind is the golden round-trip: for every
// registered kind, marshal → unmarshal → canonical hash is stable, the
// decoded spec validates, and the hash matches the pinned golden.
func TestSpecRoundTripEveryKind(t *testing.T) {
	kinds := SpecKinds()
	if len(kinds) != len(goldenSpecHashes) {
		t.Fatalf("registry has %d kinds, goldens cover %d — update goldenSpecHashes", len(kinds), len(goldenSpecHashes))
	}
	for _, kind := range kinds {
		s, err := NewSpec(kind)
		if err != nil {
			t.Fatal(err)
		}
		h1, err := SpecHash(s)
		if err != nil {
			t.Fatalf("%s: hash: %v", kind, err)
		}
		if want := goldenSpecHashes[kind]; h1 != want {
			t.Errorf("%s: hash %s, golden %s", kind, h1, want)
		}
		enc, err := EncodeSpec(s)
		if err != nil {
			t.Fatalf("%s: encode: %v", kind, err)
		}
		back, err := DecodeSpec(enc)
		if err != nil {
			t.Fatalf("%s: decode: %v", kind, err)
		}
		h2, err := SpecHash(back)
		if err != nil {
			t.Fatalf("%s: rehash: %v", kind, err)
		}
		if h1 != h2 {
			t.Errorf("%s: round-trip changed the hash: %s → %s", kind, h1, h2)
		}
		c, err := CanonicalSpec(back)
		if err != nil {
			t.Fatalf("%s: canonical: %v", kind, err)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: canonical default spec invalid: %v", kind, err)
		}
		// Encoding must be deterministic byte-for-byte, not just
		// hash-stable.
		enc2, err := EncodeSpec(back)
		if err != nil {
			t.Fatal(err)
		}
		if string(enc) != string(enc2) {
			t.Errorf("%s: canonical encoding unstable:\n%s\n%s", kind, enc, enc2)
		}
	}
}

// TestSpecHashFieldOrderInvariant: two JSON documents differing only in
// field order decode to specs with identical hashes.
func TestSpecHashFieldOrderInvariant(t *testing.T) {
	a := []byte(`{"api":"repro/spec/v1","kind":"table2","spec":{"particles":9000,"theta":0.8,"concurrent":true}}`)
	b := []byte(`{"kind":"table2","spec":{"concurrent":true,"theta":0.8,"particles":9000},"api":"repro/spec/v1"}`)
	sa, err := DecodeSpec(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := DecodeSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	ha, _ := SpecHash(sa)
	hb, _ := SpecHash(sb)
	if ha != hb {
		t.Errorf("field order changed the hash: %s vs %s", ha, hb)
	}
}

// TestSpecHashDefaultedFieldsInvariant: a spec with defaults spelled
// out hashes identically to one that omits them.
func TestSpecHashDefaultedFieldsInvariant(t *testing.T) {
	cases := []struct{ kind, sparse, explicit string }{
		{"table2", `{}`, `{"particles":60000,"cpu_counts":[1,2,4,8,16,24],"theta":0.7,"engine":"auto","error_budget":1}`},
		{"figure3", `{"particles":2000}`, `{"particles":2000,"steps":10,"width":72,"height":36,"engine":"auto"}`},
		{"nbody", `{}`, `{"n":20000,"steps":10,"dt":0.005,"theta":0.7,"engine":"auto","error_budget":1}`},
		{"tco", `{}`, `{"nodes":24,"watts":85,"acquisition":17000,"gflops":2.8,"ambient":24,"years":4,"kwh":0.1,"space":100,"cpu_hour":5}`},
		{"naskernels", `{}`, `{"class":"S","rate":true}`},
		{"table3", `{}`, `{"class":"W"}`},
		{"spacepower", `{}`, `{"table6":true,"table7":true}`},
	}
	for _, c := range cases {
		sa, err := DecodeSpec([]byte(`{"api":"repro/spec/v1","kind":"` + c.kind + `","spec":` + c.sparse + `}`))
		if err != nil {
			t.Fatalf("%s sparse: %v", c.kind, err)
		}
		sb, err := DecodeSpec([]byte(`{"api":"repro/spec/v1","kind":"` + c.kind + `","spec":` + c.explicit + `}`))
		if err != nil {
			t.Fatalf("%s explicit: %v", c.kind, err)
		}
		ha, _ := SpecHash(sa)
		hb, _ := SpecHash(sb)
		if ha != hb {
			ea, _ := EncodeSpec(sa)
			eb, _ := EncodeSpec(sb)
			t.Errorf("%s: defaulted fields changed the hash:\n%s\n%s", c.kind, ea, eb)
		}
	}
}

// TestTCOExplicitZeroHonored: Ambient and KWh are pointer fields, so an
// explicit zero (0°C machine room, free electricity) survives
// canonicalization instead of being silently rewritten to the default —
// and hashes as a different experiment than the defaulted form.
func TestTCOExplicitZeroHonored(t *testing.T) {
	zero := 0.0
	c, err := CanonicalSpec(&TCOSpec{Ambient: &zero, KWh: &zero})
	if err != nil {
		t.Fatal(err)
	}
	ct := c.(*TCOSpec)
	if ct.Ambient == nil || *ct.Ambient != 0 {
		t.Errorf("canonical ambient = %v, want explicit 0", ct.Ambient)
	}
	if ct.KWh == nil || *ct.KWh != 0 {
		t.Errorf("canonical kwh = %v, want explicit 0", ct.KWh)
	}
	if err := c.Validate(); err != nil {
		t.Errorf("explicit zeros rejected: %v", err)
	}
	hz, err := SpecHash(&TCOSpec{Ambient: &zero})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := SpecHash(&TCOSpec{})
	if err != nil {
		t.Fatal(err)
	}
	if hz == hd {
		t.Error("explicit ambient 0 hashes identically to the defaulted spec")
	}
	// A negative rate is still invalid; only zero gained meaning.
	neg := -0.1
	cn, err := CanonicalSpec(&TCOSpec{KWh: &neg})
	if err != nil {
		t.Fatal(err)
	}
	if err := cn.Validate(); err == nil {
		t.Error("negative kwh validated")
	}
}

// TestGroupWalkAliasEquivalence covers the -groupwalk deprecation: the
// alias canonicalizes to the engine field, hashes identically to the
// spelled-out form, and resolves to the same engine both through the
// spec API and through the driver flags.
func TestGroupWalkAliasEquivalence(t *testing.T) {
	alias := &Table2Spec{EngineSpec: EngineSpec{GroupWalk: true}}
	spelled := &Table2Spec{EngineSpec: EngineSpec{Engine: "group"}}
	ha, err := SpecHash(alias)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := SpecHash(spelled)
	if err != nil {
		t.Fatal(err)
	}
	if ha != hb {
		t.Errorf("groupwalk alias hashes differently from engine=group: %s vs %s", ha, hb)
	}
	c, err := CanonicalSpec(alias)
	if err != nil {
		t.Fatal(err)
	}
	ce := c.(*Table2Spec)
	if ce.Engine != "group" || ce.GroupWalk {
		t.Errorf("canonical alias = {engine:%q groupwalk:%v}, want {engine:\"group\" groupwalk:false}", ce.Engine, ce.GroupWalk)
	}
	if got := ce.EngineSpec.resolve(); got != treecode.EngineGroup {
		t.Errorf("alias resolves to %v, want EngineGroup", got)
	}
	// An explicit engine wins over the alias, exactly like the flags.
	mixed := &Table2Spec{EngineSpec: EngineSpec{Engine: "list", GroupWalk: true}}
	cm, err := CanonicalSpec(mixed)
	if err != nil {
		t.Fatal(err)
	}
	if got := cm.(*Table2Spec).EngineSpec.resolve(); got != treecode.EngineList {
		t.Errorf("explicit engine lost to the alias: %v", got)
	}

	// Driver flags: -groupwalk and -engine group select the same engine.
	mk := func(args ...string) *Driver {
		d := &Driver{Name: "test"}
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		d.RegisterFlags(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if err := d.Setup(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	dAlias := mk("-groupwalk")
	dSpelled := mk("-engine", "group")
	if dAlias.Engine != dSpelled.Engine {
		t.Errorf("-groupwalk resolves to %v, -engine group to %v", dAlias.Engine, dSpelled.Engine)
	}
	hFlagAlias, _ := SpecHash(&Table2Spec{EngineSpec: dAlias.SpecEngine()})
	hFlagSpelled, _ := SpecHash(&Table2Spec{EngineSpec: dSpelled.SpecEngine()})
	if hFlagAlias != hFlagSpelled {
		t.Errorf("driver-built specs hash differently: %s vs %s", hFlagAlias, hFlagSpelled)
	}
}

// TestDecodeSpecStrictness: unknown kinds, unknown fields and wrong api
// versions are rejected, not silently dropped.
func TestDecodeSpecStrictness(t *testing.T) {
	cases := []struct{ name, doc, wantErr string }{
		{"unknown kind", `{"api":"repro/spec/v1","kind":"tablex"}`, "unknown experiment kind"},
		{"unknown spec field", `{"api":"repro/spec/v1","kind":"table2","spec":{"particels":100}}`, "unknown field"},
		{"unknown envelope field", `{"api":"repro/spec/v1","kind":"table2","extra":1}`, "unknown field"},
		{"wrong api", `{"api":"repro/spec/v2","kind":"table2"}`, `spec api "repro/spec/v2"`},
		{"not json", `nope`, "bad spec envelope"},
	}
	for _, c := range cases {
		_, err := DecodeSpec([]byte(c.doc))
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.wantErr)
		}
	}
}

// TestSpecValidation exercises per-kind validation through RunSpec's
// canonicalize-then-validate path.
func TestSpecValidation(t *testing.T) {
	bad := []ExperimentSpec{
		&Table2Spec{Particles: -1},
		&Table2Spec{CPUCounts: []int{0}},
		&Table2Spec{EngineSpec: EngineSpec{Engine: "warp"}},
		&Table3Spec{Class: "Z"},
		&NASSweepSpec{Ranks: []int{-2}},
		&NASKernelsSpec{Kernel: "XX"},
		&NBodySpec{N: -5},
		&NBodySpec{EngineSpec: EngineSpec{ErrorBudget: -1}},
		&TCOSpec{Nodes: -1},
		&Figure3Spec{Width: -1},
	}
	for _, s := range bad {
		if _, err := RunSpec(NewRun(), s); err == nil {
			t.Errorf("%T %+v: RunSpec accepted an invalid spec", s, s)
		}
	}
}

// TestRunSpecDeterministicText: the tco experiment — pure arithmetic —
// must produce byte-identical text and data on every run. This is the
// property the gateway's cache banks on.
func TestRunSpecDeterministicText(t *testing.T) {
	spec := &TCOSpec{Nodes: 48, Blade: true}
	r1, err := RunSpec(NewRun(), spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunSpec(NewRun(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r2.Text {
		t.Errorf("tco text differs between runs:\n%q\n%q", r1.Text, r2.Text)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Errorf("tco result JSON differs between runs")
	}
	if r1.Text == "" || !strings.Contains(r1.Text, "Cluster: 48 nodes") {
		t.Errorf("unexpected tco text: %q", r1.Text)
	}
}

// TestRunSpecDoesNotMutateCaller: RunSpec runs a canonical clone; the
// caller's spec keeps its sparse form.
func TestRunSpecDoesNotMutateCaller(t *testing.T) {
	spec := &TCOSpec{}
	if _, err := RunSpec(NewRun(), spec); err != nil {
		t.Fatal(err)
	}
	if spec.Nodes != 0 || spec.Watts != 0 {
		t.Errorf("RunSpec mutated the caller's spec: %+v", spec)
	}
}
