package core

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/designopt"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/tco"
	"repro/internal/treecode"
)

// The concrete experiment kinds. Each spec's Run produces the exact
// text its CLI driver used to print, so the drivers are thin parse
// layers and the gateway serves the same experiments over HTTP.

func init() {
	RegisterSpec("table1", func() ExperimentSpec { return &Table1Spec{} })
	RegisterSpec("table2", func() ExperimentSpec { return &Table2Spec{} })
	RegisterSpec("table3", func() ExperimentSpec { return &Table3Spec{} })
	RegisterSpec("table4", func() ExperimentSpec { return &Table4Spec{} })
	RegisterSpec("table5", func() ExperimentSpec { return &Table5Spec{} })
	RegisterSpec("topper", func() ExperimentSpec { return &ToPPeRSpec{} })
	RegisterSpec("spacepower", func() ExperimentSpec { return &SpacePowerSpec{} })
	RegisterSpec("figure3", func() ExperimentSpec { return &Figure3Spec{} })
	RegisterSpec("nassweep", func() ExperimentSpec { return &NASSweepSpec{} })
	RegisterSpec("naskernels", func() ExperimentSpec { return &NASKernelsSpec{} })
	RegisterSpec("nbody", func() ExperimentSpec { return &NBodySpec{} })
	RegisterSpec("tco", func() ExperimentSpec { return &TCOSpec{} })
	RegisterSpec("topperopt", func() ExperimentSpec { return &TopperOptSpec{} })
}

// EngineSpec is the force-engine selection shared by the treecode
// experiments, in flag spelling. The zero value means "auto" at the
// default error budget. GroupWalk is the deprecated PR 5 alias for
// Engine "group": Normalize folds it into the engine field, so the
// alias and the spelled-out form canonicalize — and hash — identically.
type EngineSpec struct {
	Engine      string  `json:"engine,omitempty"`
	ErrorBudget float64 `json:"error_budget,omitempty"`
	GroupWalk   bool    `json:"groupwalk,omitempty"`
	// TreeReuse selects incremental tree maintenance across steps
	// ("auto", "on", "off"; see treecode.TreeCache). Normalize folds
	// the default "auto" to the empty string — like FabricModeSpec's
	// "star" — so specs that omit the field keep their historical
	// hashes.
	TreeReuse string `json:"tree_reuse,omitempty"`
}

func (e *EngineSpec) normalize() {
	if e.Engine == "" {
		e.Engine = "auto"
	}
	if e.GroupWalk {
		if e.Engine == "auto" {
			e.Engine = "group"
		}
		e.GroupWalk = false
	}
	if e.ErrorBudget == 0 {
		e.ErrorBudget = treecode.DefaultErrorBudget
	}
	e.TreeReuse = strings.ToLower(e.TreeReuse)
	if e.TreeReuse == "auto" {
		e.TreeReuse = ""
	}
}

func (e *EngineSpec) validate() error {
	if _, err := treecode.ParseEngine(e.Engine); err != nil {
		return err
	}
	if e.ErrorBudget < 0 {
		return fmt.Errorf("negative error_budget %g", e.ErrorBudget)
	}
	if _, err := treecode.ParseReuseMode(e.TreeReuse); err != nil {
		return err
	}
	return nil
}

// resolveReuse returns the concrete reuse mode the spec selects.
func (e *EngineSpec) resolveReuse() treecode.ReuseMode {
	m, err := treecode.ParseReuseMode(e.TreeReuse)
	if err != nil {
		return treecode.ReuseAuto
	}
	return m
}

// resolve returns the concrete engine the spec selects, mirroring the
// Driver's flag resolution.
func (e *EngineSpec) resolve() treecode.Engine {
	eng, err := treecode.ParseEngine(e.Engine)
	if err != nil {
		eng = treecode.EngineAuto
	}
	if eng == treecode.EngineAuto && e.GroupWalk {
		eng = treecode.EngineGroup
	}
	return treecode.ResolveEngine(eng, e.ErrorBudget)
}

// --- table1 ---

// Table1Spec runs the gravitational-microkernel processor comparison.
// It has no parameters: the paper's five evaluation CPUs are fixed.
type Table1Spec struct{}

func (*Table1Spec) Kind() string    { return "table1" }
func (*Table1Spec) Normalize()      {}
func (*Table1Spec) Validate() error { return nil }

func (*Table1Spec) Run(r *Run) (*SpecResult, error) {
	rows, t, err := r.Table1()
	if err != nil {
		return nil, err
	}
	return &SpecResult{Kind: "table1", Text: fmt.Sprintf("%s\n", t), Data: rows}, nil
}

// FabricModeSpec is the interconnect-topology and rank-scheduler
// selection shared by the parallel experiment kinds, in flag spelling.
// The zero value keeps the paper's star switch and the automatic
// scheduler choice (event-driven at or above EventAutoThreshold
// ranks); Normalize folds the explicit defaults ("star", "auto") into
// the zero value so both spellings hash identically, and specs that
// omit the fields keep their historical hashes.
type FabricModeSpec struct {
	Fabric string `json:"fabric,omitempty"`
	Mode   string `json:"mpi_mode,omitempty"`
}

func (f *FabricModeSpec) normalize() {
	f.Fabric = strings.ToLower(f.Fabric)
	if f.Fabric == "star" {
		f.Fabric = ""
	}
	f.Mode = strings.ToLower(f.Mode)
	if f.Mode == "auto" {
		f.Mode = ""
	}
}

func (f *FabricModeSpec) validate() error {
	if err := netsim.ApplyTopology(netsim.FastEthernet(), f.Fabric, 4); err != nil {
		return err
	}
	if _, err := ResolveMPIMode(f.Mode, 1); err != nil {
		return err
	}
	return nil
}

// --- table2 ---

// Table2Spec runs the MetaBlade N-body scalability sweep.
type Table2Spec struct {
	Particles  int     `json:"particles,omitempty"`
	CPUCounts  []int   `json:"cpu_counts,omitempty"`
	Theta      float64 `json:"theta,omitempty"`
	Concurrent bool    `json:"concurrent,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	EngineSpec
	FabricModeSpec
}

func (*Table2Spec) Kind() string { return "table2" }

func (s *Table2Spec) Normalize() {
	def := DefaultTable2Config()
	if s.Particles == 0 {
		s.Particles = def.Particles
	}
	if len(s.CPUCounts) == 0 {
		s.CPUCounts = def.CPUCounts
	}
	if s.Theta == 0 {
		s.Theta = def.Theta
	}
	s.EngineSpec.normalize()
	s.FabricModeSpec.normalize()
}

func (s *Table2Spec) Validate() error {
	if s.Particles <= 0 {
		return fmt.Errorf("particles %d", s.Particles)
	}
	for _, p := range s.CPUCounts {
		if p <= 0 {
			return fmt.Errorf("cpu count %d", p)
		}
	}
	if s.Theta <= 0 {
		return fmt.Errorf("theta %g", s.Theta)
	}
	if s.Workers < 0 {
		return fmt.Errorf("workers %d", s.Workers)
	}
	if err := s.FabricModeSpec.validate(); err != nil {
		return err
	}
	return s.EngineSpec.validate()
}

func (s *Table2Spec) Run(r *Run) (*SpecResult, error) {
	cfg := Table2Config{
		Particles:  s.Particles,
		CPUCounts:  s.CPUCounts,
		Theta:      s.Theta,
		Concurrent: s.Concurrent,
		Workers:    s.Workers,
		Engine:     s.resolve(),
		Fabric:     s.Fabric,
		Mode:       s.Mode,
	}
	rows, t, err := r.Table2(cfg)
	if err != nil {
		return nil, err
	}
	return &SpecResult{Kind: "table2", Text: fmt.Sprintf("%s\n", t), Data: rows}, nil
}

// --- table3 ---

// Table3Spec runs the NPB kernel × processor rating grid.
type Table3Spec struct {
	Class string `json:"class,omitempty"`
}

func (*Table3Spec) Kind() string { return "table3" }

func (s *Table3Spec) Normalize() {
	if s.Class == "" {
		s.Class = "W"
	}
	s.Class = strings.ToUpper(s.Class)
}

func (s *Table3Spec) Validate() error { return validateClass(s.Class) }

func (s *Table3Spec) Run(r *Run) (*SpecResult, error) {
	data, t, err := r.Table3(nas.Class(s.Class[0]))
	if err != nil {
		return nil, err
	}
	return &SpecResult{Kind: "table3", Text: fmt.Sprintf("%s\n", t), Data: data}, nil
}

func validateClass(class string) error {
	switch class {
	case "S", "W", "A":
		return nil
	}
	return fmt.Errorf("class %q (want S, W or A)", class)
}

// --- table4 ---

// Table4Spec rates the historical treecode machines.
type Table4Spec struct{}

func (*Table4Spec) Kind() string    { return "table4" }
func (*Table4Spec) Normalize()      {}
func (*Table4Spec) Validate() error { return nil }

func (*Table4Spec) Run(r *Run) (*SpecResult, error) {
	rows, t, err := r.Table4()
	if err != nil {
		return nil, err
	}
	return &SpecResult{Kind: "table4", Text: fmt.Sprintf("%s\n", t), Data: rows}, nil
}

// --- table5 ---

// Table5Spec computes the four-year cost-of-ownership table.
type Table5Spec struct{}

func (*Table5Spec) Kind() string    { return "table5" }
func (*Table5Spec) Normalize()      {}
func (*Table5Spec) Validate() error { return nil }

func (*Table5Spec) Run(r *Run) (*SpecResult, error) {
	rows, t, err := r.Table5()
	if err != nil {
		return nil, err
	}
	return &SpecResult{Kind: "table5", Text: fmt.Sprintf("%s\n", t), Data: rows}, nil
}

// --- topper ---

// ToPPeRSpec computes the §4.1 ToPPeR versus price/performance
// comparison of the blade against a comparably clocked traditional
// Beowulf.
type ToPPeRSpec struct{}

func (*ToPPeRSpec) Kind() string    { return "topper" }
func (*ToPPeRSpec) Normalize()      {}
func (*ToPPeRSpec) Validate() error { return nil }

func (*ToPPeRSpec) Run(r *Run) (*SpecResult, error) {
	s, err := r.ToPPeR()
	if err != nil {
		return nil, err
	}
	text := fmt.Sprintf("ToPPeR (TCO $/Mflops): traditional %.2f vs blade %.2f — advantage %.2fx\n",
		s.TradToPPeR, s.BladeToPPeR, s.ToPPeRAdvantage) +
		fmt.Sprintf("Acquisition price/perf: traditional %.2f vs blade %.2f (blade costs %.2fx more per Mflops to acquire)\n\n",
			s.TradPricePerf, s.BladePricePerf, s.PricePerfRatio)
	return &SpecResult{Kind: "topper", Text: text, Data: s}, nil
}

// --- spacepower ---

// SpacePowerSpec builds the performance/space and performance/power
// comparisons (Tables 6 and 7). With neither toggle set, both render.
type SpacePowerSpec struct {
	Table6 bool `json:"table6,omitempty"`
	Table7 bool `json:"table7,omitempty"`
}

func (*SpacePowerSpec) Kind() string { return "spacepower" }

func (s *SpacePowerSpec) Normalize() {
	if !s.Table6 && !s.Table7 {
		s.Table6, s.Table7 = true, true
	}
}

func (*SpacePowerSpec) Validate() error { return nil }

func (s *SpacePowerSpec) Run(r *Run) (*SpecResult, error) {
	rows, t6, t7, err := r.SpacePower()
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	if s.Table6 {
		fmt.Fprintf(&b, "%s\n", t6)
	}
	if s.Table7 {
		fmt.Fprintf(&b, "%s\n", t7)
	}
	return &SpecResult{Kind: "spacepower", Text: b.String(), Data: rows}, nil
}

// --- figure3 ---

// Figure3Spec runs the self-gravitating collapse and renders the
// projected density as ASCII art.
type Figure3Spec struct {
	Particles int `json:"particles,omitempty"`
	Steps     int `json:"steps,omitempty"`
	Width     int `json:"width,omitempty"`
	Height    int `json:"height,omitempty"`
	EngineSpec
}

func (*Figure3Spec) Kind() string { return "figure3" }

func (s *Figure3Spec) Normalize() {
	def := DefaultFigure3Config()
	if s.Particles == 0 {
		s.Particles = def.Particles
	}
	if s.Steps == 0 {
		s.Steps = def.Steps
	}
	if s.Width == 0 {
		s.Width = def.Width
	}
	if s.Height == 0 {
		s.Height = def.Height
	}
	s.EngineSpec.normalize()
}

func (s *Figure3Spec) Validate() error {
	if s.Particles <= 0 || s.Width <= 0 || s.Height <= 0 {
		return fmt.Errorf("particles %d, width %d, height %d", s.Particles, s.Width, s.Height)
	}
	if s.Steps < 0 {
		return fmt.Errorf("steps %d", s.Steps)
	}
	return s.EngineSpec.validate()
}

// Figure3Data is the structured result of a figure3 run.
type Figure3Data struct {
	Particles    int    `json:"particles"`
	Steps        int    `json:"steps"`
	Interactions uint64 `json:"interactions"`
}

func (s *Figure3Spec) Run(r *Run) (*SpecResult, error) {
	cfg := Figure3Config{
		Particles: s.Particles,
		Steps:     s.Steps,
		Width:     s.Width,
		Height:    s.Height,
		Engine:    s.resolve(),
	}
	img, sys, err := r.Figure3(cfg)
	if err != nil {
		return nil, err
	}
	text := fmt.Sprintf("Figure 3: projected density after %d steps of a %d-particle collapse (%d interactions computed)\n",
		cfg.Steps, cfg.Particles, sys.Interactions) +
		fmt.Sprintf("%s\n", img.ASCII())
	return &SpecResult{
		Kind:  "figure3",
		Text:  text,
		Data:  Figure3Data{Particles: cfg.Particles, Steps: cfg.Steps, Interactions: sys.Interactions},
		Extra: sys,
	}, nil
}

// --- nassweep ---

// NASSweepSpec runs the parallel NAS EP/IS rank sweep on the simulated
// cluster.
type NASSweepSpec struct {
	Class      string `json:"class,omitempty"`
	Ranks      []int  `json:"ranks,omitempty"`
	Concurrent bool   `json:"concurrent,omitempty"`
	Workers    int    `json:"workers,omitempty"`
	Native     bool   `json:"native,omitempty"`
	Contention bool   `json:"contention,omitempty"`
	EPOnly     bool   `json:"ep_only,omitempty"`
	FabricModeSpec
}

func (*NASSweepSpec) Kind() string { return "nassweep" }

func (s *NASSweepSpec) Normalize() {
	if s.Class == "" {
		s.Class = "S"
	}
	s.Class = strings.ToUpper(s.Class)
	if len(s.Ranks) == 0 {
		s.Ranks = DefaultNASSweepConfig().Ranks
	}
	s.FabricModeSpec.normalize()
}

func (s *NASSweepSpec) Validate() error {
	if err := validateClass(s.Class); err != nil {
		return err
	}
	for _, p := range s.Ranks {
		if p <= 0 {
			return fmt.Errorf("rank count %d", p)
		}
	}
	if s.Workers < 0 {
		return fmt.Errorf("workers %d", s.Workers)
	}
	return s.FabricModeSpec.validate()
}

func (s *NASSweepSpec) Run(r *Run) (*SpecResult, error) {
	cfg := NASSweepConfig{
		Class:      nas.Class(s.Class[0]),
		Ranks:      s.Ranks,
		Concurrent: s.Concurrent,
		Workers:    s.Workers,
		Native:     s.Native,
		Contention: s.Contention,
		Fabric:     s.Fabric,
		Mode:       s.Mode,
		EPOnly:     s.EPOnly,
	}
	rows, t, err := r.NASSweep(cfg)
	if err != nil {
		return nil, err
	}
	return &SpecResult{Kind: "nassweep", Text: fmt.Sprintf("%s\n", t), Data: rows}, nil
}

// --- naskernels ---

// NASKernelsSpec runs the NPB kernels, verifies them, and (by default)
// rates them on the Table 3 processors. Rate is a pointer so an
// omitted field means the flag default, true. Ranks > 0 switches to
// the distributed kernels (EP and IS) on a simulated world of that
// size, with the fabric topology and rank scheduler from
// FabricModeSpec; rows then carry the simulated makespan.
type NASKernelsSpec struct {
	Class  string `json:"class,omitempty"`
	Kernel string `json:"kernel,omitempty"`
	Rate   *bool  `json:"rate,omitempty"`
	Ranks  int    `json:"ranks,omitempty"`
	FabricModeSpec
}

func (*NASKernelsSpec) Kind() string { return "naskernels" }

func (s *NASKernelsSpec) Normalize() {
	if s.Class == "" {
		s.Class = "S"
	}
	s.Class = strings.ToUpper(s.Class)
	s.Kernel = strings.ToUpper(s.Kernel)
	if s.Rate == nil {
		t := true
		s.Rate = &t
	}
	s.FabricModeSpec.normalize()
}

func (s *NASKernelsSpec) Validate() error {
	if err := validateClass(s.Class); err != nil {
		return err
	}
	if s.Kernel != "" {
		found := false
		for _, k := range nas.AllKernels() {
			if strings.EqualFold(k.Name(), s.Kernel) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown kernel %q", s.Kernel)
		}
	}
	if s.Ranks < 0 {
		return fmt.Errorf("ranks %d", s.Ranks)
	}
	if s.Ranks > 0 && s.Kernel != "" && s.Kernel != "EP" && s.Kernel != "IS" {
		return fmt.Errorf("kernel %q has no distributed implementation (want EP or IS)", s.Kernel)
	}
	return s.FabricModeSpec.validate()
}

// NASKernelRow is one kernel's verification and rating result. Ranks
// and SimSec are set only by distributed (Ranks > 0) runs.
type NASKernelRow struct {
	Kernel   string    `json:"kernel"`
	Class    string    `json:"class"`
	Verified bool      `json:"verified"`
	Checksum float64   `json:"checksum"`
	WallSec  float64   `json:"wall_sec"`
	Mops     []float64 `json:"mops,omitempty"`
	Ranks    int       `json:"ranks,omitempty"`
	SimSec   float64   `json:"sim_sec,omitempty"`
}

// runParallel is the Ranks > 0 arm of NASKernelsSpec.Run: the
// distributed EP/IS kernels on one simulated world per kernel.
func (s *NASKernelsSpec) runParallel(r *Run) (*SpecResult, error) {
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateClassW)
	if err != nil {
		return nil, err
	}
	p := s.Ranks
	event, err := ResolveMPIMode(s.Mode, p)
	if err != nil {
		return nil, err
	}
	mk := func() (*mpi.World, error) {
		f := netsim.FastEthernet()
		if err := netsim.ApplyTopology(f, s.Fabric, p); err != nil {
			return nil, err
		}
		w, err := mpi.NewWorldWithConfig(p, mpi.Config{
			Fabric:       f,
			ChannelDepth: sweepChannelDepth,
			Event:        event,
		})
		if err != nil {
			return nil, err
		}
		w.Tracer = r.Tracer
		return w, nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-4s %-6s %-9s %-14s %-8s %-14s %-12s\n",
		"Code", "Class", "Verified", "Checksum", "Ranks", "Sim (s)", "Wall")
	var rows []NASKernelRow
	runK := func(name string, run func(w *mpi.World) (*nas.ParallelResult, error)) error {
		if s.Kernel != "" && !strings.EqualFold(name, s.Kernel) {
			return nil
		}
		w, err := mk()
		if err != nil {
			return err
		}
		sp := r.Tracer.Begin(obs.PidHost, 0, "nasbench", fmt.Sprintf("%s.p%d", name, p))
		t0 := time.Now()
		res, err := run(w)
		if err != nil {
			return err
		}
		wall := time.Since(t0)
		sp.End(map[string]any{"ranks": p, "verified": res.Verified})
		r.gather(w)
		kname := obs.SanitizeName(name)
		r.Snap.SetGauge("nasbench."+kname+".sim", "s", "simulated parallel makespan", res.SimTime)
		if res.Verified {
			r.Snap.AddCounter("nasbench.verified", "", "kernels passing verification", 1)
		}
		fmt.Fprintf(&b, "%-4s %-6s %-9v %-14.6g %-8d %-14.6g %-12v\n",
			res.Kernel, res.Class, res.Verified, res.Checksum, p, res.SimTime,
			wall.Round(time.Millisecond))
		rows = append(rows, NASKernelRow{
			Kernel:   res.Kernel,
			Class:    string(res.Class),
			Verified: res.Verified,
			Checksum: res.Checksum,
			WallSec:  wall.Seconds(),
			Ranks:    p,
			SimSec:   res.SimTime,
		})
		return nil
	}
	if err := runK("EP", func(w *mpi.World) (*nas.ParallelResult, error) {
		return nas.ParallelEP(w, nas.Class(s.Class[0]), costs)
	}); err != nil {
		return nil, err
	}
	if err := runK("IS", func(w *mpi.World) (*nas.ParallelResult, error) {
		return nas.ParallelIS(w, nas.Class(s.Class[0]), costs)
	}); err != nil {
		return nil, err
	}
	return &SpecResult{Kind: "naskernels", Text: b.String(), Data: rows}, nil
}

func (s *NASKernelsSpec) Run(r *Run) (*SpecResult, error) {
	if s.Ranks > 0 {
		return s.runParallel(r)
	}
	snap := r.Snap
	var costs []cpu.EffCosts
	var procs []cpu.Processor
	if *s.Rate {
		procs = cpu.NASCPUs()
		for _, p := range procs {
			// CalibrateFor is memoized process-wide, so re-rating more
			// kernels (or tables) shares one calibration per processor.
			e, err := cpu.CalibrateFor(p, cpu.MissRateClassW)
			if err != nil {
				return nil, err
			}
			costs = append(costs, e)
		}
	}
	var b strings.Builder
	header := fmt.Sprintf("%-4s %-6s %-9s %-14s %-12s", "Code", "Class", "Verified", "Checksum", "Wall")
	for _, p := range procs {
		header += fmt.Sprintf(" %18s", nasShortName(p.Name()))
	}
	fmt.Fprintf(&b, "%s\n", header)
	var rows []NASKernelRow
	for _, k := range nas.AllKernels() {
		if s.Kernel != "" && !strings.EqualFold(k.Name(), s.Kernel) {
			continue
		}
		sp := r.Tracer.Begin(obs.PidHost, 0, "nasbench", k.Name())
		t0 := time.Now()
		kr, err := k.Run(nas.Class(s.Class[0]))
		if err != nil {
			return nil, err
		}
		wall := time.Since(t0)
		sp.End(map[string]any{"ops": kr.Ops, "verified": kr.Verified})
		kname := obs.SanitizeName(k.Name())
		snap.AddCounter("nasbench."+kname+".ops", "ops", "abstract operations executed", uint64(kr.Ops))
		snap.AddTimer("nasbench."+kname+".wall", "host wall time running the kernel", wall.Seconds())
		if kr.Verified {
			snap.AddCounter("nasbench.verified", "", "kernels passing verification", 1)
		}
		line := fmt.Sprintf("%-4s %-6s %-9v %-14.6g %-12v",
			kr.Kernel, kr.Class, kr.Verified, kr.Checksum, wall.Round(time.Millisecond))
		row := NASKernelRow{
			Kernel:   kr.Kernel,
			Class:    string(kr.Class),
			Verified: kr.Verified,
			Checksum: kr.Checksum,
			WallSec:  wall.Seconds(),
		}
		for i, p := range procs {
			m := costs[i].Mops(kr.Ops, &kr.Mix)
			line += fmt.Sprintf(" %15.1f Mops", m)
			row.Mops = append(row.Mops, m)
			snap.SetGauge("nasbench."+kname+"."+obs.SanitizeName(p.Name())+".mops", "Mops",
				"kernel rating, class "+s.Class, m)
		}
		fmt.Fprintf(&b, "%s\n", line)
		rows = append(rows, row)
	}
	return &SpecResult{Kind: "naskernels", Text: b.String(), Data: rows}, nil
}

// nasShortName trims a processor name for the naskernels table header.
func nasShortName(s string) string {
	fields := strings.Fields(s)
	if len(fields) > 2 {
		return strings.Join(fields[1:], " ")
	}
	return s
}

// --- nbody ---

// NBodySpec runs a gravitational N-body scenario: serial or on the
// simulated Bladed Beowulf, direct or tree-accelerated, uniform
// leapfrog or hierarchical block timesteps.
type NBodySpec struct {
	N          int     `json:"n,omitempty"`
	Steps      int     `json:"steps,omitempty"`
	DT         float64 `json:"dt,omitempty"`
	Theta      float64 `json:"theta,omitempty"`
	Direct     bool    `json:"direct,omitempty"`
	Quadrupole bool    `json:"quadrupole,omitempty"`
	Ranks      int     `json:"ranks,omitempty"`
	Rungs      int     `json:"rungs,omitempty"`
	Eta        float64 `json:"eta,omitempty"`
	// IC names the initial-condition preset: "plummer" (default),
	// "colddisk" or "twocluster". Normalize folds the default spelling
	// to the empty string so historical spec hashes are unchanged.
	IC string `json:"ic,omitempty"`
	EngineSpec
}

func (*NBodySpec) Kind() string { return "nbody" }

func (s *NBodySpec) Normalize() {
	if s.N == 0 {
		s.N = 20000
	}
	if s.Steps == 0 {
		s.Steps = 10
	}
	if s.DT == 0 {
		s.DT = 0.005
	}
	if s.Theta == 0 {
		s.Theta = 0.7
	}
	s.IC = strings.ToLower(s.IC)
	if s.IC == "plummer" {
		s.IC = ""
	}
	s.EngineSpec.normalize()
}

// nbodyIC maps a normalized preset name to its generator (the empty
// string is the historical Plummer default, seed 2001).
func nbodyIC(name string) (func(n int, seed uint64) *nbody.System, error) {
	switch name {
	case "", "plummer":
		return func(n int, seed uint64) *nbody.System { return nbody.NewPlummer(n, 1, seed) }, nil
	case "colddisk":
		return nbody.NewColdDisk, nil
	case "twocluster":
		return nbody.NewTwoCluster, nil
	}
	return nil, fmt.Errorf("unknown ic %q (want plummer, colddisk or twocluster)", name)
}

func (s *NBodySpec) Validate() error {
	if s.N <= 0 {
		return fmt.Errorf("n %d", s.N)
	}
	if _, err := nbodyIC(s.IC); err != nil {
		return err
	}
	if s.Steps < 0 {
		return fmt.Errorf("steps %d", s.Steps)
	}
	if s.DT <= 0 {
		return fmt.Errorf("dt %g", s.DT)
	}
	if s.Theta <= 0 {
		return fmt.Errorf("theta %g", s.Theta)
	}
	if s.Ranks < 0 || s.Rungs < 0 {
		return fmt.Errorf("ranks %d, rungs %d", s.Ranks, s.Rungs)
	}
	if s.Eta < 0 {
		return fmt.Errorf("eta %g", s.Eta)
	}
	return s.EngineSpec.validate()
}

// NBodyData is the structured result of an nbody run.
type NBodyData struct {
	Particles    int     `json:"particles"`
	Steps        int     `json:"steps"`
	Interactions uint64  `json:"interactions"`
	Flops        uint64  `json:"flops"`
	SimTimeSec   float64 `json:"sim_time_sec,omitempty"`
	EnergyDrift  float64 `json:"energy_drift,omitempty"`
}

func (s *NBodySpec) Run(r *Run) (*SpecResult, error) {
	snap := r.Snap
	var b strings.Builder
	mkIC, err := nbodyIC(s.IC)
	if err != nil {
		return nil, err
	}
	sys := mkIC(s.N, 2001)
	if s.IC != "" {
		fmt.Fprintf(&b, "initial conditions: %s\n", s.IC)
	}
	k0, p0 := 0.0, 0.0
	if s.N <= 20000 {
		k0, p0 = sys.Energy()
	}

	engine := s.resolve()
	var forcer nbody.Forcer
	switch {
	case s.Direct:
		forcer = nbody.DirectForcer{}
	case s.Ranks > 0:
		costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateTree)
		if err != nil {
			return nil, err
		}
		cm := treecode.CostModel{
			SecondsPerInteraction: costs.Seconds(treecode.InteractionMix()),
			SecondsPerBuildSource: costs.Seconds(treecode.BuildMix()),
		}
		forcer = &nbodyParallelForcer{ranks: s.Ranks, run: r, cfg: treecode.ParallelConfig{
			Theta: s.Theta, Quadrupole: s.Quadrupole, Eps: sys.Eps, Cost: cm,
			Engine: engine,
		}}
	default:
		forcer = &treecode.Forcer{Theta: s.Theta, Quadrupole: s.Quadrupole, Tracer: r.Tracer,
			Engine: engine, Reuse: s.resolveReuse()}
	}

	data := NBodyData{Particles: s.N, Steps: s.Steps}
	var stepper nbody.BlockStepper
	if s.Rungs > 0 {
		err := stepper.Run(sys, forcer, nbody.BlockConfig{DT: s.DT, MaxRung: s.Rungs, Eta: s.Eta}, s.Steps)
		if err != nil {
			return nil, err
		}
		st := stepper.Stats
		fmt.Fprintf(&b, "block timesteps: %d substeps, %d force updates (%d saved vs uniform), max rung %d, histogram %v\n",
			st.Substeps, st.Updates, st.Saved, st.MaxRungUsed, stepper.Histogram())
		snap.SetGauge("nbodysim.rung.max_used", "", "highest block-timestep rung occupied", float64(st.MaxRungUsed))
		snap.SetGauge("nbodysim.rung.updates", "", "per-particle force updates performed", float64(st.Updates))
		snap.SetGauge("nbodysim.rung.saved", "", "force updates avoided vs uniform finest-dt stepping", float64(st.Saved))
	} else {
		if err := sys.Leapfrog(forcer, s.DT, s.Steps); err != nil {
			return nil, err
		}
	}
	fmt.Fprintf(&b, "%d particles, %d steps: %d interactions, %.3g flops (treecode convention)\n",
		s.N, s.Steps, sys.Interactions, float64(sys.Flops()))
	data.Interactions = sys.Interactions
	data.Flops = sys.Flops()
	snap.SetGauge("nbodysim.particles", "", "particle count", float64(s.N))
	snap.SetGauge("nbodysim.steps", "", "leapfrog steps", float64(s.Steps))
	switch f := forcer.(type) {
	case *treecode.Forcer:
		snap.Gather(f)
	case *nbodyParallelForcer:
		fmt.Fprintf(&b, "simulated MetaBlade time: %.3f s over %d blades → %.2f Gflops sustained\n",
			f.simTime, s.Ranks, float64(sys.Flops())/f.simTime/1e9)
		snap.SetGauge("nbodysim.sim_time", "s", "accumulated simulated cluster time", f.simTime)
		data.SimTimeSec = f.simTime
	}
	if k0 != 0 || p0 != 0 {
		k1, p1 := sys.Energy()
		drift := math.Abs((k1 + p1 - k0 - p0) / (k0 + p0))
		fmt.Fprintf(&b, "energy drift: |ΔE/E| = %.2e\n", drift)
		snap.SetGauge("nbodysim.energy_drift", "", "relative energy drift over the run", drift)
		data.EnergyDrift = drift
	}
	return &SpecResult{Kind: "nbody", Text: b.String(), Data: data, Extra: sys}, nil
}

// nbodyParallelForcer adapts treecode.ParallelForces to nbody.Forcer,
// accumulating simulated cluster time across steps and gathering each
// step's world and result into the run's snapshot.
type nbodyParallelForcer struct {
	ranks   int
	cfg     treecode.ParallelConfig
	run     *Run
	simTime float64
	step    int
}

func (p *nbodyParallelForcer) Forces(s *nbody.System) error {
	w, err := mpi.NewWorld(p.ranks, netsim.FastEthernet())
	if err != nil {
		return err
	}
	w.Tracer = p.run.Tracer
	sp := p.run.Tracer.Begin(obs.PidHost, 0, "nbodysim", fmt.Sprintf("step%d", p.step))
	res, err := treecode.ParallelForces(w, s, p.cfg)
	if err != nil {
		return err
	}
	sp.End(map[string]any{"sim_time": res.SimTime})
	p.run.Snap.Gather(w, res)
	p.simTime += res.SimTime
	p.step++
	return nil
}

// --- tco ---

// TCOSpec evaluates the paper's cost model — TCO and ToPPeR — for a
// user-described cluster. Zero numeric fields take the toppercalc flag
// defaults, which is fine for quantities that must be positive to mean
// anything; Ambient and KWh are pointers (like NASKernelsSpec.Rate)
// because an explicit zero is physically meaningful there — a 0°C
// machine room, free electricity — so omitted means the default and
// zero means zero.
type TCOSpec struct {
	Nodes       int      `json:"nodes,omitempty"`
	Watts       float64  `json:"watts,omitempty"`
	Acquisition float64  `json:"acquisition,omitempty"`
	Gflops      float64  `json:"gflops,omitempty"`
	Blade       bool     `json:"blade,omitempty"`
	Ambient     *float64 `json:"ambient,omitempty"`
	Years       float64  `json:"years,omitempty"`
	KWh         *float64 `json:"kwh,omitempty"`
	Space       float64  `json:"space,omitempty"`
	CPUHour     float64  `json:"cpu_hour,omitempty"`
}

func (*TCOSpec) Kind() string { return "tco" }

func (s *TCOSpec) Normalize() {
	if s.Nodes == 0 {
		s.Nodes = 24
	}
	if s.Watts == 0 {
		s.Watts = 85
	}
	if s.Acquisition == 0 {
		s.Acquisition = 17000
	}
	if s.Gflops == 0 {
		s.Gflops = 2.8
	}
	if s.Ambient == nil {
		v := 24.0
		s.Ambient = &v
	}
	if s.Years == 0 {
		s.Years = 4
	}
	if s.KWh == nil {
		v := 0.10
		s.KWh = &v
	}
	if s.Space == 0 {
		s.Space = 100
	}
	if s.CPUHour == 0 {
		s.CPUHour = 5
	}
}

func (s *TCOSpec) Validate() error {
	if s.Nodes <= 0 {
		return fmt.Errorf("nodes %d", s.Nodes)
	}
	for name, v := range map[string]float64{
		"watts": s.Watts, "acquisition": s.Acquisition, "gflops": s.Gflops,
		"years": s.Years, "space": s.Space, "cpu_hour": s.CPUHour,
	} {
		if v <= 0 {
			return fmt.Errorf("%s %g", name, v)
		}
	}
	if s.KWh != nil && *s.KWh < 0 {
		return fmt.Errorf("kwh %g", *s.KWh)
	}
	return nil
}

func (s *TCOSpec) Run(r *Run) (*SpecResult, error) {
	snap := r.Snap
	node := cluster.NodeSpec{
		Name:                  "custom node",
		CPUModel:              "custom",
		WattsLoad:             s.Watts,
		RequiresActiveCooling: !s.Blade,
	}
	pack := cluster.TraditionalPackaging()
	admin := tco.TraditionalAdmin()
	outages := tco.TraditionalOutages()
	if s.Blade {
		pack = cluster.BladePackaging()
		admin = tco.BladeAdmin()
		outages = tco.BladeOutages()
	}
	cl, err := cluster.New("custom", node, pack, s.Nodes, *s.Ambient)
	if err != nil {
		return nil, err
	}

	rates := tco.Rates{
		AdminPerHour:       100,
		ElectricityPerKWh:  *s.KWh,
		SpacePerSqFtYear:   s.Space,
		DowntimePerCPUHour: s.CPUHour,
		Years:              s.Years,
	}
	b, err := tco.Compute(tco.Config{
		Name:           "custom",
		AcquisitionUSD: s.Acquisition,
		Cluster:        cl,
		Admin:          admin,
		Outages:        outages,
	}, rates)
	if err != nil {
		return nil, err
	}

	rel := cluster.DefaultReliability()
	var text strings.Builder
	fmt.Fprintf(&text, "Cluster: %d nodes, %.1f kW compute + %.1f kW cooling, %.0f ft², %s\n",
		s.Nodes, cl.ComputePowerKW(), cl.CoolingPowerKW(), cl.FootprintSqFt(), pack.Name)
	fmt.Fprintf(&text, "Reliability model: %.1f expected failures/year, availability %.4f\n\n",
		cl.ExpectedFailuresPerYear(rel), cl.Availability(rel))

	// The cost breakdown lives in the snapshot; the text rendering is the
	// snapshot's own table over the topper.* prefix.
	snap.SetGauge("topper.cost.acquisition", "$", "acquisition cost", b.Acquisition)
	snap.SetGauge("topper.cost.sysadmin", "$", "system administration over the lifetime", b.SysAdmin)
	snap.SetGauge("topper.cost.power_cooling", "$", "power and cooling over the lifetime", b.PowerCooling)
	snap.SetGauge("topper.cost.space", "$", "floor space over the lifetime", b.Space)
	snap.SetGauge("topper.cost.downtime", "$", "downtime charges over the lifetime", b.Downtime)
	snap.SetGauge("topper.cost.tco", "$", "total cost of ownership", b.TCO())
	snap.SetGauge("topper.priceperf", "$/Mflops", "acquisition price/performance", tco.PricePerf(b.Acquisition, s.Gflops))
	snap.SetGauge("topper.topper", "$/Mflops", "total price-performance ratio", tco.ToPPeR(b.TCO(), s.Gflops))
	snap.SetGauge("topper.perf_space", "Mflop/ft2", "performance per floor space", tco.PerfPerSpace(s.Gflops, cl.FootprintSqFt()))
	snap.SetGauge("topper.perf_power", "Gflop/kW", "performance per kilowatt", tco.PerfPerPower(s.Gflops, cl.TotalPowerKW()))
	fmt.Fprintf(&text, "%s\n", snap.Table("Cost of ownership and density ("+cl.Name+")", "topper."))
	return &SpecResult{Kind: "tco", Text: text.String(), Data: b}, nil
}

// --- topperopt ---

// TopperOptSpec runs the ToPPeR design-space optimizer: a deterministic
// parallel sweep over CPU model × packaging × fabric/topology × node
// count × machine-room ambient, each candidate priced through the
// cluster → tco models with its parallel efficiency solved on the
// candidate fabric, emitting the Pareto frontier for ToPPeR, perf/watt
// and perf/space. Empty axes take the product defaults (the five
// Table 1 CPUs, both packagings, Fast and Gigabit Ethernet). Workers,
// NoMemo and NoPrune change only how fast the frontier is found, never
// its contents — the frontier is bit-identical at any worker count,
// which is what makes the spec safely cacheable by hash.
type TopperOptSpec struct {
	// CPUs, Packs and Fabrics are axis names resolved by the designopt
	// parsers: CPUs from Table 1 ("PIII", "Alpha", "TM5600", "Power3",
	// "Athlon"), Packs "traditional"/"blade", Fabrics base[-topology]
	// ("fe", "ge", "ge-fattree", ...).
	CPUs    []string `json:"cpus,omitempty"`
	Packs   []string `json:"packs,omitempty"`
	Fabrics []string `json:"fabrics,omitempty"`
	// Nodes and Ambients are the numeric axes.
	Nodes    []int     `json:"nodes,omitempty"`
	Ambients []float64 `json:"ambients,omitempty"`
	// Particles sizes the treecode workload the designs are scored on.
	Particles int `json:"particles,omitempty"`
	// Budget caps (0 = uncapped): total power, floor space, TCO.
	MaxPowerKW   float64 `json:"max_power_kw,omitempty"`
	MaxSpaceSqFt float64 `json:"max_space_sqft,omitempty"`
	MaxTCOUSD    float64 `json:"max_tco_usd,omitempty"`
	// Years and KWh adjust the paper cost rates; KWh is a pointer so an
	// explicit zero (free electricity) survives, like TCOSpec.KWh.
	Years float64  `json:"years,omitempty"`
	KWh   *float64 `json:"kwh,omitempty"`
	// Workers sizes the search pool (0 = process default); NoMemo and
	// NoPrune disable the two accelerations, for cross-checking.
	Workers int  `json:"workers,omitempty"`
	NoMemo  bool `json:"no_memo,omitempty"`
	NoPrune bool `json:"no_prune,omitempty"`
}

func (*TopperOptSpec) Kind() string { return "topperopt" }

func (s *TopperOptSpec) Normalize() {
	if len(s.CPUs) == 0 {
		for _, c := range designopt.DefaultCPUChoices() {
			s.CPUs = append(s.CPUs, c.Name)
		}
	}
	if len(s.Packs) == 0 {
		for _, p := range designopt.DefaultPackChoices() {
			s.Packs = append(s.Packs, p.Name)
		}
	}
	if len(s.Fabrics) == 0 {
		for _, f := range designopt.DefaultFabricChoices() {
			s.Fabrics = append(s.Fabrics, f.Name)
		}
	}
	d := designopt.DefaultGrid()
	if len(s.Nodes) == 0 {
		s.Nodes = d.Nodes
	}
	if len(s.Ambients) == 0 {
		s.Ambients = d.Ambients
	}
	if s.Particles == 0 {
		s.Particles = d.Workload.Particles
	}
	if s.Years == 0 {
		s.Years = 4
	}
	if s.KWh == nil {
		v := 0.10
		s.KWh = &v
	}
}

func (s *TopperOptSpec) Validate() error {
	if _, err := s.grid(); err != nil {
		return err
	}
	return nil
}

// grid resolves the spec's axis names into a designopt.Grid.
func (s *TopperOptSpec) grid() (*designopt.Grid, error) {
	g := &designopt.Grid{
		Nodes:    s.Nodes,
		Ambients: s.Ambients,
		Budget: designopt.Budget{
			MaxPowerKW:   s.MaxPowerKW,
			MaxSpaceSqFt: s.MaxSpaceSqFt,
			MaxTCOUSD:    s.MaxTCOUSD,
		},
		Workload: designopt.TreecodeWorkload(s.Particles),
		Rates:    tco.PaperRates(),
		Rel:      cluster.DefaultReliability(),
	}
	g.Rates.Years = s.Years
	if s.KWh != nil {
		g.Rates.ElectricityPerKWh = *s.KWh
	}
	for _, name := range s.CPUs {
		c, err := designopt.ParseCPU(name)
		if err != nil {
			return nil, err
		}
		g.CPUs = append(g.CPUs, c)
	}
	for _, name := range s.Packs {
		p, err := designopt.ParsePack(name)
		if err != nil {
			return nil, err
		}
		g.Packs = append(g.Packs, p)
	}
	for _, name := range s.Fabrics {
		f, err := designopt.ParseFabric(name)
		if err != nil {
			return nil, err
		}
		g.Fabrics = append(g.Fabrics, f)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// TopperOptResult is the structured payload of a topperopt run.
type TopperOptResult struct {
	Candidates int               `json:"candidates"`
	Evaluated  int               `json:"evaluated"`
	Pruned     int               `json:"pruned"`
	Feasible   int               `json:"feasible"`
	MemoHits   uint64            `json:"memo_hits"`
	MemoMisses uint64            `json:"memo_misses"`
	Frontier   []designopt.Point `json:"frontier"`
}

func (s *TopperOptSpec) Run(r *Run) (*SpecResult, error) {
	g, err := s.grid()
	if err != nil {
		return nil, err
	}
	res, err := designopt.Optimize(g, designopt.Options{
		Workers: s.Workers,
		NoMemo:  s.NoMemo,
		NoPrune: s.NoPrune,
	})
	if err != nil {
		return nil, err
	}

	snap := r.Snap
	snap.AddCounter("designopt.memo.hit", "lookups", "memoized network-solve cache hits", res.MemoHits)
	snap.AddCounter("designopt.memo.miss", "lookups", "network solves actually computed", res.MemoMisses)
	snap.AddCounter("designopt.pruned", "candidates", "candidates skipped by slab dominance bounds", uint64(res.Pruned))
	snap.AddCounter("designopt.evaluated", "candidates", "candidates scored by the evaluator", uint64(res.Evaluated))
	snap.SetGauge("designopt.frontier", "designs", "Pareto-frontier size", float64(len(res.Frontier)))

	var text strings.Builder
	fmt.Fprintf(&text, "Design space: %d candidates (%d cpus × %d packs × %d fabrics × %d node counts × %d ambients)\n",
		res.Candidates, len(g.CPUs), len(g.Packs), len(g.Fabrics), len(g.Nodes), len(g.Ambients))
	fmt.Fprintf(&text, "Workload: %s; rates: %.0f-year lifetime, $%.2f/kWh\n",
		g.Workload.Name, g.Rates.Years, g.Rates.ElectricityPerKWh)
	fmt.Fprintf(&text, "Evaluated %d, pruned %d (%d of %d slabs), %d feasible; memo %d hits / %d misses\n\n",
		res.Evaluated, res.Pruned, res.SlabsPruned, res.Slabs, res.Feasible, res.MemoHits, res.MemoMisses)
	fmt.Fprintf(&text, "Pareto frontier (%d designs; ToPPeR ↓, perf/watt ↑, perf/space ↑):\n", len(res.Frontier))
	fmt.Fprintf(&text, "%-8s %-12s %-12s %6s %6s %7s %9s %12s %10s %10s %11s\n",
		"CPU", "packaging", "fabric", "nodes", "amb°C", "eff", "Gflops", "TCO $", "$/Mflops", "Gflops/kW", "Mflops/ft²")
	for i := range res.Frontier {
		pt := &res.Frontier[i]
		fmt.Fprintf(&text, "%-8s %-12s %-12s %6d %6.0f %7.3f %9.2f %12.0f %10.2f %10.2f %11.1f\n",
			pt.CPU, pt.Pack, pt.Fabric, pt.Nodes, pt.AmbientC, pt.Eff, pt.Gflops,
			pt.Breakdown.TCO(), pt.ToPPeR, pt.PerfPerWatt, pt.PerfPerSpace)
	}

	return &SpecResult{
		Kind: "topperopt",
		Text: text.String(),
		Data: TopperOptResult{
			Candidates: res.Candidates,
			Evaluated:  res.Evaluated,
			Pruned:     res.Pruned,
			Feasible:   res.Feasible,
			MemoHits:   res.MemoHits,
			MemoMisses: res.MemoMisses,
			Frontier:   res.Frontier,
		},
	}, nil
}
