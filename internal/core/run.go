package core

import (
	"repro/internal/metrics"
	"repro/internal/nas"
	"repro/internal/nbody"
	"repro/internal/obs"
)

// Run is one instrumented experiment session: a Snapshot accumulating
// every table's metrics and an optional Tracer recording phase spans.
// The TableN methods record into both as they execute; a nil Tracer
// disables tracing (all tracer methods are nil-safe) and the Snapshot is
// always live. Drivers normally obtain a Run from Driver.Setup, which
// also stamps the meta and wires the -trace flag.
//
// The zero Run is not usable; construct with NewRun.
type Run struct {
	// Snap accumulates counters, timers and gauges from every
	// experiment executed on this Run.
	Snap *obs.Snapshot
	// Tracer, when non-nil, receives phase spans in the three time
	// domains (obs.PidHost, obs.PidCMS, obs.PidSim).
	Tracer *obs.Tracer
}

// NewRun returns a Run with a fresh snapshot and no tracer.
func NewRun() *Run {
	return &Run{Snap: obs.NewSnapshot()}
}

// gather folds sources into the run's snapshot, skipping nils.
func (r *Run) gather(srcs ...obs.Source) {
	r.Snap.Gather(srcs...)
}

// The package-level experiment functions predate Run and remain as thin
// wrappers over a throwaway Run, for callers that only want the rows and
// rendered tables.

// Table1 runs the gravitational microkernel comparison on a fresh Run.
func Table1() ([]Table1Row, *metrics.Table, error) { return NewRun().Table1() }

// Table2 runs the MetaBlade scalability sweep on a fresh Run.
func Table2(cfg Table2Config) ([]Table2Row, *metrics.Table, error) { return NewRun().Table2(cfg) }

// Table3 runs the NPB kernel grid on a fresh Run.
func Table3(class nas.Class) (*Table3Data, *metrics.Table, error) { return NewRun().Table3(class) }

// Table4 rates the historical machines on a fresh Run.
func Table4() ([]Table4Row, *metrics.Table, error) { return NewRun().Table4() }

// Table5 computes the cost-of-ownership table on a fresh Run.
func Table5() ([]Table5Row, *metrics.Table, error) { return NewRun().Table5() }

// ToPPeR computes the §4.1 comparison on a fresh Run.
func ToPPeR() (*ToPPeRSummary, error) { return NewRun().ToPPeR() }

// SpacePower computes Tables 6 and 7 on a fresh Run.
func SpacePower() ([]SpacePowerRow, *metrics.Table, *metrics.Table, error) {
	return NewRun().SpacePower()
}

// Figure3 runs the collapse rendering on a fresh Run.
func Figure3(cfg Figure3Config) (*nbody.DensityImage, *nbody.System, error) {
	return NewRun().Figure3(cfg)
}
