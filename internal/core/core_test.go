package core

import (
	"math"
	"repro/internal/cpu"
	"testing"

	"repro/internal/nas"
)

func TestTable1PaperShape(t *testing.T) {
	rows, tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || tab.Rows() != 5 {
		t.Fatalf("Table 1 has %d rows", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Processor] = r
	}
	piii := byName["500-MHz Intel Pentium III"]
	alpha := byName["533-MHz Compaq Alpha EV56"]
	tm := byName["633-MHz Transmeta TM5600"]
	p3 := byName["375-MHz IBM Power3"]
	ath := byName["1200-MHz AMD Athlon MP"]

	// Math-sqrt ordering (the paper's): Power3 > Athlon > TM > PIII > Alpha.
	if !(p3.MathMflops > ath.MathMflops && ath.MathMflops > tm.MathMflops &&
		tm.MathMflops > piii.MathMflops && piii.MathMflops > alpha.MathMflops) {
		t.Fatalf("math column ordering wrong: %+v", rows)
	}
	// Karp beats Math everywhere.
	for _, r := range rows {
		if r.KarpMflops <= r.MathMflops {
			t.Fatalf("%s: Karp %f not above Math %f", r.Processor, r.KarpMflops, r.MathMflops)
		}
	}
	// "The Transmeta performs as well as (if not better than) the Intel
	// and Alpha, relative to clock speed" on Math sqrt.
	tmPerClock := tm.MathMflops / 633
	if tmPerClock < piii.MathMflops/500*0.85 || tmPerClock < alpha.MathMflops/533*0.85 {
		t.Fatalf("TM5600 per-clock math rating %f too far below PIII %f / Alpha %f",
			tmPerClock, piii.MathMflops/500, alpha.MathMflops/533)
	}
	// "The Transmeta suffers a bit with Karp": smallest gain vs the
	// comparably clocked pair.
	if tm.KarpMflops/tm.MathMflops >= piii.KarpMflops/piii.MathMflops {
		t.Fatal("TM5600 Karp gain not below PIII gain")
	}
	if tm.KarpMflops/tm.MathMflops >= alpha.KarpMflops/alpha.MathMflops {
		t.Fatal("TM5600 Karp gain not below Alpha gain")
	}
}

func TestTable2SpeedupShape(t *testing.T) {
	cfg := Table2Config{Particles: 6000, CPUCounts: []int{1, 2, 4, 8}, Theta: 0.7}
	rows, tab, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 4 {
		t.Fatalf("table rows = %d", tab.Rows())
	}
	if rows[0].Speedup != 1 {
		t.Fatalf("speedup(1) = %f", rows[0].Speedup)
	}
	for i := 1; i < len(rows); i++ {
		r := rows[i]
		if r.Speedup <= rows[i-1].Speedup {
			t.Fatalf("speedup not increasing: %+v", rows)
		}
		if r.Speedup > float64(r.CPUs)*1.01 {
			t.Fatalf("superlinear speedup %f on %d CPUs", r.Speedup, r.CPUs)
		}
		// Efficiency drops with P — the paper's communication-overhead
		// observation.
		effPrev := rows[i-1].Speedup / float64(rows[i-1].CPUs)
		eff := r.Speedup / float64(r.CPUs)
		if eff >= effPrev+1e-9 {
			t.Fatalf("efficiency did not drop: %+v", rows)
		}
	}
}

func TestTable2Validation(t *testing.T) {
	if _, _, err := Table2(Table2Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestTable3PaperShape(t *testing.T) {
	// Class S keeps the test fast; the ratios carry (Ops and Mix scale
	// together).
	data, tab, err := Table3(nas.ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Kernels) != 6 || tab.Rows() != 6 {
		t.Fatalf("Table 3 has %d kernels", len(data.Kernels))
	}
	for i, v := range data.Verified {
		if !v {
			t.Fatalf("kernel %s failed verification", data.Kernels[i])
		}
	}
	// Columns: Athlon, PIII, TM5600, Power3. The paper: "the TM5600
	// performs as well as the 500-MHz Pentium III and about one-third as
	// well as the Athlon and Power3."
	const (
		athlon = iota
		piii
		tm
		power3
	)
	for i, k := range data.Kernels {
		if k == "EP" || k == "IS" {
			// EP is compute-bound in a way the paper's caveats cover; IS
			// is integer-only. The CFD+MG rows carry the claim.
			continue
		}
		row := data.Mops[i]
		if r := row[tm] / row[piii]; r < 0.6 || r > 1.5 {
			t.Errorf("%s: TM/PIII = %.2f, want ≈1", k, r)
		}
		if r := row[tm] / row[athlon]; r < 0.2 || r > 0.55 {
			t.Errorf("%s: TM/Athlon = %.2f, want ≈1/3", k, r)
		}
		if r := row[tm] / row[power3]; r < 0.2 || r > 0.7 {
			t.Errorf("%s: TM/Power3 = %.2f, want ≈1/3", k, r)
		}
	}
}

func TestTable4PaperClaims(t *testing.T) {
	rows, tab, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 || tab.Rows() != 12 {
		t.Fatalf("Table 4 has %d rows", len(rows))
	}
	byName := map[string]Table4Row{}
	for _, r := range rows {
		byName[r.Machine] = r
	}
	origin := byName["LANL SGI Origin 2000"]
	mb2 := byName["SC'01 MetaBlade2"]
	mb := byName["LANL MetaBlade"]
	avalon := byName["LANL Avalon"]
	loki := byName["LANL Loki"]

	// "The latter [MetaBlade2] only places behind the SGI Origin 2000."
	for _, r := range rows {
		if r.Machine == "LANL SGI Origin 2000" || r.Machine == "SC'01 MetaBlade2" {
			continue
		}
		if r.MflopPerProc >= mb2.MflopPerProc {
			t.Errorf("%s per-proc %.1f ≥ MetaBlade2 %.1f", r.Machine, r.MflopPerProc, mb2.MflopPerProc)
		}
	}
	if origin.MflopPerProc <= mb2.MflopPerProc {
		t.Fatalf("Origin %f not above MetaBlade2 %f", origin.MflopPerProc, mb2.MflopPerProc)
	}
	// "the TM5600 is about twice that of the Pentium Pro 200" (Loki).
	ratio := mb.MflopPerProc / loki.MflopPerProc
	if ratio < 1.6 || ratio > 3.2 {
		t.Fatalf("MetaBlade/Loki per-proc = %.2f, want ≈2", ratio)
	}
	// "performs about the same as the 533-MHz Alpha" (Avalon).
	if r := mb.MflopPerProc / avalon.MflopPerProc; r < 0.7 || r > 1.4 {
		t.Fatalf("MetaBlade/Avalon per-proc = %.2f, want ≈1", r)
	}
	// MetaBlade2 improves on MetaBlade.
	if mb2.MflopPerProc <= mb.MflopPerProc {
		t.Fatal("MetaBlade2 not above MetaBlade")
	}
}

func TestTable5AndToPPeR(t *testing.T) {
	rows, tab, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || tab.Rows() != 6 {
		t.Fatalf("Table 5 shape: %d clusters, %d rows", len(rows), tab.Rows())
	}
	var blade, worstTrad float64
	for _, r := range rows {
		if r.Name == "TM5600" {
			blade = r.B.TCO()
		} else if r.B.TCO() > worstTrad {
			worstTrad = r.B.TCO()
		}
	}
	if blade <= 0 || worstTrad/blade < 2.5 {
		t.Fatalf("TCO advantage %f, want ≈3", worstTrad/blade)
	}

	s, err := ToPPeR()
	if err != nil {
		t.Fatal(err)
	}
	// §4.1: "the total price-performance ratio for our Transmeta-based
	// Bladed Beowulf is over twice as good as a traditional Beowulf",
	// while plain acquisition price/performance favours the traditional
	// cluster.
	if s.ToPPeRAdvantage < 2 {
		t.Fatalf("ToPPeR advantage %.2f, want > 2", s.ToPPeRAdvantage)
	}
	if s.PricePerfRatio <= 1 {
		t.Fatalf("acquisition price/perf ratio %.2f should favour the traditional cluster", s.PricePerfRatio)
	}
}

func TestSpacePowerPaperShape(t *testing.T) {
	rows, t6, t7, err := SpacePower()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || t6.Rows() != 3 || t7.Rows() != 3 {
		t.Fatal("bad table shapes")
	}
	avalon, mb, gd := rows[0], rows[1], rows[2]
	// Table 6: MetaBlade beats the traditional Beowulf on perf/space "by
	// a factor of two"; Green Destiny by over twenty-fold.
	if r := mb.PerfSpace / avalon.PerfSpace; r < 2 {
		t.Fatalf("MetaBlade perf/space advantage %.2f, want ≥ 2", r)
	}
	if r := gd.PerfSpace / avalon.PerfSpace; r < 20 {
		t.Fatalf("Green Destiny perf/space advantage %.2f, want > 20", r)
	}
	// Table 7: blades outperform "by a factor of four" on perf/power.
	if r := mb.PerfPower / avalon.PerfPower; r < 4 {
		t.Fatalf("MetaBlade perf/power advantage %.2f, want ≥ 4", r)
	}
	if gd.PerfPower <= mb.PerfPower {
		t.Fatal("Green Destiny perf/power not above MetaBlade")
	}
	// Physical attributes straight from the paper.
	if mb.AreaSqFt != 6 || gd.AreaSqFt != 6 {
		t.Fatalf("blade footprints: %v, %v ft², want 6", mb.AreaSqFt, gd.AreaSqFt)
	}
	if avalon.AreaSqFt != 120 {
		t.Fatalf("Avalon footprint %v, want 120", avalon.AreaSqFt)
	}
}

func TestFigure3RendersCollapse(t *testing.T) {
	cfg := Figure3Config{Particles: 3000, Steps: 5, Width: 40, Height: 20}
	img, sys, err := Figure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if img.W != 40 || img.H != 20 {
		t.Fatal("bad image size")
	}
	if sys.Interactions == 0 {
		t.Fatal("no interactions recorded")
	}
	// Centre brighter than the edge for a collapsing Plummer sphere.
	centre := img.Pix[10*40+20]
	if centre == 0 {
		t.Fatal("empty centre")
	}
	var max byte
	for _, p := range img.Pix {
		if p > max {
			max = p
		}
	}
	if max < 128 {
		t.Fatalf("dynamic range too low: max %d", max)
	}
}

func TestFigure3Validation(t *testing.T) {
	if _, _, err := Figure3(Figure3Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	machines, err := Registry()
	if err != nil {
		t.Fatal(err)
	}
	if len(machines) != 12 {
		t.Fatalf("registry has %d machines", len(machines))
	}
	for _, m := range machines {
		if m.CPU == nil || m.Procs <= 0 || m.ParallelEff <= 0 || m.ParallelEff > 1 {
			t.Errorf("bad registry entry %+v", m)
		}
	}
}

func TestTreecodeRateDeterministic(t *testing.T) {
	p := cpu.PentiumIII500().AsProcessor()
	a, err := TreecodeRate(p, 3000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TreecodeRate(p, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 1e-9 {
		t.Fatalf("rates differ: %f vs %f", a, b)
	}
	if a <= 0 {
		t.Fatal("zero rate")
	}
}

func TestAvailabilityStudyShape(t *testing.T) {
	rows, err := StudyAvailability(20, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	blade, trad := rows[0], rows[1]
	// The blade loses far fewer CPU-hours: fewer failures (cooler
	// components), shorter outages (managed diagnosis), one blade down
	// instead of the whole cluster.
	if blade.LostCPUHours*20 > trad.LostCPUHours {
		t.Fatalf("blade lost %f CPU-h vs traditional %f — want ≥20x gap",
			blade.LostCPUHours, trad.LostCPUHours)
	}
	if blade.Availability <= trad.Availability {
		t.Fatal("blade availability not higher")
	}
	if trad.Availability < 0.95 || trad.Availability > 1 {
		t.Fatalf("traditional availability %f implausible", trad.Availability)
	}
	// Traditional downtime cost per 4 years ≈ the paper's $11.5K.
	per4yr := trad.DowntimeCostUSD / 5
	if per4yr < 6000 || per4yr > 20000 {
		t.Fatalf("traditional 4-year downtime cost $%.0f, paper says ≈$11.5K", per4yr)
	}
}
