package core

import (
	"reflect"
	"testing"

	"repro/internal/nas"
)

// TestNASSweepConcurrentMatchesSerial pins the sweep harness's
// determinism contract: running the independent worlds concurrently on
// the host pool must produce bit-identical rows and an identical
// snapshot (same counters, gauges and timers, same values).
func TestNASSweepConcurrentMatchesSerial(t *testing.T) {
	cfg := DefaultNASSweepConfig()
	cfg.Ranks = []int{1, 2, 3, 5, 8}
	run := func(concurrent bool) ([]NASSweepRow, string) {
		r := NewRun()
		c := cfg
		c.Concurrent = concurrent
		c.Workers = 4
		rows, tab, err := r.NASSweep(c)
		if err != nil {
			t.Fatal(err)
		}
		if tab == nil || len(rows) != len(cfg.Ranks) {
			t.Fatalf("sweep returned %d rows", len(rows))
		}
		return rows, r.Snap.String()
	}
	rowsS, snapS := run(false)
	rowsC, snapC := run(true)
	if !reflect.DeepEqual(rowsS, rowsC) {
		t.Fatalf("rows differ:\nserial:     %+v\nconcurrent: %+v", rowsS, rowsC)
	}
	if snapS != snapC {
		t.Fatalf("snapshots differ:\nserial:\n%s\nconcurrent:\n%s", snapS, snapC)
	}
}

func TestNASSweepSpeedupsAndSubstrateCounters(t *testing.T) {
	cfg := DefaultNASSweepConfig()
	cfg.Ranks = []int{1, 4, 8}
	cfg.Concurrent = true
	rows, _, err := NewRun().NASSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].EPSpeedup != 1 {
		t.Fatalf("p=1 EP speedup = %g", rows[0].EPSpeedup)
	}
	last := rows[len(rows)-1]
	if last.EPSpeedup < 6 {
		t.Fatalf("EP speedup at 8 ranks only %.2f", last.EPSpeedup)
	}
	if last.CommBytes == 0 || last.PoolHits == 0 {
		t.Fatalf("substrate counters empty at p=8: %+v", last)
	}
}

func TestNASSweepVariantsChangeOnlyTimes(t *testing.T) {
	// Native collectives and the contention model are opt-in: they may
	// change simulated times but must not change what the kernels
	// compute — which the rows expose through verified comm volumes.
	base := DefaultNASSweepConfig()
	base.Ranks = []int{6}
	baseRows, _, err := NewRun().NASSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	contended := base
	contended.Contention = true
	conRows, _, err := NewRun().NASSweep(contended)
	if err != nil {
		t.Fatal(err)
	}
	if conRows[0].ISTime < baseRows[0].ISTime {
		t.Fatalf("contention made IS faster: %g vs %g", conRows[0].ISTime, baseRows[0].ISTime)
	}
	if conRows[0].CommBytes != baseRows[0].CommBytes {
		t.Fatalf("contention changed traffic: %d vs %d", conRows[0].CommBytes, baseRows[0].CommBytes)
	}
	native := base
	native.Native = true
	natRows, _, err := NewRun().NASSweep(native)
	if err != nil {
		t.Fatal(err)
	}
	if natRows[0].EPTime <= 0 || natRows[0].ISTime <= 0 {
		t.Fatalf("native sweep produced empty times: %+v", natRows[0])
	}
}

func TestNASSweepEmptyConfigRejected(t *testing.T) {
	if _, _, err := NewRun().NASSweep(NASSweepConfig{Class: nas.ClassS}); err == nil {
		t.Fatal("empty rank list accepted")
	}
}

// TestTable2ConcurrentMatchesSerial extends the determinism contract to
// the paper's Table 2 sweep (the metablade -sweep mode).
func TestTable2ConcurrentMatchesSerial(t *testing.T) {
	cfg := DefaultTable2Config()
	cfg.Particles = 4000
	cfg.CPUCounts = []int{1, 2, 4}
	run := func(concurrent bool) ([]Table2Row, string) {
		r := NewRun()
		c := cfg
		c.Concurrent = concurrent
		rows, _, err := r.Table2(c)
		if err != nil {
			t.Fatal(err)
		}
		return rows, r.Snap.String()
	}
	rowsS, snapS := run(false)
	rowsC, snapC := run(true)
	if !reflect.DeepEqual(rowsS, rowsC) {
		t.Fatalf("rows differ:\nserial:     %+v\nconcurrent: %+v", rowsS, rowsC)
	}
	if snapS != snapC {
		t.Fatal("snapshots differ between serial and concurrent Table 2")
	}
}
