package core

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/cpu"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/mpi"
	"repro/internal/nas"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/tco"
	"repro/internal/treecode"
)

// --- Table 1: gravitational microkernel Mflops ---

// Table1Row is one processor's pair of ratings.
type Table1Row struct {
	Processor  string
	MathMflops float64
	KarpMflops float64
}

// Table1 runs the microkernel (both reciprocal-square-root variants) on
// the five evaluation processors: trace-driven superscalar models for the
// hardware CPUs, the full CMS+VLIW simulation for the TM5600. The run's
// snapshot collects the CMS pipeline counters of the Crusoe executions
// and a per-processor rating gauge; the tracer (if any) sees the CMS
// interpret→translate→cache spans plus a host span per processor.
func (r *Run) Table1() ([]Table1Row, *metrics.Table, error) {
	var rows []Table1Row
	for _, p := range cpu.EvaluationCPUs() {
		if c, ok := p.(*cpu.Crusoe); ok {
			c.Tracer = r.Tracer
		}
		sp := r.Tracer.Begin(obs.PidHost, 0, "table1", p.Name())
		row := Table1Row{Processor: p.Name()}
		for _, variant := range []kernels.GravVariant{kernels.GravMath, kernels.GravKarp} {
			g := kernels.DefaultGravMicro(variant)
			prog, st, err := g.Build()
			if err != nil {
				return nil, nil, err
			}
			res, err := p.RunKernel(prog, st)
			if err != nil {
				return nil, nil, err
			}
			if res.CMS != nil {
				r.gather(res.CMS)
			}
			if variant == kernels.GravMath {
				row.MathMflops = res.Mflops()
			} else {
				row.KarpMflops = res.Mflops()
			}
		}
		sp.End(map[string]any{"math_mflops": row.MathMflops, "karp_mflops": row.KarpMflops})
		name := obs.SanitizeName(p.Name())
		r.Snap.SetGauge("table1."+name+".math_mflops", "Mflops", "gravitational microkernel, math sqrt", row.MathMflops)
		r.Snap.SetGauge("table1."+name+".karp_mflops", "Mflops", "gravitational microkernel, Karp sqrt", row.KarpMflops)
		rows = append(rows, row)
	}
	t := metrics.NewTable("Table 1: Mflops on the gravitational microkernel",
		"Processor", "Math sqrt", "Karp sqrt")
	for _, r := range rows {
		t.AddRowf("%.1f", r.Processor, r.MathMflops, r.KarpMflops)
	}
	return rows, t, nil
}

// --- Table 2: N-body scalability on MetaBlade ---

// Table2Row is one CPU-count measurement.
type Table2Row struct {
	CPUs    int
	TimeSec float64
	Speedup float64
}

// Table2Config sizes the scalability run.
type Table2Config struct {
	Particles int
	CPUCounts []int
	Theta     float64
	// Concurrent runs the sweep's independent worlds concurrently on
	// the internal/par pool (the -sweep mode); rows and snapshot are
	// bit-identical to the serial sweep.
	Concurrent bool
	// Workers bounds host concurrency when Concurrent (0 = the
	// process-wide default).
	Workers int
	// Engine selects each rank's force-evaluation engine (dual by
	// default); ErrorBudget steers the auto choice (< 1 pins the
	// bit-exact list engine); GroupWalk is the deprecated group alias.
	Engine      treecode.Engine
	ErrorBudget float64
	GroupWalk   bool
	// Fabric names the interconnect topology (see NASSweepConfig.Fabric).
	Fabric string
	// Mode selects the rank scheduler (see NASSweepConfig.Mode).
	Mode string
}

// DefaultTable2Config mirrors the paper's sweep of the 24-blade chassis.
func DefaultTable2Config() Table2Config {
	return Table2Config{
		Particles: 60000,
		CPUCounts: []int{1, 2, 4, 8, 16, 24},
		Theta:     0.7,
	}
}

// Table2 runs the tree N-body force computation on 1..24 simulated
// blades: real parallel execution over the mpi substrate, compute time
// from the TM5600's calibrated costs, communication from the 100 Mb/s
// Fast Ethernet model. Each world's communication totals and each
// sweep's interaction counts land in the run's snapshot; the tracer
// records per-rank virtual-time phases (obs.PidSim) for every world.
func (r *Run) Table2(cfg Table2Config) ([]Table2Row, *metrics.Table, error) {
	if cfg.Particles <= 0 || len(cfg.CPUCounts) == 0 {
		return nil, nil, fmt.Errorf("core: empty Table2 config")
	}
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateTree)
	if err != nil {
		return nil, nil, err
	}
	cm := treecode.CostModel{
		SecondsPerInteraction: costs.Seconds(treecode.InteractionMix()),
		SecondsPerBuildSource: costs.Seconds(treecode.BuildMix()),
	}
	type t2out struct {
		w   *mpi.World
		res *treecode.ParallelResult
		err error
	}
	outs := make([]t2out, len(cfg.CPUCounts))
	runOne := func(i int) {
		o := &outs[i]
		p := cfg.CPUCounts[i]
		s := nbody.NewPlummer(cfg.Particles, 1, 2001)
		f := netsim.FastEthernet()
		if err := netsim.ApplyTopology(f, cfg.Fabric, p); err != nil {
			o.err = err
			return
		}
		event, err := ResolveMPIMode(cfg.Mode, p)
		if err != nil {
			o.err = err
			return
		}
		wcfg := mpi.Config{Fabric: f, Event: event}
		if cfg.Concurrent {
			// The concurrent sweep keeps every world's channels alive at
			// once; the LET exchange never queues deeply, so cap the
			// host-side buffers (virtual times are unaffected).
			wcfg.ChannelDepth = sweepChannelDepth
		}
		w, err := mpi.NewWorldWithConfig(p, wcfg)
		if err != nil {
			o.err = err
			return
		}
		w.Tracer = r.Tracer
		o.w = w
		o.res, o.err = treecode.ParallelForces(w, s, treecode.ParallelConfig{
			Theta: cfg.Theta, Eps: s.Eps, Cost: cm,
			Engine: cfg.Engine, ErrorBudget: cfg.ErrorBudget, GroupWalk: cfg.GroupWalk,
		})
	}
	if cfg.Concurrent {
		tasks := make([]func(), len(cfg.CPUCounts))
		for i := range tasks {
			i := i
			tasks[i] = func() { runOne(i) }
		}
		par.New(cfg.Workers).Do(tasks...)
	} else {
		for i, p := range cfg.CPUCounts {
			sp := r.Tracer.Begin(obs.PidHost, 0, "table2", fmt.Sprintf("p%d", p))
			runOne(i)
			sp.End(map[string]any{"cpus": p})
		}
	}
	// Deterministic post-pass in CPU-count order, independent of the
	// workers' completion order.
	var rows []Table2Row
	var t1 float64
	for i, p := range cfg.CPUCounts {
		o := &outs[i]
		if o.err != nil {
			return nil, nil, o.err
		}
		res := o.res
		if p == cfg.CPUCounts[0] && p == 1 {
			t1 = res.SimTime
		} else if t1 == 0 {
			t1 = res.SimTime * float64(p) // fallback if sweep skips P=1
		}
		row := Table2Row{
			CPUs:    p,
			TimeSec: res.SimTime,
			Speedup: metrics.Speedup(t1, res.SimTime),
		}
		r.gather(o.w, res)
		r.Snap.SetGauge(fmt.Sprintf("table2.p%02d.time", p), "s", "simulated N-body force time", row.TimeSec)
		r.Snap.SetGauge(fmt.Sprintf("table2.p%02d.speedup", p), "", "speedup over one blade", row.Speedup)
		rows = append(rows, row)
	}
	t := metrics.NewTable("Table 2: scalability of the N-body simulation on MetaBlade",
		"# CPUs", "Time (sec)", "Speed-Up")
	for _, r := range rows {
		t.AddRowf("%.2f", fmt.Sprintf("%d", r.CPUs), r.TimeSec, r.Speedup)
	}
	return rows, t, nil
}

// --- Table 3: NPB 2.3 single-processor Mops ---

// Table3Data holds the kernel × processor grid.
type Table3Data struct {
	Kernels    []string
	Processors []string
	Mops       [][]float64 // [kernel][processor]
	Verified   []bool
}

// Table3 runs the six NPB kernels at the given class and rates them on
// the four Table 3 processors through calibrated op-mix models. Each
// kernel×processor rating lands in the snapshot as a gauge; host spans
// cover the kernel executions.
func (r *Run) Table3(class nas.Class) (*Table3Data, *metrics.Table, error) {
	procs := cpu.NASCPUs()
	costs := make([]cpu.EffCosts, len(procs))
	for i, p := range procs {
		var err error
		costs[i], err = cpu.CalibrateFor(p, cpu.MissRateClassW)
		if err != nil {
			return nil, nil, err
		}
	}
	data := &Table3Data{}
	for _, p := range procs {
		data.Processors = append(data.Processors, p.Name())
	}
	t := metrics.NewTable(
		fmt.Sprintf("Table 3: single-processor performance (Mops) for class %s NPB 2.3", class),
		"Code", "Athlon MP", "Pentium 3", "TM5600", "Power3")
	for _, k := range nas.Table3Kernels() {
		sp := r.Tracer.Begin(obs.PidHost, 0, "table3", k.Name())
		kr, err := k.Run(class)
		if err != nil {
			return nil, nil, err
		}
		sp.End(map[string]any{"ops": kr.Ops, "verified": kr.Verified})
		var row []float64
		kname := obs.SanitizeName(k.Name())
		for i, p := range procs {
			m := costs[i].Mops(kr.Ops, &kr.Mix)
			row = append(row, m)
			r.Snap.SetGauge("table3."+kname+"."+obs.SanitizeName(p.Name())+".mops", "Mops",
				"NPB kernel rating, class "+string(class), m)
		}
		data.Kernels = append(data.Kernels, k.Name())
		data.Mops = append(data.Mops, row)
		data.Verified = append(data.Verified, kr.Verified)
		t.AddRowf("%.1f", k.Name(), row[0], row[1], row[2], row[3])
	}
	return data, t, nil
}

// --- Table 4: historical treecode performance ---

// Table4Row is one machine's rating.
type Table4Row struct {
	Machine      string
	Procs        int
	Gflop        float64
	MflopPerProc float64
}

// Table4Particles sizes the treecode run used for the per-processor
// rating.
const Table4Particles = 20000

// Table4 rates every registry machine on the treecode, recording one
// rating gauge per machine.
func (r *Run) Table4() ([]Table4Row, *metrics.Table, error) {
	machines, err := Registry()
	if err != nil {
		return nil, nil, err
	}
	rateCache := map[string]float64{}
	var rows []Table4Row
	for _, m := range machines {
		rate, ok := rateCache[m.CPU.Name()]
		if !ok {
			rate, err = TreecodeRate(m.CPU, Table4Particles)
			if err != nil {
				return nil, nil, err
			}
			rateCache[m.CPU.Name()] = rate
		}
		perProc := rate * m.ParallelEff
		row := Table4Row{
			Machine:      m.Name,
			Procs:        m.Procs,
			Gflop:        perProc * float64(m.Procs) / 1000,
			MflopPerProc: perProc,
		}
		mname := obs.SanitizeName(m.Name)
		r.Snap.SetGauge("table4."+mname+".gflop", "Gflop", "treecode rating", row.Gflop)
		r.Snap.SetGauge("table4."+mname+".mflop_per_proc", "Mflops", "treecode rating per processor", row.MflopPerProc)
		rows = append(rows, row)
	}
	t := metrics.NewTable("Table 4: historical treecode performance",
		"Machine", "CPUs", "Gflop", "Mflop/proc")
	for _, r := range rows {
		t.AddRowf("%.1f", r.Machine, fmt.Sprintf("%d", r.Procs), r.Gflop, r.MflopPerProc)
	}
	return rows, t, nil
}

// --- Table 5: total cost of ownership ---

// Table5Row is one cluster's cost breakdown.
type Table5Row struct {
	Name string
	B    tco.Breakdown
}

// Table5 evaluates the paper's five 24-node clusters under the paper's
// rates, recording acquisition and TCO gauges per cluster.
func (r *Run) Table5() ([]Table5Row, *metrics.Table, error) {
	cfgs, err := tco.PaperTable5Configs()
	if err != nil {
		return nil, nil, err
	}
	rates := tco.PaperRates()
	var rows []Table5Row
	t := metrics.NewTable("Table 5: total cost of ownership for a 24-node cluster over four years ($K)",
		"Cost Parameter", "Alpha", "Athlon", "PIII", "P4", "TM5600")
	cells := make(map[string][]float64)
	order := []string{"Acquisition", "System Admin", "Power & Cooling", "Space", "Downtime", "TCO"}
	for _, cfg := range cfgs {
		b, err := tco.Compute(cfg, rates)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, Table5Row{Name: cfg.Name, B: b})
		cname := obs.SanitizeName(cfg.Name)
		r.Snap.SetGauge("table5."+cname+".acquisition", "$", "cluster acquisition cost", b.Acquisition)
		r.Snap.SetGauge("table5."+cname+".tco", "$", "four-year total cost of ownership", b.TCO())
		cells["Acquisition"] = append(cells["Acquisition"], b.Acquisition)
		cells["System Admin"] = append(cells["System Admin"], b.SysAdmin)
		cells["Power & Cooling"] = append(cells["Power & Cooling"], b.PowerCooling)
		cells["Space"] = append(cells["Space"], b.Space)
		cells["Downtime"] = append(cells["Downtime"], b.Downtime)
		cells["TCO"] = append(cells["TCO"], b.TCO())
	}
	for _, name := range order {
		args := []any{name}
		for _, v := range cells[name] {
			args = append(args, v/1000)
		}
		t.AddRowf("$%.1fK", args...)
	}
	return rows, t, nil
}

// ToPPeRSummary compares ToPPeR and plain price/performance for the blade
// versus a traditional cluster, per §4.1: blade performance is 75% of a
// comparably clocked traditional Beowulf, TCO three times lower.
type ToPPeRSummary struct {
	TradToPPeR, BladeToPPeR         float64 // $/Mflops over TCO
	TradPricePerf, BladePricePerf   float64 // $/Mflops over acquisition
	ToPPeRAdvantage, PricePerfRatio float64
}

// ToPPeR computes the §4.1 comparison using the PIII cluster as the
// comparably clocked traditional Beowulf and measured treecode rates.
func (r *Run) ToPPeR() (*ToPPeRSummary, error) {
	rows, _, err := r.Table5()
	if err != nil {
		return nil, err
	}
	byName := map[string]tco.Breakdown{}
	for _, row := range rows {
		byName[row.Name] = row.B
	}
	tradRate, err := TreecodeRate(cpu.PentiumIII500().AsProcessor(), Table4Particles)
	if err != nil {
		return nil, err
	}
	bladeRate, err := TreecodeRate(cpu.NewTM5600(), Table4Particles)
	if err != nil {
		return nil, err
	}
	tradGflop := tradRate * 24 * 0.8 / 1000
	bladeGflop := bladeRate * 24 * 0.8 / 1000
	s := &ToPPeRSummary{
		TradToPPeR:     tco.ToPPeR(byName["PIII"].TCO(), tradGflop),
		BladeToPPeR:    tco.ToPPeR(byName["TM5600"].TCO(), bladeGflop),
		TradPricePerf:  tco.PricePerf(byName["PIII"].Acquisition, tradGflop),
		BladePricePerf: tco.PricePerf(byName["TM5600"].Acquisition, bladeGflop),
	}
	s.ToPPeRAdvantage = s.TradToPPeR / s.BladeToPPeR
	s.PricePerfRatio = s.BladePricePerf / s.TradPricePerf
	r.Snap.SetGauge("topper.trad", "$/Mflops", "traditional Beowulf $/Mflops over TCO", s.TradToPPeR)
	r.Snap.SetGauge("topper.blade", "$/Mflops", "blade $/Mflops over TCO", s.BladeToPPeR)
	r.Snap.SetGauge("topper.advantage", "", "traditional/blade ToPPeR ratio", s.ToPPeRAdvantage)
	r.Snap.SetGauge("topper.priceperf_ratio", "", "blade/traditional price-performance ratio", s.PricePerfRatio)
	return s, nil
}

// --- Tables 6 and 7: performance/space and performance/power ---

// SpacePowerRow is one machine's entry in Tables 6/7.
type SpacePowerRow struct {
	Machine   string
	Gflop     float64
	AreaSqFt  float64
	PowerKW   float64
	PerfSpace float64 // Mflop/ft²
	PerfPower float64 // Gflop/kW
}

// SpacePower builds the Avalon / MetaBlade / Green Destiny comparison of
// Tables 6 and 7 from measured treecode rates and the physical cluster
// models, recording density gauges per machine.
func (r *Run) SpacePower() ([]SpacePowerRow, *metrics.Table, *metrics.Table, error) {
	avalonC, err := cluster.New("Avalon", cluster.NodeAlpha, avalonPackaging(), 128, 24)
	if err != nil {
		return nil, nil, nil, err
	}
	mbC, err := cluster.New("MetaBlade", cluster.NodeTM5600, cluster.BladePackaging(), 24, 27)
	if err != nil {
		return nil, nil, nil, err
	}
	gdC, err := cluster.New("Green Destiny", cluster.NodeTM5800, cluster.BladePackaging(), 240, 27)
	if err != nil {
		return nil, nil, nil, err
	}
	alphaRate, err := TreecodeRate(cpu.AlphaEV56_533().AsProcessor(), Table4Particles)
	if err != nil {
		return nil, nil, nil, err
	}
	tm56Rate, err := TreecodeRate(cpu.NewTM5600(), Table4Particles)
	if err != nil {
		return nil, nil, nil, err
	}
	tm58Rate, err := TreecodeRate(cpu.NewTM5800(), Table4Particles)
	if err != nil {
		return nil, nil, nil, err
	}
	mk := func(name string, rate float64, procs int, eff float64, c *cluster.Cluster) SpacePowerRow {
		g := rate * eff * float64(procs) / 1000
		return SpacePowerRow{
			Machine:   name,
			Gflop:     g,
			AreaSqFt:  c.FootprintSqFt(),
			PowerKW:   c.TotalPowerKW(),
			PerfSpace: tco.PerfPerSpace(g, c.FootprintSqFt()),
			PerfPower: tco.PerfPerPower(g, c.TotalPowerKW()),
		}
	}
	rows := []SpacePowerRow{
		mk("Avalon", alphaRate, 128, 0.75, avalonC),
		mk("MetaBlade", tm56Rate, 24, 0.78, mbC),
		mk("Green Destiny", tm58Rate, 240, 0.78, gdC),
	}
	for _, row := range rows {
		mname := obs.SanitizeName(row.Machine)
		r.Snap.SetGauge("table6."+mname+".perf_space", "Mflop/ft2", "treecode performance per floor space", row.PerfSpace)
		r.Snap.SetGauge("table7."+mname+".perf_power", "Gflop/kW", "treecode performance per kilowatt", row.PerfPower)
	}
	t6 := metrics.NewTable("Table 6: performance/space, traditional vs bladed Beowulfs",
		"Machine", "Performance (Gflop)", "Area (ft^2)", "Perf/Space (Mflop/ft^2)")
	t7 := metrics.NewTable("Table 7: performance/power, traditional vs bladed Beowulfs",
		"Machine", "Performance (Gflop)", "Power (kW)", "Perf/Power (Gflop/kW)")
	for _, r := range rows {
		t6.AddRowf("%.1f", r.Machine, r.Gflop, r.AreaSqFt, r.PerfSpace)
		t7.AddRowf("%.2f", r.Machine, r.Gflop, r.PowerKW, r.PerfPower)
	}
	return rows, t6, t7, nil
}

// --- Figure 3: density rendering of an N-body run ---

// Figure3Config sizes the simulation behind the rendering.
type Figure3Config struct {
	Particles int
	Steps     int
	Width     int
	Height    int
	// Engine selects the force engine (dual by default); ErrorBudget
	// steers the auto choice; GroupWalk is the deprecated group alias.
	Engine      treecode.Engine
	ErrorBudget float64
	GroupWalk   bool
}

// DefaultFigure3Config is sized for a quick run; the sc01demo example
// scales it up.
func DefaultFigure3Config() Figure3Config {
	return Figure3Config{Particles: 20000, Steps: 10, Width: 72, Height: 36}
}

// Figure3 runs a self-gravitating collapse with the treecode and renders
// the projected density — the reproduction of the paper's Figure 3 image.
// The forcer's cumulative interaction counters land in the snapshot; the
// tracer (if any) sees the per-step build/forces host spans.
func (r *Run) Figure3(cfg Figure3Config) (*nbody.DensityImage, *nbody.System, error) {
	if cfg.Particles <= 0 || cfg.Width <= 0 || cfg.Height <= 0 {
		return nil, nil, fmt.Errorf("core: bad Figure3 config")
	}
	s := nbody.NewPlummer(cfg.Particles, 1, 42)
	// Cool the velocities so structure collapses visibly.
	for i := range s.VX {
		s.VX[i] *= 0.3
		s.VY[i] *= 0.3
		s.VZ[i] *= 0.3
	}
	f := &treecode.Forcer{Theta: 0.7, Tracer: r.Tracer,
		Engine: cfg.Engine, ErrorBudget: cfg.ErrorBudget, GroupWalk: cfg.GroupWalk}
	if cfg.Steps > 0 {
		if err := s.Leapfrog(f, 0.01, cfg.Steps); err != nil {
			return nil, nil, err
		}
	}
	img, err := nbody.RenderAuto(s, cfg.Width, cfg.Height)
	if err != nil {
		return nil, nil, err
	}
	r.gather(f)
	r.Snap.SetGauge("figure3.particles", "", "collapse simulation size", float64(cfg.Particles))
	r.Snap.SetGauge("figure3.steps", "", "leapfrog steps", float64(cfg.Steps))
	return img, s, nil
}
