package core

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/designopt"
	"repro/internal/kernels"
)

// TestPinnedRatesMatchTable1 cross-checks designopt.PinnedKarpMflops —
// the per-CPU workload rates the design-space optimizer sweeps with —
// against the live Table 1 microkernel, bit for bit. The pins exist so
// a sweep costs no simulator runs; this test is what keeps them from
// drifting when a CPU model changes.
func TestPinnedRatesMatchTable1(t *testing.T) {
	// Map the simulator's long processor names onto the optimizer's
	// short axis labels.
	short := func(name string) string {
		switch {
		case strings.Contains(name, "Pentium III"):
			return "PIII"
		case strings.Contains(name, "Alpha"):
			return "Alpha"
		case strings.Contains(name, "TM5600"):
			return "TM5600"
		case strings.Contains(name, "POWER3"), strings.Contains(name, "Power3"):
			return "Power3"
		case strings.Contains(name, "Athlon"):
			return "Athlon"
		}
		return ""
	}
	seen := map[string]bool{}
	for _, p := range cpu.EvaluationCPUs() {
		key := short(p.Name())
		if key == "" {
			t.Fatalf("no designopt label for processor %q", p.Name())
		}
		g := kernels.DefaultGravMicro(kernels.GravKarp)
		prog, st, err := g.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.RunKernel(prog, st)
		if err != nil {
			t.Fatal(err)
		}
		want, ok := designopt.PinnedKarpMflops[key]
		if !ok {
			t.Fatalf("PinnedKarpMflops has no entry for %q", key)
		}
		if got := res.Mflops(); got != want {
			t.Errorf("%s: live Karp rate %v, pinned %v — update designopt.PinnedKarpMflops", key, got, want)
		}
		seen[key] = true
	}
	if len(seen) != len(designopt.PinnedKarpMflops) {
		t.Errorf("pinned %d CPUs, Table 1 ran %d", len(designopt.PinnedKarpMflops), len(seen))
	}
}

// TestTopperOptSpecRuns: the default spec sweeps the default grid and
// emits a stable non-empty frontier with the obs counters the gateway
// schema expects.
func TestTopperOptSpecRuns(t *testing.T) {
	run := func() (*SpecResult, *Run) {
		r := NewRun()
		res, err := RunSpec(r, &TopperOptSpec{})
		if err != nil {
			t.Fatal(err)
		}
		return res, r
	}
	r1, run1 := run()
	r2, _ := run()
	if r1.Text != r2.Text {
		t.Fatalf("topperopt text differs between runs:\n%q\n%q", r1.Text, r2.Text)
	}
	j1, _ := json.Marshal(r1.Data)
	j2, _ := json.Marshal(r2.Data)
	if string(j1) != string(j2) {
		t.Fatal("topperopt result JSON differs between runs")
	}
	payload, ok := r1.Data.(TopperOptResult)
	if !ok {
		t.Fatalf("Data is %T, want TopperOptResult", r1.Data)
	}
	if len(payload.Frontier) == 0 {
		t.Fatal("empty frontier on the default grid")
	}
	if payload.Evaluated+payload.Pruned != payload.Candidates {
		t.Fatalf("evaluated %d + pruned %d != candidates %d",
			payload.Evaluated, payload.Pruned, payload.Candidates)
	}
	if !strings.Contains(r1.Text, "Pareto frontier") {
		t.Errorf("unexpected text: %q", r1.Text)
	}
	for _, name := range []string{"designopt.memo.hit", "designopt.memo.miss", "designopt.pruned", "designopt.evaluated"} {
		if !strings.Contains(run1.Snap.Table("x", "designopt.").String(), name) {
			t.Errorf("snapshot missing counter %s", name)
		}
	}
}

// TestTopperOptSpecValidation: bad axis names and degenerate grids are
// rejected at Validate time, before any work runs.
func TestTopperOptSpecValidation(t *testing.T) {
	for _, bad := range []*TopperOptSpec{
		{CPUs: []string{"G4"}},
		{Packs: []string{"liquid"}},
		{Fabrics: []string{"myrinet"}},
		{Fabrics: []string{"ge-hypercube"}},
		{Nodes: []int{0}},
		{Ambients: []float64{-400}},
		{MaxPowerKW: -1},
	} {
		c, err := CanonicalSpec(bad)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); err == nil {
			t.Errorf("spec %+v validated", bad)
		}
	}
	// Workers/NoMemo/NoPrune are execution knobs: different settings
	// hash differently (they are spec fields) but produce the same
	// frontier — the serve layer's cache stays coherent either way.
	a, _ := RunSpec(NewRun(), &TopperOptSpec{Nodes: []int{8, 64}, NoPrune: true})
	b, _ := RunSpec(NewRun(), &TopperOptSpec{Nodes: []int{8, 64}, Workers: 3})
	fa := a.Data.(TopperOptResult).Frontier
	fb := b.Data.(TopperOptResult).Frontier
	if designopt.Fingerprint(fa) != designopt.Fingerprint(fb) {
		t.Fatal("execution knobs changed the frontier")
	}
}
