package core

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registered on the -debug-addr mux via DefaultServeMux
	"os"
	"runtime/metrics"
	"sort"
	"strings"
	"sync"

	"repro/internal/cpu"
	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/treecode"
)

// Driver is the flag and output plumbing shared by the cmd/ binaries.
// Every driver gets the same observability surface:
//
//	-procs N         host worker count for parallel phases
//	-engine E        treecode force engine (auto/list/recursive/group/dual)
//	-error-budget B  force-error budget steering the auto engine choice
//	-obs-json PATH   write the run's obs snapshot as JSON
//	-obs-csv PATH    write the run's obs snapshot as CSV
//	-trace PATH      write a Chrome trace_event JSON trace
//	-format F        text (tables, default) or json (snapshot envelope)
//	-debug-addr A    serve net/http/pprof and runtime/metrics
//
// Usage: NewDriver(name) before flag.Parse, then Setup() after, Textf for
// human output, and Finish() last to emit the artifacts.
type Driver struct {
	Name      string
	Procs     int
	Gears     bool
	ObsJSON   string
	ObsCSV    string
	TracePath string
	Format    string
	DebugAddr string

	// EngineName/ErrorBudget/GroupWalk mirror the shared force-engine
	// flags; Engine is the parsed selection, valid after Setup.
	EngineName  string
	ErrorBudget float64
	GroupWalk   bool
	Engine      treecode.Engine
	// TreeReuseName mirrors -tree-reuse; TreeReuse is the parsed mode,
	// valid after Setup.
	TreeReuseName string
	TreeReuse     treecode.ReuseMode

	// Run carries the snapshot and tracer every experiment records into;
	// valid after Setup.
	Run *Run

	debugSrv *http.Server
}

// NewDriver returns a Driver with the shared flags registered on the
// default command-line flag set. The caller still calls flag.Parse.
func NewDriver(name string) *Driver {
	d := &Driver{Name: name}
	d.RegisterFlags(flag.CommandLine)
	return d
}

// RegisterFlags registers the shared observability flags on fs; split
// out of NewDriver so tests can drive a private FlagSet.
func (d *Driver) RegisterFlags(fs *flag.FlagSet) {
	fs.IntVar(&d.Procs, "procs", 0, "host workers for parallel phases (0 = all cores); results are identical at any width")
	fs.BoolVar(&d.Gears, "gears", false, "run simulated Crusoe CPUs with the tiered CMS pipeline (quick translate → superblock reoptimize, chained)")
	fs.StringVar(&d.ObsJSON, "obs-json", "", "write the run's obs snapshot as JSON to this `path`")
	fs.StringVar(&d.ObsCSV, "obs-csv", "", "write the run's obs snapshot as CSV to this `path`")
	fs.StringVar(&d.TracePath, "trace", "", "write a Chrome trace_event JSON trace to this `path` (load in chrome://tracing or Perfetto)")
	fs.StringVar(&d.Format, "format", "text", "output `format`: text or json")
	fs.StringVar(&d.DebugAddr, "debug-addr", "", "serve net/http/pprof and runtime/metrics on this `address` (e.g. localhost:6060)")
	fs.StringVar(&d.EngineName, "engine", "auto", "treecode force `engine`: auto, list, recursive, group, or dual")
	fs.Float64Var(&d.ErrorBudget, "error-budget", treecode.DefaultErrorBudget, "force-error budget for -engine auto, in units of the exact walk's own RMS error (< 1 pins the bit-exact list engine)")
	fs.BoolVar(&d.GroupWalk, "groupwalk", false, "deprecated alias for -engine group")
	fs.StringVar(&d.TreeReuseName, "tree-reuse", "auto", "incremental tree maintenance across steps: auto, on, or off (auto maintains the tree; results are bit-identical either way)")
}

// Setup validates the flags, applies -procs, and creates the Run (with a
// tracer when -trace is set). Call after flag parsing.
func (d *Driver) Setup() error {
	switch d.Format {
	case "text", "json":
	default:
		return fmt.Errorf("%s: unknown -format %q (want text or json)", d.Name, d.Format)
	}
	if d.Procs < 0 {
		return fmt.Errorf("%s: negative -procs", d.Name)
	}
	if d.Procs > 0 {
		par.SetWorkers(d.Procs)
	}
	engine, err := treecode.ParseEngine(d.EngineName)
	if err != nil {
		return fmt.Errorf("%s: %w", d.Name, err)
	}
	if engine == treecode.EngineAuto && d.GroupWalk {
		engine = treecode.EngineGroup
		groupWalkWarnOnce.Do(func() {
			fmt.Fprintf(os.Stderr, "%s: warning: -groupwalk is deprecated; use -engine group\n", d.Name)
		})
	}
	d.Engine = treecode.ResolveEngine(engine, d.ErrorBudget)
	reuse, err := treecode.ParseReuseMode(d.TreeReuseName)
	if err != nil {
		return fmt.Errorf("%s: %w", d.Name, err)
	}
	d.TreeReuse = reuse
	if d.Gears {
		cpu.SetGears(true)
	}
	d.Run = NewRun()
	d.Run.Snap.SetMeta("driver", d.Name)
	d.Run.Snap.SetMeta("args", strings.Join(os.Args[1:], " "))
	d.Run.Snap.SetMeta("workers", fmt.Sprintf("%d", par.Workers()))
	d.Run.Snap.SetMeta("engine", d.Engine.String())
	d.Run.Snap.SetMeta("tree_reuse", d.TreeReuse.String())
	if d.TracePath != "" {
		t := obs.NewTracer()
		t.NameProcess(obs.PidHost, "host (wall clock)")
		t.NameProcess(obs.PidCMS, "cms (VLIW cycles as µs)")
		t.NameProcess(obs.PidSim, "cluster (virtual seconds as s; tid = rank)")
		d.Run.Tracer = t
	}
	if d.DebugAddr != "" {
		d.startDebugServer()
	}
	return nil
}

// startDebugServer serves pprof (via the net/http/pprof side effect on
// the default mux) plus a plain-text runtime/metrics dump and the live
// snapshot, on a best-effort background listener.
func (d *Driver) startDebugServer() {
	mux := http.DefaultServeMux
	mux.HandleFunc("/debug/runtime-metrics", func(w http.ResponseWriter, _ *http.Request) {
		descs := metrics.All()
		samples := make([]metrics.Sample, len(descs))
		for i, de := range descs {
			samples[i].Name = de.Name
		}
		metrics.Read(samples)
		sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
		for _, s := range samples {
			switch s.Value.Kind() {
			case metrics.KindUint64:
				fmt.Fprintf(w, "%s %d\n", s.Name, s.Value.Uint64())
			case metrics.KindFloat64:
				fmt.Fprintf(w, "%s %g\n", s.Name, s.Value.Float64())
			}
		}
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		snap := d.Run.Snap
		snap.Gather(cpu.CalibMemoSource())
		snap.Gather(treecode.ListTelemetry())
		snap.Gather(nbody.RungTelemetry())
		_ = snap.WriteJSON(w)
	})
	d.debugSrv = &http.Server{Addr: d.DebugAddr, Handler: mux}
	go func() {
		if err := d.debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "%s: debug server: %v\n", d.Name, err)
		}
	}()
}

// groupWalkWarnOnce keeps the -groupwalk deprecation notice to a single
// line per process, however many drivers or flag sets parse it.
var groupWalkWarnOnce sync.Once

// SpecEngine returns the driver's force-engine flags as the spec API's
// engine selection, unresolved: the spec's own normalization folds the
// deprecated -groupwalk alias and the error budget exactly as Setup
// does, so CLI and HTTP submissions of the same selection hash alike.
func (d *Driver) SpecEngine() EngineSpec {
	return EngineSpec{Engine: d.EngineName, ErrorBudget: d.ErrorBudget, GroupWalk: d.GroupWalk,
		TreeReuse: d.TreeReuseName}
}

// RunSpec canonicalizes, validates and executes a spec on the driver's
// Run, printing its text rendering — the shared experiment path every
// cmd driver funnels through.
func (d *Driver) RunSpec(s ExperimentSpec) (*SpecResult, error) {
	res, err := RunSpec(d.Run, s)
	if err != nil {
		return nil, err
	}
	d.Textf("%s", res.Text)
	return res, nil
}

// Textf prints human-readable output — only in the default text format,
// so -format json emits nothing but the snapshot envelope on stdout.
func (d *Driver) Textf(format string, a ...any) {
	if d.Format == "text" {
		fmt.Printf(format, a...)
	}
}

// Finish gathers the process-wide sources, writes the requested
// artifacts, and (for -format json) prints the snapshot envelope to
// stdout. Call once, after the experiments.
func (d *Driver) Finish() error {
	d.Run.Snap.Gather(cpu.CalibMemoSource())
	d.Run.Snap.Gather(treecode.ListTelemetry())
	d.Run.Snap.Gather(nbody.RungTelemetry())
	if d.ObsJSON != "" {
		if err := writeFileWith(d.ObsJSON, d.Run.Snap.WriteJSON); err != nil {
			return fmt.Errorf("%s: obs-json: %w", d.Name, err)
		}
	}
	if d.ObsCSV != "" {
		if err := writeFileWith(d.ObsCSV, d.Run.Snap.WriteCSV); err != nil {
			return fmt.Errorf("%s: obs-csv: %w", d.Name, err)
		}
	}
	if d.TracePath != "" && d.Run.Tracer != nil {
		if err := writeFileWith(d.TracePath, d.Run.Tracer.WriteJSON); err != nil {
			return fmt.Errorf("%s: trace: %w", d.Name, err)
		}
	}
	if d.Format == "json" {
		if err := d.Run.Snap.WriteJSON(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	if d.debugSrv != nil {
		_ = d.debugSrv.Close()
	}
	return nil
}

// Check aborts the driver on error with a uniform message.
func (d *Driver) Check(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", d.Name, err)
		os.Exit(1)
	}
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
