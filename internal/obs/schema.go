package obs

import (
	"encoding/json"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// SnapshotSchema is the checked-in contract a snapshot JSON artifact
// must satisfy (schema/obs_snapshot_v1.json). CI runs a driver and
// validates its -obs-json output against it, so accidentally renaming a
// metric — the classic API-drift failure — breaks the build instead of
// silently breaking downstream comparisons.
type SnapshotSchema struct {
	// Schema is the exact envelope version string required.
	Schema string `json:"schema"`
	// NamePattern is the regexp every metric name must match.
	NamePattern string `json:"name_pattern"`
	// Kinds enumerates the allowed sample kinds.
	Kinds []string `json:"kinds"`
	// RequiredMeta lists metadata keys that must be present.
	RequiredMeta []string `json:"required_meta"`
	// RequiredSamples lists metric names that must be present.
	RequiredSamples []string `json:"required_samples"`
}

// snapshotEnvelope mirrors WriteJSON's output for validation.
type snapshotEnvelope struct {
	Schema  string            `json:"schema"`
	Meta    map[string]string `json:"meta"`
	Samples []struct {
		Name  string       `json:"name"`
		Kind  string       `json:"kind"`
		Unit  string       `json:"unit"`
		Value *json.Number `json:"value"`
	} `json:"samples"`
}

// ValidateSnapshotJSON checks a snapshot JSON artifact against a schema
// document, returning a descriptive error on the first violation.
func ValidateSnapshotJSON(schemaJSON, snapshotJSON []byte) error {
	var sc SnapshotSchema
	if err := json.Unmarshal(schemaJSON, &sc); err != nil {
		return fmt.Errorf("obs: bad schema document: %w", err)
	}
	if sc.Schema == "" {
		return fmt.Errorf("obs: schema document missing \"schema\"")
	}
	namePat, err := regexp.Compile(sc.NamePattern)
	if err != nil {
		return fmt.Errorf("obs: bad name_pattern: %w", err)
	}
	kinds := map[string]bool{}
	for _, k := range sc.Kinds {
		kinds[k] = true
	}

	var env snapshotEnvelope
	dec := json.NewDecoder(strings.NewReader(string(snapshotJSON)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return fmt.Errorf("obs: snapshot is not a valid envelope: %w", err)
	}
	if env.Schema != sc.Schema {
		return fmt.Errorf("obs: snapshot schema %q, want %q", env.Schema, sc.Schema)
	}
	for _, key := range sc.RequiredMeta {
		if _, ok := env.Meta[key]; !ok {
			return fmt.Errorf("obs: missing required meta key %q", key)
		}
	}
	seen := map[string]bool{}
	for i, sm := range env.Samples {
		if sm.Name == "" {
			return fmt.Errorf("obs: sample %d has no name", i)
		}
		if seen[sm.Name] {
			return fmt.Errorf("obs: duplicate sample %q", sm.Name)
		}
		seen[sm.Name] = true
		if sc.NamePattern != "" && !namePat.MatchString(sm.Name) {
			return fmt.Errorf("obs: sample name %q does not match %q", sm.Name, sc.NamePattern)
		}
		if len(kinds) > 0 && !kinds[sm.Kind] {
			return fmt.Errorf("obs: sample %q has unknown kind %q", sm.Name, sm.Kind)
		}
		if sm.Value == nil {
			continue // non-finite floats serialize as null
		}
		if sm.Kind == KindCounter.String() {
			// Counters are uint64; json.Number.Int64 tops out at MaxInt64.
			if _, err := strconv.ParseUint(sm.Value.String(), 10, 64); err != nil {
				return fmt.Errorf("obs: counter %q is not an integer: %v", sm.Name, *sm.Value)
			}
		}
	}
	var missing []string
	for _, name := range sc.RequiredSamples {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("obs: missing required samples: %s", strings.Join(missing, ", "))
	}
	return nil
}
