package obs

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The tracer records scoped spans and instant events and emits Chrome
// trace_event JSON (the format chrome://tracing and Perfetto load).
// One trace file multiplexes several time domains as separate trace
// "processes":
//
//   - PidHost:   real wall-clock on the host, in microseconds.
//   - PidCMS:    the simulated Crusoe, one VLIW cycle rendered as one
//     microsecond tick.
//   - PidSim:    the simulated cluster's virtual time (mpi rank clocks),
//     one simulated microsecond per microsecond tick; tids are ranks.
//
// Every method is nil-safe: a nil *Tracer no-ops, so subsystems carry
// optional Tracer fields without branching at call sites beyond the
// cheap nil check the methods do themselves.
const (
	PidHost = 1
	PidCMS  = 2
	PidSim  = 3
)

type traceEvent struct {
	name string
	cat  string
	ph   byte // 'X' complete, 'i' instant, 'M' metadata
	pid  int
	tid  int
	ts   float64 // microseconds
	dur  float64 // microseconds, 'X' only
	args map[string]any
}

// Tracer is a thread-safe event-trace recorder.
type Tracer struct {
	mu     sync.Mutex
	clock  func() float64 // microseconds since tracer creation
	events []traceEvent
}

// NewTracer returns a tracer whose wall-clock spans (Begin/End) read
// the host monotonic clock.
func NewTracer() *Tracer {
	start := time.Now()
	return &Tracer{clock: func() float64 {
		return float64(time.Since(start)) / float64(time.Microsecond)
	}}
}

// NewTracerWithClock returns a tracer with a caller-supplied clock
// returning microseconds — deterministic traces for golden tests.
func NewTracerWithClock(clock func() float64) *Tracer {
	return &Tracer{clock: clock}
}

// Now returns the tracer's wall clock in microseconds (0 on nil).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return t.clock()
}

// Events returns the number of recorded events (0 on nil).
func (t *Tracer) Events() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

func (t *Tracer) add(e traceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// NameProcess labels a trace process (time domain) in the viewer.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.add(traceEvent{name: "process_name", ph: 'M', pid: pid,
		args: map[string]any{"name": name}})
}

// NameThread labels a thread (an mpi rank, a pipeline stage) within a
// process.
func (t *Tracer) NameThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.add(traceEvent{name: "thread_name", ph: 'M', pid: pid, tid: tid,
		args: map[string]any{"name": name}})
}

// Complete records a span with explicit timestamps (microseconds) — the
// entry point for simulated time domains, where the caller owns the
// clock (CMS cycle counts, mpi virtual seconds).
func (t *Tracer) Complete(pid, tid int, cat, name string, tsUS, durUS float64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(traceEvent{name: name, cat: cat, ph: 'X', pid: pid, tid: tid,
		ts: tsUS, dur: durUS, args: args})
}

// Instant records a point event with an explicit timestamp.
func (t *Tracer) Instant(pid, tid int, cat, name string, tsUS float64, args map[string]any) {
	if t == nil {
		return
	}
	t.add(traceEvent{name: name, cat: cat, ph: 'i', pid: pid, tid: tid,
		ts: tsUS, args: args})
}

// Span is an open wall-clock span returned by Begin; End closes it. The
// zero Span (from a nil tracer) no-ops.
type Span struct {
	t    *Tracer
	pid  int
	tid  int
	cat  string
	name string
	ts   float64
}

// Begin opens a wall-clock span on the tracer's own clock.
func (t *Tracer) Begin(pid, tid int, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, pid: pid, tid: tid, cat: cat, name: name, ts: t.clock()}
}

// End closes the span, attaching optional args.
func (sp Span) End(args map[string]any) {
	if sp.t == nil {
		return
	}
	sp.t.Complete(sp.pid, sp.tid, sp.cat, sp.name, sp.ts, sp.t.clock()-sp.ts, args)
}

// WriteJSON emits the trace in Chrome trace_event "JSON object format":
// {"traceEvents":[...],"displayTimeUnit":"ms"}. Metadata events come
// first; the rest keep insertion order. Load the file in
// chrome://tracing or https://ui.perfetto.dev.
func (t *Tracer) WriteJSON(w io.Writer) error {
	var events []traceEvent
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
	}
	sort.SliceStable(events, func(a, b int) bool {
		return events[a].ph == 'M' && events[b].ph != 'M'
	})
	var b strings.Builder
	b.WriteString("{\"traceEvents\": [")
	for i, e := range events {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  ")
		writeTraceEvent(&b, e)
	}
	if len(events) > 0 {
		b.WriteString("\n")
	}
	b.WriteString("], \"displayTimeUnit\": \"ms\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeTraceEvent(b *strings.Builder, e traceEvent) {
	b.WriteString("{\"name\": ")
	b.WriteString(quoteJSON(e.name))
	if e.cat != "" {
		b.WriteString(", \"cat\": ")
		b.WriteString(quoteJSON(e.cat))
	}
	b.WriteString(", \"ph\": ")
	b.WriteString(quoteJSON(string(e.ph)))
	b.WriteString(", \"pid\": ")
	b.WriteString(strconv.Itoa(e.pid))
	b.WriteString(", \"tid\": ")
	b.WriteString(strconv.Itoa(e.tid))
	if e.ph != 'M' {
		b.WriteString(", \"ts\": ")
		b.WriteString(strconv.FormatFloat(e.ts, 'f', 3, 64))
	}
	if e.ph == 'X' {
		b.WriteString(", \"dur\": ")
		b.WriteString(strconv.FormatFloat(e.dur, 'f', 3, 64))
	}
	if e.ph == 'i' {
		b.WriteString(", \"s\": \"t\"")
	}
	if len(e.args) > 0 {
		b.WriteString(", \"args\": ")
		keys := make([]string, 0, len(e.args))
		for k := range e.args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteString("{")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(quoteJSON(k))
			b.WriteString(": ")
			v, err := json.Marshal(e.args[k])
			if err != nil {
				v = []byte(`"?"`)
			}
			b.Write(v)
		}
		b.WriteString("}")
	}
	b.WriteString("}")
}
