package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
)

// SchemaVersion identifies the snapshot JSON envelope layout; bumped
// only on incompatible changes.
const SchemaVersion = "repro/obs/v1"

// Sample is one metric with its value. Counters carry Int; timers and
// gauges carry Float.
type Sample struct {
	Metric
	Int   uint64
	Float float64
}

// Number renders the value canonically: counters as exact decimal
// integers, floats in shortest round-trip form. This is the one place
// snapshot values become text, so JSON, CSV and tables always agree.
func (s Sample) Number() string {
	if s.Kind == KindCounter {
		return strconv.FormatUint(s.Int, 10)
	}
	return strconv.FormatFloat(s.Float, 'g', -1, 64)
}

// snapshotState is the shared storage behind a Snapshot and all its
// Prefixed views.
type snapshotState struct {
	mu      sync.Mutex
	meta    map[string]string
	index   map[string]int
	samples []Sample
}

// Snapshot is an ordered set of samples plus run metadata. The zero
// value is not usable; call NewSnapshot. A Snapshot may be shared across
// goroutines (every mutation takes an internal lock), but deterministic
// output requires callers to gather in a deterministic order — the
// drivers gather from a single goroutine.
type Snapshot struct {
	prefix string
	st     *snapshotState
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{st: &snapshotState{
		meta:  map[string]string{},
		index: map[string]int{},
	}}
}

// Prefixed returns a view of the same snapshot that prepends prefix to
// every metric name it writes — how per-configuration series
// ("table2.p08.", "nas.ep.") share one namespace without colliding.
func (s *Snapshot) Prefixed(prefix string) *Snapshot {
	return &Snapshot{prefix: s.prefix + prefix, st: s.st}
}

// SetMeta records a key/value pair of run metadata (driver name,
// arguments, config). Metadata is exported but never merged.
func (s *Snapshot) SetMeta(key, value string) {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	s.st.meta[key] = value
}

// Meta returns a copy of the metadata map.
func (s *Snapshot) Meta() map[string]string {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	out := make(map[string]string, len(s.st.meta))
	for k, v := range s.st.meta {
		out[k] = v
	}
	return out
}

// upsert applies fn to the existing sample for the metric, inserting a
// zero-valued one first if absent. The first writer fixes the metric's
// kind/unit/help.
func (s *Snapshot) upsert(m Metric, fn func(*Sample)) {
	m.Name = s.prefix + m.Name
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	i, ok := s.st.index[m.Name]
	if !ok {
		i = len(s.st.samples)
		s.st.index[m.Name] = i
		s.st.samples = append(s.st.samples, Sample{Metric: m})
	}
	fn(&s.st.samples[i])
}

// AddCounter accumulates v into a counter (delta semantics: gathering
// the same source across a sweep sums its contributions).
func (s *Snapshot) AddCounter(name, unit, help string, v uint64) {
	s.upsert(Metric{Name: name, Kind: KindCounter, Unit: unit, Help: help},
		func(sm *Sample) { sm.Int += v })
}

// SetCounter overwrites a counter (live cumulative semantics: the
// source already holds the process-wide total).
func (s *Snapshot) SetCounter(name, unit, help string, v uint64) {
	s.upsert(Metric{Name: name, Kind: KindCounter, Unit: unit, Help: help},
		func(sm *Sample) { sm.Int = v })
}

// AddTimer accumulates seconds into a timer.
func (s *Snapshot) AddTimer(name, help string, seconds float64) {
	s.upsert(Metric{Name: name, Kind: KindTimer, Unit: "s", Help: help},
		func(sm *Sample) { sm.Float += seconds })
}

// SetGauge overwrites a gauge.
func (s *Snapshot) SetGauge(name, unit, help string, v float64) {
	s.upsert(Metric{Name: name, Kind: KindGauge, Unit: unit, Help: help},
		func(sm *Sample) { sm.Float = v })
}

// MaxGauge keeps the maximum of the gathered values — makespans
// (mpi.time.max) across a sweep of world sizes.
func (s *Snapshot) MaxGauge(name, unit, help string, v float64) {
	s.upsert(Metric{Name: name, Kind: KindGauge, Unit: unit, Help: help},
		func(sm *Sample) {
			if v > sm.Float {
				sm.Float = v
			}
		})
}

// Lookup returns the sample with the given (prefixed) name.
func (s *Snapshot) Lookup(name string) (Sample, bool) {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	i, ok := s.st.index[s.prefix+name]
	if !ok {
		return Sample{}, false
	}
	return s.st.samples[i], true
}

// Counter returns the integer value of a counter sample (0 if absent).
func (s *Snapshot) Counter(name string) uint64 {
	sm, _ := s.Lookup(name)
	return sm.Int
}

// Samples returns the samples sorted by name — the canonical,
// machine-diffable order every exporter uses.
func (s *Snapshot) Samples() []Sample {
	s.st.mu.Lock()
	out := append([]Sample(nil), s.st.samples...)
	s.st.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Name < out[b].Name })
	return out
}

// Len returns the number of samples.
func (s *Snapshot) Len() int {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	return len(s.st.samples)
}

// Gather collects every source into the snapshot, in argument order.
func (s *Snapshot) Gather(sources ...Source) {
	for _, src := range sources {
		if src != nil {
			src.Collect(s)
		}
	}
}

// WriteJSON writes the snapshot envelope:
//
//	{"schema":"repro/obs/v1","meta":{...},"samples":[{"name":...,"kind":...,"unit":...,"value":...},...]}
//
// Samples are sorted by name; counters serialize as exact integers, so
// two runs diff cleanly. Non-finite floats serialize as null.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\n  \"schema\": ")
	b.WriteString(quoteJSON(SchemaVersion))
	b.WriteString(",\n  \"meta\": {")
	meta := s.Meta()
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n    ")
		b.WriteString(quoteJSON(k))
		b.WriteString(": ")
		b.WriteString(quoteJSON(meta[k]))
	}
	if len(keys) > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("},\n  \"samples\": [")
	for i, sm := range s.Samples() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n    {\"name\": ")
		b.WriteString(quoteJSON(sm.Name))
		b.WriteString(", \"kind\": ")
		b.WriteString(quoteJSON(sm.Kind.String()))
		b.WriteString(", \"unit\": ")
		b.WriteString(quoteJSON(sm.Unit))
		b.WriteString(", \"value\": ")
		b.WriteString(jsonNumber(sm))
		b.WriteString("}")
	}
	if s.Len() > 0 {
		b.WriteString("\n  ")
	}
	b.WriteString("]\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func jsonNumber(sm Sample) string {
	if sm.Kind != KindCounter && (math.IsNaN(sm.Float) || math.IsInf(sm.Float, 0)) {
		return "null"
	}
	return sm.Number()
}

func quoteJSON(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // strings cannot fail to marshal
		return `""`
	}
	return string(b)
}

// WriteCSV writes "name,kind,unit,value" rows sorted by name, with a
// header line.
func (s *Snapshot) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("name,kind,unit,value\n")
	for _, sm := range s.Samples() {
		b.WriteString(csvField(sm.Name))
		b.WriteByte(',')
		b.WriteString(sm.Kind.String())
		b.WriteByte(',')
		b.WriteString(csvField(sm.Unit))
		b.WriteByte(',')
		b.WriteString(sm.Number())
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Table renders the snapshot (or, with prefixes, the matching subset)
// as an aligned text table — the adapter the drivers use instead of
// constructing metrics.Table cell by cell.
func (s *Snapshot) Table(title string, prefixes ...string) *metrics.Table {
	t := metrics.NewTable(title, "Metric", "Value", "Unit")
	for _, sm := range s.Samples() {
		if len(prefixes) > 0 {
			keep := false
			for _, p := range prefixes {
				if strings.HasPrefix(sm.Name, p) {
					keep = true
					break
				}
			}
			if !keep {
				continue
			}
		}
		t.AddRow(sm.Name, sm.Number(), sm.Unit)
	}
	return t
}

// String renders the full snapshot as a table (for debugging).
func (s *Snapshot) String() string {
	return s.Table("obs snapshot").String()
}
