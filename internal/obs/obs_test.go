package obs

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/par"
)

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"633-MHz Transmeta TM5600": "633_mhz_transmeta_tm5600",
		"Green Destiny":            "green_destiny",
		"already_clean.name":       "already_clean_name",
		"  spaces  ":               "spaces",
		"":                         "",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSnapshotSemantics(t *testing.T) {
	s := NewSnapshot()
	s.AddCounter("c", "", "counter", 3)
	s.AddCounter("c", "", "counter", 4)
	if got := s.Counter("c"); got != 7 {
		t.Fatalf("AddCounter accumulate: got %d", got)
	}
	s.SetCounter("c", "", "counter", 5)
	if got := s.Counter("c"); got != 5 {
		t.Fatalf("SetCounter overwrite: got %d", got)
	}
	s.MaxGauge("m", "s", "max", 2)
	s.MaxGauge("m", "s", "max", 1)
	sm, ok := s.Lookup("m")
	if !ok || sm.Float != 2 {
		t.Fatalf("MaxGauge kept %v", sm.Float)
	}
	s.AddTimer("t", "timer", 0.5)
	s.AddTimer("t", "timer", 0.25)
	sm, _ = s.Lookup("t")
	if sm.Float != 0.75 {
		t.Fatalf("AddTimer accumulate: got %v", sm.Float)
	}
}

func TestPrefixedSharesStorage(t *testing.T) {
	s := NewSnapshot()
	p := s.Prefixed("sub.")
	p.AddCounter("x", "", "", 2)
	if got := s.Counter("sub.x"); got != 2 {
		t.Fatalf("prefixed write not visible at root: %d", got)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

// TestShardedMergeDeterminism is the obs half of the repo's determinism
// contract: per-chunk accumulation merged in slot order must be
// bit-identical at any worker width, for integer counters and for
// float timers (where reassociation would otherwise change the sum).
func TestShardedMergeDeterminism(t *testing.T) {
	const n, grain = 100000, 1024
	nc := par.NumChunks(n, grain)
	run := func(workers int) (uint64, float64) {
		p := par.New(workers)
		c := NewShardedCounter(nc)
		tm := NewShardedTimer(nc)
		p.ForChunks(n, grain, func(ch, lo, hi int) {
			for i := lo; i < hi; i++ {
				c.Add(ch, uint64(i%7))
				tm.Add(ch, 1.0/float64(i+1))
			}
		})
		return c.Value(), tm.Total()
	}
	c1, t1 := run(1)
	for _, w := range []int{2, 8} {
		cw, tw := run(w)
		if cw != c1 {
			t.Fatalf("counter differs at width %d: %d vs %d", w, cw, c1)
		}
		if math.Float64bits(tw) != math.Float64bits(t1) {
			t.Fatalf("timer not bit-identical at width %d: %x vs %x",
				w, math.Float64bits(tw), math.Float64bits(t1))
		}
	}
}

// TestShardedCounterConcurrent drives disjoint shards from many
// goroutines; run under -race this proves the single-owner-per-shard
// write pattern is race-free.
func TestShardedCounterConcurrent(t *testing.T) {
	const shards, per = 64, 10000
	c := NewShardedCounter(shards)
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(sh)
			}
		}(sh)
	}
	wg.Wait()
	if got := c.Value(); got != shards*per {
		t.Fatalf("lost updates: %d", got)
	}
}

func TestRegistryCollect(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reg.hits", "", "hits")
	g := r.Gauge("reg.level", "s", "level")
	c.Add(3)
	g.Set(1.5)
	if r.Counter("reg.hits", "", "") != c {
		t.Fatal("Counter not idempotent per name")
	}
	s := NewSnapshot()
	s.Gather(r)
	s.Gather(r) // live cumulative: gathering twice must not double
	if got := s.Counter("reg.hits"); got != 3 {
		t.Fatalf("registry counter = %d", got)
	}
	sm, _ := s.Lookup("reg.level")
	if sm.Float != 1.5 {
		t.Fatalf("registry gauge = %v", sm.Float)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Complete(PidHost, 0, "c", "n", 0, 1, nil)
	tr.Instant(PidHost, 0, "c", "n", 0, nil)
	sp := tr.Begin(PidHost, 0, "c", "n")
	sp.End(map[string]any{"k": 1})
	tr.NameProcess(PidHost, "x")
	if tr.Events() != 0 {
		t.Fatal("nil tracer recorded events")
	}
	if err := tr.WriteJSON(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Complete(PidHost, g, "t", "e", float64(i), 1, nil)
			}
		}(g)
	}
	wg.Wait()
	if tr.Events() != 8*500 {
		t.Fatalf("events = %d", tr.Events())
	}
}
