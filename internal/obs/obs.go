// Package obs is the unified observability layer: one instrumentation
// vocabulary (named counters, timers and gauges), one machine-readable
// snapshot format, and one event-trace recorder shared by every
// simulator in the repo (CMS/VLIW, mpi/netsim, the treecode) and every
// cmd/ driver.
//
// The paper's argument rests on measured numbers — per-benchmark Mflops,
// NPB Mop/s, treecode interaction counts, TCO/ToPPeR — and before this
// package each subsystem reported them through an ad-hoc struct while
// the drivers printed hand-rolled text. obs gives every run a common
// export path: subsystems implement Source, drivers gather Sources into
// a Snapshot, and the Snapshot serializes to JSON, CSV or a text table.
// The trace recorder emits Chrome trace_event JSON loadable in
// chrome://tracing or Perfetto.
//
// Determinism contract (mirrors internal/par): sharded counters and
// timers are merged by summing slots in slot order, and shard counts are
// a pure function of the problem size — never of the worker count — so
// every exported counter is bit-identical across host worker widths
// 1, 2, 8, GOMAXPROCS, ... Wall-clock timers are the one exception: they
// measure the host, and only they may vary between runs.
package obs

import "strings"

// Kind classifies a metric.
type Kind uint8

const (
	// KindCounter is a monotonic uint64 event count (instructions,
	// interactions, bytes). Counters are exact integers and must be
	// bit-identical across host worker widths.
	KindCounter Kind = iota
	// KindTimer is an accumulated duration in seconds. Wall-clock timers
	// vary run to run; virtual-time timers (simulated seconds) are
	// deterministic.
	KindTimer
	// KindGauge is a point-in-time float64 measurement (Mflops, cache
	// occupancy, ratios).
	KindGauge
)

// String returns the JSON/CSV spelling of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindTimer:
		return "timer"
	case KindGauge:
		return "gauge"
	}
	return "unknown"
}

// Metric describes one named measurement.
type Metric struct {
	// Name is the stable machine-readable identifier, lowercase
	// dot-separated ("cms.cycles.total"). Renaming a metric is an API
	// break caught by the schema check in CI.
	Name string
	Kind Kind
	// Unit is the value's unit ("cycles", "bytes", "s", "Mflops"); empty
	// for dimensionless counts.
	Unit string
	// Help is a one-line human description.
	Help string
}

// Source is the one interface through which every subsystem exports its
// telemetry: cms.Machine, mpi.World, treecode trees and forcers, and the
// cpu calibration memo all implement it, replacing the four incompatible
// field-poking paths the drivers used to scrape.
type Source interface {
	// Describe lists the metrics Collect may write, for discovery and
	// schema generation. It must not depend on run state.
	Describe() []Metric
	// Collect writes current values into the snapshot. Sources with
	// per-run delta semantics accumulate (AddCounter/AddTimer); live
	// cumulative sources overwrite (SetCounter/SetGauge).
	Collect(s *Snapshot)
}

// SanitizeName converts free text (a processor or kernel name) into a
// metric-name segment: lowercase, with every run of non-alphanumeric
// characters collapsed to a single underscore.
func SanitizeName(s string) string {
	var b strings.Builder
	underscore := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			if underscore && b.Len() > 0 {
				b.WriteByte('_')
			}
			underscore = false
			b.WriteRune(r)
		default:
			underscore = true
		}
	}
	return b.String()
}
