package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenSnapshot builds a snapshot with one metric of every kind plus
// the serializer's edge cases (exact large counters, NaN gauge, quoted
// CSV help text).
func goldenSnapshot() *Snapshot {
	s := NewSnapshot()
	s.SetMeta("driver", "golden")
	s.SetMeta("args", "-x 1")
	s.AddCounter("cms.cycles.total", "cycles", "total VLIW cycles", 18446744073709551615)
	s.AddCounter("treecode.interactions", "", "total interactions", 9808296)
	s.AddTimer("host.build", "tree build wall time", 0.125)
	s.SetGauge("mpi.time.max", "s", "slowest rank, \"makespan\"", 0.42658361463054506)
	s.SetGauge("weird.nan", "", "non-finite serializes as null", math.NaN())
	return s
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run go test ./internal/obs -update-golden to create)", err)
	}
	if got != string(want) {
		t.Fatalf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestSnapshotJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenSnapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json", b.String())
}

func TestSnapshotCSVGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenSnapshot().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.csv", b.String())
}

func TestTraceJSONGolden(t *testing.T) {
	clock := 0.0
	tr := NewTracerWithClock(func() float64 { clock += 100; return clock })
	tr.NameProcess(PidHost, "host (wall clock)")
	tr.NameThread(PidSim, 0, "rank 0")
	sp := tr.Begin(PidHost, 0, "treecode", "build")
	sp.End(map[string]any{"nodes": 42, "label": "tree"})
	tr.Complete(PidCMS, 0, "cms", "translate", 1000, 250.5, map[string]any{"pc": 16})
	tr.Instant(PidCMS, 0, "cms", "evict", 2000, nil)
	tr.Complete(PidSim, 3, "mpi", "send", 0.5, 12.25, map[string]any{"bytes": 4096, "dst": 1})
	var b strings.Builder
	if err := tr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.json", b.String())
}

// TestGoldenSnapshotValidates pins the golden artifact against the
// checked-in schema's envelope rules (not its required-sample list,
// which is for driver runs).
func TestGoldenSnapshotValidates(t *testing.T) {
	schemaJSON, err := os.ReadFile(filepath.Join("..", "..", "schema", "obs_snapshot_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	// Strip the driver-run sample requirements; keep envelope + naming.
	schema := strings.Replace(string(schemaJSON),
		"\"required_samples\": [", "\"required_samples_off\": [", 1)
	if strings.Contains(schema, "\"required_samples\":") {
		t.Fatal("failed to neutralize required_samples")
	}
	var b strings.Builder
	if err := goldenSnapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON([]byte(schema), []byte(b.String())); err != nil {
		t.Fatal(err)
	}
}

func TestValidateSnapshotJSONRejects(t *testing.T) {
	schemaJSON, err := os.ReadFile(filepath.Join("..", "..", "schema", "obs_snapshot_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	// The golden snapshot lacks the driver-run required samples.
	var b strings.Builder
	if err := goldenSnapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateSnapshotJSON(schemaJSON, []byte(b.String())); err == nil ||
		!strings.Contains(err.Error(), "missing required samples") {
		t.Fatalf("want missing-samples error, got %v", err)
	}
	if err := ValidateSnapshotJSON(schemaJSON, []byte(`{"schema":"nope","meta":{},"samples":[]}`)); err == nil {
		t.Fatal("wrong schema version accepted")
	}
	if err := ValidateSnapshotJSON(schemaJSON, []byte(`{"bogus":1}`)); err == nil {
		t.Fatal("unknown envelope fields accepted")
	}
}
