package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Sharded counters and timers are the hot-loop instrumentation
// primitive: one cache-line-padded slot per chunk of an internal/par
// loop, written without atomics or locks (each chunk owns its slot),
// merged by summing slots in slot order. Because par's chunk count is a
// pure function of the problem size and grain — never of the worker
// count — the merged value is bit-identical at any worker width, for
// float timers as well as integer counters.

// shardPad keeps adjacent slots on separate cache lines so concurrent
// workers do not false-share.
const shardPad = 64

type counterSlot struct {
	n uint64
	_ [shardPad - 8]byte
}

// ShardedCounter is a monotonic counter split into independently
// written slots. Slot i may only be written by the owner of chunk i (or
// worker i); Value merges in slot order.
type ShardedCounter struct {
	slots []counterSlot
}

// NewShardedCounter returns a counter with the given number of slots
// (one per par chunk or worker; min 1).
func NewShardedCounter(shards int) *ShardedCounter {
	if shards < 1 {
		shards = 1
	}
	return &ShardedCounter{slots: make([]counterSlot, shards)}
}

// Add adds n to the shard's slot. Not atomic: exactly one goroutine may
// own a shard at a time (par's chunk ownership guarantees this).
func (c *ShardedCounter) Add(shard int, n uint64) { c.slots[shard].n += n }

// Inc adds one to the shard's slot.
func (c *ShardedCounter) Inc(shard int) { c.slots[shard].n++ }

// Shards returns the slot count.
func (c *ShardedCounter) Shards() int { return len(c.slots) }

// Value merges the slots in slot order. Call after the parallel section
// completes (it does not synchronize with writers).
func (c *ShardedCounter) Value() uint64 {
	var v uint64
	for i := range c.slots {
		v += c.slots[i].n
	}
	return v
}

// Reset zeroes every slot.
func (c *ShardedCounter) Reset() {
	for i := range c.slots {
		c.slots[i].n = 0
	}
}

type timerSlot struct {
	sec float64
	_   [shardPad - 8]byte
}

// ShardedTimer accumulates seconds per slot; Total folds the slots in
// slot order, so the float sum is bit-identical at any worker width
// (same fixed-shape reduction as par.Reduce).
type ShardedTimer struct {
	slots []timerSlot
}

// NewShardedTimer returns a timer with the given number of slots.
func NewShardedTimer(shards int) *ShardedTimer {
	if shards < 1 {
		shards = 1
	}
	return &ShardedTimer{slots: make([]timerSlot, shards)}
}

// Add accumulates seconds into the shard's slot (single-owner, like
// ShardedCounter.Add).
func (t *ShardedTimer) Add(shard int, seconds float64) { t.slots[shard].sec += seconds }

// Shards returns the slot count.
func (t *ShardedTimer) Shards() int { return len(t.slots) }

// Total merges the slots in slot order.
func (t *ShardedTimer) Total() float64 {
	var v float64
	for i := range t.slots {
		v += t.slots[i].sec
	}
	return v
}

// Reset zeroes every slot.
func (t *ShardedTimer) Reset() {
	for i := range t.slots {
		t.slots[i].sec = 0
	}
}

// Counter is a process-wide atomic counter registered in a Registry —
// for telemetry shared across goroutines without chunk ownership (the
// cpu calibration memo's hits/misses). Integer atomic adds commute, so
// Counters stay deterministic wherever the counted events are.
type Counter struct {
	m Metric
	v atomic.Uint64
}

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Reset zeroes the counter (tests and ablations).
func (c *Counter) Reset() { c.v.Store(0) }

// Registry is a named set of live Counters and Gauges that implements
// Source: Collect overwrites (the registry holds the authoritative
// process-wide values). Subsystem telemetry that used to live in ad-hoc
// package vars becomes a view over a Registry.
type Registry struct {
	mu       sync.Mutex
	order    []string
	counters map[string]*Counter
	gauges   map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]*Counter{}, gauges: map[string]*Gauge{}}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, unit, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{m: Metric{Name: name, Kind: KindCounter, Unit: unit, Help: help}}
	r.counters[name] = c
	r.order = append(r.order, name)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, unit, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{m: Metric{Name: name, Kind: KindGauge, Unit: unit, Help: help}}
	r.gauges[name] = g
	r.order = append(r.order, name)
	return g
}

// Describe implements Source.
func (r *Registry) Describe() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.order))
	for _, name := range r.order {
		if c, ok := r.counters[name]; ok {
			out = append(out, c.m)
		} else if g, ok := r.gauges[name]; ok {
			out = append(out, g.m)
		}
	}
	return out
}

// Collect implements Source, overwriting each metric with its live
// value.
func (r *Registry) Collect(s *Snapshot) {
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	r.mu.Unlock()
	for _, name := range names {
		r.mu.Lock()
		c := r.counters[name]
		g := r.gauges[name]
		r.mu.Unlock()
		if c != nil {
			s.SetCounter(c.m.Name, c.m.Unit, c.m.Help, c.Value())
		} else if g != nil {
			s.SetGauge(g.m.Name, g.m.Unit, g.m.Help, g.Value())
		}
	}
}

// Gauge is a process-wide atomic float64 gauge.
type Gauge struct {
	m    Metric
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }
