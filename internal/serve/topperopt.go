package serve

import (
	"encoding/json"
	"fmt"
)

// TopperOptResultSchema is the checked-in contract a topperopt gateway
// result must satisfy (schema/topperopt_result_v1.json): everything the
// generic result schema requires, plus the kind pin, the fields every
// frontier point must carry, and the optimizer counters the obs payload
// must expose.
type TopperOptResultSchema struct {
	ResultSchema
	Kind                string   `json:"kind"`
	RequiredPointFields []string `json:"required_point_fields"`
	RequiredCounters    []string `json:"required_counters"`
}

// ValidateTopperOptResultJSON layers the topperopt contract on top of
// ValidateResultJSON: the document must be a valid gateway result of
// kind "topperopt", its payload must be a well-formed frontier whose
// points all carry the schema's required fields with the search
// telemetry self-consistent, and its obs snapshot must contain the
// designopt counters.
func ValidateTopperOptResultJSON(schemaJSON, doc []byte) error {
	var sc TopperOptResultSchema
	if err := json.Unmarshal(schemaJSON, &sc); err != nil {
		return fmt.Errorf("serve: bad topperopt schema document: %w", err)
	}
	if sc.Kind == "" || len(sc.RequiredPointFields) == 0 || len(sc.RequiredCounters) == 0 {
		return fmt.Errorf("serve: topperopt schema document missing kind/required_point_fields/required_counters")
	}
	if err := ValidateResultJSON(schemaJSON, doc); err != nil {
		return err
	}

	var rd struct {
		Kind   string `json:"kind"`
		Result struct {
			Data struct {
				Candidates int                          `json:"candidates"`
				Evaluated  int                          `json:"evaluated"`
				Pruned     int                          `json:"pruned"`
				Feasible   int                          `json:"feasible"`
				Frontier   []map[string]json.RawMessage `json:"frontier"`
			} `json:"data"`
		} `json:"result"`
		Obs struct {
			Samples []struct {
				Name string `json:"name"`
			} `json:"samples"`
		} `json:"obs"`
	}
	if err := json.Unmarshal(doc, &rd); err != nil {
		return fmt.Errorf("serve: topperopt result document: %w", err)
	}
	if rd.Kind != sc.Kind {
		return fmt.Errorf("serve: result kind %q, want %q", rd.Kind, sc.Kind)
	}
	d := &rd.Result.Data
	if d.Evaluated+d.Pruned != d.Candidates {
		return fmt.Errorf("serve: topperopt telemetry inconsistent: evaluated %d + pruned %d != candidates %d",
			d.Evaluated, d.Pruned, d.Candidates)
	}
	if len(d.Frontier) == 0 {
		// An empty frontier is legal only when nothing was feasible
		// (e.g. an impossible budget); a feasible sweep must surface at
		// least one non-dominated design.
		if d.Feasible > 0 {
			return fmt.Errorf("serve: topperopt result has %d feasible designs but an empty frontier", d.Feasible)
		}
	}
	for i, pt := range d.Frontier {
		for _, field := range sc.RequiredPointFields {
			if _, ok := pt[field]; !ok {
				return fmt.Errorf("serve: frontier point %d missing field %q", i, field)
			}
		}
	}
	have := make(map[string]bool, len(rd.Obs.Samples))
	for _, s := range rd.Obs.Samples {
		have[s.Name] = true
	}
	for _, c := range sc.RequiredCounters {
		if !have[c] {
			return fmt.Errorf("serve: obs payload missing counter %q", c)
		}
	}
	return nil
}
