package serve

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestValidateResultJSON runs a real job through the executor and
// checks the produced document against the checked-in result schema,
// then corrupts it field by field.
func TestValidateResultJSON(t *testing.T) {
	schemaJSON, err := os.ReadFile(filepath.Join("..", "..", "schema", "gridd_result_v1.json"))
	if err != nil {
		t.Fatal(err)
	}

	s := New(Config{Workers: 1})
	defer s.sched.close()
	spec, err := core.DecodeSpec([]byte(`{"api":"repro/spec/v1","kind":"tco"}`))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := core.CanonicalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := core.SpecHash(canon)
	if err != nil {
		t.Fatal(err)
	}
	j := &job{kind: canon.Kind(), hash: hash, spec: canon, done: make(chan struct{})}
	doc, err := s.execute(j)
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}

	if err := ValidateResultJSON(schemaJSON, doc); err != nil {
		t.Fatalf("real document rejected: %v", err)
	}

	corrupt := func(f func(*resultDoc)) []byte {
		var rd resultDoc
		if err := json.Unmarshal(doc, &rd); err != nil {
			t.Fatal(err)
		}
		f(&rd)
		out, err := json.Marshal(rd)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	cases := map[string][]byte{
		"wrong api":       corrupt(func(rd *resultDoc) { rd.API = "repro/serve/result/v2" }),
		"short hash":      corrupt(func(rd *resultDoc) { rd.SpecHash = "abc123" }),
		"mismatched hash": corrupt(func(rd *resultDoc) { rd.SpecHash = "0000000000000000000000000000000000000000000000000000000000000000" }),
		"kind mismatch":   corrupt(func(rd *resultDoc) { rd.Kind = "table1" }),
		"missing result":  corrupt(func(rd *resultDoc) { rd.Result = nil }),
		"bad obs":         corrupt(func(rd *resultDoc) { rd.Obs = json.RawMessage(`[1,2]`) }),
		"unknown field":   bytes.Replace(doc, []byte(`"api"`), []byte(`"apx"`), 1),
	}
	for name, doc := range cases {
		if err := ValidateResultJSON(schemaJSON, doc); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}
}
