// Package serve is the simulation-as-a-service layer behind cmd/gridd:
// a scheduler that runs core.ExperimentSpec submissions on a bounded
// worker pool with per-tenant fairness and a queue-depth limit, a
// result cache keyed by the spec's canonical hash (the simulator is
// deterministic, so identical submissions are free hits), and the HTTP
// handlers that expose both as a REST/JSON API.
package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrQueueFull rejects a submission when the tenant's queue is at its
// depth limit. The HTTP layer maps it to 429.
var ErrQueueFull = errors.New("serve: tenant queue full")

// ErrClosed rejects submissions after shutdown has begun. The HTTP
// layer maps it to 503.
var ErrClosed = errors.New("serve: shutting down")

// jobStatus is the lifecycle of one submission.
type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// job is one scheduled experiment execution. A job is shared by every
// coalesced submission of the same spec hash; done closes exactly once,
// after which doc/errMsg are immutable.
type job struct {
	id     string
	tenant string
	kind   string
	hash   string
	spec   core.ExperimentSpec

	done    chan struct{}
	status  jobStatus
	doc     []byte // deterministic result document, set on success
	errMsg  string // set on failure
	elapsed time.Duration
}

// scheduler owns the worker pool and the per-tenant queues. Fairness is
// strict round-robin over tenants with pending work: a tenant
// submitting thousands of jobs cannot starve one submitting a single
// job, because each dispatch takes the head of the next non-empty
// tenant queue in rotation.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]*job // per-tenant FIFO
	tenants []string          // rotation order (first-seen)
	rr      int               // round-robin cursor into tenants
	queued  int               // total queued jobs, all tenants
	running int
	depth   int // per-tenant queue-depth limit

	inflight map[string]*job // spec hash → queued-or-running job (single flight)
	jobs     map[string]*job // job id → job, for async polling
	nextID   int

	closed  bool
	wg      sync.WaitGroup
	execute func(*job)
}

func newScheduler(workers, depth int, execute func(*job)) *scheduler {
	s := &scheduler{
		queues:   map[string][]*job{},
		inflight: map[string]*job{},
		jobs:     map[string]*job{},
		depth:    depth,
		execute:  execute,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// submit enqueues a spec for a tenant, or returns the already-queued or
// running job for the same hash (coalesced reports that). The caller
// has already consulted the result cache.
func (s *scheduler) submit(tenant, kind, hash string, spec core.ExperimentSpec) (j *job, coalesced bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if j, ok := s.inflight[hash]; ok {
		return j, true, nil
	}
	if len(s.queues[tenant]) >= s.depth {
		return nil, false, fmt.Errorf("%w: %d jobs queued for %q", ErrQueueFull, len(s.queues[tenant]), tenant)
	}
	s.nextID++
	j = &job{
		id:     fmt.Sprintf("j%06d", s.nextID),
		tenant: tenant,
		kind:   kind,
		hash:   hash,
		spec:   spec,
		done:   make(chan struct{}),
		status: statusQueued,
	}
	if _, seen := s.queues[tenant]; !seen {
		s.tenants = append(s.tenants, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], j)
	s.queued++
	s.inflight[hash] = j
	s.jobs[j.id] = j
	s.cond.Signal()
	return j, false, nil
}

// lookup returns a job by id.
func (s *scheduler) lookup(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// pick pops the next job in tenant rotation. Callers hold s.mu.
func (s *scheduler) pick() *job {
	n := len(s.tenants)
	for i := 0; i < n; i++ {
		idx := (s.rr + i) % n
		tenant := s.tenants[idx]
		q := s.queues[tenant]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		s.queues[tenant] = q[1:]
		s.queued--
		s.rr = idx + 1
		return j
	}
	return nil
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			j = s.pick()
			if j != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		if j == nil {
			s.mu.Unlock()
			return
		}
		j.status = statusRunning
		s.running++
		s.mu.Unlock()

		t0 := time.Now()
		s.runOne(j)
		j.elapsed = time.Since(t0)

		s.mu.Lock()
		s.running--
		delete(s.inflight, j.hash)
		s.mu.Unlock()
		close(j.done)
	}
}

// runOne executes the job's spec, converting panics into failed jobs so
// one poisonous submission cannot take a worker down.
func (s *scheduler) runOne(j *job) {
	defer func() {
		if r := recover(); r != nil {
			j.status = statusFailed
			j.errMsg = fmt.Sprintf("panic: %v", r)
		}
	}()
	s.execute(j)
}

// close stops intake and wakes idle workers; drain waits for the pool.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *scheduler) drain() {
	s.wg.Wait()
}

// depthStats reports queue occupancy for the stats endpoint.
func (s *scheduler) depthStats() (queued, running, tenants int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.running, len(s.tenants)
}
