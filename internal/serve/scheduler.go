// Package serve is the simulation-as-a-service layer behind cmd/gridd:
// a scheduler that runs core.ExperimentSpec submissions on a bounded
// worker pool with per-tenant fairness and a queue-depth limit, a
// result cache keyed by the spec's canonical hash (the simulator is
// deterministic, so identical submissions are free hits), and the HTTP
// handlers that expose both as a REST/JSON API.
package serve

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrQueueFull rejects a submission when the tenant's queue is at its
// depth limit. The HTTP layer maps it to 429.
var ErrQueueFull = errors.New("serve: tenant queue full")

// ErrClosed rejects submissions after shutdown has begun. The HTTP
// layer maps it to 503.
var ErrClosed = errors.New("serve: shutting down")

// jobStatus is the lifecycle of one submission.
type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// job is one scheduled experiment execution. A job is shared by every
// coalesced submission of the same spec hash; tenants records which
// tenants attached, and only they may poll it. All mutable fields are
// written under the scheduler mutex; done closes exactly once, after
// the terminal status/doc/errMsg/elapsed are committed, so readers that
// have observed done may read them without the lock.
type job struct {
	id      string
	tenant  string // submitting tenant, for queue accounting
	tenants map[string]struct{}
	kind    string
	hash    string
	spec    core.ExperimentSpec // released once the job finishes

	done    chan struct{}
	status  jobStatus
	doc     []byte // deterministic result document, set on success
	errMsg  string // set on failure
	elapsed time.Duration
}

// scheduler owns the worker pool and the per-tenant queues. Fairness is
// strict round-robin over tenants with pending work: a tenant
// submitting thousands of jobs cannot starve one submitting a single
// job, because each dispatch takes the head of the next non-empty
// tenant queue in rotation. A tenant whose queue drains is dropped from
// the rotation (and re-added on its next submission), so the tenant
// bookkeeping is bounded by pending work, not by every name ever seen.
type scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	queues  map[string][]*job // per-tenant FIFO; only non-empty queues
	tenants []string          // rotation order over queues' keys
	rr      int               // round-robin cursor into tenants
	queued  int               // total queued jobs, all tenants
	running int
	depth   int // per-tenant queue-depth limit

	inflight map[string]*job // spec hash → queued-or-running job (single flight)
	jobs     map[string]*job // job id → job, for async polling
	finished []string        // finished job ids, oldest first, for eviction
	retain   int             // finished jobs kept pollable

	closed  bool
	wg      sync.WaitGroup
	execute func(*job) ([]byte, error)
}

func newScheduler(workers, depth, retain int, execute func(*job) ([]byte, error)) *scheduler {
	s := &scheduler{
		queues:   map[string][]*job{},
		inflight: map[string]*job{},
		jobs:     map[string]*job{},
		depth:    depth,
		retain:   retain,
		execute:  execute,
	}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// newJobID returns an unguessable job id, so one tenant cannot
// enumerate another's submissions by counting.
func newJobID() (string, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("serve: job id: %w", err)
	}
	return "j" + hex.EncodeToString(b[:]), nil
}

// submit enqueues a spec for a tenant, or returns the already-queued or
// running job for the same hash (coalesced reports that). The caller
// has already consulted the result cache. Coalescing is global across
// tenants — like the result cache, it banks on determinism: the
// attached tenant gets the same bytes it would have computed, without
// consuming a queue slot.
func (s *scheduler) submit(tenant, kind, hash string, spec core.ExperimentSpec) (j *job, coalesced bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	if j, ok := s.inflight[hash]; ok {
		j.tenants[tenant] = struct{}{}
		return j, true, nil
	}
	if len(s.queues[tenant]) >= s.depth {
		return nil, false, fmt.Errorf("%w: %d jobs queued for %q", ErrQueueFull, len(s.queues[tenant]), tenant)
	}
	var id string
	for {
		if id, err = newJobID(); err != nil {
			return nil, false, err
		}
		if _, dup := s.jobs[id]; !dup {
			break
		}
	}
	j = &job{
		id:      id,
		tenant:  tenant,
		tenants: map[string]struct{}{tenant: {}},
		kind:    kind,
		hash:    hash,
		spec:    spec,
		done:    make(chan struct{}),
		status:  statusQueued,
	}
	if _, seen := s.queues[tenant]; !seen {
		s.tenants = append(s.tenants, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], j)
	s.queued++
	s.inflight[hash] = j
	s.jobs[j.id] = j
	s.cond.Signal()
	return j, false, nil
}

// lookup returns a job by id, but only to a tenant that submitted or
// coalesced onto it.
func (s *scheduler) lookup(id, tenant string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	if _, attached := j.tenants[tenant]; !attached {
		return nil, false
	}
	return j, true
}

// pick pops the next job in tenant rotation, dropping the tenant from
// the rotation when its queue drains. Callers hold s.mu.
func (s *scheduler) pick() *job {
	n := len(s.tenants)
	for i := 0; i < n; i++ {
		idx := (s.rr + i) % n
		tenant := s.tenants[idx]
		q := s.queues[tenant]
		if len(q) == 0 {
			continue
		}
		j := q[0]
		if len(q) == 1 {
			delete(s.queues, tenant)
			s.tenants = append(s.tenants[:idx], s.tenants[idx+1:]...)
			s.rr = idx // the next tenant shifted into this slot
		} else {
			s.queues[tenant] = q[1:]
			s.rr = idx + 1
		}
		s.queued--
		return j
	}
	return nil
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var j *job
		for {
			j = s.pick()
			if j != nil || s.closed {
				break
			}
			s.cond.Wait()
		}
		if j == nil {
			s.mu.Unlock()
			return
		}
		j.status = statusRunning
		s.running++
		s.mu.Unlock()

		t0 := time.Now()
		doc, err := s.runOne(j)

		// Commit the terminal state under the lock: pollers read
		// j.status through it while the job is live, and the close of
		// j.done below publishes the fields to everyone already waiting.
		s.mu.Lock()
		if err != nil {
			j.status = statusFailed
			j.errMsg = err.Error()
		} else {
			j.status = statusDone
			j.doc = doc
		}
		j.elapsed = time.Since(t0)
		j.spec = nil // the doc carries the canonical spec; free the rest
		s.running--
		delete(s.inflight, j.hash)
		s.retire(j)
		s.mu.Unlock()
		close(j.done)
	}
}

// retire keeps the finished job pollable until the retention bound
// pushes it out, so the jobs map cannot grow without limit in a
// long-running daemon. Callers hold s.mu.
func (s *scheduler) retire(j *job) {
	s.finished = append(s.finished, j.id)
	for len(s.finished) > s.retain {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// runOne executes the job's spec, converting panics into errors so one
// poisonous submission cannot take a worker down.
func (s *scheduler) runOne(j *job) (doc []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			doc, err = nil, fmt.Errorf("panic: %v", r)
		}
	}()
	return s.execute(j)
}

// close stops intake and wakes idle workers; drain waits for the pool.
func (s *scheduler) close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
}

func (s *scheduler) drain() {
	s.wg.Wait()
}

// depthStats reports queue occupancy for the stats endpoint.
func (s *scheduler) depthStats() (queued, running, tenants int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued, s.running, len(s.tenants)
}
