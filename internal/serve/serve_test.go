package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, tenant, body string) (*http.Response, Envelope) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/experiments", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	return resp, env
}

// TestCacheHitBitIdentical is the gateway's core promise: resubmitting
// a spec returns the first run's document byte for byte, served from
// cache, with the serve.* counters recording the hit.
func TestCacheHitBitIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	body := `{"api":"repro/spec/v1","kind":"tco","spec":{"blade":true}}`

	resp1, env1 := submit(t, ts, "alice", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: status %d, error %q", resp1.StatusCode, env1.Error)
	}
	if env1.Cached || env1.Status != "done" || len(env1.Doc) == 0 {
		t.Fatalf("first submit: cached=%v status=%q doclen=%d", env1.Cached, env1.Status, len(env1.Doc))
	}

	// Same experiment, different field order and tenant: still a hit.
	resp2, env2 := submit(t, ts, "bob", `{"kind":"tco","api":"repro/spec/v1","spec":{"nodes":24,"blade":true}}`)
	if resp2.StatusCode != http.StatusOK || !env2.Cached {
		t.Fatalf("resubmit: status %d cached=%v", resp2.StatusCode, env2.Cached)
	}
	if !bytes.Equal(env1.Doc, env2.Doc) {
		t.Fatalf("cached doc differs from first run:\n%s\nvs\n%s", env1.Doc, env2.Doc)
	}
	if env1.SpecHash != env2.SpecHash {
		t.Fatalf("hash mismatch: %s vs %s", env1.SpecHash, env2.SpecHash)
	}
	if got := s.cacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := s.cacheMisses.Load(); got != 1 {
		t.Errorf("cache misses = %d, want 1", got)
	}

	// The doc embeds the canonical spec, result text and obs snapshot.
	var doc resultDoc
	if err := json.Unmarshal(env1.Doc, &doc); err != nil {
		t.Fatalf("result doc: %v", err)
	}
	if doc.API != ResultAPI || doc.Kind != "tco" || doc.SpecHash != env1.SpecHash {
		t.Errorf("doc header = %q %q %q", doc.API, doc.Kind, doc.SpecHash)
	}
	if doc.Result == nil || !strings.Contains(doc.Result.Text, "Cluster:") {
		t.Errorf("doc result text missing")
	}
	var snapDoc map[string]any
	if err := json.Unmarshal(doc.Obs, &snapDoc); err != nil {
		t.Errorf("obs payload not JSON: %v", err)
	}
}

// TestPerTenantFairness floods tenant A's queue and then submits one
// job for tenant B: round-robin dispatch must run B's job next, not
// after A's backlog.
func TestPerTenantFairness(t *testing.T) {
	var mu sync.Mutex
	var order []string
	gate := make(chan struct{})
	first := true
	sched := newScheduler(1, 100, 64, func(j *job) ([]byte, error) {
		if first {
			first = false
			<-gate // hold the worker so the queues fill
		}
		mu.Lock()
		order = append(order, j.tenant)
		mu.Unlock()
		return nil, nil
	})
	defer func() { sched.close(); sched.drain() }()

	jobs := make([]*job, 0, 10)
	for i := 0; i < 8; i++ {
		j, _, err := sched.submit("flood", "tco", fmt.Sprintf("ha%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	jb, _, err := sched.submit("meek", "tco", "hb", nil)
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, jb)
	close(gate)
	for _, j := range jobs {
		<-j.done
	}

	// The first job (flood's, already running) finishes first; the meek
	// tenant's single job must be dispatched within the next two slots,
	// not behind flood's remaining seven.
	pos := -1
	for i, tenant := range order {
		if tenant == "meek" {
			pos = i
		}
	}
	if pos < 0 || pos > 2 {
		t.Fatalf("meek tenant ran at position %d of %v, want <= 2", pos, order)
	}
}

// TestQueueDepthLimit rejects the submission that exceeds the
// per-tenant depth with 429, without disturbing other tenants.
func TestQueueDepthLimit(t *testing.T) {
	gate := make(chan struct{})
	var started sync.Once
	running := make(chan struct{})
	sched := newScheduler(1, 2, 64, func(j *job) ([]byte, error) {
		started.Do(func() { close(running) })
		<-gate
		return nil, nil
	})
	defer func() { close(gate); sched.close(); sched.drain() }()

	// One running + two queued for tenant A (the running job left the
	// queue), then the queue is full.
	if _, _, err := sched.submit("a", "tco", "h0", nil); err != nil {
		t.Fatal(err)
	}
	<-running // the worker has dequeued h0
	for i := 1; i < 3; i++ {
		if _, _, err := sched.submit("a", "tco", fmt.Sprintf("h%d", i), nil); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, _, err := sched.submit("a", "tco", "h3", nil); err == nil {
		t.Fatal("expected queue-full error")
	}
	// Another tenant still has room.
	if _, _, err := sched.submit("b", "tco", "h4", nil); err != nil {
		t.Fatalf("tenant b rejected: %v", err)
	}
}

// TestCoalescing verifies single-flight: a second submission of an
// in-flight hash attaches to the same job instead of queueing a
// duplicate execution.
func TestCoalescing(t *testing.T) {
	gate := make(chan struct{})
	sched := newScheduler(1, 10, 64, func(j *job) ([]byte, error) { <-gate; return nil, nil })
	defer func() { sched.close(); sched.drain() }()

	j1, co1, err := sched.submit("a", "tco", "same", nil)
	if err != nil || co1 {
		t.Fatalf("first: %v coalesced=%v", err, co1)
	}
	j2, co2, err := sched.submit("b", "tco", "same", nil)
	if err != nil || !co2 {
		t.Fatalf("second: %v coalesced=%v", err, co2)
	}
	if j1 != j2 {
		t.Fatal("coalesced submit returned a different job")
	}
	// Polling is scoped to attached tenants: both submitters may look
	// the job up, a stranger may not.
	if _, ok := sched.lookup(j1.id, "a"); !ok {
		t.Error("submitting tenant cannot look up its own job")
	}
	if _, ok := sched.lookup(j1.id, "b"); !ok {
		t.Error("coalesced tenant cannot look up the shared job")
	}
	if _, ok := sched.lookup(j1.id, "eve"); ok {
		t.Error("unrelated tenant can look up another tenant's job")
	}
	close(gate)
	<-j1.done
	// After completion the hash is no longer in flight: a new submit
	// schedules a fresh job (the HTTP layer would have hit the cache).
	j3, co3, err := sched.submit("a", "tco", "same", nil)
	if err != nil || co3 {
		t.Fatalf("post-done: %v coalesced=%v", err, co3)
	}
	<-j3.done
}

// TestConcurrentSubmissions drives many goroutines at the HTTP API with
// a mix of distinct and repeated specs.
func TestConcurrentSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				body := fmt.Sprintf(`{"api":"repro/spec/v1","kind":"tco","spec":{"nodes":%d}}`, 10+i)
				resp, env := submit(t, ts, fmt.Sprintf("t%d", g%3), body)
				if resp.StatusCode != http.StatusOK || env.Status != "done" {
					errs <- fmt.Errorf("g%d i%d: status %d %q err %q", g, i, resp.StatusCode, env.Status, env.Error)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// 4 distinct specs across 32 submissions: at most 4 misses that
	// executed (plus coalesced waits), the rest cache hits.
	if s.jobsCompleted.Load() > 4 {
		t.Errorf("jobs completed = %d, want <= 4", s.jobsCompleted.Load())
	}
	if s.cacheHits.Load()+s.cacheMisses.Load()+s.coalesced.Load() < 32 {
		t.Errorf("accounting: hits=%d misses=%d coalesced=%d", s.cacheHits.Load(), s.cacheMisses.Load(), s.coalesced.Load())
	}
}

// TestBadSubmissions maps decode and validation failures to 4xx.
func TestBadSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	cases := []struct {
		body string
		code int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"api":"repro/spec/v2","kind":"tco"}`, http.StatusBadRequest},
		{`{"api":"repro/spec/v1","kind":"nope"}`, http.StatusBadRequest},
		{`{"api":"repro/spec/v1","kind":"tco","spec":{"bogus":1}}`, http.StatusBadRequest},
		{`{"api":"repro/spec/v1","kind":"tco","spec":{"nodes":-5}}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		resp, env := submit(t, ts, "", tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%q: status %d, want %d (error %q)", tc.body, resp.StatusCode, tc.code, env.Error)
		}
	}
	if got := s.rejectedSpec.Load(); got != uint64(len(cases)) {
		t.Errorf("rejected.bad_spec = %d, want %d", got, len(cases))
	}
}

// TestAsyncSubmitAndPoll takes the 202 + poll path.
func TestAsyncSubmitAndPoll(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/v1/experiments?async=1", "application/json",
		strings.NewReader(`{"api":"repro/spec/v1","kind":"table5"}`))
	if err != nil {
		t.Fatal(err)
	}
	var env Envelope
	json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || env.ID == "" {
		t.Fatalf("async submit: status %d id %q", resp.StatusCode, env.ID)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/experiments/" + env.ID)
		if err != nil {
			t.Fatal(err)
		}
		var got Envelope
		json.NewDecoder(r.Body).Decode(&got)
		r.Body.Close()
		if got.Status == "done" {
			if len(got.Doc) == 0 {
				t.Fatal("done without doc")
			}
			break
		}
		if got.Status == "failed" {
			t.Fatalf("job failed: %s", got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", got.Status)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestKindsAndStats covers the discovery and telemetry endpoints.
func TestKindsAndStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/kinds")
	if err != nil {
		t.Fatal(err)
	}
	var kinds struct {
		API   string     `json:"api"`
		Kinds []kindInfo `json:"kinds"`
	}
	json.NewDecoder(resp.Body).Decode(&kinds)
	resp.Body.Close()
	if kinds.API != API || len(kinds.Kinds) != len(core.SpecKinds()) {
		t.Fatalf("kinds: api %q, %d kinds want %d", kinds.API, len(kinds.Kinds), len(core.SpecKinds()))
	}
	for _, k := range kinds.Kinds {
		if _, err := core.DecodeSpec(k.Spec); err != nil {
			t.Errorf("kind %s default spec does not round-trip: %v", k.Kind, err)
		}
	}

	submit(t, ts, "", `{"api":"repro/spec/v1","kind":"tco"}`)
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Samples []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"samples"`
	}
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	byName := map[string]float64{}
	for _, s := range stats.Samples {
		byName[s.Name] = s.Value
	}
	if byName["serve.submit.total"] < 1 {
		t.Errorf("serve.submit.total = %v, want >= 1", byName["serve.submit.total"])
	}
	if byName["serve.jobs.completed"] < 1 {
		t.Errorf("serve.jobs.completed = %v, want >= 1", byName["serve.jobs.completed"])
	}
	if _, ok := byName["serve.cache.entries"]; !ok {
		t.Error("serve.cache.entries gauge missing")
	}
}

// TestCacheEviction bounds the cache FIFO.
func TestCacheEviction(t *testing.T) {
	c := newCache(2)
	c.put("a", []byte("1"))
	c.put("b", []byte("2"))
	c.put("c", []byte("3"))
	if _, ok := c.get("a"); ok {
		t.Error("oldest entry not evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("newest entry missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestJobRetentionBound evicts the oldest finished jobs, so the jobs
// map cannot grow without bound in a long-running daemon.
func TestJobRetentionBound(t *testing.T) {
	sched := newScheduler(1, 100, 2, func(j *job) ([]byte, error) { return nil, nil })
	defer func() { sched.close(); sched.drain() }()
	jobs := make([]*job, 0, 5)
	for i := 0; i < 5; i++ {
		j, _, err := sched.submit("a", "tco", fmt.Sprintf("h%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
		<-j.done // serialize so eviction order is deterministic
	}
	sched.mu.Lock()
	kept := len(sched.jobs)
	sched.mu.Unlock()
	if kept != 2 {
		t.Errorf("jobs retained = %d, want 2", kept)
	}
	if _, ok := sched.lookup(jobs[0].id, "a"); ok {
		t.Error("oldest finished job still pollable past the retention bound")
	}
	if _, ok := sched.lookup(jobs[4].id, "a"); !ok {
		t.Error("newest finished job evicted")
	}
}

// TestTenantRotationCleanup drops drained tenants from the rotation, so
// the per-tenant bookkeeping is bounded by pending work, not by every
// X-Tenant value ever seen.
func TestTenantRotationCleanup(t *testing.T) {
	sched := newScheduler(2, 10, 64, func(j *job) ([]byte, error) { return nil, nil })
	defer func() { sched.close(); sched.drain() }()
	for i := 0; i < 20; i++ {
		j, _, err := sched.submit(fmt.Sprintf("tenant%d", i), "tco", fmt.Sprintf("h%d", i), nil)
		if err != nil {
			t.Fatal(err)
		}
		<-j.done
	}
	if queued, _, tenants := sched.depthStats(); queued != 0 || tenants != 0 {
		t.Errorf("after drain: %d queued, %d tenants in rotation, want 0/0", queued, tenants)
	}
}

// TestFailedJobCommitted: a panicking execute surfaces as a failed job
// whose terminal state is readable after done, and the worker survives
// to run the next job.
func TestFailedJobCommitted(t *testing.T) {
	sched := newScheduler(1, 10, 64, func(j *job) ([]byte, error) {
		if j.hash == "boom" {
			panic("kaboom")
		}
		return []byte("ok"), nil
	})
	defer func() { sched.close(); sched.drain() }()
	bad, _, err := sched.submit("a", "tco", "boom", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-bad.done
	if bad.status != statusFailed || !strings.Contains(bad.errMsg, "kaboom") {
		t.Errorf("panicked job: status %q errMsg %q", bad.status, bad.errMsg)
	}
	good, _, err := sched.submit("a", "tco", "fine", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-good.done
	if good.status != statusDone || string(good.doc) != "ok" {
		t.Errorf("job after panic: status %q doc %q", good.status, good.doc)
	}
}

// TestGracefulClose rejects new work and drains in-flight jobs.
func TestGracefulClose(t *testing.T) {
	s := New(Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.sched.submit("a", "tco", "h", nil); err == nil {
		t.Fatal("submit after close succeeded")
	}
}
