package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// API versions the gateway's own wire formats: the HTTP response
// envelope and the cached result document.
const (
	API       = "repro/serve/v1"
	ResultAPI = "repro/serve/result/v1"
)

// Config sizes a Server. Zero fields take the defaults below.
type Config struct {
	// Workers bounds concurrent experiment executions (default 2).
	Workers int
	// QueueDepth bounds queued jobs per tenant (default 16); submissions
	// beyond it are rejected with 429.
	QueueDepth int
	// CacheEntries bounds the result cache (default 256).
	CacheEntries int
	// JobRetention bounds how many finished jobs stay pollable by id
	// (default 512). Older finished jobs are evicted and poll as 404;
	// their results remain in the cache under the spec hash.
	JobRetention int
	// RequestTimeout bounds how long a synchronous submission waits for
	// its result before degrading to 202 + pollable id (default 30s).
	RequestTimeout time.Duration
	// Logger receives request-scoped structured logs; nil discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 512
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the experiment gateway: it decodes spec envelopes, serves
// repeats from the result cache, schedules misses on the worker pool,
// and exports its own telemetry as the serve.* obs metrics.
type Server struct {
	cfg   Config
	sched *scheduler
	cache *cache
	log   *slog.Logger

	reqSeq atomic.Uint64

	requests      atomic.Uint64
	submits       atomic.Uint64
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	coalesced     atomic.Uint64
	rejectedFull  atomic.Uint64
	rejectedSpec  atomic.Uint64
	jobsCompleted atomic.Uint64
	jobsFailed    atomic.Uint64
	waitTimeouts  atomic.Uint64
}

// New builds a Server and starts its worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, cache: newCache(cfg.CacheEntries), log: cfg.Logger}
	s.sched = newScheduler(cfg.Workers, cfg.QueueDepth, cfg.JobRetention, s.execute)
	return s
}

// Close stops intake and waits for in-flight jobs, bounded by ctx.
func (s *Server) Close(ctx context.Context) error {
	s.sched.close()
	drained := make(chan struct{})
	go func() {
		s.sched.drain()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown with jobs still running: %w", ctx.Err())
	}
}

// execute runs one job's spec on a fresh instrumented Run and caches
// the resulting document, returning it for the scheduler to commit
// under its lock. Failed runs (including panics) are not cached — a
// later identical submission retries.
func (s *Server) execute(j *job) (doc []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			doc, err = nil, fmt.Errorf("panic: %v", r)
		}
		if err != nil {
			s.jobsFailed.Add(1)
		} else {
			s.jobsCompleted.Add(1)
		}
	}()
	run := core.NewRun()
	res, err := core.RunSpec(run, j.spec)
	if err != nil {
		return nil, err
	}
	doc, err = buildDoc(j, res, run)
	if err != nil {
		return nil, err
	}
	s.cache.put(j.hash, doc)
	return doc, nil
}

// resultDoc is the cached result document: everything a caller needs to
// reproduce the CLI run — canonical spec, rendered text, structured
// rows, and the run's obs snapshot. The document is built once per
// hash and replayed verbatim, so resubmissions are bit-identical.
type resultDoc struct {
	API      string           `json:"api"`
	Kind     string           `json:"kind"`
	SpecHash string           `json:"spec_hash"`
	Spec     json.RawMessage  `json:"spec"`
	Result   *core.SpecResult `json:"result"`
	Obs      json.RawMessage  `json:"obs"`
}

func buildDoc(j *job, res *core.SpecResult, run *core.Run) ([]byte, error) {
	env, err := core.EncodeSpec(j.spec)
	if err != nil {
		return nil, err
	}
	var snap bytes.Buffer
	if err := run.Snap.WriteJSON(&snap); err != nil {
		return nil, err
	}
	return json.Marshal(resultDoc{
		API:      ResultAPI,
		Kind:     j.kind,
		SpecHash: j.hash,
		Spec:     env,
		Result:   res,
		Obs:      bytes.TrimSpace(snap.Bytes()),
	})
}

// Envelope is the gateway's HTTP response wrapper.
type Envelope struct {
	API       string          `json:"api"`
	ID        string          `json:"id,omitempty"`
	Status    string          `json:"status"`
	Cached    bool            `json:"cached"`
	Coalesced bool            `json:"coalesced,omitempty"`
	Kind      string          `json:"kind,omitempty"`
	SpecHash  string          `json:"spec_hash,omitempty"`
	Error     string          `json:"error,omitempty"`
	ElapsedMS int64           `json:"elapsed_ms,omitempty"`
	Doc       json.RawMessage `json:"doc,omitempty"`
}

// Handler returns the gateway's HTTP routes wrapped in request-scoped
// logging.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/experiments", s.handleSubmit)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/kinds", s.handleKinds)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return s.withLogging(mux)
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		id := s.reqSeq.Add(1)
		log := s.log.With("req", id, "method", r.Method, "path", r.URL.Path, "tenant", tenantOf(r))
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(ctxWithLogger(r.Context(), log)))
		log.Info("request", "status", sw.code, "dur_ms", time.Since(t0).Milliseconds())
	})
}

type logKey struct{}

func ctxWithLogger(ctx context.Context, log *slog.Logger) context.Context {
	return context.WithValue(ctx, logKey{}, log)
}

func (s *Server) logger(r *http.Request) *slog.Logger {
	if log, ok := r.Context().Value(logKey{}).(*slog.Logger); ok {
		return log
	}
	return s.log
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "anon"
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, Envelope{API: API, Status: "error", Error: err.Error()})
}

// handleSubmit is POST /v1/experiments: decode the spec envelope, serve
// from cache if the canonical hash is known, otherwise schedule.
// Synchronous by default (waits up to RequestTimeout), ?async=1 returns
// 202 with a pollable id immediately.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.submits.Add(1)
	log := s.logger(r)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		s.rejectedSpec.Add(1)
		s.fail(w, http.StatusBadRequest, fmt.Errorf("read body: %w", err))
		return
	}
	spec, err := core.DecodeSpec(body)
	if err != nil {
		s.rejectedSpec.Add(1)
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	canon, err := core.CanonicalSpec(spec)
	if err != nil {
		s.rejectedSpec.Add(1)
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if err := canon.Validate(); err != nil {
		s.rejectedSpec.Add(1)
		s.fail(w, http.StatusUnprocessableEntity, err)
		return
	}
	hash, err := core.SpecHash(canon)
	if err != nil {
		s.rejectedSpec.Add(1)
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	log = log.With("kind", canon.Kind(), "hash", hash[:12])

	if doc, ok := s.cache.get(hash); ok {
		s.cacheHits.Add(1)
		log.Info("cache hit")
		writeJSON(w, http.StatusOK, Envelope{
			API: API, Status: string(statusDone), Cached: true,
			Kind: canon.Kind(), SpecHash: hash, Doc: doc,
		})
		return
	}
	s.cacheMisses.Add(1)

	j, coalesced, err := s.sched.submit(tenantOf(r), canon.Kind(), hash, canon)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.rejectedFull.Add(1)
			s.fail(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			s.fail(w, http.StatusServiceUnavailable, err)
		default:
			s.fail(w, http.StatusInternalServerError, err)
		}
		return
	}
	if coalesced {
		s.coalesced.Add(1)
		log.Info("coalesced", "job", j.id)
	} else {
		log.Info("scheduled", "job", j.id)
	}

	if r.URL.Query().Get("async") != "" {
		writeJSON(w, http.StatusAccepted, Envelope{
			API: API, ID: j.id, Status: string(statusQueued), Coalesced: coalesced,
			Kind: j.kind, SpecHash: hash,
		})
		return
	}

	select {
	case <-j.done:
		s.writeJob(w, j, coalesced)
	case <-time.After(s.cfg.RequestTimeout):
		s.waitTimeouts.Add(1)
		writeJSON(w, http.StatusAccepted, Envelope{
			API: API, ID: j.id, Status: s.jobStatus(j), Coalesced: coalesced,
			Kind: j.kind, SpecHash: hash,
		})
	case <-r.Context().Done():
		// Client gone; the job keeps running and lands in the cache.
	}
}

// handleGet is GET /v1/experiments/{id}: poll a job by id. Job ids are
// unguessable and the lookup is scoped to tenants that submitted or
// coalesced onto the job, so one tenant cannot poll another's work.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.lookup(r.PathValue("id"), tenantOf(r))
	if !ok {
		s.fail(w, http.StatusNotFound, fmt.Errorf("serve: no job %q", r.PathValue("id")))
		return
	}
	select {
	case <-j.done:
		s.writeJob(w, j, false)
	default:
		writeJSON(w, http.StatusOK, Envelope{
			API: API, ID: j.id, Status: s.jobStatus(j), Kind: j.kind, SpecHash: j.hash,
		})
	}
}

// jobStatus reads a live job's status under the scheduler lock.
func (s *Server) jobStatus(j *job) string {
	s.sched.mu.Lock()
	defer s.sched.mu.Unlock()
	return string(j.status)
}

// writeJob renders a finished job. Fields past done are immutable: the
// worker commits them under the scheduler lock before closing done.
func (s *Server) writeJob(w http.ResponseWriter, j *job, coalesced bool) {
	if j.status == statusFailed {
		writeJSON(w, http.StatusInternalServerError, Envelope{
			API: API, ID: j.id, Status: string(statusFailed), Coalesced: coalesced,
			Kind: j.kind, SpecHash: j.hash, Error: j.errMsg, ElapsedMS: j.elapsed.Milliseconds(),
		})
		return
	}
	writeJSON(w, http.StatusOK, Envelope{
		API: API, ID: j.id, Status: string(statusDone), Coalesced: coalesced,
		Kind: j.kind, SpecHash: j.hash, ElapsedMS: j.elapsed.Milliseconds(), Doc: j.doc,
	})
}

// kindInfo describes one registered experiment kind for discovery.
type kindInfo struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"default_spec"`
}

// handleKinds is GET /v1/kinds: the registry with each kind's canonical
// default spec (what an empty body for that kind normalizes to).
func (s *Server) handleKinds(w http.ResponseWriter, r *http.Request) {
	kinds := make([]kindInfo, 0, len(core.SpecKinds()))
	for _, k := range core.SpecKinds() {
		spec, err := core.NewSpec(k)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		env, err := core.EncodeSpec(spec)
		if err != nil {
			s.fail(w, http.StatusInternalServerError, err)
			return
		}
		kinds = append(kinds, kindInfo{Kind: k, Spec: env})
	}
	writeJSON(w, http.StatusOK, map[string]any{"api": API, "kinds": kinds})
}

// handleStats is GET /v1/stats: the gateway's own obs snapshot.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	snap := obs.NewSnapshot()
	snap.Gather(s)
	w.Header().Set("Content-Type", "application/json")
	snap.WriteJSON(w)
}

// Describe implements obs.Source for the serve.* metrics.
func (s *Server) Describe() []obs.Metric {
	return []obs.Metric{
		{Name: "serve.requests.total", Kind: obs.KindCounter, Help: "HTTP requests received"},
		{Name: "serve.submit.total", Kind: obs.KindCounter, Help: "experiment submissions received"},
		{Name: "serve.cache.hits", Kind: obs.KindCounter, Help: "submissions served from the result cache"},
		{Name: "serve.cache.misses", Kind: obs.KindCounter, Help: "submissions that missed the result cache"},
		{Name: "serve.coalesced", Kind: obs.KindCounter, Help: "submissions coalesced onto an in-flight identical job"},
		{Name: "serve.rejected.queue_full", Kind: obs.KindCounter, Help: "submissions rejected by the per-tenant queue-depth limit"},
		{Name: "serve.rejected.bad_spec", Kind: obs.KindCounter, Help: "submissions rejected as undecodable or invalid"},
		{Name: "serve.jobs.completed", Kind: obs.KindCounter, Help: "experiment jobs completed successfully"},
		{Name: "serve.jobs.failed", Kind: obs.KindCounter, Help: "experiment jobs that failed or panicked"},
		{Name: "serve.wait.timeouts", Kind: obs.KindCounter, Help: "synchronous submissions that timed out into async polling"},
		{Name: "serve.queue.depth", Kind: obs.KindGauge, Unit: "jobs", Help: "jobs currently queued across all tenants"},
		{Name: "serve.jobs.running", Kind: obs.KindGauge, Unit: "jobs", Help: "jobs currently executing"},
		{Name: "serve.cache.entries", Kind: obs.KindGauge, Unit: "docs", Help: "result documents in the cache"},
		{Name: "serve.tenants", Kind: obs.KindGauge, Unit: "tenants", Help: "tenants with queued work"},
	}
}

// Collect implements obs.Source.
func (s *Server) Collect(snap *obs.Snapshot) {
	set := func(name string, v uint64) {
		var m obs.Metric
		for _, d := range s.Describe() {
			if d.Name == name {
				m = d
				break
			}
		}
		snap.SetCounter(m.Name, m.Unit, m.Help, v)
	}
	set("serve.requests.total", s.requests.Load())
	set("serve.submit.total", s.submits.Load())
	set("serve.cache.hits", s.cacheHits.Load())
	set("serve.cache.misses", s.cacheMisses.Load())
	set("serve.coalesced", s.coalesced.Load())
	set("serve.rejected.queue_full", s.rejectedFull.Load())
	set("serve.rejected.bad_spec", s.rejectedSpec.Load())
	set("serve.jobs.completed", s.jobsCompleted.Load())
	set("serve.jobs.failed", s.jobsFailed.Load())
	set("serve.wait.timeouts", s.waitTimeouts.Load())
	queued, running, tenants := s.sched.depthStats()
	snap.SetGauge("serve.queue.depth", "jobs", "jobs currently queued across all tenants", float64(queued))
	snap.SetGauge("serve.jobs.running", "jobs", "jobs currently executing", float64(running))
	snap.SetGauge("serve.cache.entries", "docs", "result documents in the cache", float64(s.cache.len()))
	snap.SetGauge("serve.tenants", "tenants", "tenants with queued work", float64(tenants))
}
