package serve

import "sync"

// cache maps canonical spec hashes to completed result documents. The
// simulator is deterministic, so a hash fully identifies the bytes a
// run would produce; the gateway stores the first run's document
// verbatim and replays it bit-identically on every later submission.
//
// Eviction is FIFO at maxEntries — result docs are small (tables of
// text and metric samples), so the bound is about predictability, not
// memory pressure.
type cache struct {
	mu      sync.Mutex
	docs    map[string][]byte
	order   []string // insertion order, for FIFO eviction
	max     int
	hits    uint64
	evicted uint64
}

func newCache(maxEntries int) *cache {
	return &cache{docs: map[string][]byte{}, max: maxEntries}
}

func (c *cache) get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	doc, ok := c.docs[hash]
	if ok {
		c.hits++
	}
	return doc, ok
}

func (c *cache) put(hash string, doc []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.docs[hash]; dup {
		return
	}
	for len(c.docs) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.docs, oldest)
		c.evicted++
	}
	c.docs[hash] = doc
	c.order = append(c.order, hash)
}

func (c *cache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.docs)
}
