package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"regexp"

	"repro/internal/core"
)

// ResultSchema is the checked-in contract a gateway result document
// must satisfy (schema/gridd_result_v1.json).
type ResultSchema struct {
	// Schema is the exact result api version string required.
	Schema string `json:"schema"`
	// SpecAPI is the envelope version the embedded spec must carry.
	SpecAPI string `json:"spec_api"`
	// HashPattern anchors the spec_hash format.
	HashPattern string `json:"hash_pattern"`
}

// ValidateResultJSON checks a result document against the schema and
// against itself: the embedded spec must decode and re-hash to the
// document's spec_hash, the result kind must agree, and the obs payload
// must be JSON. It is the contract check CI runs on gateway output.
func ValidateResultJSON(schemaJSON, doc []byte) error {
	var sc ResultSchema
	if err := json.Unmarshal(schemaJSON, &sc); err != nil {
		return fmt.Errorf("serve: bad result schema document: %w", err)
	}
	if sc.Schema != ResultAPI {
		return fmt.Errorf("serve: result schema document is for %q, want %q", sc.Schema, ResultAPI)
	}
	hashRe, err := regexp.Compile(sc.HashPattern)
	if err != nil {
		return fmt.Errorf("serve: bad hash_pattern: %w", err)
	}

	dec := json.NewDecoder(bytes.NewReader(doc))
	dec.DisallowUnknownFields()
	var rd resultDoc
	if err := dec.Decode(&rd); err != nil {
		return fmt.Errorf("serve: bad result document: %w", err)
	}
	if rd.API != ResultAPI {
		return fmt.Errorf("serve: result api %q, want %q", rd.API, ResultAPI)
	}
	if !hashRe.MatchString(rd.SpecHash) {
		return fmt.Errorf("serve: spec_hash %q does not match %q", rd.SpecHash, sc.HashPattern)
	}
	spec, err := core.DecodeSpec(rd.Spec)
	if err != nil {
		return fmt.Errorf("serve: embedded spec: %w", err)
	}
	var env core.SpecEnvelope
	if err := json.Unmarshal(rd.Spec, &env); err != nil {
		return fmt.Errorf("serve: embedded spec envelope: %w", err)
	}
	if env.API != sc.SpecAPI {
		return fmt.Errorf("serve: embedded spec api %q, want %q", env.API, sc.SpecAPI)
	}
	if spec.Kind() != rd.Kind {
		return fmt.Errorf("serve: kind %q but embedded spec is %q", rd.Kind, spec.Kind())
	}
	hash, err := core.SpecHash(spec)
	if err != nil {
		return err
	}
	if hash != rd.SpecHash {
		return fmt.Errorf("serve: spec_hash %s does not match the embedded spec (hashes to %s)", rd.SpecHash, hash)
	}
	if rd.Result == nil {
		return fmt.Errorf("serve: result document has no result")
	}
	if rd.Result.Kind != rd.Kind {
		return fmt.Errorf("serve: result kind %q, want %q", rd.Result.Kind, rd.Kind)
	}
	var obsDoc map[string]json.RawMessage
	if err := json.Unmarshal(rd.Obs, &obsDoc); err != nil {
		return fmt.Errorf("serve: obs payload: %w", err)
	}
	return nil
}
