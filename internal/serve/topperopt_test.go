package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// goldenTopperOptHash pins the canonical hash of the default topperopt
// spec — the gateway cache key a bare {"kind":"topperopt"} submission
// resolves to. It must match goldenSpecHashes["topperopt"] in
// internal/core; a change invalidates every cached sweep.
const goldenTopperOptHash = "ae2c646e736982f7a43f3794413ea637a92e863b11bfbc6cb1b557c330290620"

// TestTopperOptRoundTripAndCacheHit runs the design-space optimizer
// through the gateway: submit → done with a schema-valid document,
// resubmit → served from cache bit-identically, spec hash pinned.
func TestTopperOptRoundTripAndCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	body := `{"api":"repro/spec/v1","kind":"topperopt"}`

	resp1, env1 := submit(t, ts, "alice", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d, error %q", resp1.StatusCode, env1.Error)
	}
	if env1.Cached || env1.Status != "done" || len(env1.Doc) == 0 {
		t.Fatalf("submit: cached=%v status=%q doclen=%d", env1.Cached, env1.Status, len(env1.Doc))
	}
	if env1.SpecHash != goldenTopperOptHash {
		t.Fatalf("default topperopt spec hash %s, golden %s", env1.SpecHash, goldenTopperOptHash)
	}

	// The produced document satisfies the topperopt result contract.
	schemaJSON, err := os.ReadFile(filepath.Join("..", "..", "schema", "topperopt_result_v1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTopperOptResultJSON(schemaJSON, env1.Doc); err != nil {
		t.Fatalf("gateway document rejected by topperopt schema: %v", err)
	}

	// Resubmission — different field spelling, different tenant — is a
	// cache hit serving the identical bytes: the frontier is
	// deterministic, so the first run's document is the answer.
	resp2, env2 := submit(t, ts, "bob", `{"kind":"topperopt","api":"repro/spec/v1","spec":{}}`)
	if resp2.StatusCode != http.StatusOK || !env2.Cached {
		t.Fatalf("resubmit: status %d cached=%v error=%q", resp2.StatusCode, env2.Cached, env2.Error)
	}
	if !bytes.Equal(env1.Doc, env2.Doc) {
		t.Fatal("cached topperopt doc differs from first run")
	}
	if got := s.cacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
}

// TestValidateTopperOptResultJSON corrupts a real gateway document
// against each topperopt-specific rule.
func TestValidateTopperOptResultJSON(t *testing.T) {
	schemaJSON, err := os.ReadFile(filepath.Join("..", "..", "schema", "topperopt_result_v1.json"))
	if err != nil {
		t.Fatal(err)
	}

	// The schema's kind must be a registered spec kind, or CI would be
	// validating documents no gateway can produce.
	var sc TopperOptResultSchema
	if err := json.Unmarshal(schemaJSON, &sc); err != nil {
		t.Fatal(err)
	}
	registered := false
	for _, k := range core.SpecKinds() {
		if k == sc.Kind {
			registered = true
		}
	}
	if !registered {
		t.Fatalf("schema kind %q not in registry %v", sc.Kind, core.SpecKinds())
	}

	s := New(Config{Workers: 1})
	defer s.sched.close()
	spec, err := core.DecodeSpec([]byte(`{"api":"repro/spec/v1","kind":"topperopt","spec":{"nodes":[8,64]}}`))
	if err != nil {
		t.Fatal(err)
	}
	canon, err := core.CanonicalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := core.SpecHash(canon)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := s.execute(&job{kind: canon.Kind(), hash: hash, spec: canon, done: make(chan struct{})})
	if err != nil {
		t.Fatalf("job failed: %v", err)
	}
	if err := ValidateTopperOptResultJSON(schemaJSON, doc); err != nil {
		t.Fatalf("real document rejected: %v", err)
	}

	cases := map[string][]byte{
		"frontier point missing a field": bytes.Replace(doc, []byte(`"perf_per_watt"`), []byte(`"ppw"`), 1),
		"missing designopt counter":      bytes.Replace(doc, []byte(`"designopt.pruned"`), []byte(`"designopt.prunes"`), 1),
		"telemetry inconsistent":         bytes.Replace(doc, []byte(`"pruned":`), []byte(`"pruned":1000`), 1),
	}
	for name, bad := range cases {
		if bytes.Equal(bad, doc) {
			t.Fatalf("%s: corruption did not change the document", name)
		}
		if err := ValidateTopperOptResultJSON(schemaJSON, bad); err == nil {
			t.Errorf("%s: accepted, want error", name)
		}
	}

	// A non-topperopt document fails the kind pin even though it is a
	// valid generic result.
	tcoSpec, _ := core.DecodeSpec([]byte(`{"api":"repro/spec/v1","kind":"tco"}`))
	tcoCanon, _ := core.CanonicalSpec(tcoSpec)
	tcoHash, _ := core.SpecHash(tcoCanon)
	tcoDoc, err := s.execute(&job{kind: "tco", hash: tcoHash, spec: tcoCanon, done: make(chan struct{})})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTopperOptResultJSON(schemaJSON, tcoDoc); err == nil {
		t.Error("tco document accepted by the topperopt validator")
	}
}
