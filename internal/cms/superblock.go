package cms

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vliw"
)

// BranchProfile reports interpreter-observed outcomes for the conditional
// branch at pc: how often it was taken and how often it executed.
type BranchProfile func(pc int) (taken, seen uint64)

const (
	// defaultSuperblockMax bounds the x86 instructions one superblock may
	// cover when the caller passes no limit.
	defaultSuperblockMax = 256
	// biasMinSamples is the minimum number of observed executions before a
	// branch may be classified as biased.
	biasMinSamples = 4
)

// biasedTaken reports whether the profile says the branch is taken often
// enough (≥75%, with at least biasMinSamples observations) to speculate
// along its taken edge.
func biasedTaken(taken, seen uint64) bool {
	return seen >= biasMinSamples && taken*4 >= seen*3
}

// invertBranch returns the side-exit stub for a biased-taken conditional:
// the inverse condition, exiting to the branch's fallthrough PC. The hot
// (taken) path then continues in line inside the superblock.
func invertBranch(op isa.Op, fallPC int) (vliw.Atom, error) {
	var inv vliw.AtomOp
	switch op {
	case isa.Jz:
		inv = vliw.ABrNZ
	case isa.Jnz:
		inv = vliw.ABrZ
	case isa.Jl:
		inv = vliw.ABrGE
	case isa.Jle:
		inv = vliw.ABrG
	case isa.Jg:
		inv = vliw.ABrLE
	case isa.Jge:
		inv = vliw.ABrL
	default:
		return vliw.Atom{}, fmt.Errorf("cms: cannot invert %s", op)
	}
	return vliw.Atom{Op: inv, Imm: int64(fallPC)}, nil
}

// Superblock builds the gear-2 translation for the region at entryPC: a
// single-entry multiple-exit trace that follows the profiled-hot path.
// Unconditional jumps are elided (the target block is spliced in line),
// biased-taken conditionals are inverted into side-exit stubs so the hot
// edge also continues in line, and the trace's own back-edges to entryPC
// are unrolled up to unrollMax copies. The block is rescheduled with
// speculative load hoisting enabled (the spec scheduler mode).
//
// The superblock ends — with FallPC/MainExit at the continuation — when it
// reaches an instruction already in the trace, exhausts maxInstrs, closes
// its final back-edge, or falls off a cold conditional path's budget. A
// halt ending records MainExit = -1: every taken non-halt exit from such a
// block is a side exit.
func (t *Translator) Superblock(p isa.Program, entryPC int, prof BranchProfile, maxInstrs, unrollMax int) (*vliw.Translation, error) {
	if entryPC < 0 || entryPC >= len(p) {
		return nil, fmt.Errorf("cms: superblock entry %d out of range", entryPC)
	}
	if maxInstrs <= 0 {
		maxInstrs = defaultSuperblockMax
	}
	if unrollMax < 1 {
		unrollMax = 1
	}
	tr := &vliw.Translation{EntryPC: entryPC, Gear: 2, MainExit: -1}
	sched := &t.sched
	sched.reset(t.Wide, true)

	// visited guards against splicing the same PC into one unroll copy
	// twice (an inner cycle); it resets at each new copy so the copies are
	// identical.
	visited := make(map[int]bool, maxInstrs)
	pc := entryPC
	copies := 1
	end := func(target int) {
		// A superblock's main exit is a fallthrough — no branch atom, no
		// taken-branch penalty; the chain loop continues at target.
		tr.FallPC, tr.MainExit = target, target
	}
	// backEdge handles the hot edge returning to the entry: unroll another
	// copy while the budget allows, else close the loop.
	backEdge := func() bool {
		if copies < unrollMax && tr.SrcInstrs < maxInstrs {
			copies++
			visited = make(map[int]bool, maxInstrs)
			pc = entryPC
			return true
		}
		end(entryPC)
		return false
	}

	done := false
	for {
		if pc < 0 || pc >= len(p) {
			// Ran off the program; exit there and let Run report it.
			end(pc)
			break
		}
		if tr.SrcInstrs >= maxInstrs || visited[pc] {
			end(pc)
			break
		}
		visited[pc] = true
		in := p[pc]
		switch {
		case in.Op == isa.Hlt:
			sched.add(vliw.Atom{Op: vliw.ABr, Imm: vliw.HaltCode(pc + 1)})
			tr.SrcInstrs++
			tr.FallPC = pc + 1 // unreachable, but keep it valid
			done = true
		case in.Op == isa.Jmp:
			tr.SrcInstrs++
			target := int(in.Imm)
			if target == entryPC {
				if backEdge() {
					continue
				}
				done = true
			} else {
				// Elided: the jump target continues in line.
				pc = target
				continue
			}
		case in.Op != isa.Jmp && isa.IsBranch(in.Op):
			target, fall := int(in.Imm), pc+1
			taken, seen := uint64(0), uint64(0)
			if prof != nil {
				taken, seen = prof(pc)
			}
			tr.SrcInstrs++
			if biasedTaken(taken, seen) {
				stub, err := invertBranch(in.Op, fall)
				if err != nil {
					return nil, err
				}
				sched.add(stub)
				if target == entryPC {
					if backEdge() {
						continue
					}
					done = true
				} else {
					pc = target
					continue
				}
			} else {
				atoms, _, err := lower(in, pc)
				if err != nil {
					return nil, fmt.Errorf("cms: pc %d: %w", pc, err)
				}
				for _, a := range atoms {
					sched.add(a)
				}
				pc = fall
				continue
			}
		default:
			atoms, _, err := lower(in, pc)
			if err != nil {
				return nil, fmt.Errorf("cms: pc %d: %w", pc, err)
			}
			for _, a := range atoms {
				sched.add(a)
			}
			tr.SrcInstrs++
			pc++
			continue
		}
		if done {
			break
		}
	}

	tr.Molecules = sched.finish()
	if len(tr.Molecules) == 0 {
		// Degenerate trace (e.g. a bare self-jump): keep the non-empty
		// invariant; the nop molecule falls through to MainExit.
		tr.Molecules = []vliw.Molecule{{Atoms: []vliw.Atom{{Op: vliw.ANop}}, Wide: t.Wide}}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
