package cms

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vliw"
)

// checkChainInvariants walks the machine's translation cache and fails
// if any chain link dangles: every link must point at a currently cached
// entry, and the link's target must know about the source in its preds
// list (so a later eviction of the target can sever the link).
func checkChainInvariants(t *testing.T, m *Machine) {
	t.Helper()
	cached := map[*cacheEntry]bool{}
	for _, e := range m.cache {
		cached[e] = true
	}
	for pc, e := range m.cache {
		for _, l := range e.links {
			if !cached[l.to] {
				t.Fatalf("entry %d links to an evicted translation (exit pc %d)", pc, l.pc)
			}
			if l.to == e {
				continue // self-links need no preds bookkeeping
			}
			found := false
			for _, p := range l.to.preds {
				if p == e {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("entry %d links to %d, but %d's preds do not record it", pc, l.to.pc, l.to.pc)
			}
		}
		for _, p := range e.preds {
			if !cached[p] {
				t.Fatalf("entry %d has an evicted predecessor", pc)
			}
		}
	}
}

// twoRegionLoopSrc is a loop whose body splits into two regions (the
// conditional ends region A; region B spans the tail and jumps back), so
// steady state exercises chaining between distinct translations.
const twoRegionLoopSrc = `
	movi r1, 0
	movi r2, 0
loop:
	addi r1, r1, 1
	cmpi r1, 200
	jz   done
	addi r2, r2, 2
	jmp  loop
done:
	hlt
`

func TestChainingPatchesAndHits(t *testing.T) {
	p := isa.MustAssemble(twoRegionLoopSrc)
	m := newTestMachine(1)
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.ChainPatches == 0 {
		t.Fatalf("no exits were patched: %+v", s)
	}
	if s.ChainHits == 0 {
		t.Fatalf("no native-to-native hops: %+v", s)
	}
	// Each chained hop charges dispatch exactly like the pre-chaining
	// lookup did, so the chained-dispatch counter must cover the hits.
	if s.ChainHits > s.ChainedDispatches {
		t.Fatalf("chain hits (%d) exceed chained dispatches (%d)", s.ChainHits, s.ChainedDispatches)
	}
	checkChainInvariants(t, m)
}

func TestEvictionUnchains(t *testing.T) {
	// Two hot loops in sequence: phase 1 chains its regions together,
	// then phase 2's translations overflow the cache and evict phase 1's
	// linked entries — each eviction must sever the links into the
	// victim so no chained hop can reach freed code.
	src := `
		movi r1, 0
	loop1:
		addi r1, r1, 1
		cmpi r1, 100
		jz   mid
		addi r2, r2, 2
		jmp  loop1
	mid:
		movi r3, 0
	loop2:
		addi r3, r3, 1
		cmpi r3, 100
		jz   done
		addi r4, r4, 2
		jmp  loop2
	done:
		hlt
	`
	p := isa.MustAssemble(src)
	params := DefaultParams()
	params.HotThreshold = 1
	params.CacheCapacityAtoms = 12 // holds one loop's regions, not both
	m := NewMachine(params, vliw.TM5600Timing())
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.CacheEvictions == 0 {
		t.Fatalf("undersized cache never evicted: %+v", s)
	}
	if s.Unchains == 0 {
		t.Fatalf("evicting chained translations severed no links (%d patches, %d evictions): %+v",
			s.ChainPatches, s.CacheEvictions, s)
	}
	checkChainInvariants(t, m)
	if st.R[2] != 99*2 || st.R[4] != 99*2 {
		t.Fatalf("r2 = %d, r4 = %d, want %d each", st.R[2], st.R[4], 99*2)
	}
}

func TestReoptimizationUnchains(t *testing.T) {
	p := isa.MustAssemble(twoRegionLoopSrc)
	gp := DefaultParams().WithGears()
	gp.HotThreshold = 1
	gp.ReoptThreshold = 4
	m := NewMachine(gp, vliw.TM5600Timing())
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Reopts == 0 {
		t.Fatalf("loop never promoted: %+v", s)
	}
	if s.Unchains == 0 {
		t.Fatalf("replacing a gear-1 translation should sever its chain links: %+v", s)
	}
	checkChainInvariants(t, m)
	// After promotion the cached entry at the loop head must be gear 2.
	for pc, e := range m.cache {
		if e.tr.Gear == 1 && e.execs >= gp.ReoptThreshold {
			t.Fatalf("entry %d stuck in gear 1 after %d executions", pc, e.execs)
		}
	}
}

// TestWarmReuseDeterministicUnderEviction is the eviction × chaining ×
// warm-reuse interaction test: repeated runs on one machine (a warm
// translation cache) with a cache small enough to evict continuously
// must stay architecturally identical and settle into a deterministic
// per-run cycle cost.
func TestWarmReuseDeterministicUnderEviction(t *testing.T) {
	for _, gears := range []bool{false, true} {
		name := "single-gear"
		if gears {
			name = "gears"
		}
		t.Run(name, func(t *testing.T) {
			p := isa.MustAssemble(twoRegionLoopSrc)
			ref := isa.NewState(0)
			if err := isa.Run(p, ref, nil, 10_000_000); err != nil {
				t.Fatal(err)
			}
			params := DefaultParams()
			if gears {
				params = params.WithGears()
				params.ReoptThreshold = 4
			}
			params.HotThreshold = 1
			params.CacheCapacityAtoms = 12
			m := NewMachine(params, vliw.TM5600Timing())
			var costs []uint64
			for run := 0; run < 5; run++ {
				st := isa.NewState(0)
				before := m.Stats().TotalCycles()
				if _, _, err := m.Run(p, st, 0); err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if !ref.Equal(st) {
					t.Fatalf("run %d diverged: ref R=%v, got R=%v", run, ref.R, st.R)
				}
				costs = append(costs, m.Stats().TotalCycles()-before)
				checkChainInvariants(t, m)
			}
			if m.Stats().CacheEvictions == 0 {
				t.Fatalf("eviction pressure never materialised: %+v", m.Stats())
			}
			// Warm runs repeat the same translate/evict/chain sequence, so
			// their cycle costs must be identical run over run.
			for i := 2; i < len(costs); i++ {
				if costs[i] != costs[1] {
					t.Fatalf("warm run costs diverged: %v", costs)
				}
			}
		})
	}
}

// TestUnchainLeavesSelfLoops covers a translation chained to itself (a
// tight loop region): evicting it must not corrupt the preds of other
// entries or double-free its own links.
func TestUnchainLeavesSelfLoops(t *testing.T) {
	p := isa.MustAssemble(sumLoopSrc)
	params := DefaultParams()
	params.HotThreshold = 1
	m := NewMachine(params, vliw.TM5600Timing())
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	// Find an entry that links to itself (the loop back-edge).
	var self *cacheEntry
	for _, e := range m.cache {
		for _, l := range e.links {
			if l.to == e {
				self = e
			}
		}
	}
	if self == nil {
		t.Skip("loop did not self-chain under this region split")
	}
	m.unchain(self)
	if self.links != nil || self.preds != nil {
		t.Fatalf("unchain left link state behind: links=%v preds=%v", self.links, self.preds)
	}
	checkChainInvariants(t, m)
}
