package cms

import (
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/vliw"
)

func newTestMachine(hot int) *Machine {
	p := DefaultParams()
	p.HotThreshold = hot
	return NewMachine(p, vliw.TM5600Timing())
}

// runBoth executes the program under the reference interpreter and under
// CMS and requires identical final architectural state.
func runBoth(t *testing.T, src string, memWords int, hot int) (*isa.State, *Machine) {
	t.Helper()
	p := isa.MustAssemble(src)
	ref := isa.NewState(memWords)
	var refTr isa.Trace
	if err := isa.Run(p, ref, &refTr, 10_000_000); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	m := newTestMachine(hot)
	st := isa.NewState(memWords)
	_, cmsTr, err := m.Run(p, st, 0)
	if err != nil {
		t.Fatalf("cms run: %v", err)
	}
	if !ref.Equal(st) {
		t.Fatalf("CMS state diverged from reference.\nref:  R=%v F=%v PC=%d Z=%v L=%v\ncms:  R=%v F=%v PC=%d Z=%v L=%v",
			ref.R, ref.F, ref.PC, ref.FlagZ, ref.FlagL,
			st.R, st.F, st.PC, st.FlagZ, st.FlagL)
	}
	if refTr.Flops != cmsTr.Flops {
		t.Fatalf("flop counts diverged: ref %d, cms %d", refTr.Flops, cmsTr.Flops)
	}
	// Same program again through the tiered pipeline (quick translate →
	// superblock reoptimize, chained); gears must never change results.
	gp := DefaultParams().WithGears()
	gp.HotThreshold = hot
	gp.ReoptThreshold = 4 // promote aggressively so short tests reach gear 2
	gm := NewMachine(gp, vliw.TM5600Timing())
	gst := isa.NewState(memWords)
	_, gearTr, err := gm.Run(p, gst, 0)
	if err != nil {
		t.Fatalf("geared cms run: %v", err)
	}
	if !ref.Equal(gst) {
		t.Fatalf("geared CMS state diverged from reference.\nref:  R=%v F=%v PC=%d Z=%v L=%v\ncms:  R=%v F=%v PC=%d Z=%v L=%v",
			ref.R, ref.F, ref.PC, ref.FlagZ, ref.FlagL,
			gst.R, gst.F, gst.PC, gst.FlagZ, gst.FlagL)
	}
	if refTr.Flops != gearTr.Flops {
		t.Fatalf("geared flop counts diverged: ref %d, cms %d", refTr.Flops, gearTr.Flops)
	}
	return st, m
}

const sumLoopSrc = `
	movi r1, 0
	movi r2, 1
loop:
	add  r1, r1, r2
	addi r2, r2, 1
	cmpi r2, 100
	jle  loop
	hlt
`

func TestEquivalenceSumLoopInterpreted(t *testing.T) {
	st, m := runBoth(t, sumLoopSrc, 0, 1_000_000) // never hot
	if st.R[1] != 5050 {
		t.Fatalf("sum = %d, want 5050", st.R[1])
	}
	if s := m.Stats(); s.Translations != 0 || s.NativeExecutions != 0 {
		t.Fatalf("cold run translated anyway: %+v", s)
	}
}

func TestEquivalenceSumLoopTranslated(t *testing.T) {
	st, m := runBoth(t, sumLoopSrc, 0, 1) // immediately hot
	if st.R[1] != 5050 {
		t.Fatalf("sum = %d, want 5050", st.R[1])
	}
	s := m.Stats()
	if s.Translations == 0 || s.NativeExecutions == 0 {
		t.Fatalf("hot run did not translate: %+v", s)
	}
	if s.InterpInstrs != 0 {
		t.Fatalf("hot-threshold-1 run interpreted %d instrs", s.InterpInstrs)
	}
}

func TestEquivalenceMixedHotCold(t *testing.T) {
	st, m := runBoth(t, sumLoopSrc, 0, 10)
	if st.R[1] != 5050 {
		t.Fatalf("sum = %d, want 5050", st.R[1])
	}
	s := m.Stats()
	if s.InterpInstrs == 0 || s.NativeExecutions == 0 {
		t.Fatalf("expected both interpretation and native execution: %+v", s)
	}
}

func TestEquivalenceFPKernel(t *testing.T) {
	src := `
		movi r1, 0
		movi r2, 50
		fmovi f0, 1.0
		fmovi f1, 1.0
	loop:
		fadd  f1, f1, f0
		fmul  f2, f1, f1
		fdiv  f3, f0, f1
		fsqrt f4, f2
		fsub  f5, f4, f1
		addi  r1, r1, 1
		cmp   r1, r2
		jl    loop
		hlt
	`
	st, _ := runBoth(t, src, 0, 1)
	if st.F[4] != 51 { // sqrt((1+50)^2)
		t.Fatalf("f4 = %v, want 51", st.F[4])
	}
}

func TestEquivalenceMemoryKernel(t *testing.T) {
	src := `
		movi r1, 0
		movi r2, 16
	init:
		st   [r1], r1
		addi r1, r1, 1
		cmp  r1, r2
		jl   init
		movi r1, 0
		movi r3, 0
	sum:
		ld   r4, [r1]
		add  r3, r3, r4
		addi r1, r1, 1
		cmp  r1, r2
		jl   sum
		hlt
	`
	st, _ := runBoth(t, src, 16, 1)
	if st.R[3] != 120 {
		t.Fatalf("sum = %d, want 120", st.R[3])
	}
}

func TestEquivalenceBitReinterpret(t *testing.T) {
	// The float→int bit reinterpretation via memory, as the Karp kernel
	// uses; store/load ordering must survive scheduling.
	src := `
		movi r1, 0
		movi r9, 0
		fmovi f0, 2.0
	loop:
		fst  [r1], f0
		ld   r2, [r1]
		shr  r3, r2, 52
		st   [r1+1], r3
		fadd f0, f0, f0
		addi r9, r9, 1
		cmpi r9, 40
		jl   loop
		hlt
	`
	st, _ := runBoth(t, src, 4, 1)
	if st.R[3] == 0 {
		t.Fatal("exponent extraction produced 0")
	}
}

func TestEquivalenceRandomPrograms(t *testing.T) {
	// Random straight-line arithmetic wrapped in a counted loop: scheduling
	// must preserve semantics for arbitrary dependence patterns.
	rng := rand.New(rand.NewSource(12345))
	intOps := []string{"add", "sub", "mul", "and", "or", "xor"}
	fpOps := []string{"fadd", "fsub", "fmul"}
	for trial := 0; trial < 60; trial++ {
		src := "movi r15, 0\nmovi r14, 5\n"
		// Seed registers.
		src += "movi r1, 3\nmovi r2, -7\nmovi r3, 11\nfmovi f1, 1.5\nfmovi f2, -0.25\nfmovi f3, 3.0\n"
		src += "top:\n"
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			switch rng.Intn(5) {
			case 0, 1:
				op := intOps[rng.Intn(len(intOps))]
				src += op + " r" + itoa(1+rng.Intn(10)) + ", r" + itoa(1+rng.Intn(12)) + ", r" + itoa(1+rng.Intn(12)) + "\n"
			case 2, 3:
				op := fpOps[rng.Intn(len(fpOps))]
				src += op + " f" + itoa(1+rng.Intn(10)) + ", f" + itoa(1+rng.Intn(12)) + ", f" + itoa(1+rng.Intn(12)) + "\n"
			case 4:
				// Memory traffic within the 8-word arena based at r0(=0).
				if rng.Intn(2) == 0 {
					src += "st [r0+" + itoa(rng.Intn(8)) + "], r" + itoa(1+rng.Intn(12)) + "\n"
				} else {
					src += "ld r" + itoa(1+rng.Intn(10)) + ", [r0+" + itoa(rng.Intn(8)) + "]\n"
				}
			}
		}
		src += "addi r15, r15, 1\ncmp r15, r14\njl top\nhlt\n"
		runBoth(t, src, 8, 1)
		runBoth(t, src, 8, 3)
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}

func TestTranslationCacheAmortisation(t *testing.T) {
	// Running the loop body many times must make translated execution far
	// cheaper per iteration than interpretation: the paper's "initial cost
	// of the translation is amortized over repeated executions".
	src := `
		movi r1, 0
		movi r2, 10000
	loop:
		addi r1, r1, 1
		cmp  r1, r2
		jl   loop
		hlt
	`
	p := isa.MustAssemble(src)

	cold := newTestMachine(1 << 30) // never translate
	st1 := isa.NewState(0)
	interpCycles, _, err := cold.Run(p, st1, 0)
	if err != nil {
		t.Fatal(err)
	}

	hot := newTestMachine(8)
	st2 := isa.NewState(0)
	hotCycles, _, err := hot.Run(p, st2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hotCycles*2 >= interpCycles {
		t.Fatalf("translation did not pay off: hot %d vs interp %d cycles", hotCycles, interpCycles)
	}
	s := hot.Stats()
	if s.ChainedDispatches == 0 {
		t.Fatalf("loop should chain to itself: %+v", s)
	}
}

func TestHotThresholdFiltersColdCode(t *testing.T) {
	// A region executed once (the prologue) must not be translated when
	// the threshold is above 1.
	src := `
		movi r1, 0
		movi r2, 200
	loop:
		addi r1, r1, 1
		cmp  r1, r2
		jl   loop
		hlt
	`
	p := isa.MustAssemble(src)
	m := newTestMachine(16)
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Translations != 1 {
		t.Fatalf("Translations = %d, want exactly 1 (the loop head)", s.Translations)
	}
}

func TestCacheEviction(t *testing.T) {
	// A tiny cache must evict; the program still runs correctly.
	src := sumLoopSrc
	p := isa.MustAssemble(src)
	params := DefaultParams()
	params.HotThreshold = 1
	params.CacheCapacityAtoms = 4 // far below one translation
	m := NewMachine(params, vliw.TM5600Timing())
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	if st.R[1] != 5050 {
		t.Fatalf("sum = %d, want 5050", st.R[1])
	}
	if m.Stats().CacheEvictions == 0 {
		t.Fatal("tiny cache never evicted")
	}
}

func TestPackingDensityAboveOne(t *testing.T) {
	// Independent operations must pack >1 atom per molecule.
	src := `
		movi r1, 1
		movi r2, 2
		movi r3, 3
		movi r4, 4
		fmovi f1, 1.0
		movi r9, 0
	loop:
		add  r5, r1, r2
		sub  r6, r3, r4
		fadd f2, f1, f1
		ld   r7, [r0]
		add  r8, r1, r3
		xor  r10, r2, r4
		fmul f3, f1, f1
		st   [r0+1], r5
		addi r9, r9, 1
		cmpi r9, 100
		jl   loop
		hlt
	`
	p := isa.MustAssemble(src)
	m := newTestMachine(1)
	st := isa.NewState(4)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	d := m.Stats().PackingDensity()
	if d <= 1.3 {
		t.Fatalf("packing density = %.2f, want > 1.3 for independent ops", d)
	}
}

func TestTranslatorRespectsDependenceChains(t *testing.T) {
	// A fully serial chain cannot pack: density must stay near 1.
	src := `
		movi r1, 1
		movi r9, 0
	loop:
		add r1, r1, r1
		add r1, r1, r1
		add r1, r1, r1
		add r1, r1, r1
		addi r9, r9, 1
		cmpi r9, 50
		jl  loop
		hlt
	`
	p := isa.MustAssemble(src)
	m := newTestMachine(1)
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	// The loop-control ops legitimately pack beside the chain, but the
	// serial adds themselves cannot: density stays well below the 4-wide
	// machine's limit and below what independent code achieves.
	d := m.Stats().PackingDensity()
	if d > 2.0 {
		t.Fatalf("packing density = %.2f for serial chain, expected < 2", d)
	}
}

func TestTranslateProducesValidMolecules(t *testing.T) {
	srcs := []string{
		sumLoopSrc,
		"fmovi f0, 1.0\nfsqrt f1, f0\nfdiv f2, f1, f0\nhlt",
		"movi r1, 1\nst [r0], r1\nld r2, [r0]\nst [r0+1], r2\nhlt",
	}
	tr := NewTranslator()
	for _, src := range srcs {
		p := isa.MustAssemble(src)
		tl, err := tr.Translate(p, 0)
		if err != nil {
			t.Fatalf("translate %q: %v", src, err)
		}
		if err := tl.Validate(); err != nil {
			t.Fatalf("invalid translation for %q: %v", src, err)
		}
	}
}

func TestNarrowMoleculeFormat(t *testing.T) {
	// 64-bit molecules pack at most 2 atoms.
	tr := NewTranslator()
	tr.Wide = false
	p := isa.MustAssemble(`
		add r1, r2, r3
		sub r4, r5, r6
		fadd f1, f2, f3
		ld r7, [r0]
		hlt
	`)
	tl, err := tr.Translate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range tl.Molecules {
		if len(m.Atoms) > 2 {
			t.Fatalf("molecule %d has %d atoms in narrow mode", i, len(m.Atoms))
		}
		if m.Wide {
			t.Fatalf("molecule %d marked wide in narrow mode", i)
		}
	}
}

func TestRegionEndsAtUnconditionalJump(t *testing.T) {
	p := isa.MustAssemble(`
		movi r1, 1
		jmp  skip
		movi r1, 2
	skip:
		hlt
	`)
	tr := NewTranslator()
	tl, err := tr.Translate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.SrcInstrs != 2 {
		t.Fatalf("region covered %d instrs, want 2 (movi, jmp)", tl.SrcInstrs)
	}
}

func TestMaxRegionBound(t *testing.T) {
	src := ""
	for i := 0; i < 100; i++ {
		src += "addi r1, r1, 1\n"
	}
	src += "hlt"
	p := isa.MustAssemble(src)
	tr := NewTranslator()
	tr.MaxRegion = 10
	tl, err := tr.Translate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tl.SrcInstrs != 10 {
		t.Fatalf("SrcInstrs = %d, want 10", tl.SrcInstrs)
	}
	if tl.FallPC != 10 {
		t.Fatalf("FallPC = %d, want 10", tl.FallPC)
	}
}

func TestRunFuelLimit(t *testing.T) {
	p := isa.MustAssemble("spin: jmp spin")
	m := newTestMachine(1)
	st := isa.NewState(0)
	_, _, err := m.Run(p, st, 100_000)
	if err != ErrFuel {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
}

func TestResetClearsState(t *testing.T) {
	p := isa.MustAssemble(sumLoopSrc)
	m := newTestMachine(1)
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	if m.Stats().TotalCycles() == 0 {
		t.Fatal("no cycles recorded")
	}
	m.Reset()
	if m.Stats().TotalCycles() != 0 || len(m.cache) != 0 || len(m.profile) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestStatsTotalCyclesConsistent(t *testing.T) {
	p := isa.MustAssemble(sumLoopSrc)
	m := newTestMachine(8)
	st := isa.NewState(0)
	cycles, _, err := m.Run(p, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if cycles != s.TotalCycles() {
		t.Fatalf("Run returned %d cycles, stats sum to %d", cycles, s.TotalCycles())
	}
	sum := s.InterpCycles + s.TranslateCycles + s.NativeCycles + s.DispatchCycles
	if cycles != sum {
		t.Fatalf("cycle categories sum to %d, want %d", sum, cycles)
	}
}

func TestOverlappingRegionsBothCorrect(t *testing.T) {
	// A branch into the middle of an already-translated region creates a
	// second region head whose translation overlaps the first; both must
	// execute with identical architectural results.
	src := `
		movi r1, 0
		movi r2, 0
	outer:
		addi r2, r2, 3     ; head A covers from here
	mid:
		addi r2, r2, 1     ; head B starts here when entered via the jnz
		addi r1, r1, 1
		cmpi r1, 50
		jz   done
		movi r3, 1
		cmpi r3, 1
		jz   mid           ; enters mid-region, creating head B
		jmp  outer
	done:
		hlt
	`
	runBoth(t, src, 0, 2)
}

func TestRegionHeadAfterFallthrough(t *testing.T) {
	// A region that ends at MaxRegion mid-stream falls through to a new
	// head; chained dispatch must continue correctly.
	src := "movi r1, 0\nmovi r9, 0\nloop:\n"
	for i := 0; i < 80; i++ { // exceeds MaxRegion=64 → split regions
		src += "addi r1, r1, 1\n"
	}
	src += "addi r9, r9, 1\ncmpi r9, 30\njl loop\nhlt\n"
	st, m := runBoth(t, src, 0, 1)
	if st.R[1] != 80*30 {
		t.Fatalf("r1 = %d, want 2400", st.R[1])
	}
	if m.Stats().Translations < 2 {
		t.Fatalf("expected the loop to split into ≥2 regions, got %d", m.Stats().Translations)
	}
}

func TestInterpreterOnlyNeverTranslatesColdProgram(t *testing.T) {
	// Straight-line code executed once stays interpreted under any sane
	// threshold.
	src := "movi r1, 5\naddi r1, r1, 2\nhlt"
	_, m := runBoth(t, src, 0, 2)
	if m.Stats().Translations != 0 {
		t.Fatal("single-shot code was translated")
	}
}
