package cms

import (
	"container/list"
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vliw"
)

// Params are the CMS runtime cost knobs. Defaults follow the behaviour
// described for CMS 4.x: interpretation costs tens of cycles per x86
// instruction, translation costs thousands (amortized by the translation
// cache), and chained translated code dispatches in a couple of cycles.
type Params struct {
	// HotThreshold is the execution count at which a region is translated
	// ("filters infrequently executed code from being needlessly
	// optimized").
	HotThreshold int
	// InterpOverhead is the decode/dispatch cost per interpreted x86
	// instruction, added to the native latency of the operation itself.
	InterpOverhead int
	// TranslateCostPerInstr is the one-time translation cost per x86
	// instruction in a region (the single-gear optimizing translator).
	TranslateCostPerInstr int
	// DispatchCycles is the cost of entering the translation cache from
	// the CMS runtime (hash lookup, context restore).
	DispatchCycles int
	// ChainedDispatchCycles is the cost when a translation exits directly
	// into another cached translation (translation chaining).
	ChainedDispatchCycles int
	// CacheCapacityAtoms bounds the translation cache size, measured in
	// atoms (a proxy for the cache's memory footprint). 0 = unlimited.
	CacheCapacityAtoms int

	// Tiered gears (DESIGN.md §10). ReoptThreshold = 0 disables the
	// tiered pipeline: translation goes through the single optimizing
	// gear exactly as before, bit-identical cycle accounting included.
	//
	// QuickCostPerInstr is the per-instruction cost of the gear-1 quick
	// block translator (one atom per molecule, no scheduling).
	QuickCostPerInstr int
	// ReoptThreshold is the execution count at which a gear-1 translation
	// is reoptimized into a gear-2 superblock.
	ReoptThreshold int
	// ReoptCostPerInstr is the per-instruction cost of gear-2 superblock
	// reoptimization.
	ReoptCostPerInstr int
	// SuperblockMax bounds the x86 instructions one superblock covers.
	SuperblockMax int
	// UnrollMax bounds how many copies of the entry loop body a
	// superblock may splice in line.
	UnrollMax int
}

// DefaultParams returns the CMS 4.x-like defaults (single-gear).
func DefaultParams() Params {
	return Params{
		HotThreshold:          24,
		InterpOverhead:        18,
		TranslateCostPerInstr: 3000,
		DispatchCycles:        40,
		ChainedDispatchCycles: 1,
		CacheCapacityAtoms:    1 << 16,
	}
}

// GearsEnabled reports whether the tiered interpret → quick-translate →
// superblock pipeline is active.
func (p Params) GearsEnabled() bool { return p.ReoptThreshold > 0 }

// WithGears returns p with the tiered pipeline enabled: a lower hot
// threshold feeding a cheap quick translator, then superblock
// reoptimization once a region has proven itself over ReoptThreshold
// executions. Reoptimization is cheaper per instruction than the
// single-gear translator because it reuses the quick gear's decoded
// region and profile rather than starting from cold bytes.
func (p Params) WithGears() Params {
	p.HotThreshold = 8
	p.QuickCostPerInstr = 600
	p.ReoptThreshold = 128
	p.ReoptCostPerInstr = 1200
	p.SuperblockMax = 256
	p.UnrollMax = 2
	return p
}

// Stats reports where cycles went during a run.
type Stats struct {
	// Runs counts Run invocations on this machine; WarmRuns counts those
	// that began with a non-empty translation cache (warm starts). A
	// fresh machine per kernel — the paper's cold-cache semantics —
	// therefore shows Runs == 1, WarmRuns == 0.
	Runs     uint64
	WarmRuns uint64

	InterpInstrs      uint64 // x86 instructions interpreted
	InterpCycles      uint64
	Translations      uint64 // regions translated (any gear)
	TranslatedInstrs  uint64 // x86 instructions covered by translations
	TranslateCycles   uint64
	NativeExecutions  uint64 // translation executions
	NativeCycles      uint64 // cycles inside translated code
	NativeAtoms       uint64
	NativeMolecules   uint64
	DispatchCycles    uint64
	ChainedDispatches uint64
	ColdDispatches    uint64
	CacheEvictions    uint64
	CacheAtoms        int // current cache occupancy

	// Tiered-gear accounting (zero unless Params.GearsEnabled).
	QuickTranslations uint64 // gear-1 quick block translations
	Reopts            uint64 // gear-2 superblock reoptimizations
	ReoptInstrs       uint64 // x86 instructions covered by superblocks
	ReoptCycles       uint64 // cycles spent reoptimizing
	SuperblockExecs   uint64 // gear-2 translation executions
	SideExits         uint64 // superblock exits off the profiled-hot path
	// Chaining accounting.
	ChainPatches uint64 // exit→successor links patched in
	ChainHits    uint64 // native-to-native hops through a chain
	ChainMisses  uint64 // native exits with no cached successor
	Unchains     uint64 // links severed by eviction or reoptimization
}

// TotalCycles sums every cycle category.
func (s Stats) TotalCycles() uint64 {
	return s.InterpCycles + s.TranslateCycles + s.ReoptCycles + s.NativeCycles + s.DispatchCycles
}

// PackingDensity returns atoms per molecule executed — the ILP the
// translator extracted. Zero before any native execution.
func (s Stats) PackingDensity() float64 {
	if s.NativeMolecules == 0 {
		return 0
	}
	return float64(s.NativeAtoms) / float64(s.NativeMolecules)
}

// chainLink is a patched translation exit: executions leaving this entry
// at pc continue directly in to's translation.
type chainLink struct {
	pc int
	to *cacheEntry
}

type cacheEntry struct {
	pc    int
	tr    *vliw.Translation
	ele   *list.Element // position in LRU list; value is the entry PC
	execs int           // executions, drives gear promotion
	// links are this entry's patched exits; preds are the entries holding
	// a link to this one, so eviction can sever incoming links without a
	// cache sweep. Translations have a handful of exits at most, so both
	// stay short and are scanned linearly.
	links []chainLink
	preds []*cacheEntry
}

// chainTo returns the patched successor for an exit at pc, or nil.
func (e *cacheEntry) chainTo(pc int) *cacheEntry {
	for i := range e.links {
		if e.links[i].pc == pc {
			return e.links[i].to
		}
	}
	return nil
}

// Machine is a full Crusoe model: CMS running over the VLIW engine.
type Machine struct {
	P     Params
	Trans *Translator
	VLIW  *vliw.Machine
	// Tracer, when non-nil, records the interpret→translate→cache
	// pipeline as trace events in the CMS cycle domain (obs.PidCMS, one
	// cycle per microsecond tick): a span per Run, a span per region
	// translation or reoptimization, an instant per cache eviction.
	Tracer *obs.Tracer

	cache   map[int]*cacheEntry
	lru     *list.List
	profile map[int]int
	// Per-branch outcome profile (taken/seen), collected while
	// interpreting when gears are enabled; drives superblock formation.
	brSeen  map[int]uint64
	brTaken map[int]uint64
	stats   Stats
	// vst is the reused VLIW register state, re-armed per Run so the hot
	// path allocates nothing.
	vst vliw.State
}

// NewMachine builds a Crusoe with the given CMS parameters and VLIW
// timing.
func NewMachine(p Params, timing vliw.Timing) *Machine {
	return &Machine{
		P:       p,
		Trans:   NewTranslator(),
		VLIW:    vliw.NewMachine(timing),
		cache:   map[int]*cacheEntry{},
		lru:     list.New(),
		profile: map[int]int{},
		brSeen:  map[int]uint64{},
		brTaken: map[int]uint64{},
	}
}

// Stats returns a copy of the run statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Reset clears the translation cache, profiles and statistics (a "CMS
// reboot"); translations do not survive across Reset.
func (m *Machine) Reset() {
	m.cache = map[int]*cacheEntry{}
	m.lru = list.New()
	m.profile = map[int]int{}
	m.brSeen = map[int]uint64{}
	m.brTaken = map[int]uint64{}
	m.stats = Stats{}
}

// ErrFuel is returned when the cycle budget is exhausted.
var ErrFuel = errors.New("cms: cycle budget exhausted")

// Run executes the program on the simulated Crusoe until the x86 program
// halts, returning total cycles consumed (per the CMS + VLIW cost model)
// and the dynamic x86-level trace. fuelCycles of 0 means unlimited.
//
// The control loop mirrors the paper's description: CMS interprets cold
// code one instruction at a time while counting executions of region
// heads; when a head crosses the hot threshold its region is translated
// into molecules and cached; cached regions execute natively and chain to
// each other — runNative follows patched exit links from translation to
// translation without coming back here.
func (m *Machine) Run(p isa.Program, st *isa.State, fuelCycles uint64) (uint64, isa.Trace, error) {
	var tr isa.Trace
	if err := p.Validate(); err != nil {
		return 0, tr, err
	}
	m.stats.Runs++
	if len(m.cache) > 0 {
		m.stats.WarmRuns++
	}
	if m.Tracer != nil {
		defer func(start uint64, run uint64) {
			m.Tracer.Complete(obs.PidCMS, 0, "cms", "run",
				float64(start), float64(m.stats.TotalCycles()-start),
				map[string]any{"run": run, "interp_instrs": m.stats.InterpInstrs,
					"translations": m.stats.Translations})
		}(m.stats.TotalCycles(), m.stats.Runs)
	}
	m.vst = vliw.State{Arch: st}
	vst := &m.vst
	fromNative := false
	for !st.Halted {
		if fuelCycles > 0 && m.stats.TotalCycles() >= fuelCycles {
			return m.stats.TotalCycles(), tr, ErrFuel
		}
		pc := st.PC
		if pc < 0 || pc >= len(p) {
			return m.stats.TotalCycles(), tr, fmt.Errorf("cms: PC %d out of range", pc)
		}
		if ent := m.lookup(pc); ent != nil {
			if fromNative {
				m.stats.DispatchCycles += uint64(m.P.ChainedDispatchCycles)
				m.stats.ChainedDispatches++
			} else {
				m.stats.DispatchCycles += uint64(m.P.DispatchCycles)
				m.stats.ColdDispatches++
			}
			next, err := m.runNative(p, ent, vst, &tr, fuelCycles)
			if err != nil {
				return m.stats.TotalCycles(), tr, err
			}
			st.PC = next
			fromNative = true
			continue
		}
		// Cold region: profile the head and maybe translate.
		m.profile[pc]++
		if m.profile[pc] >= m.P.HotThreshold {
			if err := m.translate(p, pc); err != nil {
				return m.stats.TotalCycles(), tr, err
			}
			fromNative = false
			continue // next iteration dispatches into the new translation
		}
		// Interpret one region's worth: instruction by instruction until a
		// control transfer lands on a new region head.
		fromNative = false
		if err := m.interpretRegion(p, st, &tr); err != nil {
			return m.stats.TotalCycles(), tr, err
		}
	}
	return m.stats.TotalCycles(), tr, nil
}

// runNative executes ent and then follows chain links native-to-native
// until the program halts, fuel runs out, or an exit has no cached
// successor. It returns the x86 PC to continue at. Each hop charges
// exactly the chained dispatch the old dispatch-loop path charged, and
// touches the successor's LRU position, so cycle accounting and eviction
// order are bit-identical to pre-chaining behaviour.
func (m *Machine) runNative(p isa.Program, ent *cacheEntry, vst *vliw.State, tr *isa.Trace, fuelCycles uint64) (int, error) {
	for {
		if ent.tr.Gear == 1 && m.P.GearsEnabled() && ent.execs >= m.P.ReoptThreshold {
			e, err := m.reoptimize(p, ent)
			if err != nil {
				return 0, err
			}
			ent = e
		}
		ent.execs++
		res, err := m.VLIW.Execute(ent.tr, vst)
		if err != nil {
			return 0, err
		}
		m.recordNative(&res, tr)
		if ent.tr.Gear == 2 {
			m.stats.SuperblockExecs++
			if res.Taken && !res.Halted && res.ExitPC != ent.tr.MainExit {
				m.stats.SideExits++
			}
		}
		if res.Halted {
			return res.ExitPC, nil
		}
		exit := res.ExitPC
		if exit < 0 || exit >= len(p) {
			return exit, nil // Run reports the bounds error
		}
		if fuelCycles > 0 && m.stats.TotalCycles() >= fuelCycles {
			return exit, nil // Run returns ErrFuel
		}
		succ := ent.chainTo(exit)
		if succ == nil {
			c := m.cache[exit]
			if c == nil {
				m.stats.ChainMisses++
				return exit, nil
			}
			m.patch(ent, exit, c)
			succ = c
		}
		m.stats.ChainHits++
		m.stats.ChainedDispatches++
		m.stats.DispatchCycles += uint64(m.P.ChainedDispatchCycles)
		m.lru.MoveToFront(succ.ele)
		ent = succ
	}
}

func (m *Machine) lookup(pc int) *cacheEntry {
	ent := m.cache[pc]
	if ent != nil {
		m.lru.MoveToFront(ent.ele)
	}
	return ent
}

// patch links from's exit at exitPC directly to to's translation.
func (m *Machine) patch(from *cacheEntry, exitPC int, to *cacheEntry) {
	from.links = append(from.links, chainLink{pc: exitPC, to: to})
	to.preds = append(to.preds, from)
	m.stats.ChainPatches++
}

// unchain severs every link into and out of victim, so an evicted or
// replaced translation can never be reached from native code again.
func (m *Machine) unchain(victim *cacheEntry) {
	for _, pred := range victim.preds {
		kept := pred.links[:0]
		for _, l := range pred.links {
			if l.to == victim {
				m.stats.Unchains++
				continue
			}
			kept = append(kept, l)
		}
		pred.links = kept
	}
	for _, l := range victim.links {
		if l.to == victim {
			continue // self-link: back-pointer already dropped above
		}
		kept := l.to.preds[:0]
		for _, q := range l.to.preds {
			if q != victim {
				kept = append(kept, q)
			}
		}
		l.to.preds = kept
	}
	victim.links = nil
	victim.preds = nil
}

// branchProfile adapts the interpreter's branch counters to the
// superblock former.
func (m *Machine) branchProfile(pc int) (taken, seen uint64) {
	return m.brTaken[pc], m.brSeen[pc]
}

func (m *Machine) translate(p isa.Program, pc int) error {
	start := m.stats.TotalCycles()
	var t *vliw.Translation
	var err error
	cost := m.P.TranslateCostPerInstr
	name := "translate"
	if m.P.GearsEnabled() {
		t, err = m.Trans.TranslateQuick(p, pc)
		cost = m.P.QuickCostPerInstr
		name = "translate-quick"
	} else {
		t, err = m.Trans.Translate(p, pc)
	}
	if err != nil {
		return err
	}
	m.stats.Translations++
	if t.Gear == 1 {
		m.stats.QuickTranslations++
	}
	m.stats.TranslatedInstrs += uint64(t.SrcInstrs)
	m.stats.TranslateCycles += uint64(t.SrcInstrs * cost)
	if m.Tracer != nil {
		m.Tracer.Complete(obs.PidCMS, 0, "cms", name,
			float64(start), float64(t.SrcInstrs*cost),
			map[string]any{"pc": pc, "instrs": t.SrcInstrs, "atoms": t.Atoms()})
	}
	m.insert(pc, t)
	return nil
}

// reoptimize promotes a gear-1 entry to a gear-2 superblock built from
// the branch profile, replacing it in the cache. The old translation is
// unchained first so no stale link can reach it.
func (m *Machine) reoptimize(p isa.Program, old *cacheEntry) (*cacheEntry, error) {
	start := m.stats.TotalCycles()
	t, err := m.Trans.Superblock(p, old.pc, m.branchProfile, m.P.SuperblockMax, m.P.UnrollMax)
	if err != nil {
		return nil, err
	}
	m.stats.Reopts++
	m.stats.ReoptInstrs += uint64(t.SrcInstrs)
	cost := uint64(t.SrcInstrs * m.P.ReoptCostPerInstr)
	m.stats.ReoptCycles += cost
	if m.Tracer != nil {
		m.Tracer.Complete(obs.PidCMS, 0, "cms", "reoptimize",
			float64(start), float64(cost),
			map[string]any{"pc": old.pc, "instrs": t.SrcInstrs, "atoms": t.Atoms()})
	}
	m.unchain(old)
	m.stats.CacheAtoms -= old.tr.Atoms()
	delete(m.cache, old.pc)
	m.lru.Remove(old.ele)
	return m.insert(old.pc, t), nil
}

func (m *Machine) insert(pc int, t *vliw.Translation) *cacheEntry {
	atoms := t.Atoms()
	if m.P.CacheCapacityAtoms > 0 {
		for m.stats.CacheAtoms+atoms > m.P.CacheCapacityAtoms && m.lru.Len() > 0 {
			oldest := m.lru.Back()
			victimPC := oldest.Value.(int)
			victim := m.cache[victimPC]
			m.unchain(victim)
			m.stats.CacheAtoms -= victim.tr.Atoms()
			delete(m.cache, victimPC)
			m.lru.Remove(oldest)
			m.stats.CacheEvictions++
			if m.Tracer != nil {
				m.Tracer.Instant(obs.PidCMS, 0, "cms", "evict",
					float64(m.stats.TotalCycles()),
					map[string]any{"pc": victimPC, "atoms": victim.tr.Atoms()})
			}
		}
	}
	ele := m.lru.PushFront(pc)
	ent := &cacheEntry{pc: pc, tr: t, ele: ele}
	m.cache[pc] = ent
	m.stats.CacheAtoms += atoms
	return ent
}

func (m *Machine) recordNative(res *vliw.ExecResult, tr *isa.Trace) {
	m.stats.NativeExecutions++
	m.stats.NativeCycles += res.Cycles
	m.stats.NativeAtoms += res.Atoms
	m.stats.NativeMolecules += res.Molecules
	for c, n := range res.ByClass {
		tr.ByClass[c] += n
	}
	tr.Flops += res.Flops
	tr.Instrs += res.Atoms
	if res.Taken {
		tr.Taken++
	}
}

// interpretRegion steps x86 instructions, charging interpreter cost per
// instruction, until a control transfer executes (whose successor is the
// next region head) or the program halts. With gears enabled it also
// records conditional-branch outcomes for the superblock former.
func (m *Machine) interpretRegion(p isa.Program, st *isa.State, tr *isa.Trace) error {
	gears := m.P.GearsEnabled()
	for !st.Halted {
		pc := st.PC
		in := p[pc]
		if err := isa.Step(p, st, tr); err != nil {
			return err
		}
		m.stats.InterpInstrs++
		m.stats.InterpCycles += uint64(m.P.InterpOverhead) + uint64(m.interpLatency(in.Op))
		if isa.IsBranch(in.Op) {
			if gears && in.Op != isa.Jmp {
				m.brSeen[pc]++
				if st.PC != pc+1 {
					m.brTaken[pc]++
				}
			}
			return nil
		}
	}
	return nil
}

// interpLatency is the native execution latency of the interpreted op
// (the interpreter still has to do the work, e.g. an fdiv costs what the
// FPU costs).
func (m *Machine) interpLatency(op isa.Op) int {
	t := m.VLIW.T
	switch isa.ClassOf(op) {
	case isa.ClassIntMul:
		return t.MulLatency
	case isa.ClassLoad:
		return t.LoadLatency
	case isa.ClassFPAdd, isa.ClassFPMul:
		return t.FPLatency
	case isa.ClassFPDiv:
		return t.FDivLatency
	case isa.ClassFPSqrt:
		return t.FSqrtLatency
	default:
		return t.IntLatency
	}
}

// RunToCompletion is Run with unlimited fuel; it returns seconds of
// simulated wall-clock at the given clock rate alongside the trace.
func (m *Machine) RunToCompletion(p isa.Program, st *isa.State, clockHz float64) (seconds float64, tr isa.Trace, err error) {
	cycles, tr, err := m.Run(p, st, 0)
	if err != nil {
		return 0, tr, err
	}
	return float64(cycles) / clockHz, tr, nil
}
