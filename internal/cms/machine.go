package cms

import (
	"container/list"
	"errors"
	"fmt"

	"repro/internal/isa"
	"repro/internal/obs"
	"repro/internal/vliw"
)

// Params are the CMS runtime cost knobs. Defaults follow the behaviour
// described for CMS 4.x: interpretation costs tens of cycles per x86
// instruction, translation costs thousands (amortized by the translation
// cache), and chained translated code dispatches in a couple of cycles.
type Params struct {
	// HotThreshold is the execution count at which a region is translated
	// ("filters infrequently executed code from being needlessly
	// optimized").
	HotThreshold int
	// InterpOverhead is the decode/dispatch cost per interpreted x86
	// instruction, added to the native latency of the operation itself.
	InterpOverhead int
	// TranslateCostPerInstr is the one-time translation cost per x86
	// instruction in a region.
	TranslateCostPerInstr int
	// DispatchCycles is the cost of entering the translation cache from
	// the CMS runtime (hash lookup, context restore).
	DispatchCycles int
	// ChainedDispatchCycles is the cost when a translation exits directly
	// into another cached translation (translation chaining).
	ChainedDispatchCycles int
	// CacheCapacityAtoms bounds the translation cache size, measured in
	// atoms (a proxy for the cache's memory footprint). 0 = unlimited.
	CacheCapacityAtoms int
}

// DefaultParams returns the CMS 4.x-like defaults.
func DefaultParams() Params {
	return Params{
		HotThreshold:          24,
		InterpOverhead:        18,
		TranslateCostPerInstr: 3000,
		DispatchCycles:        40,
		ChainedDispatchCycles: 1,
		CacheCapacityAtoms:    1 << 16,
	}
}

// Stats reports where cycles went during a run.
type Stats struct {
	// Runs counts Run invocations on this machine; WarmRuns counts those
	// that began with a non-empty translation cache (warm starts). A
	// fresh machine per kernel — the paper's cold-cache semantics —
	// therefore shows Runs == 1, WarmRuns == 0.
	Runs     uint64
	WarmRuns uint64

	InterpInstrs      uint64 // x86 instructions interpreted
	InterpCycles      uint64
	Translations      uint64 // regions translated
	TranslatedInstrs  uint64 // x86 instructions covered by translations
	TranslateCycles   uint64
	NativeExecutions  uint64 // translation executions
	NativeCycles      uint64 // cycles inside translated code
	NativeAtoms       uint64
	NativeMolecules   uint64
	DispatchCycles    uint64
	ChainedDispatches uint64
	ColdDispatches    uint64
	CacheEvictions    uint64
	CacheAtoms        int // current cache occupancy
}

// TotalCycles sums every cycle category.
func (s Stats) TotalCycles() uint64 {
	return s.InterpCycles + s.TranslateCycles + s.NativeCycles + s.DispatchCycles
}

// PackingDensity returns atoms per molecule executed — the ILP the
// translator extracted.
func (s Stats) PackingDensity() float64 {
	if s.NativeMolecules == 0 {
		return 0
	}
	return float64(s.NativeAtoms) / float64(s.NativeMolecules)
}

type cacheEntry struct {
	tr  *vliw.Translation
	ele *list.Element // position in LRU list; value is the entry PC
}

// Machine is a full Crusoe model: CMS running over the VLIW engine.
type Machine struct {
	P     Params
	Trans *Translator
	VLIW  *vliw.Machine
	// Tracer, when non-nil, records the interpret→translate→cache
	// pipeline as trace events in the CMS cycle domain (obs.PidCMS, one
	// cycle per microsecond tick): a span per Run, a span per region
	// translation, an instant per cache eviction.
	Tracer *obs.Tracer

	cache   map[int]*cacheEntry
	lru     *list.List
	profile map[int]int
	stats   Stats
}

// NewMachine builds a Crusoe with the given CMS parameters and VLIW
// timing.
func NewMachine(p Params, timing vliw.Timing) *Machine {
	return &Machine{
		P:       p,
		Trans:   NewTranslator(),
		VLIW:    vliw.NewMachine(timing),
		cache:   map[int]*cacheEntry{},
		lru:     list.New(),
		profile: map[int]int{},
	}
}

// Stats returns a copy of the run statistics.
func (m *Machine) Stats() Stats { return m.stats }

// Reset clears the translation cache, profile and statistics (a "CMS
// reboot"); translations do not survive across Reset.
func (m *Machine) Reset() {
	m.cache = map[int]*cacheEntry{}
	m.lru = list.New()
	m.profile = map[int]int{}
	m.stats = Stats{}
}

// ErrFuel is returned when the cycle budget is exhausted.
var ErrFuel = errors.New("cms: cycle budget exhausted")

// Run executes the program on the simulated Crusoe until the x86 program
// halts, returning total cycles consumed (per the CMS + VLIW cost model)
// and the dynamic x86-level trace. fuelCycles of 0 means unlimited.
//
// The control loop mirrors the paper's description: CMS interprets cold
// code one instruction at a time while counting executions of region
// heads; when a head crosses the hot threshold its region is translated
// into molecules and cached; cached regions execute natively and chain to
// each other.
func (m *Machine) Run(p isa.Program, st *isa.State, fuelCycles uint64) (uint64, isa.Trace, error) {
	var tr isa.Trace
	if err := p.Validate(); err != nil {
		return 0, tr, err
	}
	m.stats.Runs++
	if len(m.cache) > 0 {
		m.stats.WarmRuns++
	}
	if m.Tracer != nil {
		defer func(start uint64, run uint64) {
			m.Tracer.Complete(obs.PidCMS, 0, "cms", "run",
				float64(start), float64(m.stats.TotalCycles()-start),
				map[string]any{"run": run, "interp_instrs": m.stats.InterpInstrs,
					"translations": m.stats.Translations})
		}(m.stats.TotalCycles(), m.stats.Runs)
	}
	vst := vliw.NewState(st)
	fromNative := false
	for !st.Halted {
		if fuelCycles > 0 && m.stats.TotalCycles() >= fuelCycles {
			return m.stats.TotalCycles(), tr, ErrFuel
		}
		pc := st.PC
		if pc < 0 || pc >= len(p) {
			return m.stats.TotalCycles(), tr, fmt.Errorf("cms: PC %d out of range", pc)
		}
		if ent := m.lookup(pc); ent != nil {
			if fromNative {
				m.stats.DispatchCycles += uint64(m.P.ChainedDispatchCycles)
				m.stats.ChainedDispatches++
			} else {
				m.stats.DispatchCycles += uint64(m.P.DispatchCycles)
				m.stats.ColdDispatches++
			}
			res, err := m.VLIW.Execute(ent.tr, vst)
			if err != nil {
				return m.stats.TotalCycles(), tr, err
			}
			m.recordNative(&res, &tr)
			st.PC = res.ExitPC
			fromNative = true
			continue
		}
		// Cold region: profile the head and maybe translate.
		m.profile[pc]++
		if m.profile[pc] >= m.P.HotThreshold {
			if err := m.translate(p, pc); err != nil {
				return m.stats.TotalCycles(), tr, err
			}
			fromNative = false
			continue // next iteration dispatches into the new translation
		}
		// Interpret one region's worth: instruction by instruction until a
		// control transfer lands on a new region head.
		fromNative = false
		if err := m.interpretRegion(p, st, &tr); err != nil {
			return m.stats.TotalCycles(), tr, err
		}
	}
	return m.stats.TotalCycles(), tr, nil
}

func (m *Machine) lookup(pc int) *cacheEntry {
	ent := m.cache[pc]
	if ent != nil {
		m.lru.MoveToFront(ent.ele)
	}
	return ent
}

func (m *Machine) translate(p isa.Program, pc int) error {
	start := m.stats.TotalCycles()
	t, err := m.Trans.Translate(p, pc)
	if err != nil {
		return err
	}
	m.stats.Translations++
	m.stats.TranslatedInstrs += uint64(t.SrcInstrs)
	m.stats.TranslateCycles += uint64(t.SrcInstrs * m.P.TranslateCostPerInstr)
	if m.Tracer != nil {
		m.Tracer.Complete(obs.PidCMS, 0, "cms", "translate",
			float64(start), float64(t.SrcInstrs*m.P.TranslateCostPerInstr),
			map[string]any{"pc": pc, "instrs": t.SrcInstrs, "atoms": t.Atoms()})
	}
	m.insert(pc, t)
	return nil
}

func (m *Machine) insert(pc int, t *vliw.Translation) {
	atoms := t.Atoms()
	if m.P.CacheCapacityAtoms > 0 {
		for m.stats.CacheAtoms+atoms > m.P.CacheCapacityAtoms && m.lru.Len() > 0 {
			oldest := m.lru.Back()
			victimPC := oldest.Value.(int)
			victim := m.cache[victimPC]
			m.stats.CacheAtoms -= victim.tr.Atoms()
			delete(m.cache, victimPC)
			m.lru.Remove(oldest)
			m.stats.CacheEvictions++
			if m.Tracer != nil {
				m.Tracer.Instant(obs.PidCMS, 0, "cms", "evict",
					float64(m.stats.TotalCycles()),
					map[string]any{"pc": victimPC, "atoms": victim.tr.Atoms()})
			}
		}
	}
	ele := m.lru.PushFront(pc)
	m.cache[pc] = &cacheEntry{tr: t, ele: ele}
	m.stats.CacheAtoms += atoms
}

func (m *Machine) recordNative(res *vliw.ExecResult, tr *isa.Trace) {
	m.stats.NativeExecutions++
	m.stats.NativeCycles += res.Cycles
	m.stats.NativeAtoms += res.Atoms
	m.stats.NativeMolecules += res.Molecules
	for c, n := range res.ByClass {
		tr.ByClass[c] += n
	}
	tr.Flops += res.Flops
	tr.Instrs += res.Atoms
	if res.Taken {
		tr.Taken++
	}
}

// interpretRegion steps x86 instructions, charging interpreter cost per
// instruction, until a control transfer executes (whose successor is the
// next region head) or the program halts.
func (m *Machine) interpretRegion(p isa.Program, st *isa.State, tr *isa.Trace) error {
	for !st.Halted {
		in := p[st.PC]
		if err := isa.Step(p, st, tr); err != nil {
			return err
		}
		m.stats.InterpInstrs++
		m.stats.InterpCycles += uint64(m.P.InterpOverhead) + uint64(m.interpLatency(in.Op))
		if isa.IsBranch(in.Op) {
			return nil
		}
	}
	return nil
}

// interpLatency is the native execution latency of the interpreted op
// (the interpreter still has to do the work, e.g. an fdiv costs what the
// FPU costs).
func (m *Machine) interpLatency(op isa.Op) int {
	t := m.VLIW.T
	switch isa.ClassOf(op) {
	case isa.ClassIntMul:
		return t.MulLatency
	case isa.ClassLoad:
		return t.LoadLatency
	case isa.ClassFPAdd, isa.ClassFPMul:
		return t.FPLatency
	case isa.ClassFPDiv:
		return t.FDivLatency
	case isa.ClassFPSqrt:
		return t.FSqrtLatency
	default:
		return t.IntLatency
	}
}

// RunToCompletion is Run with unlimited fuel; it returns seconds of
// simulated wall-clock at the given clock rate alongside the trace.
func (m *Machine) RunToCompletion(p isa.Program, st *isa.State, clockHz float64) (seconds float64, tr isa.Trace, err error) {
	cycles, tr, err := m.Run(p, st, 0)
	if err != nil {
		return 0, tr, err
	}
	return float64(cycles) / clockHz, tr, nil
}
