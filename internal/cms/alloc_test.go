package cms

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/vliw"
)

// TestWarmRunZeroAlloc pins the steady-state CMS hot path — cached
// lookup, native execution, trace accumulation and chained dispatch — as
// allocation-free once the cache is warm, in both the single-gear and
// the tiered pipeline. This is the host-side cost model the paper's
// "simulate a bladed Beowulf on a laptop" pitch depends on: the inner
// loop must not churn the garbage collector.
func TestWarmRunZeroAlloc(t *testing.T) {
	for _, gears := range []bool{false, true} {
		name := "single-gear"
		if gears {
			name = "gears"
		}
		t.Run(name, func(t *testing.T) {
			p := isa.MustAssemble(sumLoopSrc)
			params := DefaultParams()
			if gears {
				params = params.WithGears()
				params.ReoptThreshold = 4
			}
			params.HotThreshold = 1
			m := NewMachine(params, vliw.TM5600Timing())
			st := isa.NewState(0)
			// Warm up: translate, promote through the gears, patch chains.
			for i := 0; i < 3; i++ {
				*st = isa.State{}
				if _, _, err := m.Run(p, st, 0); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				*st = isa.State{}
				if _, _, err := m.Run(p, st, 0); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm Run allocated %.1f times per run, want 0", allocs)
			}
		})
	}
}
