// Package cms models Transmeta's Code Morphing Software as the paper's
// §2.2 describes it: an interpreter that executes x86 instructions one at
// a time while collecting run-time statistics, and a translator that
// recompiles hot x86 regions into optimized VLIW molecules, cached in a
// translation cache so the (large) translation cost is amortized over
// repeated executions.
package cms

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vliw"
)

// flagsReg is the pseudo-register index used for hazard tracking of the
// condition flags during scheduling.
const flagsReg = 200

// Translator converts x86 regions into VLIW translations.
type Translator struct {
	// MaxRegion bounds the number of x86 instructions in one region
	// (superblock along the fallthrough path).
	MaxRegion int
	// Wide selects the 128-bit (4-atom) molecule format; narrow (64-bit,
	// 2-atom) is kept for the molecule-width ablation.
	Wide bool
}

// NewTranslator returns a translator with the default region size and the
// wide molecule format.
func NewTranslator() *Translator {
	return &Translator{MaxRegion: 64, Wide: true}
}

// Translate builds a translation for the region starting at entryPC. The
// region follows the fallthrough path: conditional branches become
// side-exits, and the region ends at an unconditional jump, a hlt, the
// MaxRegion limit, or the end of the program.
func (t *Translator) Translate(p isa.Program, entryPC int) (*vliw.Translation, error) {
	if entryPC < 0 || entryPC >= len(p) {
		return nil, fmt.Errorf("cms: translate entry %d out of range", entryPC)
	}
	tr := &vliw.Translation{EntryPC: entryPC}
	sched := newScheduler(t.Wide)
	pc := entryPC
	for tr.SrcInstrs < t.maxRegion() && pc < len(p) {
		in := p[pc]
		atoms, exit, err := lower(in, pc)
		if err != nil {
			return nil, fmt.Errorf("cms: pc %d: %w", pc, err)
		}
		for _, a := range atoms {
			sched.add(a)
		}
		tr.SrcInstrs++
		pc++
		if exit {
			// Unconditional control transfer or hlt ends the region.
			tr.Molecules = sched.finish()
			tr.FallPC = pc // unreachable, but keep it valid
			if err := tr.Validate(); err != nil {
				return nil, err
			}
			return tr, nil
		}
	}
	tr.Molecules = sched.finish()
	tr.FallPC = pc
	if len(tr.Molecules) == 0 {
		// Region was all hlt-less empties (cannot happen with a valid
		// program, but keep the invariant that translations are non-empty).
		tr.Molecules = []vliw.Molecule{{Atoms: []vliw.Atom{{Op: vliw.ANop}}, Wide: t.Wide}}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func (t *Translator) maxRegion() int {
	if t.MaxRegion <= 0 {
		return 64
	}
	return t.MaxRegion
}

// lower maps one x86 instruction to native atoms. The mini ISA is already
// RISC-like, so lowering is one atom per instruction; the performance win
// comes from the scheduler packing those atoms into molecules. It returns
// exit=true when the instruction unconditionally leaves the region.
func lower(in isa.Instr, pc int) ([]vliw.Atom, bool, error) {
	a := vliw.Atom{Dst: in.Rd, Src1: in.Ra, Src2: in.Rb, Imm: in.Imm, F: in.F}
	switch in.Op {
	case isa.Nop:
		return nil, false, nil // pure no-ops vanish in translation
	case isa.Hlt:
		return []vliw.Atom{{Op: vliw.ABr, Imm: vliw.HaltCode(pc + 1)}}, true, nil
	case isa.MovI:
		a.Op = vliw.AMovI
	case isa.Mov:
		a.Op = vliw.AMov
	case isa.Add:
		a.Op = vliw.AAdd
	case isa.AddI:
		a.Op = vliw.AAddI
	case isa.Sub:
		a.Op = vliw.ASub
	case isa.SubI:
		a.Op = vliw.ASubI
	case isa.Mul:
		a.Op = vliw.AMul
	case isa.And:
		a.Op = vliw.AAnd
	case isa.Or:
		a.Op = vliw.AOr
	case isa.Xor:
		a.Op = vliw.AXor
	case isa.Shl:
		a.Op = vliw.AShl
	case isa.Shr:
		a.Op = vliw.AShr
	case isa.Cmp:
		a.Op = vliw.ACmp
	case isa.CmpI:
		a.Op = vliw.ACmpI
	case isa.Ld:
		a.Op = vliw.ALd
	case isa.St:
		a.Op = vliw.ASt
	case isa.FLd:
		a.Op = vliw.AFLd
	case isa.FSt:
		a.Op = vliw.AFSt
	case isa.FMovI:
		a.Op = vliw.AFMovI
	case isa.FMov:
		a.Op = vliw.AFMov
	case isa.FAdd:
		a.Op = vliw.AFAdd
	case isa.FSub:
		a.Op = vliw.AFSub
	case isa.FMul:
		a.Op = vliw.AFMul
	case isa.FDiv:
		a.Op = vliw.AFDiv
	case isa.FSqrt:
		a.Op = vliw.AFSqrt
	case isa.FNeg:
		a.Op = vliw.AFNeg
	case isa.FAbs:
		a.Op = vliw.AFAbs
	case isa.CvtIF:
		a.Op = vliw.ACvtIF
	case isa.CvtFI:
		a.Op = vliw.ACvtFI
	case isa.FCmp:
		a.Op = vliw.AFCmp
	case isa.Jmp:
		return []vliw.Atom{{Op: vliw.ABr, Imm: in.Imm}}, true, nil
	case isa.Jz:
		return []vliw.Atom{{Op: vliw.ABrZ, Imm: in.Imm}}, false, nil
	case isa.Jnz:
		return []vliw.Atom{{Op: vliw.ABrNZ, Imm: in.Imm}}, false, nil
	case isa.Jl:
		return []vliw.Atom{{Op: vliw.ABrL, Imm: in.Imm}}, false, nil
	case isa.Jle:
		return []vliw.Atom{{Op: vliw.ABrLE, Imm: in.Imm}}, false, nil
	case isa.Jg:
		return []vliw.Atom{{Op: vliw.ABrG, Imm: in.Imm}}, false, nil
	case isa.Jge:
		return []vliw.Atom{{Op: vliw.ABrGE, Imm: in.Imm}}, false, nil
	default:
		return nil, false, fmt.Errorf("unknown op %s", in.Op)
	}
	return []vliw.Atom{a}, false, nil
}

// scheduler performs greedy in-order list scheduling of atoms into
// molecules, honouring data hazards, memory ordering, unit slots, and
// branch barriers.
type scheduler struct {
	wide bool
	mols []vliw.Molecule
	// Hazard bookkeeping: the molecule index *after* which the value is
	// safe to read (producer molecule + 1), per register.
	intReady  map[uint8]int
	fpReady   map[uint8]int
	flagReady int
	// Per-molecule write sets for WAW checks.
	intWrites []map[uint8]bool
	fpWrites  []map[uint8]bool
	flagWrite []bool
	// WAR: last molecule index that reads a register; a write must not be
	// placed before it (parallel reads make same-molecule WAR legal).
	intLastRead map[uint8]int
	fpLastRead  map[uint8]int
	flagRead    int
	// Memory ordering.
	lastStoreMol int // index of molecule with the last store, -1 none
	lastLoadMol  int
	// Branch barrier: no atom may be placed at or before this index.
	floor int
	// Unit occupancy per molecule.
	aluUsed, fpuUsed, lsuUsed, bruUsed []int
}

func newScheduler(wide bool) *scheduler {
	return &scheduler{
		wide:         wide,
		intReady:     map[uint8]int{},
		fpReady:      map[uint8]int{},
		intLastRead:  map[uint8]int{},
		fpLastRead:   map[uint8]int{},
		lastStoreMol: -1,
		lastLoadMol:  -1,
		flagReady:    0,
		flagRead:     -1,
	}
}

func (s *scheduler) slots() int {
	if s.wide {
		return 4
	}
	return 2
}

func (s *scheduler) ensure(idx int) {
	for len(s.mols) <= idx {
		s.mols = append(s.mols, vliw.Molecule{Wide: s.wide})
		s.intWrites = append(s.intWrites, map[uint8]bool{})
		s.fpWrites = append(s.fpWrites, map[uint8]bool{})
		s.flagWrite = append(s.flagWrite, false)
		s.aluUsed = append(s.aluUsed, 0)
		s.fpuUsed = append(s.fpuUsed, 0)
		s.lsuUsed = append(s.lsuUsed, 0)
		s.bruUsed = append(s.bruUsed, 0)
	}
}

// atomDeps returns the registers the atom reads and writes, with flags
// modelled as pseudo-register reads/writes.
func atomDeps(a vliw.Atom) (readsI, readsF []uint8, writesI, writesF *uint8, readsFlags, writesFlags bool) {
	switch a.Op {
	case vliw.ACmp, vliw.ACmpI, vliw.AFCmp:
		writesFlags = true
	case vliw.ABrZ, vliw.ABrNZ, vliw.ABrL, vliw.ABrLE, vliw.ABrG, vliw.ABrGE:
		readsFlags = true
	}
	switch a.Op {
	case vliw.AMov, vliw.AAddI, vliw.ASubI, vliw.AShl, vliw.AShr, vliw.ACmpI, vliw.ACvtIF, vliw.ALd, vliw.AFLd:
		readsI = []uint8{a.Src1}
	case vliw.AAdd, vliw.ASub, vliw.AMul, vliw.AAnd, vliw.AOr, vliw.AXor, vliw.ACmp, vliw.ASt:
		readsI = []uint8{a.Src1, a.Src2}
	case vliw.AFSt:
		readsI = []uint8{a.Src1}
		readsF = []uint8{a.Src2}
	case vliw.AFMov, vliw.AFSqrt, vliw.AFNeg, vliw.AFAbs, vliw.ACvtFI:
		readsF = []uint8{a.Src1}
	case vliw.AFAdd, vliw.AFSub, vliw.AFMul, vliw.AFDiv, vliw.AFCmp:
		readsF = []uint8{a.Src1, a.Src2}
	}
	switch a.Op {
	case vliw.AMovI, vliw.AMov, vliw.AAdd, vliw.AAddI, vliw.ASub, vliw.ASubI,
		vliw.AMul, vliw.AAnd, vliw.AOr, vliw.AXor, vliw.AShl, vliw.AShr,
		vliw.ALd, vliw.ACvtFI:
		d := a.Dst
		writesI = &d
	case vliw.AFMovI, vliw.AFMov, vliw.AFAdd, vliw.AFSub, vliw.AFMul,
		vliw.AFDiv, vliw.AFSqrt, vliw.AFNeg, vliw.AFAbs, vliw.ACvtIF, vliw.AFLd:
		d := a.Dst
		writesF = &d
	}
	return
}

// add places the atom in the earliest feasible molecule.
func (s *scheduler) add(a vliw.Atom) {
	readsI, readsF, writesI, writesF, rFlags, wFlags := atomDeps(a)
	unit := vliw.UnitOf(a.Op)
	isLoad := a.Op == vliw.ALd || a.Op == vliw.AFLd
	isStore := a.Op == vliw.ASt || a.Op == vliw.AFSt
	isBr := vliw.IsBranch(a.Op)

	// Earliest index from RAW hazards.
	earliest := s.floor
	for _, r := range readsI {
		if s.intReady[r] > earliest {
			earliest = s.intReady[r]
		}
	}
	for _, r := range readsF {
		if s.fpReady[r] > earliest {
			earliest = s.fpReady[r]
		}
	}
	if rFlags && s.flagReady > earliest {
		earliest = s.flagReady
	}
	// WAW ordering: a write to r must land strictly after the previous
	// writer's molecule (intReady/fpReady hold producer index + 1).
	if writesI != nil && s.intReady[*writesI] > earliest {
		earliest = s.intReady[*writesI]
	}
	if writesF != nil && s.fpReady[*writesF] > earliest {
		earliest = s.fpReady[*writesF]
	}
	if wFlags && s.flagReady > earliest {
		earliest = s.flagReady
	}
	// Memory ordering: loads after stores; stores after loads and stores.
	if isLoad && s.lastStoreMol+1 > earliest {
		earliest = s.lastStoreMol + 1
	}
	if isStore {
		if s.lastStoreMol+1 > earliest {
			earliest = s.lastStoreMol + 1
		}
		if s.lastLoadMol+1 > earliest {
			earliest = s.lastLoadMol + 1
		}
	}
	// Branch barrier: a branch must come at or after every scheduled atom.
	if isBr {
		if n := len(s.mols); n > earliest {
			// Any occupied molecule forces the branch to its index or later.
			for i := n - 1; i >= earliest; i-- {
				if len(s.mols[i].Atoms) > 0 {
					if i > earliest {
						earliest = i
					}
					break
				}
			}
		}
	}

	for idx := earliest; ; idx++ {
		s.ensure(idx)
		m := &s.mols[idx]
		if len(m.Atoms) >= s.slots() {
			continue
		}
		// Unit slot availability.
		switch unit {
		case vliw.UnitALU:
			if s.aluUsed[idx] >= 2 {
				continue
			}
		case vliw.UnitFPU:
			if s.fpuUsed[idx] >= 1 {
				continue
			}
		case vliw.UnitLSU:
			if s.lsuUsed[idx] >= 1 {
				continue
			}
		case vliw.UnitBRU:
			if s.bruUsed[idx] >= 1 {
				continue
			}
		}
		// WAW within molecule.
		if writesI != nil && s.intWrites[idx][*writesI] {
			continue
		}
		if writesF != nil && s.fpWrites[idx][*writesF] {
			continue
		}
		if wFlags && s.flagWrite[idx] {
			continue
		}
		// Flags RAW/WAW across the same molecule: a flag reader may not
		// share a molecule with a flag writer (ACmp applies its write
		// immediately, so parallel-read semantics would break).
		if rFlags && s.flagWrite[idx] {
			continue
		}
		if wFlags && s.flagRead == idx {
			continue
		}
		// WAR: a write may not land before a molecule that reads the old
		// value. Same-molecule WAR is fine (parallel reads).
		if writesI != nil && s.intLastRead[*writesI] > idx {
			continue
		}
		if writesF != nil && s.fpLastRead[*writesF] > idx {
			continue
		}
		if wFlags && s.flagRead > idx {
			continue
		}
		// Also WAW across molecules: writing earlier than a later write
		// cannot happen with in-order greedy placement (each write lands
		// at the current frontier), so no extra check is needed.

		// Place it.
		m.Atoms = append(m.Atoms, a)
		switch unit {
		case vliw.UnitALU:
			s.aluUsed[idx]++
		case vliw.UnitFPU:
			s.fpuUsed[idx]++
		case vliw.UnitLSU:
			s.lsuUsed[idx]++
		case vliw.UnitBRU:
			s.bruUsed[idx]++
		}
		for _, r := range readsI {
			if idx > s.intLastRead[r] {
				s.intLastRead[r] = idx
			}
		}
		for _, r := range readsF {
			if idx > s.fpLastRead[r] {
				s.fpLastRead[r] = idx
			}
		}
		if rFlags && idx > s.flagRead {
			s.flagRead = idx
		}
		if writesI != nil {
			s.intWrites[idx][*writesI] = true
			if idx+1 > s.intReady[*writesI] {
				s.intReady[*writesI] = idx + 1
			}
		}
		if writesF != nil {
			s.fpWrites[idx][*writesF] = true
			if idx+1 > s.fpReady[*writesF] {
				s.fpReady[*writesF] = idx + 1
			}
		}
		if wFlags {
			s.flagWrite[idx] = true
			if idx+1 > s.flagReady {
				s.flagReady = idx + 1
			}
		}
		if isLoad && idx > s.lastLoadMol {
			s.lastLoadMol = idx
		}
		if isStore && idx > s.lastStoreMol {
			s.lastStoreMol = idx
		}
		if isBr {
			// Nothing may move at or before the branch's molecule, and the
			// branch must be the last atom of its molecule.
			s.floor = idx + 1
			// Move branch to last slot if atoms follow it in encoding.
			last := len(m.Atoms) - 1
			for i := 0; i < last; i++ {
				if vliw.IsBranch(m.Atoms[i].Op) {
					m.Atoms[i], m.Atoms[last] = m.Atoms[last], m.Atoms[i]
				}
			}
		}
		return
	}
}

// finish returns the scheduled molecules, dropping trailing empties.
func (s *scheduler) finish() []vliw.Molecule {
	out := make([]vliw.Molecule, 0, len(s.mols))
	for _, m := range s.mols {
		if len(m.Atoms) > 0 {
			out = append(out, m)
		}
	}
	return out
}
