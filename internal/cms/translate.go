// Package cms models Transmeta's Code Morphing Software as the paper's
// §2.2 describes it: an interpreter that executes x86 instructions one at
// a time while collecting run-time statistics, and a translator that
// recompiles hot x86 regions into optimized VLIW molecules, cached in a
// translation cache so the (large) translation cost is amortized over
// repeated executions.
package cms

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/vliw"
)

// Translator converts x86 regions into VLIW translations. It owns a
// reusable scheduler arena, so a Translator must not be shared between
// goroutines (each cms.Machine has its own).
type Translator struct {
	// MaxRegion bounds the number of x86 instructions in one region
	// (block along the fallthrough path).
	MaxRegion int
	// Wide selects the 128-bit (4-atom) molecule format; narrow (64-bit,
	// 2-atom) is kept for the molecule-width ablation.
	Wide bool

	sched scheduler // scratch, reset per translation
}

// NewTranslator returns a translator with the default region size and the
// wide molecule format.
func NewTranslator() *Translator {
	return &Translator{MaxRegion: 64, Wide: true}
}

// Translate builds a translation for the region starting at entryPC. The
// region follows the fallthrough path: conditional branches become
// side-exits, and the region ends at an unconditional jump, a hlt, the
// MaxRegion limit, or the end of the program.
func (t *Translator) Translate(p isa.Program, entryPC int) (*vliw.Translation, error) {
	if entryPC < 0 || entryPC >= len(p) {
		return nil, fmt.Errorf("cms: translate entry %d out of range", entryPC)
	}
	tr := &vliw.Translation{EntryPC: entryPC}
	sched := &t.sched
	sched.reset(t.Wide, false)
	pc := entryPC
	for tr.SrcInstrs < t.maxRegion() && pc < len(p) {
		in := p[pc]
		atoms, exit, err := lower(in, pc)
		if err != nil {
			return nil, fmt.Errorf("cms: pc %d: %w", pc, err)
		}
		for _, a := range atoms {
			sched.add(a)
		}
		tr.SrcInstrs++
		pc++
		if exit {
			// Unconditional control transfer or hlt ends the region.
			tr.Molecules = sched.finish()
			tr.FallPC = pc // unreachable, but keep it valid
			if err := tr.Validate(); err != nil {
				return nil, err
			}
			return tr, nil
		}
	}
	tr.Molecules = sched.finish()
	tr.FallPC = pc
	if len(tr.Molecules) == 0 {
		// Region was all hlt-less empties (cannot happen with a valid
		// program, but keep the invariant that translations are non-empty).
		tr.Molecules = []vliw.Molecule{{Atoms: []vliw.Atom{{Op: vliw.ANop}}, Wide: t.Wide}}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// TranslateQuick is the first translation gear: the same region shape as
// Translate, but emitted one atom per molecule with no scheduling at all.
// It is cheap to produce (low QuickCostPerInstr) and exists to get off the
// interpreter fast; the superblock reoptimizer replaces it once the region
// proves hot.
func (t *Translator) TranslateQuick(p isa.Program, entryPC int) (*vliw.Translation, error) {
	if entryPC < 0 || entryPC >= len(p) {
		return nil, fmt.Errorf("cms: translate entry %d out of range", entryPC)
	}
	tr := &vliw.Translation{EntryPC: entryPC, Gear: 1}
	var backing []vliw.Atom
	pc := entryPC
	for tr.SrcInstrs < t.maxRegion() && pc < len(p) {
		in := p[pc]
		atoms, exit, err := lower(in, pc)
		if err != nil {
			return nil, fmt.Errorf("cms: pc %d: %w", pc, err)
		}
		backing = append(backing, atoms...)
		tr.SrcInstrs++
		pc++
		if exit {
			break
		}
	}
	tr.FallPC = pc
	if len(backing) == 0 {
		backing = append(backing, vliw.Atom{Op: vliw.ANop})
	}
	tr.Molecules = make([]vliw.Molecule, len(backing))
	for i := range backing {
		tr.Molecules[i] = vliw.Molecule{Atoms: backing[i : i+1 : i+1], Wide: t.Wide}
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

func (t *Translator) maxRegion() int {
	if t.MaxRegion <= 0 {
		return 64
	}
	return t.MaxRegion
}

// lower maps one x86 instruction to native atoms. The mini ISA is already
// RISC-like, so lowering is one atom per instruction; the performance win
// comes from the scheduler packing those atoms into molecules. It returns
// exit=true when the instruction unconditionally leaves the region.
func lower(in isa.Instr, pc int) ([]vliw.Atom, bool, error) {
	a := vliw.Atom{Dst: in.Rd, Src1: in.Ra, Src2: in.Rb, Imm: in.Imm, F: in.F}
	switch in.Op {
	case isa.Nop:
		return nil, false, nil // pure no-ops vanish in translation
	case isa.Hlt:
		return []vliw.Atom{{Op: vliw.ABr, Imm: vliw.HaltCode(pc + 1)}}, true, nil
	case isa.MovI:
		a.Op = vliw.AMovI
	case isa.Mov:
		a.Op = vliw.AMov
	case isa.Add:
		a.Op = vliw.AAdd
	case isa.AddI:
		a.Op = vliw.AAddI
	case isa.Sub:
		a.Op = vliw.ASub
	case isa.SubI:
		a.Op = vliw.ASubI
	case isa.Mul:
		a.Op = vliw.AMul
	case isa.And:
		a.Op = vliw.AAnd
	case isa.Or:
		a.Op = vliw.AOr
	case isa.Xor:
		a.Op = vliw.AXor
	case isa.Shl:
		a.Op = vliw.AShl
	case isa.Shr:
		a.Op = vliw.AShr
	case isa.Cmp:
		a.Op = vliw.ACmp
	case isa.CmpI:
		a.Op = vliw.ACmpI
	case isa.Ld:
		a.Op = vliw.ALd
	case isa.St:
		a.Op = vliw.ASt
	case isa.FLd:
		a.Op = vliw.AFLd
	case isa.FSt:
		a.Op = vliw.AFSt
	case isa.FMovI:
		a.Op = vliw.AFMovI
	case isa.FMov:
		a.Op = vliw.AFMov
	case isa.FAdd:
		a.Op = vliw.AFAdd
	case isa.FSub:
		a.Op = vliw.AFSub
	case isa.FMul:
		a.Op = vliw.AFMul
	case isa.FDiv:
		a.Op = vliw.AFDiv
	case isa.FSqrt:
		a.Op = vliw.AFSqrt
	case isa.FNeg:
		a.Op = vliw.AFNeg
	case isa.FAbs:
		a.Op = vliw.AFAbs
	case isa.CvtIF:
		a.Op = vliw.ACvtIF
	case isa.CvtFI:
		a.Op = vliw.ACvtFI
	case isa.FCmp:
		a.Op = vliw.AFCmp
	case isa.Jmp:
		return []vliw.Atom{{Op: vliw.ABr, Imm: in.Imm}}, true, nil
	case isa.Jz:
		return []vliw.Atom{{Op: vliw.ABrZ, Imm: in.Imm}}, false, nil
	case isa.Jnz:
		return []vliw.Atom{{Op: vliw.ABrNZ, Imm: in.Imm}}, false, nil
	case isa.Jl:
		return []vliw.Atom{{Op: vliw.ABrL, Imm: in.Imm}}, false, nil
	case isa.Jle:
		return []vliw.Atom{{Op: vliw.ABrLE, Imm: in.Imm}}, false, nil
	case isa.Jg:
		return []vliw.Atom{{Op: vliw.ABrG, Imm: in.Imm}}, false, nil
	case isa.Jge:
		return []vliw.Atom{{Op: vliw.ABrGE, Imm: in.Imm}}, false, nil
	default:
		return nil, false, fmt.Errorf("unknown op %s", in.Op)
	}
	return []vliw.Atom{a}, false, nil
}

// noReg marks "no register" in atomDeps' write results.
const noReg = -1

// specPressureLimit caps speculative load hoisting: when this many
// register values are already in flight at the candidate molecule, the
// load stays at the conservative position instead of stretching live
// ranges further (register-pressure-aware packing).
const specPressureLimit = 12

// schedStore records a scheduled store for speculative load
// disambiguation: the molecule it landed in, its base register and that
// register's SSA-like version at the time, and its displacement.
type schedStore struct {
	mol  int
	base uint8
	ver  uint32
	imm  int64
}

// scheduler performs greedy in-order list scheduling of atoms into
// molecules, honouring data hazards, memory ordering, unit slots, and
// branch barriers. All scratch state lives in reusable arenas (arrays and
// capacity-retaining slices) so steady-state translation allocates only
// the finished molecules.
type scheduler struct {
	wide bool
	// spec enables the gear-2 reoptimizer's speculative load hoisting: a
	// load may move above a store when the two provably address different
	// words (same base register version, different displacement), subject
	// to specPressureLimit.
	spec bool

	// Per-molecule scratch, parallel slices indexed by molecule.
	n      int
	atoms  [][4]vliw.Atom
	counts []uint8
	// Unit occupancy per molecule.
	aluUsed, fpuUsed, lsuUsed, bruUsed []uint8
	// Per-molecule write sets (bitsets) for WAW checks.
	intWrites []uint64
	fpWrites  []uint32
	flagWrite []bool

	// Hazard bookkeeping: the molecule index *after* which the value is
	// safe to read (producer molecule + 1), per register.
	intReady  [vliw.NumIntRegs]int
	fpReady   [vliw.NumFPRegs]int
	flagReady int
	// WAR: last molecule index that reads a register; a write must not be
	// placed before it (parallel reads make same-molecule WAR legal).
	intLastRead [vliw.NumIntRegs]int
	fpLastRead  [vliw.NumFPRegs]int
	flagRead    int
	// Memory ordering.
	lastStoreMol int // index of molecule with the last store, -1 none
	lastLoadMol  int
	// Branch barrier: no atom may be placed at or before this index.
	floor int

	// Speculation state: version counters for int registers (bumped per
	// write in program order) and the scheduled stores.
	regVer [vliw.NumIntRegs]uint32
	stores []schedStore
}

// reset prepares the scheduler for a new translation, retaining arena
// capacity from previous uses.
func (s *scheduler) reset(wide, spec bool) {
	s.wide, s.spec = wide, spec
	s.n = 0
	s.atoms = s.atoms[:0]
	s.counts = s.counts[:0]
	s.aluUsed = s.aluUsed[:0]
	s.fpuUsed = s.fpuUsed[:0]
	s.lsuUsed = s.lsuUsed[:0]
	s.bruUsed = s.bruUsed[:0]
	s.intWrites = s.intWrites[:0]
	s.fpWrites = s.fpWrites[:0]
	s.flagWrite = s.flagWrite[:0]
	for i := range s.intReady {
		s.intReady[i] = 0
		s.intLastRead[i] = 0
		s.regVer[i] = 0
	}
	for i := range s.fpReady {
		s.fpReady[i] = 0
		s.fpLastRead[i] = 0
	}
	s.flagReady, s.flagRead = 0, -1
	s.lastStoreMol, s.lastLoadMol = -1, -1
	s.floor = 0
	s.stores = s.stores[:0]
}

func (s *scheduler) slots() int {
	if s.wide {
		return 4
	}
	return 2
}

func (s *scheduler) ensure(idx int) {
	for s.n <= idx {
		s.atoms = append(s.atoms, [4]vliw.Atom{})
		s.counts = append(s.counts, 0)
		s.aluUsed = append(s.aluUsed, 0)
		s.fpuUsed = append(s.fpuUsed, 0)
		s.lsuUsed = append(s.lsuUsed, 0)
		s.bruUsed = append(s.bruUsed, 0)
		s.intWrites = append(s.intWrites, 0)
		s.fpWrites = append(s.fpWrites, 0)
		s.flagWrite = append(s.flagWrite, false)
		s.n++
	}
}

// inFlight counts register values produced but not yet ready at molecule
// idx — the live values a speculative hoist would have to coexist with.
func (s *scheduler) inFlight(idx int) int {
	n := 0
	for r := range s.intReady {
		if s.intReady[r] > idx {
			n++
		}
	}
	for r := range s.fpReady {
		if s.fpReady[r] > idx {
			n++
		}
	}
	return n
}

// atomDeps returns the registers the atom reads and writes, with flags
// modelled as pseudo-register reads/writes. Reads come back in fixed
// arrays with a count; writes are noReg when absent.
func atomDeps(a *vliw.Atom) (ri [2]uint8, nri int, rf [2]uint8, nrf int, wi, wf int, rFlags, wFlags bool) {
	wi, wf = noReg, noReg
	switch a.Op {
	case vliw.ACmp, vliw.ACmpI, vliw.AFCmp:
		wFlags = true
	case vliw.ABrZ, vliw.ABrNZ, vliw.ABrL, vliw.ABrLE, vliw.ABrG, vliw.ABrGE:
		rFlags = true
	}
	switch a.Op {
	case vliw.AMov, vliw.AAddI, vliw.ASubI, vliw.AShl, vliw.AShr, vliw.ACmpI, vliw.ACvtIF, vliw.ALd, vliw.AFLd:
		ri[0], nri = a.Src1, 1
	case vliw.AAdd, vliw.ASub, vliw.AMul, vliw.AAnd, vliw.AOr, vliw.AXor, vliw.ACmp, vliw.ASt:
		ri[0], ri[1], nri = a.Src1, a.Src2, 2
	case vliw.AFSt:
		ri[0], nri = a.Src1, 1
		rf[0], nrf = a.Src2, 1
	case vliw.AFMov, vliw.AFSqrt, vliw.AFNeg, vliw.AFAbs, vliw.ACvtFI:
		rf[0], nrf = a.Src1, 1
	case vliw.AFAdd, vliw.AFSub, vliw.AFMul, vliw.AFDiv, vliw.AFCmp:
		rf[0], rf[1], nrf = a.Src1, a.Src2, 2
	}
	switch a.Op {
	case vliw.AMovI, vliw.AMov, vliw.AAdd, vliw.AAddI, vliw.ASub, vliw.ASubI,
		vliw.AMul, vliw.AAnd, vliw.AOr, vliw.AXor, vliw.AShl, vliw.AShr,
		vliw.ALd, vliw.ACvtFI:
		wi = int(a.Dst)
	case vliw.AFMovI, vliw.AFMov, vliw.AFAdd, vliw.AFSub, vliw.AFMul,
		vliw.AFDiv, vliw.AFSqrt, vliw.AFNeg, vliw.AFAbs, vliw.ACvtIF, vliw.AFLd:
		wf = int(a.Dst)
	}
	return
}

// add places the atom in the earliest feasible molecule.
func (s *scheduler) add(a vliw.Atom) {
	ri, nri, rf, nrf, wi, wf, rFlags, wFlags := atomDeps(&a)
	unit := vliw.UnitOf(a.Op)
	isLoad := a.Op == vliw.ALd || a.Op == vliw.AFLd
	isStore := a.Op == vliw.ASt || a.Op == vliw.AFSt
	isBr := vliw.IsBranch(a.Op)

	// Earliest index from RAW hazards.
	earliest := s.floor
	for k := 0; k < nri; k++ {
		if v := s.intReady[ri[k]]; v > earliest {
			earliest = v
		}
	}
	for k := 0; k < nrf; k++ {
		if v := s.fpReady[rf[k]]; v > earliest {
			earliest = v
		}
	}
	if rFlags && s.flagReady > earliest {
		earliest = s.flagReady
	}
	// WAW ordering: a write to r must land strictly after the previous
	// writer's molecule (intReady/fpReady hold producer index + 1).
	if wi >= 0 && s.intReady[wi] > earliest {
		earliest = s.intReady[wi]
	}
	if wf >= 0 && s.fpReady[wf] > earliest {
		earliest = s.fpReady[wf]
	}
	if wFlags && s.flagReady > earliest {
		earliest = s.flagReady
	}
	// Memory ordering: loads after stores; stores after loads and stores.
	if isLoad {
		conservative := s.lastStoreMol + 1
		if !s.spec {
			if conservative > earliest {
				earliest = conservative
			}
		} else {
			// Speculative hoisting: the load may bypass a store only when
			// the two provably address different words — same base
			// register at the same version, different displacement.
			lb := 0
			for i := range s.stores {
				st := &s.stores[i]
				if st.base == a.Src1 && st.ver == s.regVer[a.Src1] && st.imm != a.Imm {
					continue
				}
				if st.mol+1 > lb {
					lb = st.mol + 1
				}
			}
			if lb > earliest {
				earliest = lb
			}
			if earliest < conservative && s.inFlight(earliest) >= specPressureLimit {
				earliest = conservative
			}
		}
	}
	if isStore {
		if s.lastStoreMol+1 > earliest {
			earliest = s.lastStoreMol + 1
		}
		if s.lastLoadMol+1 > earliest {
			earliest = s.lastLoadMol + 1
		}
	}
	// Branch barrier: a branch must come at or after every scheduled atom.
	if isBr {
		for i := s.n - 1; i >= earliest; i-- {
			if s.counts[i] > 0 {
				if i > earliest {
					earliest = i
				}
				break
			}
		}
	}

	for idx := earliest; ; idx++ {
		s.ensure(idx)
		if int(s.counts[idx]) >= s.slots() {
			continue
		}
		// Unit slot availability.
		switch unit {
		case vliw.UnitALU:
			if s.aluUsed[idx] >= 2 {
				continue
			}
		case vliw.UnitFPU:
			if s.fpuUsed[idx] >= 1 {
				continue
			}
		case vliw.UnitLSU:
			if s.lsuUsed[idx] >= 1 {
				continue
			}
		case vliw.UnitBRU:
			if s.bruUsed[idx] >= 1 {
				continue
			}
		}
		// WAW within molecule.
		if wi >= 0 && s.intWrites[idx]&(1<<uint(wi)) != 0 {
			continue
		}
		if wf >= 0 && s.fpWrites[idx]&(1<<uint(wf)) != 0 {
			continue
		}
		if wFlags && s.flagWrite[idx] {
			continue
		}
		// Flags RAW/WAW across the same molecule: a flag reader may not
		// share a molecule with a flag writer (ACmp applies its write
		// immediately, so parallel-read semantics would break).
		if rFlags && s.flagWrite[idx] {
			continue
		}
		if wFlags && s.flagRead == idx {
			continue
		}
		// WAR: a write may not land before a molecule that reads the old
		// value. Same-molecule WAR is fine (parallel reads).
		if wi >= 0 && s.intLastRead[wi] > idx {
			continue
		}
		if wf >= 0 && s.fpLastRead[wf] > idx {
			continue
		}
		if wFlags && s.flagRead > idx {
			continue
		}

		// Place it.
		s.atoms[idx][s.counts[idx]] = a
		s.counts[idx]++
		switch unit {
		case vliw.UnitALU:
			s.aluUsed[idx]++
		case vliw.UnitFPU:
			s.fpuUsed[idx]++
		case vliw.UnitLSU:
			s.lsuUsed[idx]++
		case vliw.UnitBRU:
			s.bruUsed[idx]++
		}
		for k := 0; k < nri; k++ {
			if idx > s.intLastRead[ri[k]] {
				s.intLastRead[ri[k]] = idx
			}
		}
		for k := 0; k < nrf; k++ {
			if idx > s.fpLastRead[rf[k]] {
				s.fpLastRead[rf[k]] = idx
			}
		}
		if rFlags && idx > s.flagRead {
			s.flagRead = idx
		}
		if isStore && s.spec {
			// Record before any version bump: the store's address uses the
			// base register's current value.
			s.stores = append(s.stores, schedStore{mol: idx, base: a.Src1, ver: s.regVer[a.Src1], imm: a.Imm})
		}
		if wi >= 0 {
			s.intWrites[idx] |= 1 << uint(wi)
			if idx+1 > s.intReady[wi] {
				s.intReady[wi] = idx + 1
			}
			s.regVer[wi]++
		}
		if wf >= 0 {
			s.fpWrites[idx] |= 1 << uint(wf)
			if idx+1 > s.fpReady[wf] {
				s.fpReady[wf] = idx + 1
			}
		}
		if wFlags {
			s.flagWrite[idx] = true
			if idx+1 > s.flagReady {
				s.flagReady = idx + 1
			}
		}
		if isLoad && idx > s.lastLoadMol {
			s.lastLoadMol = idx
		}
		if isStore && idx > s.lastStoreMol {
			s.lastStoreMol = idx
		}
		if isBr {
			// Nothing may move at or before the branch's molecule, and the
			// branch must be the last atom of its molecule.
			s.floor = idx + 1
			last := s.counts[idx] - 1
			for i := uint8(0); i < last; i++ {
				if vliw.IsBranch(s.atoms[idx][i].Op) {
					s.atoms[idx][i], s.atoms[idx][last] = s.atoms[idx][last], s.atoms[idx][i]
				}
			}
		}
		return
	}
}

// finish returns the scheduled molecules, dropping empties. The atoms of
// every molecule share one backing array, so a finished translation is a
// single contiguous allocation plus the molecule headers.
func (s *scheduler) finish() []vliw.Molecule {
	total, used := 0, 0
	for i := 0; i < s.n; i++ {
		if s.counts[i] > 0 {
			used++
			total += int(s.counts[i])
		}
	}
	if used == 0 {
		return nil
	}
	backing := make([]vliw.Atom, 0, total)
	out := make([]vliw.Molecule, 0, used)
	for i := 0; i < s.n; i++ {
		c := int(s.counts[i])
		if c == 0 {
			continue
		}
		start := len(backing)
		backing = append(backing, s.atoms[i][:c]...)
		out = append(out, vliw.Molecule{Atoms: backing[start : start+c : start+c], Wide: s.wide})
	}
	return out
}
