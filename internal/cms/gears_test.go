package cms

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/vliw"
)

// newGearedMachine builds a machine with the tiered pipeline enabled and
// a low promotion threshold so short test programs reach gear 2.
func newGearedMachine(hot, reopt int) *Machine {
	p := DefaultParams().WithGears()
	p.HotThreshold = hot
	p.ReoptThreshold = reopt
	return NewMachine(p, vliw.TM5600Timing())
}

func TestWithGearsEnablesTiering(t *testing.T) {
	base := DefaultParams()
	if base.GearsEnabled() {
		t.Fatal("default params must keep the single-gear pipeline")
	}
	g := base.WithGears()
	if !g.GearsEnabled() {
		t.Fatal("WithGears must enable tiering")
	}
	if g.QuickCostPerInstr >= base.TranslateCostPerInstr {
		t.Fatalf("quick translate (%d cy/instr) must be cheaper than the full translator (%d cy/instr)",
			g.QuickCostPerInstr, base.TranslateCostPerInstr)
	}
	if g.ReoptCostPerInstr <= g.QuickCostPerInstr {
		t.Fatalf("reoptimization (%d cy/instr) should cost more than the quick gear (%d cy/instr)",
			g.ReoptCostPerInstr, g.QuickCostPerInstr)
	}
}

func TestGearPromotionCounters(t *testing.T) {
	_, m := func() (*isa.State, *Machine) {
		p := isa.MustAssemble(sumLoopSrc)
		m := newGearedMachine(1, 4)
		st := isa.NewState(0)
		if _, _, err := m.Run(p, st, 0); err != nil {
			t.Fatal(err)
		}
		return st, m
	}()
	s := m.Stats()
	if s.QuickTranslations == 0 {
		t.Fatalf("geared run produced no quick translations: %+v", s)
	}
	if s.Reopts == 0 {
		t.Fatalf("hot loop never promoted to gear 2: %+v", s)
	}
	if s.ReoptCycles == 0 || s.ReoptInstrs == 0 {
		t.Fatalf("reoptimization recorded no cost: %+v", s)
	}
	if s.SuperblockExecs == 0 {
		t.Fatalf("superblock never executed after promotion: %+v", s)
	}
}

func TestGearsOffNeverReoptimizes(t *testing.T) {
	p := isa.MustAssemble(sumLoopSrc)
	m := newTestMachine(1)
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.QuickTranslations != 0 || s.Reopts != 0 || s.SuperblockExecs != 0 {
		t.Fatalf("single-gear run used the tiered pipeline: %+v", s)
	}
}

func TestSuperblockFollowsBiasAndSideExits(t *testing.T) {
	// The inner conditional is taken 7 times out of 8, so the superblock
	// should speculate along the taken path and fall off it (a side exit)
	// only on the biased-against iterations.
	src := `
		movi r1, 0
		movi r3, 0
		movi r4, 0
	loop:
		addi r1, r1, 1
		addi r4, r4, 1
		cmpi r4, 8
		jnz  hot           ; taken 7/8 of the time
		movi r4, 0
	hot:
		addi r3, r3, 1
		cmpi r1, 4000
		jl   loop
		hlt
	`
	ref := isa.NewState(0)
	prog := isa.MustAssemble(src)
	if err := isa.Run(prog, ref, nil, 10_000_000); err != nil {
		t.Fatal(err)
	}
	m := newGearedMachine(1, 8)
	st := isa.NewState(0)
	if _, _, err := m.Run(prog, st, 0); err != nil {
		t.Fatal(err)
	}
	if !ref.Equal(st) {
		t.Fatalf("biased-branch program diverged: ref R=%v, cms R=%v", ref.R, st.R)
	}
	s := m.Stats()
	if s.Reopts == 0 || s.SuperblockExecs == 0 {
		t.Fatalf("hot biased loop never reached gear 2: %+v", s)
	}
	if s.SideExits == 0 {
		t.Fatalf("expected some side exits on the 1-in-8 iterations: %+v", s)
	}
	if s.SideExits >= s.SuperblockExecs {
		t.Fatalf("side exits (%d) should be the minority of superblock executions (%d)",
			s.SideExits, s.SuperblockExecs)
	}
}

func TestGearedStatsTotalCyclesConsistent(t *testing.T) {
	p := isa.MustAssemble(sumLoopSrc)
	m := newGearedMachine(2, 4)
	st := isa.NewState(0)
	cycles, _, err := m.Run(p, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if cycles != s.TotalCycles() {
		t.Fatalf("Run returned %d cycles, stats sum to %d", cycles, s.TotalCycles())
	}
	sum := s.InterpCycles + s.TranslateCycles + s.ReoptCycles + s.NativeCycles + s.DispatchCycles
	if cycles != sum {
		t.Fatalf("cycle categories sum to %d, want %d", sum, cycles)
	}
	if s.ReoptCycles == 0 {
		t.Fatalf("geared run should record reoptimization cycles: %+v", s)
	}
}

// TestGearsSpeedUpGravityMicrokernel is the PR's acceptance check on the
// paper's Table 1 microkernel: with gears on, simulated cycles drop while
// the computed accelerations stay bit-identical.
func TestGearsSpeedUpGravityMicrokernel(t *testing.T) {
	for _, variant := range []kernels.GravVariant{kernels.GravMath, kernels.GravKarp} {
		variant := variant
		t.Run(variant.String(), func(t *testing.T) {
			g := kernels.DefaultGravMicro(variant)
			run := func(params Params) (uint64, [3]float64) {
				prog, st, err := g.Build()
				if err != nil {
					t.Fatal(err)
				}
				m := NewMachine(params, vliw.TM5600Timing())
				cycles, _, err := m.Run(prog, st, 0)
				if err != nil {
					t.Fatal(err)
				}
				ax, ay, az := kernels.ReadAccel(st)
				return cycles, [3]float64{ax, ay, az}
			}
			offCycles, offAccel := run(DefaultParams())
			onCycles, onAccel := run(DefaultParams().WithGears())
			if onAccel != offAccel {
				t.Fatalf("gears changed results: off %v, on %v", offAccel, onAccel)
			}
			if onCycles >= offCycles {
				t.Fatalf("gears did not reduce simulated cycles: off %d, on %d", offCycles, onCycles)
			}
			t.Logf("%s: %d → %d simulated cycles (%.1f%% saved)",
				variant, offCycles, onCycles,
				100*float64(offCycles-onCycles)/float64(offCycles))
		})
	}
}

func TestSuperblockDirectAPI(t *testing.T) {
	// Drive Translator.Superblock directly with a synthetic profile that
	// marks the loop back-edge strongly taken; the superblock must cover
	// more than one basic block and end in a fallthrough main exit.
	src := `
	loop:
		addi r1, r1, 1
		cmpi r1, 100
		jl   loop
		hlt
	`
	p := isa.MustAssemble(src)
	prof := func(pc int) (taken, seen uint64) { return 99, 100 }
	tr := NewTranslator()
	tl, err := tr.Superblock(p, 0, prof, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Gear != 2 {
		t.Fatalf("Gear = %d, want 2", tl.Gear)
	}
	if tl.SrcInstrs <= 3 {
		t.Fatalf("superblock covered %d instrs; the biased back-edge should unroll past one iteration", tl.SrcInstrs)
	}
	if err := tl.Validate(); err != nil {
		t.Fatalf("superblock failed validation: %v", err)
	}
}

func TestPackingDensityGuardsZeroMolecules(t *testing.T) {
	// A machine that never executed natively (or a zero Stats value) must
	// report density 0, not NaN — obs gauges and JSON output both choke
	// on NaN.
	var s Stats
	if d := s.PackingDensity(); d != 0 {
		t.Fatalf("PackingDensity on empty stats = %v, want 0", d)
	}
	m := newTestMachine(1_000_000) // never hot: interpretation only
	p := isa.MustAssemble("movi r1, 7\nhlt")
	st := isa.NewState(0)
	if _, _, err := m.Run(p, st, 0); err != nil {
		t.Fatal(err)
	}
	if d := m.Stats().PackingDensity(); d != 0 {
		t.Fatalf("PackingDensity with no native execution = %v, want 0", d)
	}
}

func TestBiasedTakenThresholds(t *testing.T) {
	cases := []struct {
		taken, seen uint64
		want        bool
	}{
		{0, 0, false}, // never seen
		{3, 3, false}, // too few samples
		{4, 4, true},  // unanimous at the sample floor
		{3, 4, true},  // exactly 75%
		{2, 4, false}, // below bias
		{74, 100, false},
		{75, 100, true},
	}
	for _, c := range cases {
		if got := biasedTaken(c.taken, c.seen); got != c.want {
			t.Errorf("biasedTaken(%d, %d) = %v, want %v", c.taken, c.seen, got, c.want)
		}
	}
}
