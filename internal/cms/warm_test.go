package cms

import (
	"testing"

	"repro/internal/isa"
)

// TestRunCountersDistinguishWarmRuns asserts Stats counts runs and which
// of them started with a warm (non-empty) translation cache — the
// visibility hook for cpu.Crusoe's opt-in warm-start mode.
func TestRunCountersDistinguishWarmRuns(t *testing.T) {
	p := isa.MustAssemble(sumLoopSrc)
	m := newTestMachine(4) // hot enough to translate the loop on run 1
	for run := 1; run <= 3; run++ {
		st := isa.NewState(0)
		if _, _, err := m.Run(p, st, 0); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
	}
	s := m.Stats()
	if s.Runs != 3 {
		t.Fatalf("Runs = %d, want 3", s.Runs)
	}
	if s.WarmRuns != 2 {
		t.Fatalf("WarmRuns = %d, want 2 (first run is cold)", s.WarmRuns)
	}
	if s.Translations == 0 {
		t.Fatal("expected the loop to be translated")
	}
	m.Reset()
	if s := m.Stats(); s.Runs != 0 || s.WarmRuns != 0 {
		t.Fatalf("Reset should zero run counters: %+v", s)
	}
}
