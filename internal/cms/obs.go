package cms

import "repro/internal/obs"

// This file re-homes CMS telemetry onto the unified obs layer: Stats
// (and therefore Machine) implement obs.Source, and the legacy
// field-poking path — calling Machine.Stats() and reading struct
// fields — remains as a thin view over the same numbers.

// statsMetrics is the CMS stats vocabulary; counter values are per-run
// deltas, so gathering several machines (or several runs) accumulates.
var statsMetrics = []obs.Metric{
	{Name: "cms.runs", Kind: obs.KindCounter, Help: "Run invocations"},
	{Name: "cms.runs.warm", Kind: obs.KindCounter, Help: "runs entered with a non-empty translation cache"},
	{Name: "cms.interp.instrs", Kind: obs.KindCounter, Help: "x86 instructions interpreted"},
	{Name: "cms.interp.cycles", Kind: obs.KindCounter, Unit: "cycles", Help: "cycles spent interpreting"},
	{Name: "cms.translate.regions", Kind: obs.KindCounter, Help: "regions translated"},
	{Name: "cms.translate.instrs", Kind: obs.KindCounter, Help: "x86 instructions covered by translations"},
	{Name: "cms.translate.cycles", Kind: obs.KindCounter, Unit: "cycles", Help: "cycles spent translating"},
	{Name: "cms.native.executions", Kind: obs.KindCounter, Help: "translation executions"},
	{Name: "cms.native.cycles", Kind: obs.KindCounter, Unit: "cycles", Help: "cycles inside translated code (VLIW accounting)"},
	{Name: "cms.native.atoms", Kind: obs.KindCounter, Help: "VLIW atoms executed"},
	{Name: "cms.native.molecules", Kind: obs.KindCounter, Help: "VLIW molecules issued"},
	{Name: "cms.dispatch.cycles", Kind: obs.KindCounter, Unit: "cycles", Help: "translation-cache dispatch cycles"},
	{Name: "cms.dispatch.chained", Kind: obs.KindCounter, Help: "chained dispatches"},
	{Name: "cms.dispatch.cold", Kind: obs.KindCounter, Help: "cold dispatches through the CMS runtime"},
	{Name: "cms.cache.evictions", Kind: obs.KindCounter, Help: "translation-cache evictions"},
	{Name: "cms.gear.quick", Kind: obs.KindCounter, Help: "gear-1 quick block translations"},
	{Name: "cms.gear.reopts", Kind: obs.KindCounter, Help: "gear-2 superblock reoptimizations"},
	{Name: "cms.gear.reopt_instrs", Kind: obs.KindCounter, Help: "x86 instructions covered by superblocks"},
	{Name: "cms.gear.reopt_cycles", Kind: obs.KindCounter, Unit: "cycles", Help: "cycles spent reoptimizing"},
	{Name: "cms.superblock.execs", Kind: obs.KindCounter, Help: "gear-2 translation executions"},
	{Name: "cms.superblock.side_exits", Kind: obs.KindCounter, Help: "superblock exits off the profiled-hot path"},
	{Name: "cms.chain.patches", Kind: obs.KindCounter, Help: "translation exit links patched in"},
	{Name: "cms.chain.hits", Kind: obs.KindCounter, Help: "native-to-native hops through chain links"},
	{Name: "cms.chain.misses", Kind: obs.KindCounter, Help: "native exits with no cached successor"},
	{Name: "cms.chain.unchains", Kind: obs.KindCounter, Help: "chain links severed by eviction or reoptimization"},
	{Name: "cms.cycles.total", Kind: obs.KindCounter, Unit: "cycles", Help: "total simulated cycles, all categories"},
	{Name: "cms.cache.atoms", Kind: obs.KindGauge, Unit: "atoms", Help: "current translation-cache occupancy"},
	{Name: "cms.packing_density", Kind: obs.KindGauge, Unit: "atoms/molecule", Help: "ILP the translator extracted"},
}

// Describe implements obs.Source.
func (s Stats) Describe() []obs.Metric { return statsMetrics }

// counterValues maps the counter metrics to this snapshot's values.
func (s Stats) counterValues() map[string]uint64 {
	return map[string]uint64{
		"cms.runs":                  s.Runs,
		"cms.runs.warm":             s.WarmRuns,
		"cms.interp.instrs":         s.InterpInstrs,
		"cms.interp.cycles":         s.InterpCycles,
		"cms.translate.regions":     s.Translations,
		"cms.translate.instrs":      s.TranslatedInstrs,
		"cms.translate.cycles":      s.TranslateCycles,
		"cms.native.executions":     s.NativeExecutions,
		"cms.native.cycles":         s.NativeCycles,
		"cms.native.atoms":          s.NativeAtoms,
		"cms.native.molecules":      s.NativeMolecules,
		"cms.dispatch.cycles":       s.DispatchCycles,
		"cms.dispatch.chained":      s.ChainedDispatches,
		"cms.dispatch.cold":         s.ColdDispatches,
		"cms.cache.evictions":       s.CacheEvictions,
		"cms.gear.quick":            s.QuickTranslations,
		"cms.gear.reopts":           s.Reopts,
		"cms.gear.reopt_instrs":     s.ReoptInstrs,
		"cms.gear.reopt_cycles":     s.ReoptCycles,
		"cms.superblock.execs":      s.SuperblockExecs,
		"cms.superblock.side_exits": s.SideExits,
		"cms.chain.patches":         s.ChainPatches,
		"cms.chain.hits":            s.ChainHits,
		"cms.chain.misses":          s.ChainMisses,
		"cms.chain.unchains":        s.Unchains,
		"cms.cycles.total":          s.TotalCycles(),
	}
}

// Collect implements obs.Source with per-run delta semantics: counters
// accumulate into the snapshot; the occupancy and packing-density
// gauges overwrite.
func (s Stats) Collect(snap *obs.Snapshot) {
	vals := s.counterValues()
	for _, m := range statsMetrics {
		if m.Kind == obs.KindCounter {
			snap.AddCounter(m.Name, m.Unit, m.Help, vals[m.Name])
		}
	}
	snap.SetGauge("cms.cache.atoms", "atoms", "current translation-cache occupancy", float64(s.CacheAtoms))
	snap.SetGauge("cms.packing_density", "atoms/molecule", "ILP the translator extracted", s.PackingDensity())
}

// Describe implements obs.Source for the machine (a view over its
// accumulated stats).
func (m *Machine) Describe() []obs.Metric { return statsMetrics }

// Collect implements obs.Source for the machine.
func (m *Machine) Collect(snap *obs.Snapshot) { m.stats.Collect(snap) }
