package cms

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/obs"
)

// TestStatsCollect checks the obs view over a real run: the gathered
// counters must equal the Stats accessors, and cms.cycles.total must be
// the cycle count Run returned.
func TestStatsCollect(t *testing.T) {
	m := newTestMachine(4)
	tr := obs.NewTracer()
	m.Tracer = tr
	p := isa.MustAssemble(sumLoopSrc)
	st := isa.NewState(0)
	cycles, _, err := m.Run(p, st, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.NewSnapshot()
	snap.Gather(m)
	if got := snap.Counter("cms.cycles.total"); got != cycles {
		t.Fatalf("cms.cycles.total %d != run cycles %d", got, cycles)
	}
	stats := m.Stats()
	if got := snap.Counter("cms.translate.regions"); got != stats.Translations {
		t.Fatalf("translate.regions %d != %d", got, stats.Translations)
	}
	if got := snap.Counter("cms.runs"); got != 1 {
		t.Fatalf("cms.runs = %d", got)
	}
	// The hot loop translated, so the trace must carry translate spans
	// and the run's own span in the CMS cycle domain.
	if tr.Events() < 2 {
		t.Fatalf("trace events = %d, want run + translate spans", tr.Events())
	}
	// Delta semantics: a second machine's run accumulates into the same
	// snapshot.
	m2 := newTestMachine(4)
	st2 := isa.NewState(0)
	cycles2, _, err := m2.Run(p, st2, 0)
	if err != nil {
		t.Fatal(err)
	}
	snap.Gather(m2)
	if got := snap.Counter("cms.cycles.total"); got != cycles+cycles2 {
		t.Fatalf("accumulated cycles %d != %d", got, cycles+cycles2)
	}
	// Describe must cover exactly the metrics Collect writes.
	named := map[string]bool{}
	for _, mt := range m.Describe() {
		named[mt.Name] = true
	}
	for _, sm := range snap.Samples() {
		if !named[sm.Name] {
			t.Fatalf("collected metric %q not in Describe()", sm.Name)
		}
	}
}
