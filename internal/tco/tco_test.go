package tco

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

func table5(t *testing.T) map[string]Breakdown {
	t.Helper()
	cfgs, err := PaperTable5Configs()
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]Breakdown{}
	for _, cfg := range cfgs {
		b, err := Compute(cfg, PaperRates())
		if err != nil {
			t.Fatal(err)
		}
		out[cfg.Name] = b
	}
	return out
}

// within checks a value against a paper figure quoted in $K.
func within(t *testing.T, name string, got, paperK, tolK float64) {
	t.Helper()
	if math.Abs(got-paperK*1000) > tolK*1000 {
		t.Errorf("%s = $%.0f, paper says ≈$%.0fK", name, got, paperK)
	}
}

func TestTable5MatchesPaper(t *testing.T) {
	b := table5(t)

	// Acquisition row (exact paper inputs).
	within(t, "Alpha acq", b["Alpha"].Acquisition, 17, 0.001)
	within(t, "TM5600 acq", b["TM5600"].Acquisition, 26, 0.001)

	// System administration: $60K traditional, $5K blade.
	for _, n := range []string{"Alpha", "Athlon", "PIII", "P4"} {
		within(t, n+" SAC", b[n].SysAdmin, 60, 1)
	}
	within(t, "TM5600 SAC", b["TM5600"].SysAdmin, 5, 0.5)

	// Power & cooling: 11/6/6/11/2 ($K).
	within(t, "Alpha PCC", b["Alpha"].PowerCooling, 11, 1)
	within(t, "Athlon PCC", b["Athlon"].PowerCooling, 6, 1)
	within(t, "PIII PCC", b["PIII"].PowerCooling, 6, 1)
	within(t, "P4 PCC", b["P4"].PowerCooling, 11, 1)
	within(t, "TM5600 PCC", b["TM5600"].PowerCooling, 2, 0.5)

	// Space: 8/8/8/8/2 ($K; blade is $2.4K in the paper's text).
	for _, n := range []string{"Alpha", "Athlon", "PIII", "P4"} {
		within(t, n+" SCC", b[n].Space, 8, 0.5)
	}
	within(t, "TM5600 SCC", b["TM5600"].Space, 2.4, 0.1)

	// Downtime: 12/12/12/12/~0 ($K; blade is $20 in the paper's text).
	for _, n := range []string{"Alpha", "Athlon", "PIII", "P4"} {
		within(t, n+" DTC", b[n].Downtime, 11.5, 0.7)
	}
	if b["TM5600"].Downtime != 20 {
		t.Errorf("TM5600 DTC = %v, paper computes exactly $20", b["TM5600"].Downtime)
	}

	// TCO row: 108/101/102/108/35 ($K).
	within(t, "Alpha TCO", b["Alpha"].TCO(), 108, 2)
	within(t, "Athlon TCO", b["Athlon"].TCO(), 101, 2)
	within(t, "PIII TCO", b["PIII"].TCO(), 102, 2)
	within(t, "P4 TCO", b["P4"].TCO(), 108, 2)
	within(t, "TM5600 TCO", b["TM5600"].TCO(), 35, 1.5)
}

func TestTCOFactorOfThree(t *testing.T) {
	// "the TCO on our MetaBlade Bladed Beowulf is approximately three
	// times better than the TCO on a traditional Beowulf"
	b := table5(t)
	blade := b["TM5600"].TCO()
	for _, n := range []string{"Alpha", "Athlon", "PIII", "P4"} {
		ratio := b[n].TCO() / blade
		if ratio < 2.5 || ratio > 3.5 {
			t.Errorf("%s TCO / blade TCO = %.2f, paper says ≈3", n, ratio)
		}
	}
}

func TestAcquisitionHigherButTCOLower(t *testing.T) {
	// The paper's core argument: the blade costs 50–75% more to acquire
	// yet three times less to own.
	b := table5(t)
	for _, n := range []string{"Alpha", "Athlon", "PIII", "P4"} {
		if b["TM5600"].Acquisition <= b[n].Acquisition {
			t.Errorf("blade acquisition not higher than %s", n)
		}
		if b["TM5600"].TCO() >= b[n].TCO() {
			t.Errorf("blade TCO not lower than %s", n)
		}
	}
}

func TestToPPeRTwiceAsGood(t *testing.T) {
	// Blade performance = 75% of a comparable traditional cluster, TCO 3x
	// smaller ⇒ ToPPeR better by >2x (paper §4.1 conclusion).
	b := table5(t)
	tradGflops := 2.8 // a comparably clocked traditional 24-node Beowulf
	bladeGflops := 0.75 * tradGflops
	tradToPPeR := ToPPeR(b["PIII"].TCO(), tradGflops)
	bladeToPPeR := ToPPeR(b["TM5600"].TCO(), bladeGflops)
	if ratio := tradToPPeR / bladeToPPeR; ratio < 2 {
		t.Fatalf("ToPPeR advantage %.2fx, paper says over 2x", ratio)
	}
	// While plain price/performance favours the traditional cluster:
	if PricePerf(b["TM5600"].Acquisition, bladeGflops) <= PricePerf(b["PIII"].Acquisition, tradGflops) {
		t.Fatal("acquisition price/perf should favour the traditional cluster")
	}
}

func TestSpaceCostScalesThirtyThreeFold(t *testing.T) {
	// Footnote 5: at 240 nodes, blade space cost stays $2400 while the
	// traditional cost grows ten-fold to $80K — 33x more expensive.
	rates := PaperRates()
	blade, err := cluster.New("GD", cluster.NodeTM5800, cluster.BladePackaging(), 240, 27)
	if err != nil {
		t.Fatal(err)
	}
	trad, err := cluster.New("trad240", cluster.NodeP4, cluster.TraditionalPackaging(), 240, 24)
	if err != nil {
		t.Fatal(err)
	}
	bladeSpace := blade.FootprintSqFt() * rates.SpacePerSqFtYear * rates.Years
	tradSpace := trad.FootprintSqFt() * rates.SpacePerSqFtYear * rates.Years
	if bladeSpace != 2400 {
		t.Fatalf("240-blade space cost $%v, paper says $2400", bladeSpace)
	}
	ratio := tradSpace / bladeSpace
	if ratio < 25 || ratio > 40 {
		t.Fatalf("space cost ratio %.1f, paper says ≈33x", ratio)
	}
}

func TestComputeValidation(t *testing.T) {
	cl, _ := cluster.New("x", cluster.NodePIII, cluster.TraditionalPackaging(), 24, 24)
	if _, err := Compute(Config{Name: "nil"}, PaperRates()); err == nil {
		t.Error("nil cluster accepted")
	}
	bad := PaperRates()
	bad.Years = 0
	if _, err := Compute(Config{Name: "x", Cluster: cl}, bad); err == nil {
		t.Error("zero lifetime accepted")
	}
	if _, err := Compute(Config{Name: "x", Cluster: cl, AcquisitionUSD: -1}, PaperRates()); err == nil {
		t.Error("negative acquisition accepted")
	}
}

func TestBreakdownAlgebra(t *testing.T) {
	b := Breakdown{Acquisition: 10, SysAdmin: 1, PowerCooling: 2, Space: 3, Downtime: 4}
	if b.TCO() != 20 {
		t.Fatalf("TCO = %v", b.TCO())
	}
	if b.OperatingCost() != 10 {
		t.Fatalf("OC = %v", b.OperatingCost())
	}
}

func TestMetricEdgeCases(t *testing.T) {
	if ToPPeR(100, 0) != 0 || PricePerf(100, 0) != 0 ||
		PerfPerSpace(1, 0) != 0 || PerfPerPower(1, 0) != 0 {
		t.Fatal("zero denominators must yield 0, not Inf")
	}
}

func TestPerfMetrics(t *testing.T) {
	// Table 6/7 arithmetic: MetaBlade 2.1 Gflop / 6 ft² = 350 Mflop/ft²;
	// 2.1 Gflop / 0.52 kW ≈ 4 Gflop/kW.
	if got := PerfPerSpace(2.1, 6); math.Abs(got-350) > 0.001 {
		t.Fatalf("PerfPerSpace = %v, want 350", got)
	}
	if got := PerfPerPower(2.1, 0.52); math.Abs(got-4.038) > 0.01 {
		t.Fatalf("PerfPerPower = %v, want ≈4.04", got)
	}
}

func TestHigherRatesRaiseTCO(t *testing.T) {
	cfgs, _ := PaperTable5Configs()
	lo, _ := Compute(cfgs[0], PaperRates())
	hi := PaperRates()
	hi.ElectricityPerKWh *= 2
	hi.SpacePerSqFtYear *= 2
	hiB, _ := Compute(cfgs[0], hi)
	if hiB.TCO() <= lo.TCO() {
		t.Fatal("doubling rates did not raise TCO")
	}
	if hiB.PowerCooling != 2*lo.PowerCooling {
		t.Fatal("power cost not linear in electricity rate")
	}
}
