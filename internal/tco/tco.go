// Package tco implements the paper's §4 cost model:
//
//	TCO = AC + OC
//	AC  = HWC + SWC                  (acquisition: hardware + software)
//	OC  = SAC + PCC + SCC + DTC      (operating: admin, power+cooling,
//	                                  space, downtime)
//
// and the metrics built on it: ToPPeR (Total Price-Performance Ratio),
// performance/space, and performance/power. Defaults reproduce Table 5's
// assumptions: $100/hour administration, $0.10/kWh electricity with half
// a watt of cooling per watt dissipated, $100 per square foot per year of
// floor space, $5.00 per CPU-hour of downtime, over a four-year
// operational lifetime.
package tco

import (
	"fmt"

	"repro/internal/cluster"
)

// Rates are the institution-level cost constants.
type Rates struct {
	AdminPerHour       float64 // $/hour of sysadmin labour
	ElectricityPerKWh  float64 // $/kWh
	SpacePerSqFtYear   float64 // $/ft²/year leased machine-room space
	DowntimePerCPUHour float64 // $/CPU-hour of lost service
	Years              float64 // operational lifetime
}

// PaperRates returns the constants the paper's Table 5 uses.
func PaperRates() Rates {
	return Rates{
		AdminPerHour:       100,
		ElectricityPerKWh:  0.10,
		SpacePerSqFtYear:   100,
		DowntimePerCPUHour: 5,
		Years:              4,
	}
}

// Validate checks the rates.
func (r Rates) Validate() error {
	if r.Years <= 0 {
		return fmt.Errorf("tco: non-positive lifetime")
	}
	if r.AdminPerHour < 0 || r.ElectricityPerKWh < 0 || r.SpacePerSqFtYear < 0 || r.DowntimePerCPUHour < 0 {
		return fmt.Errorf("tco: negative rate")
	}
	return nil
}

// AdminProfile captures how a cluster is administered.
type AdminProfile struct {
	// SetupHours is the one-time integration/installation labour.
	SetupHours float64
	// AnnualLabourUSD is recurring admin labour + materials per year
	// (the paper: ~$15K/year for a traditional Beowulf serving small
	// application teams).
	AnnualLabourUSD float64
	// AnnualRepairUSD covers expected replacement hardware + swap labour
	// per year (the paper charges the Bladed Beowulf $1200/year for one
	// assumed node failure).
	AnnualRepairUSD float64
}

// TraditionalAdmin is the paper's traditional-Beowulf profile.
func TraditionalAdmin() AdminProfile {
	return AdminProfile{SetupHours: 40, AnnualLabourUSD: 14000, AnnualRepairUSD: 0}
}

// BladeAdmin is the paper's Bladed-Beowulf profile: a 2.5-hour initial
// assembly/installation/configuration, then $1200/year for one expected
// failure (hardware + labour), with the bundled management software doing
// the diagnosis.
func BladeAdmin() AdminProfile {
	return AdminProfile{SetupHours: 2.5, AnnualLabourUSD: 0, AnnualRepairUSD: 1200}
}

// OutageProfile captures expected downtime.
type OutageProfile struct {
	OutagesPerYear float64
	HoursPerOutage float64
	// WholeCluster: a failure idles every CPU (no hot-swap, manual
	// diagnosis); otherwise only the failed node is down.
	WholeCluster bool
}

// TraditionalOutages is the paper's anecdote: "a failure and subsequent
// four-hour outage (on average) every two months", taking the whole
// cluster down.
func TraditionalOutages() OutageProfile {
	return OutageProfile{OutagesPerYear: 6, HoursPerOutage: 4, WholeCluster: true}
}

// BladeOutages is the paper's blade assumption: one failure per year,
// diagnosed in an hour with the management software, only the failed
// blade down.
func BladeOutages() OutageProfile {
	return OutageProfile{OutagesPerYear: 1, HoursPerOutage: 1, WholeCluster: false}
}

// Config describes one cluster's cost situation.
type Config struct {
	Name           string
	AcquisitionUSD float64 // HWC + SWC
	Cluster        *cluster.Cluster
	Admin          AdminProfile
	Outages        OutageProfile
}

// Breakdown is Table 5's row set for one cluster.
type Breakdown struct {
	Acquisition  float64
	SysAdmin     float64 // SAC
	PowerCooling float64 // PCC
	Space        float64 // SCC
	Downtime     float64 // DTC
}

// TCO returns the total cost of ownership.
func (b Breakdown) TCO() float64 {
	return b.Acquisition + b.SysAdmin + b.PowerCooling + b.Space + b.Downtime
}

// OperatingCost returns OC = SAC + PCC + SCC + DTC.
func (b Breakdown) OperatingCost() float64 {
	return b.TCO() - b.Acquisition
}

// Compute evaluates the cost model.
func Compute(cfg Config, r Rates) (Breakdown, error) {
	var b Breakdown
	if err := r.Validate(); err != nil {
		return b, err
	}
	if cfg.Cluster == nil {
		return b, fmt.Errorf("tco: %s: nil cluster", cfg.Name)
	}
	if err := cfg.Cluster.Validate(); err != nil {
		return b, err
	}
	if cfg.AcquisitionUSD < 0 {
		return b, fmt.Errorf("tco: %s: negative acquisition cost", cfg.Name)
	}

	b.Acquisition = cfg.AcquisitionUSD

	// SAC = Σ labour + Σ recurring material costs.
	b.SysAdmin = cfg.Admin.SetupHours*r.AdminPerHour +
		r.Years*(cfg.Admin.AnnualLabourUSD+cfg.Admin.AnnualRepairUSD)

	// PCC: total (compute + cooling) power over the lifetime.
	hours := r.Years * 8760
	b.PowerCooling = cfg.Cluster.TotalPowerKW() * hours * r.ElectricityPerKWh

	// SCC: leased floor space.
	b.Space = cfg.Cluster.FootprintSqFt() * r.SpacePerSqFtYear * r.Years

	// DTC: lost CPU-hours billed at the centre's rate.
	outageHours := cfg.Outages.OutagesPerYear * cfg.Outages.HoursPerOutage * r.Years
	cpusDown := 1.0
	if cfg.Outages.WholeCluster {
		cpusDown = float64(cfg.Cluster.Nodes)
	}
	b.Downtime = outageHours * cpusDown * r.DowntimePerCPUHour

	return b, nil
}

// ToPPeR is the paper's Total Price-Performance Ratio: TCO dollars per
// Mflops of delivered performance. Lower is better.
func ToPPeR(tcoUSD, gflops float64) float64 {
	if gflops <= 0 {
		return 0
	}
	return tcoUSD / (gflops * 1000)
}

// PricePerf is the traditional acquisition-price/performance ratio
// ($/Mflops), for contrast with ToPPeR.
func PricePerf(acquisitionUSD, gflops float64) float64 {
	if gflops <= 0 {
		return 0
	}
	return acquisitionUSD / (gflops * 1000)
}

// PerfPerSpace returns Mflops per square foot (Table 6).
func PerfPerSpace(gflops, sqft float64) float64 {
	if sqft <= 0 {
		return 0
	}
	return gflops * 1000 / sqft
}

// PerfPerPower returns Gflops per kilowatt (Table 7).
func PerfPerPower(gflops, kw float64) float64 {
	if kw <= 0 {
		return 0
	}
	return gflops / kw
}
