package tco

import (
	"math"
	"testing"

	"repro/internal/cluster"
)

// The metric invariants the design-space optimizer's dominance bounds
// rest on: ToPPeR and PricePerf fall as delivered performance rises
// and climb with cost; PerfPerSpace and PerfPerPower climb with
// performance and fall as the denominator resource grows. The sweeps
// are deterministic grids rather than random draws so a failure names
// its exact inputs.

func TestToPPeRMonotone(t *testing.T) {
	gflopsGrid := []float64{0.1, 0.5, 1, 2.8, 10, 36, 250}
	costGrid := []float64{1000, 17000, 150000, 2.5e6}
	for _, cost := range costGrid {
		prev := math.Inf(1)
		for _, g := range gflopsGrid {
			v := ToPPeR(cost, g)
			if v <= 0 || v > prev {
				t.Fatalf("ToPPeR(%g, %g) = %g not decreasing in gflops (prev %g)", cost, g, v, prev)
			}
			prev = v
		}
	}
	for _, g := range gflopsGrid {
		prevT, prevP := 0.0, 0.0
		for _, cost := range costGrid {
			vt, vp := ToPPeR(cost, g), PricePerf(cost, g)
			if vt <= prevT || vp <= prevP {
				t.Fatalf("metrics not increasing in cost at gflops=%g: ToPPeR %g→%g, PricePerf %g→%g",
					g, prevT, vt, prevP, vp)
			}
			prevT, prevP = vt, vp
		}
	}
}

func TestPerfPerDenominatorMonotone(t *testing.T) {
	gflopsGrid := []float64{0.5, 2.8, 36, 250}
	denoms := []float64{1, 6, 20, 200}
	for _, d := range denoms {
		prevS, prevP := 0.0, 0.0
		for _, g := range gflopsGrid {
			s, p := PerfPerSpace(g, d), PerfPerPower(g, d)
			if s <= prevS || p <= prevP {
				t.Fatalf("perf metrics not increasing in gflops at denom=%g", d)
			}
			prevS, prevP = s, p
		}
	}
	for _, g := range gflopsGrid {
		prevS, prevP := math.Inf(1), math.Inf(1)
		for _, d := range denoms {
			s, p := PerfPerSpace(g, d), PerfPerPower(g, d)
			if s >= prevS || p >= prevP {
				t.Fatalf("perf metrics not decreasing in denominator at gflops=%g", g)
			}
			prevS, prevP = s, p
		}
	}
}

// TestBreakdownSumInvariant sweeps the cost model across nodes,
// packaging, ambient and rates: TCO() must equal the exact sum of its
// five parts, and every part must be finite and non-negative.
func TestBreakdownSumInvariant(t *testing.T) {
	rates := []Rates{
		PaperRates(),
		{AdminPerHour: 40, ElectricityPerKWh: 0.25, SpacePerSqFtYear: 320, DowntimePerCPUHour: 0.5, Years: 7},
	}
	nodes := []cluster.NodeSpec{cluster.NodeTM5600, cluster.NodeP4, cluster.NodePower3}
	for _, r := range rates {
		for _, node := range nodes {
			for _, blade := range []bool{false, true} {
				for _, n := range []int{1, 24, 240, 1009} {
					pack, admin, out := TraditionalPackaging2(blade)
					cl, err := cluster.New("sweep", node, pack, n, 27)
					if err != nil {
						t.Fatal(err)
					}
					b, err := Compute(Config{Name: "sweep", AcquisitionUSD: 700 * float64(n), Cluster: cl, Admin: admin, Outages: out}, r)
					if err != nil {
						t.Fatal(err)
					}
					sum := b.Acquisition + b.SysAdmin + b.PowerCooling + b.Space + b.Downtime
					if b.TCO() != sum {
						t.Fatalf("TCO() %g != sum of parts %g (%+v)", b.TCO(), sum, b)
					}
					for _, part := range []float64{b.Acquisition, b.SysAdmin, b.PowerCooling, b.Space, b.Downtime} {
						if part < 0 || math.IsNaN(part) || math.IsInf(part, 0) {
							t.Fatalf("non-finite or negative cost part in %+v", b)
						}
					}
					if b.OperatingCost() != sum-b.Acquisition {
						t.Fatalf("OperatingCost %g != OC %g", b.OperatingCost(), sum-b.Acquisition)
					}
				}
			}
		}
	}
}

// TraditionalPackaging2 picks the paper profile set for the sweep.
func TraditionalPackaging2(blade bool) (cluster.Packaging, AdminProfile, OutageProfile) {
	if blade {
		return cluster.BladePackaging(), BladeAdmin(), BladeOutages()
	}
	return cluster.TraditionalPackaging(), TraditionalAdmin(), TraditionalOutages()
}

// TestPaperRatesGolden pins PaperRates against the paper's Table 5/6
// assumptions verbatim: $100/hour administration, $0.10/kWh
// electricity, $100/ft²/year floor space, $5.00/CPU-hour downtime,
// four-year lifetime.
func TestPaperRatesGolden(t *testing.T) {
	want := Rates{AdminPerHour: 100, ElectricityPerKWh: 0.10, SpacePerSqFtYear: 100, DowntimePerCPUHour: 5, Years: 4}
	if got := PaperRates(); got != want {
		t.Fatalf("PaperRates() = %+v, want the paper's Table 5/6 constants %+v", got, want)
	}
	// And the derived Table 5 anchor: the 24-node P4 Beowulf's power+
	// cooling over four years — 24×85 W at 1.5× for cooling, 8760 h/yr,
	// $0.10/kWh — must price out near the paper's ~$10.7K figure.
	cl, err := cluster.New("P4", cluster.NodeP4, cluster.TraditionalPackaging(), 24, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compute(Config{Name: "P4", AcquisitionUSD: 17000, Cluster: cl,
		Admin: TraditionalAdmin(), Outages: TraditionalOutages()}, PaperRates())
	if err != nil {
		t.Fatal(err)
	}
	wantPCC := 24 * 85 * 1.5 / 1000.0 * 8760 * 4 * 0.10
	if math.Abs(b.PowerCooling-wantPCC) > 1e-9 {
		t.Fatalf("PCC %g, want %g", b.PowerCooling, wantPCC)
	}
	if b.PowerCooling < 10000 || b.PowerCooling > 11500 {
		t.Fatalf("PCC %g outside the paper's ~$10.7K band", b.PowerCooling)
	}
}
