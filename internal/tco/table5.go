package tco

import "repro/internal/cluster"

// PaperTable5Configs returns the five comparably equipped 24-node
// clusters of Table 5 (Alpha, Athlon, Pentium III, Pentium 4, and the
// TM5600 Bladed Beowulf), with the paper's acquisition costs and the
// package defaults for everything else.
func PaperTable5Configs() ([]Config, error) {
	type row struct {
		name  string
		acq   float64
		node  cluster.NodeSpec
		blade bool
	}
	rows := []row{
		{"Alpha", 17000, cluster.NodeAlpha, false},
		{"Athlon", 15000, cluster.NodeAthlon, false},
		{"PIII", 16000, cluster.NodePIII, false},
		{"P4", 17000, cluster.NodeP4, false},
		{"TM5600", 26000, cluster.NodeTM5600, true},
	}
	configs := make([]Config, 0, len(rows))
	for _, r := range rows {
		pack := cluster.TraditionalPackaging()
		admin := TraditionalAdmin()
		outages := TraditionalOutages()
		ambient := 24.0 // 75 °F office
		if r.blade {
			pack = cluster.BladePackaging()
			admin = BladeAdmin()
			outages = BladeOutages()
			ambient = 27.0 // the paper's "dusty 80 °F environment"
		}
		cl, err := cluster.New(r.name+" cluster", r.node, pack, 24, ambient)
		if err != nil {
			return nil, err
		}
		configs = append(configs, Config{
			Name:           r.name,
			AcquisitionUSD: r.acq,
			Cluster:        cl,
			Admin:          admin,
			Outages:        outages,
		})
	}
	return configs, nil
}
