// Package longrun models Transmeta's LongRun dynamic voltage and
// frequency scaling — the mechanism behind the power trajectory the
// paper's conclusion sketches (TM5600 ≈6 W at load, TM5800 ≈3.5 W,
// TM6000 projected at half again). LongRun steps the core through
// discrete (MHz, V) operating points; since dynamic power scales as
// f·V², the low states trade performance for disproportionate energy
// savings. This package pairs the operating-point table with the CMS
// simulation so energy-versus-performance experiments run on the same
// cycle counts as everything else.
package longrun

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// State is one LongRun operating point.
type State struct {
	MHz   float64
	Volts float64
	// WattsCPU is the core's draw at load in this state.
	WattsCPU float64
}

// TM5600States is the TM5600's LongRun ladder (values follow Transmeta's
// published envelope: ~1.5 W at 300 MHz up to ~6 W at the full 633 MHz).
func TM5600States() []State {
	return []State{
		{MHz: 300, Volts: 1.20, WattsCPU: 1.5},
		{MHz: 400, Volts: 1.28, WattsCPU: 2.3},
		{MHz: 500, Volts: 1.38, WattsCPU: 3.5},
		{MHz: 600, Volts: 1.55, WattsCPU: 5.3},
		{MHz: 633, Volts: 1.60, WattsCPU: 6.0},
	}
}

// TM5800States is the TM5800's ladder (the paper: 3.5 W at 800 MHz; the
// 366-MHz point dissipated under a watt).
func TM5800States() []State {
	return []State{
		{MHz: 366, Volts: 0.95, WattsCPU: 0.9},
		{MHz: 500, Volts: 1.05, WattsCPU: 1.4},
		{MHz: 667, Volts: 1.15, WattsCPU: 2.4},
		{MHz: 800, Volts: 1.25, WattsCPU: 3.5},
	}
}

// Validate checks a ladder is monotone in frequency, voltage and power.
func Validate(states []State) error {
	if len(states) == 0 {
		return fmt.Errorf("longrun: empty state table")
	}
	for i, s := range states {
		if s.MHz <= 0 || s.Volts <= 0 || s.WattsCPU <= 0 {
			return fmt.Errorf("longrun: state %d not positive: %+v", i, s)
		}
		if i > 0 {
			p := states[i-1]
			if s.MHz <= p.MHz || s.Volts < p.Volts || s.WattsCPU <= p.WattsCPU {
				return fmt.Errorf("longrun: ladder not monotone at state %d", i)
			}
		}
	}
	return nil
}

// Measurement is one kernel run at one operating point.
type Measurement struct {
	State   State
	Seconds float64 // kernel runtime at this point
	Joules  float64 // CPU energy for the run
	Mflops  float64
	// MflopsPerWatt is the paper-era energy-efficiency metric (the
	// precursor of the Green500's flops/W).
	MflopsPerWatt float64
	// EnergyDelay is the energy-delay product (J·s).
	EnergyDelay float64
}

// Sweep runs the program once per operating point of a Crusoe model.
// Cycle counts are frequency-independent (the memory timings are part of
// the core model), so runtime scales inversely with frequency while
// energy follows the ladder's watts.
func Sweep(base *cpu.Crusoe, states []State, build func() (isa.Program, *isa.State, error)) ([]Measurement, error) {
	if err := Validate(states); err != nil {
		return nil, err
	}
	var out []Measurement
	for _, st := range states {
		c := base.Clone()
		c.MHz = st.MHz
		prog, ist, err := build()
		if err != nil {
			return nil, err
		}
		res, err := c.RunKernel(prog, ist)
		if err != nil {
			return nil, err
		}
		m := Measurement{
			State:   st,
			Seconds: res.Seconds,
			Joules:  res.Seconds * st.WattsCPU,
			Mflops:  res.Mflops(),
		}
		if st.WattsCPU > 0 {
			m.MflopsPerWatt = m.Mflops / st.WattsCPU
		}
		m.EnergyDelay = m.Joules * m.Seconds
		out = append(out, m)
	}
	return out, nil
}

// BestEnergy returns the index of the state that finishes the job with
// the least energy (typically a low-voltage state).
func BestEnergy(ms []Measurement) int {
	best := 0
	for i, m := range ms {
		if m.Joules < ms[best].Joules {
			best = i
		}
	}
	return best
}

// BestEnergyDelay returns the index minimizing the energy-delay product
// (the balanced operating point).
func BestEnergyDelay(ms []Measurement) int {
	best := 0
	for i, m := range ms {
		if m.EnergyDelay < ms[best].EnergyDelay {
			best = i
		}
	}
	return best
}
