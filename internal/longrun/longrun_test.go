package longrun

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/kernels"
)

func buildKernel() (isa.Program, *isa.State, error) {
	g := kernels.GravMicro{Variant: kernels.GravKarp, NBodies: 8, Iters: 60,
		TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 3}
	return g.Build()
}

func TestLaddersValidate(t *testing.T) {
	if err := Validate(TM5600States()); err != nil {
		t.Fatal(err)
	}
	if err := Validate(TM5800States()); err != nil {
		t.Fatal(err)
	}
	if err := Validate(nil); err == nil {
		t.Fatal("empty ladder accepted")
	}
	bad := TM5600States()
	bad[1].MHz = bad[0].MHz
	if err := Validate(bad); err == nil {
		t.Fatal("non-monotone ladder accepted")
	}
}

func TestSweepShape(t *testing.T) {
	ms, err := Sweep(cpu.NewTM5600(), TM5600States(), buildKernel)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("%d measurements", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		// Higher clock: faster runtime, higher Mflops.
		if ms[i].Seconds >= ms[i-1].Seconds {
			t.Fatalf("runtime not decreasing with clock: %+v", ms)
		}
		if ms[i].Mflops <= ms[i-1].Mflops {
			t.Fatalf("Mflops not increasing with clock: %+v", ms)
		}
	}
	// The LongRun trade: the lowest-voltage state is the most
	// energy-efficient per flop (f·V² scaling beats linear slowdown).
	if ms[0].MflopsPerWatt <= ms[len(ms)-1].MflopsPerWatt {
		t.Fatalf("low state not more efficient: %v vs %v Mflops/W",
			ms[0].MflopsPerWatt, ms[len(ms)-1].MflopsPerWatt)
	}
	if BestEnergy(ms) != 0 {
		t.Fatalf("BestEnergy = %d, want the 300-MHz state", BestEnergy(ms))
	}
	// Energy-delay prefers a middle-or-higher state (delay matters too).
	if bed := BestEnergyDelay(ms); bed == 0 {
		t.Fatalf("BestEnergyDelay picked the slowest state")
	}
}

func TestTM5800MoreEfficientThanTM5600(t *testing.T) {
	// The conclusion's trajectory: the TM5800 delivers better flops/W at
	// full tilt than the TM5600 (3.3 Gflops at 3.5 W/CPU vs 2.1 at 6).
	m56, err := Sweep(cpu.NewTM5600(), TM5600States(), buildKernel)
	if err != nil {
		t.Fatal(err)
	}
	m58, err := Sweep(cpu.NewTM5800(), TM5800States(), buildKernel)
	if err != nil {
		t.Fatal(err)
	}
	top56 := m56[len(m56)-1]
	top58 := m58[len(m58)-1]
	if top58.MflopsPerWatt <= top56.MflopsPerWatt {
		t.Fatalf("TM5800 %v Mflops/W not above TM5600 %v", top58.MflopsPerWatt, top56.MflopsPerWatt)
	}
}
