package benchfmt

import (
	"os"
	"path/filepath"
	"testing"
)

func TestReportRoundTripAndMerge(t *testing.T) {
	rep := &Report{Schema: Schema, GoVersion: "go1.24", GOMAXPROCS: 8}
	rep.Merge([]Entry{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 200, Metrics: map[string]float64{"hit_rate": 1}},
	})
	// Merge upserts by name: a replaced, c appended.
	rep.Merge([]Entry{{Name: "a", NsPerOp: 150}, {Name: "c", NsPerOp: 300}})
	if len(rep.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(rep.Results))
	}
	if e := rep.Find("a"); e == nil || e.NsPerOp != 150 {
		t.Fatalf("merge did not replace entry a: %+v", e)
	}
	if rep.Find("nope") != nil {
		t.Fatal("Find invented an entry")
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || len(got.Results) != 3 {
		t.Fatalf("round trip: schema %q, %d results", got.Schema, len(got.Results))
	}
	if e := got.Find("b"); e == nil || e.Metrics["hit_rate"] != 1 {
		t.Fatalf("metrics lost in round trip: %+v", e)
	}

	if _, err := Read(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file: %v", err)
	}
}
