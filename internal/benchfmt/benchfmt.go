// Package benchfmt is the shared schema of the repository's benchmark
// reports (BENCH_pr10.json): cmd/benchreport writes the simulator and
// host benchmarks, cmd/gridload merges the gateway's load-test numbers
// into the same file, and CI guards both.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema is the current report schema tag.
const Schema = "bench_pr10_v1"

// Entry is one benchmark result.
type Entry struct {
	Name        string             `json:"name"`
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the BENCH_pr10.json envelope.
type Report struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Results    []Entry `json:"results"`
}

// Find returns the named entry, or nil.
func (r *Report) Find(name string) *Entry {
	for i := range r.Results {
		if r.Results[i].Name == name {
			return &r.Results[i]
		}
	}
	return nil
}

// Read loads a report from disk. Older schema tags are accepted — the
// entry format is unchanged since bench_pr6_v1 — so -compare across a
// schema bump still works.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

// Write stores the report, indented for diffability.
func (r *Report) Write(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Merge upserts entries into the report by name.
func (r *Report) Merge(entries []Entry) {
	for _, e := range entries {
		if old := r.Find(e.Name); old != nil {
			*old = e
			continue
		}
		r.Results = append(r.Results, e)
	}
}
