package kernels

import (
	"math"
	"testing"

	"repro/internal/cms"
	"repro/internal/isa"
	"repro/internal/vliw"
)

func TestGravMicroMathMatchesReferenceBitExact(t *testing.T) {
	g := GravMicro{Variant: GravMath, NBodies: 8, Iters: 3, Seed: 7}
	p, st, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := isa.Run(p, st, nil, 50_000_000); err != nil {
		t.Fatal(err)
	}
	ax, ay, az := ReadAccel(st)
	wx, wy, wz, err := g.Reference()
	if err != nil {
		t.Fatal(err)
	}
	if ax != wx || ay != wy || az != wz {
		t.Fatalf("accel (%v,%v,%v) != reference (%v,%v,%v)", ax, ay, az, wx, wy, wz)
	}
	if ax == 0 && ay == 0 && az == 0 {
		t.Fatal("zero acceleration — kernel did nothing")
	}
}

func TestGravMicroKarpMatchesReferenceBitExact(t *testing.T) {
	g := GravMicro{Variant: GravKarp, NBodies: 8, Iters: 3, TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 7}
	p, st, err := g.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := isa.Run(p, st, nil, 50_000_000); err != nil {
		t.Fatal(err)
	}
	ax, ay, az := ReadAccel(st)
	wx, wy, wz, err := g.Reference()
	if err != nil {
		t.Fatal(err)
	}
	if ax != wx || ay != wy || az != wz {
		t.Fatalf("accel (%v,%v,%v) != reference (%v,%v,%v)", ax, ay, az, wx, wy, wz)
	}
}

func TestGravMicroVariantsAgreeNumerically(t *testing.T) {
	// Karp with 2 NR steps is full precision: both variants must agree to
	// ~1e-12 relative.
	gm := GravMicro{Variant: GravMath, NBodies: 16, Iters: 2, Seed: 99}
	gk := gm
	gk.Variant = GravKarp
	gk.TableBits, gk.ChebDeg, gk.NRIters = 7, 2, 2

	mx, my, mz, err := gm.Reference()
	if err != nil {
		t.Fatal(err)
	}
	kx, ky, kz, err := gk.Reference()
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]float64{{mx, kx}, {my, ky}, {mz, kz}} {
		rel := math.Abs(pair[0]-pair[1]) / math.Abs(pair[0])
		if rel > 1e-12 {
			t.Fatalf("variants disagree: %v vs %v (rel %g)", pair[0], pair[1], rel)
		}
	}
}

func TestGravMicroRunsUnderCMS(t *testing.T) {
	// The microkernel must run correctly on the full Crusoe simulation —
	// the configuration Table 1's TM5600 column uses.
	for _, variant := range []GravVariant{GravMath, GravKarp} {
		g := GravMicro{Variant: variant, NBodies: 4, Iters: 30, TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 3}
		p, st, err := g.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := cms.NewMachine(cms.DefaultParams(), vliw.TM5600Timing())
		cycles, tr, err := m.Run(p, st, 0)
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		ax, ay, az := ReadAccel(st)
		wx, wy, wz, err := g.Reference()
		if err != nil {
			t.Fatal(err)
		}
		if ax != wx || ay != wy || az != wz {
			t.Fatalf("%v under CMS: accel (%v,%v,%v) != reference (%v,%v,%v)", variant, ax, ay, az, wx, wy, wz)
		}
		if cycles == 0 || tr.Flops == 0 {
			t.Fatalf("%v: no cycles or flops recorded", variant)
		}
	}
}

func TestGravMicroFlopCounts(t *testing.T) {
	// Math variant: 18 flops per interaction (3 sub, 3 mul, 2 add, sqrt,
	// mul, div, mul, 3 mul, 3 add).
	g := GravMicro{Variant: GravMath, NBodies: 4, Iters: 5, Seed: 1}
	p, st, _ := g.Build()
	var tr isa.Trace
	if err := isa.Run(p, st, &tr, 0); err != nil {
		t.Fatal(err)
	}
	perInteraction := float64(tr.Flops) / float64(g.Interactions())
	if perInteraction != 18 {
		t.Fatalf("math variant: %.2f flops/interaction, want 18", perInteraction)
	}

	// Karp variant executes strictly more flops (and zero sqrt/div).
	gk := GravMicro{Variant: GravKarp, NBodies: 4, Iters: 5, TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 1}
	pk, stk, _ := gk.Build()
	var trk isa.Trace
	if err := isa.Run(pk, stk, &trk, 0); err != nil {
		t.Fatal(err)
	}
	if trk.ByClass[isa.ClassFPSqrt] != 0 || trk.ByClass[isa.ClassFPDiv] != 0 {
		t.Fatalf("Karp variant used sqrt/div: %d/%d", trk.ByClass[isa.ClassFPSqrt], trk.ByClass[isa.ClassFPDiv])
	}
	if trk.Flops <= tr.Flops {
		t.Fatalf("Karp flops %d not > math flops %d", trk.Flops, tr.Flops)
	}
	if tr.ByClass[isa.ClassFPSqrt] != g.Interactions() {
		t.Fatalf("math variant sqrt count %d, want %d", tr.ByClass[isa.ClassFPSqrt], g.Interactions())
	}
}

func TestGravMicroBadParams(t *testing.T) {
	if _, _, err := (GravMicro{Variant: GravMath}).Build(); err == nil {
		t.Fatal("zero NBodies accepted")
	}
	g := GravMicro{Variant: GravKarp, NBodies: 4, Iters: 1, TableBits: 99, ChebDeg: 2, NRIters: 2}
	if _, _, err := g.Build(); err == nil {
		t.Fatal("bad TableBits accepted")
	}
}

func TestDefaultGravMicroMatchesPaperIterationCount(t *testing.T) {
	g := DefaultGravMicro(GravMath)
	if g.Iters != 500 {
		t.Fatalf("Iters = %d, the paper's loop count is 500", g.Iters)
	}
}

func TestCalibKernelsRun(t *testing.T) {
	for _, c := range CalibKernels() {
		p, st, err := c.Build(10)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		var tr isa.Trace
		if err := isa.Run(p, st, &tr, 1_000_000); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		want := uint64(10 * c.OpsPerIteration())
		if got := tr.ByClass[c.Class]; got < want {
			t.Fatalf("%s: %d ops of class %d, want ≥ %d", c.Name, got, c.Class, want)
		}
	}
}

func TestCalibKernelsDominatedByTargetClass(t *testing.T) {
	// The target class must be the plurality of non-branch, non-ALU
	// bookkeeping work — at least for the FP kernels.
	for _, c := range CalibKernels() {
		p, st, _ := c.Build(100)
		var tr isa.Trace
		if err := isa.Run(p, st, &tr, 0); err != nil {
			t.Fatal(err)
		}
		target := tr.ByClass[c.Class]
		for cls, n := range tr.ByClass {
			if isa.Class(cls) == c.Class || isa.Class(cls) == isa.ClassIntALU || isa.Class(cls) == isa.ClassBranch {
				continue
			}
			if n > target {
				t.Fatalf("%s: class %d count %d exceeds target class count %d", c.Name, cls, n, target)
			}
		}
	}
}

func TestCalibKernelBadIters(t *testing.T) {
	if _, _, err := CalibKernels()[0].Build(0); err == nil {
		t.Fatal("zero iters accepted")
	}
}

func TestGravMicroUnderCMSvsNarrowMolecules(t *testing.T) {
	// Ablation sanity: the 128-bit molecule format must not be slower than
	// the 64-bit format on the same kernel.
	g := GravMicro{Variant: GravKarp, NBodies: 4, Iters: 50, TableBits: 7, ChebDeg: 2, NRIters: 2, Seed: 3}

	run := func(wide bool) uint64 {
		p, st, err := g.Build()
		if err != nil {
			t.Fatal(err)
		}
		m := cms.NewMachine(cms.DefaultParams(), vliw.TM5600Timing())
		m.Trans.Wide = wide
		cycles, _, err := m.Run(p, st, 0)
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	wideC, narrowC := run(true), run(false)
	if wideC > narrowC {
		t.Fatalf("wide molecules slower: %d vs %d cycles", wideC, narrowC)
	}
}
