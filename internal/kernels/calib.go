package kernels

import (
	"fmt"
	"strings"

	"repro/internal/isa"
)

// CalibKernel is a loop dominated by one operation class, used to measure
// a machine's effective per-class throughput (e.g. to calibrate the coarse
// Crusoe model from full CMS+VLIW simulation).
type CalibKernel struct {
	Name  string
	Class isa.Class
	// Body emits one unrolled step; Ops is how many instructions of the
	// target class each step contains.
	body string
	Ops  int
}

// CalibKernels returns independent-operation loops, one per timing class
// that matters for the evaluation kernels. Bodies use distinct destination
// registers so the operations are independent (throughput, not latency,
// is measured — matching how the hardware-CPU cost tables are defined).
func CalibKernels() []CalibKernel {
	return []CalibKernel{
		{
			Name:  "intalu",
			Class: isa.ClassIntALU,
			body: `add r4, r2, r3
				add r5, r2, r3
				add r6, r2, r3
				add r7, r2, r3`,
			Ops: 4,
		},
		{
			Name:  "intmul",
			Class: isa.ClassIntMul,
			body: `mul r4, r2, r3
				mul r5, r2, r3
				mul r6, r2, r3
				mul r7, r2, r3`,
			Ops: 4,
		},
		{
			// Each load feeds a consumer so measured cost includes the
			// exposed memory latency (four interleaved chains leave the
			// out-of-order cores realistic overlap). The consumer adds
			// are charged to the load cost — consistently for every
			// processor, so relative ratings are unaffected.
			Name:  "load",
			Class: isa.ClassLoad,
			body: `ld r4, [r0+0]
				add r5, r4, r2
				ld r6, [r0+1]
				add r7, r6, r2
				ld r8, [r0+2]
				add r9, r8, r2
				ld r10, [r0+3]
				add r11, r10, r2`,
			Ops: 4,
		},
		{
			Name:  "store",
			Class: isa.ClassStore,
			body: `st [r0+0], r2
				st [r0+1], r2
				st [r0+2], r2
				st [r0+3], r2`,
			Ops: 4,
		},
		{
			Name:  "fpadd",
			Class: isa.ClassFPAdd,
			body: `fadd f4, f2, f3
				fadd f5, f2, f3
				fadd f6, f2, f3
				fadd f7, f2, f3`,
			Ops: 4,
		},
		{
			Name:  "fpmul",
			Class: isa.ClassFPMul,
			body: `fmul f4, f2, f3
				fmul f5, f2, f3
				fmul f6, f2, f3
				fmul f7, f2, f3`,
			Ops: 4,
		},
		{
			Name:  "fpdiv",
			Class: isa.ClassFPDiv,
			body: `fdiv f4, f2, f3
				fdiv f5, f2, f3`,
			Ops: 2,
		},
		{
			Name:  "fpsqrt",
			Class: isa.ClassFPSqrt,
			body: `fsqrt f4, f2
				fsqrt f5, f2`,
			Ops: 2,
		},
	}
}

// Build assembles the calibration loop with the given iteration count.
// Register/memory setup makes all operand values benign (no div by zero).
func (c CalibKernel) Build(iters int) (isa.Program, *isa.State, error) {
	if iters <= 0 {
		return nil, nil, fmt.Errorf("kernels: iters must be positive")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "movi r0, 0\nmovi r1, 0\nmovi r15, %d\n", iters)
	b.WriteString("movi r2, 3\nmovi r3, 5\nfmovi f2, 1.25\nfmovi f3, 0.75\n")
	b.WriteString("loop:\n")
	b.WriteString(c.body + "\n")
	b.WriteString("addi r1, r1, 1\ncmp r1, r15\njl loop\nhlt\n")
	p, err := isa.Assemble(b.String())
	if err != nil {
		return nil, nil, err
	}
	st := isa.NewState(8)
	for i := int64(0); i < 8; i++ {
		st.StoreI(i, i+1)
	}
	return p, st, nil
}

// OpsPerIteration returns the target-class op count per loop iteration.
func (c CalibKernel) OpsPerIteration() int { return c.Ops }
