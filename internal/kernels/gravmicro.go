// Package kernels generates the mini-ISA benchmark programs the paper's
// per-processor measurements run: the gravitational microkernel of §3.2 in
// both its library-sqrt and Karp-sqrt variants, plus per-op-class
// calibration loops used to fit the coarse CPU timing models.
package kernels

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/isa"
	"repro/internal/rsqrt"
	"repro/internal/sim"
)

// GravVariant selects the reciprocal-square-root implementation.
type GravVariant int

const (
	// GravMath uses the hardware square root and a divide.
	GravMath GravVariant = iota
	// GravKarp uses Karp's table + Chebyshev + Newton–Raphson sequence.
	GravKarp
)

func (v GravVariant) String() string {
	if v == GravMath {
		return "Math sqrt"
	}
	return "Karp sqrt"
}

// Memory layout (word addresses) shared by both variants.
const (
	addrXJ       = 0
	addrYJ       = 1
	addrZJ       = 2
	addrScratch  = 4
	addrAX       = 5
	addrAY       = 6
	addrAZ       = 7
	addrBodies   = 8
	wordsPerBody = 4 // x, y, z, m
)

// GravMicro describes one microkernel instance. The paper's run loops 500
// times over the reciprocal square-root calculation; NBodies is the number
// of field particles per sweep.
type GravMicro struct {
	Variant GravVariant
	NBodies int
	Iters   int
	// Karp configuration (ignored for GravMath).
	TableBits, ChebDeg, NRIters int
	// Seed for the deterministic particle distribution.
	Seed uint64
}

// DefaultGravMicro returns the paper-replica configuration for a variant.
func DefaultGravMicro(v GravVariant) GravMicro {
	return GravMicro{
		Variant:   v,
		NBodies:   32,
		Iters:     500,
		TableBits: 7,
		ChebDeg:   2,
		NRIters:   2,
		Seed:      2001,
	}
}

// Build assembles the program and an initialized architectural state
// (particle coordinates, and the Karp table for the Karp variant).
func (g GravMicro) Build() (isa.Program, *isa.State, error) {
	if g.NBodies <= 0 || g.Iters <= 0 {
		return nil, nil, fmt.Errorf("kernels: NBodies and Iters must be positive")
	}
	var table []float64
	tableBase := addrBodies + g.NBodies*wordsPerBody
	if g.Variant == GravKarp {
		var err error
		table, err = rsqrt.MonomialTable(g.TableBits, g.ChebDeg)
		if err != nil {
			return nil, nil, err
		}
	}
	src := g.source(tableBase)
	p, err := isa.Assemble(src)
	if err != nil {
		return nil, nil, fmt.Errorf("kernels: internal assembly error: %w\n%s", err, src)
	}
	st := isa.NewState(tableBase + len(table))
	xj, yj, zj, bodies := g.particles()
	st.StoreF(addrXJ, xj)
	st.StoreF(addrYJ, yj)
	st.StoreF(addrZJ, zj)
	for i, v := range bodies {
		st.StoreF(int64(addrBodies+i), v)
	}
	for i, c := range table {
		st.StoreF(int64(tableBase+i), c)
	}
	return p, st, nil
}

// particles returns the test particle position and the flattened
// (x, y, z, m) field-particle array, deterministically from the seed.
func (g GravMicro) particles() (xj, yj, zj float64, bodies []float64) {
	rng := sim.NewRNG(g.Seed)
	xj, yj, zj = 0.5, 0.5, 0.5
	bodies = make([]float64, g.NBodies*wordsPerBody)
	for i := 0; i < g.NBodies; i++ {
		// Keep particles away from the test particle so r² is well scaled.
		bodies[i*4+0] = 1.5 + rng.Float64()
		bodies[i*4+1] = 1.5 + rng.Float64()
		bodies[i*4+2] = 1.5 + rng.Float64()
		bodies[i*4+3] = 0.5 + 0.5*rng.Float64()
	}
	return
}

// source emits the assembly for the configured variant.
func (g GravMicro) source(tableBase int) string {
	var b strings.Builder
	w := func(format string, args ...any) {
		fmt.Fprintf(&b, format+"\n", args...)
	}
	w("; gravitational microkernel, %s variant", g.Variant)
	w("movi r0, 0")
	w("movi r10, %d", g.NBodies)
	w("movi r11, %d", g.Iters)
	w("movi r3, 0")
	w("fld f10, [r0+%d]", addrXJ)
	w("fld f11, [r0+%d]", addrYJ)
	w("fld f12, [r0+%d]", addrZJ)
	w("fmovi f13, 0.0")
	w("fmovi f14, 0.0")
	w("fmovi f15, 0.0")
	if g.Variant == GravMath {
		w("fmovi f9, 1.0")
	}
	w("outer:")
	w("movi r1, 0")
	w("movi r2, %d", addrBodies)
	w("inner:")
	w("fld f0, [r2+0]")
	w("fld f1, [r2+1]")
	w("fld f2, [r2+2]")
	w("fld f3, [r2+3]")
	w("fsub f0, f0, f10") // dx
	w("fsub f1, f1, f11")
	w("fsub f2, f2, f12")
	w("fmul f4, f0, f0")
	w("fmul f5, f1, f1")
	w("fmul f6, f2, f2")
	w("fadd f4, f4, f5")
	w("fadd f4, f4, f6") // r² in f4

	switch g.Variant {
	case GravMath:
		// r³ = r · r²; 1/r³ via divide.
		w("fsqrt f5, f4")
		w("fmul f6, f5, f4")
		w("fdiv f6, f9, f6") // f6 = 1/r³
	case GravKarp:
		g.emitKarpRsqrt(w, tableBase) // f5 ← 1/sqrt(f4)
		w("fmul f6, f5, f5")
		w("fmul f6, f6, f5") // f6 = 1/r³
	}

	w("fmul f7, f3, f6") // s = m/r³
	w("fmul f8, f7, f0")
	w("fadd f13, f13, f8")
	w("fmul f8, f7, f1")
	w("fadd f14, f14, f8")
	w("fmul f8, f7, f2")
	w("fadd f15, f15, f8")
	w("addi r2, r2, %d", wordsPerBody)
	w("addi r1, r1, 1")
	w("cmp r1, r10")
	w("jl inner")
	w("addi r3, r3, 1")
	w("cmp r3, r11")
	w("jl outer")
	w("fst [r0+%d], f13", addrAX)
	w("fst [r0+%d], f14", addrAY)
	w("fst [r0+%d], f15", addrAZ)
	w("hlt")
	return b.String()
}

// emitKarpRsqrt emits the Karp sequence computing f5 ← 1/sqrt(f4).
// Clobbers r4..r9 and f5..f8. Table lookup + Chebyshev-fitted monomial
// polynomial in the mantissa + Newton–Raphson, all without sqrt or divide.
func (g GravMicro) emitKarpRsqrt(w func(string, ...any), tableBase int) {
	deg := g.ChebDeg
	stride := deg + 1
	w("; --- Karp rsqrt: f5 = 1/sqrt(f4) ---")
	w("fst [r0+%d], f4", addrScratch)
	w("ld r4, [r0+%d]", addrScratch) // bits
	w("shr r5, r4, 52")              // biased exponent (positive input)
	w("addi r6, r5, 1")
	w("movi r7, 1")
	w("and r6, r6, r7") // p = (bexp+1)&1 — parity of the unbiased exponent
	// m ∈ [1,2): replace exponent field with the bias.
	w("movi r8, %d", int64(1)<<52-1)
	w("and r8, r4, r8")
	w("movi r9, %d", int64(1023)<<52)
	w("or r8, r8, r9")
	w("st [r0+%d], r8", addrScratch)
	w("fld f5, [r0+%d]", addrScratch) // m
	// Table index: (p << tableBits) | top mantissa bits.
	w("shr r9, r4, %d", 52-g.TableBits)
	w("movi r4, %d", int64(1)<<g.TableBits-1)
	w("and r9, r9, r4")
	w("shl r4, r6, %d", g.TableBits)
	w("or r9, r9, r4")
	// coefBase = tableBase + idx*stride.
	switch stride {
	case 1:
	case 2:
		w("shl r9, r9, 1")
	case 3:
		w("shl r4, r9, 1")
		w("add r9, r9, r4")
	case 4:
		w("shl r9, r9, 2")
	case 5:
		w("shl r4, r9, 2")
		w("add r9, r9, r4")
	}
	w("addi r9, r9, %d", tableBase)
	// Horner: y0 = ((c_deg·m + c_{deg-1})·m + ...)·m + c0.
	w("fld f6, [r9+%d]", deg)
	for k := deg - 1; k >= 0; k-- {
		w("fld f7, [r9+%d]", k)
		w("fmul f6, f6, f5")
		w("fadd f6, f6, f7")
	}
	// Scale 2^-s from biased-exponent arithmetic: ((3069+p-bexp)>>1)<<52.
	w("movi r4, 3069")
	w("add r4, r4, r6")
	w("sub r4, r4, r5")
	w("shr r4, r4, 1")
	w("shl r4, r4, 52")
	w("st [r0+%d], r4", addrScratch)
	w("fld f7, [r0+%d]", addrScratch)
	w("fmul f5, f6, f7") // y = poly(m) · 2^-s
	if g.NRIters > 0 {
		w("fmovi f7, 0.5")
		w("fmul f6, f7, f4") // xh = x/2
		w("fmovi f7, 1.5")
		for i := 0; i < g.NRIters; i++ {
			w("fmul f8, f5, f5")
			w("fmul f8, f6, f8")
			w("fsub f8, f7, f8")
			w("fmul f5, f5, f8")
		}
	}
	w("; --- end Karp rsqrt ---")
}

// Reference computes the accelerations in Go using the exact arithmetic
// sequence the generated program executes, so results can be compared
// bit-for-bit against the ISA run.
func (g GravMicro) Reference() (ax, ay, az float64, err error) {
	xj, yj, zj, bodies := g.particles()
	var table []float64
	if g.Variant == GravKarp {
		table, err = rsqrt.MonomialTable(g.TableBits, g.ChebDeg)
		if err != nil {
			return 0, 0, 0, err
		}
	}
	for it := 0; it < g.Iters; it++ {
		for i := 0; i < g.NBodies; i++ {
			xk := bodies[i*4+0]
			yk := bodies[i*4+1]
			zk := bodies[i*4+2]
			mk := bodies[i*4+3]
			dx := xk - xj
			dy := yk - yj
			dz := zk - zj
			r2 := dx*dx + dy*dy + dz*dz
			var rinv3 float64
			if g.Variant == GravMath {
				r := math.Sqrt(r2)
				rinv3 = 1.0 / (r * r2)
			} else {
				y := g.karpEval(table, r2)
				rinv3 = y * y * y
			}
			s := mk * rinv3
			ax += s * dx
			ay += s * dy
			az += s * dz
		}
	}
	return ax, ay, az, nil
}

// karpEval mirrors emitKarpRsqrt op-for-op.
func (g GravMicro) karpEval(table []float64, x float64) float64 {
	bits := math.Float64bits(x)
	bexp := int(bits >> 52 & 0x7FF)
	mant := bits & (1<<52 - 1)
	p := (bexp + 1) & 1
	m := math.Float64frombits(1023<<52 | mant)
	j := int(mant >> (52 - uint(g.TableBits)))
	idx := (p << g.TableBits) | j
	base := idx * (g.ChebDeg + 1)
	y := table[base+g.ChebDeg]
	for k := g.ChebDeg - 1; k >= 0; k-- {
		y = y*m + table[base+k]
	}
	scale := math.Float64frombits(uint64((3069+p-bexp)>>1) << 52)
	y = y * scale
	if g.NRIters > 0 {
		xh := 0.5 * x
		for i := 0; i < g.NRIters; i++ {
			t := y * y
			t = xh * t
			t = 1.5 - t
			y = y * t
		}
	}
	return y
}

// ReadAccel extracts the accumulated acceleration from a finished run.
func ReadAccel(st *isa.State) (ax, ay, az float64) {
	return st.LoadF(addrAX), st.LoadF(addrAY), st.LoadF(addrAZ)
}

// Interactions returns the number of particle interactions the kernel
// computes.
func (g GravMicro) Interactions() uint64 {
	return uint64(g.NBodies) * uint64(g.Iters)
}
