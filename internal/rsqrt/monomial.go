package rsqrt

import (
	"fmt"
	"math"
)

// MonomialTable builds the Karp lookup table in the form the ISA kernel
// consumes: for each (exponent-parity p, mantissa-interval j) entry, the
// polynomial approximating 1/sqrt(2^p · m) is expressed directly in the
// mantissa value m ∈ [1,2) (monomial basis), so the generated assembly can
// evaluate it with a plain Horner loop — no interval renormalization.
//
// Layout: entry idx = (p << tableBits) | j holds deg+1 coefficients at
// [idx*(deg+1)+k], constant term first: y ≈ Σ c_k · m^k.
func MonomialTable(tableBits, deg int) ([]float64, error) {
	if tableBits < 2 || tableBits > 12 {
		return nil, fmt.Errorf("rsqrt: tableBits %d out of [2,12]", tableBits)
	}
	if deg < 0 || deg > 4 {
		return nil, fmt.Errorf("rsqrt: deg %d out of [0,4]", deg)
	}
	n := 1 << tableBits
	out := make([]float64, 2*n*(deg+1))
	for p := 0; p < 2; p++ {
		scale := 1.0
		if p == 1 {
			scale = 2.0
		}
		for j := 0; j < n; j++ {
			a := 1 + float64(j)/float64(n)
			b := 1 + float64(j+1)/float64(n)
			// Fit over u ∈ [-1,1], then change basis to m.
			cu := chebFit(a, b, deg, func(m float64) float64 {
				return 1 / math.Sqrt(scale*m)
			})
			cm := changeBasisToM(cu, a, b)
			copy(out[((p<<tableBits)|j)*(deg+1):], cm)
		}
	}
	return out, nil
}

// changeBasisToM converts coefficients over u = (2m-a-b)/(b-a) into
// coefficients over m by polynomial substitution u = α·m + β.
func changeBasisToM(cu []float64, a, b float64) []float64 {
	alpha := 2 / (b - a)
	beta := -(a + b) / (b - a)
	n := len(cu)
	out := make([]float64, n)
	// (α·m + β)^k expanded iteratively.
	pow := make([]float64, 1, n) // coefficients of (αm+β)^k in m
	pow[0] = 1
	for k := 0; k < n; k++ {
		for j := 0; j < len(pow); j++ {
			out[j] += cu[k] * pow[j]
		}
		if k < n-1 {
			next := make([]float64, len(pow)+1)
			for j := 0; j < len(pow); j++ {
				next[j] += beta * pow[j]
				next[j+1] += alpha * pow[j]
			}
			pow = next
		}
	}
	return out
}
