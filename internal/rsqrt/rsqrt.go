// Package rsqrt implements the two reciprocal-square-root code paths the
// paper's gravitational microkernel benchmark compares (§3.2):
//
//   - the "Math sqrt" path: 1/sqrt(x) via the hardware square root and a
//     divide, and
//   - the "Karp sqrt" path: Karp's algorithm [A. Karp, "Speeding Up
//     N-body Calculations on Machines Lacking a Hardware Square Root",
//     Scientific Programming 1(2)]: a table lookup seeded from the
//     floating-point exponent and high mantissa bits, Chebyshev polynomial
//     interpolation within the table interval, and Newton–Raphson
//     iteration to full precision.
//
// The Karp path trades the long-latency sqrt/div instructions for a short
// sequence of multiplies and adds — exactly the trade the paper's Table 1
// measures across five processors.
package rsqrt

import (
	"fmt"
	"math"
)

// Math computes 1/sqrt(x) with the library square root (the baseline path).
func Math(x float64) float64 { return 1 / math.Sqrt(x) }

// Karp is a configured instance of Karp's reciprocal square root.
// The zero value is not usable; call NewKarp.
type Karp struct {
	tableBits int // mantissa bits indexing the table
	chebDeg   int // Chebyshev polynomial degree within an interval
	nrIters   int // Newton–Raphson refinement steps
	// coeffs holds (chebDeg+1) polynomial coefficients per interval, in
	// monomial form over the normalized coordinate u ∈ [-1, 1]. Intervals
	// are indexed by (exponent parity << tableBits) | high mantissa bits.
	coeffs []float64
}

// NewKarp builds the lookup table. tableBits in [2,12], chebDeg in [0,4],
// nrIters in [0,4].
func NewKarp(tableBits, chebDeg, nrIters int) (*Karp, error) {
	if tableBits < 2 || tableBits > 12 {
		return nil, fmt.Errorf("rsqrt: tableBits %d out of [2,12]", tableBits)
	}
	if chebDeg < 0 || chebDeg > 4 {
		return nil, fmt.Errorf("rsqrt: chebDeg %d out of [0,4]", chebDeg)
	}
	if nrIters < 0 || nrIters > 4 {
		return nil, fmt.Errorf("rsqrt: nrIters %d out of [0,4]", nrIters)
	}
	k := &Karp{tableBits: tableBits, chebDeg: chebDeg, nrIters: nrIters}
	n := 1 << tableBits
	k.coeffs = make([]float64, 2*n*(chebDeg+1))
	for parity := 0; parity < 2; parity++ {
		scale := 1.0
		if parity == 1 {
			scale = 2.0
		}
		for j := 0; j < n; j++ {
			a := scale * (1 + float64(j)/float64(n))
			b := scale * (1 + float64(j+1)/float64(n))
			c := chebFit(a, b, chebDeg, func(t float64) float64 { return 1 / math.Sqrt(t) })
			copy(k.coeffs[(parity*n+j)*(chebDeg+1):], c)
		}
	}
	return k, nil
}

// MustKarp is NewKarp that panics on bad parameters.
func MustKarp(tableBits, chebDeg, nrIters int) *Karp {
	k, err := NewKarp(tableBits, chebDeg, nrIters)
	if err != nil {
		panic(err)
	}
	return k
}

// DefaultKarp returns the configuration used by the paper-replica
// microkernel: 7 table bits, degree-2 Chebyshev, 2 Newton–Raphson steps —
// full double precision with no sqrt or divide.
func DefaultKarp() *Karp { return MustKarp(7, 2, 2) }

// TableBits returns the mantissa bits used for table indexing.
func (k *Karp) TableBits() int { return k.tableBits }

// ChebDegree returns the Chebyshev polynomial degree.
func (k *Karp) ChebDegree() int { return k.chebDeg }

// NRIters returns the Newton–Raphson iteration count.
func (k *Karp) NRIters() int { return k.nrIters }

// TableEntries returns the number of table intervals (including the
// exponent-parity dimension).
func (k *Karp) TableEntries() int { return 2 << k.tableBits }

// Rsqrt computes 1/sqrt(x) for finite x > 0.
func (k *Karp) Rsqrt(x float64) float64 {
	bits := math.Float64bits(x)
	exp := int(bits>>52&0x7FF) - 1023
	mant := bits & (1<<52 - 1)
	if exp == -1023 || exp == 1024 {
		// Subnormals, zero, inf, NaN: fall back (out of scope for the
		// kernel, which feeds squared distances of well-scaled positions).
		return 1 / math.Sqrt(x)
	}
	// x = 2^exp * m, m ∈ [1,2). Split exp = 2s + p with p ∈ {0,1}:
	// 1/sqrt(x) = 2^-s / sqrt(2^p * m), and t = 2^p·m ∈ [1,4).
	p := exp & 1
	if exp < 0 {
		p = ((exp % 2) + 2) % 2
	}
	s := (exp - p) / 2

	idx := (p << k.tableBits) | int(mant>>(52-uint(k.tableBits)))
	base := idx * (k.chebDeg + 1)

	// Normalized coordinate u ∈ [-1,1] within the interval.
	n := 1 << k.tableBits
	j := idx & (n - 1)
	scale := 1.0
	if p == 1 {
		scale = 2.0
	}
	m := math.Float64frombits(1023<<52 | mant) // [1,2)
	t := scale * m
	a := scale * (1 + float64(j)/float64(n))
	b := scale * (1 + float64(j+1)/float64(n))
	u := (2*t - a - b) / (b - a)

	// Horner evaluation of the interval polynomial.
	y := k.coeffs[base+k.chebDeg]
	for d := k.chebDeg - 1; d >= 0; d-- {
		y = y*u + k.coeffs[base+d]
	}
	y = math.Ldexp(y, -s)

	// Newton–Raphson on the original argument: y ← y(3 − x·y²)/2.
	for i := 0; i < k.nrIters; i++ {
		y = y * (1.5 - 0.5*x*y*y)
	}
	return y
}

// MaxRelError scans [lo, hi) with the given number of logarithmically
// spaced samples and returns the worst relative error against the library
// path. Used by accuracy tests and the table-size ablation.
func (k *Karp) MaxRelError(lo, hi float64, samples int) float64 {
	worst := 0.0
	llo, lhi := math.Log(lo), math.Log(hi)
	for i := 0; i < samples; i++ {
		x := math.Exp(llo + (lhi-llo)*float64(i)/float64(samples-1))
		want := 1 / math.Sqrt(x)
		got := k.Rsqrt(x)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// FlopsPerCall returns the floating-point operation count of one Karp
// evaluation under the paper's convention (adds/mults; the table load and
// bit twiddling are not flops). Used for Mflops accounting.
func (k *Karp) FlopsPerCall() int {
	// Horner: chebDeg mult+add pairs; u computation: ~3; ldexp excluded
	// (exponent manipulation); each NR step: 3 mult + 1 sub (y*y, x*, 0.5*
	// folded) = 4.
	return 2*k.chebDeg + 3 + 4*k.nrIters
}

// chebFit fits f on [a,b] with a degree-d Chebyshev interpolant and
// returns monomial coefficients over u ∈ [-1,1].
func chebFit(a, b float64, d int, f func(float64) float64) []float64 {
	n := d + 1
	// Chebyshev nodes and values.
	nodes := make([]float64, n)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		u := math.Cos(math.Pi * (float64(i) + 0.5) / float64(n))
		nodes[i] = u
		t := a + (b-a)*(u+1)/2
		vals[i] = f(t)
	}
	// Newton divided differences → monomial basis (n is tiny: ≤5).
	dd := make([]float64, n)
	copy(dd, vals)
	for lvl := 1; lvl < n; lvl++ {
		for i := n - 1; i >= lvl; i-- {
			dd[i] = (dd[i] - dd[i-1]) / (nodes[i] - nodes[i-lvl])
		}
	}
	// Expand Newton form to monomials.
	coeffs := make([]float64, n)
	poly := make([]float64, 1, n) // running product Π(u - nodes[i])
	poly[0] = 1
	for i := 0; i < n; i++ {
		for j := 0; j < len(poly); j++ {
			coeffs[j] += dd[i] * poly[j]
		}
		if i < n-1 {
			next := make([]float64, len(poly)+1)
			for j := 0; j < len(poly); j++ {
				next[j] -= nodes[i] * poly[j]
				next[j+1] += poly[j]
			}
			poly = next
		}
	}
	return coeffs
}
