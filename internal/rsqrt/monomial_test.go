package rsqrt

import (
	"math"
	"testing"
)

// evalMonomial mirrors what the generated ISA code does.
func evalMonomial(table []float64, tableBits, deg int, x float64) float64 {
	bits := math.Float64bits(x)
	bexp := int(bits >> 52 & 0x7FF)
	mant := bits & (1<<52 - 1)
	p := (bexp + 1) & 1 // parity of (bexp-1023), 1023 odd
	m := math.Float64frombits(1023<<52 | mant)
	j := int(mant >> (52 - uint(tableBits)))
	idx := (p << tableBits) | j
	base := idx * (deg + 1)
	y := table[base+deg]
	for k := deg - 1; k >= 0; k-- {
		y = y*m + table[base+k]
	}
	// scale = 2^-s where s = (exp - p)/2; via biased arithmetic
	// scaleBexp = (3069 + p - bexp) >> 1.
	scaleBits := uint64((3069+p-bexp)>>1) << 52
	return y * math.Float64frombits(scaleBits)
}

func TestMonomialTableSeedAccuracy(t *testing.T) {
	const bits, deg = 7, 2
	table, err := MonomialTable(bits, deg)
	if err != nil {
		t.Fatal(err)
	}
	worst := 0.0
	for i := 0; i < 20000; i++ {
		x := math.Exp(-10 + 20*float64(i)/19999)
		want := 1 / math.Sqrt(x)
		got := evalMonomial(table, bits, deg, x)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > 1e-6 {
		t.Fatalf("monomial seed max rel error %g, want ≤ 1e-6", worst)
	}
}

func TestMonomialTableWithNRFullPrecision(t *testing.T) {
	const bits, deg = 7, 2
	table, _ := MonomialTable(bits, deg)
	for _, x := range []float64{0.3, 1, 2, 3.7, 4, 17, 1e6, 1e-6, 123.456} {
		y := evalMonomial(table, bits, deg, x)
		for i := 0; i < 2; i++ {
			y = y * (1.5 - 0.5*x*y*y)
		}
		want := 1 / math.Sqrt(x)
		if math.Abs(y-want)/want > 1e-14 {
			t.Errorf("x=%v: %v, want %v", x, y, want)
		}
	}
}

func TestMonomialTableParamValidation(t *testing.T) {
	if _, err := MonomialTable(1, 2); err == nil {
		t.Error("tableBits=1 accepted")
	}
	if _, err := MonomialTable(7, 9); err == nil {
		t.Error("deg=9 accepted")
	}
}

func TestMonomialExponentScaleFormula(t *testing.T) {
	// The biased-exponent identity used by the ISA kernel: for any normal
	// positive x, 2^-s == Float64frombits(((3069+p-bexp)>>1)<<52).
	for _, x := range []float64{1, 2, 4, 8, 0.5, 0.25, 3, 5, 1e100, 1e-100} {
		bits := math.Float64bits(x)
		bexp := int(bits >> 52 & 0x7FF)
		exp := bexp - 1023
		p := ((exp % 2) + 2) % 2
		s := (exp - p) / 2
		want := math.Ldexp(1, -s)
		got := math.Float64frombits(uint64((3069+p-bexp)>>1) << 52)
		if want != got {
			t.Fatalf("x=%v: scale %v != %v", x, got, want)
		}
		if pp := (bexp + 1) & 1; pp != p {
			t.Fatalf("x=%v: parity via bexp %d != %d", x, pp, p)
		}
	}
}
