package rsqrt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMath(t *testing.T) {
	if got := Math(4); got != 0.5 {
		t.Fatalf("Math(4) = %v, want 0.5", got)
	}
	if got := Math(1); got != 1 {
		t.Fatalf("Math(1) = %v, want 1", got)
	}
}

func TestNewKarpParamValidation(t *testing.T) {
	bad := [][3]int{{1, 2, 2}, {13, 2, 2}, {7, -1, 2}, {7, 5, 2}, {7, 2, -1}, {7, 2, 5}}
	for _, c := range bad {
		if _, err := NewKarp(c[0], c[1], c[2]); err == nil {
			t.Errorf("NewKarp(%v) accepted", c)
		}
	}
	if _, err := NewKarp(7, 2, 2); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
}

func TestKarpDefaultFullPrecision(t *testing.T) {
	k := DefaultKarp()
	if err := k.Rsqrt(2); err == 0 {
		t.Fatal("zero result")
	}
	worst := k.MaxRelError(1e-6, 1e6, 20000)
	if worst > 1e-14 {
		t.Fatalf("default Karp max rel error %g, want ≤ 1e-14", worst)
	}
}

func TestKarpExactValues(t *testing.T) {
	k := DefaultKarp()
	cases := []struct{ x, want float64 }{
		{1, 1}, {4, 0.5}, {16, 0.25}, {0.25, 2}, {2, 1 / math.Sqrt2},
		{1e10, 1e-5}, {1e-10, 1e5}, {3, 1 / math.Sqrt(3)},
	}
	for _, c := range cases {
		got := k.Rsqrt(c.x)
		if math.Abs(got-c.want)/c.want > 1e-14 {
			t.Errorf("Rsqrt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestKarpSeedAccuracyWithoutNR(t *testing.T) {
	// Table + Chebyshev alone (no NR) must land within ~1e-6 — the
	// precision Karp's paper targets before refinement.
	k := MustKarp(7, 2, 0)
	worst := k.MaxRelError(0.5, 8, 10000)
	if worst > 1e-6 {
		t.Fatalf("seed max rel error %g, want ≤ 1e-6", worst)
	}
}

func TestKarpEachNRIterationSquaresError(t *testing.T) {
	// Newton–Raphson roughly squares the relative error per step.
	e0 := MustKarp(5, 1, 0).MaxRelError(1, 4, 4000)
	e1 := MustKarp(5, 1, 1).MaxRelError(1, 4, 4000)
	e2 := MustKarp(5, 1, 2).MaxRelError(1, 4, 4000)
	if !(e1 < e0*e0*10 && e1 < e0/100) {
		t.Fatalf("1 NR step: %g → %g, expected quadratic convergence", e0, e1)
	}
	if e2 >= e1 {
		t.Fatalf("2nd NR step did not improve: %g → %g", e1, e2)
	}
}

func TestKarpTableSizeImprovesSeed(t *testing.T) {
	eSmall := MustKarp(3, 1, 0).MaxRelError(1, 4, 4000)
	eBig := MustKarp(9, 1, 0).MaxRelError(1, 4, 4000)
	if eBig >= eSmall {
		t.Fatalf("bigger table did not help: %g vs %g", eSmall, eBig)
	}
}

func TestKarpChebDegreeImprovesSeed(t *testing.T) {
	e0 := MustKarp(5, 0, 0).MaxRelError(1, 4, 4000)
	e2 := MustKarp(5, 2, 0).MaxRelError(1, 4, 4000)
	if e2 >= e0/10 {
		t.Fatalf("degree-2 Chebyshev did not help enough: %g vs %g", e0, e2)
	}
}

func TestKarpPropertyAgainstMath(t *testing.T) {
	k := DefaultKarp()
	f := func(raw float64) bool {
		x := math.Abs(raw)
		if x == 0 || math.IsInf(x, 0) || math.IsNaN(x) {
			return true
		}
		// Keep within the normal range the kernel feeds.
		if x < 1e-300 || x > 1e300 {
			return true
		}
		want := 1 / math.Sqrt(x)
		got := k.Rsqrt(x)
		return math.Abs(got-want)/want <= 1e-13
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestKarpOddEvenExponents(t *testing.T) {
	// Exponent parity handling: check values straddling powers of two,
	// including negative exponents (floor-division path).
	k := DefaultKarp()
	for _, x := range []float64{0.9, 1.1, 1.9, 2.1, 3.9, 4.1, 0.49, 0.51, 0.24, 0.26, 7.99, 8.01} {
		want := 1 / math.Sqrt(x)
		got := k.Rsqrt(x)
		if math.Abs(got-want)/want > 1e-14 {
			t.Errorf("Rsqrt(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestKarpSubnormalFallback(t *testing.T) {
	k := DefaultKarp()
	x := 1e-320 // subnormal
	want := 1 / math.Sqrt(x)
	got := k.Rsqrt(x)
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("subnormal fallback Rsqrt(%g) = %v, want %v", x, got, want)
	}
}

func TestFlopsPerCall(t *testing.T) {
	k := MustKarp(7, 2, 2)
	if got := k.FlopsPerCall(); got != 2*2+3+4*2 {
		t.Fatalf("FlopsPerCall = %d, want 15", got)
	}
	if MustKarp(7, 0, 0).FlopsPerCall() != 3 {
		t.Fatal("FlopsPerCall for bare table lookup wrong")
	}
}

func TestTableEntries(t *testing.T) {
	if got := MustKarp(7, 2, 2).TableEntries(); got != 256 {
		t.Fatalf("TableEntries = %d, want 256", got)
	}
}

func TestAccessors(t *testing.T) {
	k := MustKarp(6, 1, 3)
	if k.TableBits() != 6 || k.ChebDegree() != 1 || k.NRIters() != 3 {
		t.Fatalf("accessors: %d %d %d", k.TableBits(), k.ChebDegree(), k.NRIters())
	}
}
