package treecode

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nbody"
)

func TestMortonKeyRoundTripOrdering(t *testing.T) {
	root := Box{CX: 0.5, CY: 0.5, CZ: 0.5, Half: 0.5001}
	// Same cell at every level ⇒ same ancestor keys.
	k1 := MortonKey(0.1, 0.1, 0.1, root)
	k2 := MortonKey(0.1001, 0.1001, 0.1001, root)
	if k1.AncestorAt(5) != k2.AncestorAt(5) {
		t.Fatal("nearby points diverge at level 5")
	}
	k3 := MortonKey(0.9, 0.9, 0.9, root)
	if k1.AncestorAt(1) == k3.AncestorAt(1) {
		t.Fatal("distant points share a level-1 cell")
	}
}

func TestKeyAlgebra(t *testing.T) {
	if RootKey.Level() != 0 {
		t.Fatalf("root level = %d", RootKey.Level())
	}
	c := RootKey.Child(5)
	if c.Level() != 1 || c.Parent() != RootKey {
		t.Fatalf("child/parent algebra broken: %x", c)
	}
	if c != Key(0b1101) {
		t.Fatalf("child key = %b", c)
	}
	full := MortonKey(0.3, 0.7, 0.2, Box{0.5, 0.5, 0.5, 0.5001})
	if full.Level() != KeyBits {
		t.Fatalf("full key level = %d, want %d", full.Level(), KeyBits)
	}
	if full.AncestorAt(0) != RootKey {
		t.Fatal("level-0 ancestor is not root")
	}
}

func TestKeyLevelProperty(t *testing.T) {
	f := func(x, y, z float64) bool {
		x, y, z = math.Abs(x), math.Abs(y), math.Abs(z)
		if math.IsInf(x, 0) || math.IsNaN(x) || x > 1e150 {
			return true
		}
		root := Box{CX: 0, CY: 0, CZ: 0, Half: 1e151}
		k := MortonKey(x, y, z, root)
		// Parent chain reaches the root in exactly KeyBits steps.
		for i := 0; i < KeyBits; i++ {
			k = k.Parent()
		}
		return k == RootKey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxOctantGeometry(t *testing.T) {
	b := Box{CX: 0, CY: 0, CZ: 0, Half: 1}
	for oct := 0; oct < 8; oct++ {
		c := b.Octant(oct)
		if c.Half != 0.5 {
			t.Fatalf("octant half = %v", c.Half)
		}
		if !b.Contains(c.CX, c.CY, c.CZ) {
			t.Fatalf("octant %d centre outside parent", oct)
		}
	}
	// All octant centres distinct.
	seen := map[[3]float64]bool{}
	for oct := 0; oct < 8; oct++ {
		c := b.Octant(oct)
		key := [3]float64{c.CX, c.CY, c.CZ}
		if seen[key] {
			t.Fatal("duplicate octant centre")
		}
		seen[key] = true
	}
}

func TestBoxMinDist(t *testing.T) {
	b := Box{CX: 0, CY: 0, CZ: 0, Half: 1}
	if b.MinDist(0.5, 0, 0) != 0 {
		t.Fatal("inside point has nonzero MinDist")
	}
	if got := b.MinDist(3, 0, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("MinDist = %v, want 2", got)
	}
	if got := b.MinDist(2, 2, 0); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("corner MinDist = %v, want √2", got)
	}
}

func buildFromSystem(t *testing.T, s *nbody.System, opt BuildOptions) *Tree {
	t.Helper()
	tr, err := Build(SourcesFromSystem(s), opt)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestTreeInvariants(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 500} {
		for _, bucket := range []int{1, 4, 16} {
			s := nbody.NewPlummer(n, 1, uint64(n*100+bucket))
			tr := buildFromSystem(t, s, BuildOptions{Bucket: bucket})
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("n=%d bucket=%d: %v", n, bucket, err)
			}
		}
	}
}

func TestTreeInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, bucketRaw uint8) bool {
		n := 1 + int(nRaw)%200
		bucket := 1 + int(bucketRaw)%16
		s := nbody.NewUniformCube(n, seed)
		tr, err := Build(SourcesFromSystem(s), BuildOptions{Bucket: bucket})
		if err != nil {
			return false
		}
		return tr.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoincidentParticles(t *testing.T) {
	// Particles at the same position must not infinitely subdivide.
	s := nbody.NewSystem(10)
	for i := 0; i < 10; i++ {
		s.X[i], s.Y[i], s.Z[i] = 0.5, 0.5, 0.5
		s.M[i] = 0.1
	}
	tr := buildFromSystem(t, s, BuildOptions{Bucket: 2})
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTreeForceMatchesDirectAccuracy(t *testing.T) {
	s := nbody.NewPlummer(500, 1, 77)
	s.Eps = 0.02
	ref := nbody.NewPlummer(500, 1, 77)
	ref.Eps = 0.02
	ref.DirectForces()

	for _, theta := range []float64{0.3, 0.7} {
		f := &Forcer{Theta: theta, Bucket: 8}
		if err := f.Forces(s); err != nil {
			t.Fatal(err)
		}
		// RMS relative force error.
		var sum, norm float64
		for i := 0; i < s.N(); i++ {
			dx := s.AX[i] - ref.AX[i]
			dy := s.AY[i] - ref.AY[i]
			dz := s.AZ[i] - ref.AZ[i]
			a2 := ref.AX[i]*ref.AX[i] + ref.AY[i]*ref.AY[i] + ref.AZ[i]*ref.AZ[i]
			sum += (dx*dx + dy*dy + dz*dz)
			norm += a2
		}
		rms := math.Sqrt(sum / norm)
		limit := 0.02
		if theta < 0.5 {
			limit = 0.005
		}
		if rms > limit {
			t.Fatalf("theta=%v: RMS force error %g > %g", theta, rms, limit)
		}
	}
}

func TestSmallerThetaMoreAccurateMoreWork(t *testing.T) {
	s := nbody.NewPlummer(400, 1, 5)
	run := func(theta float64) (uint64, float64) {
		sys := nbody.NewPlummer(400, 1, 5)
		ref := nbody.NewPlummer(400, 1, 5)
		ref.DirectForces()
		f := &Forcer{Theta: theta}
		if err := f.Forces(sys); err != nil {
			t.Fatal(err)
		}
		var sum, norm float64
		for i := 0; i < sys.N(); i++ {
			dx := sys.AX[i] - ref.AX[i]
			dy := sys.AY[i] - ref.AY[i]
			dz := sys.AZ[i] - ref.AZ[i]
			sum += dx*dx + dy*dy + dz*dz
			norm += ref.AX[i]*ref.AX[i] + ref.AY[i]*ref.AY[i] + ref.AZ[i]*ref.AZ[i]
		}
		return f.LastStats.Interactions(), math.Sqrt(sum / norm)
	}
	w3, e3 := run(0.3)
	w9, e9 := run(0.9)
	if !(w3 > w9) {
		t.Fatalf("theta 0.3 work %d not above theta 0.9 work %d", w3, w9)
	}
	if !(e3 < e9) {
		t.Fatalf("theta 0.3 error %g not below theta 0.9 error %g", e3, e9)
	}
	_ = s
}

func TestTreeBeatsDirectInInteractions(t *testing.T) {
	// O(N log N) vs O(N²): at a few thousand particles the tree must do
	// far fewer interactions.
	n := 3000
	s := nbody.NewPlummer(n, 1, 9)
	f := &Forcer{Theta: 0.7}
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	direct := uint64(n) * uint64(n-1)
	if f.LastStats.Interactions()*4 > direct {
		t.Fatalf("tree interactions %d not ≪ direct %d", f.LastStats.Interactions(), direct)
	}
}

func TestQuadrupoleImprovesAccuracy(t *testing.T) {
	ref := nbody.NewPlummer(600, 1, 21)
	ref.DirectForces()
	rms := func(quad bool) float64 {
		s := nbody.NewPlummer(600, 1, 21)
		f := &Forcer{Theta: 0.8, Quadrupole: quad}
		if err := f.Forces(s); err != nil {
			t.Fatal(err)
		}
		var sum, norm float64
		for i := 0; i < s.N(); i++ {
			dx := s.AX[i] - ref.AX[i]
			dy := s.AY[i] - ref.AY[i]
			dz := s.AZ[i] - ref.AZ[i]
			sum += dx*dx + dy*dy + dz*dz
			norm += ref.AX[i]*ref.AX[i] + ref.AY[i]*ref.AY[i] + ref.AZ[i]*ref.AZ[i]
		}
		return math.Sqrt(sum / norm)
	}
	mono, quad := rms(false), rms(true)
	if quad >= mono {
		t.Fatalf("quadrupole RMS %g not below monopole %g", quad, mono)
	}
}

func TestTreecodeEnergyConservationInIntegration(t *testing.T) {
	s := nbody.NewPlummer(200, 1, 33)
	k0, p0 := s.Energy()
	e0 := k0 + p0
	if err := s.Leapfrog(&Forcer{Theta: 0.5}, 0.002, 50); err != nil {
		t.Fatal(err)
	}
	k1, p1 := s.Energy()
	drift := math.Abs((k1 + p1 - e0) / e0)
	if drift > 0.01 {
		t.Fatalf("treecode integration energy drift %g", drift)
	}
}

func TestStatsFlops(t *testing.T) {
	st := Stats{PP: 10, PC: 5}
	if st.Interactions() != 15 {
		t.Fatal("interaction count")
	}
	if st.Flops() != 15*nbody.FlopsPerInteraction {
		t.Fatal("flop convention")
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, BuildOptions{}); err == nil {
		t.Fatal("empty source list accepted")
	}
}

func TestSingleParticleTree(t *testing.T) {
	tr, err := Build([]Source{{X: 1, Y: 2, Z: 3, M: 5, Index: 0}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var st Stats
	ax, _, _ := tr.ForceAt(1, 2, 3, 0, 0.7, 0.01, &st)
	if ax != 0 || st.Interactions() != 0 {
		t.Fatal("self-interaction not excluded")
	}
	ax, _, _ = tr.ForceAt(0, 2, 3, -1, 0.7, 0, &st)
	if math.Abs(ax-5) > 1e-12 {
		t.Fatalf("force from unit distance = %v, want 5", ax)
	}
}
