package treecode

import (
	"sort"
	"testing"

	"repro/internal/nbody"
)

// bruteNeighbors is the O(n) reference: indices into the key-sorted
// Sources within radius of the point.
func bruteNeighbors(tr *Tree, x, y, z, radius float64) []int {
	var out []int
	r2 := radius * radius
	for i, s := range tr.Sources {
		dx, dy, dz := s.X-x, s.Y-y, s.Z-z
		if dx*dx+dy*dy+dz*dz <= r2 {
			out = append(out, i)
		}
	}
	return out
}

func requireSameIndices(t *testing.T, got, want []int, label string) {
	t.Helper()
	sort.Ints(got)
	sort.Ints(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbours, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: neighbour set differs at %d: %d vs %d", label, i, got[i], want[i])
		}
	}
}

// TestNeighborsMatchesBruteForce cross-checks the pruned walk against
// direct summation over assorted centres and radii, including a query
// sphere straddling the root boundary (centre outside the root box).
func TestNeighborsMatchesBruteForce(t *testing.T) {
	s := nbody.NewPlummer(1500, 1, 21)
	tr := buildFromSystem(t, s, BuildOptions{})
	for _, q := range []struct {
		name    string
		x, y, z float64
		r       float64
	}{
		{"centre", 0, 0, 0, 0.3},
		{"off-centre", 0.4, -0.2, 0.1, 0.5},
		{"straddles-root", tr.Root.CX + tr.Root.Half, 0, 0, 0.8},
		{"outside-root", tr.Root.CX + 2*tr.Root.Half, tr.Root.CY, tr.Root.CZ, 1.5 * tr.Root.Half},
		{"covers-everything", 0, 0, 0, 100},
	} {
		got := tr.Neighbors(q.x, q.y, q.z, q.r, nil)
		want := bruteNeighbors(tr, q.x, q.y, q.z, q.r)
		requireSameIndices(t, got, want, q.name)
	}
}

// TestNeighborsZeroRadius: a zero-radius query at an exact particle
// position returns that particle (the ≤ boundary), and nothing when
// centred between particles.
func TestNeighborsZeroRadius(t *testing.T) {
	s := nbody.NewPlummer(500, 1, 9)
	tr := buildFromSystem(t, s, BuildOptions{})
	p := tr.Sources[123]
	got := tr.Neighbors(p.X, p.Y, p.Z, 0, nil)
	found := false
	for _, i := range got {
		if i == 123 {
			found = true
		}
		q := tr.Sources[i]
		if q.X != p.X || q.Y != p.Y || q.Z != p.Z {
			t.Fatalf("zero-radius query returned non-coincident source %d", i)
		}
	}
	if !found {
		t.Fatal("zero-radius query at a particle position missed it")
	}
	if got := tr.Neighbors(1e6, 1e6, 1e6, 0, nil); len(got) != 0 {
		t.Fatalf("zero-radius query far from everything returned %d sources", len(got))
	}
}

// TestNeighborsDegenerateTrees: an empty Tree value and a negative
// radius return the slice unchanged instead of panicking; a
// single-particle tree answers correctly on both sides of its radius.
func TestNeighborsDegenerateTrees(t *testing.T) {
	var empty Tree
	if got := empty.Neighbors(0, 0, 0, 1, nil); got != nil {
		t.Fatalf("empty tree returned %v", got)
	}
	seed := []int{7}
	if got := empty.Neighbors(0, 0, 0, 1, seed); len(got) != 1 || got[0] != 7 {
		t.Fatalf("empty tree mutated the out slice: %v", got)
	}

	one, err := Build([]Source{{X: 0.5, Y: 0.5, Z: 0.5, M: 1, Index: 0}}, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := one.Neighbors(0.5, 0.5, 0.5, 0.1, nil); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-particle hit = %v, want [0]", got)
	}
	if got := one.Neighbors(5, 5, 5, 0.1, nil); len(got) != 0 {
		t.Fatalf("single-particle miss = %v, want empty", got)
	}
	if got := one.Neighbors(0.5, 0.5, 0.5, -1, nil); len(got) != 0 {
		t.Fatalf("negative radius = %v, want empty", got)
	}
}
