package treecode

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/nbody"
	"repro/internal/obs"
	"repro/internal/par"
)

// Source is a gravitating point: a particle or an exported cell's
// monopole (pseudo-particle).
type Source struct {
	X, Y, Z, M float64
	// Index is ≥ 0 for a real local particle (its index in the target
	// system) and -1 for a pseudo-particle, which can never be "self".
	Index int
}

// Node is one tree cell.
type Node struct {
	Key      Key
	Box      Box
	Children [8]int32 // node indices; -1 if absent
	Leaf     bool
	// First/Count index the tree's key-ordered source permutation for
	// leaf cells.
	First, Count int
	// Monopole moment.
	M          float64
	CX, CY, CZ float64
	// Quadrupole moments (traceless Cartesian), used when the tree is
	// built with quadrupoles enabled.
	QXX, QYY, QZZ, QXY, QXZ, QYZ float64
}

// Tree is a bucketed hashed oct-tree over a set of sources.
type Tree struct {
	Root    Box
	Nodes   []Node
	ByKey   map[Key]int32 // the "hashed" index of Warren–Salmon
	Sources []Source      // key-sorted
	Bucket  int
	// Quadrupole enables second-order moments in cell interactions.
	Quadrupole bool
	// MaxDepth bounds subdivision (coincident particles share a leaf).
	MaxDepth int

	// walkOnce guards the lazily built rope-threaded walk index the
	// list engine traverses (derived state; see buildWalkIndex).
	walkOnce sync.Once
	walk     []walkNode
	walkB    []Box
	walkQ    []float64
}

// BuildOptions configure tree construction.
type BuildOptions struct {
	Bucket     int  // max particles per leaf (default 8)
	MaxDepth   int  // default 20 (one less than key resolution)
	Quadrupole bool // compute quadrupole moments
	// Workers is the host worker-pool width used for key generation and
	// per-octant subtree construction; 0 follows par.Workers(). The tree
	// (node order, moments, hash) is bit-identical at every width.
	Workers int
}

// Morton-key generation grain and the size below which a parallel build
// isn't worth the fan-out. Fixed constants so chunking never depends on
// the worker count.
const (
	keyGrain      = 8192
	parallelBuild = 4096
	// spineDepth is how many levels the serial spine descends before
	// handing octant subtrees to the pool (up to 8^spineDepth tasks).
	spineDepth = 2
)

// Build constructs a tree over the sources.
func Build(sources []Source, opt BuildOptions) (*Tree, error) {
	if len(sources) == 0 {
		return nil, fmt.Errorf("treecode: no sources")
	}
	opt = normalizeBuildOptions(opt)
	pool := par.New(opt.Workers)
	root, err := sourceBounds(sources)
	if err != nil {
		return nil, err
	}
	t := &Tree{
		Root:       root,
		ByKey:      map[Key]int32{},
		Sources:    append([]Source(nil), sources...),
		Bucket:     opt.Bucket,
		Quadrupole: opt.Quadrupole,
		MaxDepth:   opt.MaxDepth,
	}
	// Sort sources by Morton key. Key generation is embarrassingly
	// parallel; the sort stays serial (it is not the dominant cost and
	// serial pdqsort is deterministic). Equal keys — coincident or
	// sub-cell-coincident particles — tie-break on the input index, so
	// the permutation is the unique (key, index) total order: the same
	// order the incremental maintainer's stable re-sort reproduces,
	// which is what keeps a maintained tree bit-identical to Build.
	keys := make([]Key, len(t.Sources))
	idx := make([]int, len(t.Sources))
	pool.For(len(t.Sources), keyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = MortonKey(t.Sources[i].X, t.Sources[i].Y, t.Sources[i].Z, root)
			idx[i] = i
		}
	})
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := keys[idx[a]], keys[idx[b]]
		if ka != kb {
			return ka < kb
		}
		return idx[a] < idx[b]
	})
	sorted := make([]Source, len(t.Sources))
	sortedKeys := make([]Key, len(t.Sources))
	for i, j := range idx {
		sorted[i] = t.Sources[j]
		sortedKeys[i] = keys[j]
	}
	t.Sources = sorted

	b := &builder{
		sources:  t.Sources,
		keys:     sortedKeys,
		bucket:   t.Bucket,
		maxDepth: t.MaxDepth,
		quad:     t.Quadrupole,
	}
	if len(t.Sources) >= parallelBuild && pool.W != 1 {
		b.buildParallel(RootKey, root, pool)
	} else {
		b.build(RootKey, root, 0, len(t.Sources), 0)
	}
	t.Nodes = b.nodes
	for i := range t.Nodes {
		t.ByKey[t.Nodes[i].Key] = int32(i)
	}
	return t, nil
}

// builder is a tree-construction arena: the recursion state plus the
// node slice being grown. Parallel builds use one builder per octant
// subtree and stitch the arenas together in DFS preorder, so the final
// node array is byte-identical to a fully serial build.
type builder struct {
	sources  []Source
	keys     []Key
	bucket   int
	maxDepth int
	quad     bool
	nodes    []Node
}

// child returns a builder sharing the read-only inputs with an empty
// node arena.
func (b *builder) child() *builder {
	return &builder{sources: b.sources, keys: b.keys, bucket: b.bucket, maxDepth: b.maxDepth, quad: b.quad}
}

// octants partitions the key-sorted run [lo,hi) at the given level into
// its eight octant runs by binary search on the key bits.
func (b *builder) octants(lo, hi, level int) (bounds [9]int) {
	shift := uint(3 * (KeyBits - 1 - level))
	start := lo
	bounds[0] = lo
	for oct := 0; oct < 8; oct++ {
		end := start + sort.Search(hi-start, func(i int) bool {
			return int((b.keys[start+i]>>shift)&7) > oct
		})
		bounds[oct+1] = end
		start = end
	}
	return bounds
}

// build recursively constructs the node covering sources [lo,hi) at the
// given level and returns its node index.
func (b *builder) build(key Key, box Box, lo, hi, level int) int32 {
	ni := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Key: key, Box: box, First: lo, Count: hi - lo})
	for i := range b.nodes[ni].Children {
		b.nodes[ni].Children[i] = -1
	}

	if hi-lo <= b.bucket || level >= b.maxDepth {
		b.nodes[ni].Leaf = true
		b.computeLeafMoments(ni)
		return ni
	}
	bounds := b.octants(lo, hi, level)
	for oct := 0; oct < 8; oct++ {
		if bounds[oct+1] > bounds[oct] {
			ci := b.build(key.Child(oct), box.Octant(oct), bounds[oct], bounds[oct+1], level+1)
			b.nodes[ni].Children[oct] = ci
		}
	}
	b.computeInternalMoments(ni)
	return ni
}

// spineNode is one internal node of the serial spine: the top levels of
// the tree, whose frontier children are built as parallel tasks.
type spineNode struct {
	key      Key
	box      Box
	lo, hi   int
	level    int
	children [8]*spineNode
	// task indexes the deferred-subtree list; -1 for internal spine
	// nodes (which have children instead).
	task int
}

// buildParallel builds the tree with per-octant subtree fan-out: a
// serial spine descends spineDepth levels collecting subtree tasks, the
// pool builds each task's arena concurrently, and emit stitches the
// arenas back in DFS preorder — reproducing the serial node order, and
// therefore (with the same per-node accumulation order) the serial
// float results, bit for bit.
func (b *builder) buildParallel(key Key, box Box, pool *par.Pool) {
	var tasks []*spineNode
	var spine func(key Key, box Box, lo, hi, level int) *spineNode
	spine = func(key Key, box Box, lo, hi, level int) *spineNode {
		sn := &spineNode{key: key, box: box, lo: lo, hi: hi, level: level, task: -1}
		if hi-lo <= b.bucket || level >= b.maxDepth || level >= spineDepth {
			sn.task = len(tasks)
			tasks = append(tasks, sn)
			return sn
		}
		bounds := b.octants(lo, hi, level)
		for oct := 0; oct < 8; oct++ {
			if bounds[oct+1] > bounds[oct] {
				sn.children[oct] = spine(key.Child(oct), box.Octant(oct), bounds[oct], bounds[oct+1], level+1)
			}
		}
		return sn
	}
	root := spine(key, box, 0, len(b.sources), 0)

	arenas := make([]*builder, len(tasks))
	thunks := make([]func(), len(tasks))
	for i, sn := range tasks {
		i, sn := i, sn
		thunks[i] = func() {
			tb := b.child()
			tb.build(sn.key, sn.box, sn.lo, sn.hi, sn.level)
			arenas[i] = tb
		}
	}
	pool.Do(thunks...)

	b.nodes = make([]Node, 0, totalNodes(arenas)+len(tasks))
	b.emit(root, arenas)
}

func totalNodes(arenas []*builder) int {
	n := 0
	for _, a := range arenas {
		n += len(a.nodes)
	}
	return n
}

// emit appends the subtree rooted at sn to the arena in DFS preorder and
// returns its node index. Task arenas are spliced in with their child
// indices rebased; spine nodes get their moments computed bottom-up in
// octant order, exactly as the serial recursion does.
func (b *builder) emit(sn *spineNode, arenas []*builder) int32 {
	if sn.task >= 0 {
		off := int32(len(b.nodes))
		for _, n := range arenas[sn.task].nodes {
			for i, ci := range n.Children {
				if ci >= 0 {
					n.Children[i] = ci + off
				}
			}
			b.nodes = append(b.nodes, n)
		}
		return off
	}
	ni := int32(len(b.nodes))
	b.nodes = append(b.nodes, Node{Key: sn.key, Box: sn.box, First: sn.lo, Count: sn.hi - sn.lo})
	for i := range b.nodes[ni].Children {
		b.nodes[ni].Children[i] = -1
	}
	for oct := 0; oct < 8; oct++ {
		if sn.children[oct] != nil {
			ci := b.emit(sn.children[oct], arenas)
			b.nodes[ni].Children[oct] = ci
		}
	}
	b.computeInternalMoments(ni)
	return ni
}

func (b *builder) computeLeafMoments(ni int32) {
	n := &b.nodes[ni]
	for i := n.First; i < n.First+n.Count; i++ {
		s := b.sources[i]
		n.M += s.M
		n.CX += s.M * s.X
		n.CY += s.M * s.Y
		n.CZ += s.M * s.Z
	}
	if n.M > 0 {
		n.CX /= n.M
		n.CY /= n.M
		n.CZ /= n.M
	}
	if b.quad {
		for i := n.First; i < n.First+n.Count; i++ {
			s := b.sources[i]
			accumQuad(n, s.M, s.X-n.CX, s.Y-n.CY, s.Z-n.CZ)
		}
	}
}

func (b *builder) computeInternalMoments(ni int32) {
	n := &b.nodes[ni]
	for _, ci := range n.Children {
		if ci < 0 {
			continue
		}
		c := &b.nodes[ci]
		n.M += c.M
		n.CX += c.M * c.CX
		n.CY += c.M * c.CY
		n.CZ += c.M * c.CZ
	}
	if n.M > 0 {
		n.CX /= n.M
		n.CY /= n.M
		n.CZ /= n.M
	}
	if b.quad {
		// Parallel-axis shift of children's quadrupoles plus their
		// monopole displacement terms.
		for _, ci := range n.Children {
			if ci < 0 {
				continue
			}
			c := &b.nodes[ci]
			n.QXX += c.QXX
			n.QYY += c.QYY
			n.QZZ += c.QZZ
			n.QXY += c.QXY
			n.QXZ += c.QXZ
			n.QYZ += c.QYZ
			accumQuad(n, c.M, c.CX-n.CX, c.CY-n.CY, c.CZ-n.CZ)
		}
	}
}

// accumQuad adds a point mass's traceless quadrupole contribution about
// the node centre.
func accumQuad(n *Node, m, dx, dy, dz float64) {
	r2 := dx*dx + dy*dy + dz*dz
	n.QXX += m * (3*dx*dx - r2)
	n.QYY += m * (3*dy*dy - r2)
	n.QZZ += m * (3*dz*dz - r2)
	n.QXY += m * 3 * dx * dy
	n.QXZ += m * 3 * dx * dz
	n.QYZ += m * 3 * dy * dz
}

// Stats reports a force computation's work.
type Stats struct {
	PP uint64 // particle–particle interactions
	PC uint64 // particle–cell interactions
}

// Interactions returns the total interaction count.
func (st Stats) Interactions() uint64 { return st.PP + st.PC }

// Flops returns nominal flops under the treecode-paper convention.
func (st Stats) Flops() uint64 { return st.Interactions() * nbody.FlopsPerInteraction }

// ForceAt evaluates the softened acceleration at a point using the
// Barnes–Hut criterion: accept a cell when size/distance < theta. selfIdx
// excludes one local particle (pass -1 to include everything).
//
// ForceAt is a thin wrapper over the list engine with a pooled arena;
// callers on a hot loop should hold their own WalkArena and call
// ForceAtList directly (one pool round-trip and telemetry flush per
// call is the wrapper's only overhead — the results are identical).
func (t *Tree) ForceAt(x, y, z float64, selfIdx int, theta, eps float64, st *Stats) (ax, ay, az float64) {
	ar, ok := forceArenas.Get().(*WalkArena)
	if !ok {
		ar = NewWalkArena()
	} else {
		listArenaReuse.Inc()
	}
	ax, ay, az = t.ForceAtList(x, y, z, selfIdx, theta, eps, st, ar)
	ar.FlushTelemetry()
	forceArenas.Put(ar)
	return ax, ay, az
}

// ForceAtRecursive is the original closure-recursive walk, retained as
// the bit-exact golden reference the list engine is tested against and
// as the benchmark baseline (Forcer.Engine = EngineRecursive).
func (t *Tree) ForceAtRecursive(x, y, z float64, selfIdx int, theta, eps float64, st *Stats) (ax, ay, az float64) {
	eps2 := softening2(eps)
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.Nodes[ni]
		if n.M == 0 {
			return
		}
		dx := n.CX - x
		dy := n.CY - y
		dz := n.CZ - z
		d2 := dx*dx + dy*dy + dz*dz
		size := 2 * n.Box.Half
		// The MAC applies to leaves too (a distant bucket is one monopole,
		// not Bucket particle interactions); the containment guard keeps
		// the target's own leaf open so self-exclusion stays exact.
		if (!n.Leaf || n.Count > 1) && size*size < theta*theta*d2 && !n.Box.Contains(x, y, z) {
			// Multipole acceptance: monopole (+ optional quadrupole).
			r2 := d2 + eps2
			rinv := 1 / math.Sqrt(r2)
			rinv2 := rinv * rinv
			mono := n.M * rinv * rinv2
			ax += mono * dx
			ay += mono * dy
			az += mono * dz
			if t.Quadrupole {
				// With d pointing target→COM and traceless Q:
				// a_q = −(Q·d)/R⁵ + (5/2)(d·Q·d)·d/R⁷.
				qx := n.QXX*dx + n.QXY*dy + n.QXZ*dz
				qy := n.QXY*dx + n.QYY*dy + n.QYZ*dz
				qz := n.QXZ*dx + n.QYZ*dy + n.QZZ*dz
				rinv5 := rinv2 * rinv2 * rinv
				rqr := qx*dx + qy*dy + qz*dz
				c1 := -rinv5
				c2 := 2.5 * rqr * rinv5 * rinv2
				ax += c1*qx + c2*dx
				ay += c1*qy + c2*dy
				az += c1*qz + c2*dz
			}
			st.PC++
			return
		}
		if n.Leaf {
			for i := n.First; i < n.First+n.Count; i++ {
				s := t.Sources[i]
				if s.Index == selfIdx && s.Index >= 0 {
					continue
				}
				px := s.X - x
				py := s.Y - y
				pz := s.Z - z
				r2 := px*px + py*py + pz*pz + eps2
				rinv := 1 / math.Sqrt(r2)
				f := s.M * rinv * rinv * rinv
				ax += f * px
				ay += f * py
				az += f * pz
				st.PP++
			}
			return
		}
		for _, ci := range n.Children {
			if ci >= 0 {
				walk(ci)
			}
		}
	}
	walk(0)
	return ax, ay, az
}

// Forcer computes treecode forces for an nbody.System; it implements
// nbody.Forcer.
type Forcer struct {
	Theta      float64
	Bucket     int
	Quadrupole bool
	// Workers is the host worker-pool width for the build and the force
	// loop; 0 follows par.Workers(). Forces are bit-identical at every
	// width (each particle's tree walk is independent).
	Workers int
	// Tracer, when non-nil, records wall-clock spans for the build and
	// force phases of every call (obs.PidHost).
	Tracer *obs.Tracer
	// Engine selects the force-evaluation engine. The zero value is
	// EngineAuto: ErrorBudget picks the amortized dual-tree engine by
	// default, or the bit-identical list engine when the budget demands
	// exactness. See ResolveEngine.
	Engine Engine
	// ErrorBudget tunes EngineAuto, in units of the exact theta-walk's
	// own RMS force error against direct summation: 0 means
	// DefaultErrorBudget (1, "no worse than the reference engine",
	// which the dual engine's conservative MAC guarantees); anything
	// below 1 demands bit-exactness and falls back to EngineList.
	ErrorBudget float64
	// GroupSize is the target-group granularity of the group and dual
	// engines (0 = DefaultGroupSize).
	GroupSize int
	// GroupWalk is the deprecated PR 5 spelling of Engine = EngineGroup;
	// it is honoured only when Engine is EngineAuto.
	GroupWalk bool
	// Reuse selects incremental tree maintenance across Forces calls
	// (see TreeCache). The zero value is ReuseAuto: the forcer keeps a
	// tree maintainer alive, so a one-shot call still pays exactly one
	// fresh build while multi-step integrations amortize keying,
	// sorting and node construction — bit-identical to fresh builds
	// either way. ReuseOff pins the pre-maintainer behaviour (a fresh
	// Build every call).
	Reuse ReuseMode
	// LastStats reports the most recent force computation's work.
	LastStats Stats
	// Total accumulates stats across every Forces call on this Forcer
	// (a multi-step Leapfrog integration sums here).
	Total Stats

	// arenas are the per-worker walk arenas, grown to the pool width on
	// first use and reused across Forces calls so the steady-state
	// force path allocates nothing per walk.
	arenas []*WalkArena
	// groups is the reusable group-walk work list.
	groups []int32
	// cache is the persistent tree maintainer (when Reuse enables it)
	// and srcBuf the reusable source-conversion buffer it reads, so the
	// steady-state tree refresh allocates nothing.
	cache  *TreeCache
	srcBuf []Source
}

// forceGrain is the per-chunk particle count of the parallel force
// loop; groupGrain is the per-chunk *group* count of the group walk
// (groups hold up to DefaultGroupSize particles, so chunks stay
// comparable to forceGrain).
const (
	forceGrain = 512
	groupGrain = 8
)

// resolve maps the Forcer's engine selection (including the deprecated
// GroupWalk bool) and error budget to the engine a call runs.
func (f *Forcer) resolve() Engine {
	e := f.Engine
	if e == EngineAuto && f.GroupWalk {
		e = EngineGroup
	}
	return ResolveEngine(e, f.ErrorBudget)
}

// groupSize returns the configured target-group granularity.
func (f *Forcer) groupSize() int {
	if f.GroupSize > 0 {
		return f.GroupSize
	}
	return DefaultGroupSize
}

// Forces implements nbody.Forcer: builds a fresh tree over the system and
// fills its acceleration arrays.
func (f *Forcer) Forces(s *nbody.System) error { return f.ForcesActive(s, nil) }

// ForcesActive implements nbody.ActiveForcer: like Forces, but when
// active is non-nil only particles with active[i] true get their
// accelerations recomputed (the block-timestep integrator's active
// rung); the rest keep their previous values. The tree — the source
// side — always covers every particle at its current position.
func (f *Forcer) ForcesActive(s *nbody.System, active []bool) error {
	theta := f.Theta
	if theta <= 0 {
		theta = 0.7
	}
	opt := BuildOptions{Bucket: f.Bucket, Quadrupole: f.Quadrupole, Workers: f.Workers}
	sp := f.Tracer.Begin(obs.PidHost, 0, "treecode", "build")
	var t *Tree
	var err error
	var nsrc int
	if f.Reuse.enabled() {
		// Step-aware path: the persistent maintainer refreshes last
		// step's tree in place — bit-identical to the fresh build below.
		f.srcBuf = AppendSources(f.srcBuf[:0], s)
		nsrc = len(f.srcBuf)
		if f.cache == nil {
			f.cache = NewTreeCache()
		}
		t, err = f.cache.Step(f.srcBuf, opt)
	} else {
		srcs := SourcesFromSystem(s)
		nsrc = len(srcs)
		t, err = Build(srcs, opt)
	}
	if err != nil {
		return err
	}
	sp.End(map[string]any{"sources": nsrc, "nodes": len(t.Nodes)})
	pool := par.New(f.Workers)
	n := s.N()
	// Grow the per-worker arena set to the pool width; arenas that
	// survive from a previous Forces call are warm (their buffers keep
	// capacity), which is what makes the steady-state path alloc-free.
	width := pool.Width()
	if reused := min(len(f.arenas), width); reused > 0 {
		listArenaReuse.Add(uint64(reused))
	}
	for len(f.arenas) < width {
		f.arenas = append(f.arenas, NewWalkArena())
	}
	sp = f.Tracer.Begin(obs.PidHost, 0, "treecode", "forces")
	sel := t.Select(active)
	var st Stats
	switch engine := f.resolve(); engine {
	case EngineGroup:
		st = f.groupForces(t, s, pool, theta, sel)
	case EngineDual:
		st = f.dualForces(t, s, pool, theta, sel)
	default:
		// Per-chunk sharded interaction counters: chunk c owns slot c,
		// the merge folds slots in slot order, so the counts are
		// race-free and bit-identical at any worker width (the obs
		// determinism rule). Each walk's result depends only on the
		// particle, so which worker's arena serves it cannot matter.
		nc := par.NumChunks(n, forceGrain)
		pp := obs.NewShardedCounter(nc)
		pc := obs.NewShardedCounter(nc)
		recursive := engine == EngineRecursive
		pool.ForChunksWorker(n, forceGrain, func(w, c, lo, hi int) {
			ar := f.arenas[w]
			var cst Stats
			for i := lo; i < hi; i++ {
				if active != nil && !active[i] {
					continue
				}
				var ax, ay, az float64
				if recursive {
					ax, ay, az = t.ForceAtRecursive(s.X[i], s.Y[i], s.Z[i], i, theta, s.Eps, &cst)
				} else {
					ax, ay, az = t.ForceAtList(s.X[i], s.Y[i], s.Z[i], i, theta, s.Eps, &cst, ar)
				}
				s.AX[i] = s.G * ax
				s.AY[i] = s.G * ay
				s.AZ[i] = s.G * az
			}
			pp.Add(c, cst.PP)
			pc.Add(c, cst.PC)
		})
		st = Stats{PP: pp.Value(), PC: pc.Value()}
	}
	for _, ar := range f.arenas[:width] {
		ar.FlushTelemetry()
	}
	sp.End(map[string]any{"pp": st.PP, "pc": st.PC})
	f.LastStats = st
	f.Total.PP += st.PP
	f.Total.PC += st.PC
	s.Interactions += st.Interactions()
	return nil
}

// groupForces runs the group-walk engine: the work list is the tree's
// maximal ≤DefaultGroupSize-particle subtrees, each group shares one
// traversal, and every particle is a target of exactly one group — so
// acceleration writes are disjoint, each particle's value is
// independent of scheduling, and the per-chunk sharded counters keep
// the stats deterministic at any worker width.
func (f *Forcer) groupForces(t *Tree, s *nbody.System, pool *par.Pool, theta float64, sel *Selection) Stats {
	f.groups = t.AppendGroups(f.groups[:0], f.groupSize())
	nl := len(f.groups)
	nc := par.NumChunks(nl, groupGrain)
	pp := obs.NewShardedCounter(nc)
	pc := obs.NewShardedCounter(nc)
	pool.ForChunksWorker(nl, groupGrain, func(w, c, lo, hi int) {
		ar := f.arenas[w]
		var cst Stats
		for li := lo; li < hi; li++ {
			n := &t.Nodes[f.groups[li]]
			if sel.count(int32(n.First), int32(n.First+n.Count)) == 0 {
				continue
			}
			t.groupForceLeaf(f.groups[li], theta, s.Eps, sel, ar, &cst)
			for k := 0; k < ar.NumTargets(); k++ {
				i, ax, ay, az := ar.Target(k)
				s.AX[i] = s.G * ax
				s.AY[i] = s.G * ay
				s.AZ[i] = s.G * az
			}
		}
		pp.Add(c, cst.PP)
		pc.Add(c, cst.PC)
	})
	return Stats{PP: pp.Value(), PC: pc.Value()}
}

// dualForces runs the dual-tree engine: the work list is the tree's
// maximal ≤DualTaskSize-particle subtrees, each refined independently
// against the whole tree. Tasks partition the particles, so
// acceleration writes are disjoint and — with per-chunk sharded
// counters — results and stats are bit-identical at any worker width.
func (f *Forcer) dualForces(t *Tree, s *nbody.System, pool *par.Pool, theta float64, sel *Selection) Stats {
	f.groups = t.AppendGroups(f.groups[:0], DualTaskSize)
	nl := len(f.groups)
	nc := par.NumChunks(nl, 1)
	pp := obs.NewShardedCounter(nc)
	pc := obs.NewShardedCounter(nc)
	gsize := f.groupSize()
	pool.ForChunksWorker(nl, 1, func(w, c, lo, hi int) {
		ar := f.arenas[w]
		var cst Stats
		for li := lo; li < hi; li++ {
			n := &t.Nodes[f.groups[li]]
			if sel.count(int32(n.First), int32(n.First+n.Count)) == 0 {
				continue
			}
			t.DualForceWalk(f.groups[li], theta, s.Eps, gsize, sel, ar, &cst)
			for k := 0; k < ar.NumTargets(); k++ {
				i, ax, ay, az := ar.Target(k)
				s.AX[i] = s.G * ax
				s.AY[i] = s.G * ay
				s.AZ[i] = s.G * az
			}
		}
		pp.Add(c, cst.PP)
		pc.Add(c, cst.PC)
	})
	return Stats{PP: pp.Value(), PC: pc.Value()}
}

// SourcesFromSystem converts a system's particles to sources.
func SourcesFromSystem(s *nbody.System) []Source {
	return AppendSources(make([]Source, 0, s.N()), s)
}

// AppendSources appends a system's particles to dst and returns it —
// the reusable-buffer form of SourcesFromSystem the tree maintainer's
// steady state feeds on (dst[:0] of last step's buffer: no allocation).
func AppendSources(dst []Source, s *nbody.System) []Source {
	for i := 0; i < s.N(); i++ {
		dst = append(dst, Source{X: s.X[i], Y: s.Y[i], Z: s.Z[i], M: s.M[i], Index: i})
	}
	return dst
}

// CheckInvariants verifies structural and physical invariants: every
// source in exactly one leaf, node masses equal their subtree sums,
// children lie inside parents, and the hash covers every node. Property
// tests drive this over random systems.
func (t *Tree) CheckInvariants() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("treecode: empty tree")
	}
	seen := make([]int, len(t.Sources))
	var totalM float64
	for _, s := range t.Sources {
		totalM += s.M
	}
	var walk func(ni int32) (float64, int, error)
	walk = func(ni int32) (float64, int, error) {
		n := &t.Nodes[ni]
		if got := t.ByKey[n.Key]; got != ni {
			return 0, 0, fmt.Errorf("hash lookup of key %x gives node %d, want %d", n.Key, got, ni)
		}
		if n.Leaf {
			var m float64
			for i := n.First; i < n.First+n.Count; i++ {
				seen[i]++
				s := t.Sources[i]
				m += s.M
				// Quantization can park a boundary particle in the
				// neighbouring cell at depth; verify against the root
				// instead of the leaf box for robustness, and the leaf
				// box with tolerance.
				if n.Box.MinDist(s.X, s.Y, s.Z) > 1e-9*t.Root.Half {
					return 0, 0, fmt.Errorf("source %d outside its leaf box", i)
				}
			}
			if math.Abs(m-n.M) > 1e-9*(1+math.Abs(m)) {
				return 0, 0, fmt.Errorf("leaf mass %g != sum %g", n.M, m)
			}
			return m, n.Count, nil
		}
		var m float64
		var cnt int
		for oct, ci := range n.Children {
			if ci < 0 {
				continue
			}
			c := &t.Nodes[ci]
			if c.Key != n.Key.Child(oct) {
				return 0, 0, fmt.Errorf("child key mismatch")
			}
			cm, cc, err := walk(ci)
			if err != nil {
				return 0, 0, err
			}
			m += cm
			cnt += cc
		}
		if math.Abs(m-n.M) > 1e-9*(1+math.Abs(m)) {
			return 0, 0, fmt.Errorf("internal mass %g != children sum %g", n.M, m)
		}
		if cnt != n.Count {
			return 0, 0, fmt.Errorf("internal count %d != children sum %d", n.Count, cnt)
		}
		return m, cnt, nil
	}
	m, cnt, err := walk(0)
	if err != nil {
		return err
	}
	if cnt != len(t.Sources) {
		return fmt.Errorf("tree covers %d of %d sources", cnt, len(t.Sources))
	}
	if math.Abs(m-totalM) > 1e-9*(1+math.Abs(totalM)) {
		return fmt.Errorf("tree mass %g != total %g", m, totalM)
	}
	for i, c := range seen {
		if c != 1 {
			return fmt.Errorf("source %d appears in %d leaves", i, c)
		}
	}
	return nil
}
