package treecode

import (
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/netsim"
)

func TestDecomposeCoversAllParticles(t *testing.T) {
	s := nbody.NewPlummer(100, 1, 4)
	for _, p := range []int{1, 2, 3, 8, 24} {
		parts, err := Decompose(s, p)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, s.N())
		total := 0
		for _, part := range parts {
			for _, i := range part {
				if seen[i] {
					t.Fatalf("p=%d: particle %d assigned twice", p, i)
				}
				seen[i] = true
				total++
			}
		}
		if total != s.N() {
			t.Fatalf("p=%d: covered %d of %d", p, total, s.N())
		}
		// Balance: ranks differ by at most 1 particle.
		for _, part := range parts {
			if len(part) < s.N()/p || len(part) > s.N()/p+1 {
				t.Fatalf("p=%d: imbalanced part size %d", p, len(part))
			}
		}
	}
}

func TestDecomposeValidation(t *testing.T) {
	s := nbody.NewPlummer(10, 1, 1)
	if _, err := Decompose(s, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := Decompose(nbody.NewSystem(0), 2); err == nil {
		t.Fatal("empty system accepted")
	}
}

func TestBoxToBoxDist(t *testing.T) {
	a := Box{0, 0, 0, 1}
	b := Box{5, 0, 0, 1}
	if got := boxToBoxDist(a, b); math.Abs(got-3) > 1e-12 {
		t.Fatalf("dist = %v, want 3", got)
	}
	c := Box{1.5, 0, 0, 1}
	if got := boxToBoxDist(a, c); got != 0 {
		t.Fatalf("overlapping boxes dist = %v", got)
	}
}

func TestLETExportSmallerThanFullDomain(t *testing.T) {
	s := nbody.NewPlummer(2000, 1, 8)
	tr := buildFromSystem(t, s, BuildOptions{Bucket: 8})
	// A distant remote domain needs far fewer sources than N.
	remote := Box{CX: 100, CY: 0, CZ: 0, Half: 1}
	let := tr.letExport(remote, 0.7)
	if len(let) == 0 {
		t.Fatal("empty LET")
	}
	if len(let) > s.N()/10 {
		t.Fatalf("LET for a distant domain has %d of %d sources", len(let), s.N())
	}
	// Mass is conserved by the export.
	var m float64
	for _, src := range let {
		m += src.M
	}
	if math.Abs(m-1) > 1e-9 {
		t.Fatalf("LET mass %v, want 1", m)
	}
	// An overlapping domain needs more sources than a distant one.
	near := tr.letExport(Box{CX: 0, CY: 0, CZ: 0, Half: 1}, 0.7)
	if len(near) <= len(let) {
		t.Fatalf("near LET (%d) not larger than far LET (%d)", len(near), len(let))
	}
}

func parallelVsDirect(t *testing.T, n, p int, theta float64) float64 {
	t.Helper()
	ref := nbody.NewPlummer(n, 1, 55)
	ref.Eps = 0.02
	ref.DirectForces()

	s := nbody.NewPlummer(n, 1, 55)
	s.Eps = 0.02
	w, err := mpi.NewWorld(p, netsim.FastEthernet())
	if err != nil {
		t.Fatal(err)
	}
	_, err = ParallelForces(w, s, ParallelConfig{Theta: theta, Eps: s.Eps})
	if err != nil {
		t.Fatal(err)
	}
	var sum, norm float64
	for i := 0; i < n; i++ {
		dx := s.AX[i] - ref.AX[i]
		dy := s.AY[i] - ref.AY[i]
		dz := s.AZ[i] - ref.AZ[i]
		sum += dx*dx + dy*dy + dz*dz
		norm += ref.AX[i]*ref.AX[i] + ref.AY[i]*ref.AY[i] + ref.AZ[i]*ref.AZ[i]
	}
	return math.Sqrt(sum / norm)
}

func TestParallelForcesAccuracy(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7, 8} {
		rms := parallelVsDirect(t, 600, p, 0.5)
		if rms > 0.01 {
			t.Fatalf("p=%d: parallel RMS force error %g", p, rms)
		}
	}
}

func TestParallelMatchesSerialTreeClosely(t *testing.T) {
	// The LET construction must not lose accuracy relative to the serial
	// treecode at the same theta (both vs direct).
	serialErr := func() float64 {
		ref := nbody.NewPlummer(600, 1, 55)
		ref.Eps = 0.02
		ref.DirectForces()
		s := nbody.NewPlummer(600, 1, 55)
		s.Eps = 0.02
		f := &Forcer{Theta: 0.5}
		if err := f.Forces(s); err != nil {
			t.Fatal(err)
		}
		var sum, norm float64
		for i := 0; i < s.N(); i++ {
			dx := s.AX[i] - ref.AX[i]
			dy := s.AY[i] - ref.AY[i]
			dz := s.AZ[i] - ref.AZ[i]
			sum += dx*dx + dy*dy + dz*dz
			norm += ref.AX[i]*ref.AX[i] + ref.AY[i]*ref.AY[i] + ref.AZ[i]*ref.AZ[i]
		}
		return math.Sqrt(sum / norm)
	}()
	parErr := parallelVsDirect(t, 600, 4, 0.5)
	if parErr > 5*serialErr+1e-6 {
		t.Fatalf("parallel error %g far above serial %g", parErr, serialErr)
	}
}

func TestParallelSimTimeScales(t *testing.T) {
	// With modelled per-interaction cost, more ranks must reduce the
	// simulated makespan (up to communication overhead) for a decent N.
	n := 4000
	cost := CostModel{SecondsPerInteraction: 200e-9, SecondsPerBuildSource: 300e-9}
	run := func(p int) float64 {
		s := nbody.NewPlummer(n, 1, 12)
		w, err := mpi.NewWorld(p, netsim.FastEthernet())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ParallelForces(w, s, ParallelConfig{Theta: 0.7, Eps: 0.01, Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		if res.SimTime <= 0 {
			t.Fatal("no simulated time")
		}
		return res.SimTime
	}
	t1, t4, t16 := run(1), run(4), run(16)
	if !(t1 > t4 && t4 > t16) {
		t.Fatalf("no speedup: t1=%g t4=%g t16=%g", t1, t4, t16)
	}
	s4 := t1 / t4
	if s4 < 2.5 || s4 > 4.01 {
		t.Fatalf("4-rank speedup %g implausible", s4)
	}
	// Efficiency drops with P (communication overhead — the paper's
	// Table 2 observation).
	e4 := t1 / t4 / 4
	e16 := t1 / t16 / 16
	if e16 >= e4 {
		t.Fatalf("efficiency did not drop: e4=%g e16=%g", e4, e16)
	}
}

func TestParallelCommVolumeReported(t *testing.T) {
	s := nbody.NewPlummer(500, 1, 3)
	w, _ := mpi.NewWorld(4, netsim.FastEthernet())
	res, err := ParallelForces(w, s, ParallelConfig{Theta: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommBytes == 0 || res.CommMessages == 0 || res.ImportedSources == 0 {
		t.Fatalf("communication not accounted: %+v", res)
	}
	if res.Stats.Interactions() == 0 {
		t.Fatal("no interactions recorded")
	}
}

func TestParallelIntegrationConservesEnergy(t *testing.T) {
	// Drive leapfrog with parallel forces via a closure Forcer.
	s := nbody.NewPlummer(300, 1, 17)
	k0, p0 := s.Energy()
	e0 := k0 + p0
	pf := forcerFunc(func(sys *nbody.System) error {
		w, err := mpi.NewWorld(4, nil)
		if err != nil {
			return err
		}
		_, err = ParallelForces(w, sys, ParallelConfig{Theta: 0.5, Eps: sys.Eps})
		return err
	})
	if err := s.Leapfrog(pf, 0.002, 30); err != nil {
		t.Fatal(err)
	}
	k1, p1 := s.Energy()
	drift := math.Abs((k1 + p1 - e0) / e0)
	if drift > 0.01 {
		t.Fatalf("energy drift %g", drift)
	}
}

type forcerFunc func(*nbody.System) error

func (f forcerFunc) Forces(s *nbody.System) error { return f(s) }

func TestInteractionAndBuildMixes(t *testing.T) {
	im := InteractionMix()
	if im.Flops != nbody.FlopsPerInteraction {
		t.Fatalf("interaction mix flops %d", im.Flops)
	}
	if im.ByClass[0] != 0 && false {
		t.Fatal("unreachable")
	}
	bm := BuildMix()
	if bm.ByClass[3] == 0 && bm.ByClass[1] == 0 {
		t.Fatal("build mix empty")
	}
}
