package treecode

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// TestEventModeBitIdenticalForces pins the tentpole contract on the
// treecode: the event-driven scheduler reproduces the goroutine path
// bit-for-bit — accelerations, virtual times, comm volumes and every
// observability counter — across rank counts and engines.
func TestEventModeBitIdenticalForces(t *testing.T) {
	cost := CostModel{SecondsPerInteraction: 200e-9, SecondsPerBuildSource: 300e-9}
	for _, engine := range []Engine{EngineList, EngineGroup, EngineDual} {
		for _, p := range []int{2, 8, 24, 64} {
			run := func(event bool) (*nbody.System, *ParallelResult, []byte) {
				s := nbody.NewPlummer(1200, 1, 55)
				s.Eps = 0.02
				f := netsim.FastEthernet()
				f.PortContention = true
				w, err := mpi.NewWorldWithConfig(p, mpi.Config{Fabric: f, Event: event})
				if err != nil {
					t.Fatal(err)
				}
				res, err := ParallelForces(w, s, ParallelConfig{
					Theta: 0.6, Eps: s.Eps, Cost: cost, Engine: engine,
				})
				if err != nil {
					t.Fatalf("engine=%v p=%d event=%v: %v", engine, p, event, err)
				}
				snap := obs.NewSnapshot()
				snap.Gather(w)
				var buf bytes.Buffer
				if err := snap.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return s, res, buf.Bytes()
			}
			sg, rg, og := run(false)
			se, re, oe := run(true)
			if math.Float64bits(rg.SimTime) != math.Float64bits(re.SimTime) {
				t.Errorf("engine=%v p=%d: sim time %x vs %x", engine, p,
					math.Float64bits(rg.SimTime), math.Float64bits(re.SimTime))
			}
			if rg.CommBytes != re.CommBytes || rg.CommMessages != re.CommMessages ||
				rg.ImportedSources != re.ImportedSources || rg.Stats != re.Stats {
				t.Errorf("engine=%v p=%d: results differ: %+v vs %+v", engine, p, rg, re)
			}
			for i := 0; i < sg.N(); i++ {
				if math.Float64bits(sg.AX[i]) != math.Float64bits(se.AX[i]) ||
					math.Float64bits(sg.AY[i]) != math.Float64bits(se.AY[i]) ||
					math.Float64bits(sg.AZ[i]) != math.Float64bits(se.AZ[i]) {
					t.Fatalf("engine=%v p=%d: acceleration %d differs", engine, p, i)
				}
			}
			if !bytes.Equal(og, oe) {
				t.Errorf("engine=%v p=%d: obs snapshots differ:\n%s\nvs\n%s", engine, p, og, oe)
			}
		}
	}
}
