package treecode

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/sim"
)

// drift advances positions ballistically — enough motion to churn keys
// and octant structure without running a full integrator.
func drift(s *nbody.System, dt float64) {
	for i := 0; i < s.N(); i++ {
		s.X[i] += s.VX[i] * dt
		s.Y[i] += s.VY[i] * dt
		s.Z[i] += s.VZ[i] * dt
	}
}

// requireSameTree fails unless the two trees are bit-identical:
// geometry, node array (structure and every float), source order, hash
// and walk index.
func requireSameTree(t *testing.T, got, want *Tree, label string) {
	t.Helper()
	fb := math.Float64bits
	if fb(got.Root.CX) != fb(want.Root.CX) || fb(got.Root.CY) != fb(want.Root.CY) ||
		fb(got.Root.CZ) != fb(want.Root.CZ) || fb(got.Root.Half) != fb(want.Root.Half) {
		t.Fatalf("%s: root box differs: %+v vs %+v", label, got.Root, want.Root)
	}
	if len(got.Nodes) != len(want.Nodes) {
		t.Fatalf("%s: %d nodes, want %d", label, len(got.Nodes), len(want.Nodes))
	}
	for i := range want.Nodes {
		g, w := &got.Nodes[i], &want.Nodes[i]
		if g.Key != w.Key || g.Leaf != w.Leaf || g.First != w.First || g.Count != w.Count ||
			g.Children != w.Children {
			t.Fatalf("%s: node %d structure differs:\n got %+v\nwant %+v", label, i, g, w)
		}
		same := fb(g.M) == fb(w.M) && fb(g.CX) == fb(w.CX) && fb(g.CY) == fb(w.CY) && fb(g.CZ) == fb(w.CZ) &&
			fb(g.Box.CX) == fb(w.Box.CX) && fb(g.Box.Half) == fb(w.Box.Half) &&
			fb(g.QXX) == fb(w.QXX) && fb(g.QYY) == fb(w.QYY) && fb(g.QZZ) == fb(w.QZZ) &&
			fb(g.QXY) == fb(w.QXY) && fb(g.QXZ) == fb(w.QXZ) && fb(g.QYZ) == fb(w.QYZ)
		if !same {
			t.Fatalf("%s: node %d moments differ:\n got %+v\nwant %+v", label, i, g, w)
		}
	}
	if len(got.Sources) != len(want.Sources) {
		t.Fatalf("%s: %d sources, want %d", label, len(got.Sources), len(want.Sources))
	}
	for i := range want.Sources {
		g, w := got.Sources[i], want.Sources[i]
		if g.Index != w.Index || fb(g.X) != fb(w.X) || fb(g.Y) != fb(w.Y) || fb(g.Z) != fb(w.Z) || fb(g.M) != fb(w.M) {
			t.Fatalf("%s: source %d differs: %+v vs %+v", label, i, g, w)
		}
	}
	if len(got.ByKey) != len(want.ByKey) {
		t.Fatalf("%s: hash has %d entries, want %d", label, len(got.ByKey), len(want.ByKey))
	}
	for k, v := range want.ByKey {
		if gv, ok := got.ByKey[k]; !ok || gv != v {
			t.Fatalf("%s: hash[%x] = %d,%v, want %d", label, k, gv, ok, v)
		}
	}
	gw, gb, gq := got.walkIndex()
	ww, wb, wq := want.walkIndex()
	if len(gw) != len(ww) || len(gq) != len(wq) {
		t.Fatalf("%s: walk index sizes differ (%d/%d vs %d/%d)", label, len(gw), len(gq), len(ww), len(wq))
	}
	for i := range ww {
		g, w := gw[i], ww[i]
		if g.skip != w.skip || g.leaf != w.leaf || g.first != w.first || g.count != w.count ||
			fb(g.cx) != fb(w.cx) || fb(g.cy) != fb(w.cy) || fb(g.cz) != fb(w.cz) ||
			fb(g.m) != fb(w.m) || fb(g.size2) != fb(w.size2) {
			t.Fatalf("%s: walk node %d differs: %+v vs %+v", label, i, g, w)
		}
		if fb(gb[i].CX) != fb(wb[i].CX) || fb(gb[i].Half) != fb(wb[i].Half) {
			t.Fatalf("%s: walk box %d differs", label, i)
		}
	}
	for i := range wq {
		if fb(gq[i]) != fb(wq[i]) {
			t.Fatalf("%s: walk quad %d differs", label, i)
		}
	}
}

// TestTreeCacheMatchesBuild is the maintainer's core contract: over a
// sequence of drifting snapshots, Step's tree is bit-identical to a
// fresh Build at every step — structure, moments, hash and walk index —
// for monopole and quadrupole trees and across bucket sizes.
func TestTreeCacheMatchesBuild(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  BuildOptions
		dt   float64
	}{
		{"mono", BuildOptions{}, 0.05},
		{"quad", BuildOptions{Quadrupole: true}, 0.05},
		{"bucket4-large-dt", BuildOptions{Bucket: 4}, 0.5},
		{"workers8", BuildOptions{Workers: 8}, 0.05},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := nbody.NewPlummer(3000, 1, 42)
			c := NewTreeCache()
			for step := 0; step < 6; step++ {
				srcs := SourcesFromSystem(s)
				got, err := c.Step(srcs, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				want, err := Build(srcs, tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				requireSameTree(t, got, want, tc.name)
				if err := got.CheckInvariants(); err != nil {
					t.Fatalf("step %d: %v", step, err)
				}
				drift(s, tc.dt)
			}
			if c.Stats.Steps != 6 || c.Stats.FullBuilds != 1 {
				t.Fatalf("stats = %+v, want 6 steps with 1 full build", c.Stats)
			}
		})
	}
}

// TestTreeCacheRadixFallback teleports a third of the particles each
// step — far beyond the adaptive merge's mover bound — and checks the
// radix path still lands on Build's exact order.
func TestTreeCacheRadixFallback(t *testing.T) {
	s := nbody.NewPlummer(2000, 1, 7)
	c := NewTreeCache()
	rng := sim.NewRNG(99)
	for step := 0; step < 4; step++ {
		srcs := SourcesFromSystem(s)
		got, err := c.Step(srcs, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Build(srcs, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameTree(t, got, want, "radix")
		for i := 0; i < s.N(); i += 3 {
			s.X[i] = 4*rng.Float64() - 2
			s.Y[i] = 4*rng.Float64() - 2
			s.Z[i] = 4*rng.Float64() - 2
		}
	}
	if c.Stats.KeysMoved == 0 {
		t.Fatal("teleporting particles moved no keys")
	}
}

// TestTreeCacheCoincident pins the tie-break identity: coincident
// particles (equal keys) must sort by input index on both the fresh and
// the maintained path.
func TestTreeCacheCoincident(t *testing.T) {
	s := nbody.NewPlummer(600, 1, 3)
	// Park clumps of particles on shared positions.
	for i := 0; i < 100; i++ {
		j := (i * 7) % s.N()
		k := (i*13 + 1) % s.N()
		s.X[j], s.Y[j], s.Z[j] = s.X[k], s.Y[k], s.Z[k]
	}
	c := NewTreeCache()
	for step := 0; step < 3; step++ {
		srcs := SourcesFromSystem(s)
		got, err := c.Step(srcs, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := Build(srcs, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		requireSameTree(t, got, want, "coincident")
		drift(s, 0.05)
	}
}

// TestTreeCacheInvalidation: a source-count or structural-option change
// falls back to a full build; a worker-width change must NOT (the tree
// is width-invariant).
func TestTreeCacheInvalidation(t *testing.T) {
	s := nbody.NewPlummer(1500, 1, 11)
	c := NewTreeCache()
	step := func(s *nbody.System, opt BuildOptions) {
		t.Helper()
		if _, err := c.Step(SourcesFromSystem(s), opt); err != nil {
			t.Fatal(err)
		}
	}
	step(s, BuildOptions{})
	step(s, BuildOptions{})
	if c.Stats.FullBuilds != 1 {
		t.Fatalf("steady steps rebuilt: %+v", c.Stats)
	}
	step(s, BuildOptions{Workers: 4}) // width change: no invalidation
	if c.Stats.FullBuilds != 1 {
		t.Fatalf("worker change forced a full build: %+v", c.Stats)
	}
	step(s, BuildOptions{Bucket: 4}) // structural change
	if c.Stats.FullBuilds != 2 {
		t.Fatalf("bucket change did not rebuild: %+v", c.Stats)
	}
	step(nbody.NewPlummer(1000, 1, 11), BuildOptions{Bucket: 4}) // n change
	if c.Stats.FullBuilds != 3 {
		t.Fatalf("n change did not rebuild: %+v", c.Stats)
	}
	step(s, BuildOptions{Bucket: 4, Quadrupole: true}) // moment change
	if c.Stats.FullBuilds != 4 {
		t.Fatalf("quadrupole change did not rebuild: %+v", c.Stats)
	}
}

// TestTreeCacheCleanStep: with frozen positions the whole structure is
// clean — no subtree rebuilt, no key moved, hash untouched.
func TestTreeCacheCleanStep(t *testing.T) {
	s := nbody.NewPlummer(2000, 1, 5)
	c := NewTreeCache()
	if _, err := c.Step(SourcesFromSystem(s), BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Step(SourcesFromSystem(s), BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if c.Last.CleanSteps != 1 || c.Last.SubtreesRebuilt != 0 || c.Last.KeysMoved != 0 {
		t.Fatalf("frozen step not clean: %+v", c.Last)
	}
	if c.Last.NodesReused != uint64(len(c.Tree().Nodes)) {
		t.Fatalf("clean step reused %d of %d nodes", c.Last.NodesReused, len(c.Tree().Nodes))
	}
}

// TestTreeCacheStepZeroAlloc is the tentpole's steady-state pin: once
// the cache is warm (buffers sized, walk index live), a maintainer step
// over a *moving* system — keying, re-sort, patch, hash and walk-index
// maintenance — performs zero allocations.
func TestTreeCacheStepZeroAlloc(t *testing.T) {
	s := nbody.NewPlummer(4000, 1, 13)
	opt := BuildOptions{Quadrupole: true, Workers: 1}
	c := NewTreeCache()
	srcs := SourcesFromSystem(s)
	// Warm: adopt, force the walk index alive (as a force sweep would),
	// and run a few moving steps so every buffer reaches steady size.
	for i := 0; i < 5; i++ {
		tr, err := c.Step(AppendSources(srcs[:0], s), opt)
		if err != nil {
			t.Fatal(err)
		}
		tr.walkIndex()
		drift(s, 0.02)
	}
	allocs := testing.AllocsPerRun(100, func() {
		drift(s, 0.02)
		if _, err := c.Step(AppendSources(srcs[:0], s), opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("maintainer step allocates %.2f times per step, want 0", allocs)
	}
}

// TestForcerReuseLeapfrogBitIdentical: the integration contract — a
// multi-step Leapfrog with the maintainer on is bit-identical to the
// fresh-build baseline, at worker widths 1, 2 and 8 (CI runs this under
// -race).
func TestForcerReuseLeapfrogBitIdentical(t *testing.T) {
	run := func(mode ReuseMode, w int) *nbody.System {
		s := nbody.NewPlummer(2000, 1, 12)
		f := &Forcer{Theta: 0.7, Workers: w, Reuse: mode}
		if err := s.Leapfrog(f, 0.01, 8); err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := run(ReuseOff, 1)
	for _, w := range []int{1, 2, 8} {
		got := run(ReuseOn, w)
		for i := 0; i < ref.N(); i++ {
			if math.Float64bits(ref.X[i]) != math.Float64bits(got.X[i]) ||
				math.Float64bits(ref.VX[i]) != math.Float64bits(got.VX[i]) ||
				math.Float64bits(ref.AX[i]) != math.Float64bits(got.AX[i]) {
				t.Fatalf("reuse on, workers=%d: particle %d diverged from fresh-build baseline", w, i)
			}
		}
	}
}

// TestForcerReuseBlockStepBitIdentical: same contract over the block
// timestep integrator, whose masked ForcesActive calls hit the
// maintainer many times per base step.
func TestForcerReuseBlockStepBitIdentical(t *testing.T) {
	run := func(mode ReuseMode, w int) (*nbody.System, nbody.RungStats) {
		s := nbody.NewPlummer(2000, 1, 12)
		f := &Forcer{Theta: 0.7, Workers: w, Reuse: mode}
		var b nbody.BlockStepper
		if err := b.Run(s, f, nbody.BlockConfig{DT: 0.05, MaxRung: 4}, 3); err != nil {
			t.Fatal(err)
		}
		return s, b.Stats
	}
	ref, refStats := run(ReuseOff, 1)
	if refStats.MaxRungUsed == 0 {
		t.Fatal("hierarchy never engaged — the determinism check would be vacuous")
	}
	for _, w := range []int{1, 2, 8} {
		got, gotStats := run(ReuseOn, w)
		if gotStats != refStats {
			t.Fatalf("reuse on, workers=%d: rung stats %+v differ from %+v", w, gotStats, refStats)
		}
		for i := 0; i < ref.N(); i++ {
			if math.Float64bits(ref.X[i]) != math.Float64bits(got.X[i]) ||
				math.Float64bits(ref.VX[i]) != math.Float64bits(got.VX[i]) ||
				math.Float64bits(ref.AX[i]) != math.Float64bits(got.AX[i]) {
				t.Fatalf("reuse on, workers=%d: particle %d diverged", w, i)
			}
		}
	}
}

// TestParseReuseMode pins the flag grammar and the String round trip.
func TestParseReuseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ReuseMode
	}{
		{"", ReuseAuto}, {"auto", ReuseAuto}, {"on", ReuseOn}, {"off", ReuseOff},
	} {
		got, err := ParseReuseMode(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseReuseMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseReuseMode("bogus"); err == nil {
		t.Fatal("ParseReuseMode accepted bogus")
	}
	for _, m := range []ReuseMode{ReuseAuto, ReuseOn, ReuseOff} {
		back, err := ParseReuseMode(m.String())
		if err != nil || back != m {
			t.Fatalf("round trip %v → %q → %v, %v", m, m.String(), back, err)
		}
	}
	if !ReuseAuto.enabled() || !ReuseOn.enabled() || ReuseOff.enabled() {
		t.Fatal("enabled() wiring wrong")
	}
}
