package treecode

// Neighbors returns the indices (into the tree's key-sorted Sources
// slice) of all sources within radius of the point, found by pruning the
// octree with box–point distances. This is the neighbour-finding service
// the paper's §3.5.1 clients (smoothed particle hydrodynamics, the
// vortex particle method) obtain from the treecode library.
func (t *Tree) Neighbors(x, y, z, radius float64, out []int) []int {
	if len(t.Nodes) == 0 || radius < 0 {
		return out
	}
	r2 := radius * radius
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.Nodes[ni]
		if n.Count == 0 {
			return
		}
		if n.Box.MinDist2(x, y, z) > r2 {
			return
		}
		if n.Leaf {
			for i := n.First; i < n.First+n.Count; i++ {
				s := t.Sources[i]
				dx := s.X - x
				dy := s.Y - y
				dz := s.Z - z
				if dx*dx+dy*dy+dz*dz <= r2 {
					out = append(out, i)
				}
			}
			return
		}
		for _, ci := range n.Children {
			if ci >= 0 {
				walk(ci)
			}
		}
	}
	walk(0)
	return out
}
