package treecode

import "math"

// The group-walk engine amortizes one traversal over a whole leaf
// bucket: instead of walking the tree once per target particle, it
// walks once per *leaf* under a conservative group MAC and evaluates
// the resulting interaction list for every particle of the bucket.
// Every cell the group MAC accepts would be accepted by the
// per-particle MAC for every target in the leaf box, so the engine
// only ever *opens more* cells than the per-particle walk — its
// approximation error is bounded by the recursive walk's — but the
// accumulation order differs, so results are close (RMS-bounded), not
// bit-identical. It is therefore opt-in (Forcer.GroupWalk).

// Selection restricts a force computation to a subset of target
// particles — the block-timestep integrator's active rung. A nil
// *Selection means every real target. The prefix counts over the
// tree's key-sorted source order let traversals prune whole subtrees
// with no selected target in O(1).
type Selection struct {
	active []bool
	pfx    []int32
}

// Select builds a Selection over the tree's sources from a mask indexed
// by particle index (nil returns nil: all real targets selected).
func (t *Tree) Select(active []bool) *Selection {
	if active == nil {
		return nil
	}
	pfx := make([]int32, len(t.Sources)+1)
	for i := range t.Sources {
		pfx[i+1] = pfx[i]
		if s := &t.Sources[i]; s.Index >= 0 && active[s.Index] {
			pfx[i+1]++
		}
	}
	return &Selection{active: active, pfx: pfx}
}

// count returns the selected targets among sorted sources [lo, hi) —
// for a nil selection an upper bound (real-target filtering happens at
// evaluation), which is all pruning needs.
func (sel *Selection) count(lo, hi int32) int32 {
	if sel == nil {
		return hi - lo
	}
	return sel.pfx[hi] - sel.pfx[lo]
}

// selected reports whether source s is an evaluated target.
func (sel *Selection) selected(s *Source) bool {
	if s.Index < 0 {
		return false
	}
	return sel == nil || sel.active[s.Index]
}

// appendGroupInteractions traverses once for leaf li, appending
// group-accepted cells and opened leaf sources (with their particle
// indices, for per-target self-exclusion at evaluation). It scans the
// same rope-threaded walk index as the per-particle traversal, with
// the group MAC in place of the point MAC: the per-particle criterion
// evaluated at the worst-case (closest) point of the *tight bounding
// box of the leaf's real targets* (tighter than the leaf's octree box,
// which is mostly empty space), plus box disjointness in place of the
// per-point containment guard. Both tests quantify over every actual
// target, so acceptance stays conservative: a group-accepted cell
// passes the per-particle MAC for each target individually. The
// size2 = +Inf encoding rejects single-particle cells here exactly as
// it does in the point walk, and dmin2 > 3·size2 (target box farther
// from the node's centre of mass than the node's diagonal) proves the
// boxes disjoint without touching the cold box array.
func (t *Tree) appendGroupInteractions(ar *WalkArena, li int32, theta float64, sel *Selection) {
	wn, wb, wq := t.walkIndex()
	th2 := theta * theta
	quad := t.Quadrupole
	srcs := t.Sources
	cx, cy, cz, cm := ar.cx[:0], ar.cy[:0], ar.cz[:0], ar.cm[:0]
	qxx, qyy, qzz := ar.qxx[:0], ar.qyy[:0], ar.qzz[:0]
	qxy, qxz, qyz := ar.qxy[:0], ar.qxz[:0], ar.qyz[:0]
	px, py, pz, pm := ar.px[:0], ar.py[:0], ar.pz[:0], ar.pm[:0]
	pidx := ar.pidx[:0]
	// Tight AABB over the leaf's selected real targets (pseudo-particle
	// and unselected sources are never evaluated, so they don't
	// constrain the group MAC).
	n0 := &t.Nodes[li]
	var tx, ty, tz, hx, hy, hz float64
	none := true
	for j := n0.First; j < n0.First+n0.Count; j++ {
		s := &srcs[j]
		if !sel.selected(s) {
			continue
		}
		if none {
			tx, ty, tz = s.X, s.Y, s.Z
			hx, hy, hz = s.X, s.Y, s.Z
			none = false
			continue
		}
		tx, hx = min(tx, s.X), max(hx, s.X)
		ty, hy = min(ty, s.Y), max(hy, s.Y)
		tz, hz = min(tz, s.Z), max(hz, s.Z)
	}
	if none {
		// No real targets in this bucket: nothing will be evaluated, so
		// skip the traversal outright.
		ar.cx, ar.cy, ar.cz, ar.cm = cx, cy, cz, cm
		ar.px, ar.py, ar.pz, ar.pm = px, py, pz, pm
		ar.pidx = pidx
		ar.segs = ar.segs[:0]
		return
	}
	tx, hx = (tx+hx)/2, (hx-tx)/2
	ty, hy = (ty+hy)/2, (hy-ty)/2
	tz, hz = (tz+hz)/2, (hz-tz)/2
	for i := 0; i < len(wn); {
		n := &wn[i]
		dx := math.Max(0, math.Abs(n.cx-tx)-hx)
		dy := math.Max(0, math.Abs(n.cy-ty)-hy)
		dz := math.Max(0, math.Abs(n.cz-tz)-hz)
		dmin2 := dx*dx + dy*dy + dz*dz
		if n.size2 < th2*dmin2 && (dmin2 > 3*n.size2 ||
			boxDisjointAABB(wb[i], tx, ty, tz, hx, hy, hz)) {
			cx = append(cx, n.cx)
			cy = append(cy, n.cy)
			cz = append(cz, n.cz)
			cm = append(cm, n.m)
			if quad {
				q := wq[6*i : 6*i+6]
				qxx = append(qxx, q[0])
				qyy = append(qyy, q[1])
				qzz = append(qzz, q[2])
				qxy = append(qxy, q[3])
				qxz = append(qxz, q[4])
				qyz = append(qyz, q[5])
			}
			i = int(n.skip)
			continue
		}
		if n.leaf {
			for j := n.first; j < n.first+n.count; j++ {
				s := &srcs[j]
				px = append(px, s.X)
				py = append(py, s.Y)
				pz = append(pz, s.Z)
				pm = append(pm, s.M)
				pidx = append(pidx, int32(s.Index))
			}
			i = int(n.skip)
			continue
		}
		i++
	}
	ar.cx, ar.cy, ar.cz, ar.cm = cx, cy, cz, cm
	ar.qxx, ar.qyy, ar.qzz = qxx, qyy, qzz
	ar.qxy, ar.qxz, ar.qyz = qxy, qxz, qyz
	ar.px, ar.py, ar.pz, ar.pm = px, py, pz, pm
	ar.pidx = pidx
	ar.segs = ar.segs[:0]
	ar.pendWalks++
	ar.pendCells += uint64(len(cm))
	ar.pendParts += uint64(len(pm))
}

// boxDisjointAABB reports whether cube b and the axis-aligned box
// (centre tx/ty/tz, half-extents hx/hy/hz) are separated on some axis —
// strictly positive distance, the group analog of the point walk's
// !Contains guard.
func boxDisjointAABB(b Box, tx, ty, tz, hx, hy, hz float64) bool {
	return math.Abs(b.CX-tx) > b.Half+hx ||
		math.Abs(b.CY-ty) > b.Half+hy ||
		math.Abs(b.CZ-tz) > b.Half+hz
}

// GroupForceLeaf computes softened accelerations for every real target
// particle of leaf li with one shared traversal. Results land in the
// arena's target buffers: NumTargets/Target expose (particle index,
// ax, ay, az) pairs; pseudo-particle sources (Index < 0) are never
// targets. The shared list is evaluated in two flat blocks per target
// — all cells, then all leaf sources — since group mode is bounded in
// RMS, not bit-identical, and the blocked kernels are what make the
// amortized walk pay. Stats count per-target interactions exactly as
// the per-particle walk would (self-matches are excluded from PP).
func (t *Tree) GroupForceLeaf(li int32, theta, eps float64, ar *WalkArena, st *Stats) {
	t.groupForceLeaf(li, theta, eps, nil, ar, st)
}

// groupForceLeaf is GroupForceLeaf restricted to a selection of
// targets (nil = every real target).
func (t *Tree) groupForceLeaf(li int32, theta, eps float64, sel *Selection, ar *WalkArena, st *Stats) {
	t.appendGroupInteractions(ar, li, theta, sel)
	ar.tIdx = ar.tIdx[:0]
	ar.tax, ar.tay, ar.taz = ar.tax[:0], ar.tay[:0], ar.taz[:0]
	n := &t.Nodes[li]
	t.evalTargets(int32(n.First), int32(n.Count), eps, sel, ar, st)
}

// evalTargets evaluates the arena's current shared interaction list —
// all cells, then all leaf sources with per-target self-exclusion —
// for every selected real target in the key-sorted source range
// [first, first+count), appending (index, acceleration) rows to the
// arena's target buffers. It is the single evaluation path behind the
// group and dual engines, and the one place their softening handling
// lives. Stats count per-target interactions exactly as the
// per-particle walk would (self-matches are excluded from PP).
func (t *Tree) evalTargets(first, count int32, eps float64, sel *Selection, ar *WalkArena, st *Stats) {
	eps2 := softening2(eps)
	cells := len(ar.cm)
	parts := len(ar.pm)
	quad := t.Quadrupole
	targets := 0
	for i := first; i < first+count; i++ {
		s := &t.Sources[i]
		if !sel.selected(s) {
			continue
		}
		var ax, ay, az float64
		if quad {
			ax, ay, az = ar.evalCellsQuad(s.X, s.Y, s.Z, eps2, 0, cells, ax, ay, az)
		} else {
			ax, ay, az = ar.evalCellsMono(s.X, s.Y, s.Z, eps2, 0, cells, ax, ay, az)
		}
		var skipped int
		ax, ay, az, skipped = ar.evalPartsExcept(s.X, s.Y, s.Z, eps2, int32(s.Index), 0, parts, ax, ay, az)
		st.PC += uint64(cells)
		st.PP += uint64(parts - skipped)
		ar.tIdx = append(ar.tIdx, int32(s.Index))
		ar.tax = append(ar.tax, ax)
		ar.tay = append(ar.tay, ay)
		ar.taz = append(ar.taz, az)
		targets++
	}
	if targets > 1 {
		// One traversal served `targets` particles: targets−1 walks saved.
		ar.pendSaved += uint64(targets - 1)
	}
}

// NumTargets reports how many targets the last GroupForceLeaf filled.
func (ar *WalkArena) NumTargets() int { return len(ar.tIdx) }

// Target returns the k-th target's particle index and acceleration.
func (ar *WalkArena) Target(k int) (idx int, ax, ay, az float64) {
	return int(ar.tIdx[k]), ar.tax[k], ar.tay[k], ar.taz[k]
}

// AppendLeaves appends the node indices of every leaf in DFS preorder
// (the node array's natural order) — the finest-grained group-engine
// work list.
func (t *Tree) AppendLeaves(out []int32) []int32 {
	for i := range t.Nodes {
		if t.Nodes[i].Leaf {
			out = append(out, int32(i))
		}
	}
	return out
}

// DefaultGroupSize is the target-group granularity of the group
// engine's production work list: one traversal is amortized over up to
// this many particles. Decoupled from the tree's leaf bucket — group
// walks want coarser groups than the force-accuracy-driven bucket
// size, and a group is any maximal subtree small enough, not just one
// leaf. Coarser groups only *improve* accuracy (the conservative MAC
// opens more), at the cost of longer per-target lists; 64 is the
// throughput sweet spot measured on the default bucket-8 tree.
const DefaultGroupSize = 64

// AppendGroups appends, in DFS preorder, the node indices of the
// maximal subtrees holding at most maxParts particles — a disjoint
// cover of all sources. Each returned node is a valid GroupForceLeaf
// target: its particles are the contiguous source range
// [First, First+Count). maxParts below the leaf bucket degenerates to
// AppendLeaves.
func (t *Tree) AppendGroups(out []int32, maxParts int) []int32 {
	var emit func(ni int32)
	emit = func(ni int32) {
		n := &t.Nodes[ni]
		if n.Leaf || n.Count <= maxParts {
			out = append(out, ni)
			return
		}
		for oct := 0; oct < 8; oct++ {
			if ci := n.Children[oct]; ci >= 0 {
				emit(ci)
			}
		}
	}
	if len(t.Nodes) > 0 {
		emit(0)
	}
	return out
}
