package treecode

// This file is the incremental tree maintainer: a persistent TreeCache
// that keeps the Morton keys, the sorted permutation and the node arena
// alive across timesteps, so a multi-step integration pays for tree
// *maintenance* instead of tree *construction*. Production treecodes on
// real Beowulfs amortize exactly this cost (Dubinski's GOTPM and the
// Warren–Salmon production codes); the paper's throughput argument is
// about sustained Mflops on fixed hardware, and rebuilding an identical
// tree from scratch every leapfrog tick is the largest redundant slice
// of the host hot path.
//
// The contract is the repo's determinism culture, applied to a cache:
// after Step the tree is bit-identical — nodes, moments, hash, walk
// index, source order — to a fresh Build over the same positions, at
// every worker width. Three properties make that hold:
//
//  1. Build's sort is the (key, input-index) total order, so *any*
//     correct re-sort reproduces it exactly; the maintainer's adaptive
//     merge and its LSD-radix fallback both do.
//  2. The patch recursion emits nodes in Build's exact DFS preorder and
//     computes moments with the builder's own methods, so every float
//     accumulates in the same order with the same expression shapes.
//  3. The root box is recomputed with the same fold (sourceBounds), so
//     keys and node geometry derive from bit-identical inputs.
//
// The steady state allocates nothing: keys, permutations, scratch, the
// double-buffered node arena, the hash (clear + reinsert) and the walk
// arrays (refresh in place, or rebuild into retained capacity) all
// reuse storage from previous steps.

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/par"
)

// ReuseMode selects whether a Forcer keeps a tree maintainer alive
// across Forces calls (the -tree-reuse flag).
type ReuseMode int

const (
	// ReuseAuto is the default: maintain the tree. A one-shot call
	// still pays exactly one fresh build, so there is nothing to turn
	// off — the mode exists so benchmarks and bisection can pin the
	// pre-maintainer behaviour.
	ReuseAuto ReuseMode = iota
	// ReuseOn maintains the tree unconditionally (explicit spelling of
	// what auto resolves to).
	ReuseOn
	// ReuseOff builds a fresh tree every call — the pre-PR10 behaviour
	// and the benchmark baseline.
	ReuseOff
)

// enabled reports whether the mode keeps a maintainer alive.
func (m ReuseMode) enabled() bool { return m != ReuseOff }

// String returns the flag spelling of the mode.
func (m ReuseMode) String() string {
	switch m {
	case ReuseAuto:
		return "auto"
	case ReuseOn:
		return "on"
	case ReuseOff:
		return "off"
	}
	return fmt.Sprintf("reuse(%d)", int(m))
}

// ParseReuseMode parses a -tree-reuse flag value.
func ParseReuseMode(s string) (ReuseMode, error) {
	switch s {
	case "", "auto":
		return ReuseAuto, nil
	case "on":
		return ReuseOn, nil
	case "off":
		return ReuseOff, nil
	}
	return 0, fmt.Errorf("treecode: unknown tree-reuse mode %q (want auto, on or off)", s)
}

// ReuseStats counts the maintainer's work. TreeCache.Stats accumulates
// across the cache's lifetime; TreeCache.Last holds the most recent
// step's deltas.
type ReuseStats struct {
	Steps           uint64 // Step calls
	FullBuilds      uint64 // steps that fell back to a full build (adoption, n/options change)
	CleanSteps      uint64 // steps whose whole structure was reused (only moments moved)
	NodesReused     uint64 // nodes whose subtree structure survived from the previous step
	SubtreesRebuilt uint64 // dirty subtrees rebuilt from their key runs
	KeysMoved       uint64 // permutation slots that changed in the re-sort
}

func (s *ReuseStats) add(d ReuseStats) {
	s.Steps += d.Steps
	s.FullBuilds += d.FullBuilds
	s.CleanSteps += d.CleanSteps
	s.NodesReused += d.NodesReused
	s.SubtreesRebuilt += d.SubtreesRebuilt
	s.KeysMoved += d.KeysMoved
}

// Reuse telemetry, on the package registry next to the list-engine
// counters (gathered by ListTelemetry, flushed once per Step).
var (
	reuseSteps      = listReg.Counter("treecode.reuse.steps", "", "maintainer steps taken")
	reuseFullBuilds = listReg.Counter("treecode.reuse.full_builds", "", "maintainer steps that fell back to a full build")
	reuseCleanSteps = listReg.Counter("treecode.reuse.clean_steps", "", "maintainer steps with the whole structure reused")
	reuseNodesKept  = listReg.Counter("treecode.reuse.nodes_reused", "", "nodes whose structure was reused across a step")
	reuseRebuilt    = listReg.Counter("treecode.reuse.subtrees_rebuilt", "", "dirty subtrees rebuilt by the maintainer")
	reuseKeysMoved  = listReg.Counter("treecode.reuse.keys_moved", "", "permutation slots moved by the maintainer's re-sort")
)

// TreeCache is a persistent tree maintainer. Call Step once per
// timestep with the current sources (input order defines the tie-break
// identity, so callers pass the same particle order every step — the
// Forcer's AppendSources does); the returned tree is bit-identical to
// Build(srcs, opt) and valid until the next Step. A TreeCache is not
// safe for concurrent use.
type TreeCache struct {
	Stats ReuseStats // lifetime totals
	Last  ReuseStats // most recent step's deltas

	opt  BuildOptions // normalized options of the maintained tree
	pool par.Pool
	tree *Tree

	keys       []Key  // Morton keys by input index
	perm       []int  // input indices in (key, index) order
	permOld    []int  // previous step's perm, for the moved count
	scratch    []int  // backbone / radix double buffer
	movers     []int  // out-of-order indices of the adaptive re-sort
	sortedKeys []Key  // keys[perm[i]] — what the builder searches
	spare      []Node // node arena double buffer (swaps with tree.Nodes)
}

// NewTreeCache returns an empty maintainer; the first Step adopts a
// full build.
func NewTreeCache() *TreeCache { return &TreeCache{} }

// Tree returns the maintained tree (nil before the first Step).
func (c *TreeCache) Tree() *Tree { return c.tree }

// normalizeBuildOptions applies Build's defaulting so the cache can
// compare option identities.
func normalizeBuildOptions(opt BuildOptions) BuildOptions {
	if opt.Bucket <= 0 {
		opt.Bucket = 8
	}
	if opt.MaxDepth <= 0 || opt.MaxDepth >= KeyBits {
		opt.MaxDepth = KeyBits - 1
	}
	return opt
}

// sameShape reports whether the maintained tree can be patched rather
// than rebuilt: same source count and same structural options. Workers
// is deliberately excluded — the tree is bit-identical at every width,
// so a width change never invalidates the cache.
func (c *TreeCache) sameShape(n int, opt BuildOptions) bool {
	return c.tree != nil && len(c.perm) == n &&
		c.opt.Bucket == opt.Bucket && c.opt.MaxDepth == opt.MaxDepth &&
		c.opt.Quadrupole == opt.Quadrupole
}

// Step refreshes the maintained tree over the current source positions
// and returns it. The result is bit-identical to Build(srcs, opt); the
// steady state (unchanged n and options) allocates nothing.
func (c *TreeCache) Step(srcs []Source, opt BuildOptions) (*Tree, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("treecode: no sources")
	}
	opt = normalizeBuildOptions(opt)
	w := opt.Workers
	if w < 0 {
		w = 0
	}
	c.pool = par.Pool{W: w}
	if !c.sameShape(len(srcs), opt) {
		t, err := c.fullBuild(srcs, opt)
		if err != nil {
			return nil, err
		}
		c.Last = ReuseStats{Steps: 1, FullBuilds: 1}
		c.flush()
		return t, nil
	}
	c.opt.Workers = opt.Workers

	t := c.tree
	root, err := sourceBounds(srcs)
	if err != nil {
		return nil, err
	}
	t.Root = root

	// (a) Recompute keys in place and re-sort with the bounded adaptive
	// merge. The root box moves every step (the extremal particles
	// drift), so every key changes — what survives is the *order*, which
	// is nearly stable because particles barely move between ticks.
	keys := c.keys
	if c.pool.Width() == 1 {
		// Inline at width 1: the pool closure would heap-escape (it is
		// passed toward goroutine spawns even when none run), and the
		// serial path is the one the zero-alloc pin covers.
		for i := range srcs {
			keys[i] = MortonKey(srcs[i].X, srcs[i].Y, srcs[i].Z, root)
		}
	} else {
		c.pool.For(len(srcs), keyGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				keys[i] = MortonKey(srcs[i].X, srcs[i].Y, srcs[i].Z, root)
			}
		})
	}
	copy(c.permOld, c.perm)
	c.resortPerm()
	moved := 0
	for i, j := range c.perm {
		if j != c.permOld[i] {
			moved++
		}
		t.Sources[i] = srcs[j]
		c.sortedKeys[i] = keys[j]
	}

	// (b) Patch: re-derive the structure against the old node array,
	// reusing clean subtrees' shape and rebuilding dirty ones, while
	// (c) refreshing every moment in place via the builder's own moment
	// methods. The patch emits into the spare arena (double buffer).
	p := patcher{
		b: builder{
			sources:  t.Sources,
			keys:     c.sortedKeys,
			bucket:   c.opt.Bucket,
			maxDepth: c.opt.MaxDepth,
			quad:     c.opt.Quadrupole,
			nodes:    c.spare[:0],
		},
		old: t.Nodes,
	}
	_, clean := p.patch(0, RootKey, root, 0, len(srcs), 0)
	c.spare = t.Nodes[:0]
	t.Nodes = p.b.nodes

	if !clean {
		// The node set changed: rebuild the hash into its retained
		// storage (clear + reinsert of a same-scale key set does not
		// grow the map, so this allocates only when the tree itself
		// grows past its high-water mark).
		clear(t.ByKey)
		for i := range t.Nodes {
			t.ByKey[t.Nodes[i].Key] = int32(i)
		}
	}
	// A clean patch reproduces the previous step's node indices exactly
	// (same preorder shape), so the hash is still valid untouched.

	if t.walk != nil {
		// The lazily built walk index has already fired its sync.Once;
		// refresh it explicitly. A clean structure refreshes in place
		// (same preorder, same ropes); otherwise rebuild into the
		// retained arrays.
		if !clean || !refreshWalkIndex(t) {
			buildWalkIndex(t)
		}
	}

	c.Last = ReuseStats{
		Steps:           1,
		NodesReused:     p.reused,
		SubtreesRebuilt: p.rebuilt,
		KeysMoved:       uint64(moved),
	}
	if clean {
		c.Last.CleanSteps = 1
	}
	c.flush()
	return t, nil
}

// flush folds Last into the lifetime totals and the obs counters.
func (c *TreeCache) flush() {
	c.Stats.add(c.Last)
	reuseSteps.Add(c.Last.Steps)
	reuseFullBuilds.Add(c.Last.FullBuilds)
	reuseCleanSteps.Add(c.Last.CleanSteps)
	reuseNodesKept.Add(c.Last.NodesReused)
	reuseRebuilt.Add(c.Last.SubtreesRebuilt)
	reuseKeysMoved.Add(c.Last.KeysMoved)
}

// fullBuild constructs the tree from scratch into cache-owned buffers —
// Build's exact pipeline (same bounds fold, same keying, same total
// order, same builder, including the parallel spine at width > 1) with
// the intermediate state retained for future Steps.
func (c *TreeCache) fullBuild(srcs []Source, opt BuildOptions) (*Tree, error) {
	root, err := sourceBounds(srcs)
	if err != nil {
		return nil, err
	}
	n := len(srcs)
	c.keys = growKeys(c.keys, n)
	c.perm = growInts(c.perm, n)
	c.permOld = growInts(c.permOld, n)
	c.scratch = growInts(c.scratch, n)
	c.sortedKeys = growKeys(c.sortedKeys, n)
	if cap(c.movers) < maxMovers(n)+1 {
		c.movers = make([]int, 0, maxMovers(n)+1)
	}

	keys, perm := c.keys, c.perm
	c.pool.For(n, keyGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i] = MortonKey(srcs[i].X, srcs[i].Y, srcs[i].Z, root)
			perm[i] = i
		}
	})
	sort.Slice(perm, func(a, b int) bool {
		ka, kb := keys[perm[a]], keys[perm[b]]
		if ka != kb {
			return ka < kb
		}
		return perm[a] < perm[b]
	})

	t := &Tree{
		Root:       root,
		ByKey:      map[Key]int32{},
		Sources:    make([]Source, n),
		Bucket:     opt.Bucket,
		Quadrupole: opt.Quadrupole,
		MaxDepth:   opt.MaxDepth,
	}
	for i, j := range perm {
		t.Sources[i] = srcs[j]
		c.sortedKeys[i] = keys[j]
	}
	b := &builder{
		sources:  t.Sources,
		keys:     c.sortedKeys,
		bucket:   opt.Bucket,
		maxDepth: opt.MaxDepth,
		quad:     opt.Quadrupole,
	}
	if n >= parallelBuild && c.pool.Width() != 1 {
		b.buildParallel(RootKey, root, &c.pool)
	} else {
		b.build(RootKey, root, 0, n, 0)
	}
	t.Nodes = b.nodes
	for i := range t.Nodes {
		t.ByKey[t.Nodes[i].Key] = int32(i)
	}

	// Seed the double buffer with headroom so early growth steps don't
	// show up as steady-state allocations.
	if cap(c.spare) < 2*len(t.Nodes) {
		c.spare = make([]Node, 0, 2*len(t.Nodes))
	}
	c.tree = t
	c.opt = opt
	return t, nil
}

// maxMovers bounds the adaptive merge: beyond this many out-of-order
// elements the LSD radix fallback wins.
func maxMovers(n int) int {
	m := n / 32
	if m < 64 {
		m = 64
	}
	return m
}

// keyLess is the (key, input-index) total order of Build's sort.
func keyLess(keys []Key, a, b int) bool {
	if keys[a] != keys[b] {
		return keys[a] < keys[b]
	}
	return a < b
}

// resortPerm re-sorts c.perm under the new keys, exploiting the mostly
// sorted order: an O(n) sorted check, then a greedy backbone scan that
// extracts the out-of-order "movers"; few movers are insertion-sorted
// and merged back in one pass, many movers fall back to an LSD radix
// sort. Every path lands in the same (key, index) total order.
func (c *TreeCache) resortPerm() {
	keys, perm := c.keys, c.perm
	n := len(perm)
	sorted := true
	for i := 1; i < n; i++ {
		if keyLess(keys, perm[i], perm[i-1]) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}

	// Greedy backbone: keep elements that extend the sorted prefix,
	// divert the rest to movers. The backbone is sorted by
	// construction; merging it with the sorted movers yields the total
	// order no matter how the split fell out.
	limit := maxMovers(n)
	backbone := c.scratch[:0]
	movers := c.movers[:0]
	last := perm[0]
	backbone = append(backbone, last)
	radix := false
	for i := 1; i < n; i++ {
		j := perm[i]
		if keyLess(keys, j, last) {
			if len(movers) == limit {
				radix = true
				break
			}
			movers = append(movers, j)
		} else {
			backbone = append(backbone, j)
			last = j
		}
	}
	c.movers = movers
	if radix {
		c.radixSortPerm()
		return
	}

	// Insertion sort the movers (bounded by maxMovers, and typically a
	// handful), then merge. Backbone and movers are disjoint index
	// sets, so keyLess never compares an element with itself and the
	// order is strict.
	for i := 1; i < len(movers); i++ {
		v := movers[i]
		k := i - 1
		for k >= 0 && keyLess(keys, v, movers[k]) {
			movers[k+1] = movers[k]
			k--
		}
		movers[k+1] = v
	}
	bi, mi := 0, 0
	for o := 0; o < n; o++ {
		if mi >= len(movers) || (bi < len(backbone) && keyLess(keys, backbone[bi], movers[mi])) {
			perm[o] = backbone[bi]
			bi++
		} else {
			perm[o] = movers[mi]
			mi++
		}
	}
}

// radixSortPerm sorts c.perm by (key, index) with an LSD byte radix:
// starting from the identity permutation, each stable pass preserves
// index order among equal bytes, so the final order is exactly Build's
// tie-broken sort. Single-byte passes (the sentinel byte, unused depth
// bytes) are skipped.
func (c *TreeCache) radixSortPerm() {
	keys := c.keys
	n := len(c.perm)
	src := c.perm
	for i := range src {
		src[i] = i
	}
	dst := c.scratch[:n]
	for pass := 0; pass < 8; pass++ {
		shift := uint(pass * 8)
		var count [256]int
		for _, j := range src {
			count[(keys[j]>>shift)&0xff]++
		}
		if count[(keys[src[0]]>>shift)&0xff] == n {
			continue
		}
		sum := 0
		for b := 0; b < 256; b++ {
			cnt := count[b]
			count[b] = sum
			sum += cnt
		}
		for _, j := range src {
			b := (keys[j] >> shift) & 0xff
			dst[count[b]] = j
			count[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &c.perm[0] {
		copy(c.perm, src)
	}
}

// patcher re-derives the tree structure against the previous step's
// node array. It shares the builder so rebuilt subtrees and refreshed
// moments go through Build's exact code paths.
type patcher struct {
	b       builder
	old     []Node
	reused  uint64
	rebuilt uint64
}

// patch emits the node covering sources [lo,hi) in DFS preorder,
// reusing the shape of the old subtree rooted at oldNi where the key
// runs still agree, and returns the new node index plus a clean flag:
// clean means the subtree's emitted shape (node count and topology) is
// identical to the old subtree's, so its node indices — and therefore
// the hash entries and walk ropes over it — are unchanged.
func (p *patcher) patch(oldNi int32, key Key, box Box, lo, hi, level int) (int32, bool) {
	isLeaf := hi-lo <= p.b.bucket || level >= p.b.maxDepth
	if oldNi < 0 || p.old[oldNi].Leaf != isLeaf {
		// Dirty octant: the leaf/internal decision flipped (or the old
		// tree had nothing here) — rebuild the subtree from its key run
		// with the builder's own recursion.
		p.rebuilt++
		return p.b.build(key, box, lo, hi, level), false
	}

	ni := int32(len(p.b.nodes))
	p.b.nodes = append(p.b.nodes, Node{Key: key, Box: box, First: lo, Count: hi - lo})
	for i := range p.b.nodes[ni].Children {
		p.b.nodes[ni].Children[i] = -1
	}
	p.reused++
	if isLeaf {
		p.b.nodes[ni].Leaf = true
		p.b.computeLeafMoments(ni)
		return ni, true
	}

	bounds := p.octantsGuess(oldNi, lo, hi, level)
	clean := true
	for oct := 0; oct < 8; oct++ {
		oldChild := p.old[oldNi].Children[oct]
		if bounds[oct+1] > bounds[oct] {
			ci, cClean := p.patch(oldChild, key.Child(oct), box.Octant(oct), bounds[oct], bounds[oct+1], level+1)
			p.b.nodes[ni].Children[oct] = ci
			clean = clean && cClean
		} else if oldChild >= 0 {
			clean = false
		}
	}
	p.b.computeInternalMoments(ni)
	return ni, clean
}

// octantsGuess partitions the key run [lo,hi) into octant runs like
// builder.octants, but verifies the previous step's child counts as
// O(1) boundary guesses first — in the common case (few movers) every
// boundary verifies and the partition costs sixteen key probes instead
// of eight binary searches.
func (p *patcher) octantsGuess(oldNi int32, lo, hi, level int) (bounds [9]int) {
	old := &p.old[oldNi]
	keys := p.b.keys
	shift := uint(3 * (KeyBits - 1 - level))
	bounds[0] = lo
	start := lo
	for oct := 0; oct < 8; oct++ {
		g := start
		if ci := old.Children[oct]; ci >= 0 {
			g += p.old[ci].Count
		}
		end := -1
		if g >= start && g <= hi &&
			(g == start || int((keys[g-1]>>shift)&7) <= oct) &&
			(g == hi || int((keys[g]>>shift)&7) > oct) {
			end = g
		} else {
			// Guess failed (keys crossed this boundary): binary search
			// the true boundary.
			blo, bn := 0, hi-start
			for blo < bn {
				mid := int(uint(blo+bn) >> 1)
				if int((keys[start+mid]>>shift)&7) > oct {
					bn = mid
				} else {
					blo = mid + 1
				}
			}
			end = start + blo
		}
		bounds[oct+1] = end
		start = end
	}
	return bounds
}

// refreshWalkIndex updates the walk index in place after a clean patch:
// same preorder, same ropes, so only the per-node payload (moments,
// geometry, leaf runs) needs rewriting. Returns false — caller falls
// back to a full rebuild — when the previous index elided an empty
// (M == 0) subtree or an empty node appeared, since then walk position
// and node index no longer coincide.
func refreshWalkIndex(t *Tree) bool {
	if len(t.walk) != len(t.Nodes) {
		return false
	}
	if t.Quadrupole && len(t.walkQ) != 6*len(t.Nodes) {
		return false
	}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.M == 0 {
			return false
		}
		size := 2 * n.Box.Half
		size2 := size * size
		if n.Leaf && n.Count <= 1 {
			size2 = math.Inf(1)
		}
		w := &t.walk[i]
		w.cx, w.cy, w.cz, w.m = n.CX, n.CY, n.CZ, n.M
		w.size2 = size2
		w.first, w.count = int32(n.First), int32(n.Count)
		t.walkB[i] = n.Box
		if t.Quadrupole {
			q := t.walkQ[6*i : 6*i+6]
			q[0], q[1], q[2] = n.QXX, n.QYY, n.QZZ
			q[3], q[4], q[5] = n.QXY, n.QXZ, n.QYZ
		}
	}
	return true
}

func growKeys(s []Key, n int) []Key {
	if cap(s) < n {
		return make([]Key, n)
	}
	return s[:n]
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}
