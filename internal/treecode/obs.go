package treecode

import "repro/internal/obs"

// This file re-homes treecode telemetry onto the unified obs layer:
// Stats, Tree, Forcer and ParallelResult implement obs.Source. The old
// field-poking paths (Forcer.LastStats, ParallelResult fields) remain
// as views over the same numbers.

var statsMetrics = []obs.Metric{
	{Name: "treecode.pp", Kind: obs.KindCounter, Help: "particle–particle interactions"},
	{Name: "treecode.pc", Kind: obs.KindCounter, Help: "particle–cell interactions"},
	{Name: "treecode.interactions", Kind: obs.KindCounter, Help: "total interactions"},
	{Name: "treecode.flops", Kind: obs.KindCounter, Unit: "flops", Help: "nominal flops, treecode-paper convention"},
}

// Describe implements obs.Source.
func (st Stats) Describe() []obs.Metric { return statsMetrics }

// Collect implements obs.Source with delta semantics: gathering the
// stats of several force computations accumulates.
func (st Stats) Collect(s *obs.Snapshot) {
	s.AddCounter("treecode.pp", "", "particle–particle interactions", st.PP)
	s.AddCounter("treecode.pc", "", "particle–cell interactions", st.PC)
	s.AddCounter("treecode.interactions", "", "total interactions", st.Interactions())
	s.AddCounter("treecode.flops", "flops", "nominal flops, treecode-paper convention", st.Flops())
}

var treeMetrics = []obs.Metric{
	{Name: "treecode.tree.nodes", Kind: obs.KindGauge, Help: "cells in the tree"},
	{Name: "treecode.tree.leaves", Kind: obs.KindGauge, Help: "leaf cells"},
	{Name: "treecode.tree.sources", Kind: obs.KindGauge, Help: "sources the tree covers"},
	{Name: "treecode.tree.bucket", Kind: obs.KindGauge, Help: "leaf bucket size"},
}

// Describe implements obs.Source.
func (t *Tree) Describe() []obs.Metric { return treeMetrics }

// Collect implements obs.Source with gauge (structure snapshot)
// semantics.
func (t *Tree) Collect(s *obs.Snapshot) {
	leaves := 0
	for i := range t.Nodes {
		if t.Nodes[i].Leaf {
			leaves++
		}
	}
	s.SetGauge("treecode.tree.nodes", "", "cells in the tree", float64(len(t.Nodes)))
	s.SetGauge("treecode.tree.leaves", "", "leaf cells", float64(leaves))
	s.SetGauge("treecode.tree.sources", "", "sources the tree covers", float64(len(t.Sources)))
	s.SetGauge("treecode.tree.bucket", "", "leaf bucket size", float64(t.Bucket))
}

// Describe implements obs.Source.
func (f *Forcer) Describe() []obs.Metric { return statsMetrics }

// Collect implements obs.Source: the forcer exports its cumulative
// totals (overwrite semantics — it is the live accumulator, so
// gathering twice does not double-count).
func (f *Forcer) Collect(s *obs.Snapshot) {
	s.SetCounter("treecode.pp", "", "particle–particle interactions", f.Total.PP)
	s.SetCounter("treecode.pc", "", "particle–cell interactions", f.Total.PC)
	s.SetCounter("treecode.interactions", "", "total interactions", f.Total.Interactions())
	s.SetCounter("treecode.flops", "flops", "nominal flops, treecode-paper convention", f.Total.Flops())
}

var parallelMetrics = append(append([]obs.Metric(nil), statsMetrics...),
	obs.Metric{Name: "treecode.par.imported_sources", Kind: obs.KindCounter, Help: "pseudo/real sources imported across ranks"},
	obs.Metric{Name: "treecode.par.sim_time", Kind: obs.KindGauge, Unit: "s", Help: "distributed force makespan (max over gathered runs)"},
)

// Describe implements obs.Source.
func (r *ParallelResult) Describe() []obs.Metric { return parallelMetrics }

// The list-engine telemetry lives in a package-wide registry: walks
// are instrumented through per-arena pending counts (no atomics in the
// hot loops) flushed in batches, so the counters are cheap enough to
// stay on permanently.
var (
	listReg        = obs.NewRegistry()
	listWalks      = listReg.Counter("treecode.list.walks", "", "interaction-list traversals (per-particle and group)")
	listCells      = listReg.Counter("treecode.list.cells", "", "cells appended to interaction lists")
	listParts      = listReg.Counter("treecode.list.parts", "", "leaf sources appended to interaction lists")
	listArenaAlloc = listReg.Counter("treecode.list.arena.alloc", "", "walk arenas allocated")
	listArenaReuse = listReg.Counter("treecode.list.arena.reuse", "", "walk-arena acquisitions served by an existing arena")
	listGroupSaved = listReg.Counter("treecode.list.groupwalk.saved", "", "tree traversals saved by group walks (targets beyond the first per leaf)")
	dualTasks      = listReg.Counter("treecode.dual.tasks", "", "dual-tree traversal tasks run")
	dualMAC        = listReg.Counter("treecode.dual.mac", "", "MAC tests performed by dual traversals")
	dualHoisted    = listReg.Counter("treecode.dual.hoisted", "", "cells accepted above group level (one test shared by every group below)")
	dualGroups     = listReg.Counter("treecode.dual.groups", "", "target groups evaluated by dual traversals")
)

// ListTelemetry returns the obs source for the list engine's
// process-wide counters (live cumulative semantics, like the cpu
// calibration memo).
func ListTelemetry() obs.Source { return listReg }

// Collect implements obs.Source with delta semantics for the work and
// import counters (a sweep accumulates) and max semantics for the
// makespan. Communication volume is the World's to report — gather the
// world alongside the result.
func (r *ParallelResult) Collect(s *obs.Snapshot) {
	r.Stats.Collect(s)
	s.AddCounter("treecode.par.imported_sources", "", "pseudo/real sources imported across ranks", uint64(r.ImportedSources))
	s.MaxGauge("treecode.par.sim_time", "s", "distributed force makespan (max over gathered runs)", r.SimTime)
}
