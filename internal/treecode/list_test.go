package treecode

import (
	"math"
	"testing"

	"repro/internal/nbody"
)

// sweepRecursive / sweepList evaluate forces for every particle with
// the two engines, returning packed accelerations and stats.
func sweepRecursive(tr *Tree, s *nbody.System, theta float64) ([]float64, Stats) {
	var st Stats
	out := make([]float64, 3*s.N())
	for i := 0; i < s.N(); i++ {
		ax, ay, az := tr.ForceAtRecursive(s.X[i], s.Y[i], s.Z[i], i, theta, s.Eps, &st)
		out[3*i], out[3*i+1], out[3*i+2] = ax, ay, az
	}
	return out, st
}

func sweepList(tr *Tree, s *nbody.System, theta float64) ([]float64, Stats) {
	var st Stats
	ar := NewWalkArena()
	out := make([]float64, 3*s.N())
	for i := 0; i < s.N(); i++ {
		ax, ay, az := tr.ForceAtList(s.X[i], s.Y[i], s.Z[i], i, theta, s.Eps, &st, ar)
		out[3*i], out[3*i+1], out[3*i+2] = ax, ay, az
	}
	return out, st
}

func bitsEqual(a, b []float64) int {
	if len(a) != len(b) {
		return 0
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

// TestListEngineBitIdentical is the golden equivalence grid: the list
// engine must reproduce the recursive walk bit for bit — and count the
// same interactions — across theta, eps, quadrupole and bucket sizes.
// Floats are compared by their bit patterns: the segment-encoded
// interaction lists replay the recursion's exact accumulation order, so
// any reordering of float additions fails here.
func TestListEngineBitIdentical(t *testing.T) {
	s := nbody.NewPlummer(2000, 1, 7)
	for _, quad := range []bool{false, true} {
		for _, bucket := range []int{1, 8, 16} {
			tr := buildFromSystem(t, s, BuildOptions{Bucket: bucket, Quadrupole: quad})
			for _, theta := range []float64{0.3, 0.7, 1.0} {
				for _, eps := range []float64{0, 0.05} {
					sys := *s
					sys.Eps = eps
					ref, refSt := sweepRecursive(tr, &sys, theta)
					got, gotSt := sweepList(tr, &sys, theta)
					if i := bitsEqual(ref, got); i >= 0 {
						t.Fatalf("quad=%v bucket=%d theta=%g eps=%g: component %d differs: %g vs %g",
							quad, bucket, theta, eps, i, ref[i], got[i])
					}
					if refSt != gotSt {
						t.Fatalf("quad=%v bucket=%d theta=%g eps=%g: stats differ: %+v vs %+v",
							quad, bucket, theta, eps, refSt, gotSt)
					}
					if refSt.PP == 0 || refSt.PC == 0 {
						t.Fatalf("degenerate sweep: %+v", refSt)
					}
				}
			}
		}
	}
}

// TestForceAtWrapperMatchesList pins the thin ForceAt wrapper (pooled
// arena) to the list engine's results.
func TestForceAtWrapperMatchesList(t *testing.T) {
	s := nbody.NewPlummer(500, 1, 11)
	tr := buildFromSystem(t, s, BuildOptions{Quadrupole: true})
	ar := NewWalkArena()
	for i := 0; i < s.N(); i += 17 {
		var st1, st2 Stats
		ax1, ay1, az1 := tr.ForceAt(s.X[i], s.Y[i], s.Z[i], i, 0.7, s.Eps, &st1)
		ax2, ay2, az2 := tr.ForceAtList(s.X[i], s.Y[i], s.Z[i], i, 0.7, s.Eps, &st2, ar)
		if ax1 != ax2 || ay1 != ay2 || az1 != az2 || st1 != st2 {
			t.Fatalf("particle %d: wrapper (%g,%g,%g %+v) != list (%g,%g,%g %+v)",
				i, ax1, ay1, az1, st1, ax2, ay2, az2, st2)
		}
	}
}

// forcerAccels runs one Forces call and returns the acceleration
// arrays and the call's stats.
func forcerAccels(t *testing.T, f *Forcer, n int) ([]float64, Stats) {
	t.Helper()
	s := nbody.NewPlummer(n, 1, 99)
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 0, 3*n)
	for i := 0; i < n; i++ {
		out = append(out, s.AX[i], s.AY[i], s.AZ[i])
	}
	return out, f.LastStats
}

// TestForcerEnginesBitIdentical asserts the Forcer produces the same
// bits under both per-particle engines.
func TestForcerEnginesBitIdentical(t *testing.T) {
	const n = 3000
	ref, refSt := forcerAccels(t, &Forcer{Theta: 0.7, Engine: EngineRecursive, Workers: 1}, n)
	for _, quadWorkers := range []int{1, 4} {
		got, gotSt := forcerAccels(t, &Forcer{Theta: 0.7, Engine: EngineList, Workers: quadWorkers}, n)
		if i := bitsEqual(ref, got); i >= 0 {
			t.Fatalf("workers=%d: component %d differs from recursive engine", quadWorkers, i)
		}
		if refSt != gotSt {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", quadWorkers, refSt, gotSt)
		}
	}
}

// TestListWorkersBitIdentical is the par-pool determinism contract for
// the interaction-list engine: workers 1, 2 and 8 must produce
// bit-identical accelerations and identical Stats{PP,PC}. CI runs this
// under -race, so it also proves the per-worker arenas never share.
func TestListWorkersBitIdentical(t *testing.T) {
	const n = 6000
	for _, group := range []bool{false, true} {
		ref, refSt := forcerAccels(t, &Forcer{Theta: 0.7, GroupWalk: group, Workers: 1}, n)
		for _, w := range []int{2, 8} {
			got, gotSt := forcerAccels(t, &Forcer{Theta: 0.7, GroupWalk: group, Workers: w}, n)
			if i := bitsEqual(ref, got); i >= 0 {
				t.Fatalf("group=%v workers=%d: component %d differs from serial", group, w, i)
			}
			if refSt != gotSt {
				t.Fatalf("group=%v workers=%d: stats differ: %+v vs %+v", group, w, refSt, gotSt)
			}
		}
	}
}

// rmsError returns the RMS acceleration error of f against direct
// summation over every particle.
func rmsError(s *nbody.System, acc []float64) float64 {
	n := s.N()
	var num, den float64
	for i := 0; i < n; i++ {
		var ax, ay, az float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := s.X[j] - s.X[i]
			dy := s.Y[j] - s.Y[i]
			dz := s.Z[j] - s.Z[i]
			r2 := dx*dx + dy*dy + dz*dz + s.Eps*s.Eps
			rinv := 1 / math.Sqrt(r2)
			f := s.M[j] * rinv * rinv * rinv
			ax += f * dx
			ay += f * dy
			az += f * dz
		}
		ex := acc[3*i] - ax
		ey := acc[3*i+1] - ay
		ez := acc[3*i+2] - az
		num += ex*ex + ey*ey + ez*ez
		den += ax*ax + ay*ay + az*az
	}
	return math.Sqrt(num / den)
}

// TestGroupWalkAccuracyBounded: the group MAC is strictly more
// conservative than the per-particle MAC (it evaluates the criterion at
// the worst-case point of the target leaf's box), so the group engine
// only ever opens more cells — its RMS error against direct summation
// must stay within a whisker of the per-particle walk's.
func TestGroupWalkAccuracyBounded(t *testing.T) {
	const n = 4000
	s := nbody.NewPlummer(n, 1, 5)
	tr := buildFromSystem(t, s, BuildOptions{})

	rec, recSt := sweepRecursive(tr, s, 0.7)
	grp := make([]float64, 3*n)
	var grpSt Stats
	ar := NewWalkArena()
	for _, li := range tr.AppendLeaves(nil) {
		tr.GroupForceLeaf(li, 0.7, s.Eps, ar, &grpSt)
		for k := 0; k < ar.NumTargets(); k++ {
			i, ax, ay, az := ar.Target(k)
			grp[3*i], grp[3*i+1], grp[3*i+2] = ax, ay, az
		}
	}

	recRMS := rmsError(s, rec)
	grpRMS := rmsError(s, grp)
	t.Logf("theta=0.7 n=%d: recursive RMS=%.3e (%d interactions), groupwalk RMS=%.3e (%d interactions)",
		n, recRMS, recSt.Interactions(), grpRMS, grpSt.Interactions())
	if grpRMS > recRMS*1.05+1e-12 {
		t.Fatalf("group walk less accurate than per-particle walk: RMS %.3e vs %.3e", grpRMS, recRMS)
	}
	// Conservativeness also means at least as much work is evaluated
	// exactly: the group walk cannot do fewer PP interactions.
	if grpSt.PP < recSt.PP {
		t.Fatalf("group walk did fewer PP interactions than per-particle: %d vs %d", grpSt.PP, recSt.PP)
	}
}

// TestGroupWalkTelemetrySavings: a bucketed tree must record saved
// traversals (every target beyond the first per leaf).
func TestGroupWalkTelemetrySavings(t *testing.T) {
	before := listGroupSaved.Value()
	f := &Forcer{Theta: 0.7, GroupWalk: true, Workers: 1}
	s := nbody.NewPlummer(2000, 1, 3)
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	saved := listGroupSaved.Value() - before
	if saved == 0 {
		t.Fatal("group walk over a bucketed tree saved no traversals")
	}
	if saved >= uint64(s.N()) {
		t.Fatalf("savings %d exceed particle count %d", saved, s.N())
	}
}

// TestArenaReuseTelemetry: a second Forces call on the same Forcer must
// reuse its per-worker arenas and say so in the counters.
func TestArenaReuseTelemetry(t *testing.T) {
	f := &Forcer{Theta: 0.7, Workers: 2}
	s := nbody.NewPlummer(1500, 1, 21)
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	before := listArenaReuse.Value()
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	if reused := listArenaReuse.Value() - before; reused < 2 {
		t.Fatalf("second Forces call reused %d arenas, want >= 2", reused)
	}
}

// TestParseEngine covers the flag parser and the default.
func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Engine
	}{
		{"", EngineAuto}, {"auto", EngineAuto},
		{"list", EngineList}, {"recursive", EngineRecursive},
		{"group", EngineGroup}, {"groupwalk", EngineGroup},
		{"dual", EngineDual},
	} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseEngine(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseEngine("turbo"); err == nil {
		t.Fatal("ParseEngine accepted an unknown engine")
	}
	for e, want := range map[Engine]string{
		EngineAuto: "auto", EngineList: "list", EngineRecursive: "recursive",
		EngineGroup: "group", EngineDual: "dual",
	} {
		if e.String() != want {
			t.Fatalf("engine %d spelled %q, want %q", int(e), e.String(), want)
		}
	}
}

// TestResolveEngine pins the error-budget resolution: auto defaults to
// the dual engine (budget 1 = "no worse than the reference"), budgets
// below 1 demand bit-exactness, and explicit engines always win.
func TestResolveEngine(t *testing.T) {
	for _, tc := range []struct {
		e      Engine
		budget float64
		want   Engine
	}{
		{EngineAuto, 0, EngineDual},
		{EngineAuto, 1, EngineDual},
		{EngineAuto, 2.5, EngineDual},
		{EngineAuto, 0.5, EngineList},
		{EngineList, 0, EngineList},
		{EngineRecursive, 5, EngineRecursive},
		{EngineGroup, 0.1, EngineGroup},
		{EngineDual, 0.1, EngineDual},
	} {
		if got := ResolveEngine(tc.e, tc.budget); got != tc.want {
			t.Fatalf("ResolveEngine(%v, %g) = %v, want %v", tc.e, tc.budget, got, tc.want)
		}
	}
}

// TestMinDist2MatchesMinDist pins the squared-distance helper to its
// sqrt counterpart.
func TestMinDist2MatchesMinDist(t *testing.T) {
	b := Box{CX: 1, CY: -2, CZ: 0.5, Half: 0.25}
	pts := [][3]float64{{1, -2, 0.5}, {2, -2, 0.5}, {0, 0, 0}, {1.25, -1.75, 0.75}, {-3, 4, 9}}
	for _, p := range pts {
		d := b.MinDist(p[0], p[1], p[2])
		d2 := b.MinDist2(p[0], p[1], p[2])
		if math.Abs(d*d-d2) > 1e-12*(1+d2) {
			t.Fatalf("MinDist²=%g vs MinDist2=%g at %v", d*d, d2, p)
		}
	}
	if d2 := boxToBoxDist2(b, Box{CX: 1, CY: -2, CZ: 0.5, Half: 1}); d2 != 0 {
		t.Fatalf("overlapping boxes have dist2 %g", d2)
	}
	d := boxToBoxDist(b, Box{CX: 5, CY: -2, CZ: 0.5, Half: 1})
	if math.Abs(d-2.75) > 1e-12 {
		t.Fatalf("boxToBoxDist = %g, want 2.75", d)
	}
}
