package treecode

import (
	"math"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/netsim"
)

// TestParallelForcesPoolInvariant pins pooling out of the physics for
// the treecode: accelerations, interaction counts, communication
// volumes and simulated times must be bit-for-bit identical with the
// buffer pools disabled.
func TestParallelForcesPoolInvariant(t *testing.T) {
	const n = 3000
	run := func(p int, disable bool) (*nbody.System, *ParallelResult) {
		s := nbody.NewPlummer(n, 1, 2001)
		w, err := mpi.NewWorldWithConfig(p, mpi.Config{
			Fabric:       netsim.FastEthernet(),
			DisablePool:  disable,
			ChannelDepth: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := ParallelForces(w, s, ParallelConfig{Theta: 0.7})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		return s, res
	}
	for _, p := range []int{2, 8, 24} {
		sP, rP := run(p, false)
		sU, rU := run(p, true)
		if math.Float64bits(rP.SimTime) != math.Float64bits(rU.SimTime) {
			t.Errorf("p=%d: sim time %x vs %x", p,
				math.Float64bits(rP.SimTime), math.Float64bits(rU.SimTime))
		}
		if rP.CommBytes != rU.CommBytes || rP.CommMessages != rU.CommMessages ||
			rP.ImportedSources != rU.ImportedSources {
			t.Errorf("p=%d: comm stats differ: %+v vs %+v", p, rP, rU)
		}
		if rP.Stats != rU.Stats {
			t.Errorf("p=%d: interaction stats differ: %+v vs %+v", p, rP.Stats, rU.Stats)
		}
		for i := 0; i < n; i++ {
			if math.Float64bits(sP.AX[i]) != math.Float64bits(sU.AX[i]) ||
				math.Float64bits(sP.AY[i]) != math.Float64bits(sU.AY[i]) ||
				math.Float64bits(sP.AZ[i]) != math.Float64bits(sU.AZ[i]) {
				t.Fatalf("p=%d: acceleration of particle %d differs", p, i)
			}
		}
	}
}
