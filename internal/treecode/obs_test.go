package treecode

import (
	"testing"

	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// TestTracedConcurrentForces exercises the sharded interaction counters
// and the tracer's append path under a wide worker pool; with -race this
// is the proof that hot-loop instrumentation is race-free.
func TestTracedConcurrentForces(t *testing.T) {
	s := nbody.NewPlummer(8000, 1, 7)
	tr := obs.NewTracer()
	f := &Forcer{Theta: 0.7, Workers: 8, Tracer: tr}
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	if f.LastStats.Interactions() == 0 {
		t.Fatal("no interactions counted")
	}
	// One build span + one forces span per call.
	if got := tr.Events(); got != 2 {
		t.Fatalf("trace events = %d, want 2", got)
	}
	// Tracing must not perturb results: an untraced serial run matches.
	s2 := nbody.NewPlummer(8000, 1, 7)
	f2 := &Forcer{Theta: 0.7, Workers: 1}
	if err := f2.Forces(s2); err != nil {
		t.Fatal(err)
	}
	if f2.LastStats != f.LastStats {
		t.Fatalf("traced stats %+v differ from untraced %+v", f.LastStats, f2.LastStats)
	}
}

// TestTracedParallelForces runs the distributed computation with a
// tracer attached to the world: every rank goroutine appends spans
// concurrently (mpi sends in the fabric, treecode phases per rank).
func TestTracedParallelForces(t *testing.T) {
	s := nbody.NewPlummer(4000, 1, 11)
	w, err := mpi.NewWorld(8, netsim.FastEthernet())
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	w.Tracer = tr
	res, err := ParallelForces(w, s, ParallelConfig{Theta: 0.7, Eps: s.Eps})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Interactions() == 0 {
		t.Fatal("no interactions")
	}
	if tr.Events() == 0 {
		t.Fatal("no trace events from a traced parallel run")
	}
}

func TestForcerCollectCumulative(t *testing.T) {
	s := nbody.NewPlummer(2000, 1, 3)
	f := &Forcer{Theta: 0.7}
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	snap := obs.NewSnapshot()
	snap.Gather(f)
	snap.Gather(f) // live-cumulative source: regathering must not double
	if got := snap.Counter("treecode.interactions"); got != f.Total.Interactions() {
		t.Fatalf("gathered %d, forcer total %d", got, f.Total.Interactions())
	}
	if f.Total.Interactions() != 2*f.LastStats.Interactions() {
		t.Fatalf("Total %d not twice LastStats %d", f.Total.Interactions(), f.LastStats.Interactions())
	}
}

func TestParallelResultCollectDelta(t *testing.T) {
	s := nbody.NewPlummer(3000, 1, 5)
	w, err := mpi.NewWorld(4, netsim.FastEthernet())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ParallelForces(w, s, ParallelConfig{Theta: 0.7, Eps: s.Eps})
	if err != nil {
		t.Fatal(err)
	}
	snap := obs.NewSnapshot()
	snap.Gather(res, w)
	if got := snap.Counter("treecode.interactions"); got != res.Stats.Interactions() {
		t.Fatalf("interactions %d != %d", got, res.Stats.Interactions())
	}
	if got := snap.Counter("mpi.bytes.total"); got != uint64(res.CommBytes) {
		t.Fatalf("mpi.bytes.total %d != CommBytes %d", got, res.CommBytes)
	}
	sm, ok := snap.Lookup("treecode.par.sim_time")
	if !ok || sm.Float != res.SimTime {
		t.Fatalf("sim_time gauge %v != %v", sm.Float, res.SimTime)
	}
	// Delta semantics: gathering a second result accumulates counters.
	snap.Gather(res)
	if got := snap.Counter("treecode.interactions"); got != 2*res.Stats.Interactions() {
		t.Fatalf("second gather did not accumulate: %d", got)
	}
	// Tree structure gauges.
	tree, err := Build(SourcesFromSystem(s), BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	snap.Gather(tree)
	if sm, ok := snap.Lookup("treecode.tree.nodes"); !ok || sm.Float != float64(len(tree.Nodes)) {
		t.Fatal("tree node gauge missing or wrong")
	}
}
