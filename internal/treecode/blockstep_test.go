package treecode

import (
	"math"
	"testing"

	"repro/internal/nbody"
)

// The Forcer must satisfy the block integrator's masked-force contract.
var _ nbody.ActiveForcer = (*Forcer)(nil)

// TestBlockStepWorkerDeterminism is the block-timestep determinism
// contract over the full stack — rung scheduling, masked dual-tree
// forces, selection pruning: the end state of a multi-step block
// integration must be bit-identical at worker counts 1, 2 and 8. CI
// runs this under -race, so it also proves the masked force path never
// shares arenas across workers.
func TestBlockStepWorkerDeterminism(t *testing.T) {
	run := func(w int) (*nbody.System, nbody.RungStats) {
		s := nbody.NewPlummer(2000, 1, 12)
		f := &Forcer{Theta: 0.7, Workers: w}
		var b nbody.BlockStepper
		if err := b.Run(s, f, nbody.BlockConfig{DT: 0.05, MaxRung: 4}, 3); err != nil {
			t.Fatal(err)
		}
		return s, b.Stats
	}
	ref, refStats := run(1)
	if refStats.MaxRungUsed == 0 {
		t.Fatal("hierarchy never engaged — the determinism check would be vacuous")
	}
	if refStats.Saved == 0 {
		t.Fatal("block stepping skipped no force updates")
	}
	for _, w := range []int{2, 8} {
		got, gotStats := run(w)
		if gotStats != refStats {
			t.Fatalf("workers=%d: rung stats %+v differ from serial %+v", w, gotStats, refStats)
		}
		for i := 0; i < ref.N(); i++ {
			if math.Float64bits(ref.X[i]) != math.Float64bits(got.X[i]) ||
				math.Float64bits(ref.VX[i]) != math.Float64bits(got.VX[i]) ||
				math.Float64bits(ref.AX[i]) != math.Float64bits(got.AX[i]) {
				t.Fatalf("workers=%d: particle %d diverged from serial", w, i)
			}
		}
	}
}

// TestBlockStepTreecodeEnergyConservation: the PR 6 acceptance bound —
// |relative energy drift| ≤ 1e-3 over 100 base steps — with the full
// production stack: dual-tree engine, live rung hierarchy, masked
// force updates.
func TestBlockStepTreecodeEnergyConservation(t *testing.T) {
	s := nbody.NewPlummer(1000, 1, 8)
	k0, p0 := s.Energy()
	e0 := k0 + p0
	f := &Forcer{Theta: 0.7}
	var b nbody.BlockStepper
	if err := b.Run(s, f, nbody.BlockConfig{DT: 0.01, MaxRung: 4}, 100); err != nil {
		t.Fatal(err)
	}
	k1, p1 := s.Energy()
	drift := math.Abs((k1 + p1 - e0) / e0)
	t.Logf("energy drift %.3e over 100 base steps (max rung %d, updates %d, saved %d)",
		drift, b.Stats.MaxRungUsed, b.Stats.Updates, b.Stats.Saved)
	if drift > 1e-3 {
		t.Fatalf("energy drift %g over 100 base steps, want <= 1e-3", drift)
	}
}
