package treecode

import "math"

// The dual-tree engine walks the tree against itself: a recursive
// descent over *target* subtrees refines one inherited list of
// undecided *source* nodes, so a single MAC decision made high up —
// "this source cell is far enough from this whole target box" — is
// inherited by every target group below it instead of being re-tested
// once per group (the group engine) or once per particle (the list
// engine). Sources are scanned through PR 5's rope-threaded walk
// index; accepted cells, opened leaf sources and the per-group target
// outputs all live in the per-worker zero-alloc WalkArena.
//
// Acceptance uses exactly the group engine's conservative criterion —
// the per-particle MAC evaluated at the worst-case point of the target
// box, plus box disjointness — so the inheritance argument is a
// monotonicity one: a cell accepted against an ancestor's box passes
// the same test against every descendant box it contains (dmin² only
// grows as the box shrinks, and disjointness is inherited). When a
// rejected source cell is *opened* above group level, its children are
// tested where the group engine would have kept the parent, so the
// dual engine evaluates the same or finer cells than the group walk:
// its error is bounded by the group engine's, which is bounded by the
// recursive walk's. Like the group engine it is RMS-bounded, not
// bit-identical (accumulation order differs).

// DualTaskSize is the particle granularity of the dual engine's
// parallel work list: each task is a maximal subtree of at most this
// many particles, refined independently from the root's undecided
// list. Tasks partition the particles, so acceleration writes are
// disjoint and results are bit-identical at any worker width. Coarser
// tasks hoist more MAC decisions but parallelize worse; 1024 keeps
// ~n/1024 tasks, plenty for the host pool at production sizes.
const DualTaskSize = 1024

// dualState is the reusable traversal state of one dual walk,
// embedded in the WalkArena so the steady-state path allocates
// nothing. The undecided list u is a flat stack: each target level
// appends its refined list above its parent's and truncates on exit.
type dualState struct {
	t   *Tree
	wn  []walkNode
	wb  []Box
	wq  []float64
	sel *Selection
	ar  *WalkArena
	th2 float64
	// groupSize is the particle count at or below which a target
	// subtree stops splitting and evaluates as one group.
	groupSize int32
	quad      bool

	// u is the undecided-source stack, levels delimited by the target
	// recursion.
	u []int32

	// Current target frame: AABB (centre, half-extents) and whether the
	// frame is a group (resolves every source) or internal (may defer).
	tx, ty, tz, hx, hy, hz float64
	isGroup                bool
}

// DualForceWalk computes softened accelerations for every selected
// real target under tree node ni with one dual traversal: the walk
// index is refined down the target subtree, cells accepted at internal
// levels are shared by every group below, and each group evaluates the
// accumulated list through the same blocked kernels as the group
// engine. Results land in the arena's target buffers (NumTargets /
// Target), exactly as GroupForceLeaf's do.
func (t *Tree) DualForceWalk(ni int32, theta, eps float64, groupSize int, sel *Selection, ar *WalkArena, st *Stats) {
	ar.tIdx = ar.tIdx[:0]
	ar.tax, ar.tay, ar.taz = ar.tax[:0], ar.tay[:0], ar.taz[:0]
	wn, wb, wq := t.walkIndex()
	if len(wn) == 0 {
		return
	}
	if groupSize <= 0 {
		groupSize = DefaultGroupSize
	}
	ar.cx, ar.cy, ar.cz, ar.cm = ar.cx[:0], ar.cy[:0], ar.cz[:0], ar.cm[:0]
	ar.qxx, ar.qyy, ar.qzz = ar.qxx[:0], ar.qyy[:0], ar.qzz[:0]
	ar.qxy, ar.qxz, ar.qyz = ar.qxy[:0], ar.qxz[:0], ar.qyz[:0]
	ar.px, ar.py, ar.pz, ar.pm = ar.px[:0], ar.py[:0], ar.pz[:0], ar.pm[:0]
	ar.pidx = ar.pidx[:0]
	ar.segs = ar.segs[:0]
	d := &ar.dual
	d.t, d.wn, d.wb, d.wq = t, wn, wb, wq
	d.sel, d.ar = sel, ar
	d.th2 = theta * theta
	d.groupSize = int32(groupSize)
	d.quad = t.Quadrupole
	d.u = append(d.u[:0], 0) // the whole tree, undecided
	d.target(ni, 0, 1, eps, st)
	// Drop the state's borrowed references so an idle arena does not
	// pin the tree (trees are rebuilt every step).
	d.t, d.wn, d.wb, d.wq, d.sel = nil, nil, nil, nil, nil
	ar.pendWalks++
	ar.pendDualTasks++
}

// target refines the undecided source list d.u[ulo:uhi] against tree
// node ni. Invariants: len(d.u) == uhi on entry and on exit; cells
// appended here are truncated on exit (they apply only to this
// subtree); particles are appended and consumed at group level only.
func (d *dualState) target(ni int32, ulo, uhi int, eps float64, st *Stats) {
	t := d.t
	n := &t.Nodes[ni]
	first, count := int32(n.First), int32(n.Count)
	if d.sel.count(first, first+count) == 0 {
		// No selected target anywhere below: prune the whole subtree in
		// O(1) off the selection's prefix counts.
		return
	}
	ar := d.ar
	cellMark := len(ar.cm)
	group := n.Leaf || count <= d.groupSize
	if group {
		// Tight AABB over the group's selected real targets — tighter
		// than the octree box, so the inherited-plus-refined list is at
		// least as sharp as a fresh group walk's.
		var lx, ly, lz, hx, hy, hz float64
		none := true
		for j := first; j < first+count; j++ {
			s := &t.Sources[j]
			if !d.sel.selected(s) {
				continue
			}
			if none {
				lx, ly, lz = s.X, s.Y, s.Z
				hx, hy, hz = s.X, s.Y, s.Z
				none = false
				continue
			}
			lx, hx = min(lx, s.X), max(hx, s.X)
			ly, hy = min(ly, s.Y), max(hy, s.Y)
			lz, hz = min(lz, s.Z), max(hz, s.Z)
		}
		if none {
			// Only pseudo-particles below (LET import): nothing to do.
			return
		}
		d.tx, d.hx = (lx+hx)/2, (hx-lx)/2
		d.ty, d.hy = (ly+hy)/2, (hy-ly)/2
		d.tz, d.hz = (lz+hz)/2, (hz-lz)/2
	} else {
		b := &n.Box
		d.tx, d.ty, d.tz = b.CX, b.CY, b.CZ
		d.hx, d.hy, d.hz = b.Half, b.Half, b.Half
	}
	d.isGroup = group
	for k := ulo; k < uhi; k++ {
		d.refine(d.u[k])
	}
	if group {
		t.evalTargets(first, count, eps, d.sel, ar, st)
		ar.pendDualGroups++
		ar.pendCells += uint64(len(ar.cm))
		ar.pendParts += uint64(len(ar.pm))
		ar.px, ar.py, ar.pz, ar.pm = ar.px[:0], ar.py[:0], ar.pz[:0], ar.pm[:0]
		ar.pidx = ar.pidx[:0]
	} else {
		newHi := len(d.u)
		for _, ci := range n.Children {
			if ci >= 0 {
				d.target(ci, uhi, newHi, eps, st)
			}
		}
		d.u = d.u[:uhi]
	}
	ar.cx, ar.cy, ar.cz, ar.cm = ar.cx[:cellMark], ar.cy[:cellMark], ar.cz[:cellMark], ar.cm[:cellMark]
	if d.quad {
		ar.qxx, ar.qyy, ar.qzz = ar.qxx[:cellMark], ar.qyy[:cellMark], ar.qzz[:cellMark]
		ar.qxy, ar.qxz, ar.qyz = ar.qxy[:cellMark], ar.qxz[:cellMark], ar.qyz[:cellMark]
	}
}

// refine decides walk-index node u against the current target frame:
// accept it as a cell for everything below the frame, resolve it into
// particles (group frames), open it and decide its children here, or
// defer it — still undecided — to the frame's target children.
func (d *dualState) refine(u int32) {
	n := &d.wn[u]
	d.ar.pendDualMAC++
	dx := math.Max(0, math.Abs(n.cx-d.tx)-d.hx)
	dy := math.Max(0, math.Abs(n.cy-d.ty)-d.hy)
	dz := math.Max(0, math.Abs(n.cz-d.tz)-d.hz)
	dmin2 := dx*dx + dy*dy + dz*dz
	if n.size2 < d.th2*dmin2 && (dmin2 > 3*n.size2 ||
		boxDisjointAABB(d.wb[u], d.tx, d.ty, d.tz, d.hx, d.hy, d.hz)) {
		ar := d.ar
		ar.cx = append(ar.cx, n.cx)
		ar.cy = append(ar.cy, n.cy)
		ar.cz = append(ar.cz, n.cz)
		ar.cm = append(ar.cm, n.m)
		if d.quad {
			q := d.wq[6*u : 6*u+6]
			ar.qxx = append(ar.qxx, q[0])
			ar.qyy = append(ar.qyy, q[1])
			ar.qzz = append(ar.qzz, q[2])
			ar.qxy = append(ar.qxy, q[3])
			ar.qxz = append(ar.qxz, q[4])
			ar.qyz = append(ar.qyz, q[5])
		}
		if !d.isGroup {
			// Accepted above group level: one MAC test substitutes for a
			// test per descendant group.
			ar.pendDualHoisted++
		}
		return
	}
	if n.leaf {
		if d.isGroup {
			ar := d.ar
			srcs := d.t.Sources
			for j := n.first; j < n.first+n.count; j++ {
				s := &srcs[j]
				ar.px = append(ar.px, s.X)
				ar.py = append(ar.py, s.Y)
				ar.pz = append(ar.pz, s.Z)
				ar.pm = append(ar.pm, s.M)
				ar.pidx = append(ar.pidx, int32(s.Index))
			}
			return
		}
		d.u = append(d.u, u)
		return
	}
	// Rejected internal source: open the bigger side. Group frames
	// cannot defer (there are no target children), and when the boxes
	// are the same size the target splits first, so the descent always
	// terminates even though source and target are the same tree.
	if d.isGroup || d.wb[u].Half > max(d.hx, max(d.hy, d.hz)) {
		for c := u + 1; c < n.skip; c = d.wn[c].skip {
			d.refine(c)
		}
		return
	}
	d.u = append(d.u, u)
}
