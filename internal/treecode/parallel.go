package treecode

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/isa"
	"repro/internal/mpi"
	"repro/internal/nbody"
	"repro/internal/obs"
)

// CostModel converts counted work into modelled seconds on a target
// processor; the mpi layer adds communication time from its fabric, so a
// parallel run yields the simulated runtime on the modelled cluster.
type CostModel struct {
	// SecondsPerInteraction covers one gravity interaction (the inner
	// kernel the microbenchmark measures).
	SecondsPerInteraction float64
	// SecondsPerBuildSource covers key generation, sorting amortized, and
	// moment accumulation per source in tree construction.
	SecondsPerBuildSource float64
}

// InteractionMix returns the per-interaction operation mix used to derive
// SecondsPerInteraction from a processor's calibrated op costs. Beyond
// the arithmetic kernel (differences, r² reduction, reciprocal square
// root, accumulation) it carries the amortized tree-walk overhead each
// accepted interaction drags along — node fetches (pointer-chasing
// loads), MAC distance tests, and the walk's branches — which is what
// makes real treecodes memory- and branch-sensitive rather than pure
// flops.
func InteractionMix() *isa.Trace {
	var tr isa.Trace
	tr.ByClass[isa.ClassLoad] = 20
	tr.ByClass[isa.ClassFPAdd] = 16
	tr.ByClass[isa.ClassFPMul] = 18
	tr.ByClass[isa.ClassFPSqrt] = 1
	tr.ByClass[isa.ClassIntALU] = 16
	tr.ByClass[isa.ClassBranch] = 6
	tr.Flops = nbody.FlopsPerInteraction
	tr.Instrs = 77
	return &tr
}

// BuildMix returns the per-source tree-construction mix (integer-heavy:
// key twiddling, sorting, pointer chasing).
func BuildMix() *isa.Trace {
	var tr isa.Trace
	tr.ByClass[isa.ClassIntALU] = 40
	tr.ByClass[isa.ClassLoad] = 12
	tr.ByClass[isa.ClassStore] = 6
	tr.ByClass[isa.ClassFPAdd] = 8
	tr.ByClass[isa.ClassFPMul] = 6
	tr.ByClass[isa.ClassBranch] = 8
	tr.Instrs = 80
	return &tr
}

// ParallelConfig configures a distributed force computation.
type ParallelConfig struct {
	Theta      float64
	Bucket     int
	Quadrupole bool
	Eps        float64
	Cost       CostModel
	// Engine selects each rank's force-evaluation engine. The zero
	// value (EngineAuto) resolves through ErrorBudget, like
	// Forcer.Engine.
	Engine Engine
	// ErrorBudget tunes EngineAuto (see Forcer.ErrorBudget).
	ErrorBudget float64
	// GroupSize is the target-group granularity of the group and dual
	// engines (0 = DefaultGroupSize).
	GroupSize int
	// GroupWalk is the deprecated spelling of Engine = EngineGroup,
	// honoured only when Engine is EngineAuto.
	GroupWalk bool
}

// resolve maps the config's engine selection and error budget to the
// engine each rank runs.
func (cfg *ParallelConfig) resolve() Engine {
	e := cfg.Engine
	if e == EngineAuto && cfg.GroupWalk {
		e = EngineGroup
	}
	return ResolveEngine(e, cfg.ErrorBudget)
}

// Decompose returns each rank's particle indices: contiguous runs of the
// Morton-sorted order with balanced counts — the key-space domain
// decomposition of the hashed treecode.
func Decompose(s *nbody.System, p int) ([][]int, error) {
	if p <= 0 {
		return nil, fmt.Errorf("treecode: bad rank count %d", p)
	}
	if s.N() == 0 {
		return nil, fmt.Errorf("treecode: empty system")
	}
	root, err := BoundingBox(s.X, s.Y, s.Z)
	if err != nil {
		return nil, err
	}
	idx := make([]int, s.N())
	keys := make([]Key, s.N())
	for i := range idx {
		idx[i] = i
		keys[i] = MortonKey(s.X[i], s.Y[i], s.Z[i], root)
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([][]int, p)
	n := s.N()
	for r := 0; r < p; r++ {
		lo := r * n / p
		hi := (r + 1) * n / p
		out[r] = idx[lo:hi:hi]
	}
	return out, nil
}

// boxToBoxDist2 returns the squared minimum distance between two boxes
// (0 if they overlap) — the geometry of Salmon's locally-essential-tree
// pruning and the group MAC's disjointness guard. The squared form is
// the primitive; takers of actual distances wrap it in a square root.
func boxToBoxDist2(a, b Box) float64 {
	gap := func(ca, ha, cb, hb float64) float64 {
		d := math.Abs(ca-cb) - ha - hb
		if d < 0 {
			return 0
		}
		return d
	}
	dx := gap(a.CX, a.Half, b.CX, b.Half)
	dy := gap(a.CY, a.Half, b.CY, b.Half)
	dz := gap(a.CZ, a.Half, b.CZ, b.Half)
	return dx*dx + dy*dy + dz*dz
}

// boxToBoxDist returns the minimum distance between two boxes (0 if
// they overlap).
func boxToBoxDist(a, b Box) float64 {
	return math.Sqrt(boxToBoxDist2(a, b))
}

// letExport walks the local tree and collects the sources a remote domain
// needs: cells far enough from the remote bounding box (under the MAC)
// export their monopole as a pseudo-particle; near cells recurse; near
// leaves export their actual particles.
func (t *Tree) letExport(remote Box, theta float64) []Source {
	var out []Source
	var walk func(ni int32)
	walk = func(ni int32) {
		n := &t.Nodes[ni]
		if n.M == 0 {
			return
		}
		size := 2 * n.Box.Half
		d2 := boxToBoxDist2(n.Box, remote)
		if size*size < theta*theta*d2 {
			out = append(out, Source{X: n.CX, Y: n.CY, Z: n.CZ, M: n.M, Index: -1})
			return
		}
		if n.Leaf {
			out = append(out, t.Sources[n.First:n.First+n.Count]...)
			return
		}
		for _, ci := range n.Children {
			if ci >= 0 {
				walk(ci)
			}
		}
	}
	walk(0)
	return out
}

// ParallelResult reports one distributed force computation.
type ParallelResult struct {
	// SimTime is the makespan (max rank virtual time).
	SimTime float64
	// Stats aggregates interaction counts across ranks.
	Stats Stats
	// CommBytes / CommMessages summarize exchange volume.
	CommBytes    int64
	CommMessages int64
	// ImportedSources is the total pseudo/real sources imported.
	ImportedSources int64
}

// encodeSources flattens sources for the wire (x, y, z, m per source;
// imported sources become pseudo-particles — Index is never remote-valid).
func encodeSources(srcs []Source) []float64 {
	out := make([]float64, 4*len(srcs))
	encodeSourcesInto(srcs, out)
	return out
}

// encodeSourcesInto flattens sources into a caller buffer of length
// 4·len(srcs) — typically one drawn from the rank's pool, handed to
// SendOwned for a copy-free exchange.
func encodeSourcesInto(srcs []Source, out []float64) {
	for i, s := range srcs {
		out[4*i], out[4*i+1], out[4*i+2], out[4*i+3] = s.X, s.Y, s.Z, s.M
	}
}

func decodeSources(data []float64) ([]Source, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("treecode: bad source payload length %d", len(data))
	}
	out := make([]Source, len(data)/4)
	for i := range out {
		out[i] = Source{X: data[4*i], Y: data[4*i+1], Z: data[4*i+2], M: data[4*i+3], Index: -1}
	}
	return out, nil
}

// ParallelForces computes softened accelerations for every particle of s
// on a world of ranks, writing them into s.AX/AY/AZ. Each rank owns a
// Morton-contiguous slice of particles, exchanges locally essential
// sources with every other rank, and computes forces for its own
// particles from a tree over local + imported sources.
func ParallelForces(w *mpi.World, s *nbody.System, cfg ParallelConfig) (*ParallelResult, error) {
	if cfg.Theta <= 0 {
		cfg.Theta = 0.7
	}
	parts, err := Decompose(s, w.Size())
	if err != nil {
		return nil, err
	}
	res := &ParallelResult{}
	perRank := make([]Stats, w.Size())
	imported := make([]int64, w.Size())

	// span records a virtual-time phase span for a rank on the world's
	// tracer (nil-safe): the simulated-cluster time domain, seconds
	// rendered as microsecond ticks.
	span := func(c *mpi.Comm, name string, startSec float64, args map[string]any) {
		if w.Tracer == nil {
			return
		}
		w.Tracer.Complete(obs.PidSim, c.Rank(), "treecode", name,
			startSec*1e6, (c.Now()-startSec)*1e6, args)
	}

	mkState := func() *forcesState {
		return &forcesState{
			s: s, cfg: cfg, parts: parts,
			perRank: perRank, imported: imported, span: span,
		}
	}
	if w.EventMode() {
		err = w.RunEvent(func(c *mpi.Comm) mpi.Proc {
			return &forcesProc{st: mkState()}
		})
	} else {
		err = w.Run(func(c *mpi.Comm) error {
			st := mkState()
			st.setup(c)
			c.AllgatherInto(st.myBoxBuf, st.boxes)
			if err := st.afterGather(c); err != nil {
				return err
			}
			p := c.Size()
			for step := 1; step < p; step++ {
				st.letSend(c, step)
				wire := c.Recv((c.Rank()-step+p)%p, step)
				if err := st.letAbsorb(c, wire); err != nil {
					return err
				}
			}
			return st.finish(c)
		})
	}
	if err != nil {
		return nil, err
	}
	for r, st := range perRank {
		res.Stats.PP += st.PP
		res.Stats.PC += st.PC
		res.ImportedSources += imported[r]
	}
	res.SimTime = w.MaxTime()
	res.CommBytes = w.TotalBytes()
	res.CommMessages = w.TotalMessages()
	s.Interactions += res.Stats.Interactions()
	return res, nil
}

// forcesState is one rank's ParallelForces program split at its
// collectives and exchange receives, so the goroutine closure and the
// event-mode forcesProc run the identical phase sequence (setup →
// allgather → afterGather → LET exchange → finish) with the same pool
// traffic, compute charges and tracer spans.
type forcesState struct {
	s        *nbody.System
	cfg      ParallelConfig
	parts    [][]int
	perRank  []Stats
	imported []int64
	span     func(c *mpi.Comm, name string, startSec float64, args map[string]any)

	mine      []int
	local     []Source
	myBoxBuf  []float64
	boxes     []float64
	localTree *Tree
	sources   []Source
	tx0       float64
}

// setup builds the rank's local sources and stages the bounding-box
// allgather buffers (boxes[4r..4r+3] is rank r's box).
func (st *forcesState) setup(c *mpi.Comm) {
	st.mine = st.parts[c.Rank()]
	st.local = make([]Source, len(st.mine))
	xs := make([]float64, len(st.mine))
	ys := make([]float64, len(st.mine))
	zs := make([]float64, len(st.mine))
	for i, pi := range st.mine {
		st.local[i] = Source{X: st.s.X[pi], Y: st.s.Y[pi], Z: st.s.Z[pi], M: st.s.M[pi], Index: pi}
		xs[i], ys[i], zs[i] = st.s.X[pi], st.s.Y[pi], st.s.Z[pi]
	}
	var myBox Box
	if len(st.mine) > 0 {
		myBox, _ = BoundingBox(xs, ys, zs)
	}
	st.myBoxBuf = c.AcquireF64(4)
	st.myBoxBuf[0], st.myBoxBuf[1], st.myBoxBuf[2], st.myBoxBuf[3] = myBox.CX, myBox.CY, myBox.CZ, myBox.Half
	st.boxes = c.AcquireF64(4 * c.Size())
}

// afterGather recycles the box buffer and builds the local tree for
// LET construction, then opens the exchange phase.
func (st *forcesState) afterGather(c *mpi.Comm) error {
	c.ReleaseF64(st.myBoxBuf)
	if len(st.local) > 0 {
		t0 := c.Now()
		lt, berr := Build(st.local, BuildOptions{Bucket: st.cfg.Bucket, Quadrupole: st.cfg.Quadrupole})
		if berr != nil {
			return berr
		}
		st.localTree = lt
		c.AddCompute(st.cfg.Cost.SecondsPerBuildSource * float64(len(st.local)))
		st.span(c, "local_build", t0, map[string]any{"sources": len(st.local)})
	}
	st.tx0 = c.Now()
	st.sources = append([]Source(nil), st.local...)
	return nil
}

// letSend exports the locally essential sources for the step's
// destination and hands them over copy-free in a pooled buffer.
func (st *forcesState) letSend(c *mpi.Comm, step int) {
	dst := (c.Rank() + step) % c.Size()
	var export []Source
	if st.localTree != nil {
		rb := st.boxes[4*dst : 4*dst+4]
		remote := Box{CX: rb[0], CY: rb[1], CZ: rb[2], Half: rb[3]}
		if remote.Half > 0 || len(st.parts[dst]) > 0 {
			export = st.localTree.letExport(remote, st.cfg.Theta)
		}
	}
	out := c.AcquireF64(4 * len(export))
	encodeSourcesInto(export, out)
	c.SendOwned(dst, step, out)
}

// letAbsorb decodes one received export, recycling the wire buffer.
func (st *forcesState) letAbsorb(c *mpi.Comm, wire []float64) error {
	in, err := decodeSources(wire)
	c.ReleaseF64(wire)
	if err != nil {
		return err
	}
	st.sources = append(st.sources, in...)
	st.imported[c.Rank()] += int64(len(in))
	return nil
}

// finish builds the force tree over local + imported sources, runs the
// configured engine over the rank's own particles, and records stats.
func (st *forcesState) finish(c *mpi.Comm) error {
	s, cfg := st.s, st.cfg
	st.span(c, "let_exchange", st.tx0, map[string]any{"imported": st.imported[c.Rank()]})

	if len(st.mine) == 0 {
		c.ReleaseF64(st.boxes)
		return nil
	}
	// Force tree over local + imported sources.
	tb0 := c.Now()
	ft, err := Build(st.sources, BuildOptions{Bucket: cfg.Bucket, Quadrupole: cfg.Quadrupole})
	if err != nil {
		return err
	}
	c.AddCompute(cfg.Cost.SecondsPerBuildSource * float64(len(st.sources)))
	st.span(c, "force_build", tb0, map[string]any{"sources": len(st.sources)})
	tf0 := c.Now()
	var stats Stats
	gsize := cfg.GroupSize
	if gsize <= 0 {
		gsize = DefaultGroupSize
	}
	switch cfg.resolve() {
	case EngineGroup:
		// One traversal per target group. Imported pseudo-particles
		// (Index < 0) are sources but never targets, so exactly the
		// rank's own particles receive accelerations.
		ar := NewWalkArena()
		for _, li := range ft.AppendGroups(nil, gsize) {
			ft.GroupForceLeaf(li, cfg.Theta, cfg.Eps, ar, &stats)
			for k := 0; k < ar.NumTargets(); k++ {
				pi, ax, ay, az := ar.Target(k)
				s.AX[pi] = s.G * ax
				s.AY[pi] = s.G * ay
				s.AZ[pi] = s.G * az
			}
		}
		ar.FlushTelemetry()
	case EngineDual:
		// Dual-tree traversal over the rank's LET: targets are the
		// rank's own particles (imported sources are Index < 0 and
		// never evaluated), sources the whole local + imported tree.
		ar := NewWalkArena()
		for _, ti := range ft.AppendGroups(nil, DualTaskSize) {
			ft.DualForceWalk(ti, cfg.Theta, cfg.Eps, gsize, nil, ar, &stats)
			for k := 0; k < ar.NumTargets(); k++ {
				pi, ax, ay, az := ar.Target(k)
				s.AX[pi] = s.G * ax
				s.AY[pi] = s.G * ay
				s.AZ[pi] = s.G * az
			}
		}
		ar.FlushTelemetry()
	case EngineRecursive:
		for _, pi := range st.mine {
			ax, ay, az := ft.ForceAtRecursive(s.X[pi], s.Y[pi], s.Z[pi], pi, cfg.Theta, cfg.Eps, &stats)
			s.AX[pi] = s.G * ax
			s.AY[pi] = s.G * ay
			s.AZ[pi] = s.G * az
		}
	default:
		ar := NewWalkArena()
		for _, pi := range st.mine {
			ax, ay, az := ft.ForceAtList(s.X[pi], s.Y[pi], s.Z[pi], pi, cfg.Theta, cfg.Eps, &stats, ar)
			s.AX[pi] = s.G * ax
			s.AY[pi] = s.G * ay
			s.AZ[pi] = s.G * az
		}
		ar.FlushTelemetry()
	}
	c.AddCompute(cfg.Cost.SecondsPerInteraction * float64(stats.Interactions()))
	st.span(c, "forces", tf0, map[string]any{"pp": stats.PP, "pc": stats.PC})
	st.perRank[c.Rank()] = stats
	c.ReleaseF64(st.boxes)
	return nil
}

// forcesProc is ParallelForces's resumable rank program for the event
// scheduler: the shared phases strung between the allgather state
// machine and the LET exchange's pending receives.
type forcesProc struct {
	pc   int
	st   *forcesState
	ag   mpi.AllgatherIntoState
	step int
	sent bool
}

func (p *forcesProc) Resume(c *mpi.Comm) (bool, error) {
	st := p.st
	if p.pc == 0 {
		st.setup(c)
		p.ag.Start(c, st.myBoxBuf, st.boxes)
		p.pc = 1
	}
	if p.pc == 1 {
		if !p.ag.Step(c) {
			return false, nil
		}
		if err := st.afterGather(c); err != nil {
			return true, err
		}
		p.step = 1
		p.pc = 2
	}
	for n := c.Size(); p.step < n; p.step++ {
		if !p.sent {
			st.letSend(c, p.step)
			p.sent = true
		}
		wire, ok := c.TryRecvF64((c.Rank()-p.step+n)%n, p.step)
		if !ok {
			return false, nil
		}
		if err := st.letAbsorb(c, wire); err != nil {
			return true, err
		}
		p.sent = false
	}
	return true, st.finish(c)
}
