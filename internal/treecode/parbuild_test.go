package treecode

import (
	"reflect"
	"testing"

	"repro/internal/nbody"
)

// buildAt builds the same tree at a given worker count.
func buildAt(t *testing.T, s *nbody.System, workers int, quad bool) *Tree {
	t.Helper()
	tr, err := Build(SourcesFromSystem(s), BuildOptions{Quadrupole: quad, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestParallelBuildBitIdentical asserts the determinism contract of the
// host-parallel build: node array (order, boxes, moments — every float
// bit), sorted sources and hash are identical at worker counts 1, 2 and
// 8. N is above the parallel threshold so widths >1 exercise the
// spine/task path while width 1 takes the serial recursion.
func TestParallelBuildBitIdentical(t *testing.T) {
	for _, quad := range []bool{false, true} {
		s := nbody.NewPlummer(6000, 1, 42)
		ref := buildAt(t, s, 1, quad)
		if err := ref.CheckInvariants(); err != nil {
			t.Fatalf("quad=%v serial invariants: %v", quad, err)
		}
		for _, w := range []int{2, 8} {
			got := buildAt(t, s, w, quad)
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("quad=%v workers=%d invariants: %v", quad, w, err)
			}
			if !reflect.DeepEqual(got.Nodes, ref.Nodes) {
				t.Fatalf("quad=%v workers=%d: node array differs from serial", quad, w)
			}
			if !reflect.DeepEqual(got.Sources, ref.Sources) {
				t.Fatalf("quad=%v workers=%d: sorted sources differ from serial", quad, w)
			}
			if !reflect.DeepEqual(got.ByKey, ref.ByKey) {
				t.Fatalf("quad=%v workers=%d: hash differs from serial", quad, w)
			}
		}
	}
}

// TestParallelBuildUniformCube repeats the bit-identity check on a
// uniform distribution (balanced octants, the opposite load shape from
// Plummer's central concentration).
func TestParallelBuildUniformCube(t *testing.T) {
	s := nbody.NewUniformCube(5000, 9)
	ref := buildAt(t, s, 1, false)
	for _, w := range []int{2, 8} {
		got := buildAt(t, s, w, false)
		if !reflect.DeepEqual(got.Nodes, ref.Nodes) {
			t.Fatalf("workers=%d: node array differs from serial", w)
		}
	}
}

// TestParallelForcesBitIdentical asserts the treecode force loop returns
// bit-identical acceleration arrays at worker counts 1, 2 and 8, and the
// same interaction statistics.
func TestParallelForcesBitIdentical(t *testing.T) {
	run := func(w int) (*nbody.System, Stats) {
		s := nbody.NewPlummer(6000, 1, 2024)
		f := &Forcer{Theta: 0.7, Workers: w}
		if err := f.Forces(s); err != nil {
			t.Fatal(err)
		}
		return s, f.LastStats
	}
	ref, refStats := run(1)
	for _, w := range []int{2, 8} {
		got, gotStats := run(w)
		if gotStats != refStats {
			t.Fatalf("workers=%d stats %+v differ from serial %+v", w, gotStats, refStats)
		}
		for i := 0; i < ref.N(); i++ {
			if got.AX[i] != ref.AX[i] || got.AY[i] != ref.AY[i] || got.AZ[i] != ref.AZ[i] {
				t.Fatalf("workers=%d: acceleration of particle %d differs from serial", w, i)
			}
		}
	}
}

// TestParallelBuildTinySystems drives the thresholds: systems below the
// parallel cutoff, single-source trees and coincident particles must
// behave identically at any width.
func TestParallelBuildTinySystems(t *testing.T) {
	srcs := []Source{{X: 0.5, Y: 0.5, Z: 0.5, M: 1, Index: 0}}
	for _, w := range []int{1, 8} {
		tr, err := Build(srcs, BuildOptions{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
	// Coincident particles bottom out at MaxDepth inside one leaf.
	var co []Source
	for i := 0; i < 20; i++ {
		co = append(co, Source{X: 0.25, Y: 0.25, Z: 0.25, M: 1, Index: i})
	}
	co = append(co, Source{X: 0.75, Y: 0.75, Z: 0.75, M: 1, Index: 20})
	for _, w := range []int{1, 8} {
		tr, err := Build(co, BuildOptions{Bucket: 4, Workers: w})
		if err != nil {
			t.Fatalf("coincident workers=%d: %v", w, err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("coincident workers=%d: %v", w, err)
		}
	}
}
