// Package treecode implements the hashed oct-tree N-body library of
// Warren & Salmon ("A Parallel Hashed Oct-Tree N-Body Algorithm",
// Supercomputing '93) that the paper's treecode benchmark (§3.5) runs:
// Morton (Z-order) keys, a bucketed octree with monopole (and optional
// quadrupole) moments, Barnes–Hut multipole acceptance, and a parallel
// force computation with locally-essential-tree exchange over the mpi
// substrate. The paper notes the original library is ~20,000 lines of C;
// this package is its Go re-implementation at the fidelity the
// reproduction needs.
package treecode

import (
	"fmt"
	"math"
)

// KeyBits is the number of bits per dimension in a Morton key; 3×21 = 63
// bits plus a sentinel bit marking key length.
const KeyBits = 21

// Key is a Morton key with a high sentinel bit. The root's key is 1;
// each level appends three bits (the octant).
type Key uint64

// RootKey is the key of the root cell.
const RootKey Key = 1

// Box is a cubic spatial domain.
type Box struct {
	CX, CY, CZ float64 // centre
	Half       float64 // half side length
}

// Contains reports whether the point lies inside the box (half-open).
func (b Box) Contains(x, y, z float64) bool {
	return x >= b.CX-b.Half && x < b.CX+b.Half &&
		y >= b.CY-b.Half && y < b.CY+b.Half &&
		z >= b.CZ-b.Half && z < b.CZ+b.Half
}

// Octant returns the child box for an octant index (bit 2 = x half,
// bit 1 = y half, bit 0 = z half).
func (b Box) Octant(oct int) Box {
	h := b.Half / 2
	c := Box{CX: b.CX - h, CY: b.CY - h, CZ: b.CZ - h, Half: h}
	if oct&4 != 0 {
		c.CX += b.Half
	}
	if oct&2 != 0 {
		c.CY += b.Half
	}
	if oct&1 != 0 {
		c.CZ += b.Half
	}
	return c
}

// MinDist2 returns the squared distance from a point to the closest
// point of the box (0 if inside) — the geometry the range query, the
// locally-essential-tree pruning and the group MAC share. Callers that
// only compare magnitudes use this form and skip the square root.
func (b Box) MinDist2(x, y, z float64) float64 {
	dx := math.Max(0, math.Abs(x-b.CX)-b.Half)
	dy := math.Max(0, math.Abs(y-b.CY)-b.Half)
	dz := math.Max(0, math.Abs(z-b.CZ)-b.Half)
	return dx*dx + dy*dy + dz*dz
}

// MinDist returns the distance from a point to the closest point of the
// box (0 if inside).
func (b Box) MinDist(x, y, z float64) float64 {
	return math.Sqrt(b.MinDist2(x, y, z))
}

// BoundingBox returns a cube containing all points, expanded slightly so
// boundary particles stay strictly inside.
func BoundingBox(xs, ys, zs []float64) (Box, error) {
	if len(xs) == 0 {
		return Box{}, fmt.Errorf("treecode: no particles")
	}
	xmin, xmax := xs[0], xs[0]
	ymin, ymax := ys[0], ys[0]
	zmin, zmax := zs[0], zs[0]
	for i := 1; i < len(xs); i++ {
		xmin, xmax = math.Min(xmin, xs[i]), math.Max(xmax, xs[i])
		ymin, ymax = math.Min(ymin, ys[i]), math.Max(ymax, ys[i])
		zmin, zmax = math.Min(zmin, zs[i]), math.Max(zmax, zs[i])
	}
	half := math.Max(xmax-xmin, math.Max(ymax-ymin, zmax-zmin)) / 2
	if half == 0 {
		half = 1
	}
	half *= 1.0001
	return Box{
		CX:   (xmin + xmax) / 2,
		CY:   (ymin + ymax) / 2,
		CZ:   (zmin + zmax) / 2,
		Half: half,
	}, nil
}

// sourceBounds is BoundingBox over a source slice without the
// coordinate-array staging: the same per-axis Min/Max fold in the same
// input order with the same expansion, so the box — and every key and
// node box derived from it — is bit-identical to BoundingBox's. Build
// and the tree maintainer both use it, which is what lets a maintained
// tree recompute the root in place, allocation-free, and still match a
// fresh build exactly.
func sourceBounds(sources []Source) (Box, error) {
	if len(sources) == 0 {
		return Box{}, fmt.Errorf("treecode: no particles")
	}
	xmin, xmax := sources[0].X, sources[0].X
	ymin, ymax := sources[0].Y, sources[0].Y
	zmin, zmax := sources[0].Z, sources[0].Z
	for i := 1; i < len(sources); i++ {
		xmin, xmax = math.Min(xmin, sources[i].X), math.Max(xmax, sources[i].X)
		ymin, ymax = math.Min(ymin, sources[i].Y), math.Max(ymax, sources[i].Y)
		zmin, zmax = math.Min(zmin, sources[i].Z), math.Max(zmax, sources[i].Z)
	}
	half := math.Max(xmax-xmin, math.Max(ymax-ymin, zmax-zmin)) / 2
	if half == 0 {
		half = 1
	}
	half *= 1.0001
	return Box{
		CX:   (xmin + xmax) / 2,
		CY:   (ymin + ymax) / 2,
		CZ:   (zmin + zmax) / 2,
		Half: half,
	}, nil
}

// MortonKey maps a position inside root to its full-depth Morton key.
func MortonKey(x, y, z float64, root Box) Key {
	ix := quantize(x, root.CX, root.Half)
	iy := quantize(y, root.CY, root.Half)
	iz := quantize(z, root.CZ, root.Half)
	k := Key(1) << (3 * KeyBits)
	k |= Key(interleave3(ix))<<2 | Key(interleave3(iy))<<1 | Key(interleave3(iz))
	return k
}

func quantize(v, c, half float64) uint32 {
	f := (v - c + half) / (2 * half) // [0,1)
	q := int64(f * (1 << KeyBits))
	if q < 0 {
		q = 0
	}
	if q >= 1<<KeyBits {
		q = 1<<KeyBits - 1
	}
	return uint32(q)
}

// interleave3 spreads the low 21 bits of v so consecutive bits land three
// apart (the classic Morton bit-spreading with magic masks).
func interleave3(v uint32) uint64 {
	x := uint64(v) & 0x1FFFFF
	x = (x | x<<32) & 0x1F00000000FFFF
	x = (x | x<<16) & 0x1F0000FF0000FF
	x = (x | x<<8) & 0x100F00F00F00F00F
	x = (x | x<<4) & 0x10C30C30C30C30C3
	x = (x | x<<2) & 0x1249249249249249
	return x
}

// Level returns the depth of a key (root = 0).
func (k Key) Level() int {
	if k == 0 {
		return -1
	}
	bits := 63 - leadingZeros64(uint64(k))
	return bits / 3
}

func leadingZeros64(v uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if v&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Child returns the key of the oct-th child.
func (k Key) Child(oct int) Key { return k<<3 | Key(oct&7) }

// Parent returns the parent key (the root's parent is 0).
func (k Key) Parent() Key { return k >> 3 }

// AncestorAt returns the ancestor of a full-depth key at the given level.
func (k Key) AncestorAt(level int) Key {
	depth := k.Level()
	if level >= depth {
		return k
	}
	return k >> uint(3*(depth-level))
}
