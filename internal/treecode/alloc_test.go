package treecode

import (
	"testing"

	"repro/internal/nbody"
)

// TestForceAtListZeroAlloc pins the steady-state per-particle force
// path at zero allocations per call: after a warm-up walk sizes the
// arena, traversal and evaluation run entirely inside reused storage.
func TestForceAtListZeroAlloc(t *testing.T) {
	s := nbody.NewPlummer(4000, 1, 13)
	tr := buildFromSystem(t, s, BuildOptions{Quadrupole: true})
	ar := NewWalkArena()
	var st Stats
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		tr.ForceAtList(s.X[i], s.Y[i], s.Z[i], i, 0.7, s.Eps, &st, ar)
		i = (i + 37) % s.N()
	})
	if allocs != 0 {
		t.Fatalf("ForceAtList allocates %.1f times per call, want 0", allocs)
	}
}

// TestGroupForceLeafZeroAlloc pins the group-walk leaf evaluation at
// zero allocations per call once the arena is warm.
func TestGroupForceLeafZeroAlloc(t *testing.T) {
	s := nbody.NewPlummer(4000, 1, 13)
	tr := buildFromSystem(t, s, BuildOptions{Quadrupole: true})
	leaves := tr.AppendLeaves(nil)
	ar := NewWalkArena()
	var st Stats
	k := 0
	allocs := testing.AllocsPerRun(200, func() {
		tr.GroupForceLeaf(leaves[k], 0.7, s.Eps, ar, &st)
		k = (k + 1) % len(leaves)
	})
	if allocs != 0 {
		t.Fatalf("GroupForceLeaf allocates %.1f times per call, want 0", allocs)
	}
}

// TestDualForceWalkZeroAlloc pins the dual-tree task walk at zero
// allocations per call once the arena (lists, target buffers, and the
// undecided-source stack) is warm.
func TestDualForceWalkZeroAlloc(t *testing.T) {
	s := nbody.NewPlummer(4000, 1, 13)
	tr := buildFromSystem(t, s, BuildOptions{Quadrupole: true})
	tasks := tr.AppendGroups(nil, DualTaskSize)
	ar := NewWalkArena()
	var st Stats
	for _, ti := range tasks {
		tr.DualForceWalk(ti, 0.7, s.Eps, 0, nil, ar, &st)
	}
	k := 0
	allocs := testing.AllocsPerRun(50, func() {
		tr.DualForceWalk(tasks[k], 0.7, s.Eps, 0, nil, ar, &st)
		k = (k + 1) % len(tasks)
	})
	if allocs != 0 {
		t.Fatalf("DualForceWalk allocates %.1f times per call, want 0", allocs)
	}
}

// TestForceSweepZeroAlloc runs a full warm sweep over every particle
// with a single arena — the exact shape of one worker's chunk loop in
// Forcer.Forces — and pins it at zero allocations. (The whole Forces
// call still allocates for the fresh tree build, which is by design:
// particles move between steps.)
func TestForceSweepZeroAlloc(t *testing.T) {
	s := nbody.NewPlummer(2000, 1, 29)
	tr := buildFromSystem(t, s, BuildOptions{})
	ar := NewWalkArena()
	var st Stats
	// Warm the arena on the deepest walks before measuring.
	sweepList(tr, s, 0.7)
	allocs := testing.AllocsPerRun(3, func() {
		for i := 0; i < s.N(); i++ {
			ax, ay, az := tr.ForceAtList(s.X[i], s.Y[i], s.Z[i], i, 0.7, s.Eps, &st, ar)
			s.AX[i], s.AY[i], s.AZ[i] = ax, ay, az
		}
	})
	if allocs != 0 {
		t.Fatalf("warm force sweep allocates %.1f times per pass, want 0", allocs)
	}
}
