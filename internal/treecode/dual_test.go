package treecode

import (
	"math"
	"testing"

	"repro/internal/nbody"
)

// sweepDual evaluates forces for every particle with serial dual-tree
// traversals over the standard task decomposition.
func sweepDual(tr *Tree, s *nbody.System, theta float64, groupSize int) ([]float64, Stats) {
	var st Stats
	ar := NewWalkArena()
	out := make([]float64, 3*s.N())
	filled := 0
	for _, ti := range tr.AppendGroups(nil, DualTaskSize) {
		tr.DualForceWalk(ti, theta, s.Eps, groupSize, nil, ar, &st)
		for k := 0; k < ar.NumTargets(); k++ {
			i, ax, ay, az := ar.Target(k)
			out[3*i], out[3*i+1], out[3*i+2] = ax, ay, az
			filled++
		}
	}
	if filled != s.N() {
		panic("dual sweep did not cover every particle")
	}
	return out, st
}

// TestDualEngineAccuracyBounded: every cell the dual traversal accepts
// — whether hoisted at an ancestor target or resolved at the group —
// passes the group MAC for the group's own box, and rejected cells
// opened above group level are evaluated at *finer* granularity than
// the group walk would use. So the dual engine's RMS error against
// direct summation is bounded by the group engine's, which is bounded
// by the recursive walk's.
func TestDualEngineAccuracyBounded(t *testing.T) {
	const n = 4000
	s := nbody.NewPlummer(n, 1, 5)
	tr := buildFromSystem(t, s, BuildOptions{})

	rec, recSt := sweepRecursive(tr, s, 0.7)
	dual, dualSt := sweepDual(tr, s, 0.7, DefaultGroupSize)

	recRMS := rmsError(s, rec)
	dualRMS := rmsError(s, dual)
	t.Logf("theta=0.7 n=%d: recursive RMS=%.3e (%d interactions), dual RMS=%.3e (%d interactions)",
		n, recRMS, recSt.Interactions(), dualRMS, dualSt.Interactions())
	if dualRMS > recRMS*1.05+1e-12 {
		t.Fatalf("dual engine less accurate than per-particle walk: RMS %.3e vs %.3e", dualRMS, recRMS)
	}
	if dualSt.PP < recSt.PP {
		t.Fatalf("dual engine did fewer PP interactions than per-particle: %d vs %d", dualSt.PP, recSt.PP)
	}
}

// TestForcerDefaultResolvesDual: the tentpole switch — a zero-valued
// engine selection (EngineAuto, default error budget) must run the
// dual engine, bit-identically to asking for it explicitly.
func TestForcerDefaultResolvesDual(t *testing.T) {
	const n = 3000
	before := dualTasks.Value()
	def, defSt := forcerAccels(t, &Forcer{Theta: 0.7, Workers: 2}, n)
	if dualTasks.Value() == before {
		t.Fatal("default Forcer ran no dual-tree tasks")
	}
	exp, expSt := forcerAccels(t, &Forcer{Theta: 0.7, Engine: EngineDual, Workers: 2}, n)
	if i := bitsEqual(def, exp); i >= 0 {
		t.Fatalf("default engine differs from explicit dual at component %d", i)
	}
	if defSt != expSt {
		t.Fatalf("stats differ: %+v vs %+v", defSt, expSt)
	}
	// A sub-1 budget demands exactness: bit-identical to the list engine.
	tight, _ := forcerAccels(t, &Forcer{Theta: 0.7, ErrorBudget: 0.5, Workers: 2}, n)
	list, _ := forcerAccels(t, &Forcer{Theta: 0.7, Engine: EngineList, Workers: 2}, n)
	if i := bitsEqual(tight, list); i >= 0 {
		t.Fatalf("ErrorBudget=0.5 fallback differs from list engine at component %d", i)
	}
}

// TestDualWorkersBitIdentical: dual tasks partition the particles and
// per-chunk sharded counters fold in chunk order, so accelerations and
// stats must not depend on the worker width.
func TestDualWorkersBitIdentical(t *testing.T) {
	const n = 6000
	ref, refSt := forcerAccels(t, &Forcer{Theta: 0.7, Engine: EngineDual, Workers: 1}, n)
	for _, w := range []int{2, 8} {
		got, gotSt := forcerAccels(t, &Forcer{Theta: 0.7, Engine: EngineDual, Workers: w}, n)
		if i := bitsEqual(ref, got); i >= 0 {
			t.Fatalf("workers=%d: component %d differs from serial", w, i)
		}
		if refSt != gotSt {
			t.Fatalf("workers=%d: stats differ: %+v vs %+v", w, refSt, gotSt)
		}
	}
}

// TestGroupSizesDeterministic pins the group and dual engines at
// non-default group granularities (1 below the bucket, 3, the default
// 64, and 65 just past it): per (engine, size, workers) the results
// must be bit-identical across worker counts 1/2/8, and every size
// must stay RMS-bounded by the recursive walk.
func TestGroupSizesDeterministic(t *testing.T) {
	const n = 2500
	s := nbody.NewPlummer(n, 1, 99)
	tr := buildFromSystem(t, s, BuildOptions{})
	rec, _ := sweepRecursive(tr, s, 0.7)
	recRMS := rmsError(s, rec)
	for _, engine := range []Engine{EngineGroup, EngineDual} {
		for _, size := range []int{1, 3, 64, 65} {
			ref, refSt := forcerAccels(t, &Forcer{Theta: 0.7, Engine: engine, GroupSize: size, Workers: 1}, n)
			for _, w := range []int{2, 8} {
				got, gotSt := forcerAccels(t, &Forcer{Theta: 0.7, Engine: engine, GroupSize: size, Workers: w}, n)
				if i := bitsEqual(ref, got); i >= 0 {
					t.Fatalf("%v size=%d workers=%d: component %d differs from serial", engine, size, w, i)
				}
				if refSt != gotSt {
					t.Fatalf("%v size=%d workers=%d: stats differ: %+v vs %+v", engine, size, w, refSt, gotSt)
				}
			}
			// forcerAccels uses seed 99 too, so ref is comparable to rec.
			if rms := rmsError(s, ref); rms > recRMS*1.05+1e-12 {
				t.Fatalf("%v size=%d: RMS %.3e exceeds recursive %.3e", engine, size, rms, recRMS)
			}
		}
	}
}

// TestSofteningAgreesWithRecursive is the satellite regression for the
// hoisted softening helper: at eps = 0 and eps > 0 alike, the list
// engine must match the recursive walk bit for bit, and the group and
// dual engines must stay RMS-bounded by it. A wrong eps² in any engine
// blows the comparison up immediately.
func TestSofteningAgreesWithRecursive(t *testing.T) {
	const n = 2000
	base := nbody.NewPlummer(n, 1, 17)
	tr := buildFromSystem(t, base, BuildOptions{Quadrupole: true})
	for _, eps := range []float64{0, 0.05} {
		s := *base
		s.Eps = eps
		rec, _ := sweepRecursive(tr, &s, 0.7)
		list, _ := sweepList(tr, &s, 0.7)
		if i := bitsEqual(rec, list); i >= 0 {
			t.Fatalf("eps=%g: list engine differs from recursive at component %d", eps, i)
		}
		recRMS := rmsError(&s, rec)
		grp := make([]float64, 3*n)
		var grpSt Stats
		ar := NewWalkArena()
		for _, li := range tr.AppendLeaves(nil) {
			tr.GroupForceLeaf(li, 0.7, s.Eps, ar, &grpSt)
			for k := 0; k < ar.NumTargets(); k++ {
				i, ax, ay, az := ar.Target(k)
				grp[3*i], grp[3*i+1], grp[3*i+2] = ax, ay, az
			}
		}
		if rms := rmsError(&s, grp); rms > recRMS*1.05+1e-12 {
			t.Fatalf("eps=%g: group engine RMS %.3e exceeds recursive %.3e", eps, rms, recRMS)
		}
		dual, _ := sweepDual(tr, &s, 0.7, DefaultGroupSize)
		if rms := rmsError(&s, dual); rms > recRMS*1.05+1e-12 {
			t.Fatalf("eps=%g: dual engine RMS %.3e exceeds recursive %.3e", eps, rms, recRMS)
		}
	}
}

// TestForcesActiveList: with the exact engine, a masked ForcesActive
// call must reproduce the full run's bits on the active subset and
// leave inactive accelerations untouched.
func TestForcesActiveList(t *testing.T) {
	const n = 2000
	full := nbody.NewPlummer(n, 1, 31)
	f := &Forcer{Theta: 0.7, Engine: EngineList, Workers: 4}
	if err := f.Forces(full); err != nil {
		t.Fatal(err)
	}
	masked := nbody.NewPlummer(n, 1, 31)
	active := make([]bool, n)
	const sentinel = 1234.5
	for i := range active {
		active[i] = i%3 == 0
		masked.AX[i], masked.AY[i], masked.AZ[i] = sentinel, sentinel, sentinel
	}
	if err := f.ForcesActive(masked, active); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if active[i] {
			if masked.AX[i] != full.AX[i] || masked.AY[i] != full.AY[i] || masked.AZ[i] != full.AZ[i] {
				t.Fatalf("active particle %d differs from full run", i)
			}
		} else if masked.AX[i] != sentinel || masked.AY[i] != sentinel || masked.AZ[i] != sentinel {
			t.Fatalf("inactive particle %d was overwritten", i)
		}
	}
	if f.LastStats.PP == 0 || f.LastStats.PC == 0 {
		t.Fatalf("degenerate masked stats: %+v", f.LastStats)
	}
}

// TestForcesActiveDual: the dual engine under a mask shrinks each
// group's target box to its active members — a *more* conservative
// MAC — so active particles must stay at least as accurate as the
// recursive walk, inactive ones untouched, and subtrees with no
// active member must be pruned (strictly less work than a full call).
func TestForcesActiveDual(t *testing.T) {
	const n = 2000
	s := nbody.NewPlummer(n, 1, 31)
	f := &Forcer{Theta: 0.7, Engine: EngineDual, Workers: 4}
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	fullStats := f.LastStats

	masked := nbody.NewPlummer(n, 1, 31)
	active := make([]bool, n)
	const sentinel = -987.25
	for i := range active {
		active[i] = i%4 == 1
		masked.AX[i], masked.AY[i], masked.AZ[i] = sentinel, sentinel, sentinel
	}
	if err := f.ForcesActive(masked, active); err != nil {
		t.Fatal(err)
	}
	if f.LastStats.Interactions() >= fullStats.Interactions() {
		t.Fatalf("masked call did no less work: %d vs %d interactions",
			f.LastStats.Interactions(), fullStats.Interactions())
	}
	// Accuracy of the active subset against direct summation, compared
	// to the recursive walk on the same subset.
	tr := buildFromSystem(t, s, BuildOptions{})
	rec, _ := sweepRecursive(tr, s, 0.7)
	var dualNum, recNum, den float64
	for i := 0; i < n; i++ {
		if !active[i] {
			if masked.AX[i] != sentinel {
				t.Fatalf("inactive particle %d was overwritten", i)
			}
			continue
		}
		var ax, ay, az float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			dx := s.X[j] - s.X[i]
			dy := s.Y[j] - s.Y[i]
			dz := s.Z[j] - s.Z[i]
			r2 := dx*dx + dy*dy + dz*dz + s.Eps*s.Eps
			rinv := 1 / math.Sqrt(r2)
			fm := s.M[j] * rinv * rinv * rinv
			ax += fm * dx
			ay += fm * dy
			az += fm * dz
		}
		ex, ey, ez := masked.AX[i]-ax, masked.AY[i]-ay, masked.AZ[i]-az
		dualNum += ex*ex + ey*ey + ez*ez
		ex, ey, ez = rec[3*i]-ax, rec[3*i+1]-ay, rec[3*i+2]-az
		recNum += ex*ex + ey*ey + ez*ez
		den += ax*ax + ay*ay + az*az
	}
	dualRMS := math.Sqrt(dualNum / den)
	recRMS := math.Sqrt(recNum / den)
	t.Logf("active-subset RMS: dual=%.3e recursive=%.3e", dualRMS, recRMS)
	if dualRMS > recRMS*1.05+1e-12 {
		t.Fatalf("masked dual RMS %.3e exceeds recursive %.3e", dualRMS, recRMS)
	}
}

// TestDualTelemetry: a dual Forces call must record tasks, MAC tests,
// evaluated groups, and — the point of the engine — cells hoisted
// above group level.
func TestDualTelemetry(t *testing.T) {
	tasks0, mac0 := dualTasks.Value(), dualMAC.Value()
	hoist0, groups0 := dualHoisted.Value(), dualGroups.Value()
	f := &Forcer{Theta: 0.7, Engine: EngineDual, Workers: 2}
	s := nbody.NewPlummer(4000, 1, 3)
	if err := f.Forces(s); err != nil {
		t.Fatal(err)
	}
	tasks := dualTasks.Value() - tasks0
	if tasks == 0 || tasks > uint64(s.N()) {
		t.Fatalf("implausible dual task count %d", tasks)
	}
	if mac := dualMAC.Value() - mac0; mac == 0 {
		t.Fatal("no MAC tests recorded")
	}
	if hoisted := dualHoisted.Value() - hoist0; hoisted == 0 {
		t.Fatal("no cells hoisted above group level — the dual engine is not amortizing")
	}
	groups := dualGroups.Value() - groups0
	if groups < tasks {
		t.Fatalf("fewer groups %d than tasks %d", groups, tasks)
	}
}
