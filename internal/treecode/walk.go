package treecode

import (
	"fmt"
	"math"
	"sync"
)

// This file is the list-based force engine: the classic split of a
// treecode walk (Barnes' "vectorization of tree traversals", and the
// production shape of Warren–Salmon codes) into two phases — an
// iterative, explicit-stack traversal that *appends* accepted cells and
// leaf sources into flat structure-of-arrays interaction lists, and
// tight kernels that *evaluate* monopole, quadrupole and
// particle–particle contributions over those contiguous arrays.
//
// The engine is bit-identical to the recursive walk (ForceAtRecursive):
// the traversal visits nodes in the exact DFS order of the recursion,
// and the lists record the *interleaving* of cell and particle
// contributions as segments (a run of cells followed by a run of
// particles), so evaluation replays the recursion's accumulation order
// with the recursion's exact expression shapes. Floating-point addition
// is not associative; the segments are what make "gather then compute"
// safe to substitute for the recursive walk everywhere.

// listSeg is one run of the interaction list in traversal order: cells
// cell contributions followed by parts particle contributions. A new
// segment starts whenever a cell is accepted after particles were
// appended, preserving the recursion's interleaved accumulation order.
type listSeg struct {
	cells, parts int32
}

// WalkArena is the reusable scratch of one tree walk: the SoA
// interaction lists and (for the group engine) the per-leaf target
// outputs. Arenas are owned per worker — the Forcer keeps one per
// internal/par pool slot — so the steady-state force path appends into
// warm buffers and performs no allocations. An arena must not be
// shared by concurrent walks.
type WalkArena struct {
	// Accepted-cell columns: centre of mass, monopole mass, and (when
	// the tree carries them) traceless quadrupole moments.
	cx, cy, cz, cm               []float64
	qxx, qyy, qzz, qxy, qxz, qyz []float64

	// Leaf-source columns. pidx carries each source's particle index and
	// is filled only by the group traversal (per-target self-exclusion
	// happens at evaluation time there; the per-particle traversal
	// excludes self while appending instead).
	px, py, pz, pm []float64
	pidx           []int32

	segs []listSeg

	// Group-walk target outputs: particle index and accumulated
	// acceleration for every real target of the leaf bucket.
	tIdx          []int32
	tax, tay, taz []float64

	// dual is the dual-tree engine's reusable traversal state.
	dual dualState

	// Pending telemetry, flushed to the package counters in batches so
	// the hot loops never touch an atomic.
	pendWalks, pendCells, pendParts, pendSaved uint64
	pendDualTasks, pendDualMAC                 uint64
	pendDualHoisted, pendDualGroups            uint64
}

// NewWalkArena returns an empty arena (counted by
// treecode.list.arena.alloc).
func NewWalkArena() *WalkArena {
	listArenaAlloc.Inc()
	return &WalkArena{}
}

// FlushTelemetry adds the arena's pending walk/list counts to the
// package-wide treecode.list.* counters. Callers flush at coarse
// boundaries (once per Forces call, once per rank) so walks stay
// atomic-free.
func (ar *WalkArena) FlushTelemetry() {
	if ar.pendWalks > 0 {
		listWalks.Add(ar.pendWalks)
		ar.pendWalks = 0
	}
	if ar.pendCells > 0 {
		listCells.Add(ar.pendCells)
		ar.pendCells = 0
	}
	if ar.pendParts > 0 {
		listParts.Add(ar.pendParts)
		ar.pendParts = 0
	}
	if ar.pendSaved > 0 {
		listGroupSaved.Add(ar.pendSaved)
		ar.pendSaved = 0
	}
	if ar.pendDualTasks > 0 {
		dualTasks.Add(ar.pendDualTasks)
		ar.pendDualTasks = 0
	}
	if ar.pendDualMAC > 0 {
		dualMAC.Add(ar.pendDualMAC)
		ar.pendDualMAC = 0
	}
	if ar.pendDualHoisted > 0 {
		dualHoisted.Add(ar.pendDualHoisted)
		ar.pendDualHoisted = 0
	}
	if ar.pendDualGroups > 0 {
		dualGroups.Add(ar.pendDualGroups)
		ar.pendDualGroups = 0
	}
}

// Cells and Parts report the list lengths of the most recent walk.
func (ar *WalkArena) Cells() int { return len(ar.cm) }

// Parts reports the leaf-source list length of the most recent walk.
func (ar *WalkArena) Parts() int { return len(ar.pm) }

// walkNode is one record of the rope-threaded walk index: the hot
// fields of a tree node, flattened into a compact array in exact DFS
// preorder. skip is the "rope" — the index of the next node to visit
// when this node's subtree is pruned (accepted as a cell, or a leaf) —
// so the traversal is a single forward scan with no stack, touching
// memory in strictly ascending order. size2 pre-folds the MAC's
// eligibility test: it holds size·size for nodes the MAC may accept and
// +Inf for single-particle leaves (the recursive walk's
// "!Leaf || Count > 1" guard), making the acceptance test one compare.
// The record is 56 bytes — at most one cache line per visit. The node's
// box lives in the cold parallel walkB array: the containment guard
// only matters when the target can possibly be inside the cell, and a
// point inside a box of side s is within s·√3 of any interior point, so
// d2 > 3·size2 proves the target outside without touching the box.
type walkNode struct {
	cx, cy, cz, m float64
	size2         float64
	skip          int32
	first, count  int32
	leaf          bool
}

// buildWalkIndex flattens the tree into walk order: the exact child
// order (octants 0..7) of the recursive walk, with empty subtrees
// (M == 0, which the recursion enters and immediately abandons) elided
// outright. Quadrupole moments go to a parallel stride-6 array so the
// monopole-only hot path stays compact.
func buildWalkIndex(t *Tree) {
	// Rebuilds reuse last build's backing arrays (the tree maintainer
	// calls this after every structural change); a first build, where
	// the slices are nil, sizes them exactly.
	wn, wb := t.walk[:0], t.walkB[:0]
	if cap(wn) < len(t.Nodes) {
		wn = make([]walkNode, 0, len(t.Nodes))
		wb = make([]Box, 0, len(t.Nodes))
	}
	wq := t.walkQ[:0]
	if t.Quadrupole && cap(wq) < 6*len(t.Nodes) {
		wq = make([]float64, 0, 6*len(t.Nodes))
	}
	var emit func(ni int32)
	emit = func(ni int32) {
		n := &t.Nodes[ni]
		if n.M == 0 {
			return
		}
		size := 2 * n.Box.Half
		size2 := size * size
		if n.Leaf && n.Count <= 1 {
			size2 = math.Inf(1)
		}
		idx := len(wn)
		wn = append(wn, walkNode{
			cx: n.CX, cy: n.CY, cz: n.CZ, m: n.M, size2: size2,
			first: int32(n.First), count: int32(n.Count), leaf: n.Leaf,
		})
		wb = append(wb, n.Box)
		if t.Quadrupole {
			wq = append(wq, n.QXX, n.QYY, n.QZZ, n.QXY, n.QXZ, n.QYZ)
		}
		if !n.Leaf {
			for oct := 0; oct < 8; oct++ {
				if ci := n.Children[oct]; ci >= 0 {
					emit(ci)
				}
			}
		}
		wn[idx].skip = int32(len(wn))
	}
	if len(t.Nodes) > 0 {
		emit(0)
	}
	t.walk = wn
	t.walkB = wb
	t.walkQ = wq
}

// walkIndex returns the tree's walk index, building it on first use.
// The index is derived state: construction costs one pass over the
// nodes and is amortized over every walk of the tree's lifetime.
func (t *Tree) walkIndex() ([]walkNode, []Box, []float64) {
	t.walkOnce.Do(func() { buildWalkIndex(t) })
	return t.walk, t.walkB, t.walkQ
}

// appendInteractions runs the per-particle traversal over the walk
// index: the exact DFS of ForceAtRecursive as a forward scan, with the
// same acceptance logic — the MAC applied to multi-particle cells (the
// size2 = +Inf encoding), the containment guard keeping the target's
// own leaf open, and self excluded while appending.
//
// Every list lives in a local variable for the duration of the walk and
// is written back to the arena once at the end: appends then take the
// in-register fast path with no write barriers (assigning a slice
// header into the heap-allocated arena would check the barrier on every
// interaction — it dominated the walk when this loop wrote through ar).
func (t *Tree) appendInteractions(ar *WalkArena, x, y, z float64, selfIdx int, theta float64) {
	wn, wb, wq := t.walkIndex()
	th2 := theta * theta
	srcs := t.Sources
	quad := t.Quadrupole
	cx, cy, cz, cm := ar.cx[:0], ar.cy[:0], ar.cz[:0], ar.cm[:0]
	qxx, qyy, qzz := ar.qxx[:0], ar.qyy[:0], ar.qzz[:0]
	qxy, qxz, qyz := ar.qxy[:0], ar.qxz[:0], ar.qyz[:0]
	px, py, pz, pm := ar.px[:0], ar.py[:0], ar.pz[:0], ar.pm[:0]
	segs := ar.segs[:0]
	// The current segment accumulates in two counters and flushes when a
	// cell is accepted after particles were appended — the transition
	// that starts a new run.
	var segCells, segParts int32
	for i := 0; i < len(wn); {
		n := &wn[i]
		dx := n.cx - x
		dy := n.cy - y
		dz := n.cz - z
		d2 := dx*dx + dy*dy + dz*dz
		if n.size2 < th2*d2 && (d2 > 3*n.size2 || !wb[i].Contains(x, y, z)) {
			if segParts > 0 {
				segs = append(segs, listSeg{segCells, segParts})
				segCells, segParts = 0, 0
			}
			segCells++
			cx = append(cx, n.cx)
			cy = append(cy, n.cy)
			cz = append(cz, n.cz)
			cm = append(cm, n.m)
			if quad {
				q := wq[6*i : 6*i+6]
				qxx = append(qxx, q[0])
				qyy = append(qyy, q[1])
				qzz = append(qzz, q[2])
				qxy = append(qxy, q[3])
				qxz = append(qxz, q[4])
				qyz = append(qyz, q[5])
			}
			i = int(n.skip)
			continue
		}
		if n.leaf {
			for j := n.first; j < n.first+n.count; j++ {
				s := &srcs[j]
				if s.Index == selfIdx && s.Index >= 0 {
					continue
				}
				px = append(px, s.X)
				py = append(py, s.Y)
				pz = append(pz, s.Z)
				pm = append(pm, s.M)
				segParts++
			}
			i = int(n.skip)
			continue
		}
		i++
	}
	if segCells > 0 || segParts > 0 {
		segs = append(segs, listSeg{segCells, segParts})
	}
	ar.cx, ar.cy, ar.cz, ar.cm = cx, cy, cz, cm
	ar.qxx, ar.qyy, ar.qzz = qxx, qyy, qzz
	ar.qxy, ar.qxz, ar.qyz = qxy, qxz, qyz
	ar.px, ar.py, ar.pz, ar.pm = px, py, pz, pm
	ar.segs = segs
	ar.pidx = ar.pidx[:0]
	ar.pendWalks++
	ar.pendCells += uint64(len(cm))
	ar.pendParts += uint64(len(pm))
}

// evalCellsMono evaluates cell monopoles [lo,hi) of the list for a
// target at (x,y,z). The expression shape is copied verbatim from the
// recursive walk — mono := M·rinv·rinv2 with rinv2 := rinv·rinv — so
// the accumulated bits match it exactly.
func (ar *WalkArena) evalCellsMono(x, y, z, eps2 float64, lo, hi int, ax, ay, az float64) (float64, float64, float64) {
	cx, cy, cz, cm := ar.cx, ar.cy, ar.cz, ar.cm
	for i := lo; i < hi; i++ {
		dx := cx[i] - x
		dy := cy[i] - y
		dz := cz[i] - z
		d2 := dx*dx + dy*dy + dz*dz
		r2 := d2 + eps2
		rinv := 1 / math.Sqrt(r2)
		rinv2 := rinv * rinv
		mono := cm[i] * rinv * rinv2
		ax += mono * dx
		ay += mono * dy
		az += mono * dz
	}
	return ax, ay, az
}

// evalCellsQuad is evalCellsMono plus the traceless-quadrupole term,
// again with the recursive walk's exact expression shapes.
func (ar *WalkArena) evalCellsQuad(x, y, z, eps2 float64, lo, hi int, ax, ay, az float64) (float64, float64, float64) {
	cx, cy, cz, cm := ar.cx, ar.cy, ar.cz, ar.cm
	qxx, qyy, qzz := ar.qxx, ar.qyy, ar.qzz
	qxy, qxz, qyz := ar.qxy, ar.qxz, ar.qyz
	for i := lo; i < hi; i++ {
		dx := cx[i] - x
		dy := cy[i] - y
		dz := cz[i] - z
		d2 := dx*dx + dy*dy + dz*dz
		r2 := d2 + eps2
		rinv := 1 / math.Sqrt(r2)
		rinv2 := rinv * rinv
		mono := cm[i] * rinv * rinv2
		ax += mono * dx
		ay += mono * dy
		az += mono * dz
		qx := qxx[i]*dx + qxy[i]*dy + qxz[i]*dz
		qy := qxy[i]*dx + qyy[i]*dy + qyz[i]*dz
		qz := qxz[i]*dx + qyz[i]*dy + qzz[i]*dz
		rinv5 := rinv2 * rinv2 * rinv
		rqr := qx*dx + qy*dy + qz*dz
		c1 := -rinv5
		c2 := 2.5 * rqr * rinv5 * rinv2
		ax += c1*qx + c2*dx
		ay += c1*qy + c2*dy
		az += c1*qz + c2*dz
	}
	return ax, ay, az
}

// evalParts evaluates leaf sources [lo,hi) of the list, with the
// recursive leaf loop's expression shape (f := m·rinv·rinv·rinv — note
// the association differs from the cell monopole's, deliberately).
func (ar *WalkArena) evalParts(x, y, z, eps2 float64, lo, hi int, ax, ay, az float64) (float64, float64, float64) {
	sx, sy, sz, sm := ar.px, ar.py, ar.pz, ar.pm
	for i := lo; i < hi; i++ {
		px := sx[i] - x
		py := sy[i] - y
		pz := sz[i] - z
		r2 := px*px + py*py + pz*pz + eps2
		rinv := 1 / math.Sqrt(r2)
		f := sm[i] * rinv * rinv * rinv
		ax += f * px
		ay += f * py
		az += f * pz
	}
	return ax, ay, az
}

// evalPartsExcept is evalParts with per-target self-exclusion by
// particle index — the group engine's leaf kernel, where one list
// serves every target of a bucket. Returns the number of excluded
// entries so the caller's PP count matches the per-particle walk's.
func (ar *WalkArena) evalPartsExcept(x, y, z, eps2 float64, selfIdx int32, lo, hi int, ax, ay, az float64) (float64, float64, float64, int) {
	sx, sy, sz, sm, idx := ar.px, ar.py, ar.pz, ar.pm, ar.pidx
	skipped := 0
	for i := lo; i < hi; i++ {
		if idx[i] == selfIdx {
			skipped++
			continue
		}
		px := sx[i] - x
		py := sy[i] - y
		pz := sz[i] - z
		r2 := px*px + py*py + pz*pz + eps2
		rinv := 1 / math.Sqrt(r2)
		f := sm[i] * rinv * rinv * rinv
		ax += f * px
		ay += f * py
		az += f * pz
	}
	return ax, ay, az, skipped
}

// ForceAtList evaluates the softened acceleration at a point with the
// list engine: one traversal into the arena's interaction lists, then
// segment-ordered evaluation. Bit-identical to ForceAtRecursive for
// every theta/eps/Quadrupole/bucket combination; the arena is caller
// scratch and carries no state between walks.
func (t *Tree) ForceAtList(x, y, z float64, selfIdx int, theta, eps float64, st *Stats, ar *WalkArena) (ax, ay, az float64) {
	t.appendInteractions(ar, x, y, z, selfIdx, theta)
	eps2 := softening2(eps)
	co, po := 0, 0
	for _, seg := range ar.segs {
		if seg.cells > 0 {
			if t.Quadrupole {
				ax, ay, az = ar.evalCellsQuad(x, y, z, eps2, co, co+int(seg.cells), ax, ay, az)
			} else {
				ax, ay, az = ar.evalCellsMono(x, y, z, eps2, co, co+int(seg.cells), ax, ay, az)
			}
			co += int(seg.cells)
		}
		if seg.parts > 0 {
			ax, ay, az = ar.evalParts(x, y, z, eps2, po, po+int(seg.parts), ax, ay, az)
			po += int(seg.parts)
		}
	}
	st.PC += uint64(co)
	st.PP += uint64(po)
	return ax, ay, az
}

// forceArenas pools arenas for the thin ForceAt compatibility wrapper,
// so callers without a per-worker arena still walk allocation-free at
// steady state.
var forceArenas = sync.Pool{}

// Engine selects the force-evaluation engine of a Forcer or a parallel
// configuration. The zero value is EngineAuto: the engine is picked by
// the error budget (see Forcer.ErrorBudget) — the amortized dual-tree
// engine when an RMS-bounded deviation is acceptable (the default), the
// bit-identical list engine when the budget demands exactness.
type Engine int

const (
	// EngineAuto resolves through the error budget: a budget of at
	// least 1 (in units of the exact walk's own RMS error against
	// direct summation — the default) selects EngineDual, whose
	// conservative MAC keeps it at or below that error; a smaller
	// budget demands bit-exactness and falls back to EngineList.
	EngineAuto Engine = iota
	// EngineList is the exact engine: explicit-stack traversal into SoA
	// interaction lists, evaluated in flat kernels. Bit-identical to
	// EngineRecursive (and to the PR 5 default) for every
	// theta/eps/Quadrupole/bucket combination.
	EngineList
	// EngineRecursive is the original closure-recursive walk, retained
	// as the golden reference and benchmark baseline.
	EngineRecursive
	// EngineGroup amortizes one traversal per target group of up to
	// GroupSize particles under a conservative group MAC. RMS-bounded
	// by the exact walk's error, not bit-identical to it.
	EngineGroup
	// EngineDual is the mutual/dual-tree traversal: the tree is walked
	// against itself, so one MAC decision accepts a source cell for a
	// whole target subtree and is inherited by every group below it.
	// Same acceptance criterion (and therefore the same error bound) as
	// EngineGroup, with both sides of the interaction amortized.
	EngineDual
)

// String returns the flag spelling of the engine.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineList:
		return "list"
	case EngineRecursive:
		return "recursive"
	case EngineGroup:
		return "group"
	case EngineDual:
		return "dual"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// ParseEngine parses a -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "list":
		return EngineList, nil
	case "recursive":
		return EngineRecursive, nil
	case "group", "groupwalk":
		return EngineGroup, nil
	case "dual":
		return EngineDual, nil
	}
	return 0, fmt.Errorf("treecode: unknown engine %q (want auto, list, recursive, group or dual)", s)
}

// DefaultErrorBudget is the error budget EngineAuto assumes when none
// is set: exactly the exact walk's own accuracy. The budget is measured
// in units of the exact theta-walk's RMS force error against direct
// summation, so 1 reads "no worse than the reference engine" — which
// the group/dual engines' conservative MAC guarantees (they open
// strictly more cells, and measure ~2x better). Any budget below 1 can
// only be met by bit-exactness and selects the list engine.
const DefaultErrorBudget = 1.0

// ResolveEngine maps an engine selection plus an error budget to the
// concrete engine a force computation runs. budget == 0 means "unset"
// (DefaultErrorBudget); budget < 1 demands exactness. An explicit
// non-auto engine always wins.
func ResolveEngine(e Engine, budget float64) Engine {
	if e != EngineAuto {
		return e
	}
	if budget == 0 {
		budget = DefaultErrorBudget
	}
	if budget < 1 {
		return EngineList
	}
	return EngineDual
}

// softening2 is the one place the Plummer softening length becomes the
// squared softening every force kernel consumes — hoisted out of the
// recursive, list, group and dual paths so they cannot drift.
func softening2(eps float64) float64 { return eps * eps }
