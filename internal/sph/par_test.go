package sph

import (
	"testing"

	"repro/internal/nbody"
)

// TestAccelerationsBitIdentical asserts the parallel SPH density and
// force loops are bit-identical to serial at worker counts 1, 2 and 8.
func TestAccelerationsBitIdentical(t *testing.T) {
	run := func(w int) (*Gas, []float64) {
		s := nbody.NewPlummer(800, 0.4, 11)
		g, err := NewGas(s, 0.1, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		g.Workers = w
		dudt, err := g.Accelerations()
		if err != nil {
			t.Fatal(err)
		}
		return g, dudt
	}
	ref, refDudt := run(1)
	for _, w := range []int{2, 8} {
		got, gotDudt := run(w)
		if got.NeighborCount != ref.NeighborCount {
			t.Fatalf("workers=%d neighbour count %v != serial %v", w, got.NeighborCount, ref.NeighborCount)
		}
		for i := 0; i < ref.N(); i++ {
			if got.Rho[i] != ref.Rho[i] || got.P[i] != ref.P[i] {
				t.Fatalf("workers=%d: density/pressure of particle %d differs from serial", w, i)
			}
			if got.AX[i] != ref.AX[i] || got.AY[i] != ref.AY[i] || got.AZ[i] != ref.AZ[i] {
				t.Fatalf("workers=%d: acceleration of particle %d differs from serial", w, i)
			}
			if gotDudt[i] != refDudt[i] {
				t.Fatalf("workers=%d: du/dt of particle %d differs from serial", w, i)
			}
		}
	}
}
