// Package sph implements smoothed particle hydrodynamics on top of the
// treecode library — the second of the paper's §3.5.1 client codes ("the
// vortex particle method requires only 2500 lines interfaced to the same
// treecode library. Smoothed particle hydrodynamics takes 3000 lines.").
// The treecode supplies neighbour finding (range queries over the hashed
// octree) and, when self-gravity is enabled, the gravitational
// accelerations; this package supplies the hydrodynamics: the M4 cubic
// spline kernel, density summation, an adiabatic equation of state,
// symmetric pressure forces with Monaghan artificial viscosity, and the
// specific-internal-energy equation.
package sph

import (
	"fmt"
	"math"

	"repro/internal/nbody"
	"repro/internal/par"
	"repro/internal/treecode"
)

// Kernel is the M4 cubic spline smoothing kernel in 3D with support 2h.
type Kernel struct {
	H     float64 // smoothing length
	sigma float64 // normalization 1/(π h³)
}

// NewKernel returns the kernel for a smoothing length h > 0.
func NewKernel(h float64) (*Kernel, error) {
	if h <= 0 {
		return nil, fmt.Errorf("sph: non-positive smoothing length")
	}
	return &Kernel{H: h, sigma: 1 / (math.Pi * h * h * h)}, nil
}

// W evaluates the kernel at separation r ≥ 0.
func (k *Kernel) W(r float64) float64 {
	q := r / k.H
	switch {
	case q < 0:
		return 0
	case q <= 1:
		return k.sigma * (1 - 1.5*q*q + 0.75*q*q*q)
	case q <= 2:
		d := 2 - q
		return k.sigma * 0.25 * d * d * d
	}
	return 0
}

// GradWOverR returns (1/r)·dW/dr at separation r, the factor that
// multiplies the separation vector in force sums (finite as r→0).
func (k *Kernel) GradWOverR(r float64) float64 {
	q := r / k.H
	h2 := k.H * k.H
	switch {
	case q <= 0:
		return k.sigma * (-3) / h2 // limit of the inner branch
	case q <= 1:
		return k.sigma / h2 * (-3 + 2.25*q)
	case q <= 2:
		d := 2 - q
		return -k.sigma * 0.75 * d * d / (q * h2)
	}
	return 0
}

// Support returns the kernel's compact-support radius (2h).
func (k *Kernel) Support() float64 { return 2 * k.H }

// Gas is a particle gas. Positions, velocities and masses live in the
// embedded nbody.System (so the treecode and the renderer work on it
// unchanged); this struct adds the thermodynamic state.
type Gas struct {
	*nbody.System
	// U is specific internal energy per particle.
	U []float64
	// Rho and P are filled by Step.
	Rho, P []float64
	// Gamma is the adiabatic index (5/3 monatomic).
	Gamma float64
	// Kernel smoothing.
	Kernel *Kernel
	// Viscosity parameters (Monaghan α, β); zero disables.
	AlphaVisc, BetaVisc float64
	// SelfGravity enables treecode gravity alongside pressure forces.
	SelfGravity bool
	// Theta is the gravity MAC (used only with SelfGravity).
	Theta float64
	// Engine selects the gravity force engine (list by default);
	// GroupWalk amortizes one traversal per leaf bucket. Both apply
	// only with SelfGravity.
	Engine    treecode.Engine
	GroupWalk bool
	// grav is the lazily created persistent gravity forcer; keeping it
	// across steps lets its per-worker walk arenas stay warm, so the
	// steady-state gravity sweep allocates nothing per walk.
	grav *treecode.Forcer
	// Workers is the host worker-pool width for the density and force
	// loops; 0 follows par.Workers(). Both loops are gather-form (each
	// particle accumulates only into its own slots), so results are
	// bit-identical at every width.
	Workers int
	// NeighborCount reports the average neighbours in the last Step.
	NeighborCount float64
}

// sphGrain is the per-chunk particle count of the parallel SPH loops.
const sphGrain = 256

// NewGas wraps a particle system with uniform specific internal energy.
func NewGas(s *nbody.System, h, u0 float64) (*Gas, error) {
	k, err := NewKernel(h)
	if err != nil {
		return nil, err
	}
	if u0 <= 0 {
		return nil, fmt.Errorf("sph: non-positive internal energy")
	}
	n := s.N()
	g := &Gas{
		System:    s,
		U:         make([]float64, n),
		Rho:       make([]float64, n),
		P:         make([]float64, n),
		Gamma:     5.0 / 3.0,
		Kernel:    k,
		AlphaVisc: 1.0,
		BetaVisc:  2.0,
		Theta:     0.7,
	}
	for i := range g.U {
		g.U[i] = u0
	}
	return g, nil
}

// ComputeDensity fills Rho (and P via the EOS) by kernel summation over
// tree-found neighbours. Returns the tree for reuse.
func (g *Gas) ComputeDensity() (*treecode.Tree, error) {
	t, err := treecode.Build(treecode.SourcesFromSystem(g.System), treecode.BuildOptions{Bucket: 16, Workers: g.Workers})
	if err != nil {
		return nil, err
	}
	support := g.Kernel.Support()
	pool := par.New(g.Workers)
	totalNbr := par.Reduce(pool, g.N(), sphGrain, 0,
		func(lo, hi int) int {
			nbr := 0
			scratch := make([]int, 0, 64)
			for i := lo; i < hi; i++ {
				scratch = g.neighborsOf(t, i, support, scratch[:0])
				nbr += len(scratch)
				rho := 0.0
				for _, si := range scratch {
					s := t.Sources[si]
					dx := s.X - g.X[i]
					dy := s.Y - g.Y[i]
					dz := s.Z - g.Z[i]
					r := math.Sqrt(dx*dx + dy*dy + dz*dz)
					rho += s.M * g.Kernel.W(r)
				}
				g.Rho[i] = rho
				g.P[i] = (g.Gamma - 1) * rho * g.U[i]
			}
			return nbr
		},
		func(a, b int) int { return a + b })
	g.NeighborCount = float64(totalNbr) / float64(g.N())
	return t, nil
}

func (g *Gas) neighborsOf(t *treecode.Tree, i int, radius float64, out []int) []int {
	return t.Neighbors(g.X[i], g.Y[i], g.Z[i], radius, out)
}

// Accelerations computes hydrodynamic (and optionally gravitational)
// accelerations into AX/AY/AZ and returns dU/dt for each particle.
func (g *Gas) Accelerations() ([]float64, error) {
	t, err := g.ComputeDensity()
	if err != nil {
		return nil, err
	}
	n := g.N()
	dudt := make([]float64, n)
	for i := 0; i < n; i++ {
		g.AX[i], g.AY[i], g.AZ[i] = 0, 0, 0
	}
	support := g.Kernel.Support()
	cs := make([]float64, n)
	for i := 0; i < n; i++ {
		cs[i] = math.Sqrt(g.Gamma * g.P[i] / math.Max(g.Rho[i], 1e-300))
	}
	pool := par.New(g.Workers)
	pool.For(n, sphGrain, func(lo, hi int) {
		scratch := make([]int, 0, 64)
		for i := lo; i < hi; i++ {
			scratch = g.neighborsOf(t, i, support, scratch[:0])
			pi := g.P[i] / (g.Rho[i] * g.Rho[i])
			for _, si := range scratch {
				j := t.Sources[si].Index
				if j == i || j < 0 {
					continue
				}
				dx := g.X[i] - g.X[j]
				dy := g.Y[i] - g.Y[j]
				dz := g.Z[i] - g.Z[j]
				r := math.Sqrt(dx*dx + dy*dy + dz*dz)
				gw := g.Kernel.GradWOverR(r)
				pj := g.P[j] / (g.Rho[j] * g.Rho[j])

				// Monaghan artificial viscosity.
				visc := 0.0
				dvx := g.VX[i] - g.VX[j]
				dvy := g.VY[i] - g.VY[j]
				dvz := g.VZ[i] - g.VZ[j]
				vdotr := dvx*dx + dvy*dy + dvz*dz
				if g.AlphaVisc > 0 && vdotr < 0 {
					h := g.Kernel.H
					mu := h * vdotr / (r*r + 0.01*h*h)
					cij := 0.5 * (cs[i] + cs[j])
					rhoij := 0.5 * (g.Rho[i] + g.Rho[j])
					visc = (-g.AlphaVisc*cij*mu + g.BetaVisc*mu*mu) / rhoij
				}

				f := (pi + pj + visc) * gw
				// gw is (1/r)dW/dr < 0; force on i points away from j for
				// positive pressure: a_i = -m_j (…) ∇_i W = -m_j (…) gw · d.
				g.AX[i] -= g.M[j] * f * dx
				g.AY[i] -= g.M[j] * f * dy
				g.AZ[i] -= g.M[j] * f * dz
				// Energy equation: du_i/dt = +½ Σ m_j (…) v_ij·∇_iW, with
				// ∇_iW = gw·d; separation (v_ij·d > 0, gw < 0) cools.
				dudt[i] += 0.5 * g.M[j] * (pi + pj + visc) * gw * vdotr
			}
		}
	})
	if g.SelfGravity {
		if g.grav == nil {
			g.grav = &treecode.Forcer{Theta: g.Theta, Workers: g.Workers, Engine: g.Engine, GroupWalk: g.GroupWalk}
		}
		gx := make([]float64, n)
		gy := make([]float64, n)
		gz := make([]float64, n)
		copy(gx, g.AX)
		copy(gy, g.AY)
		copy(gz, g.AZ)
		if err := g.grav.Forces(g.System); err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			g.AX[i] += gx[i]
			g.AY[i] += gy[i]
			g.AZ[i] += gz[i]
		}
	}
	return dudt, nil
}

// Step advances the gas by one kick-drift-kick step of size dt,
// integrating velocities, positions and internal energy together.
func (g *Gas) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("sph: non-positive dt")
	}
	dudt, err := g.Accelerations()
	if err != nil {
		return err
	}
	n := g.N()
	for i := 0; i < n; i++ {
		g.VX[i] += 0.5 * dt * g.AX[i]
		g.VY[i] += 0.5 * dt * g.AY[i]
		g.VZ[i] += 0.5 * dt * g.AZ[i]
		g.U[i] += 0.5 * dt * dudt[i]
		if g.U[i] < 1e-12 {
			g.U[i] = 1e-12
		}
		g.X[i] += dt * g.VX[i]
		g.Y[i] += dt * g.VY[i]
		g.Z[i] += dt * g.VZ[i]
	}
	dudt, err = g.Accelerations()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		g.VX[i] += 0.5 * dt * g.AX[i]
		g.VY[i] += 0.5 * dt * g.AY[i]
		g.VZ[i] += 0.5 * dt * g.AZ[i]
		g.U[i] += 0.5 * dt * dudt[i]
		if g.U[i] < 1e-12 {
			g.U[i] = 1e-12
		}
	}
	return nil
}

// ThermalEnergy returns Σ mᵢuᵢ.
func (g *Gas) ThermalEnergy() float64 {
	var e float64
	for i := 0; i < g.N(); i++ {
		e += g.M[i] * g.U[i]
	}
	return e
}

// KineticEnergy returns ½Σ mᵢvᵢ².
func (g *Gas) KineticEnergy() float64 {
	var e float64
	for i := 0; i < g.N(); i++ {
		e += 0.5 * g.M[i] * (g.VX[i]*g.VX[i] + g.VY[i]*g.VY[i] + g.VZ[i]*g.VZ[i])
	}
	return e
}
