package sph

import (
	"math"
	"testing"

	"repro/internal/nbody"
	"repro/internal/treecode"
)

func TestKernelNormalization(t *testing.T) {
	// ∫ W(r) 4πr² dr over [0, 2h] must be 1.
	k, err := NewKernel(0.7)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 200000
	dr := k.Support() / steps
	integral := 0.0
	for i := 0; i < steps; i++ {
		r := (float64(i) + 0.5) * dr
		integral += k.W(r) * 4 * math.Pi * r * r * dr
	}
	if math.Abs(integral-1) > 1e-4 {
		t.Fatalf("kernel integral = %v, want 1", integral)
	}
}

func TestKernelProperties(t *testing.T) {
	k, _ := NewKernel(1.0)
	if k.W(0) <= 0 {
		t.Fatal("W(0) not positive")
	}
	if k.W(2.0) != 0 || k.W(3.0) != 0 {
		t.Fatal("kernel not compactly supported at 2h")
	}
	// Monotone decreasing on [0, 2h].
	prev := k.W(0)
	for r := 0.05; r <= 2.0; r += 0.05 {
		w := k.W(r)
		if w > prev+1e-14 {
			t.Fatalf("kernel not monotone at r=%v", r)
		}
		prev = w
	}
	// Gradient: negative (inward) inside the support, continuous-ish at
	// the branch point q=1.
	if k.GradWOverR(0.5) >= 0 {
		t.Fatal("gradient not negative inside support")
	}
	a := k.GradWOverR(0.999)
	b := k.GradWOverR(1.001)
	if math.Abs(a-b) > 0.01*math.Abs(a) {
		t.Fatalf("gradient discontinuous at q=1: %v vs %v", a, b)
	}
	if _, err := NewKernel(0); err == nil {
		t.Fatal("h=0 accepted")
	}
}

// latticeGas builds a uniform cubic lattice of gas with density ~rho0.
func latticeGas(t *testing.T, side int, u0 float64) *Gas {
	t.Helper()
	n := side * side * side
	s := nbody.NewSystem(n)
	spacing := 1.0 / float64(side)
	idx := 0
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			for k := 0; k < side; k++ {
				s.X[idx] = (float64(i) + 0.5) * spacing
				s.Y[idx] = (float64(j) + 0.5) * spacing
				s.Z[idx] = (float64(k) + 0.5) * spacing
				s.M[idx] = 1.0 / float64(n) // total mass 1 in unit volume
				idx++
			}
		}
	}
	g, err := NewGas(s, 1.3*spacing, u0)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDensitySummationOnLattice(t *testing.T) {
	// Interior particles of a unit-density lattice must measure ρ ≈ 1.
	g := latticeGas(t, 10, 1.0)
	if _, err := g.ComputeDensity(); err != nil {
		t.Fatal(err)
	}
	var interior []float64
	for i := 0; i < g.N(); i++ {
		if g.X[i] > 0.3 && g.X[i] < 0.7 && g.Y[i] > 0.3 && g.Y[i] < 0.7 && g.Z[i] > 0.3 && g.Z[i] < 0.7 {
			interior = append(interior, g.Rho[i])
		}
	}
	if len(interior) == 0 {
		t.Fatal("no interior particles")
	}
	var mean float64
	for _, r := range interior {
		mean += r
	}
	mean /= float64(len(interior))
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("interior density %v, want ≈1", mean)
	}
	if g.NeighborCount < 20 || g.NeighborCount > 200 {
		t.Fatalf("average neighbour count %v implausible", g.NeighborCount)
	}
}

func TestNeighborsMatchBruteForce(t *testing.T) {
	s := nbody.NewUniformCube(400, 9)
	tr, err := treecode.Build(treecode.SourcesFromSystem(s), treecode.BuildOptions{Bucket: 8})
	if err != nil {
		t.Fatal(err)
	}
	const radius = 0.18
	for probe := 0; probe < 20; probe++ {
		x, y, z := s.X[probe*17%400], s.Y[probe*17%400], s.Z[probe*17%400]
		got := tr.Neighbors(x, y, z, radius, nil)
		want := map[int]bool{}
		for i := range tr.Sources {
			src := tr.Sources[i]
			dx, dy, dz := src.X-x, src.Y-y, src.Z-z
			if dx*dx+dy*dy+dz*dz <= radius*radius {
				want[i] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("probe %d: %d neighbours, brute force %d", probe, len(got), len(want))
		}
		for _, gi := range got {
			if !want[gi] {
				t.Fatalf("probe %d: spurious neighbour %d", probe, gi)
			}
		}
	}
}

func TestPressureForcesConserveMomentum(t *testing.T) {
	// The symmetric (Pi/ρi² + Pj/ρj²) formulation conserves momentum
	// exactly up to roundoff.
	g := latticeGas(t, 6, 1.0)
	// Perturb so forces are nonzero.
	for i := 0; i < g.N(); i++ {
		g.X[i] += 0.004 * math.Sin(float64(7*i))
		g.Y[i] += 0.004 * math.Cos(float64(3*i))
	}
	if _, err := g.Accelerations(); err != nil {
		t.Fatal(err)
	}
	var fx, fy, fz, fmag float64
	for i := 0; i < g.N(); i++ {
		fx += g.M[i] * g.AX[i]
		fy += g.M[i] * g.AY[i]
		fz += g.M[i] * g.AZ[i]
		fmag += g.M[i] * (math.Abs(g.AX[i]) + math.Abs(g.AY[i]) + math.Abs(g.AZ[i]))
	}
	net := math.Abs(fx) + math.Abs(fy) + math.Abs(fz)
	if fmag == 0 {
		t.Fatal("no forces at all")
	}
	if net > 1e-10*fmag {
		t.Fatalf("net force %g not ≪ total force scale %g", net, fmag)
	}
}

func TestUniformGasStaysNearlyStill(t *testing.T) {
	// A uniform lattice with uniform pressure has (nearly) zero net
	// force on interior particles.
	g := latticeGas(t, 8, 1.0)
	if _, err := g.Accelerations(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		if g.X[i] > 0.35 && g.X[i] < 0.65 && g.Y[i] > 0.35 && g.Y[i] < 0.65 && g.Z[i] > 0.35 && g.Z[i] < 0.65 {
			a := math.Abs(g.AX[i]) + math.Abs(g.AY[i]) + math.Abs(g.AZ[i])
			// Pressure scale: P/(ρh) ~ (2/3)/0.16 ≈ 4; interior residuals
			// must be far below it.
			if a > 0.7 {
				t.Fatalf("interior particle %d accelerating at %g in uniform gas", i, a)
			}
		}
	}
}

func TestGasBallExpandsAndCools(t *testing.T) {
	// A hot ball of gas in vacuum expands: kinetic energy grows, thermal
	// energy falls, and their sum is approximately conserved (adiabatic,
	// no gravity).
	s := nbody.NewPlummer(300, 0.3, 11)
	for i := range s.VX {
		s.VX[i], s.VY[i], s.VZ[i] = 0, 0, 0
	}
	g, err := NewGas(s, 0.12, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	g.AlphaVisc = 1.0
	e0 := g.ThermalEnergy() + g.KineticEnergy()
	if g.KineticEnergy() != 0 {
		t.Fatal("gas not at rest initially")
	}
	for step := 0; step < 25; step++ {
		if err := g.Step(0.002); err != nil {
			t.Fatal(err)
		}
	}
	ek := g.KineticEnergy()
	eth := g.ThermalEnergy()
	if ek <= 0 {
		t.Fatal("ball did not start expanding")
	}
	if eth >= 2.0 { // started at Σmu = 2.0 × total mass 1
		t.Fatalf("thermal energy did not fall: %v", eth)
	}
	drift := math.Abs(ek+eth-e0) / e0
	if drift > 0.05 {
		t.Fatalf("energy drift %v during adiabatic expansion", drift)
	}
}

func TestSelfGravityPullsBallTogether(t *testing.T) {
	// Cold gas with self-gravity: the ball contracts (kinetic energy
	// grows via infall, radius shrinks).
	s := nbody.NewPlummer(200, 0.5, 4)
	for i := range s.VX {
		s.VX[i], s.VY[i], s.VZ[i] = 0, 0, 0
	}
	g, err := NewGas(s, 0.15, 0.01) // nearly pressureless
	if err != nil {
		t.Fatal(err)
	}
	g.SelfGravity = true
	r0 := rmsRadius(s)
	for step := 0; step < 15; step++ {
		if err := g.Step(0.005); err != nil {
			t.Fatal(err)
		}
	}
	if r1 := rmsRadius(s); r1 >= r0 {
		t.Fatalf("self-gravitating cold gas expanded: %v → %v", r0, r1)
	}
}

func rmsRadius(s *nbody.System) float64 {
	var sum float64
	for i := 0; i < s.N(); i++ {
		sum += s.X[i]*s.X[i] + s.Y[i]*s.Y[i] + s.Z[i]*s.Z[i]
	}
	return math.Sqrt(sum / float64(s.N()))
}

func TestGasValidation(t *testing.T) {
	s := nbody.NewUniformCube(8, 1)
	if _, err := NewGas(s, 0, 1); err == nil {
		t.Fatal("h=0 accepted")
	}
	if _, err := NewGas(s, 0.1, 0); err == nil {
		t.Fatal("u0=0 accepted")
	}
	g, _ := NewGas(s, 0.3, 1)
	if err := g.Step(0); err == nil {
		t.Fatal("dt=0 accepted")
	}
}
