package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassOfCoversAllOps(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		// Must not panic, must be in range.
		c := ClassOf(op)
		if c >= NumClasses {
			t.Fatalf("ClassOf(%s) = %d out of range", op, c)
		}
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "op(") {
			t.Fatalf("op %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("ops %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestIsFlopMatchesPaperConvention(t *testing.T) {
	flops := []Op{FAdd, FSub, FMul, FDiv, FSqrt, FNeg, FAbs}
	for _, op := range flops {
		if !IsFlop(op) {
			t.Errorf("IsFlop(%s) = false", op)
		}
	}
	notFlops := []Op{FMov, FMovI, FLd, FSt, CvtIF, CvtFI, FCmp, Add, Ld}
	for _, op := range notFlops {
		if IsFlop(op) {
			t.Errorf("IsFlop(%s) = true", op)
		}
	}
}

func TestAssembleBasicProgram(t *testing.T) {
	src := `
		; sum integers 1..10 into r1
		movi r1, 0
		movi r2, 1
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		cmpi r2, 10
		jle  loop
		hlt
	`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	s := NewState(0)
	if err := Run(p, s, nil, 0); err != nil {
		t.Fatal(err)
	}
	if s.R[1] != 55 {
		t.Fatalf("sum = %d, want 55", s.R[1])
	}
}

func TestAssembleFPProgram(t *testing.T) {
	src := `
		fmovi f0, 2.0
		fsqrt f1, f0
		fmul  f2, f1, f1
		hlt
	`
	p := MustAssemble(src)
	s := NewState(0)
	if err := Run(p, s, nil, 0); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.F[1]-math.Sqrt2) > 1e-15 {
		t.Fatalf("f1 = %v, want sqrt(2)", s.F[1])
	}
	if math.Abs(s.F[2]-2) > 1e-15 {
		t.Fatalf("f2 = %v, want 2", s.F[2])
	}
}

func TestAssembleMemoryOps(t *testing.T) {
	src := `
		movi r1, 4
		movi r2, 99
		st   [r1+1], r2
		ld   r3, [r1+1]
		fmovi f0, 3.25
		fst  [r1-2], f0
		fld  f1, [r1-2]
		hlt
	`
	p := MustAssemble(src)
	s := NewState(16)
	if err := Run(p, s, nil, 0); err != nil {
		t.Fatal(err)
	}
	if s.R[3] != 99 {
		t.Fatalf("r3 = %d, want 99", s.R[3])
	}
	if s.F[1] != 3.25 {
		t.Fatalf("f1 = %v, want 3.25", s.F[1])
	}
	if s.LoadI(5) != 99 {
		t.Fatalf("mem[5] = %d, want 99", s.LoadI(5))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown mnemonic", "frobnicate r1, r2"},
		{"bad register", "movi r99, 1"},
		{"bad operand count", "add r1, r2"},
		{"undefined label", "jmp nowhere"},
		{"duplicate label", "x:\nnop\nx:\nhlt"},
		{"bad immediate", "movi r1, banana"},
		{"bad fp immediate", "fmovi f0, banana"},
		{"bad memory operand", "ld r1, r2"},
		{"fp reg where int expected", "movi f1, 3"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: Assemble(%q) succeeded, want error", c.name, c.src)
		}
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := `
		movi r1, 10
		fmovi f0, 0.5
	top:
		addi r1, r1, -1
		fadd f0, f0, f0
		fsub f1, f0, f0
		fmul f2, f0, f0
		fdiv f3, f2, f0
		fsqrt f4, f2
		fneg f5, f4
		fabs f6, f5
		cvtif f7, r1
		cvtfi r2, f7
		fcmp f0, f1
		ld r3, [r1+2]
		st [r1+2], r3
		fld f8, [r1]
		fst [r1], f8
		mov r4, r3
		add r5, r4, r3
		sub r6, r5, r4
		mul r7, r6, r5
		and r8, r7, r6
		or r9, r8, r7
		xor r10, r9, r8
		shl r11, r10, 3
		shr r12, r11, 3
		cmp r1, r2
		cmpi r1, 5
		jg top
		jz top
		jnz top
		jl top
		jle top
		jge top
		jmp end
	end:
		nop
		hlt
	`
	p1 := MustAssemble(src)
	// Disassemble and re-assemble; programs must be identical.
	p2, err := Assemble(DisassembleProgram(p1))
	if err != nil {
		t.Fatalf("reassembly failed: %v\n%s", err, DisassembleProgram(p1))
	}
	if len(p1) != len(p2) {
		t.Fatalf("length mismatch %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("instr %d: %+v != %+v", i, p1[i], p2[i])
		}
	}
}

func TestDisassembleRoundTripProperty(t *testing.T) {
	// Property: any valid random instruction survives disassemble→assemble.
	f := func(opRaw, rd, ra, rb uint8, imm int64, fv float64) bool {
		op := Op(opRaw % uint8(numOps))
		in := Instr{Op: op, Rd: rd % NumRegs, Ra: ra % NumRegs, Rb: rb % NumRegs}
		// Populate only fields the op uses, as the assembler would.
		switch op {
		case MovI, CmpI:
			in.Rb = 0
			in.Imm = imm
		case AddI, SubI:
			in.Rb = 0
			in.Imm = imm
		case Shl, Shr:
			in.Rb = 0
			in.Imm = imm & 63
		case Ld, St, FLd, FSt:
			in.Imm = imm % 1000
		case FMovI:
			if math.IsNaN(fv) || math.IsInf(fv, 0) {
				fv = 1.5
			}
			in.F = fv
		case Jmp, Jz, Jnz, Jl, Jle, Jg, Jge:
			in.Imm = 0 // target must be in range for a 2-instr program
		}
		switch op {
		case Nop, Hlt:
			in.Rd, in.Ra, in.Rb = 0, 0, 0
		case Cmp:
			in.Rd = 0
		case CmpI:
			in.Rd, in.Rb = 0, 0
		case MovI:
			in.Ra = 0
		case Mov, FMov, FSqrt, FNeg, FAbs, CvtIF, CvtFI:
			in.Rb = 0
		case FMovI:
			in.Ra, in.Rb = 0, 0
		case FCmp:
			in.Rd = 0
		case Jmp, Jz, Jnz, Jl, Jle, Jg, Jge:
			in.Rd, in.Ra, in.Rb = 0, 0, 0
		case Ld, FLd:
			in.Rb = 0
		case St, FSt:
			in.Rd = 0
		}
		prog := Program{in, {Op: Hlt}}
		src := DisassembleProgram(prog)
		p2, err := Assemble(src)
		if err != nil {
			t.Logf("op=%s src=%q err=%v", op, src, err)
			return false
		}
		return len(p2) == 2 && p2[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadBranch(t *testing.T) {
	p := Program{{Op: Jmp, Imm: 5}, {Op: Hlt}}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range branch target passed Validate")
	}
}

func TestValidateCatchesBadRegister(t *testing.T) {
	p := Program{{Op: Add, Rd: 20}, {Op: Hlt}}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range register passed Validate")
	}
}

func TestRunFuelLimit(t *testing.T) {
	p := MustAssemble("spin: jmp spin")
	s := NewState(0)
	err := Run(p, s, nil, 100)
	if err != ErrFuel {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
}

func TestRunPCOutOfRange(t *testing.T) {
	p := Program{{Op: Nop}} // falls off the end
	s := NewState(0)
	if err := Run(p, s, nil, 10); err == nil {
		t.Fatal("running off the end did not error")
	}
}

func TestMemoryBoundsChecked(t *testing.T) {
	for _, src := range []string{
		"movi r1, 100\nld r2, [r1]\nhlt",
		"movi r1, 100\nst [r1], r2\nhlt",
		"movi r1, 100\nfld f2, [r1]\nhlt",
		"movi r1, 100\nfst [r1], f2\nhlt",
		"movi r1, -1\nld r2, [r1]\nhlt",
	} {
		p := MustAssemble(src)
		s := NewState(8)
		if err := Run(p, s, nil, 10); err == nil {
			t.Errorf("out-of-range access in %q did not error", src)
		}
	}
}

func TestTraceCounts(t *testing.T) {
	src := `
		movi r1, 0
		movi r2, 3
		fmovi f0, 1.0
	loop:
		fadd f0, f0, f0
		fmul f1, f0, f0
		addi r1, r1, 1
		cmp  r1, r2
		jl   loop
		hlt
	`
	p := MustAssemble(src)
	s := NewState(0)
	var tr Trace
	if err := Run(p, s, &tr, 0); err != nil {
		t.Fatal(err)
	}
	// 3 iterations: 3 fadd + 3 fmul = 6 flops.
	if tr.Flops != 6 {
		t.Fatalf("Flops = %d, want 6", tr.Flops)
	}
	if tr.ByClass[ClassFPMul] != 3 {
		t.Fatalf("FPMul count = %d, want 3", tr.ByClass[ClassFPMul])
	}
	// Branch taken twice (back edges), not taken once.
	if tr.Taken != 2 {
		t.Fatalf("Taken = %d, want 2", tr.Taken)
	}
	if tr.ByClass[ClassBranch] != 3 {
		t.Fatalf("Branch count = %d, want 3", tr.ByClass[ClassBranch])
	}
	// movi f  + fadd counted under FPAdd class: fmovi(1) + fadd(3) = 4.
	if tr.ByClass[ClassFPAdd] != 4 {
		t.Fatalf("FPAdd class = %d, want 4", tr.ByClass[ClassFPAdd])
	}
}

func TestTraceAddScale(t *testing.T) {
	var a, b Trace
	a.Instrs, a.Flops = 10, 4
	a.ByClass[ClassLoad] = 2
	b.Instrs, b.Flops = 5, 1
	b.ByClass[ClassLoad] = 3
	a.Add(&b)
	if a.Instrs != 15 || a.Flops != 5 || a.ByClass[ClassLoad] != 5 {
		t.Fatalf("Add gave %+v", a)
	}
	a.Scale(2)
	if a.Instrs != 30 || a.Flops != 10 || a.ByClass[ClassLoad] != 10 {
		t.Fatalf("Scale gave %+v", a)
	}
}

func TestStateCloneAndEqual(t *testing.T) {
	s := NewState(4)
	s.R[3] = 7
	s.F[2] = math.NaN()
	s.StoreF(1, 2.5)
	s.FlagZ = true
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not Equal (NaN handling?)")
	}
	c.Mem[0] = 1
	if s.Equal(c) {
		t.Fatal("Equal ignored memory difference")
	}
	c = s.Clone()
	c.R[0] = 1
	if s.Equal(c) {
		t.Fatal("Equal ignored register difference")
	}
}

func TestBitReinterpretViaMemory(t *testing.T) {
	// The FSt/Ld pair reinterprets float bits as an integer — the idiom the
	// Karp reciprocal-sqrt kernel uses for exponent extraction.
	src := `
		fmovi f0, 1.0
		movi  r1, 0
		fst   [r1], f0
		ld    r2, [r1]
		hlt
	`
	p := MustAssemble(src)
	s := NewState(4)
	if err := Run(p, s, nil, 0); err != nil {
		t.Fatal(err)
	}
	if uint64(s.R[2]) != math.Float64bits(1.0) {
		t.Fatalf("r2 = %#x, want %#x", uint64(s.R[2]), math.Float64bits(1.0))
	}
}

func TestConditionalBranchSemantics(t *testing.T) {
	// For each comparison outcome, check every conditional branch.
	type tc struct {
		a, b  int64
		op    string
		taken bool
	}
	cases := []tc{
		{1, 2, "jl", true}, {2, 1, "jl", false}, {1, 1, "jl", false},
		{1, 2, "jle", true}, {1, 1, "jle", true}, {2, 1, "jle", false},
		{2, 1, "jg", true}, {1, 2, "jg", false}, {1, 1, "jg", false},
		{2, 1, "jge", true}, {1, 1, "jge", true}, {1, 2, "jge", false},
		{1, 1, "jz", true}, {1, 2, "jz", false},
		{1, 2, "jnz", true}, {1, 1, "jnz", false},
	}
	for _, c := range cases {
		src := `
			movi r1, ` + itoa(c.a) + `
			movi r2, ` + itoa(c.b) + `
			movi r3, 0
			cmp  r1, r2
			` + c.op + ` taken
			jmp end
		taken:
			movi r3, 1
		end:
			hlt
		`
		p := MustAssemble(src)
		s := NewState(0)
		if err := Run(p, s, nil, 0); err != nil {
			t.Fatal(err)
		}
		got := s.R[3] == 1
		if got != c.taken {
			t.Errorf("%s with a=%d b=%d: taken=%v, want %v", c.op, c.a, c.b, got, c.taken)
		}
	}
}

func itoa(v int64) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string(rune('0' + v))
	}
	return itoa(v/10) + string(rune('0'+v%10))
}

func TestIntegerOpSemantics(t *testing.T) {
	src := `
		movi r1, 12
		movi r2, 10
		add  r3, r1, r2   ; 22
		sub  r4, r1, r2   ; 2
		mul  r5, r1, r2   ; 120
		and  r6, r1, r2   ; 8
		or   r7, r1, r2   ; 14
		xor  r8, r1, r2   ; 6
		shl  r9, r1, 2    ; 48
		shr  r10, r1, 2   ; 3
		subi r11, r1, 5   ; 7
		hlt
	`
	p := MustAssemble(src)
	s := NewState(0)
	if err := Run(p, s, nil, 0); err != nil {
		t.Fatal(err)
	}
	want := map[int]int64{3: 22, 4: 2, 5: 120, 6: 8, 7: 14, 8: 6, 9: 48, 10: 3, 11: 7}
	for reg, v := range want {
		if s.R[reg] != v {
			t.Errorf("r%d = %d, want %d", reg, s.R[reg], v)
		}
	}
}

func TestShrIsLogical(t *testing.T) {
	src := `
		movi r1, -8
		shr  r2, r1, 1
		hlt
	`
	p := MustAssemble(src)
	s := NewState(0)
	if err := Run(p, s, nil, 0); err != nil {
		t.Fatal(err)
	}
	want := int64(uint64(0xFFFFFFFFFFFFFFF8) >> 1)
	if s.R[2] != want {
		t.Fatalf("shr -8>>1 = %d, want %d (logical)", s.R[2], want)
	}
}
