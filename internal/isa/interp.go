package isa

import (
	"errors"
	"fmt"
	"math"
)

// State is the architectural state every execution engine (reference
// interpreter, CMS interpreter, translated VLIW code) operates on.
type State struct {
	R  [NumRegs]int64
	F  [NumRegs]float64
	PC int
	// Flags from the last Cmp/CmpI/FCmp.
	FlagZ bool // equal
	FlagL bool // less (signed / FP ordered)
	Mem   []uint64
	// Halted is set by Hlt.
	Halted bool
}

// NewState allocates a state with the given number of memory words.
func NewState(memWords int) *State {
	return &State{Mem: make([]uint64, memWords)}
}

// LoadF reads memory word addr as a float64.
func (s *State) LoadF(addr int64) float64 { return math.Float64frombits(s.Mem[addr]) }

// StoreF writes v into memory word addr.
func (s *State) StoreF(addr int64, v float64) { s.Mem[addr] = math.Float64bits(v) }

// LoadI reads memory word addr as an int64.
func (s *State) LoadI(addr int64) int64 { return int64(s.Mem[addr]) }

// StoreI writes v into memory word addr.
func (s *State) StoreI(addr int64, v int64) { s.Mem[addr] = uint64(v) }

// Equal reports whether two states agree on registers, flags, PC and
// memory. Used by property tests that check CMS translations against the
// reference interpreter. NaN floating registers compare equal to NaN.
func (s *State) Equal(o *State) bool {
	if s.R != o.R || s.PC != o.PC || s.FlagZ != o.FlagZ || s.FlagL != o.FlagL || s.Halted != o.Halted {
		return false
	}
	for i := range s.F {
		a, b := s.F[i], o.F[i]
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			return false
		}
	}
	if len(s.Mem) != len(o.Mem) {
		return false
	}
	for i := range s.Mem {
		if s.Mem[i] != o.Mem[i] {
			return false
		}
	}
	return true
}

// Clone deep-copies the state.
func (s *State) Clone() *State {
	c := *s
	c.Mem = make([]uint64, len(s.Mem))
	copy(c.Mem, s.Mem)
	return &c
}

// Trace accumulates dynamic execution statistics for timing models.
type Trace struct {
	ByClass [NumClasses]uint64
	Flops   uint64 // IsFlop ops executed
	Taken   uint64 // taken branches
	Instrs  uint64
}

// Add accumulates another trace into t.
func (t *Trace) Add(o *Trace) {
	for i := range t.ByClass {
		t.ByClass[i] += o.ByClass[i]
	}
	t.Flops += o.Flops
	t.Taken += o.Taken
	t.Instrs += o.Instrs
}

// Scale multiplies every counter by k (for extrapolating a measured
// iteration to a full run).
func (t *Trace) Scale(k uint64) {
	for i := range t.ByClass {
		t.ByClass[i] *= k
	}
	t.Flops *= k
	t.Taken *= k
	t.Instrs *= k
}

// ErrFuel is returned by Run when the instruction budget is exhausted
// before the program halts.
var ErrFuel = errors.New("isa: instruction budget exhausted")

// Step executes the single instruction at s.PC, updating the state and,
// when tr is non-nil, the trace. It returns an error on PC or memory
// range violations; architectural FP exceptions follow Go float64
// semantics (Inf/NaN propagate, as on real hardware with masked
// exceptions).
func Step(p Program, s *State, tr *Trace) error {
	if s.PC < 0 || s.PC >= len(p) {
		return fmt.Errorf("isa: PC %d out of range [0,%d)", s.PC, len(p))
	}
	in := p[s.PC]
	next := s.PC + 1
	taken := false
	switch in.Op {
	case Nop:
	case Hlt:
		s.Halted = true
	case MovI:
		s.R[in.Rd] = in.Imm
	case Mov:
		s.R[in.Rd] = s.R[in.Ra]
	case Add:
		s.R[in.Rd] = s.R[in.Ra] + s.R[in.Rb]
	case AddI:
		s.R[in.Rd] = s.R[in.Ra] + in.Imm
	case Sub:
		s.R[in.Rd] = s.R[in.Ra] - s.R[in.Rb]
	case SubI:
		s.R[in.Rd] = s.R[in.Ra] - in.Imm
	case Mul:
		s.R[in.Rd] = s.R[in.Ra] * s.R[in.Rb]
	case And:
		s.R[in.Rd] = s.R[in.Ra] & s.R[in.Rb]
	case Or:
		s.R[in.Rd] = s.R[in.Ra] | s.R[in.Rb]
	case Xor:
		s.R[in.Rd] = s.R[in.Ra] ^ s.R[in.Rb]
	case Shl:
		s.R[in.Rd] = s.R[in.Ra] << uint(in.Imm&63)
	case Shr:
		s.R[in.Rd] = int64(uint64(s.R[in.Ra]) >> uint(in.Imm&63))
	case Cmp:
		a, b := s.R[in.Ra], s.R[in.Rb]
		s.FlagZ, s.FlagL = a == b, a < b
	case CmpI:
		a, b := s.R[in.Ra], in.Imm
		s.FlagZ, s.FlagL = a == b, a < b
	case Ld:
		addr := s.R[in.Ra] + in.Imm
		if addr < 0 || addr >= int64(len(s.Mem)) {
			return fmt.Errorf("isa: PC %d: load address %d out of range", s.PC, addr)
		}
		s.R[in.Rd] = s.LoadI(addr)
	case St:
		addr := s.R[in.Ra] + in.Imm
		if addr < 0 || addr >= int64(len(s.Mem)) {
			return fmt.Errorf("isa: PC %d: store address %d out of range", s.PC, addr)
		}
		s.StoreI(addr, s.R[in.Rb])
	case FLd:
		addr := s.R[in.Ra] + in.Imm
		if addr < 0 || addr >= int64(len(s.Mem)) {
			return fmt.Errorf("isa: PC %d: fload address %d out of range", s.PC, addr)
		}
		s.F[in.Rd] = s.LoadF(addr)
	case FSt:
		addr := s.R[in.Ra] + in.Imm
		if addr < 0 || addr >= int64(len(s.Mem)) {
			return fmt.Errorf("isa: PC %d: fstore address %d out of range", s.PC, addr)
		}
		s.StoreF(addr, s.F[in.Rb])
	case FMovI:
		s.F[in.Rd] = in.F
	case FMov:
		s.F[in.Rd] = s.F[in.Ra]
	case FAdd:
		s.F[in.Rd] = s.F[in.Ra] + s.F[in.Rb]
	case FSub:
		s.F[in.Rd] = s.F[in.Ra] - s.F[in.Rb]
	case FMul:
		s.F[in.Rd] = s.F[in.Ra] * s.F[in.Rb]
	case FDiv:
		s.F[in.Rd] = s.F[in.Ra] / s.F[in.Rb]
	case FSqrt:
		s.F[in.Rd] = math.Sqrt(s.F[in.Ra])
	case FNeg:
		s.F[in.Rd] = -s.F[in.Ra]
	case FAbs:
		s.F[in.Rd] = math.Abs(s.F[in.Ra])
	case CvtIF:
		s.F[in.Rd] = float64(s.R[in.Ra])
	case CvtFI:
		s.R[in.Rd] = int64(s.F[in.Ra])
	case FCmp:
		a, b := s.F[in.Ra], s.F[in.Rb]
		s.FlagZ, s.FlagL = a == b, a < b
	case Jmp:
		next, taken = int(in.Imm), true
	case Jz:
		if s.FlagZ {
			next, taken = int(in.Imm), true
		}
	case Jnz:
		if !s.FlagZ {
			next, taken = int(in.Imm), true
		}
	case Jl:
		if s.FlagL {
			next, taken = int(in.Imm), true
		}
	case Jle:
		if s.FlagL || s.FlagZ {
			next, taken = int(in.Imm), true
		}
	case Jg:
		if !s.FlagL && !s.FlagZ {
			next, taken = int(in.Imm), true
		}
	case Jge:
		if !s.FlagL {
			next, taken = int(in.Imm), true
		}
	default:
		return fmt.Errorf("isa: PC %d: unknown opcode %d", s.PC, in.Op)
	}
	if tr != nil {
		tr.Instrs++
		tr.ByClass[ClassOf(in.Op)]++
		if IsFlop(in.Op) {
			tr.Flops++
		}
		if taken {
			tr.Taken++
		}
	}
	s.PC = next
	return nil
}

// Run executes the program from s.PC until Hlt, an error, or fuel
// instructions have retired. A fuel of 0 means unlimited.
func Run(p Program, s *State, tr *Trace, fuel uint64) error {
	if err := p.Validate(); err != nil {
		return err
	}
	executed := uint64(0)
	for !s.Halted {
		if fuel > 0 && executed >= fuel {
			return ErrFuel
		}
		if err := Step(p, s, tr); err != nil {
			return err
		}
		executed++
	}
	return nil
}
