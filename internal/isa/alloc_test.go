package isa

import "testing"

// TestInterpreterZeroAlloc pins the interpreter dispatch loop as
// allocation-free: CMS leans on Step for every cold instruction, so a
// heap allocation here would dominate interpreted phases.
func TestInterpreterZeroAlloc(t *testing.T) {
	p := MustAssemble(`
		movi r1, 0
		movi r2, 1
	loop:
		add  r1, r1, r2
		addi r2, r2, 1
		st   [r0], r1
		ld   r3, [r0]
		fmovi f0, 1.5
		fadd  f1, f1, f0
		cmpi r2, 64
		jle  loop
		hlt
	`)
	st := NewState(4)
	var tr Trace
	allocs := testing.AllocsPerRun(50, func() {
		*st = State{Mem: st.Mem}
		st.Mem[0] = 0
		for !st.Halted {
			if err := Step(p, st, &tr); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("interpreter allocated %.1f times per program run, want 0", allocs)
	}
}
