// Package isa defines the x86-like mini instruction set that stands in for
// the paper's x86 binaries. The Transmeta Code Morphing Software in
// internal/cms consumes programs in this ISA (interpreting, then
// translating them to VLIW molecules), and the hardware-CPU timing models
// in internal/cpu consume dynamic traces of the same programs. A reference
// interpreter defines the architectural semantics that every execution
// engine must match.
//
// Simplifications versus real IA-32, documented here once: registers are
// 64-bit and flat (16 integer, 16 floating point — no x87 stack), memory is
// an array of 8-byte words addressed by word index, and there is no
// privileged state. None of these affect the behaviours the paper measures
// (instruction-level parallelism, translation locality, op mix).
package isa

import "fmt"

// Op enumerates the instruction opcodes.
type Op uint8

const (
	Nop Op = iota
	Hlt    // stop execution

	// Integer ALU.
	MovI // rd ← imm
	Mov  // rd ← ra
	Add  // rd ← ra + rb
	AddI // rd ← ra + imm
	Sub  // rd ← ra - rb
	SubI // rd ← ra - imm
	Mul  // rd ← ra * rb
	And  // rd ← ra & rb
	Or   // rd ← ra | rb
	Xor  // rd ← ra ^ rb
	Shl  // rd ← ra << (imm & 63)
	Shr  // rd ← ra >> (imm & 63) (logical)
	Cmp  // flags ← compare(ra, rb)
	CmpI // flags ← compare(ra, imm)

	// Memory (word addressed: address = R[ra] + imm).
	Ld  // rd ← mem[R[ra]+imm] as int
	St  // mem[R[ra]+imm] ← R[rb]
	FLd // fd ← mem[R[ra]+imm] as float
	FSt // mem[R[ra]+imm] ← F[rb]

	// Floating point.
	FMovI // fd ← fimm
	FMov  // fd ← fa
	FAdd  // fd ← fa + fb
	FSub  // fd ← fa - fb
	FMul  // fd ← fa * fb
	FDiv  // fd ← fa / fb
	FSqrt // fd ← sqrt(fa)
	FNeg  // fd ← -fa
	FAbs  // fd ← |fa|
	CvtIF // fd ← float(R[ra])
	CvtFI // rd ← int(F[fa]) (truncating)
	FCmp  // flags ← compare(fa, fb)

	// Control flow (absolute instruction-index targets).
	Jmp
	Jz  // jump if zero flag
	Jnz // jump if not zero
	Jl  // jump if less (signed)
	Jle
	Jg
	Jge

	numOps
)

// Class buckets opcodes for timing models.
type Class uint8

const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassLoad
	ClassStore
	ClassFPAdd // add/sub/neg/abs/moves/converts
	ClassFPMul
	ClassFPDiv
	ClassFPSqrt
	ClassBranch
	NumClasses
)

// ClassOf maps an opcode to its timing class.
func ClassOf(op Op) Class {
	switch op {
	case Nop, Hlt:
		return ClassNop
	case MovI, Mov, Add, AddI, Sub, SubI, And, Or, Xor, Shl, Shr, Cmp, CmpI:
		return ClassIntALU
	case Mul:
		return ClassIntMul
	case Ld, FLd:
		return ClassLoad
	case St, FSt:
		return ClassStore
	case FMovI, FMov, FAdd, FSub, FNeg, FAbs, CvtIF, CvtFI, FCmp:
		return ClassFPAdd
	case FMul:
		return ClassFPMul
	case FDiv:
		return ClassFPDiv
	case FSqrt:
		return ClassFPSqrt
	case Jmp, Jz, Jnz, Jl, Jle, Jg, Jge:
		return ClassBranch
	}
	panic(fmt.Sprintf("isa: unknown op %d", op))
}

// IsBranch reports whether op can change the program counter.
func IsBranch(op Op) bool { return op >= Jmp && op <= Jge }

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool { return op >= Jz && op <= Jge }

// IsFlop reports whether op counts as a floating-point operation for
// Mflops accounting (the convention the paper's codes use: arithmetic only,
// moves and converts excluded).
func IsFlop(op Op) bool {
	switch op {
	case FAdd, FSub, FMul, FDiv, FSqrt, FNeg, FAbs:
		return true
	}
	return false
}

var opNames = [numOps]string{
	Nop: "nop", Hlt: "hlt",
	MovI: "movi", Mov: "mov", Add: "add", AddI: "addi", Sub: "sub",
	SubI: "subi", Mul: "mul", And: "and", Or: "or", Xor: "xor",
	Shl: "shl", Shr: "shr", Cmp: "cmp", CmpI: "cmpi",
	Ld: "ld", St: "st", FLd: "fld", FSt: "fst",
	FMovI: "fmovi", FMov: "fmov", FAdd: "fadd", FSub: "fsub",
	FMul: "fmul", FDiv: "fdiv", FSqrt: "fsqrt", FNeg: "fneg",
	FAbs: "fabs", CvtIF: "cvtif", CvtFI: "cvtfi", FCmp: "fcmp",
	Jmp: "jmp", Jz: "jz", Jnz: "jnz", Jl: "jl", Jle: "jle",
	Jg: "jg", Jge: "jge",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Instr is one decoded instruction. Rd/Ra/Rb index either the integer or
// the floating-point file depending on the opcode. Imm doubles as the
// branch target (instruction index) for control flow and the displacement
// for memory ops; F holds floating-point immediates.
type Instr struct {
	Op  Op
	Rd  uint8
	Ra  uint8
	Rb  uint8
	Imm int64
	F   float64
}

// NumRegs is the size of each register file.
const NumRegs = 16

// Program is a sequence of instructions; entry is index 0.
type Program []Instr

// Validate checks register indices and branch targets, so execution engines
// can skip bounds checks in their hot loops.
func (p Program) Validate() error {
	for i, in := range p {
		if in.Op >= numOps {
			return fmt.Errorf("isa: instr %d: bad opcode %d", i, in.Op)
		}
		if in.Rd >= NumRegs || in.Ra >= NumRegs || in.Rb >= NumRegs {
			return fmt.Errorf("isa: instr %d (%s): register out of range", i, in.Op)
		}
		if IsBranch(in.Op) {
			if in.Imm < 0 || in.Imm >= int64(len(p)) {
				return fmt.Errorf("isa: instr %d (%s): branch target %d out of range [0,%d)", i, in.Op, in.Imm, len(p))
			}
		}
	}
	return nil
}
