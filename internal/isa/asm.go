package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses a small assembly dialect into a Program. Syntax, one
// instruction per line:
//
//	; comment               # comment
//	label:
//	movi  r1, 42
//	fmovi f0, 1.5
//	add   r1, r2, r3        ; rd, ra, rb
//	addi  r1, r2, 8
//	ld    r1, [r2+4]        ; load word
//	fst   [r2+0], f3        ; store word
//	cmp   r1, r2
//	jnz   label
//	hlt
//
// Registers are r0..r15 and f0..f15. Branch targets are labels. Integer
// immediates accept 0x-prefixed hex.
func Assemble(src string) (Program, error) {
	type pending struct {
		instr int
		label string
		line  int
	}
	var prog Program
	labels := map[string]int{}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				return nil, fmt.Errorf("isa: line %d: bad label %q", ln+1, name)
			}
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("isa: line %d: duplicate label %q", ln+1, name)
			}
			labels[name] = len(prog)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		mnemonic, rest, _ := strings.Cut(line, " ")
		mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
		ops := splitOperands(rest)
		in, labelRef, err := parseInstr(mnemonic, ops)
		if err != nil {
			return nil, fmt.Errorf("isa: line %d: %v", ln+1, err)
		}
		if labelRef != "" {
			fixups = append(fixups, pending{len(prog), labelRef, ln + 1})
		}
		prog = append(prog, in)
	}
	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: line %d: undefined label %q", f.line, f.label)
		}
		prog[f.instr].Imm = int64(target)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustAssemble is Assemble that panics on error; for package-level kernel
// definitions whose sources are compile-time constants.
func MustAssemble(src string) Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseIntReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("expected integer register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad integer register %q", s)
	}
	return uint8(n), nil
}

func parseFPReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'f' && s[0] != 'F') {
		return 0, fmt.Errorf("expected FP register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad FP register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMem parses "[rN+disp]" or "[rN]" or "[rN-disp]".
func parseMem(s string) (base uint8, disp int64, err error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, fmt.Errorf("expected memory operand [rN+disp], got %q", s)
	}
	inner := s[1 : len(s)-1]
	sign := int64(1)
	regPart, dispPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		regPart, dispPart = inner[:i], inner[i+1:]
		if inner[i] == '-' {
			sign = -1
		}
	}
	base, err = parseIntReg(strings.TrimSpace(regPart))
	if err != nil {
		return 0, 0, err
	}
	if dispPart != "" {
		d, err := parseImm(strings.TrimSpace(dispPart))
		if err != nil {
			return 0, 0, err
		}
		disp = sign * d
	}
	return base, disp, nil
}

var mnemonicOps = map[string]Op{
	"nop": Nop, "hlt": Hlt, "movi": MovI, "mov": Mov, "add": Add,
	"addi": AddI, "sub": Sub, "subi": SubI, "mul": Mul, "and": And,
	"or": Or, "xor": Xor, "shl": Shl, "shr": Shr, "cmp": Cmp,
	"cmpi": CmpI, "ld": Ld, "st": St, "fld": FLd, "fst": FSt,
	"fmovi": FMovI, "fmov": FMov, "fadd": FAdd, "fsub": FSub,
	"fmul": FMul, "fdiv": FDiv, "fsqrt": FSqrt, "fneg": FNeg,
	"fabs": FAbs, "cvtif": CvtIF, "cvtfi": CvtFI, "fcmp": FCmp,
	"jmp": Jmp, "jz": Jz, "jnz": Jnz, "jl": Jl, "jle": Jle,
	"jg": Jg, "jge": Jge,
}

func parseInstr(mnemonic string, ops []string) (Instr, string, error) {
	op, ok := mnemonicOps[mnemonic]
	if !ok {
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	in := Instr{Op: op}
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%s wants %d operands, got %d", mnemonic, n, len(ops))
		}
		return nil
	}
	var err error
	switch op {
	case Nop, Hlt:
		err = need(0)
	case MovI:
		if err = need(2); err == nil {
			if in.Rd, err = parseIntReg(ops[0]); err == nil {
				in.Imm, err = parseImm(ops[1])
			}
		}
	case Mov:
		if err = need(2); err == nil {
			if in.Rd, err = parseIntReg(ops[0]); err == nil {
				in.Ra, err = parseIntReg(ops[1])
			}
		}
	case Add, Sub, Mul, And, Or, Xor:
		if err = need(3); err == nil {
			if in.Rd, err = parseIntReg(ops[0]); err == nil {
				if in.Ra, err = parseIntReg(ops[1]); err == nil {
					in.Rb, err = parseIntReg(ops[2])
				}
			}
		}
	case AddI, SubI, Shl, Shr:
		if err = need(3); err == nil {
			if in.Rd, err = parseIntReg(ops[0]); err == nil {
				if in.Ra, err = parseIntReg(ops[1]); err == nil {
					in.Imm, err = parseImm(ops[2])
				}
			}
		}
	case Cmp:
		if err = need(2); err == nil {
			if in.Ra, err = parseIntReg(ops[0]); err == nil {
				in.Rb, err = parseIntReg(ops[1])
			}
		}
	case CmpI:
		if err = need(2); err == nil {
			if in.Ra, err = parseIntReg(ops[0]); err == nil {
				in.Imm, err = parseImm(ops[1])
			}
		}
	case Ld:
		if err = need(2); err == nil {
			if in.Rd, err = parseIntReg(ops[0]); err == nil {
				in.Ra, in.Imm, err = parseMemOperand(ops[1])
			}
		}
	case FLd:
		if err = need(2); err == nil {
			if in.Rd, err = parseFPReg(ops[0]); err == nil {
				in.Ra, in.Imm, err = parseMemOperand(ops[1])
			}
		}
	case St:
		if err = need(2); err == nil {
			if in.Ra, in.Imm, err = parseMemOperand(ops[0]); err == nil {
				in.Rb, err = parseIntReg(ops[1])
			}
		}
	case FSt:
		if err = need(2); err == nil {
			if in.Ra, in.Imm, err = parseMemOperand(ops[0]); err == nil {
				in.Rb, err = parseFPReg(ops[1])
			}
		}
	case FMovI:
		if err = need(2); err == nil {
			if in.Rd, err = parseFPReg(ops[0]); err == nil {
				in.F, err = strconv.ParseFloat(ops[1], 64)
				if err != nil {
					err = fmt.Errorf("bad FP immediate %q", ops[1])
				}
			}
		}
	case FMov, FSqrt, FNeg, FAbs:
		if err = need(2); err == nil {
			if in.Rd, err = parseFPReg(ops[0]); err == nil {
				in.Ra, err = parseFPReg(ops[1])
			}
		}
	case FAdd, FSub, FMul, FDiv:
		if err = need(3); err == nil {
			if in.Rd, err = parseFPReg(ops[0]); err == nil {
				if in.Ra, err = parseFPReg(ops[1]); err == nil {
					in.Rb, err = parseFPReg(ops[2])
				}
			}
		}
	case CvtIF:
		if err = need(2); err == nil {
			if in.Rd, err = parseFPReg(ops[0]); err == nil {
				in.Ra, err = parseIntReg(ops[1])
			}
		}
	case CvtFI:
		if err = need(2); err == nil {
			if in.Rd, err = parseIntReg(ops[0]); err == nil {
				in.Ra, err = parseFPReg(ops[1])
			}
		}
	case FCmp:
		if err = need(2); err == nil {
			if in.Ra, err = parseFPReg(ops[0]); err == nil {
				in.Rb, err = parseFPReg(ops[1])
			}
		}
	case Jmp, Jz, Jnz, Jl, Jle, Jg, Jge:
		if err = need(1); err == nil {
			if isIdent(ops[0]) {
				return in, ops[0], nil
			}
			in.Imm, err = parseImm(ops[0])
		}
	}
	return in, "", err
}

func parseMemOperand(s string) (uint8, int64, error) {
	return parseMem(s)
}

// Disassemble renders one instruction in the Assemble dialect.
func Disassemble(in Instr) string {
	r := func(n uint8) string { return fmt.Sprintf("r%d", n) }
	f := func(n uint8) string { return fmt.Sprintf("f%d", n) }
	mem := func(base uint8, disp int64) string {
		if disp == 0 {
			return fmt.Sprintf("[r%d]", base)
		}
		if disp < 0 {
			return fmt.Sprintf("[r%d-%d]", base, -disp)
		}
		return fmt.Sprintf("[r%d+%d]", base, disp)
	}
	switch in.Op {
	case Nop, Hlt:
		return in.Op.String()
	case MovI:
		return fmt.Sprintf("movi %s, %d", r(in.Rd), in.Imm)
	case Mov:
		return fmt.Sprintf("mov %s, %s", r(in.Rd), r(in.Ra))
	case Add, Sub, Mul, And, Or, Xor:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Ra), r(in.Rb))
	case AddI, SubI, Shl, Shr:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Ra), in.Imm)
	case Cmp:
		return fmt.Sprintf("cmp %s, %s", r(in.Ra), r(in.Rb))
	case CmpI:
		return fmt.Sprintf("cmpi %s, %d", r(in.Ra), in.Imm)
	case Ld:
		return fmt.Sprintf("ld %s, %s", r(in.Rd), mem(in.Ra, in.Imm))
	case St:
		return fmt.Sprintf("st %s, %s", mem(in.Ra, in.Imm), r(in.Rb))
	case FLd:
		return fmt.Sprintf("fld %s, %s", f(in.Rd), mem(in.Ra, in.Imm))
	case FSt:
		return fmt.Sprintf("fst %s, %s", mem(in.Ra, in.Imm), f(in.Rb))
	case FMovI:
		return fmt.Sprintf("fmovi %s, %v", f(in.Rd), in.F)
	case FMov, FSqrt, FNeg, FAbs:
		return fmt.Sprintf("%s %s, %s", in.Op, f(in.Rd), f(in.Ra))
	case FAdd, FSub, FMul, FDiv:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, f(in.Rd), f(in.Ra), f(in.Rb))
	case CvtIF:
		return fmt.Sprintf("cvtif %s, %s", f(in.Rd), r(in.Ra))
	case CvtFI:
		return fmt.Sprintf("cvtfi %s, %s", r(in.Rd), f(in.Ra))
	case FCmp:
		return fmt.Sprintf("fcmp %s, %s", f(in.Ra), f(in.Rb))
	case Jmp, Jz, Jnz, Jl, Jle, Jg, Jge:
		return fmt.Sprintf("%s %d", in.Op, in.Imm)
	}
	return fmt.Sprintf("?%d", in.Op)
}

// DisassembleProgram renders the whole program, one instruction per line,
// with instruction indices as comments.
func DisassembleProgram(p Program) string {
	var b strings.Builder
	for i, in := range p {
		fmt.Fprintf(&b, "%s ; %d\n", Disassemble(in), i)
	}
	return b.String()
}
