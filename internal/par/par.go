// Package par is the host-side shared-memory parallel execution layer:
// a bounded worker pool with deterministic chunked map/reduce helpers.
//
// The repo simulates a 24-blade Beowulf, but the simulator itself runs on
// a real multicore host; this package exploits the real host's cores the
// way Kapanova & Sellier argue commodity hosts should be exploited. It is
// orthogonal to internal/mpi, which models the *simulated* cluster's
// parallelism (see DESIGN.md "Host parallelism vs simulated parallelism").
//
// Determinism contract: chunk boundaries are a pure function of the
// problem size and the caller's grain — never of the worker count or of
// scheduling. Each chunk accumulates into its own storage and reductions
// combine per-chunk results serially in chunk order, so floating-point
// results are bit-identical to a serial run and across any worker count
// (1, 2, 8, GOMAXPROCS, ...). Only wall-clock changes.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide worker-pool width; 0 means
// "follow runtime.GOMAXPROCS(0)".
var defaultWorkers atomic.Int64

// Workers returns the process-wide default worker count.
func Workers() int {
	if w := defaultWorkers.Load(); w > 0 {
		return int(w)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers sets the process-wide default worker count (the -procs flag
// of the drivers lands here). n <= 0 restores the GOMAXPROCS default.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Pool is a bounded worker pool. The zero value (and Default()) uses the
// process-wide width; New(w) fixes an explicit width. Pools hold no
// resources — goroutines are spawned per operation and bounded by the
// width — so a Pool is freely copyable and safe for concurrent use.
type Pool struct {
	// W is the worker count; 0 means Workers().
	W int
}

// New returns a pool of fixed width w (w <= 0 follows the process-wide
// default, like Default).
func New(w int) *Pool {
	if w < 0 {
		w = 0
	}
	return &Pool{W: w}
}

// Default returns a pool that follows the process-wide width.
func Default() *Pool { return &Pool{} }

func (p *Pool) width() int {
	if p != nil && p.W > 0 {
		return p.W
	}
	return Workers()
}

// Width returns the effective worker count the pool's operations use —
// what callers size per-worker scratch (walk arenas, buffers) to.
func (p *Pool) Width() int { return p.width() }

// NumChunks returns the number of fixed-size chunks [0,n) splits into at
// the given grain (chunk size). grain <= 0 defaults to 1024. The result
// depends only on n and grain — the determinism contract's foundation.
func NumChunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	g := normGrain(grain)
	return (n + g - 1) / g
}

// ChunkBounds returns chunk c's half-open index range [lo,hi).
func ChunkBounds(n, grain, c int) (lo, hi int) {
	g := normGrain(grain)
	lo = c * g
	hi = lo + g
	if hi > n {
		hi = n
	}
	return lo, hi
}

func normGrain(grain int) int {
	if grain <= 0 {
		return 1024
	}
	return grain
}

// ForChunks runs fn once per chunk of [0,n), passing the chunk index and
// its bounds. Chunks are claimed dynamically by up to width workers, so
// fn must only touch chunk-local or per-index state; the chunk index c
// lets fn address a per-chunk accumulator slot.
func (p *Pool) ForChunks(n, grain int, fn func(c, lo, hi int)) {
	nc := NumChunks(n, grain)
	if nc == 0 {
		return
	}
	w := p.width()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for c := 0; c < nc; c++ {
			lo, hi := ChunkBounds(n, grain, c)
			fn(c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := ChunkBounds(n, grain, c)
				fn(c, lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ForChunksWorker is ForChunks with a stable worker index: fn
// additionally receives the identity of the worker running the chunk
// (0 ≤ worker < min(Width, chunks)), so callers can hand each worker
// exclusive reusable scratch (a walk arena) without allocating per
// chunk. Which worker runs which chunk is scheduling-dependent; results
// must depend only on the chunk, never on the worker index — scratch
// reset per chunk keeps the determinism contract intact.
func (p *Pool) ForChunksWorker(n, grain int, fn func(worker, c, lo, hi int)) {
	nc := NumChunks(n, grain)
	if nc == 0 {
		return
	}
	w := p.width()
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for c := 0; c < nc; c++ {
			lo, hi := ChunkBounds(n, grain, c)
			fn(0, c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo, hi := ChunkBounds(n, grain, c)
				fn(worker, c, lo, hi)
			}
		}(i)
	}
	wg.Wait()
}

// For runs fn over [0,n) in chunks, for loops whose iterations write
// disjoint per-index outputs and share no accumulator.
func (p *Pool) For(n, grain int, fn func(lo, hi int)) {
	p.ForChunks(n, grain, func(_, lo, hi int) { fn(lo, hi) })
}

// Reduce maps [0,n) to per-chunk partials and folds them serially in
// chunk order: acc = combine(acc, chunk_0), then chunk_1, ... — the
// ordered combine that keeps float reductions bit-identical to serial
// regardless of worker count.
func Reduce[T any](p *Pool, n, grain int, identity T, chunk func(lo, hi int) T, combine func(a, b T) T) T {
	nc := NumChunks(n, grain)
	if nc == 0 {
		return identity
	}
	parts := make([]T, nc)
	p.ForChunks(n, grain, func(c, lo, hi int) { parts[c] = chunk(lo, hi) })
	acc := identity
	for _, part := range parts {
		acc = combine(acc, part)
	}
	return acc
}

// Do runs the given tasks concurrently, at most width at a time, and
// waits for all of them (the heterogeneous-task companion of For — e.g.
// the vortex method's six component-tree builds).
func (p *Pool) Do(tasks ...func()) {
	w := p.width()
	if w > len(tasks) {
		w = len(tasks)
	}
	if w <= 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= len(tasks) {
					return
				}
				tasks[c]()
			}
		}()
	}
	wg.Wait()
}
