package par

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestChunkBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1023, 1024, 1025, 10000} {
		for _, grain := range []int{0, 1, 7, 1024} {
			nc := NumChunks(n, grain)
			next := 0
			for c := 0; c < nc; c++ {
				lo, hi := ChunkBounds(n, grain, c)
				if lo != next {
					t.Fatalf("n=%d grain=%d chunk %d starts at %d, want %d", n, grain, c, lo, next)
				}
				if hi <= lo {
					t.Fatalf("n=%d grain=%d chunk %d empty [%d,%d)", n, grain, c, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d grain=%d chunks cover %d", n, grain, next)
			}
		}
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	const n = 10007
	for _, w := range []int{1, 2, 8} {
		counts := make([]atomic.Int32, n)
		New(w).For(n, 64, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		})
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("w=%d index %d visited %d times", w, i, c)
			}
		}
	}
}

// TestReduceBitIdentical checks the ordered-combine determinism contract:
// a float sum reduced at any worker count equals the serial chunked sum
// exactly (not approximately).
func TestReduceBitIdentical(t *testing.T) {
	const n = 40000
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * float64(i%13+1)
	}
	sum := func(lo, hi int) float64 {
		s := 0.0
		for i := lo; i < hi; i++ {
			s += xs[i]
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }
	want := Reduce(New(1), n, 512, 0, sum, add)
	for _, w := range []int{2, 3, 8, 64} {
		got := Reduce(New(w), n, 512, 0, sum, add)
		if got != want {
			t.Fatalf("w=%d sum %x differs from serial %x", w, got, want)
		}
	}
}

func TestDoRunsAllTasks(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		var ran atomic.Int32
		tasks := make([]func(), 13)
		for i := range tasks {
			tasks[i] = func() { ran.Add(1) }
		}
		New(w).Do(tasks...)
		if got := ran.Load(); got != 13 {
			t.Fatalf("w=%d ran %d of 13 tasks", w, got)
		}
	}
}

func TestWorkersDefaultAndOverride(t *testing.T) {
	defer SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("after SetWorkers(3), Workers() = %d", got)
	}
	if got := New(5).width(); got != 5 {
		t.Fatalf("explicit pool width = %d, want 5", got)
	}
	if got := Default().width(); got != 3 {
		t.Fatalf("default pool width = %d, want 3", got)
	}
	SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("after reset, Workers() = %d, want %d", got, want)
	}
}

func TestEmptyAndTinyInputs(t *testing.T) {
	p := New(8)
	p.For(0, 16, func(lo, hi int) { t.Fatal("called on empty range") })
	p.Do()
	got := Reduce(p, 0, 16, 42, func(lo, hi int) int { return 0 }, func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("empty Reduce = %d, want identity 42", got)
	}
	var n atomic.Int32
	p.For(1, 16, func(lo, hi int) { n.Add(int32(hi - lo)) })
	if n.Load() != 1 {
		t.Fatalf("single-element For covered %d", n.Load())
	}
}
