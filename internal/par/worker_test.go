package par

import (
	"sync/atomic"
	"testing"
)

// TestForChunksWorkerCoverage: every index of [0,n) is visited exactly
// once and every reported worker index is within [0, width).
func TestForChunksWorkerCoverage(t *testing.T) {
	const n, grain = 1000, 64
	for _, w := range []int{1, 2, 8} {
		seen := make([]atomic.Int32, n)
		var badWorker atomic.Int32
		New(w).ForChunksWorker(n, grain, func(worker, c, lo, hi int) {
			if worker < 0 || worker >= w {
				badWorker.Store(1)
			}
			wantLo, wantHi := ChunkBounds(n, grain, c)
			if lo != wantLo || hi != wantHi {
				badWorker.Store(1)
			}
			for i := lo; i < hi; i++ {
				seen[i].Add(1)
			}
		})
		if badWorker.Load() != 0 {
			t.Fatalf("width %d: worker index or bounds out of contract", w)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("width %d: index %d visited %d times", w, i, got)
			}
		}
	}
}

// TestForChunksWorkerSerialIsWorkerZero: the serial fast path must hand
// every chunk to worker 0 in chunk order.
func TestForChunksWorkerSerialIsWorkerZero(t *testing.T) {
	var order []int
	New(1).ForChunksWorker(10, 3, func(worker, c, lo, hi int) {
		if worker != 0 {
			t.Fatalf("serial path used worker %d", worker)
		}
		order = append(order, c)
	})
	for i, c := range order {
		if c != i {
			t.Fatalf("serial chunk order %v not ascending", order)
		}
	}
	if len(order) != NumChunks(10, 3) {
		t.Fatalf("visited %d chunks, want %d", len(order), NumChunks(10, 3))
	}
}

// TestForChunksWorkerExclusiveScratch: per-worker scratch handed out by
// worker index is never shared between concurrent chunks (run under
// -race in CI, this proves the arena-ownership pattern is sound).
func TestForChunksWorkerExclusiveScratch(t *testing.T) {
	const n, grain, w = 4096, 16, 8
	scratch := make([][]int, w)
	New(w).ForChunksWorker(n, grain, func(worker, c, lo, hi int) {
		s := scratch[worker][:0]
		for i := lo; i < hi; i++ {
			s = append(s, i)
		}
		scratch[worker] = s
	})
}
