package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineEmptyRun(t *testing.T) {
	e := NewEngine()
	if got := e.Run(); got != 0 {
		t.Fatalf("Run on empty engine = %v, want 0", got)
	}
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Schedule(1, func() { order = append(order, "a") })
	e.Schedule(1, func() { order = append(order, "b") })
	e.Schedule(1, func() { order = append(order, "c") })
	e.Run()
	if got := order[0] + order[1] + order[2]; got != "abc" {
		t.Fatalf("simultaneous events fired in order %q, want abc", got)
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v, want [1 2]", times)
	}
}

func TestEngineZeroDelayFiresAtNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(5, func() {
		e.Schedule(0, func() {
			if e.Now() != 5 {
				t.Errorf("zero-delay event at %v, want 5", e.Now())
			}
			fired = true
		})
	})
	e.Run()
	if !fired {
		t.Fatal("zero-delay event did not fire")
	}
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative delay did not panic")
		}
	}()
	NewEngine().Schedule(-1, func() {})
}

func TestEngineNaNDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NaN delay did not panic")
		}
	}()
	NewEngine().Schedule(math.NaN(), func() {})
}

func TestEngineScheduleAtPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("ScheduleAt into the past did not panic")
			}
		}()
		e.ScheduleAt(5, func() {})
	})
	e.Run()
}

func TestEventCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired = %d, want 0", e.Fired())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{1, 2, 3, 4, 5} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3)
	if len(fired) != 3 {
		t.Fatalf("fired %d events by t=3, want 3", len(fired))
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
	e.RunUntil(10)
	if len(fired) != 5 {
		t.Fatalf("fired %d events total, want 5", len(fired))
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want clock advanced to 10", e.Now())
	}
}

func TestRunLimited(t *testing.T) {
	e := NewEngine()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		e.Schedule(1, reschedule)
	}
	e.Schedule(1, reschedule)
	if err := e.RunLimited(100); err != ErrLimit {
		t.Fatalf("RunLimited on infinite chain = %v, want ErrLimit", err)
	}
	if n != 100 {
		t.Fatalf("fired %d events, want 100", n)
	}

	e2 := NewEngine()
	e2.Schedule(1, func() {})
	if err := e2.RunLimited(100); err != nil {
		t.Fatalf("RunLimited on finite queue = %v, want nil", err)
	}
}

func TestEngineRandomOrderProperty(t *testing.T) {
	// Property: regardless of scheduling order, events fire sorted by time.
	f := func(delays []float64) bool {
		e := NewEngine()
		var fired []float64
		for _, d := range delays {
			d := math.Abs(d)
			if math.IsNaN(d) || math.IsInf(d, 0) {
				continue
			}
			e.Schedule(d, func() { fired = append(fired, d) })
		}
		e.Run()
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceSerialisesUse(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var done []Time
	r.Use(2, func() { done = append(done, e.Now()) })
	r.Use(2, func() { done = append(done, e.Now()) })
	r.Use(2, func() { done = append(done, e.Now()) })
	e.Run()
	want := []Time{2, 4, 6}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceParallelCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var done []Time
	for i := 0; i < 4; i++ {
		r.Use(2, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []Time{2, 2, 4, 4}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("release of idle resource did not panic")
		}
	}()
	e := NewEngine()
	NewResource(e, 1).Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewResource(NewEngine(), 0)
}

func TestResourceUtilisation(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	r.Use(3, nil)
	e.Run()
	if got := r.Utilisation(); math.Abs(got-3) > 1e-12 {
		t.Fatalf("Utilisation = %v, want 3", got)
	}
}

func TestResourceQueueLen(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	r.Use(1, nil)
	r.Use(1, nil)
	r.Use(1, nil)
	if r.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", r.QueueLen())
	}
	if r.InUse() != 1 {
		t.Fatalf("InUse = %d, want 1", r.InUse())
	}
	e.Run()
	if r.QueueLen() != 0 || r.InUse() != 0 {
		t.Fatalf("after run: queue=%d inuse=%d, want 0,0", r.QueueLen(), r.InUse())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d/10 values in 1000 draws", len(seen))
	}
}

func TestRNGIntnNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Fatalf("Exp(5) sample mean = %v, want ≈5", mean)
	}
}

func TestRNGNormPairMoments(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x, y := r.NormPair()
		sum += x + y
		sumsq += x*x + y*y
	}
	mean := sum / (2 * n)
	variance := sumsq / (2 * n)
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ≈1", variance)
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(float64(i), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", e.Fired())
	}
}
