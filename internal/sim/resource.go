package sim

// Resource models a FIFO-served resource with fixed capacity (e.g. a
// network link or a switch port). Acquire requests queue up; each grant
// runs the supplied callback when capacity becomes available.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []func()
	// Busy accumulates capacity-seconds of use, for utilisation reports.
	busy     float64
	lastTick Time
}

// NewResource creates a resource with the given capacity (>0) attached to
// the engine.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity, lastTick: eng.Now()}
}

// InUse returns the units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of waiting acquisitions.
func (r *Resource) QueueLen() int { return len(r.waiters) }

func (r *Resource) account() {
	now := r.eng.Now()
	r.busy += float64(r.inUse) * (now - r.lastTick)
	r.lastTick = now
}

// Utilisation returns busy capacity-seconds accumulated so far.
func (r *Resource) Utilisation() float64 {
	r.account()
	return r.busy
}

// Acquire requests one unit; when granted, the callback fires (possibly
// immediately, in the current event).
func (r *Resource) Acquire(granted func()) {
	r.account()
	if r.inUse < r.capacity {
		r.inUse++
		granted()
		return
	}
	r.waiters = append(r.waiters, granted)
}

// Release returns one unit and grants the oldest waiter, if any.
func (r *Resource) Release() {
	r.account()
	if r.inUse <= 0 {
		panic("sim: release of idle resource")
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		next() // unit passes directly to the waiter
		return
	}
	r.inUse--
}

// Use acquires the resource, holds it for dur simulated seconds, then
// releases it and runs done (which may be nil).
func (r *Resource) Use(dur Time, done func()) {
	r.Acquire(func() {
		r.eng.Schedule(dur, func() {
			r.Release()
			if done != nil {
				done()
			}
		})
	})
}
