// Package sim provides a small discrete-event simulation core used by the
// cluster, network, and processor models. Time is a float64 number of
// seconds; events are ordered by (time, sequence) so simultaneous events
// fire in schedule order, which keeps runs deterministic.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is simulated time in seconds.
type Time = float64

// Event is a scheduled callback. The callback runs with the engine clock
// already advanced to the event's time.
type Event struct {
	at   Time
	seq  uint64
	fn   func()
	idx  int // heap index; -1 when not queued
	dead bool
}

// At returns the simulated time at which the event fires (or fired).
func (e *Event) At() Time { return e.at }

// Cancel removes the event from the schedule. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.dead }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event scheduler. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	running bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have executed.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still scheduled (including cancelled
// events that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run after delay seconds of simulated time. It
// panics if delay is negative or NaN: scheduling into the past would break
// causality for every model built on top.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("sim: negative or NaN delay %v", delay))
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute time at. It panics if at is
// before the current clock.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now || math.IsNaN(at) {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Step fires the single next event. It returns false when the queue is
// empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains. It returns the final clock.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// deadline (if the clock has not passed it already) and returns it.
func (e *Engine) RunUntil(deadline Time) Time {
	for len(e.queue) > 0 {
		next := e.peek()
		if next == nil {
			break
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		if e.queue[0].dead {
			heap.Pop(&e.queue)
			continue
		}
		return e.queue[0]
	}
	return nil
}

// ErrLimit is returned by RunLimited when the event budget is exhausted.
var ErrLimit = errors.New("sim: event limit reached")

// RunLimited fires at most limit events; it returns ErrLimit if the queue
// still has events afterwards. Use it to bound runaway models in tests.
func (e *Engine) RunLimited(limit uint64) error {
	for i := uint64(0); i < limit; i++ {
		if !e.Step() {
			return nil
		}
	}
	if e.peek() != nil {
		return ErrLimit
	}
	return nil
}
