package sim

import "math"

// RNG is a small, seedable xoshiro256** generator. Models use independent
// RNG streams so that adding randomness to one subsystem does not perturb
// another — a standard trick for reproducible parallel simulations. The
// NAS EP kernel uses its own linear-congruential generator (as specified by
// NPB); this one serves the cluster/failure/workload models.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from the given seed via splitmix64, so
// that nearby seeds still yield well-separated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// All-zero state would be absorbing.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
// Used for inter-failure times in the cluster reliability model.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// NormPair returns two independent standard normal deviates (Box–Muller,
// polar form — the same transform NPB EP uses).
func (r *RNG) NormPair() (float64, float64) {
	for {
		x := 2*r.Float64() - 1
		y := 2*r.Float64() - 1
		t := x*x + y*y
		if t > 0 && t < 1 {
			f := math.Sqrt(-2 * math.Log(t) / t)
			return x * f, y * f
		}
	}
}
