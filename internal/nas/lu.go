package nas

// LU is the lower-upper simulated CFD application: symmetric successive
// over-relaxation (SSOR) sweeps over the grid in lexicographic and
// reverse order, with a dense 5×5 block factor-and-solve at every cell —
// NPB LU's defining pattern (its "block lower triangular–block upper
// triangular system of equations").
type LU struct{}

// NewLUKernel returns the kernel.
func NewLUKernel() *LU { return &LU{} }

// Name implements Kernel.
func (*LU) Name() string { return "LU" }

func luSize(c Class) (n, iters int, ok bool) {
	switch c {
	case ClassS:
		return 12, 30, true
	case ClassW:
		return 33, 30, true
	case ClassA:
		return 64, 30, true
	}
	return 0, 0, false
}

var luGoldens = map[Class]float64{
	ClassS: -1.168016457835e+02,
	ClassW: -6.142865610337e+02,
}

// Run implements Kernel.
func (l *LU) Run(class Class) (*Result, error) {
	n, iters, ok := luSize(class)
	if !ok {
		return nil, ErrClass("LU", class)
	}
	const (
		nu    = 1.0
		omega = 1.2 // NPB LU's over-relaxation factor
	)
	p := newCFDProblem(n, nu, 0)
	var w blasWork
	d := p.dim()
	strideI, strideJ := d*d, d
	lo, hi := cfdGhost, cfdGhost+n-1

	initialErr := p.errorRMS()

	// cellUpdate relaxes one cell: u_c += ω·M⁻¹·(f_c − (A·u)_c), with the
	// block factored in place per cell, as NPB's jacld/blts do.
	cellUpdate := func(ci int) {
		var au Vec5
		p.m.MulVec(&p.u[ci], &au, &w)
		for comp := 0; comp < NComp; comp++ {
			nb := p.u[ci-strideI][comp] + p.u[ci+strideI][comp] +
				p.u[ci-strideJ][comp] + p.u[ci+strideJ][comp] +
				p.u[ci-1][comp] + p.u[ci+1][comp]
			au[comp] -= nu * nb
		}
		var rhs Vec5
		for comp := 0; comp < NComp; comp++ {
			rhs[comp] = p.f[ci][comp] - au[comp]
		}
		var lu lu5
		m := p.m
		lu.Factor(&m, &w)
		var delta Vec5
		lu.Solve(&rhs, &delta)
		for comp := 0; comp < NComp; comp++ {
			p.u[ci][comp] += omega * delta[comp]
		}
		w.axpy5 += 2
	}

	for it := 0; it < iters; it++ {
		// Forward (lower) sweep.
		for i := lo; i <= hi; i++ {
			for j := lo; j <= hi; j++ {
				for k := lo; k <= hi; k++ {
					cellUpdate(p.idx(i, j, k))
				}
			}
		}
		// Backward (upper) sweep.
		for i := hi; i >= lo; i-- {
			for j := hi; j >= lo; j-- {
				for k := hi; k >= lo; k-- {
					cellUpdate(p.idx(i, j, k))
				}
			}
		}
	}

	finalErr := p.errorRMS()
	verified := finalErr < initialErr/100 && finalErr < 1e-3
	cs := p.checksum()
	if g, ok := luGoldens[class]; ok {
		verified = verified && closeTo(cs, g)
	}
	return cfdResult("LU", class, &w, uint64(d*d*d*8), uint64(d*d*d*2), iters, verified, cs), nil
}
