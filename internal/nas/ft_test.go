package nas

import (
	"math"
	"math/cmplx"
	"testing"
)

func TestFFTKnownDFT(t *testing.T) {
	// Compare against a direct O(n²) DFT.
	n := 16
	g := NewLCG(1)
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(g.Next(), g.Next()-0.5)
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			want[k] += a[j] * cmplx.Rect(1, ang)
		}
	}
	fft(a, false)
	for k := 0; k < n; k++ {
		if cmplx.Abs(a[k]-want[k]) > 1e-10 {
			t.Fatalf("bin %d: %v != %v", k, a[k], want[k])
		}
	}
}

func TestFFTRoundTripAndLinearity(t *testing.T) {
	if !ftSelfChecks(64) {
		t.Fatal("FFT self checks failed")
	}
	// Delta impulse transforms to a flat spectrum.
	a := make([]complex128, 32)
	a[0] = 1
	fft(a, false)
	for i, v := range a {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse spectrum bin %d = %v", i, v)
		}
	}
}

func TestFFT3DRoundTrip(t *testing.T) {
	g := newGrid3c(8, 16, 4)
	lcg := NewLCG(7)
	orig := make([]complex128, len(g.v))
	for i := range g.v {
		g.v[i] = complex(lcg.Next(), lcg.Next())
		orig[i] = g.v[i]
	}
	var w uint64
	g.fft3d(false, &w)
	g.fft3d(true, &w)
	for i := range g.v {
		if cmplx.Abs(g.v[i]-orig[i]) > 1e-10 {
			t.Fatalf("3D round trip diverged at %d", i)
		}
	}
	if w == 0 {
		t.Fatal("no work counted")
	}
}

func TestFTClassSVerifies(t *testing.T) {
	r, err := NewFTKernel().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatalf("FT class S failed (checksum %v)", r.Checksum)
	}
	if r.Ops <= 0 || r.Mix.Flops == 0 {
		t.Fatal("FT reported no work")
	}
}

func TestFTUnsupportedClass(t *testing.T) {
	if _, err := NewFTKernel().Run(Class('Q')); err == nil {
		t.Fatal("bad class accepted")
	}
}

func TestFTEvolutionDamps(t *testing.T) {
	// The diffusion factor must strictly damp nonzero modes: checksums
	// shrink in magnitude as t grows — verified indirectly by running
	// two classes and checking determinism.
	a, err := NewFTKernel().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewFTKernel().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if a.Checksum != b.Checksum {
		t.Fatal("FT not deterministic")
	}
}
