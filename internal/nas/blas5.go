package nas

// 5×5 block linear algebra for the simulated-CFD kernels. NPB's BT and
// LU spend their time in exactly these operations (block multiply,
// block-LU solve, block-tridiagonal elimination), so the op mix that
// reaches the CPU models is faithful even though the surrounding PDE is
// manufactured (see the package comment).

// NComp is the CFD state-vector width (mass, 3×momentum, energy).
const NComp = 5

// Mat5 is a dense 5×5 block, row-major.
type Mat5 [NComp * NComp]float64

// Vec5 is a 5-component state vector.
type Vec5 [NComp]float64

// blasWork counts block-algebra operations for the op-mix report.
type blasWork struct {
	matVec   uint64 // 5×5 · 5 products
	matMat   uint64 // 5×5 · 5×5 products
	luSolves uint64 // in-place LU factor+solve of a 5×5 block
	axpy5    uint64 // 5-vector scale-adds
	penta    uint64 // pentadiagonal row eliminations (SP)
}

// flopCounts converts the tallies into class counts (adds, mults, divs).
func (w *blasWork) flopCounts() (fpAdd, fpMul, fpDiv uint64) {
	// matVec: 25 mult + 20 add; matMat: 125 mult + 100 add;
	// LU factor 5×5: ~(2/3)·125 ≈ 83 ops split mult/add + 5 reciprocals;
	// two triangular solves: 25 mult + 20 add; axpy: 5+5; penta row: 10.
	fpMul = 25*w.matVec + 125*w.matMat + 55*w.luSolves + 5*w.axpy5 + 6*w.penta
	fpAdd = 20*w.matVec + 100*w.matMat + 50*w.luSolves + 5*w.axpy5 + 4*w.penta
	fpDiv = 5 * w.luSolves
	return
}

// MulVec computes y = A·x.
func (a *Mat5) MulVec(x *Vec5, y *Vec5, w *blasWork) {
	for i := 0; i < NComp; i++ {
		var s float64
		row := a[i*NComp : i*NComp+NComp]
		for j := 0; j < NComp; j++ {
			s += row[j] * x[j]
		}
		y[i] = s
	}
	w.matVec++
}

// MulMat computes c = A·B.
func (a *Mat5) MulMat(b, c *Mat5, w *blasWork) {
	for i := 0; i < NComp; i++ {
		for j := 0; j < NComp; j++ {
			var s float64
			for k := 0; k < NComp; k++ {
				s += a[i*NComp+k] * b[k*NComp+j]
			}
			c[i*NComp+j] = s
		}
	}
	w.matMat++
}

// SubMulMat computes a -= b·c.
func (a *Mat5) SubMulMat(b, c *Mat5, w *blasWork) {
	for i := 0; i < NComp; i++ {
		for j := 0; j < NComp; j++ {
			var s float64
			for k := 0; k < NComp; k++ {
				s += b[i*NComp+k] * c[k*NComp+j]
			}
			a[i*NComp+j] -= s
		}
	}
	w.matMat++
}

// SubMulVec computes y -= A·x.
func (a *Mat5) SubMulVec(x, y *Vec5, w *blasWork) {
	for i := 0; i < NComp; i++ {
		var s float64
		for j := 0; j < NComp; j++ {
			s += a[i*NComp+j] * x[j]
		}
		y[i] -= s
	}
	w.matVec++
}

// lu5 holds an LU factorization (no pivoting, like NPB's binvcrhs — the
// blocks are strongly diagonally dominant by construction).
type lu5 struct {
	f Mat5
}

// Factor computes the in-place LU decomposition of a.
func (l *lu5) Factor(a *Mat5, w *blasWork) {
	l.f = *a
	f := &l.f
	for k := 0; k < NComp; k++ {
		pivInv := 1 / f[k*NComp+k]
		for i := k + 1; i < NComp; i++ {
			m := f[i*NComp+k] * pivInv
			f[i*NComp+k] = m
			for j := k + 1; j < NComp; j++ {
				f[i*NComp+j] -= m * f[k*NComp+j]
			}
		}
	}
	w.luSolves++
}

// Solve computes x = A⁻¹ b using the factorization.
func (l *lu5) Solve(b *Vec5, x *Vec5) {
	f := &l.f
	// Forward.
	for i := 0; i < NComp; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= f[i*NComp+j] * x[j]
		}
		x[i] = s
	}
	// Backward.
	for i := NComp - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < NComp; j++ {
			s -= f[i*NComp+j] * x[j]
		}
		x[i] = s / f[i*NComp+i]
	}
}

// SolveMat computes X = A⁻¹ B column by column.
func (l *lu5) SolveMat(b, x *Mat5, w *blasWork) {
	var col, sol Vec5
	for j := 0; j < NComp; j++ {
		for i := 0; i < NComp; i++ {
			col[i] = b[i*NComp+j]
		}
		l.Solve(&col, &sol)
		for i := 0; i < NComp; i++ {
			x[i*NComp+j] = sol[i]
		}
	}
	w.matMat++ // comparable volume
}

// blockTriSolve solves the block-tridiagonal system with sub-diagonal
// blocks a[1..m-1], diagonal b[0..m-1], super-diagonal c[0..m-2] and
// right-hand sides r[0..m-1], in place (block Thomas algorithm — the
// heart of NPB BT's x/y/z solves).
func blockTriSolve(a, b, c []Mat5, r []Vec5, w *blasWork) {
	m := len(b)
	var lu lu5
	var tmpM Mat5
	var tmpV Vec5
	// Forward elimination.
	lu.Factor(&b[0], w)
	lu.SolveMat(&c[0], &tmpM, w)
	c[0] = tmpM
	lu.Solve(&r[0], &tmpV)
	r[0] = tmpV
	for i := 1; i < m; i++ {
		// b[i] -= a[i]·c[i-1]; r[i] -= a[i]·r[i-1].
		b[i].SubMulMat(&a[i], &c[i-1], w)
		a[i].SubMulVec(&r[i-1], &r[i], w)
		lu.Factor(&b[i], w)
		if i < m-1 {
			lu.SolveMat(&c[i], &tmpM, w)
			c[i] = tmpM
		}
		lu.Solve(&r[i], &tmpV)
		r[i] = tmpV
	}
	// Back substitution: r[i] -= c[i]·r[i+1].
	for i := m - 2; i >= 0; i-- {
		c[i].SubMulVec(&r[i+1], &r[i], w)
	}
}

// pentaSolve solves a scalar pentadiagonal system in place (bands
// e,a,d,c,f: second-sub, sub, diagonal, super, second-super), the core of
// NPB SP's line solves. All slices have length m; out-of-range band
// entries are ignored.
func pentaSolve(e, a, d, c, f, r []float64, w *blasWork) {
	m := len(d)
	// Forward elimination without pivoting (diagonally dominant).
	for i := 0; i < m; i++ {
		if i+1 < m {
			fac := a[i+1] / d[i]
			d[i+1] -= fac * c[i]
			if i+2 <= m-1 {
				c[i+1] -= fac * f[i]
			}
			r[i+1] -= fac * r[i]
			w.penta++
		}
		if i+2 < m {
			fac := e[i+2] / d[i]
			a[i+2] -= fac * c[i]
			d[i+2] -= fac * f[i]
			r[i+2] -= fac * r[i]
			w.penta++
		}
	}
	// Back substitution.
	for i := m - 1; i >= 0; i-- {
		s := r[i]
		if i+1 < m {
			s -= c[i] * r[i+1]
		}
		if i+2 < m {
			s -= f[i] * r[i+2]
		}
		r[i] = s / d[i]
		w.penta++
	}
}
