// Package nas implements the NAS Parallel Benchmarks 2.3 kernels the
// paper's Table 3 runs: BT, SP, LU (simulated CFD applications), MG
// (multigrid Poisson), EP (embarrassingly parallel Gaussian deviates),
// and IS (integer sort) — plus CG as a bonus kernel. EP, IS, MG and CG
// follow the NPB problem statements directly (including NPB's linear
// congruential generator); BT, SP and LU implement the same computational
// patterns (ADI block-tridiagonal / scalar-pentadiagonal solves, SSOR
// sweeps on a five-component grid) on manufactured problems with exact
// residual verification, since the full NPB discretizations are thousands
// of lines of Fortran whose numerics the paper's Mops comparison does not
// depend on. See DESIGN.md for the substitution note.
//
// Every kernel counts the floating-point work it performs and reports an
// operation mix, which the cpu package's calibrated models convert into
// per-processor Mops ratings.
package nas

import (
	"fmt"

	"repro/internal/isa"
)

// Class is an NPB problem class.
type Class byte

const (
	// ClassS is the sample size for quick verification.
	ClassS Class = 'S'
	// ClassW is the workstation size the paper's Table 3 reports.
	ClassW Class = 'W'
	// ClassA is the first "real" size.
	ClassA Class = 'A'
)

func (c Class) String() string { return string(c) }

// Result reports one kernel run.
type Result struct {
	Kernel   string
	Class    Class
	Verified bool
	// Ops is the nominal operation count the Mops rating divides by.
	Ops float64
	// Mix is the dynamic operation mix for the CPU timing models.
	Mix isa.Trace
	// Checksum is the kernel's verification scalar (meaning varies).
	Checksum float64
}

// Kernel is a runnable benchmark.
type Kernel interface {
	Name() string
	Run(class Class) (*Result, error)
}

// --- NPB pseudorandom generator ---

// The NPB generator: x_{k+1} = a·x_k mod 2^46, returning x·2^-46, with
// a = 5^13 and default seed 271828183. Since 2^46 divides 2^64, the
// modular product is just the low 46 bits of the wrapped 64-bit product.

const (
	// LCGMult is a = 5^13.
	LCGMult uint64 = 1220703125
	// lcgMask keeps the low 46 bits.
	lcgMask uint64 = 1<<46 - 1
	// lcgScale is 2^-46.
	lcgScale = 1.0 / (1 << 46)
)

// LCG is the NPB random stream.
type LCG struct {
	seed uint64
}

// NewLCG starts a stream at the given seed.
func NewLCG(seed uint64) *LCG { return &LCG{seed: seed & lcgMask} }

// Next returns the next uniform value in (0,1).
func (g *LCG) Next() float64 {
	g.seed = (g.seed * LCGMult) & lcgMask
	return float64(g.seed) * lcgScale
}

// Seed returns the current raw seed.
func (g *LCG) Seed() uint64 { return g.seed }

// Skip advances the stream by n steps in O(log n) (the NPB "power" jump
// used to give parallel ranks independent substreams).
func (g *LCG) Skip(n uint64) {
	mult := powMod46(LCGMult, n)
	g.seed = (g.seed * mult) & lcgMask
}

// powMod46 computes a^n mod 2^46.
func powMod46(a, n uint64) uint64 {
	result := uint64(1)
	base := a & lcgMask
	for n > 0 {
		if n&1 == 1 {
			result = (result * base) & lcgMask
		}
		base = (base * base) & lcgMask
		n >>= 1
	}
	return result
}

// mixFromCounts builds an operation mix from aggregate counts; kernels
// use it to summarize their dynamic work for the timing models.
func mixFromCounts(fpAdd, fpMul, fpDiv, fpSqrt, load, store, intALU, branch uint64) isa.Trace {
	var tr isa.Trace
	tr.ByClass[isa.ClassFPAdd] = fpAdd
	tr.ByClass[isa.ClassFPMul] = fpMul
	tr.ByClass[isa.ClassFPDiv] = fpDiv
	tr.ByClass[isa.ClassFPSqrt] = fpSqrt
	tr.ByClass[isa.ClassLoad] = load
	tr.ByClass[isa.ClassStore] = store
	tr.ByClass[isa.ClassIntALU] = intALU
	tr.ByClass[isa.ClassBranch] = branch
	tr.Flops = fpAdd + fpMul + fpDiv + fpSqrt
	tr.Instrs = fpAdd + fpMul + fpDiv + fpSqrt + load + store + intALU + branch
	return tr
}

// ErrClass signals an unsupported class for a kernel.
func ErrClass(kernel string, c Class) error {
	return fmt.Errorf("nas: %s: unsupported class %q", kernel, c)
}

// AllKernels returns the Table 3 kernels in the paper's row order
// (BT, SP, LU, MG, EP, IS) plus the bonus CG and FT.
func AllKernels() []Kernel {
	return append(Table3Kernels(), NewCG(), NewFT())
}

// Table3Kernels returns exactly the paper's Table 3 rows.
func Table3Kernels() []Kernel {
	return []Kernel{NewBT(), NewSP(), NewLU(), NewMG(), NewEP(), NewIS()}
}
