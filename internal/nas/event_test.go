package nas

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
	"repro/internal/obs"
)

// worldSnapshot renders a world's full observability state to JSON so
// two runs can be compared byte-for-byte.
func worldSnapshot(t *testing.T, w *mpi.World) []byte {
	t.Helper()
	s := obs.NewSnapshot()
	s.Gather(w)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEventModeBitIdenticalKernels pins the tentpole contract: the
// event-driven scheduler reproduces the goroutine path bit-for-bit —
// virtual times, results, checksums and every observability counter —
// for both NPB kernels across rank counts, fabrics and collective
// algorithms.
func TestEventModeBitIdenticalKernels(t *testing.T) {
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateClassW)
	if err != nil {
		t.Fatal(err)
	}
	fabrics := map[string]func() *netsim.Fabric{
		"star": netsim.FastEthernet,
		"contended": func() *netsim.Fabric {
			f := netsim.FastEthernet()
			f.PortContention = true
			return f
		},
		"fattree": func() *netsim.Fabric {
			f := netsim.FastEthernet()
			if err := netsim.ApplyTopology(f, "fattree", 64); err != nil {
				t.Fatal(err)
			}
			return f
		},
		"torus2d": func() *netsim.Fabric {
			f := netsim.FastEthernet()
			if err := netsim.ApplyTopology(f, "torus2d", 64); err != nil {
				t.Fatal(err)
			}
			return f
		},
	}
	for fname, mkFab := range fabrics {
		for _, native := range []bool{false, true} {
			for _, p := range []int{2, 8, 24, 64} {
				mk := func(event bool) *mpi.World {
					w, err := mpi.NewWorldWithConfig(p, mpi.Config{
						Fabric: mkFab(),
						Native: native,
						Event:  event,
					})
					if err != nil {
						t.Fatal(err)
					}
					return w
				}
				check := func(kernel string, run func(w *mpi.World) (*ParallelResult, error)) {
					wg, we := mk(false), mk(true)
					rg, err := run(wg)
					if err != nil {
						t.Fatalf("%s/%s native=%v p=%d goroutine: %v", fname, kernel, native, p, err)
					}
					re, err := run(we)
					if err != nil {
						t.Fatalf("%s/%s native=%v p=%d event: %v", fname, kernel, native, p, err)
					}
					if math.Float64bits(rg.SimTime) != math.Float64bits(re.SimTime) {
						t.Errorf("%s/%s native=%v p=%d: sim time %x vs %x", fname, kernel, native, p,
							math.Float64bits(rg.SimTime), math.Float64bits(re.SimTime))
					}
					if math.Float64bits(rg.Checksum) != math.Float64bits(re.Checksum) {
						t.Errorf("%s/%s native=%v p=%d: checksum differs", fname, kernel, native, p)
					}
					if rg.Verified != re.Verified || rg.CommByte != re.CommByte || rg.Ops != re.Ops {
						t.Errorf("%s/%s native=%v p=%d: result fields differ: %+v vs %+v",
							fname, kernel, native, p, rg, re)
					}
					if !re.Verified {
						t.Errorf("%s/%s native=%v p=%d: event run failed verification", fname, kernel, native, p)
					}
					sg, se := worldSnapshot(t, wg), worldSnapshot(t, we)
					if !bytes.Equal(sg, se) {
						t.Errorf("%s/%s native=%v p=%d: obs snapshots differ:\n%s\nvs\n%s",
							fname, kernel, native, p, sg, se)
					}
				}
				check("EP", func(w *mpi.World) (*ParallelResult, error) {
					return ParallelEP(w, ClassS, costs)
				})
				check("IS", func(w *mpi.World) (*ParallelResult, error) {
					return ParallelIS(w, ClassS, costs)
				})
			}
		}
	}
}

// TestEventModePoolInvariant runs the pooled-vs-unpooled bit-identity
// property on the event path: pooling must stay invisible in the
// physics under the event scheduler too.
func TestEventModePoolInvariant(t *testing.T) {
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateClassW)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8, 64} {
		run := func(disable bool) (*ParallelResult, *ParallelResult) {
			mk := func() *mpi.World {
				w, err := mpi.NewWorldWithConfig(p, mpi.Config{
					Fabric:      netsim.FastEthernet(),
					DisablePool: disable,
					Event:       true,
				})
				if err != nil {
					t.Fatal(err)
				}
				return w
			}
			ep, err := ParallelEP(mk(), ClassS, costs)
			if err != nil {
				t.Fatalf("p=%d EP: %v", p, err)
			}
			is, err := ParallelIS(mk(), ClassS, costs)
			if err != nil {
				t.Fatalf("p=%d IS: %v", p, err)
			}
			return ep, is
		}
		epP, isP := run(false)
		epU, isU := run(true)
		for _, pair := range []struct {
			name string
			a, b *ParallelResult
		}{{"EP", epP, epU}, {"IS", isP, isU}} {
			if math.Float64bits(pair.a.SimTime) != math.Float64bits(pair.b.SimTime) {
				t.Errorf("p=%d %s: sim time differs pooled vs unpooled", p, pair.name)
			}
			if math.Float64bits(pair.a.Checksum) != math.Float64bits(pair.b.Checksum) {
				t.Errorf("p=%d %s: checksum differs pooled vs unpooled", p, pair.name)
			}
			if !pair.a.Verified || !pair.b.Verified {
				t.Errorf("p=%d %s: must verify", p, pair.name)
			}
		}
	}
}
