package nas

// Constructors for the kernel lists.
func NewBT() Kernel { return NewBTKernel() }
func NewSP() Kernel { return NewSPKernel() }
func NewLU() Kernel { return NewLUKernel() }
func NewMG() Kernel { return NewMGKernel() }
func NewIS() Kernel { return NewISKernel() }
func NewCG() Kernel { return NewCGKernel() }
func NewFT() Kernel { return NewFTKernel() }
