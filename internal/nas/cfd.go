package nas

import "math"

// The simulated-CFD kernels (BT, SP, LU) share one manufactured
// five-component elliptic problem
//
//	A·u = f,   (A·u)_c = M·u_c − ν·Σ_{6 neighbours} u_nb  (+ optional
//	            fourth-difference dissipation for SP)
//
// on an n³ grid with Dirichlet boundaries taken from the exact solution,
// where M is a dense, diagonally dominant 5×5 coupling block. f is
// computed by applying A to the exact solution, so every solver's error
// is exactly measurable — this replaces NPB's Navier–Stokes
// discretization while preserving each benchmark's distinguishing solve
// structure (BT: block-tridiagonal ADI; SP: scalar pentadiagonal ADI;
// LU: SSOR with 5×5 blocks). See the package comment and DESIGN.md.

// cfdProblem is one manufactured instance.
type cfdProblem struct {
	n   int // interior cells per dimension
	nu  float64
	eps float64 // 4th-difference dissipation (SP only)
	m   Mat5    // coupling block
	// u and f are (n+4)³ Vec5 grids with a 2-cell ghost frame (the wide
	// frame serves SP's five-point bands).
	u, f []Vec5
}

const cfdGhost = 2

func (p *cfdProblem) dim() int { return p.n + 2*cfdGhost }

func (p *cfdProblem) idx(i, j, k int) int {
	d := p.dim()
	return (i*d+j)*d + k
}

// exact is the manufactured solution: smooth trigonometric fields,
// distinct per component.
func (p *cfdProblem) exact(i, j, k, comp int) float64 {
	h := 1.0 / float64(p.n+1)
	x := float64(i-cfdGhost+1) * h
	y := float64(j-cfdGhost+1) * h
	z := float64(k-cfdGhost+1) * h
	c := float64(comp + 1)
	return math.Sin(c*math.Pi*x+0.3*c) * math.Cos((c+1)*math.Pi*y) * math.Sin((c+0.5)*math.Pi*z+0.1*c)
}

// newCFDProblem builds the problem with u initialized to zero in the
// interior and to the exact solution on the ghost frame.
func newCFDProblem(n int, nu, eps float64) *cfdProblem {
	p := &cfdProblem{n: n, nu: nu, eps: eps}
	d := p.dim()
	p.u = make([]Vec5, d*d*d)
	p.f = make([]Vec5, d*d*d)

	// Coupling block: strongly diagonally dominant with dense smaller
	// off-diagonal entries (the inter-equation coupling BT/LU see).
	diag := 6*nu + 1 + 12*eps
	for i := 0; i < NComp; i++ {
		for j := 0; j < NComp; j++ {
			if i == j {
				p.m[i*NComp+j] = diag
			} else {
				p.m[i*NComp+j] = 0.02 * nu * float64(1+((i+j)%3))
			}
		}
	}

	// Ghost frame (and a scratch exact field for f).
	ue := make([]Vec5, d*d*d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			for k := 0; k < d; k++ {
				for c := 0; c < NComp; c++ {
					ue[p.idx(i, j, k)][c] = p.exact(i, j, k, c)
				}
			}
		}
	}
	// f = A·uexact on the interior.
	var w blasWork
	p.applyA(ue, p.f, &w)
	// Boundary of u = exact (ghost frame); interior starts at zero.
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			for k := 0; k < d; k++ {
				if p.interior(i, j, k) {
					continue
				}
				p.u[p.idx(i, j, k)] = ue[p.idx(i, j, k)]
			}
		}
	}
	return p
}

func (p *cfdProblem) interior(i, j, k int) bool {
	lo, hi := cfdGhost, cfdGhost+p.n-1
	return i >= lo && i <= hi && j >= lo && j <= hi && k >= lo && k <= hi
}

// applyA computes out = A·in on the interior (out's frame is untouched).
func (p *cfdProblem) applyA(in, out []Vec5, w *blasWork) {
	lo, hi := cfdGhost, cfdGhost+p.n-1
	d := p.dim()
	strideI, strideJ := d*d, d
	for i := lo; i <= hi; i++ {
		for j := lo; j <= hi; j++ {
			for k := lo; k <= hi; k++ {
				c := p.idx(i, j, k)
				var y Vec5
				p.m.MulVec(&in[c], &y, w)
				for comp := 0; comp < NComp; comp++ {
					nb := in[c-strideI][comp] + in[c+strideI][comp] +
						in[c-strideJ][comp] + in[c+strideJ][comp] +
						in[c-1][comp] + in[c+1][comp]
					v := y[comp] - p.nu*nb
					if p.eps > 0 {
						// Fourth-difference dissipation along each axis
						// (the term that makes SP's systems pentadiagonal).
						d4 := in[c-2*strideI][comp] - 4*in[c-strideI][comp] - 4*in[c+strideI][comp] + in[c+2*strideI][comp] +
							in[c-2*strideJ][comp] - 4*in[c-strideJ][comp] - 4*in[c+strideJ][comp] + in[c+2*strideJ][comp] +
							in[c-2][comp] - 4*in[c-1][comp] - 4*in[c+1][comp] + in[c+2][comp] +
							18*in[c][comp]
						v += p.eps * d4
					}
					out[c][comp] = v
				}
				w.axpy5 += 2
			}
		}
	}
}

// residual computes r = f − A·u on the interior and returns its RMS.
func (p *cfdProblem) residual(r []Vec5, w *blasWork) float64 {
	p.applyA(p.u, r, w)
	lo, hi := cfdGhost, cfdGhost+p.n-1
	var sum float64
	cnt := 0
	for i := lo; i <= hi; i++ {
		for j := lo; j <= hi; j++ {
			for k := lo; k <= hi; k++ {
				c := p.idx(i, j, k)
				for comp := 0; comp < NComp; comp++ {
					r[c][comp] = p.f[c][comp] - r[c][comp]
					sum += r[c][comp] * r[c][comp]
				}
				cnt += NComp
			}
		}
	}
	return math.Sqrt(sum / float64(cnt))
}

// errorRMS returns the RMS difference between u and the exact solution.
func (p *cfdProblem) errorRMS() float64 {
	lo, hi := cfdGhost, cfdGhost+p.n-1
	var sum float64
	cnt := 0
	for i := lo; i <= hi; i++ {
		for j := lo; j <= hi; j++ {
			for k := lo; k <= hi; k++ {
				c := p.idx(i, j, k)
				for comp := 0; comp < NComp; comp++ {
					d := p.u[c][comp] - p.exact(i, j, k, comp)
					sum += d * d
				}
				cnt += NComp
			}
		}
	}
	return math.Sqrt(sum / float64(cnt))
}

// checksum folds the solution into a scalar for golden comparisons.
func (p *cfdProblem) checksum() float64 {
	lo, hi := cfdGhost, cfdGhost+p.n-1
	var s float64
	for i := lo; i <= hi; i++ {
		for j := lo; j <= hi; j++ {
			for k := lo; k <= hi; k++ {
				c := p.idx(i, j, k)
				for comp := 0; comp < NComp; comp++ {
					s += p.u[c][comp] * float64(1+(i+2*j+3*k+comp)%7)
				}
			}
		}
	}
	return s
}

// cfdResult assembles a Result from the shared bookkeeping.
func cfdResult(kernel string, class Class, w *blasWork, extraLoads, extraStores uint64, iterations int, verified bool, checksum float64) *Result {
	fpAdd, fpMul, fpDiv := w.flopCounts()
	res := &Result{
		Kernel:   kernel,
		Class:    class,
		Verified: verified,
		Checksum: checksum,
		Ops:      float64(fpAdd + fpMul + fpDiv),
	}
	// Memory traffic estimate: block algebra streams its operands.
	loads := fpMul + extraLoads
	stores := fpMul/4 + extraStores
	res.Mix = mixFromCounts(fpAdd, fpMul, fpDiv, 0, loads, stores,
		(fpAdd+fpMul)/4, (fpAdd+fpMul)/50)
	_ = iterations
	return res
}
