package nas

import (
	"fmt"
)

// IS is the integer-sort kernel: rank N keys drawn from the NPB
// generator (four uniforms summed per key, so keys are near-Gaussian)
// over MaxIterations ranking passes with the NPB per-iteration key
// twiddles, then fully sort and verify. Verification here is the strong
// form — the final permutation is checked sorted and a rank checksum is
// compared against recorded goldens — rather than NPB's five-point
// partial verification table.
type IS struct{}

// NewISKernel returns the kernel (NewIS is the package-level constructor
// used by kernel lists).
func NewISKernel() *IS { return &IS{} }

// ISMaxIterations is NPB's ranking-iteration count.
const ISMaxIterations = 10

const isSeed = 314159265

func isSize(c Class) (totalKeys, maxKey int, ok bool) {
	switch c {
	case ClassS:
		return 1 << 16, 1 << 11, true
	case ClassW:
		return 1 << 20, 1 << 16, true
	case ClassA:
		return 1 << 23, 1 << 19, true
	}
	return 0, 0, false
}

// Name implements Kernel.
func (*IS) Name() string { return "IS" }

// Run implements Kernel.
func (k *IS) Run(class Class) (*Result, error) {
	n, maxKey, ok := isSize(class)
	if !ok {
		return nil, ErrClass("IS", class)
	}
	keys := isCreateSeq(n, maxKey)

	var rankChecksum uint64
	counts := make([]int64, maxKey)
	for iter := 1; iter <= ISMaxIterations; iter++ {
		// NPB's per-iteration modifications keep the ranking honest.
		keys[iter] = int64(iter)
		keys[iter+ISMaxIterations] = int64(maxKey - iter)
		// Rank: histogram + exclusive prefix sum.
		for i := range counts {
			counts[i] = 0
		}
		for _, key := range keys {
			counts[key]++
		}
		sum := int64(0)
		for i := range counts {
			c := counts[i]
			counts[i] = sum
			sum += c
		}
		// Fold a few ranks into the checksum (stand-in for NPB's partial
		// verification points).
		for probe := 0; probe < 5; probe++ {
			idx := (probe*n/5 + iter) % n
			rankChecksum = rankChecksum*1099511628211 + uint64(counts[keys[idx]])
		}
	}

	// Full sort from the final ranking.
	sorted := make([]int64, n)
	pos := append([]int64(nil), counts...)
	for _, key := range keys {
		sorted[pos[key]] = key
		pos[key]++
	}
	verified := true
	for i := 1; i < n; i++ {
		if sorted[i-1] > sorted[i] {
			verified = false
			break
		}
	}
	// Permutation check: per-key counts must match.
	recount := make([]int64, maxKey)
	for _, key := range sorted {
		if key < 0 || key >= int64(maxKey) {
			return nil, fmt.Errorf("nas: IS: key %d out of range", key)
		}
		recount[key]++
	}
	hist := make([]int64, maxKey)
	for _, key := range keys {
		hist[key]++
	}
	for i := range hist {
		if hist[i] != recount[i] {
			verified = false
			break
		}
	}

	res := &Result{
		Kernel:   "IS",
		Class:    class,
		Verified: verified,
		Checksum: float64(rankChecksum % (1 << 52)),
		// NPB rates IS in millions of keys ranked per second.
		Ops: float64(ISMaxIterations) * float64(n),
	}
	nn := uint64(n)
	it := uint64(ISMaxIterations)
	mk := uint64(maxKey)
	res.Mix = mixFromCounts(
		4*nn, // fpAdd: key generation sums
		4*nn, // fpMul: generator scaling
		0, 0,
		it*(2*nn+mk)+2*nn, // loads: histogram + prefix + permute
		it*(nn+mk)+nn,     // stores
		it*(3*nn+2*mk),    // int ALU: indexing, increments
		it*nn/4,           // branches
	)
	return res, nil
}

// isCreateSeq generates the NPB IS key sequence.
func isCreateSeq(n, maxKey int) []int64 {
	g := NewLCG(isSeed)
	k := float64(maxKey) / 4
	keys := make([]int64, n)
	for i := 0; i < n; i++ {
		x := g.Next()
		x += g.Next()
		x += g.Next()
		x += g.Next()
		keys[i] = int64(k * x)
		if keys[i] >= int64(maxKey) {
			keys[i] = int64(maxKey) - 1
		}
	}
	return keys
}
