package nas

import (
	"math"
	"testing"

	"repro/internal/cpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// TestParallelKernelsPoolInvariant pins the substrate's core contract:
// buffer pooling is invisible in the physics. Results, checksums,
// communication volumes and simulated times of the distributed kernels
// must be bit-for-bit identical with pooling disabled.
func TestParallelKernelsPoolInvariant(t *testing.T) {
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateClassW)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p int, disable bool) (*ParallelResult, *ParallelResult) {
		mk := func() *mpi.World {
			w, err := mpi.NewWorldWithConfig(p, mpi.Config{
				Fabric:       netsim.FastEthernet(),
				DisablePool:  disable,
				ChannelDepth: 256,
			})
			if err != nil {
				t.Fatal(err)
			}
			return w
		}
		ep, err := ParallelEP(mk(), ClassS, costs)
		if err != nil {
			t.Fatalf("p=%d EP: %v", p, err)
		}
		is, err := ParallelIS(mk(), ClassS, costs)
		if err != nil {
			t.Fatalf("p=%d IS: %v", p, err)
		}
		return ep, is
	}
	same := func(name string, a, b *ParallelResult, p int) {
		if math.Float64bits(a.SimTime) != math.Float64bits(b.SimTime) {
			t.Errorf("p=%d %s: sim time %x vs %x", p, name,
				math.Float64bits(a.SimTime), math.Float64bits(b.SimTime))
		}
		if math.Float64bits(a.Checksum) != math.Float64bits(b.Checksum) {
			t.Errorf("p=%d %s: checksum differs", p, name)
		}
		if a.Ops != b.Ops || a.CommByte != b.CommByte || a.Verified != b.Verified {
			t.Errorf("p=%d %s: ops/bytes/verified differ: %+v vs %+v", p, name, a, b)
		}
	}
	for _, p := range []int{2, 8, 24} {
		epP, isP := run(p, false)
		epU, isU := run(p, true)
		same("EP", epP, epU, p)
		same("IS", isP, isU, p)
		if !epP.Verified || !isP.Verified {
			t.Fatalf("p=%d: kernels must verify (EP %v, IS %v)", p, epP.Verified, isP.Verified)
		}
	}
}
