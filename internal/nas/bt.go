package nas

// BT is the block-tridiagonal simulated CFD application: an
// alternating-direction-implicit iteration whose x, y and z sweeps each
// solve, for every grid line, a block-tridiagonal system with dense 5×5
// blocks — NPB BT's defining computational pattern.
type BT struct{}

// NewBTKernel returns the kernel.
func NewBTKernel() *BT { return &BT{} }

// Name implements Kernel.
func (*BT) Name() string { return "BT" }

func btSize(c Class) (n, iters int, ok bool) {
	switch c {
	case ClassS:
		return 12, 40, true
	case ClassW:
		return 24, 40, true
	case ClassA:
		return 64, 40, true
	}
	return 0, 0, false
}

// btGoldens: recorded solution checksums per class (this implementation).
var btGoldens = map[Class]float64{
	ClassS: -1.168016584833e+02,
	ClassW: -3.524331300807e+02,
}

// Run implements Kernel.
func (b *BT) Run(class Class) (*Result, error) {
	n, iters, ok := btSize(class)
	if !ok {
		return nil, ErrClass("BT", class)
	}
	const (
		nu  = 1.0
		tau = 0.6
	)
	p := newCFDProblem(n, nu, 0)
	var w blasWork
	d := p.dim()
	r := make([]Vec5, d*d*d)
	delta := make([]Vec5, d*d*d)

	// Per-line scratch (reused across lines).
	sub := make([]Mat5, n)
	diag := make([]Mat5, n)
	sup := make([]Mat5, n)
	rhs := make([]Vec5, n)

	// Implicit blocks for (I + τ·A_d): constant along every line.
	var diagBlock, offBlock Mat5
	for i := 0; i < NComp; i++ {
		for j := 0; j < NComp; j++ {
			diagBlock[i*NComp+j] = tau / 3 * p.m[i*NComp+j]
			if i == j {
				diagBlock[i*NComp+j]++
			}
		}
		offBlock[i*NComp+i] = -tau * nu
	}

	initialErr := p.errorRMS()
	lo := cfdGhost

	// sweep solves (I+τA_d)·out = in along direction d (stride), writing
	// the line solutions into out.
	sweep := func(in, out []Vec5, stride int) {
		for a := lo; a < lo+n; a++ {
			for bI := lo; bI < lo+n; bI++ {
				// The line runs along the stride axis; (a,b) fix the
				// other two. Compute the base cell index.
				var base int
				switch stride {
				case d * d: // x-line: vary i
					base = p.idx(lo, a, bI)
				case d: // y-line: vary j
					base = p.idx(a, lo, bI)
				default: // z-line: vary k
					base = p.idx(a, bI, lo)
				}
				for i := 0; i < n; i++ {
					sub[i] = offBlock
					diag[i] = diagBlock
					sup[i] = offBlock
					rhs[i] = in[base+i*stride]
				}
				blockTriSolve(sub, diag, sup, rhs, &w)
				for i := 0; i < n; i++ {
					out[base+i*stride] = rhs[i]
				}
			}
		}
	}

	for it := 0; it < iters; it++ {
		p.residual(r, &w)
		// Scale by τ.
		for i := range r {
			for c := 0; c < NComp; c++ {
				r[i][c] *= tau
			}
		}
		sweep(r, delta, d*d)
		sweep(delta, r, d)
		sweep(r, delta, 1)
		lo2, hi2 := cfdGhost, cfdGhost+n-1
		for i := lo2; i <= hi2; i++ {
			for j := lo2; j <= hi2; j++ {
				for k := lo2; k <= hi2; k++ {
					c := p.idx(i, j, k)
					for comp := 0; comp < NComp; comp++ {
						p.u[c][comp] += delta[c][comp]
					}
				}
			}
		}
	}

	finalErr := p.errorRMS()
	verified := finalErr < initialErr/100 && finalErr < 1e-3
	cs := p.checksum()
	if g, ok := btGoldens[class]; ok {
		verified = verified && closeTo(cs, g)
	}
	return cfdResult("BT", class, &w, uint64(d*d*d*8), uint64(d*d*d*2), iters, verified, cs), nil
}
