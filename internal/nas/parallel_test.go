package nas

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

func TestParallelEPMatchesSerialVerification(t *testing.T) {
	// Any rank count must reproduce the serial stream bit-for-bit (via
	// the LCG jump) and therefore pass the official NPB verification.
	for _, p := range []int{1, 2, 3, 8, 24} {
		w, err := mpi.NewWorld(p, netsim.FastEthernet())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ParallelEP(w, ClassS, cpu.EffCosts{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("p=%d: parallel EP failed NPB verification (checksum %v)", p, res.Checksum)
		}
		if res.Ranks != p {
			t.Fatalf("ranks = %d", res.Ranks)
		}
	}
}

func TestParallelEPSimTimeScales(t *testing.T) {
	costs, err := cpu.CalibrateFor(cpu.NewTM5600(), cpu.MissRateSmall)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p int) float64 {
		w, _ := mpi.NewWorld(p, netsim.FastEthernet())
		res, err := ParallelEP(w, ClassS, costs)
		if err != nil {
			t.Fatal(err)
		}
		return res.SimTime
	}
	t1, t8, t24 := run(1), run(8), run(24)
	if !(t1 > t8 && t8 > t24) {
		t.Fatalf("EP did not scale: %g, %g, %g", t1, t8, t24)
	}
	// EP is embarrassingly parallel: near-ideal speedup.
	if s := t1 / t24; s < 20 {
		t.Fatalf("EP speedup at 24 ranks only %.1f", s)
	}
}

func TestParallelISVerifies(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8, 16} {
		w, err := mpi.NewWorld(p, netsim.FastEthernet())
		if err != nil {
			t.Fatal(err)
		}
		res, err := ParallelIS(w, ClassS, cpu.EffCosts{})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !res.Verified {
			t.Fatalf("p=%d: parallel IS failed verification", p)
		}
		if p > 1 && res.CommByte == 0 {
			t.Fatalf("p=%d: no communication recorded", p)
		}
	}
}

func TestISCreateSeqRangeMatchesSerial(t *testing.T) {
	serial := isCreateSeq(1000, 1<<11)
	for _, span := range [][2]int{{0, 100}, {100, 400}, {500, 500}} {
		part := isCreateSeqRange(span[0], span[1], 1<<11)
		for i, k := range part {
			if k != serial[span[0]+i] {
				t.Fatalf("span %v: key %d = %d, serial %d", span, i, k, serial[span[0]+i])
			}
		}
	}
}

func TestBucketBoundsBalanced(t *testing.T) {
	// A uniform histogram must split into near-equal ranges.
	hist := make([]float64, 1000)
	for i := range hist {
		hist[i] = 10
	}
	bounds := bucketBounds(hist, 4, 10000)
	if bounds[0] != 0 {
		t.Fatalf("bounds[0] = %d", bounds[0])
	}
	for r := 1; r < 4; r++ {
		want := r * 250
		if bounds[r] < want-5 || bounds[r] > want+5 {
			t.Fatalf("bounds = %v, want ≈[0 250 500 750]", bounds)
		}
	}
}

func TestParallelISMoreRanksThanKeys(t *testing.T) {
	w, _ := mpi.NewWorld(4, nil)
	// Class with few keys is not available; simulate by checking guard
	// through the public API with an unsupported class.
	if _, err := ParallelIS(w, Class('Z'), cpu.EffCosts{}); err == nil {
		t.Fatal("bad class accepted")
	}
}
