package nas

import (
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mpi"
)

// Parallel versions of the NPB kernels, as the original MPI programs are:
// EP splits the pair sequence with generator jumps (each rank computes a
// bit-exact slice of the serial stream), and IS performs the classic
// distributed bucket sort (local histogram, allreduced bucket counts,
// all-to-all key redistribution, local ranking). Ranks carry modelled
// compute time (via a calibrated processor model) alongside the fabric's
// communication costs, so a run yields the simulated parallel runtime on
// the modelled cluster.

// ParallelResult extends Result with parallel-run accounting.
type ParallelResult struct {
	Result
	Ranks    int
	SimTime  float64 // makespan on the modelled cluster
	CommByte int64
}

// ParallelEP runs EP with the pair range split across the world's ranks.
// costs may be zero-valued to skip compute-time modelling.
func ParallelEP(w *mpi.World, class Class, costs cpu.EffCosts) (*ParallelResult, error) {
	m, ok := epLogM(class)
	if !ok {
		return nil, ErrClass("EP", class)
	}
	total := uint64(1) << uint(m)
	p := w.Size()
	outs := make([]EPOut, p)
	sums := make([][]float64, p)

	// local is the rank's pre-collective phase, shared verbatim by the
	// goroutine closure and the event-mode state machine so both paths
	// run the identical pool-op and compute sequence.
	local := func(c *mpi.Comm) []float64 {
		r := uint64(c.Rank())
		first := r * total / uint64(p)
		count := (r+1)*total/uint64(p) - first
		out := epCompute(epSeed, first, count)
		outs[c.Rank()] = out
		if costs.ClockMHz > 0 {
			// Per-pair work mirrors the serial mix proportionally.
			mix := epPairMix(count, uint64(out.Pairs))
			c.AddCompute(costs.Seconds(mix))
		}
		// Reduce sums and annulus counts (the NPB EP communication),
		// in place in a pooled buffer.
		buf := c.AcquireF64(3 + len(out.Q))
		buf[0], buf[1], buf[2] = out.SX, out.SY, out.Pairs
		copy(buf[3:], out.Q[:])
		return buf
	}
	var err error
	if w.EventMode() {
		err = w.RunEvent(func(c *mpi.Comm) mpi.Proc {
			return &epProc{local: local, sums: sums}
		})
	} else {
		err = w.Run(func(c *mpi.Comm) error {
			buf := local(c)
			c.AllreduceInto(mpi.Sum, buf)
			sums[c.Rank()] = buf
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	// Every rank must hold identical reduced values.
	global := sums[0]
	for r := 1; r < p; r++ {
		for i := range global {
			if sums[r][i] != global[i] {
				return nil, fmt.Errorf("nas: EP allreduce mismatch on rank %d", r)
			}
		}
	}
	var agg EPOut
	agg.SX, agg.SY, agg.Pairs = global[0], global[1], global[2]
	copy(agg.Q[:], global[3:])

	ep := NewEP()
	res, err := ep.finish(class, m, agg)
	if err != nil {
		return nil, err
	}
	return &ParallelResult{
		Result:   *res,
		Ranks:    p,
		SimTime:  w.MaxTime(),
		CommByte: w.TotalBytes(),
	}, nil
}

// epProc is ParallelEP's resumable rank program for the event
// scheduler: the shared local phase, then the allreduce state machine.
type epProc struct {
	pc    int
	local func(c *mpi.Comm) []float64
	sums  [][]float64
	buf   []float64
	ar    mpi.AllreduceState
}

func (p *epProc) Resume(c *mpi.Comm) (bool, error) {
	if p.pc == 0 {
		p.buf = p.local(c)
		p.ar.Start(c, mpi.Sum, p.buf)
		p.pc = 1
	}
	if !p.ar.Step(c) {
		return false, nil
	}
	p.sums[c.Rank()] = p.buf
	return true, nil
}

// epPairMix scales the per-pair operation mix of the EP kernel.
func epPairMix(pairs, accepted uint64) *isa.Trace {
	out := mixFromCounts(
		6*pairs+4*accepted,
		6*pairs+26*accepted,
		accepted,
		accepted,
		2*pairs,
		accepted,
		4*pairs+2*accepted,
		pairs,
	)
	return &out
}

// ParallelIS runs the IS bucket sort across the world's ranks and fully
// verifies the distributed result (global sortedness across rank
// boundaries plus permutation preservation).
func ParallelIS(w *mpi.World, class Class, costs cpu.EffCosts) (*ParallelResult, error) {
	n, maxKey, ok := isSize(class)
	if !ok {
		return nil, ErrClass("IS", class)
	}
	p := w.Size()
	if p > n {
		return nil, fmt.Errorf("nas: IS with more ranks than keys")
	}
	sortedParts := make([][]int64, p)
	verified := make([]bool, p)

	mkState := func() *isRankState {
		return &isRankState{
			n: n, maxKey: maxKey, p: p, costs: costs,
			sortedParts: sortedParts, verified: verified,
		}
	}
	var err error
	if w.EventMode() {
		err = w.RunEvent(func(c *mpi.Comm) mpi.Proc {
			return &isProc{st: mkState()}
		})
	} else {
		err = w.Run(func(c *mpi.Comm) error {
			st := mkState()
			st.pre(c)
			c.AllreduceInto(mpi.Sum, st.hist)
			st.mid(c)
			recv := c.AlltoallInts(st.send)
			return st.post(c, recv)
		})
	}
	if err != nil {
		return nil, err
	}

	// Global verification on the gathered parts.
	var all []int64
	okAll := true
	for r := 0; r < p; r++ {
		if !verified[r] {
			okAll = false
		}
		all = append(all, sortedParts[r]...)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] > all[i] {
			okAll = false
			break
		}
	}
	if len(all) != n {
		okAll = false
	}
	// Permutation check against the serial sequence.
	serial := isCreateSeq(n, maxKey)
	histA := make([]int64, maxKey)
	histB := make([]int64, maxKey)
	for _, k := range serial {
		histA[k]++
	}
	for _, k := range all {
		histB[k]++
	}
	for i := range histA {
		if histA[i] != histB[i] {
			okAll = false
			break
		}
	}

	res := &ParallelResult{
		Result: Result{
			Kernel:   "IS",
			Class:    class,
			Verified: okAll,
			Ops:      float64(n),
		},
		Ranks:    p,
		SimTime:  w.MaxTime(),
		CommByte: w.TotalBytes(),
	}
	return res, nil
}

// isRankState is one rank's IS program split at its two collectives,
// so the goroutine closure and the event-mode isProc run the identical
// phase sequence (pre → allreduce → mid → alltoall → post) with the
// same allocations and pool traffic.
type isRankState struct {
	n, maxKey, p int
	costs        cpu.EffCosts
	sortedParts  [][]int64
	verified     []bool

	keys   []int64
	hist   []float64
	bounds []int
	send   [][]int64
}

// pre builds the rank's keys and local histogram (the allreduce input).
func (st *isRankState) pre(c *mpi.Comm) {
	r := c.Rank()
	first := r * st.n / st.p
	count := (r+1)*st.n/st.p - first
	st.keys = isCreateSeqRange(first, count, st.maxKey)

	// Local histogram over the full key space.
	st.hist = make([]float64, st.maxKey)
	for _, k := range st.keys {
		st.hist[k]++
	}
}

// mid turns the reduced histogram into bucket bounds and the
// personalized send lists (the alltoall input).
func (st *isRankState) mid(c *mpi.Comm) {
	// Bucket boundaries: contiguous key ranges with ~n/p keys each.
	st.bounds = bucketBounds(st.hist, st.p, st.n)

	// Personalized exchange: keys to their owning rank.
	st.send = make([][]int64, st.p)
	for _, k := range st.keys {
		dst := sort.SearchInts(st.bounds[1:], int(k)+1)
		if dst >= st.p {
			dst = st.p - 1
		}
		st.send[dst] = append(st.send[dst], k)
	}
}

// post sorts and verifies the received keys and records compute time.
func (st *isRankState) post(c *mpi.Comm, recv [][]int64) error {
	r := c.Rank()
	count := len(st.keys)
	var mine []int64
	for _, part := range recv {
		mine = append(mine, part...)
		c.ReleaseI64(part) // recycle the wire buffers
	}
	// Local counting sort within the rank's key range.
	lo := int64(st.bounds[r])
	hi := int64(st.maxKey)
	if r+1 < st.p {
		hi = int64(st.bounds[r+1])
	}
	counts := make([]int64, hi-lo)
	for _, k := range mine {
		if k < lo || k >= hi {
			return fmt.Errorf("nas: IS rank %d received key %d outside [%d,%d)", r, k, lo, hi)
		}
		counts[k-lo]++
	}
	sorted := mine[:0]
	for k := lo; k < hi; k++ {
		for i := int64(0); i < counts[k-lo]; i++ {
			sorted = append(sorted, k)
		}
	}
	st.sortedParts[r] = append([]int64(nil), sorted...)

	if st.costs.ClockMHz > 0 {
		mix := mixFromCounts(0, 0, 0, 0,
			uint64(3*count+st.maxKey), uint64(count+st.maxKey),
			uint64(5*count+2*st.maxKey), uint64(count/4))
		c.AddCompute(st.costs.Seconds(&mix))
	}

	// Local sortedness; global boundary order is re-checked by the
	// driver on the gathered parts.
	okLocal := true
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			okLocal = false
		}
	}
	st.verified[r] = okLocal
	return nil
}

// isProc is ParallelIS's resumable rank program for the event
// scheduler: the shared phases strung between the two collective
// state machines.
type isProc struct {
	pc int
	st *isRankState
	ar mpi.AllreduceState
	at mpi.AlltoallIntsState
}

func (p *isProc) Resume(c *mpi.Comm) (bool, error) {
	if p.pc == 0 {
		p.st.pre(c)
		p.ar.Start(c, mpi.Sum, p.st.hist)
		p.pc = 1
	}
	if p.pc == 1 {
		if !p.ar.Step(c) {
			return false, nil
		}
		p.st.mid(c)
		p.at.Start(c, p.st.send)
		p.pc = 2
	}
	if !p.at.Step(c) {
		return false, nil
	}
	return true, p.st.post(c, p.at.Out())
}

// isCreateSeqRange generates keys [first, first+count) of the serial IS
// sequence bit-exactly, via a generator jump of 4·first steps.
func isCreateSeqRange(first, count, maxKey int) []int64 {
	g := NewLCG(isSeed)
	g.Skip(uint64(4 * first))
	k := float64(maxKey) / 4
	keys := make([]int64, count)
	for i := 0; i < count; i++ {
		x := g.Next()
		x += g.Next()
		x += g.Next()
		x += g.Next()
		keys[i] = int64(k * x)
		if keys[i] >= int64(maxKey) {
			keys[i] = int64(maxKey) - 1
		}
	}
	return keys
}

// bucketBounds splits the key space into p contiguous ranges holding
// roughly equal key counts, given the global histogram. bounds[r] is the
// first key of rank r's range; bounds[0] = 0.
func bucketBounds(hist []float64, p, n int) []int {
	bounds := make([]int, p)
	target := float64(n) / float64(p)
	acc := 0.0
	r := 1
	for k := 0; k < len(hist) && r < p; k++ {
		acc += hist[k]
		if acc >= target*float64(r) {
			bounds[r] = k + 1
			r++
		}
	}
	for ; r < p; r++ {
		bounds[r] = len(hist)
	}
	return bounds
}
