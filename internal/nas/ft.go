package nas

import (
	"math"
	"math/cmplx"
)

// FT is the NPB 3-D fast-Fourier-transform kernel (a bonus beyond
// Table 3, completing the NPB 2.3 kernel set): solve a 3-D diffusion
// equation spectrally. The initial state is filled from the NPB
// generator, transformed forward once, evolved in spectral space by
// exp(−4απ²|k̄|²t) over several time steps, and inverse-transformed, with
// a checksum of scattered modes after every step. Verification uses FFT
// invariants (round trip, Parseval) plus recorded checksum goldens.
type FT struct{}

// NewFTKernel returns the kernel.
func NewFTKernel() *FT { return &FT{} }

// Name implements Kernel.
func (*FT) Name() string { return "FT" }

// ftSize returns grid dimensions and iteration count per class
// (NPB 2.3: S = 64³ ×6, W = 128×128×32 ×6, A = 256×256×128 ×6).
func ftSize(c Class) (nx, ny, nz, iters int, ok bool) {
	switch c {
	case ClassS:
		return 64, 64, 64, 6, true
	case ClassW:
		return 128, 128, 32, 6, true
	case ClassA:
		return 256, 256, 128, 6, true
	}
	return 0, 0, 0, 0, false
}

const ftAlpha = 1e-6

// ftGoldens are recorded combined (real+imag) mode checksums from this
// implementation (NPB's per-iteration reference checksums assume zran3's
// exact fill order; see the MG note).
var ftGoldens = map[Class]float64{
	ClassS: 2.347371782504411e-02,
	ClassW: 1.175358788040099e-02,
}

// fft performs an in-place radix-2 decimation-in-time FFT on a
// power-of-two-length complex slice; inverse when inv is true (scaled by
// 1/n).
func fft(a []complex128, inv bool) {
	n := len(a)
	if n&(n-1) != 0 {
		panic("nas: FFT length not a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inv {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
	if inv {
		s := complex(1/float64(n), 0)
		for i := range a {
			a[i] *= s
		}
	}
}

// grid3c is a complex 3-D field, x fastest.
type grid3c struct {
	nx, ny, nz int
	v          []complex128
}

func newGrid3c(nx, ny, nz int) *grid3c {
	return &grid3c{nx: nx, ny: ny, nz: nz, v: make([]complex128, nx*ny*nz)}
}

func (g *grid3c) at(i, j, k int) int { return (k*g.ny+j)*g.nx + i }

// fft3d transforms all three dimensions in place.
func (g *grid3c) fft3d(inv bool, w *uint64) {
	// x lines.
	line := make([]complex128, g.nx)
	for k := 0; k < g.nz; k++ {
		for j := 0; j < g.ny; j++ {
			base := g.at(0, j, k)
			copy(line, g.v[base:base+g.nx])
			fft(line, inv)
			copy(g.v[base:base+g.nx], line)
		}
	}
	// y lines.
	liney := make([]complex128, g.ny)
	for k := 0; k < g.nz; k++ {
		for i := 0; i < g.nx; i++ {
			for j := 0; j < g.ny; j++ {
				liney[j] = g.v[g.at(i, j, k)]
			}
			fft(liney, inv)
			for j := 0; j < g.ny; j++ {
				g.v[g.at(i, j, k)] = liney[j]
			}
		}
	}
	// z lines.
	linez := make([]complex128, g.nz)
	for j := 0; j < g.ny; j++ {
		for i := 0; i < g.nx; i++ {
			for k := 0; k < g.nz; k++ {
				linez[k] = g.v[g.at(i, j, k)]
			}
			fft(linez, inv)
			for k := 0; k < g.nz; k++ {
				g.v[g.at(i, j, k)] = linez[k]
			}
		}
	}
	// 5·n·log2(n) real ops per 1-D FFT point, three passes.
	n := uint64(g.nx * g.ny * g.nz)
	logs := uint64(math.Log2(float64(g.nx)) + math.Log2(float64(g.ny)) + math.Log2(float64(g.nz)))
	*w += 5 * n * logs
}

// Run implements Kernel.
func (f *FT) Run(class Class) (*Result, error) {
	nx, ny, nz, iters, ok := ftSize(class)
	if !ok {
		return nil, ErrClass("FT", class)
	}
	u := newGrid3c(nx, ny, nz)
	// NPB fills the initial state with generator values (real and
	// imaginary parts drawn in sequence).
	g := NewLCG(314159265)
	for idx := range u.v {
		u.v[idx] = complex(g.Next(), g.Next())
	}

	var flops uint64
	u.fft3d(false, &flops)

	// Spectral evolution factors exp(−4απ²|k̄|²·t) per step.
	freq := func(i, n int) float64 {
		if i > n/2 {
			return float64(i - n)
		}
		return float64(i)
	}
	var checksum complex128
	work := newGrid3c(nx, ny, nz)
	for t := 1; t <= iters; t++ {
		for k := 0; k < nz; k++ {
			kz := freq(k, nz)
			for j := 0; j < ny; j++ {
				ky := freq(j, ny)
				for i := 0; i < nx; i++ {
					kx := freq(i, nx)
					k2 := kx*kx + ky*ky + kz*kz
					factor := math.Exp(-4 * ftAlpha * math.Pi * math.Pi * k2 * float64(t))
					work.v[work.at(i, j, k)] = u.v[u.at(i, j, k)] * complex(factor, 0)
				}
			}
		}
		flops += uint64(8 * nx * ny * nz)
		work.fft3d(true, &flops)
		// NPB checksum: 1024 scattered samples.
		var cs complex128
		total := nx * ny * nz
		for q := 1; q <= 1024; q++ {
			idx := (q * q * 31) % total
			cs += work.v[idx]
		}
		checksum += cs / complex(float64(total), 0)
		// Undo the inverse transform for the next evolution step by
		// re-transforming (NPB keeps the spectral field; we mirror that by
		// transforming back).
		work.fft3d(false, &flops)
		copyGrid(u, work)
	}

	// Verification invariants: round trip and Parseval on a fresh field.
	verified := ftSelfChecks(nx)
	combined := real(checksum) + imag(checksum)
	if gold, ok := ftGoldens[class]; ok {
		verified = verified && math.Abs(combined-gold) <= 1e-8*(1+math.Abs(gold))
	}

	res := &Result{
		Kernel:   "FT",
		Class:    class,
		Verified: verified,
		Checksum: combined,
		Ops:      float64(flops),
	}
	fp := flops
	res.Mix = mixFromCounts(fp/2, fp/2, 0, 0, fp*2/3, fp/3, fp/4, fp/32)
	return res, nil
}

func copyGrid(dst, src *grid3c) { copy(dst.v, src.v) }

// ftSelfChecks validates the FFT machinery: inverse(forward(x)) == x and
// Parseval's identity, on a small deterministic field.
func ftSelfChecks(n int) bool {
	if n > 64 {
		n = 64
	}
	g := NewLCG(271828183)
	a := make([]complex128, n)
	var norm float64
	for i := range a {
		a[i] = complex(g.Next()-0.5, g.Next()-0.5)
		norm += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	b := append([]complex128(nil), a...)
	fft(b, false)
	var specNorm float64
	for _, v := range b {
		specNorm += real(v)*real(v) + imag(v)*imag(v)
	}
	// Parseval: Σ|x|² = (1/n)Σ|X|².
	if math.Abs(specNorm/float64(n)-norm) > 1e-9*(1+norm) {
		return false
	}
	fft(b, true)
	for i := range a {
		if cmplx.Abs(b[i]-a[i]) > 1e-10 {
			return false
		}
	}
	return true
}
