package nas

// SP is the scalar-pentadiagonal simulated CFD application: the same ADI
// structure as BT, but with diagonal inter-component coupling and
// fourth-difference dissipation, so each line solve is five independent
// scalar pentadiagonal systems — NPB SP's defining pattern.
type SP struct{}

// NewSPKernel returns the kernel.
func NewSPKernel() *SP { return &SP{} }

// Name implements Kernel.
func (*SP) Name() string { return "SP" }

func spSize(c Class) (n, iters int, ok bool) {
	switch c {
	case ClassS:
		return 12, 50, true
	case ClassW:
		return 36, 50, true
	case ClassA:
		return 64, 50, true
	}
	return 0, 0, false
}

var spGoldens = map[Class]float64{
	ClassS: -1.168016589687e+02,
	ClassW: -7.204747340711e+02,
}

// Run implements Kernel.
func (s *SP) Run(class Class) (*Result, error) {
	n, iters, ok := spSize(class)
	if !ok {
		return nil, ErrClass("SP", class)
	}
	const (
		nu  = 1.0
		eps = 0.05
		tau = 0.6
	)
	p := newCFDProblem(n, nu, eps)
	// SP's coupling is diagonal: zero the off-diagonal entries of M (the
	// manufactured f was built with this same M, below, so rebuild).
	for i := 0; i < NComp; i++ {
		for j := 0; j < NComp; j++ {
			if i != j {
				p.m[i*NComp+j] = 0
			}
		}
	}
	// Rebuild f for the diagonalized operator.
	d := p.dim()
	ue := make([]Vec5, d*d*d)
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			for k := 0; k < d; k++ {
				for c := 0; c < NComp; c++ {
					ue[p.idx(i, j, k)][c] = p.exact(i, j, k, c)
				}
			}
		}
	}
	var w blasWork
	p.applyA(ue, p.f, &w)

	r := make([]Vec5, d*d*d)
	delta := make([]Vec5, d*d*d)

	// Pentadiagonal bands (recreated per line; the eliminations destroy
	// them).
	e := make([]float64, n)
	a := make([]float64, n)
	dd := make([]float64, n)
	c := make([]float64, n)
	f := make([]float64, n)
	rr := make([]float64, n)

	initialErr := p.errorRMS()
	lo := cfdGhost

	sweep := func(in, out []Vec5, stride int) {
		for ai := lo; ai < lo+n; ai++ {
			for bi := lo; bi < lo+n; bi++ {
				var base int
				switch stride {
				case d * d:
					base = p.idx(lo, ai, bi)
				case d:
					base = p.idx(ai, lo, bi)
				default:
					base = p.idx(ai, bi, lo)
				}
				for comp := 0; comp < NComp; comp++ {
					mdiag := p.m[comp*NComp+comp]
					for i := 0; i < n; i++ {
						// Bands of (I + τ·A_d): the directional split has
						// central share mdiag/3 + 6ε, first band −ν−4ε,
						// second band ε, so the three sweeps sum to A.
						e[i] = tau * eps
						a[i] = tau * (-nu - 4*eps)
						dd[i] = 1 + tau*(mdiag/3+6*eps)
						c[i] = a[i]
						f[i] = e[i]
						rr[i] = in[base+i*stride][comp]
					}
					pentaSolve(e, a, dd, c, f, rr, &w)
					for i := 0; i < n; i++ {
						out[base+i*stride][comp] = rr[i]
					}
				}
			}
		}
	}

	for it := 0; it < iters; it++ {
		p.residual(r, &w)
		for i := range r {
			for comp := 0; comp < NComp; comp++ {
				r[i][comp] *= tau
			}
		}
		sweep(r, delta, d*d)
		sweep(delta, r, d)
		sweep(r, delta, 1)
		lo2, hi2 := cfdGhost, cfdGhost+n-1
		for i := lo2; i <= hi2; i++ {
			for j := lo2; j <= hi2; j++ {
				for k := lo2; k <= hi2; k++ {
					ci := p.idx(i, j, k)
					for comp := 0; comp < NComp; comp++ {
						p.u[ci][comp] += delta[ci][comp]
					}
				}
			}
		}
	}

	finalErr := p.errorRMS()
	verified := finalErr < initialErr/100 && finalErr < 1e-3
	cs := p.checksum()
	if g, ok := spGoldens[class]; ok {
		verified = verified && closeTo(cs, g)
	}
	return cfdResult("SP", class, &w, uint64(d*d*d*8), uint64(d*d*d*2), iters, verified, cs), nil
}
