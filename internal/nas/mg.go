package nas

import (
	"math"
	"sort"
)

// MG is the multigrid kernel: V-cycles of the NPB 2.3 operator set — the
// 27-point Laplacian A (coefficients a = [-8/3, 0, 1/6, 1/12]), the
// full-weighting restriction P, trilinear interpolation Q, and the
// smoother S (c = [-3/8, 1/32, -1/64, 0]) — applied to the charge
// distribution v (+1 at the ten cells holding the largest generator
// values, −1 at the ten smallest) on a periodic n³ grid.
//
// Deviation from NPB noted in the package comment: the random grid fill
// is a single sequential NPB-generator stream rather than zran3's
// per-line jumped streams, so verification uses recorded goldens plus
// convergence invariants instead of NPB's rnm2 constants.
type MG struct{}

// NewMGKernel returns the kernel.
func NewMGKernel() *MG { return &MG{} }

// Name implements Kernel.
func (*MG) Name() string { return "MG" }

func mgSize(c Class) (n, nit int, ok bool) {
	switch c {
	case ClassS:
		return 32, 4, true
	case ClassW:
		return 64, 40, true
	case ClassA:
		return 256, 4, true
	}
	return 0, 0, false
}

// grid is a periodic n³ field with one ghost cell on each side
// (dimension n+2 per axis); ghost exchange wraps periodically, as NPB's
// comm3 does.
type grid struct {
	n int
	v []float64
}

func newGrid(n int) *grid {
	return &grid{n: n, v: make([]float64, (n+2)*(n+2)*(n+2))}
}

func (g *grid) idx(i, j, k int) int {
	s := g.n + 2
	return (i*s+j)*s + k
}

// at addresses interior cells with 1-based ghost offset.
func (g *grid) at(i, j, k int) *float64 { return &g.v[g.idx(i, j, k)] }

// comm3 fills the ghost layer from the periodic interior.
func (g *grid) comm3() {
	n, s := g.n, g.n+2
	_ = s
	for j := 1; j <= n; j++ {
		for k := 1; k <= n; k++ {
			*g.at(0, j, k) = *g.at(n, j, k)
			*g.at(n+1, j, k) = *g.at(1, j, k)
		}
	}
	for i := 0; i <= n+1; i++ {
		for k := 1; k <= n; k++ {
			*g.at(i, 0, k) = *g.at(i, n, k)
			*g.at(i, n+1, k) = *g.at(i, 1, k)
		}
	}
	for i := 0; i <= n+1; i++ {
		for j := 0; j <= n+1; j++ {
			*g.at(i, j, 0) = *g.at(i, j, n)
			*g.at(i, j, n+1) = *g.at(i, j, 1)
		}
	}
}

func (g *grid) zero() {
	for i := range g.v {
		g.v[i] = 0
	}
}

// mgWork tallies operator applications for the op mix.
type mgWork struct {
	points27 uint64 // 27-point stencil evaluations (A and S)
	pointsP  uint64 // restriction points
	pointsQ  uint64 // interpolation points
}

// stencil27 computes out = base + sign·(c0·u + c1·Σfaces + c2·Σedges +
// c3·Σcorners) — the shared shape of NPB's resid (base=v, sign=−1,
// c=a) and psinv (base=u, sign=+1, c=c, input r).
func stencil27(out, base, in *grid, c [4]float64, sign float64, w *mgWork) {
	n := in.n
	in.comm3()
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				u := *in.at(i, j, k)
				faces := *in.at(i-1, j, k) + *in.at(i+1, j, k) +
					*in.at(i, j-1, k) + *in.at(i, j+1, k) +
					*in.at(i, j, k-1) + *in.at(i, j, k+1)
				edges := *in.at(i-1, j-1, k) + *in.at(i-1, j+1, k) +
					*in.at(i+1, j-1, k) + *in.at(i+1, j+1, k) +
					*in.at(i-1, j, k-1) + *in.at(i-1, j, k+1) +
					*in.at(i+1, j, k-1) + *in.at(i+1, j, k+1) +
					*in.at(i, j-1, k-1) + *in.at(i, j-1, k+1) +
					*in.at(i, j+1, k-1) + *in.at(i, j+1, k+1)
				corners := *in.at(i-1, j-1, k-1) + *in.at(i-1, j-1, k+1) +
					*in.at(i-1, j+1, k-1) + *in.at(i-1, j+1, k+1) +
					*in.at(i+1, j-1, k-1) + *in.at(i+1, j-1, k+1) +
					*in.at(i+1, j+1, k-1) + *in.at(i+1, j+1, k+1)
				*out.at(i, j, k) = *base.at(i, j, k) +
					sign*(c[0]*u+c[1]*faces+c[2]*edges+c[3]*corners)
			}
		}
	}
	w.points27 += uint64(n) * uint64(n) * uint64(n)
}

// restrict performs full-weighting restriction from fine to coarse
// (NPB rprj3 coefficients 1/2, 1/4, 1/8, 1/16).
func restrictGrid(coarse, fine *grid, w *mgWork) {
	nc := coarse.n
	fine.comm3()
	for i := 1; i <= nc; i++ {
		fi := 2*i - 1
		for j := 1; j <= nc; j++ {
			fj := 2*j - 1
			for k := 1; k <= nc; k++ {
				fk := 2*k - 1
				var faces, edges, corners float64
				for _, d := range [][3]int{{-1, 0, 0}, {1, 0, 0}, {0, -1, 0}, {0, 1, 0}, {0, 0, -1}, {0, 0, 1}} {
					faces += *fine.at(fi+d[0], fj+d[1], fk+d[2])
				}
				for _, d := range [][3]int{
					{-1, -1, 0}, {-1, 1, 0}, {1, -1, 0}, {1, 1, 0},
					{-1, 0, -1}, {-1, 0, 1}, {1, 0, -1}, {1, 0, 1},
					{0, -1, -1}, {0, -1, 1}, {0, 1, -1}, {0, 1, 1}} {
					edges += *fine.at(fi+d[0], fj+d[1], fk+d[2])
				}
				for _, d := range [][3]int{
					{-1, -1, -1}, {-1, -1, 1}, {-1, 1, -1}, {-1, 1, 1},
					{1, -1, -1}, {1, -1, 1}, {1, 1, -1}, {1, 1, 1}} {
					corners += *fine.at(fi+d[0], fj+d[1], fk+d[2])
				}
				*coarse.at(i, j, k) = 0.5**fine.at(fi, fj, fk) +
					0.25*faces + 0.125*edges + 0.0625*corners
			}
		}
	}
	w.pointsP += uint64(nc) * uint64(nc) * uint64(nc)
}

// interpAdd adds trilinear interpolation of the coarse grid into the fine
// grid (NPB interp).
func interpAdd(fine, coarse *grid, w *mgWork) {
	nc := coarse.n
	coarse.comm3()
	for i := 1; i <= nc; i++ {
		for j := 1; j <= nc; j++ {
			for k := 1; k <= nc; k++ {
				c000 := *coarse.at(i, j, k)
				c100 := *coarse.at(i+1, j, k)
				c010 := *coarse.at(i, j+1, k)
				c110 := *coarse.at(i+1, j+1, k)
				c001 := *coarse.at(i, j, k+1)
				c101 := *coarse.at(i+1, j, k+1)
				c011 := *coarse.at(i, j+1, k+1)
				c111 := *coarse.at(i+1, j+1, k+1)
				fi, fj, fk := 2*i-1, 2*j-1, 2*k-1
				*fine.at(fi, fj, fk) += c000
				*fine.at(fi+1, fj, fk) += 0.5 * (c000 + c100)
				*fine.at(fi, fj+1, fk) += 0.5 * (c000 + c010)
				*fine.at(fi+1, fj+1, fk) += 0.25 * (c000 + c100 + c010 + c110)
				*fine.at(fi, fj, fk+1) += 0.5 * (c000 + c001)
				*fine.at(fi+1, fj, fk+1) += 0.25 * (c000 + c100 + c001 + c101)
				*fine.at(fi, fj+1, fk+1) += 0.25 * (c000 + c010 + c001 + c011)
				*fine.at(fi+1, fj+1, fk+1) += 0.125 * (c000 + c100 + c010 + c110 + c001 + c101 + c011 + c111)
			}
		}
	}
	w.pointsQ += uint64(nc) * uint64(nc) * uint64(nc)
}

// mgCoeffs are the NPB 2.3 operator coefficients.
var (
	mgA = [4]float64{-8.0 / 3, 0, 1.0 / 6, 1.0 / 12}
	mgC = [4]float64{-3.0 / 8, 1.0 / 32, -1.0 / 64, 0}
)

// l2norm returns the RMS of the interior.
func l2norm(g *grid) float64 {
	n := g.n
	var s float64
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				v := *g.at(i, j, k)
				s += v * v
			}
		}
	}
	return math.Sqrt(s / float64(n*n*n))
}

// Run implements Kernel.
func (m *MG) Run(class Class) (*Result, error) {
	n, nit, ok := mgSize(class)
	if !ok {
		return nil, ErrClass("MG", class)
	}
	res, _, err := m.run(n, nit, class)
	return res, err
}

// run executes and also returns the residual-norm history (for
// convergence tests).
func (m *MG) run(n, nit int, class Class) (*Result, []float64, error) {
	// Level grids: n, n/2, …, 4.
	var sizes []int
	for s := n; s >= 4; s /= 2 {
		sizes = append(sizes, s)
	}
	levels := len(sizes)
	u := make([]*grid, levels)
	r := make([]*grid, levels)
	for l, s := range sizes {
		u[l] = newGrid(s)
		r[l] = newGrid(s)
	}
	v := newGrid(n)
	mgFillCharges(v)
	var w mgWork

	top := 0
	var norms []float64

	// r = v − A·u at the top.
	computeResidual := func() {
		stencil27(r[top], v, u[top], mgA, -1, &w)
	}

	computeResidual()
	norms = append(norms, l2norm(r[top]))

	for it := 0; it < nit; it++ {
		// V-cycle: restrict residuals to the bottom.
		for l := 0; l < levels-1; l++ {
			restrictGrid(r[l+1], r[l], &w)
		}
		// Coarsest: u = S·r from zero.
		u[levels-1].zero()
		stencil27(u[levels-1], u[levels-1], r[levels-1], mgC, 1, &w)
		// Back up: interpolate, correct residual, smooth. As in NPB's
		// mg3P, intermediate levels hold pure corrections and are zeroed
		// each cycle; only the top level accumulates the solution.
		for l := levels - 2; l >= 0; l-- {
			if l == 0 {
				// u ← u + Q·u₁ directly into the solution grid.
				interpAdd(u[0], u[1], &w)
				computeResidual()
			} else {
				u[l].zero()
				interpAdd(u[l], u[l+1], &w)
				// r_l ← r_l − A·u_l.
				tmp := newGrid(sizes[l])
				stencil27(tmp, r[l], u[l], mgA, -1, &w)
				r[l], tmp = tmp, r[l]
			}
			// u_l ← u_l + S·r_l.
			smoothed := newGrid(sizes[l])
			stencil27(smoothed, u[l], r[l], mgC, 1, &w)
			u[l], smoothed = smoothed, u[l]
			if l == 0 {
				computeResidual()
			}
		}
		norms = append(norms, l2norm(r[top]))
	}

	final := norms[len(norms)-1]
	res := &Result{Kernel: "MG", Class: class, Checksum: final}
	// Verification: the V-cycles must have reduced the residual norm by a
	// healthy factor and match the recorded golden for the class.
	reduction := norms[0] / final
	res.Verified = reduction > 50
	// Exact-golden check only while the residual is above roundoff; class
	// W's 40 V-cycles converge to machine noise, where only the reduction
	// factor is meaningful.
	if g, ok := mgGoldens[class]; ok && final > 1e-15 {
		res.Verified = res.Verified && math.Abs(final-g) <= 1e-10*math.Abs(g)
	} else if ok && final <= 1e-15 {
		res.Verified = res.Verified && final < 1e-12
	}

	// NPB counts ~58 flops per 27-point stencil application per point.
	res.Ops = 58*float64(w.points27) + 47*float64(w.pointsP) + 32*float64(w.pointsQ)
	res.Mix = mixFromCounts(
		50*w.points27+40*w.pointsP+26*w.pointsQ, // fpAdd
		8*w.points27+7*w.pointsP+6*w.pointsQ,    // fpMul
		0, 0,
		28*w.points27+28*w.pointsP+9*w.pointsQ, // loads
		w.points27+w.pointsP+8*w.pointsQ,       // stores
		6*(w.points27+w.pointsP+w.pointsQ),     // int ALU (indexing)
		w.points27/8,                           // branches
	)
	return res, norms, nil
}

// mgGoldens are recorded residual norms from this implementation
// (see EXPERIMENTS.md for why NPB's rnm2 constants do not transfer —
// the random charge placement differs; note the class-S value lands
// within 3% of NPB's official 0.5307707005734e-4 anyway).
var mgGoldens = map[Class]float64{
	ClassS: 5.162006854565330e-05,
	ClassW: 2.776908948144146e-18, // roundoff floor; see Verified logic
}

// mgFillCharges places +1 at the cells with the ten largest values of a
// sequential NPB-generator grid fill and −1 at the ten smallest.
func mgFillCharges(v *grid) {
	n := v.n
	g := NewLCG(314159265)
	type cell struct {
		val     float64
		i, j, k int
	}
	cells := make([]cell, 0, n*n*n)
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			for k := 1; k <= n; k++ {
				cells = append(cells, cell{g.Next(), i, j, k})
			}
		}
	}
	sort.Slice(cells, func(a, b int) bool { return cells[a].val < cells[b].val })
	v.zero()
	for t := 0; t < 10 && t < len(cells); t++ {
		c := cells[t]
		*v.at(c.i, c.j, c.k) = -1
		c = cells[len(cells)-1-t]
		*v.at(c.i, c.j, c.k) = 1
	}
}

// MGDebugRun exposes the residual history for development and tests.
func MGDebugRun(n, nit int) (*Result, []float64, error) {
	return (&MG{}).run(n, nit, ClassS)
}
