package nas

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLCGAgainstNPBDefinition(t *testing.T) {
	// First values of the NPB stream from seed 271828183 follow
	// x_{k+1} = 5^13·x_k mod 2^46 exactly.
	g := NewLCG(271828183)
	seed := uint64(271828183)
	for i := 0; i < 100; i++ {
		v := g.Next()
		seed = (seed * 1220703125) & (1<<46 - 1)
		want := float64(seed) / (1 << 46)
		if v != want {
			t.Fatalf("step %d: %v != %v", i, v, want)
		}
	}
}

func TestLCGSkipMatchesSequential(t *testing.T) {
	for _, skip := range []uint64{0, 1, 2, 7, 100, 12345} {
		a := NewLCG(271828183)
		for i := uint64(0); i < skip; i++ {
			a.Next()
		}
		b := NewLCG(271828183)
		b.Skip(skip)
		if a.Seed() != b.Seed() {
			t.Fatalf("skip %d: seeds diverge", skip)
		}
	}
}

func TestLCGSkipProperty(t *testing.T) {
	f := func(n uint16) bool {
		a := NewLCG(314159265)
		for i := 0; i < int(n); i++ {
			a.Next()
		}
		b := NewLCG(314159265)
		b.Skip(uint64(n))
		return a.Seed() == b.Seed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEPClassSMatchesNPBReference(t *testing.T) {
	// The official NPB verification sums — exact algorithm reproduction.
	r, err := NewEP().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatalf("EP class S failed NPB verification (checksum %v)", r.Checksum)
	}
	if r.Ops <= 0 || r.Mix.Flops == 0 {
		t.Fatal("EP reported no work")
	}
}

func TestEPGaussianMoments(t *testing.T) {
	// The accepted deviates are standard normals: the acceptance rate is
	// π/4 and the annulus counts decay.
	out := EPDebugCompute(271828183, 0, 1<<18)
	n := float64(int(1) << 18)
	rate := out.Pairs / n
	if math.Abs(rate-math.Pi/4) > 0.01 {
		t.Fatalf("acceptance rate %v, want ≈π/4", rate)
	}
	if !(out.Q[0] > out.Q[1] && out.Q[1] > out.Q[2] && out.Q[2] > out.Q[3]) {
		t.Fatalf("annulus counts not decaying: %v", out.Q)
	}
	// Mean of the Gaussian sums ≈ 0 relative to the count.
	if math.Abs(out.SX)/out.Pairs > 0.01 || math.Abs(out.SY)/out.Pairs > 0.01 {
		t.Fatalf("sums too large: %v %v", out.SX, out.SY)
	}
}

func TestEPParallelDecompositionExact(t *testing.T) {
	// Splitting the pair range across workers reproduces the serial sums
	// bit-for-bit thanks to the LCG jump — EP's defining property.
	const total = 1 << 16
	serial := EPDebugCompute(271828183, 0, total)
	var sx, sy, pairs float64
	for _, span := range [][2]uint64{{0, total / 4}, {total / 4, total / 4}, {total / 2, total / 2}} {
		part := EPDebugCompute(271828183, span[0], span[1])
		sx += part.SX
		sy += part.SY
		pairs += part.Pairs
	}
	if pairs != serial.Pairs {
		t.Fatalf("pair counts differ: %v vs %v", pairs, serial.Pairs)
	}
	if math.Abs(sx-serial.SX) > 1e-9 || math.Abs(sy-serial.SY) > 1e-9 {
		t.Fatalf("parallel sums (%v,%v) != serial (%v,%v)", sx, sy, serial.SX, serial.SY)
	}
}

func TestISSortsAndVerifies(t *testing.T) {
	r, err := NewISKernel().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatal("IS class S failed verification")
	}
	if r.Ops != float64(ISMaxIterations)*(1<<16) {
		t.Fatalf("IS ops = %v", r.Ops)
	}
}

func TestISKeyDistribution(t *testing.T) {
	// Keys are sums of four uniforms: near-Gaussian around maxKey/2 and
	// within range.
	keys := isCreateSeq(1<<14, 1<<11)
	var mean float64
	for _, k := range keys {
		if k < 0 || k >= 1<<11 {
			t.Fatalf("key %d out of range", k)
		}
		mean += float64(k)
	}
	mean /= float64(len(keys))
	if math.Abs(mean-1024) > 20 {
		t.Fatalf("key mean %v, want ≈1024", mean)
	}
}

func TestMGConvergesAndVerifies(t *testing.T) {
	r, err := NewMGKernel().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatalf("MG class S failed (checksum %v)", r.Checksum)
	}
}

func TestMGResidualMonotone(t *testing.T) {
	_, norms, err := MGDebugRun(32, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(norms); i++ {
		if norms[i] >= norms[i-1] {
			t.Fatalf("residual rose at cycle %d: %v", i, norms)
		}
	}
	// Per-cycle contraction must be multigrid-grade, not smoother-grade.
	rate := norms[len(norms)-1] / norms[len(norms)-2]
	if rate > 0.5 {
		t.Fatalf("V-cycle contraction rate %v too weak", rate)
	}
}

func TestMGOperatorsConsistency(t *testing.T) {
	// A applied to a constant field is zero (row sum of a-coefficients is
	// zero) — the compatibility condition for the periodic Poisson solve.
	g := newGrid(8)
	for i := range g.v {
		g.v[i] = 3.7
	}
	out := newGrid(8)
	base := newGrid(8)
	var w mgWork
	stencil27(out, base, g, mgA, 1, &w)
	for i := 1; i <= 8; i++ {
		for j := 1; j <= 8; j++ {
			for k := 1; k <= 8; k++ {
				if math.Abs(*out.at(i, j, k)) > 1e-12 {
					t.Fatalf("A·const = %v at (%d,%d,%d)", *out.at(i, j, k), i, j, k)
				}
			}
		}
	}
}

func TestMGRestrictionPreservesConstants(t *testing.T) {
	fine := newGrid(8)
	for i := range fine.v {
		fine.v[i] = 2.0
	}
	coarse := newGrid(4)
	var w mgWork
	restrictGrid(coarse, fine, &w)
	// Full weighting of a constant: 0.5 + 6·0.25 + 12·0.125 + 8·0.0625 = 4.
	for i := 1; i <= 4; i++ {
		if math.Abs(*coarse.at(i, 1, 1)-8.0) > 1e-12 {
			t.Fatalf("restriction of constant = %v, want 8 (weight sum 4 × 2)", *coarse.at(i, 1, 1))
		}
	}
}

func TestCFDKernelsConvergeClassS(t *testing.T) {
	for _, k := range []Kernel{NewBT(), NewSP(), NewLU()} {
		r, err := k.Run(ClassS)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		if !r.Verified {
			t.Fatalf("%s class S failed verification (checksum %v)", k.Name(), r.Checksum)
		}
		if r.Ops <= 0 {
			t.Fatalf("%s reported no ops", k.Name())
		}
	}
}

func TestCFDSolversAgreeOnSolution(t *testing.T) {
	// BT and LU solve the same manufactured problem: their final
	// checksums (≈ checksum of the exact solution) must agree closely.
	bt, err := NewBT().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := NewLU().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bt.Checksum-lu.Checksum) > 1e-3*math.Abs(bt.Checksum) {
		t.Fatalf("BT checksum %v vs LU %v", bt.Checksum, lu.Checksum)
	}
}

func TestBlockTriSolveExact(t *testing.T) {
	// Manufacture a block-tridiagonal system with a known solution and
	// check the solver reproduces it to roundoff.
	const m = 6
	var w blasWork
	sub := make([]Mat5, m)
	diag := make([]Mat5, m)
	sup := make([]Mat5, m)
	want := make([]Vec5, m)
	rhs := make([]Vec5, m)
	// Diagonally dominant random-ish blocks.
	for i := 0; i < m; i++ {
		for a := 0; a < NComp; a++ {
			for b := 0; b < NComp; b++ {
				sub[i][a*NComp+b] = 0.01 * float64((i+a+2*b)%5)
				sup[i][a*NComp+b] = 0.02 * float64((i+2*a+b)%4)
				if a == b {
					diag[i][a*NComp+b] = 4 + float64(i%3)
				} else {
					diag[i][a*NComp+b] = 0.1 * float64((a*b+i)%3)
				}
			}
			want[i][a] = float64(i+1) + 0.5*float64(a)
		}
	}
	// rhs = A·want.
	var tmp Vec5
	for i := 0; i < m; i++ {
		diag[i].MulVec(&want[i], &tmp, &w)
		rhs[i] = tmp
		if i > 0 {
			sub[i].MulVec(&want[i-1], &tmp, &w)
			for c := 0; c < NComp; c++ {
				rhs[i][c] += tmp[c]
			}
		}
		if i < m-1 {
			sup[i].MulVec(&want[i+1], &tmp, &w)
			for c := 0; c < NComp; c++ {
				rhs[i][c] += tmp[c]
			}
		}
	}
	blockTriSolve(sub, diag, sup, rhs, &w)
	for i := 0; i < m; i++ {
		for c := 0; c < NComp; c++ {
			if math.Abs(rhs[i][c]-want[i][c]) > 1e-10 {
				t.Fatalf("block %d comp %d: %v != %v", i, c, rhs[i][c], want[i][c])
			}
		}
	}
}

func TestPentaSolveExact(t *testing.T) {
	const m = 9
	var w blasWork
	e := make([]float64, m)
	a := make([]float64, m)
	d := make([]float64, m)
	c := make([]float64, m)
	f := make([]float64, m)
	want := make([]float64, m)
	rhs := make([]float64, m)
	for i := 0; i < m; i++ {
		e[i], a[i], c[i], f[i] = 0.1, -0.7, -0.6, 0.15
		d[i] = 3 + 0.1*float64(i)
		want[i] = float64(i*i) - 4
	}
	for i := 0; i < m; i++ {
		rhs[i] = d[i] * want[i]
		if i >= 1 {
			rhs[i] += a[i] * want[i-1]
		}
		if i >= 2 {
			rhs[i] += e[i] * want[i-2]
		}
		if i < m-1 {
			rhs[i] += c[i] * want[i+1]
		}
		if i < m-2 {
			rhs[i] += f[i] * want[i+2]
		}
	}
	pentaSolve(e, a, d, c, f, rhs, &w)
	for i := 0; i < m; i++ {
		if math.Abs(rhs[i]-want[i]) > 1e-10 {
			t.Fatalf("row %d: %v != %v", i, rhs[i], want[i])
		}
	}
}

func TestLU5FactorSolve(t *testing.T) {
	var w blasWork
	var a Mat5
	for i := 0; i < NComp; i++ {
		for j := 0; j < NComp; j++ {
			if i == j {
				a[i*NComp+j] = 5
			} else {
				a[i*NComp+j] = 0.3 * float64((i+2*j)%4)
			}
		}
	}
	want := Vec5{1, -2, 3, 0.5, -0.25}
	var b Vec5
	a.MulVec(&want, &b, &w)
	var lu lu5
	lu.Factor(&a, &w)
	var got Vec5
	lu.Solve(&b, &got)
	for i := 0; i < NComp; i++ {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("comp %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestCGVerifies(t *testing.T) {
	r, err := NewCGKernel().Run(ClassS)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Fatalf("CG class S failed (zeta %v)", r.Checksum)
	}
	// Zeta must exceed the shift (the eigenvalue estimate is positive).
	if r.Checksum <= 10 {
		t.Fatalf("zeta %v not above shift", r.Checksum)
	}
}

func TestCGMatrixSymmetricPositive(t *testing.T) {
	a := cgMatrix(200, 5)
	// Symmetry: for each (i,j,v) the transposed entry exists and matches.
	get := func(i, j int) (float64, bool) {
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			if a.colIdx[k] == j {
				return a.val[k], true
			}
		}
		return 0, false
	}
	for i := 0; i < a.n; i++ {
		var off float64
		var diag float64
		for k := a.rowPtr[i]; k < a.rowPtr[i+1]; k++ {
			j := a.colIdx[k]
			v := a.val[k]
			if j == i {
				diag = v
				continue
			}
			off += math.Abs(v)
			tv, ok := get(j, i)
			if !ok || tv != v {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
		if diag <= off {
			t.Fatalf("row %d not diagonally dominant: %v vs %v", i, diag, off)
		}
	}
}

func TestUnsupportedClasses(t *testing.T) {
	for _, k := range AllKernels() {
		if _, err := k.Run(Class('Z')); err == nil {
			t.Errorf("%s accepted class Z", k.Name())
		}
	}
}

func TestAllKernelsReportMixes(t *testing.T) {
	for _, k := range AllKernels() {
		r, err := k.Run(ClassS)
		if err != nil {
			t.Fatalf("%s: %v", k.Name(), err)
		}
		if r.Mix.Instrs == 0 {
			t.Errorf("%s: empty op mix", k.Name())
		}
		if r.Kernel != k.Name() {
			t.Errorf("kernel name mismatch: %q vs %q", r.Kernel, k.Name())
		}
	}
}

func TestTable3KernelOrder(t *testing.T) {
	names := []string{"BT", "SP", "LU", "MG", "EP", "IS"}
	ks := Table3Kernels()
	if len(ks) != len(names) {
		t.Fatalf("Table3Kernels has %d entries", len(ks))
	}
	for i, k := range ks {
		if k.Name() != names[i] {
			t.Fatalf("row %d = %s, want %s (the paper's order)", i, k.Name(), names[i])
		}
	}
}
