package nas

import (
	"math"
)

// EP is the embarrassingly parallel kernel: generate pairs of uniform
// deviates with the NPB generator, transform the pairs that land inside
// the unit circle into Gaussian deviates by the Marsaglia polar method,
// and tally sums and annulus counts. The NPB verification values for the
// sums are checked for classes S and W.
type EP struct{}

// NewEP returns the kernel.
func NewEP() *EP { return &EP{} }

// Name implements Kernel.
func (*EP) Name() string { return "EP" }

// epSeed is the NPB seed for EP.
const epSeed = 271828183

// epLogM returns M where the kernel generates 2^M pairs.
func epLogM(c Class) (int, bool) {
	switch c {
	case ClassS:
		return 24, true
	case ClassW:
		return 25, true
	case ClassA:
		return 28, true
	}
	return 0, false
}

// EPOut holds EP's full outputs (exported for the parallel version and
// tests).
type EPOut struct {
	SX, SY float64
	Q      [10]float64 // annulus counts
	Pairs  float64     // accepted pairs
}

// Run implements Kernel.
func (e *EP) Run(class Class) (*Result, error) {
	m, ok := epLogM(class)
	if !ok {
		return nil, ErrClass("EP", class)
	}
	out := epCompute(epSeed, 0, uint64(1)<<uint(m))
	return e.finish(class, m, out)
}

func (e *EP) finish(class Class, m int, out EPOut) (*Result, error) {
	res := &Result{Kernel: "EP", Class: class, Checksum: out.SX + out.SY}
	// NPB reference sums (ep.f verify): classes S and W.
	switch class {
	case ClassS:
		res.Verified = closeTo(out.SX, -3.247834652034740e3) && closeTo(out.SY, -6.958407078382297e3)
	case ClassW:
		res.Verified = closeTo(out.SX, -2.863319731645753e3) && closeTo(out.SY, -6.320053679109499e3)
	default:
		res.Verified = true // A: moment sanity enforced in tests
	}

	n := float64(uint64(1) << uint(m))
	// NPB counts EP's nominal ops as ~25 flops per generated pair
	// (uniforms + transform, amortized over the acceptance rate).
	res.Ops = 25 * n
	// Dynamic mix: 2 LCG steps (integer multiply + scale) per pair, the
	// polar test, and for the ~π/4 accepted fraction a log, sqrt, two
	// multiplies and the binning.
	acc := out.Pairs
	res.Mix = mixFromCounts(
		uint64(6*n+4*acc),  // fpAdd-class (adds, compares, converts)
		uint64(6*n+26*acc), // fpMul (scaling, t2 products, log/sqrt series mults)
		uint64(acc),        // fpDiv (−2 ln t / t)
		uint64(acc),        // fpSqrt
		uint64(2*n),        // loads
		uint64(acc),        // stores
		uint64(4*n+2*acc),  // int ALU (LCG, loop)
		uint64(n),          // branches
	)
	return res, nil
}

func closeTo(got, want float64) bool {
	return math.Abs(got-want) <= 1e-8*math.Abs(want)
}

// epCompute generates pairs [first, first+count) of the global pair
// sequence. The generator is skipped to 2·first steps, so parallel ranks
// produce exactly the serial stream's slices.
func epCompute(seed uint64, first, count uint64) EPOut {
	g := NewLCG(seed)
	g.Skip(2 * first)
	var out EPOut
	for i := uint64(0); i < count; i++ {
		x := 2*g.Next() - 1
		y := 2*g.Next() - 1
		t := x*x + y*y
		if t <= 1 {
			f := math.Sqrt(-2 * math.Log(t) / t)
			gx := x * f
			gy := y * f
			out.SX += gx
			out.SY += gy
			l := int(math.Max(math.Abs(gx), math.Abs(gy)))
			if l > 9 {
				l = 9
			}
			out.Q[l]++
			out.Pairs++
		}
	}
	return out
}

// EPDebugCompute exposes the pair-range computation for tests and the
// parallel version.
func EPDebugCompute(seed, first, count uint64) EPOut {
	return epCompute(seed, first, count)
}
