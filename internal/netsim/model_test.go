package netsim

import (
	"math"
	"testing"
)

func TestReduceChargesCombiningCost(t *testing.T) {
	f := FastEthernet()
	for _, p := range []int{2, 4, 16, 24} {
		const b = 1 << 20
		rounds := math.Ceil(math.Log2(float64(p)))
		want := rounds * (f.PointToPoint(b) + f.ReduceOpSecPerElem*float64(b)/8)
		if got := f.Reduce(p, b); math.Abs(got-want) > 1e-12*want {
			t.Fatalf("Reduce(%d, %d) = %g, want %g", p, b, got, want)
		}
	}
	if f.Reduce(1, 100) != 0 {
		t.Fatal("single-node reduce must cost 0")
	}
}

func TestReduceSeparatesFromBcast(t *testing.T) {
	// Reduce is no longer an alias of Bcast: the same tree of messages
	// plus a per-level elementwise combine, so it is strictly costlier
	// for any non-empty payload.
	f := FastEthernet()
	for _, p := range []int{2, 8, 24} {
		for _, b := range []int{8, 4096, 1 << 22} {
			r, bc := f.Reduce(p, b), f.Bcast(p, b)
			if r <= bc {
				t.Fatalf("Reduce(%d, %d) = %g not above Bcast = %g", p, b, r, bc)
			}
		}
	}
	if f.ReduceOpSecPerElem <= 0 {
		t.Fatal("FastEthernet must set a combining cost")
	}
}

func TestValidateRejectsNegativeReduceOpCost(t *testing.T) {
	f := FastEthernet()
	f.ReduceOpSecPerElem = -1e-9
	if err := f.Validate(); err == nil {
		t.Fatal("negative ReduceOpSecPerElem accepted")
	}
}

func TestFanInContention(t *testing.T) {
	un := FastEthernet()
	co := FastEthernet()
	co.PortContention = true
	const p, b = 8, 4096
	if un.FanIn(p, b) != un.PointToPoint(b) {
		t.Fatal("uncontended fan-in must be one point-to-point")
	}
	want := co.PointToPoint(b) + float64(p-2)*co.SerializeTime(b)
	if got := co.FanIn(p, b); math.Abs(got-want) > 1e-15 {
		t.Fatalf("contended FanIn = %g, want %g", got, want)
	}
	if co.FanIn(1, b) != 0 {
		t.Fatal("single-node fan-in must cost 0")
	}
}

func TestSerializeTimeExported(t *testing.T) {
	f := FastEthernet()
	if f.SerializeTime(1460) != f.serialize(1460) {
		t.Fatal("SerializeTime must expose the internal per-hop serialization")
	}
	if f.SerializeTime(1461) <= f.SerializeTime(1460) {
		t.Fatal("second frame not charged")
	}
}

func TestAllreduceRecDblCheaperThanReduceBcast(t *testing.T) {
	// Recursive doubling halves the round count for power-of-two p:
	// log2(p) exchange rounds against the classic reduce+bcast's
	// 2·log2(p) — the reason it is the native algorithm.
	f := FastEthernet()
	for p := 2; p <= 32; p *= 2 {
		for _, b := range []int{64, 1 << 20} {
			if f.AllreduceRecDbl(p, b) >= f.Allreduce(p, b) {
				t.Fatalf("RecDbl(%d, %d) = %g not below classic %g",
					p, b, f.AllreduceRecDbl(p, b), f.Allreduce(p, b))
			}
		}
	}
	if f.AllreduceRecDbl(1, 100) != 0 {
		t.Fatal("single-node allreduce must cost 0")
	}
	// Non-power-of-two p pays the fold-in/copy-out surcharge over the
	// contained power of two.
	if f.AllreduceRecDbl(5, 1024) <= f.AllreduceRecDbl(4, 1024) {
		t.Fatal("p=5 must cost more than p=4")
	}
}

func TestBcastPipelinedBeatsTreeForLargePayloads(t *testing.T) {
	f := FastEthernet()
	if got, tree := f.BcastPipelined(16, 4<<20, 8<<10), f.Bcast(16, 4<<20); got >= tree {
		t.Fatalf("pipelined bcast %g not below tree bcast %g", got, tree)
	}
	// Degenerate cases: one node, empty payload, one segment.
	if f.BcastPipelined(1, 100, 8192) != 0 || f.BcastPipelined(8, 0, 8192) != 0 {
		t.Fatal("degenerate pipelined bcast must cost 0")
	}
	if got, want := f.BcastPipelined(2, 100, 8192), f.PointToPoint(100); got != want {
		t.Fatalf("single-segment p=2 pipeline = %g, want one point-to-point %g", got, want)
	}
	// Contention widens the inter-segment gap to the port occupancy.
	co := FastEthernet()
	co.PortContention = true
	if co.BcastPipelined(8, 1<<20, 8<<10) <= f.BcastPipelined(8, 1<<20, 8<<10) {
		t.Fatal("contended pipeline not slower")
	}
}
