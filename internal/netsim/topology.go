// Fabric topologies beyond the paper's star: k-ary fat-trees and 2D/3D
// tori with rank-pair hop counts, plus *exact* closed forms for the
// collectives the MPI layer runs on them. The classic formulas in
// netsim.go are analytical approximations (loose-window checked); the
// predictors here — AllreduceTime, BcastTime, ReduceTime, FanInTime —
// replay the substrate's per-rank virtual-clock recurrence message by
// message, so the emergent times from internal/mpi match them
// bit-for-bit on every topology, with and without port contention.
package netsim

import (
	"fmt"
	"strings"
)

// Topology is the shape of a Fabric.
type Topology int

const (
	// TopoStar is the paper's single non-blocking switch: all pairs are
	// Fabric.Hops apart. The zero value — legacy fabrics are stars.
	TopoStar Topology = iota
	// TopoFatTree is a k-ary fat-tree (k = Fabric.Radix): 2 hops inside
	// a leaf switch, 4 inside a pod, 6 across pods.
	TopoFatTree
	// TopoTorus2D is an X×Y torus with single-hop neighbour links; the
	// hop count is the wrapped Manhattan distance.
	TopoTorus2D
	// TopoTorus3D is an X×Y×Z torus.
	TopoTorus3D
)

// String names the topology for tables and logs.
func (t Topology) String() string {
	switch t {
	case TopoStar:
		return "star"
	case TopoFatTree:
		return "fattree"
	case TopoTorus2D:
		return "torus2d"
	case TopoTorus3D:
		return "torus3d"
	}
	return fmt.Sprintf("topology(%d)", int(t))
}

// torusDist is the wrapped one-dimensional distance on a ring of n.
func torusDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// HopsBetween returns the link count between two ranks on this
// topology. A star returns Fabric.Hops for every pair, so legacy
// fabrics are unchanged.
func (f *Fabric) HopsBetween(src, dst int) int {
	if src == dst {
		return 0
	}
	switch f.Topology {
	case TopoFatTree:
		half := f.Radix / 2
		if half < 1 {
			return f.Hops
		}
		if src/half == dst/half {
			return 2 // up to the shared leaf switch and back down
		}
		if pod := half * half; src/pod == dst/pod {
			return 4 // via an aggregation switch inside the pod
		}
		return 6 // via the core layer
	case TopoTorus2D:
		return torusDist(src%f.TorusX, dst%f.TorusX, f.TorusX) +
			torusDist(src/f.TorusX, dst/f.TorusX, f.TorusY)
	case TopoTorus3D:
		plane := f.TorusX * f.TorusY
		return torusDist(src%f.TorusX, dst%f.TorusX, f.TorusX) +
			torusDist((src/f.TorusX)%f.TorusY, (dst/f.TorusX)%f.TorusY, f.TorusY) +
			torusDist(src/plane, dst/plane, f.TorusZ)
	default:
		return f.Hops
	}
}

// PointToPointRanks is PointToPoint with the hop count taken from the
// actual rank pair. On a star it computes exactly what PointToPoint
// does, bit for bit.
func (f *Fabric) PointToPointRanks(src, dst, bytes int) float64 {
	return f.pointToPointHops(f.HopsBetween(src, dst), bytes)
}

func (f *Fabric) pointToPointHops(hops, bytes int) float64 {
	t := f.SoftwareOverhead + float64(hops)*f.HopLatency
	if f.StoreAndForward {
		t += float64(hops) * f.serialize(bytes)
	} else {
		t += f.serialize(bytes)
	}
	return t
}

// Capacity returns the host count the topology can address, or 0 when
// unbounded (a star switch scales by assumption).
func (f *Fabric) Capacity() int {
	switch f.Topology {
	case TopoFatTree:
		return f.Radix * f.Radix * f.Radix / 4
	case TopoTorus2D:
		return f.TorusX * f.TorusY
	case TopoTorus3D:
		return f.TorusX * f.TorusY * f.TorusZ
	default:
		return 0
	}
}

// GroupWidth is the natural first-level group size for hierarchical
// collectives: ranks within one group are the topology's cheapest
// neighbourhood (a fat-tree leaf switch, a torus row). 0 means the
// topology is flat and has no preferred grouping.
func (f *Fabric) GroupWidth() int {
	switch f.Topology {
	case TopoFatTree:
		return f.Radix / 2
	case TopoTorus2D, TopoTorus3D:
		return f.TorusX
	default:
		return 0
	}
}

// ApplyTopology configures f in place as the named fabric shape, sized
// to hold p ranks: "star" (or "") leaves the flat switch, "fattree"
// picks the smallest even radix with k³/4 ≥ p, "torus2d"/"torus3d"
// pick near-square (near-cubic) dimensions covering p.
func ApplyTopology(f *Fabric, name string, p int) error {
	if p < 1 {
		return fmt.Errorf("netsim: topology %q needs a positive rank count, got %d", name, p)
	}
	switch strings.ToLower(name) {
	case "", "star":
		return nil
	case "fattree":
		k := 2
		for k*k*k/4 < p {
			k += 2
		}
		f.Topology = TopoFatTree
		f.Radix = k
		f.Name = fmt.Sprintf("%s, %d-ary fat-tree", f.Name, k)
	case "torus", "torus2d":
		x := 1
		for x*x < p {
			x++
		}
		f.Topology = TopoTorus2D
		f.TorusX = x
		f.TorusY = (p + x - 1) / x
		f.Name = fmt.Sprintf("%s, %dx%d torus", f.Name, f.TorusX, f.TorusY)
	case "torus3d":
		x := 1
		for x*x*x < p {
			x++
		}
		y := 1
		for x*y*y < p {
			y++
		}
		f.Topology = TopoTorus3D
		f.TorusX = x
		f.TorusY = y
		f.TorusZ = (p + x*y - 1) / (x * y)
		f.Name = fmt.Sprintf("%s, %dx%dx%d torus", f.Name, f.TorusX, f.TorusY, f.TorusZ)
	default:
		return fmt.Errorf("netsim: unknown fabric topology %q (want star, fattree, torus2d, torus3d)", name)
	}
	return f.Validate()
}

// --- exact collective predictors -----------------------------------
//
// These replay the MPI substrate's virtual-clock rules:
//
//	send: arrival = clock[src] + PointToPointRanks(src, dst, bytes)
//	      clock[src] += SoftwareOverhead/2
//	recv: with PortContention and a payload, the egress port transmits
//	      queued messages back to back in consumption order; then
//	      clock[dst] = max(clock[dst], arrival)
//
// in the exact per-rank program order of the collectives in
// internal/mpi, so the results are bit-identical to the emergent times.

// replaySend mirrors Comm.send and returns the message's arrival time.
func (f *Fabric) replaySend(src, dst, bytes int, clock []float64) float64 {
	arrival := clock[src] + f.PointToPointRanks(src, dst, bytes)
	clock[src] += f.SoftwareOverhead / 2
	return arrival
}

// replayRecv mirrors Comm.recv: egress-port occupancy first (in the
// receiver's consumption order), then the arrival clamp.
func (f *Fabric) replayRecv(r int, arrival float64, bytes int, clock, portBusy []float64) {
	if f.PortContention && bytes > 0 {
		ser := f.serialize(bytes)
		startTx := arrival - ser
		if portBusy[r] > startTx {
			startTx = portBusy[r]
		}
		arr := startTx + ser
		portBusy[r] = arr
		arrival = arr
	}
	if arrival > clock[r] {
		clock[r] = arrival
	}
}

// seqMember maps virtual rank v of a collective subgroup — the
// arithmetic sequence base, base+stride, … of count ranks, rotated so
// the member at rootIdx is virtual rank 0 — to its world rank. The
// same mapping the MPI layer's group collectives use.
func seqMember(base, stride, count, rootIdx int) func(int) int {
	return func(v int) int { return base + stride*((v+rootIdx)%count) }
}

// replayGroupReduce replays the binomial-tree reduction onto virtual
// rank 0 of the subgroup. Children have higher virtual ranks, so
// walking v downward sees every child's send clock before its parent
// consumes it.
func (f *Fabric) replayGroupReduce(member func(int) int, count, bytes int, clock, portBusy []float64) {
	if count <= 1 {
		return
	}
	arrivals := make([]float64, count)
	for v := count - 1; v >= 0; v-- {
		r := member(v)
		for dist := 1; dist < count; dist *= 2 {
			if v%(2*dist) == 0 {
				if src := v + dist; src < count {
					f.replayRecv(r, arrivals[src], bytes, clock, portBusy)
				}
			} else {
				arrivals[v] = f.replaySend(r, member(v-dist), bytes, clock)
				break
			}
		}
	}
}

// replayGroupBcast replays the binomial-tree broadcast from virtual
// rank 0. Parents have lower virtual ranks, so walking v upward
// records each arrival before the child consumes it.
func (f *Fabric) replayGroupBcast(member func(int) int, count, bytes int, clock, portBusy []float64) {
	if count <= 1 {
		return
	}
	top := 1
	for top < count {
		top *= 2
	}
	arrivals := make([]float64, count)
	for v := 0; v < count; v++ {
		r := member(v)
		for dist := top / 2; dist >= 1; dist /= 2 {
			switch v % (2 * dist) {
			case 0:
				if c := v + dist; c < count {
					arrivals[c] = f.replaySend(r, member(c), bytes, clock)
				}
			case dist:
				f.replayRecv(r, arrivals[v], bytes, clock, portBusy)
			}
		}
	}
}

// hierWidth mirrors the MPI layer's dispatch: hierarchical collectives
// activate when the topology has a group width strictly between 1 and p.
func (f *Fabric) hierWidth(p int) int {
	if w := f.GroupWidth(); w > 1 && w < p {
		return w
	}
	return 0
}

func maxClock(clock []float64) float64 {
	m := 0.0
	for _, c := range clock {
		if c > m {
			m = c
		}
	}
	return m
}

// AllreduceTime is the exact completion time (max over ranks) of the
// substrate's non-native allreduce of a bytes-sized buffer: the
// hierarchical group schedule on topologies with a group width, the
// classic reduce+broadcast otherwise.
func (f *Fabric) AllreduceTime(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	clock := make([]float64, p)
	portBusy := make([]float64, p)
	if w := f.hierWidth(p); w > 0 {
		g := (p + w - 1) / w
		for base := 0; base < p; base += w {
			n := min(w, p-base)
			f.replayGroupReduce(seqMember(base, 1, n, 0), n, bytes, clock, portBusy)
		}
		f.replayGroupReduce(seqMember(0, w, g, 0), g, bytes, clock, portBusy)
		f.replayGroupBcast(seqMember(0, w, g, 0), g, bytes, clock, portBusy)
		for base := 0; base < p; base += w {
			n := min(w, p-base)
			f.replayGroupBcast(seqMember(base, 1, n, 0), n, bytes, clock, portBusy)
		}
	} else {
		f.replayGroupReduce(seqMember(0, 1, p, 0), p, bytes, clock, portBusy)
		f.replayGroupBcast(seqMember(0, 1, p, 0), p, bytes, clock, portBusy)
	}
	return maxClock(clock)
}

// BcastTime is the exact completion time of the substrate's broadcast
// of bytes from rank 0: hierarchical (leaders, then leaf groups) on
// topologies with a group width, the classic binomial tree otherwise.
func (f *Fabric) BcastTime(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	clock := make([]float64, p)
	portBusy := make([]float64, p)
	if w := f.hierWidth(p); w > 0 {
		g := (p + w - 1) / w
		f.replayGroupBcast(seqMember(0, w, g, 0), g, bytes, clock, portBusy)
		for base := 0; base < p; base += w {
			n := min(w, p-base)
			f.replayGroupBcast(seqMember(base, 1, n, 0), n, bytes, clock, portBusy)
		}
	} else {
		f.replayGroupBcast(seqMember(0, 1, p, 0), p, bytes, clock, portBusy)
	}
	return maxClock(clock)
}

// ReduceTime is the exact completion time of the substrate's
// binomial-tree reduction onto rank 0 (reductions stay flat on every
// topology; only allreduce and bcast go hierarchical).
func (f *Fabric) ReduceTime(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	clock := make([]float64, p)
	portBusy := make([]float64, p)
	f.replayGroupReduce(seqMember(0, 1, p, 0), p, bytes, clock, portBusy)
	return maxClock(clock)
}

// FanInTime is the exact time for ranks 1..p-1 to each deliver bytes
// to rank 0, consumed in source order — the distance- and
// contention-aware counterpart of the approximate FanIn.
func (f *Fabric) FanInTime(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	clock := make([]float64, p)
	portBusy := make([]float64, p)
	for src := 1; src < p; src++ {
		arrival := f.replaySend(src, 0, bytes, clock)
		f.replayRecv(0, arrival, bytes, clock, portBusy)
	}
	return clock[0]
}
