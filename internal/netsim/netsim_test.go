package netsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFabricsValidate(t *testing.T) {
	for _, f := range []*Fabric{FastEthernet(), Ethernet10(), GigabitEthernet()} {
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
	bad := FastEthernet()
	bad.BandwidthBps = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = FastEthernet()
	bad.Hops = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero hops accepted")
	}
	bad = FastEthernet()
	bad.HopLatency = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestPointToPointZeroBytesIsLatencyOnly(t *testing.T) {
	f := FastEthernet()
	want := f.SoftwareOverhead + 2*f.HopLatency
	if got := f.PointToPoint(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("PointToPoint(0) = %g, want %g", got, want)
	}
}

func TestPointToPointMonotoneInSize(t *testing.T) {
	f := FastEthernet()
	prev := 0.0
	for _, n := range []int{0, 1, 100, 1460, 1461, 10000, 1 << 20} {
		got := f.PointToPoint(n)
		if got < prev {
			t.Fatalf("PointToPoint(%d) = %g < previous %g", n, got, prev)
		}
		prev = got
	}
}

func TestLargeMessageApproachesWireBandwidth(t *testing.T) {
	f := FastEthernet()
	// 10 MB on 100 Mb/s with store-and-forward over 2 hops: roughly
	// 2 × 0.84 s; effective payload bandwidth ≈ 100e6/8/2 × payload ratio.
	eff := f.EffectiveBandwidth(10 << 20)
	wire := f.BandwidthBps / 8 / float64(f.Hops)
	if eff > wire {
		t.Fatalf("effective bandwidth %g exceeds wire ceiling %g", eff, wire)
	}
	if eff < wire*0.9 {
		t.Fatalf("effective bandwidth %g too far below ceiling %g for a huge message", eff, wire)
	}
}

func TestFasterFabricIsFaster(t *testing.T) {
	slow, mid, fast := Ethernet10(), FastEthernet(), GigabitEthernet()
	for _, n := range []int{1000, 100000, 1 << 20} {
		if !(slow.PointToPoint(n) > mid.PointToPoint(n) && mid.PointToPoint(n) > fast.PointToPoint(n)) {
			t.Fatalf("bandwidth ordering violated at %d bytes", n)
		}
	}
}

func TestCollectivesDegenerateAtP1(t *testing.T) {
	f := FastEthernet()
	if f.Barrier(1) != 0 || f.Bcast(1, 100) != 0 || f.Allreduce(1, 100) != 0 ||
		f.Allgather(1, 100) != 0 || f.AllToAll(1, 100) != 0 {
		t.Fatal("single-node collectives must cost 0")
	}
}

func TestCollectiveScaling(t *testing.T) {
	f := FastEthernet()
	// log-tree collectives grow ~log p; ring collectives grow ~linearly.
	if f.Bcast(16, 1000) != 4*f.PointToPoint(1000) {
		t.Fatal("Bcast(16) != 4 rounds")
	}
	if f.Barrier(8) != 3*f.PointToPoint(0) {
		t.Fatal("Barrier(8) != 3 rounds")
	}
	if f.Allgather(8, 1000) != 7*f.PointToPoint(1000) {
		t.Fatal("Allgather(8) != 7 rounds")
	}
	if f.Allreduce(4, 64) != f.Reduce(4, 64)+f.Bcast(4, 64) {
		t.Fatal("Allreduce != Reduce + Bcast")
	}
}

func TestCollectivesMonotoneInP(t *testing.T) {
	f := FastEthernet()
	check := func(name string, fn func(p int) float64) {
		prev := -1.0
		for p := 1; p <= 64; p *= 2 {
			v := fn(p)
			if v < prev {
				t.Fatalf("%s not monotone at p=%d: %g < %g", name, p, v, prev)
			}
			prev = v
		}
	}
	check("barrier", func(p int) float64 { return f.Barrier(p) })
	check("bcast", func(p int) float64 { return f.Bcast(p, 4096) })
	check("allreduce", func(p int) float64 { return f.Allreduce(p, 4096) })
	check("allgather", func(p int) float64 { return f.Allgather(p, 4096) })
	check("alltoall", func(p int) float64 { return f.AllToAll(p, 4096) })
}

func TestPointToPointPropertyPositive(t *testing.T) {
	f := FastEthernet()
	fn := func(n int) bool {
		if n < 0 {
			n = -n
		}
		n = n % (1 << 24)
		v := f.PointToPoint(n)
		return v > 0 && !math.IsNaN(v) && !math.IsInf(v, 0)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFramingOverheadCharged(t *testing.T) {
	f := FastEthernet()
	// 1461 bytes needs two frames; must cost more than 1460 by at least a
	// header's worth of wire time.
	d1 := f.PointToPoint(1460)
	d2 := f.PointToPoint(1461)
	headerTime := 78 * 8 / f.BandwidthBps
	if d2-d1 < headerTime {
		t.Fatalf("second frame not charged: Δ=%g", d2-d1)
	}
}
