package netsim

import (
	"math"
	"testing"
)

func TestStarHopsAndPointToPointUnchanged(t *testing.T) {
	// Legacy fabrics are stars: HopsBetween returns Fabric.Hops for
	// every distinct pair and PointToPointRanks computes exactly what
	// PointToPoint does, bit for bit.
	f := FastEthernet()
	if f.Topology != TopoStar {
		t.Fatalf("FastEthernet topology = %v", f.Topology)
	}
	for _, pair := range [][2]int{{0, 1}, {3, 17}, {100, 2}} {
		if got := f.HopsBetween(pair[0], pair[1]); got != f.Hops {
			t.Fatalf("star hops(%d,%d) = %d, want %d", pair[0], pair[1], got, f.Hops)
		}
	}
	if f.HopsBetween(5, 5) != 0 {
		t.Fatal("self distance not 0")
	}
	for _, bytes := range []int{0, 1, 1460, 1461, 1 << 20} {
		a := f.PointToPoint(bytes)
		b := f.PointToPointRanks(2, 9, bytes)
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("star PointToPointRanks(%d B) = %.17g, PointToPoint = %.17g", bytes, b, a)
		}
	}
}

func TestFatTreeHops(t *testing.T) {
	f := FastEthernet()
	f.Topology = TopoFatTree
	f.Radix = 4 // leaf = 2 hosts, pod = 4 hosts, capacity 16
	cases := []struct{ a, b, want int }{
		{0, 1, 2},  // same leaf
		{0, 2, 4},  // same pod, different leaf
		{0, 4, 6},  // different pod
		{5, 4, 2},  // symmetric, same leaf
		{15, 0, 6}, // far corner
	}
	for _, c := range cases {
		if got := f.HopsBetween(c.a, c.b); got != c.want {
			t.Errorf("fattree hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := f.HopsBetween(c.b, c.a); got != c.want {
			t.Errorf("fattree hops(%d,%d) asymmetric", c.b, c.a)
		}
	}
	if got := f.Capacity(); got != 16 {
		t.Fatalf("fattree radix-4 capacity = %d, want 16", got)
	}
	if got := f.GroupWidth(); got != 2 {
		t.Fatalf("fattree radix-4 group width = %d, want 2", got)
	}
}

func TestTorusHops(t *testing.T) {
	f := FastEthernet()
	f.Topology = TopoTorus2D
	f.TorusX, f.TorusY = 4, 3
	cases := []struct{ a, b, want int }{
		{0, 1, 1},  // X neighbour
		{0, 3, 1},  // X wraps: (3,0) is adjacent to (0,0)
		{0, 4, 1},  // Y neighbour
		{0, 8, 1},  // Y wraps on a ring of 3
		{0, 5, 2},  // (1,1)
		{0, 6, 3},  // (2,1): 2 in X + 1 in Y
		{1, 11, 3}, // (1,0) to (3,2): 2 in X, Y wraps to 1
	}
	for _, c := range cases {
		if got := f.HopsBetween(c.a, c.b); got != c.want {
			t.Errorf("torus2d hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if got := f.Capacity(); got != 12 {
		t.Fatalf("4x3 torus capacity = %d", got)
	}
	if got := f.GroupWidth(); got != 4 {
		t.Fatalf("4x3 torus group width = %d", got)
	}

	f3 := FastEthernet()
	f3.Topology = TopoTorus3D
	f3.TorusX, f3.TorusY, f3.TorusZ = 2, 2, 2
	if got := f3.HopsBetween(0, 7); got != 3 {
		t.Fatalf("2x2x2 torus corner distance = %d, want 3", got)
	}
	if got := f3.Capacity(); got != 8 {
		t.Fatalf("2x2x2 torus capacity = %d", got)
	}
}

func TestApplyTopologySizes(t *testing.T) {
	cases := []struct {
		name string
		p    int
	}{
		{"star", 4096}, {"", 1},
		{"fattree", 2}, {"fattree", 64}, {"fattree", 1024}, {"fattree", 4096},
		{"torus", 7}, {"torus2d", 64}, {"torus2d", 1024},
		{"torus3d", 30}, {"torus3d", 4096},
	}
	for _, c := range cases {
		f := FastEthernet()
		if err := ApplyTopology(f, c.name, c.p); err != nil {
			t.Fatalf("ApplyTopology(%q, %d): %v", c.name, c.p, err)
		}
		if cap := f.Capacity(); cap != 0 && cap < c.p {
			t.Errorf("ApplyTopology(%q, %d): capacity %d too small", c.name, c.p, cap)
		}
		if err := f.Validate(); err != nil {
			t.Errorf("ApplyTopology(%q, %d): invalid fabric: %v", c.name, c.p, err)
		}
		if c.name != "star" && c.name != "" && f.Topology == TopoStar {
			t.Errorf("ApplyTopology(%q, %d): still a star", c.name, c.p)
		}
	}
	// The smallest even fat-tree radix covering p: k³/4 ≥ p.
	f := FastEthernet()
	if err := ApplyTopology(f, "fattree", 64); err != nil {
		t.Fatal(err)
	}
	if f.Radix != 8 {
		t.Fatalf("fattree radix for p=64: %d, want 8 (6³/4 = 54 < 64 ≤ 128)", f.Radix)
	}
}

func TestApplyTopologyErrors(t *testing.T) {
	if err := ApplyTopology(FastEthernet(), "hypercube", 8); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if err := ApplyTopology(FastEthernet(), "fattree", 0); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestValidateTopologyShapes(t *testing.T) {
	f := FastEthernet()
	f.Topology = TopoFatTree
	f.Radix = 3 // odd: no half-radix leaf
	if err := f.Validate(); err == nil {
		t.Fatal("odd fat-tree radix accepted")
	}
	g := FastEthernet()
	g.Topology = TopoTorus2D
	g.TorusX, g.TorusY = 4, 0
	if err := g.Validate(); err == nil {
		t.Fatal("zero torus dimension accepted")
	}
	h := FastEthernet()
	h.Topology = Topology(99)
	if err := h.Validate(); err == nil {
		t.Fatal("unknown topology value accepted")
	}
}

func TestPredictorsDegenerateAtP1(t *testing.T) {
	f := FastEthernet()
	for _, topo := range []string{"star", "fattree", "torus2d"} {
		g := FastEthernet()
		if err := ApplyTopology(g, topo, 8); err != nil {
			t.Fatal(err)
		}
		for _, fn := range []func(int, int) float64{g.AllreduceTime, g.BcastTime, g.ReduceTime, g.FanInTime} {
			if got := fn(1, 1024); got != 0 {
				t.Fatalf("%s predictor at p=1 = %g", topo, got)
			}
		}
	}
	_ = f
}

func TestShapedFabricsCostMoreThanStar(t *testing.T) {
	// A fat-tree or torus pays per-hop latency a star doesn't, so its
	// exact collective times must dominate the star's at equal size.
	const p, bytes = 64, 8 << 10
	star := FastEthernet()
	ft := FastEthernet()
	if err := ApplyTopology(ft, "fattree", p); err != nil {
		t.Fatal(err)
	}
	torus := FastEthernet()
	if err := ApplyTopology(torus, "torus2d", p); err != nil {
		t.Fatal(err)
	}
	if star.ReduceTime(p, bytes) > ft.ReduceTime(p, bytes) {
		t.Fatal("fat-tree reduce cheaper than star")
	}
	if star.ReduceTime(p, bytes) > torus.ReduceTime(p, bytes) {
		t.Fatal("torus reduce cheaper than star")
	}
}
