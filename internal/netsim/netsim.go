// Package netsim models the MetaBlade cluster's interconnect: 100 Mb/s
// switched Fast Ethernet in a star topology (paper §3.1), generalized so
// the network-bandwidth ablation can sweep 10/100/1000 Mb/s. The model is
// LogGP-flavoured: a per-message software overhead (the 2001-era TCP/IP +
// MPI stack), a per-hop wire/switch latency, and a per-byte serialization
// cost on each link. The switch is non-blocking (full bisection across
// ports), so simultaneous transfers on distinct port pairs do not contend,
// but a node's single NIC serializes its own traffic.
package netsim

import (
	"fmt"
	"math"
)

// Fabric describes one interconnect.
type Fabric struct {
	Name string
	// BandwidthBps is the per-link data rate in bits per second.
	BandwidthBps float64
	// SoftwareOverhead is the per-message send+receive CPU/stack cost in
	// seconds (TCP/IP + MPI layers dominate on Fast Ethernet).
	SoftwareOverhead float64
	// HopLatency is the one-way wire+switch latency in seconds per hop.
	HopLatency float64
	// Hops between two nodes through the star (node→switch→node = 2).
	Hops int
	// StoreAndForward adds a full serialization delay per intermediate
	// hop, as a 2001-era store-and-forward switch does.
	StoreAndForward bool
	// ReduceOpSecPerElem is the per-element combining cost (seconds per
	// 8-byte element, per tree level) a reduction pays on top of the
	// message transfer — what separates Reduce from Bcast, which moves
	// the same bytes but combines nothing.
	ReduceOpSecPerElem float64
	// PortContention enables the per-port occupancy model in the MPI
	// layer's virtual clock: the switch's store-and-forward egress port
	// serializes concurrent senders to one destination, so fan-in
	// traffic queues instead of landing simultaneously. Off by default
	// so historical (uncontended) numbers stay reproducible bit-for-bit.
	// The analytical formulas that depend on it (FanIn, BcastPipelined)
	// take it into account; the classic formulas are unchanged.
	PortContention bool
	// Topology selects the fabric shape. The zero value, TopoStar, is
	// the paper's single switch: every pair of nodes is Hops apart, so
	// all historical numbers are unchanged. The other shapes make the
	// hop count rank-pair dependent (see HopsBetween) and give the MPI
	// layer a natural group width for hierarchical collectives.
	Topology Topology
	// Radix is the switch port count k of a k-ary fat-tree
	// (TopoFatTree): k/2 hosts per leaf switch, k/2 leaves per pod,
	// k pods — k³/4 hosts. Must be even and ≥ 2.
	Radix int
	// TorusX, TorusY, TorusZ are the torus dimensions (TopoTorus2D uses
	// X×Y, TopoTorus3D uses X×Y×Z). Ranks are laid out x-major.
	TorusX, TorusY, TorusZ int
}

// FastEthernet returns the paper's fabric: 100 Mb/s switched Ethernet with
// a TCP/IP-stack-dominated message overhead.
func FastEthernet() *Fabric {
	return &Fabric{
		Name:             "100 Mb/s switched Fast Ethernet",
		BandwidthBps:     100e6,
		SoftwareOverhead: 70e-6,
		HopLatency:       5e-6,
		Hops:             2,
		StoreAndForward:  true,
		// ~80 Mop/s summing rate for the era's node CPU.
		ReduceOpSecPerElem: 12.5e-9,
	}
}

// Ethernet10 returns plain 10 Mb/s Ethernet (for the bandwidth ablation).
func Ethernet10() *Fabric {
	f := FastEthernet()
	f.Name = "10 Mb/s Ethernet"
	f.BandwidthBps = 10e6
	return f
}

// GigabitEthernet returns 1000 Mb/s Ethernet (for the bandwidth ablation).
func GigabitEthernet() *Fabric {
	f := FastEthernet()
	f.Name = "1000 Mb/s Gigabit Ethernet"
	f.BandwidthBps = 1000e6
	f.SoftwareOverhead = 40e-6
	return f
}

// Validate checks the parameters.
func (f *Fabric) Validate() error {
	if f.BandwidthBps <= 0 {
		return fmt.Errorf("netsim: %s: non-positive bandwidth", f.Name)
	}
	if f.SoftwareOverhead < 0 || f.HopLatency < 0 {
		return fmt.Errorf("netsim: %s: negative latency", f.Name)
	}
	if f.Hops < 1 {
		return fmt.Errorf("netsim: %s: hops must be ≥ 1", f.Name)
	}
	if f.ReduceOpSecPerElem < 0 {
		return fmt.Errorf("netsim: %s: negative reduce op cost", f.Name)
	}
	switch f.Topology {
	case TopoStar:
	case TopoFatTree:
		if f.Radix < 2 || f.Radix%2 != 0 {
			return fmt.Errorf("netsim: %s: fat-tree radix %d must be even and ≥ 2", f.Name, f.Radix)
		}
	case TopoTorus2D:
		if f.TorusX < 1 || f.TorusY < 1 {
			return fmt.Errorf("netsim: %s: torus2d dimensions %dx%d", f.Name, f.TorusX, f.TorusY)
		}
	case TopoTorus3D:
		if f.TorusX < 1 || f.TorusY < 1 || f.TorusZ < 1 {
			return fmt.Errorf("netsim: %s: torus3d dimensions %dx%dx%d", f.Name, f.TorusX, f.TorusY, f.TorusZ)
		}
	default:
		return fmt.Errorf("netsim: %s: unknown topology %d", f.Name, f.Topology)
	}
	return nil
}

// serialize returns the wire time for a payload of the given size on one
// link, including rough framing overhead (Ethernet + IP + TCP headers per
// 1500-byte MTU frame).
func (f *Fabric) serialize(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	const mtu = 1460.0 // payload per frame
	frames := math.Ceil(float64(bytes) / mtu)
	wireBytes := float64(bytes) + frames*78 // header + preamble + gap
	return wireBytes * 8 / f.BandwidthBps
}

// SerializeTime returns the single-link wire time for a payload of the
// given size — the occupancy one message imposes on a switch egress port,
// which is what the contention model charges queued senders.
func (f *Fabric) SerializeTime(bytes int) float64 { return f.serialize(bytes) }

// PointToPoint returns the end-to-end time for one message of the given
// payload size between two nodes.
func (f *Fabric) PointToPoint(bytes int) float64 {
	t := f.SoftwareOverhead + float64(f.Hops)*f.HopLatency
	if f.StoreAndForward {
		// Each hop fully serializes the message.
		t += float64(f.Hops) * f.serialize(bytes)
	} else {
		t += f.serialize(bytes)
	}
	return t
}

// Barrier returns the time for a dissemination barrier over p nodes:
// ceil(log2 p) rounds of zero-payload messages.
func (f *Fabric) Barrier(p int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	return rounds * f.PointToPoint(0)
}

// Bcast returns the time to broadcast bytes from one root to p-1 others
// using a binomial tree.
func (f *Fabric) Bcast(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	return rounds * f.PointToPoint(bytes)
}

// Reduce returns the time for a binomial-tree reduction of bytes to a
// root: the same message structure as Bcast, plus the per-level
// elementwise combining cost (ReduceOpSecPerElem per 8-byte element) a
// receiving node pays before relaying its partial result up the tree.
func (f *Fabric) Reduce(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	rounds := math.Ceil(math.Log2(float64(p)))
	combine := f.ReduceOpSecPerElem * float64(bytes) / 8
	return rounds * (f.PointToPoint(bytes) + combine)
}

// Allreduce returns reduce + broadcast (the MPICH-era algorithm on
// Ethernet for small and medium payloads).
func (f *Fabric) Allreduce(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	return f.Reduce(p, bytes) + f.Bcast(p, bytes)
}

// Allgather returns the time for a ring allgather where every node
// contributes bytes and receives (p-1)·bytes: p-1 rounds of neighbour
// exchanges, all links busy in parallel.
func (f *Fabric) Allgather(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * f.PointToPoint(bytes)
}

// AllToAll returns the time for a full personalized exchange of bytes per
// pair: p-1 rounds, each a simultaneous pairwise exchange (the NIC
// serializes each node's send stream).
func (f *Fabric) AllToAll(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	return float64(p-1) * f.PointToPoint(bytes)
}

// FanIn returns the time for p-1 nodes to deliver bytes each to a single
// destination. Without port contention every message lands after one
// uncontended PointToPoint; with the occupancy model the egress port
// serializes them, so the last message queues behind the other p-2.
func (f *Fabric) FanIn(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	t := f.PointToPoint(bytes)
	if f.PortContention {
		t += float64(p-2) * f.serialize(bytes)
	}
	return t
}

// AllreduceRecDbl returns the time for the native recursive-doubling
// allreduce: log2(q) pairwise exchange rounds over the largest
// power-of-two subset q, plus a fold-in and copy-out round when p is not
// a power of two, with the per-element combine cost paid each round.
func (f *Fabric) AllreduceRecDbl(p, bytes int) float64 {
	if p <= 1 {
		return 0
	}
	q := 1
	rounds := 0.0
	for q*2 <= p {
		q *= 2
		rounds++
	}
	combine := f.ReduceOpSecPerElem * float64(bytes) / 8
	t := rounds * (f.PointToPoint(bytes) + combine)
	if p > q {
		t += 2*f.PointToPoint(bytes) + combine
	}
	return t
}

// BcastPipelined returns the time for the native pipelined ring
// broadcast with the given segment size: the first segment crosses p-1
// ring hops, and each further segment follows one gap behind —
// the per-message software overhead when ports are uncontended, or the
// segment's port occupancy once the contention model serializes
// back-to-back segments into the same port.
func (f *Fabric) BcastPipelined(p, bytes, segBytes int) float64 {
	if p <= 1 || bytes <= 0 {
		return 0
	}
	if segBytes <= 0 || segBytes > bytes {
		segBytes = bytes
	}
	nseg := math.Ceil(float64(bytes) / float64(segBytes))
	gap := f.SoftwareOverhead / 2
	if f.PortContention {
		if s := f.serialize(segBytes); s > gap {
			gap = s
		}
	}
	return float64(p-1)*f.PointToPoint(segBytes) + (nseg-1)*gap
}

// EffectiveBandwidth reports the achieved payload bandwidth (bytes/s) for
// a given message size — useful for validating the model against the
// familiar half-bandwidth point.
func (f *Fabric) EffectiveBandwidth(bytes int) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / f.PointToPoint(bytes)
}
