package mpi

import "fmt"

// Collective tags live in a reserved range so user point-to-point traffic
// (tags ≥ 0) can never collide with them.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
	tagAllreduce
	tagBcastPipe
)

// Op is a reduction operator over float64 elements.
type Op func(a, b float64) float64

// Standard reduction operators.
var (
	Sum Op = func(a, b float64) float64 { return a + b }
	Max Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	Min Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// The collectives come in two layers. The public slice-returning APIs
// (Bcast, Allreduce, Allgather, ...) keep their historical signatures and
// — in the default classic mode — their historical message patterns, so
// virtual times are bit-for-bit what they always were; internally they now
// draw every wire copy from the rank's buffer pool. The Into variants
// (AllreduceInto, BcastInto, AllgatherInto) additionally reduce into
// caller-provided buffers, which is what the hot loops use: a steady-state
// iteration allocates nothing.
//
// Config.Native switches Allreduce/Bcast to dedicated algorithms
// (recursive doubling; pipelined segmented ring) whose virtual-time costs
// follow the corresponding netsim formulas instead of the classic ones.
//
// On fabrics with a topology (fat-tree, torus) Allreduce and Bcast go
// hierarchical automatically: the binomial schedules run over subgroups
// shaped to the fabric's cheapest neighbourhood (netsim.Fabric.GroupWidth)
// — first within each group, then across group leaders. The subgroup
// forms (groupReduceInto/groupBcastInto) generalize the classic
// schedules: over the whole world they send exactly the historical
// message sequence, so flat fabrics are bit-for-bit unchanged, and the
// emergent hierarchical times match netsim's exact predictors
// (AllreduceTime/BcastTime) bit-for-bit.

// groupMember maps virtual rank v of a collective subgroup — the
// arithmetic sequence base, base+stride, … of count ranks, rotated so
// the member at rootIdx is virtual rank 0 — to its world rank. With
// base 0, stride 1, count p and rootIdx root this is exactly the
// classic (rank−root) mod p rotation.
func groupMember(base, stride, count, rootIdx, v int) int {
	return base + stride*((v+rootIdx)%count)
}

// hierWidth reports the first-level group width when the fabric makes
// hierarchical collectives worthwhile (strictly between 1 and p), 0
// otherwise. netsim's exact predictors mirror this dispatch.
func (c *Comm) hierWidth() int {
	f := c.world.fabric
	if f == nil {
		return 0
	}
	if w := f.GroupWidth(); w > 1 && w < c.world.size {
		return w
	}
	return 0
}

// sendDisposableF64 sends a pooled buffer the caller is finished with:
// small payloads take the eager path (copied into a fresh pooled buffer,
// modelling the transport's bounce buffer, and the original is recycled
// immediately); payloads at or above the rendezvous threshold transfer
// ownership without a copy.
func (c *Comm) sendDisposableF64(dst, tag int, buf []float64) {
	if c.wantOwned(8 * len(buf)) {
		c.sendF64(dst, tag, buf, true)
		return
	}
	c.sendF64(dst, tag, buf, false)
	c.pool.releaseF64(buf)
}

// Barrier synchronizes all ranks (dissemination algorithm: ceil(log2 p)
// rounds of pairwise messages).
func (c *Comm) Barrier() {
	prev := c.enterCollective(ctxBarrier)
	defer c.exitCollective(prev)
	p := c.Size()
	for dist := 1; dist < p; dist *= 2 {
		to := (c.rank + dist) % p
		from := (c.rank - dist + p) % p
		if to == c.rank {
			continue
		}
		c.send(to, message{tag: tagBarrier}, true)
		c.recv(from, tagBarrier)
	}
}

// Bcast broadcasts root's buffer to every rank. Every rank passes its
// own buf; non-roots receive into the returned slice (recyclable with
// ReleaseF64). In native mode every rank's buf must have the root's
// length.
func (c *Comm) Bcast(root int, buf []float64) []float64 {
	prev := c.enterCollective(ctxBcast)
	defer c.exitCollective(prev)
	if w := c.hierWidth(); w > 0 {
		out := buf
		if c.rank != root {
			out = c.pool.acquireF64(len(buf))
		}
		c.hierBcastInto(root, out, w)
		return out
	}
	if c.world.cfg.Native {
		out := buf
		if c.rank != root {
			out = c.pool.acquireF64(len(buf))
		}
		c.bcastPipeInto(root, out)
		return out
	}
	p := c.Size()
	if p == 1 {
		return buf
	}
	// Rotate so the root is virtual rank 0.
	vrank := (c.rank - root + p) % p
	data := buf
	// Highest power of two ≥ p.
	top := 1
	for top < p {
		top *= 2
	}
	// Canonical binomial tree: a rank receives exactly once, at the stage
	// matching its highest set bit, then relays at all smaller distances.
	for dist := top / 2; dist >= 1; dist /= 2 {
		switch vrank % (2 * dist) {
		case 0:
			dst := vrank + dist
			if dst < p {
				c.sendF64((dst+root)%p, tagBcast, data, false)
			}
		case dist:
			m := c.recv((vrank-dist+root)%p, tagBcast)
			data = m.f64
		}
	}
	return data
}

// BcastInto broadcasts root's buf into every rank's buf, in place. All
// ranks must pass equal-length buffers.
func (c *Comm) BcastInto(root int, buf []float64) {
	prev := c.enterCollective(ctxBcast)
	defer c.exitCollective(prev)
	if w := c.hierWidth(); w > 0 {
		c.hierBcastInto(root, buf, w)
		return
	}
	if c.world.cfg.Native {
		c.bcastPipeInto(root, buf)
		return
	}
	c.bcastInto(root, buf)
}

// bcastInto is the classic binomial tree, receiving into buf: the
// message sequence is identical to Bcast's, so virtual times match
// bit-for-bit; the received pooled buffer is recycled after the copy.
func (c *Comm) bcastInto(root int, buf []float64) {
	c.groupBcastInto(0, 1, c.Size(), root, buf)
}

// groupBcastInto runs the classic binomial broadcast over a subgroup
// (see groupMember), receiving into buf. Over the whole world it is
// bcastInto, message for message.
func (c *Comm) groupBcastInto(base, stride, count, rootIdx int, buf []float64) {
	if count <= 1 {
		return
	}
	idx := (c.rank - base) / stride
	vrank := (idx - rootIdx + count) % count
	top := 1
	for top < count {
		top *= 2
	}
	for dist := top / 2; dist >= 1; dist /= 2 {
		switch vrank % (2 * dist) {
		case 0:
			if dst := vrank + dist; dst < count {
				c.sendF64(groupMember(base, stride, count, rootIdx, dst), tagBcast, buf, false)
			}
		case dist:
			m := c.recv(groupMember(base, stride, count, rootIdx, vrank-dist), tagBcast)
			c.absorbBcast(buf, m.f64)
		}
	}
}

// absorbBcast copies a received broadcast payload into buf and
// recycles the wire buffer (shared by the blocking and event-mode
// broadcast forms).
func (c *Comm) absorbBcast(buf, wire []float64) {
	if len(wire) != len(buf) {
		panic(fmt.Sprintf("mpi: bcast length mismatch %d vs %d", len(wire), len(buf)))
	}
	copy(buf, wire)
	c.pool.releaseF64(wire)
}

// hierBcastInto is the topology-aware broadcast: the root hands the
// buffer to its group leader, the leaders run a binomial broadcast
// among themselves, then each leader broadcasts within its group — the
// deep (cross-pod, cross-ring) links carry O(log(p/w)) messages
// instead of O(log p).
func (c *Comm) hierBcastInto(root int, buf []float64, w int) {
	p := c.world.size
	rootLeader := (root / w) * w
	if root != rootLeader {
		if c.rank == root {
			c.sendF64(rootLeader, tagBcast, buf, false)
		} else if c.rank == rootLeader {
			m := c.recv(root, tagBcast)
			c.absorbBcast(buf, m.f64)
		}
	}
	base := (c.rank / w) * w
	if c.rank == base {
		g := (p + w - 1) / w
		c.groupBcastInto(0, w, g, rootLeader/w, buf)
	}
	n := min(w, p-base)
	c.groupBcastInto(base, 1, n, 0, buf)
}

// bcastPipeInto is the native broadcast: a pipelined ring with
// Config.SegmentBytes segmentation. Rank root feeds segments around the
// ring; every rank forwards a segment as soon as it lands, so the
// virtual-time cost approaches (p-2+nseg)·PTP(segment) — the
// netsim.BcastPipelined formula — instead of the binomial
// ceil(log2 p)·PTP(total).
func (c *Comm) bcastPipeInto(root int, buf []float64) {
	p := c.Size()
	if p == 1 || len(buf) == 0 {
		return
	}
	seg := c.world.cfg.SegmentBytes / 8
	if seg < 1 {
		seg = 1
	}
	vrank := (c.rank - root + p) % p
	next := (c.rank + 1) % p
	prevRank := (c.rank - 1 + p) % p
	for off := 0; off < len(buf); off += seg {
		end := off + seg
		if end > len(buf) {
			end = len(buf)
		}
		if vrank > 0 {
			m := c.recv(prevRank, tagBcastPipe)
			if len(m.f64) != end-off {
				panic(fmt.Sprintf("mpi: bcast segment mismatch %d vs %d", len(m.f64), end-off))
			}
			copy(buf[off:end], m.f64)
			c.pool.releaseF64(m.f64)
		}
		if vrank < p-1 {
			c.sendF64(next, tagBcastPipe, buf[off:end], false)
		}
	}
}

// Reduce combines elementwise with op onto root (binomial tree). Returns
// the combined slice at root (recyclable with ReleaseF64) and nil
// elsewhere.
func (c *Comm) Reduce(root int, op Op, data []float64) []float64 {
	prev := c.enterCollective(ctxReduce)
	defer c.exitCollective(prev)
	acc := c.pool.copyF64(data)
	if c.reduceIntoDisposable(root, op, acc) {
		return acc
	}
	return nil
}

// ReduceInto combines elementwise with op onto root, in place in buf.
// buf is left combined at root and holds intermediate partials
// elsewhere. Returns true at root.
func (c *Comm) ReduceInto(root int, op Op, buf []float64) bool {
	prev := c.enterCollective(ctxReduce)
	defer c.exitCollective(prev)
	return c.reduceInto(root, op, buf)
}

// reduceInto is the classic binomial reduction folding into buf. The
// message sequence (sizes, order, tags) is identical to the historical
// Reduce, so virtual times match bit-for-bit. Returns true at root.
// buf belongs to the caller, so the non-root send copies it eagerly.
func (c *Comm) reduceInto(root int, op Op, buf []float64) bool {
	return c.groupReduceInto(0, 1, c.Size(), root, op, buf)
}

// groupReduceInto runs the classic binomial reduction over a subgroup
// (see groupMember), folding into buf; returns true on the member at
// rootIdx, which holds the result. Over the whole world it is
// reduceInto, message for message.
func (c *Comm) groupReduceInto(base, stride, count, rootIdx int, op Op, buf []float64) bool {
	if count <= 1 {
		return true
	}
	idx := (c.rank - base) / stride
	vrank := (idx - rootIdx + count) % count
	for dist := 1; dist < count; dist *= 2 {
		if vrank%(2*dist) == 0 {
			src := vrank + dist
			if src < count {
				c.reduceFold(op, buf, groupMember(base, stride, count, rootIdx, src))
			}
		} else {
			c.sendF64(groupMember(base, stride, count, rootIdx, vrank-dist), tagReduce, buf, false)
			return false
		}
	}
	return vrank == 0
}

// hierAllreduceInto is the topology-aware allreduce: reduce within
// each width-w group onto its leader (the group's lowest rank), reduce
// across leaders onto rank 0, broadcast back across leaders, then
// within each group. The first and last stages cross only the fabric's
// cheapest links.
func (c *Comm) hierAllreduceInto(op Op, buf []float64, w int) {
	p := c.world.size
	base := (c.rank / w) * w
	n := min(w, p-base)
	c.groupReduceInto(base, 1, n, 0, op, buf)
	if c.rank == base {
		g := (p + w - 1) / w
		c.groupReduceInto(0, w, g, 0, op, buf)
		c.groupBcastInto(0, w, g, 0, buf)
	}
	c.groupBcastInto(base, 1, n, 0, buf)
}

// reduceIntoDisposable is reduceInto for a pooled buffer the caller
// relinquishes on non-root ranks: the leaf send can transfer ownership
// (rendezvous) when large. Returns true at root, where acc holds the
// result.
func (c *Comm) reduceIntoDisposable(root int, op Op, acc []float64) bool {
	p := c.Size()
	if p == 1 {
		return true
	}
	vrank := (c.rank - root + p) % p
	for dist := 1; dist < p; dist *= 2 {
		if vrank%(2*dist) == 0 {
			src := vrank + dist
			if src < p {
				c.reduceFold(op, acc, (src+root)%p)
			}
		} else {
			dst := vrank - dist
			c.sendDisposableF64((dst+root)%p, tagReduce, acc)
			return false
		}
	}
	return vrank == 0
}

// reduceFold receives a partial result from src and folds it into acc,
// recycling the wire buffer.
func (c *Comm) reduceFold(op Op, acc []float64, src int) {
	m := c.recv(src, tagReduce)
	c.foldReduce(op, acc, m.f64)
}

// foldReduce folds a received partial into acc and recycles the wire
// buffer (shared by the blocking and event-mode reductions).
func (c *Comm) foldReduce(op Op, acc, wire []float64) {
	if len(wire) != len(acc) {
		panic(fmt.Sprintf("mpi: reduce length mismatch %d vs %d", len(wire), len(acc)))
	}
	for i := range acc {
		acc[i] = op(acc[i], wire[i])
	}
	c.pool.releaseF64(wire)
}

// Allreduce combines elementwise with op, result on every rank. The
// returned slice is freshly drawn from the pool (recyclable with
// ReleaseF64). Classic mode is reduce-to-0 + broadcast (the MPICH
// algorithm on Ethernet); native mode is recursive doubling.
func (c *Comm) Allreduce(op Op, data []float64) []float64 {
	prev := c.enterCollective(ctxAllreduce)
	defer c.exitCollective(prev)
	acc := c.pool.copyF64(data)
	c.allreduceInto(op, acc)
	return acc
}

// AllreduceInto combines elementwise with op in place: every rank's buf
// holds the combined result on return. The hot-loop form — a
// steady-state iteration allocates nothing.
func (c *Comm) AllreduceInto(op Op, buf []float64) {
	prev := c.enterCollective(ctxAllreduce)
	defer c.exitCollective(prev)
	c.allreduceInto(op, buf)
}

func (c *Comm) allreduceInto(op Op, buf []float64) {
	if w := c.hierWidth(); w > 0 {
		c.hierAllreduceInto(op, buf, w)
		return
	}
	if c.world.cfg.Native {
		c.allreduceRecDbl(op, buf)
		return
	}
	c.reduceInto(0, op, buf)
	c.bcastInto(0, buf)
}

// allreduceRecDbl is the native allreduce: recursive doubling over the
// largest power-of-two subset, with the leftover ranks folded in before
// and copied out after (the MPICH scheme). Partial results are always
// combined in canonical block order — op(lower block, higher block) — so
// every rank evaluates the same reduction tree and the result is
// bit-identical across ranks even for non-associative float addition.
func (c *Comm) allreduceRecDbl(op Op, buf []float64) {
	p := c.Size()
	if p == 1 {
		return
	}
	q := 1
	for q*2 <= p {
		q *= 2
	}
	extra := p - q
	r := c.rank
	newrank := r - extra
	if r < 2*extra {
		if r%2 == 0 {
			// Fold this rank's block into r+1, then sit out the exchange.
			c.sendF64(r+1, tagAllreduce, buf, false)
			newrank = -1
		} else {
			m := c.recv(r-1, tagAllreduce)
			if len(m.f64) != len(buf) {
				panic(fmt.Sprintf("mpi: allreduce length mismatch %d vs %d", len(m.f64), len(buf)))
			}
			for i := range buf {
				buf[i] = op(m.f64[i], buf[i]) // r-1 is the lower block
			}
			c.pool.releaseF64(m.f64)
			newrank = r / 2
		}
	}
	if newrank >= 0 {
		for dist := 1; dist < q; dist *= 2 {
			pn := newrank ^ dist
			partner := pn + extra
			if pn < extra {
				partner = pn*2 + 1
			}
			c.sendF64(partner, tagAllreduce, buf, false)
			m := c.recv(partner, tagAllreduce)
			if len(m.f64) != len(buf) {
				panic(fmt.Sprintf("mpi: allreduce length mismatch %d vs %d", len(m.f64), len(buf)))
			}
			if newrank < pn {
				for i := range buf {
					buf[i] = op(buf[i], m.f64[i])
				}
			} else {
				for i := range buf {
					buf[i] = op(m.f64[i], buf[i])
				}
			}
			c.pool.releaseF64(m.f64)
		}
	}
	if r < 2*extra {
		if r%2 == 0 {
			m := c.recv(r+1, tagAllreduce)
			copy(buf, m.f64)
			c.pool.releaseF64(m.f64)
		} else {
			c.sendF64(r-1, tagAllreduce, buf, false)
		}
	}
}

// AllreduceScalar is Allreduce for a single value, staged through a
// per-rank scratch word so it allocates nothing.
func (c *Comm) AllreduceScalar(op Op, v float64) float64 {
	prev := c.enterCollective(ctxAllreduce)
	defer c.exitCollective(prev)
	c.scratch[0] = v
	c.allreduceInto(op, c.scratch[:1])
	return c.scratch[0]
}

// Gather collects every rank's slice at root, concatenated in rank order.
// Non-roots receive nil; the rows of the returned slice are recyclable
// with ReleaseF64.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	prev := c.enterCollective(ctxGather)
	defer c.exitCollective(prev)
	if c.rank != root {
		c.sendF64(root, tagGather, data, false)
		return nil
	}
	out := make([][]float64, c.Size())
	out[root] = c.pool.copyF64(data)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		out[r] = c.recv(r, tagGather).f64
	}
	return out
}

// Scatter distributes root's per-rank slices; returns this rank's piece
// (recyclable with ReleaseF64).
func (c *Comm) Scatter(root int, pieces [][]float64) []float64 {
	prev := c.enterCollective(ctxScatter)
	defer c.exitCollective(prev)
	if c.rank == root {
		if len(pieces) != c.Size() {
			panic("mpi: scatter needs one piece per rank")
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			c.sendF64(r, tagScatter, pieces[r], false)
		}
		return c.pool.copyF64(pieces[root])
	}
	return c.recv(root, tagScatter).f64
}

// Allgather gives every rank the concatenation (in rank order) of every
// rank's data, via a ring. The rows of the returned slice are recyclable
// with ReleaseF64.
func (c *Comm) Allgather(data []float64) [][]float64 {
	prev := c.enterCollective(ctxAllgather)
	defer c.exitCollective(prev)
	p := c.Size()
	out := make([][]float64, p)
	out[c.rank] = c.pool.copyF64(data)
	cur := out[c.rank]
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		c.sendF64(right, tagAllgather, cur, false)
		m := c.recv(left, tagAllgather)
		src := (c.rank - step - 1 + p) % p
		out[src] = m.f64
		cur = m.f64
	}
	return out
}

// AllgatherInto gives every rank the concatenation (in rank order) of
// every rank's equal-length data, written into the caller's flat out
// buffer (len(out) == p*len(data)). Same ring and message sequence as
// Allgather — virtual times match bit-for-bit — but the relay buffers
// are recycled (or ownership-transferred when large), so a steady-state
// iteration allocates nothing.
func (c *Comm) AllgatherInto(data []float64, out []float64) {
	prev := c.enterCollective(ctxAllgather)
	defer c.exitCollective(prev)
	p := c.Size()
	n := len(data)
	if len(out) != p*n {
		panic(fmt.Sprintf("mpi: allgather out length %d, want %d", len(out), p*n))
	}
	copy(out[c.rank*n:], data)
	if p == 1 {
		return
	}
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	cur := data
	owned := false
	for step := 0; step < p-1; step++ {
		if owned {
			c.sendDisposableF64(right, tagAllgather, cur)
		} else {
			c.sendF64(right, tagAllgather, cur, false)
		}
		m := c.recv(left, tagAllgather)
		if len(m.f64) != n {
			panic(fmt.Sprintf("mpi: allgather length mismatch %d vs %d", len(m.f64), n))
		}
		src := (c.rank - step - 1 + p) % p
		copy(out[src*n:], m.f64)
		cur = m.f64
		owned = true
	}
	if owned {
		c.pool.releaseF64(cur)
	}
}

// AllgatherInts is Allgather for int64 payloads; rows are recyclable
// with ReleaseI64.
func (c *Comm) AllgatherInts(data []int64) [][]int64 {
	prev := c.enterCollective(ctxAllgather)
	defer c.exitCollective(prev)
	p := c.Size()
	out := make([][]int64, p)
	out[c.rank] = c.pool.copyI64(data)
	cur := out[c.rank]
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		c.sendI64(right, tagAllgather, cur, false)
		m := c.recv(left, tagAllgather)
		src := (c.rank - step - 1 + p) % p
		out[src] = m.i64
		cur = m.i64
	}
	return out
}

// AlltoallInts performs a personalized exchange: element send[d] goes to
// rank d; the result's element s came from rank s. Used by the IS bucket
// redistribution. Rows of the result are pooled buffers — recycle them
// with ReleaseI64 when done to keep the exchange allocation-free.
func (c *Comm) AlltoallInts(send [][]int64) [][]int64 {
	prev := c.enterCollective(ctxAlltoall)
	defer c.exitCollective(prev)
	p := c.Size()
	if len(send) != p {
		panic("mpi: alltoall needs one slice per rank")
	}
	out := make([][]int64, p)
	out[c.rank] = c.pool.copyI64(send[c.rank])
	for step := 1; step < p; step++ {
		dst := (c.rank + step) % p
		src := (c.rank - step + p) % p
		c.sendI64(dst, tagAlltoall, send[dst], false)
		out[src] = c.recv(src, tagAlltoall).i64
	}
	return out
}
