package mpi

import "fmt"

// Collective tags live in a reserved range so user point-to-point traffic
// (tags ≥ 0) can never collide with them.
const (
	tagBarrier = -1 - iota
	tagBcast
	tagReduce
	tagGather
	tagScatter
	tagAllgather
	tagAlltoall
)

// Op is a reduction operator over float64 elements.
type Op func(a, b float64) float64

// Standard reduction operators.
var (
	Sum Op = func(a, b float64) float64 { return a + b }
	Max Op = func(a, b float64) float64 {
		if a > b {
			return a
		}
		return b
	}
	Min Op = func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
)

// Barrier synchronizes all ranks (dissemination algorithm: ceil(log2 p)
// rounds of pairwise messages).
func (c *Comm) Barrier() {
	p := c.Size()
	for dist := 1; dist < p; dist *= 2 {
		to := (c.rank + dist) % p
		from := (c.rank - dist + p) % p
		if to == c.rank {
			continue
		}
		c.send(to, message{tag: tagBarrier})
		c.recv(from, tagBarrier)
	}
}

// Bcast broadcasts root's buffer to every rank (binomial tree). Every
// rank passes its own buf; non-roots receive into the returned slice.
func (c *Comm) Bcast(root int, buf []float64) []float64 {
	p := c.Size()
	if p == 1 {
		return buf
	}
	// Rotate so the root is virtual rank 0.
	vrank := (c.rank - root + p) % p
	data := buf
	// Highest power of two ≥ p.
	top := 1
	for top < p {
		top *= 2
	}
	// Canonical binomial tree: a rank receives exactly once, at the stage
	// matching its highest set bit, then relays at all smaller distances.
	for dist := top / 2; dist >= 1; dist /= 2 {
		switch vrank % (2 * dist) {
		case 0:
			dst := vrank + dist
			if dst < p {
				c.send((dst+root)%p, message{tag: tagBcast, f64: append([]float64(nil), data...)})
			}
		case dist:
			m := c.recv((vrank-dist+root)%p, tagBcast)
			data = m.f64
		}
	}
	return data
}

// Reduce combines elementwise with op onto root (binomial tree). Returns
// the combined slice at root and nil elsewhere.
func (c *Comm) Reduce(root int, op Op, data []float64) []float64 {
	p := c.Size()
	acc := append([]float64(nil), data...)
	if p == 1 {
		return acc
	}
	vrank := (c.rank - root + p) % p
	for dist := 1; dist < p; dist *= 2 {
		if vrank%(2*dist) == 0 {
			src := vrank + dist
			if src < p {
				m := c.recv((src+root)%p, tagReduce)
				if len(m.f64) != len(acc) {
					panic(fmt.Sprintf("mpi: reduce length mismatch %d vs %d", len(m.f64), len(acc)))
				}
				for i := range acc {
					acc[i] = op(acc[i], m.f64[i])
				}
			}
		} else {
			dst := vrank - dist
			c.send((dst+root)%p, message{tag: tagReduce, f64: acc})
			return nil
		}
	}
	if vrank == 0 {
		return acc
	}
	return nil
}

// Allreduce combines elementwise with op, result on every rank
// (reduce to rank 0, then broadcast — the MPICH algorithm on Ethernet).
func (c *Comm) Allreduce(op Op, data []float64) []float64 {
	out := c.Reduce(0, op, data)
	if out == nil {
		out = make([]float64, len(data))
	}
	return c.Bcast(0, out)
}

// AllreduceScalar is Allreduce for a single value.
func (c *Comm) AllreduceScalar(op Op, v float64) float64 {
	return c.Allreduce(op, []float64{v})[0]
}

// Gather collects every rank's slice at root, concatenated in rank order.
// Non-roots receive nil.
func (c *Comm) Gather(root int, data []float64) [][]float64 {
	if c.rank != root {
		c.send(root, message{tag: tagGather, f64: append([]float64(nil), data...)})
		return nil
	}
	out := make([][]float64, c.Size())
	out[root] = append([]float64(nil), data...)
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		out[r] = c.recv(r, tagGather).f64
	}
	return out
}

// Scatter distributes root's per-rank slices; returns this rank's piece.
func (c *Comm) Scatter(root int, pieces [][]float64) []float64 {
	if c.rank == root {
		if len(pieces) != c.Size() {
			panic("mpi: scatter needs one piece per rank")
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			c.send(r, message{tag: tagScatter, f64: append([]float64(nil), pieces[r]...)})
		}
		return append([]float64(nil), pieces[root]...)
	}
	return c.recv(root, tagScatter).f64
}

// Allgather gives every rank the concatenation (in rank order) of every
// rank's data, via a ring.
func (c *Comm) Allgather(data []float64) [][]float64 {
	p := c.Size()
	out := make([][]float64, p)
	out[c.rank] = append([]float64(nil), data...)
	cur := out[c.rank]
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		c.send(right, message{tag: tagAllgather, f64: append([]float64(nil), cur...)})
		m := c.recv(left, tagAllgather)
		src := (c.rank - step - 1 + p) % p
		out[src] = m.f64
		cur = m.f64
	}
	return out
}

// AllgatherInts is Allgather for int64 payloads.
func (c *Comm) AllgatherInts(data []int64) [][]int64 {
	p := c.Size()
	out := make([][]int64, p)
	out[c.rank] = append([]int64(nil), data...)
	cur := out[c.rank]
	right := (c.rank + 1) % p
	left := (c.rank - 1 + p) % p
	for step := 0; step < p-1; step++ {
		c.send(right, message{tag: tagAllgather, i64: append([]int64(nil), cur...)})
		m := c.recv(left, tagAllgather)
		src := (c.rank - step - 1 + p) % p
		out[src] = m.i64
		cur = m.i64
	}
	return out
}

// AlltoallInts performs a personalized exchange: element send[d] goes to
// rank d; the result's element s came from rank s. Used by the IS bucket
// redistribution.
func (c *Comm) AlltoallInts(send [][]int64) [][]int64 {
	p := c.Size()
	if len(send) != p {
		panic("mpi: alltoall needs one slice per rank")
	}
	out := make([][]int64, p)
	out[c.rank] = append([]int64(nil), send[c.rank]...)
	for step := 1; step < p; step++ {
		dst := (c.rank + step) % p
		src := (c.rank - step + p) % p
		c.send(dst, message{tag: tagAlltoall, i64: append([]int64(nil), send[dst]...)})
		out[src] = c.recv(src, tagAlltoall).i64
	}
	return out
}
