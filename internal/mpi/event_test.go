package mpi

import (
	"math"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"
	"time"

	"repro/internal/netsim"
)

// mkEventWorld builds an event-mode world over the given fabric.
func mkEventWorld(t *testing.T, p int, f *netsim.Fabric) *World {
	t.Helper()
	w, err := NewWorldWithConfig(p, Config{Fabric: f, Event: true})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunEventRequiresEventWorld(t *testing.T) {
	w, err := NewWorldWithConfig(2, Config{ChannelDepth: testDepth})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunEvent(func(c *Comm) Proc {
		return ProcFunc(func(c *Comm) (bool, error) { return true, nil })
	}); err == nil || !strings.Contains(err.Error(), "goroutine-mode world") {
		t.Fatalf("RunEvent on a goroutine world: %v", err)
	}
	we := mkEventWorld(t, 2, nil)
	if err := we.Run(func(c *Comm) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "RunEvent") {
		t.Fatalf("Run on an event world: %v", err)
	}
}

func TestBlockingRecvOnEventWorldErrors(t *testing.T) {
	w := mkEventWorld(t, 2, nil)
	err := w.RunEvent(func(c *Comm) Proc {
		return ProcFunc(func(c *Comm) (bool, error) {
			if c.Rank() == 0 {
				c.Recv(1, 0) // blocking receive is a programming error here
			}
			return true, nil
		})
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") ||
		!strings.Contains(err.Error(), "blocking recv") {
		t.Fatalf("blocking recv on event world: %v", err)
	}
}

// TestEventDeadlockDiagnosticMatchesWatchdog pins the satellite
// contract: a stuck event loop surfaces the same per-rank pending-op
// diagnostic the goroutine watchdog produces, from the same
// describeRanks state. The event loop detects the deadlock
// deterministically (empty ready heap), no wall-clock wait needed.
func TestEventDeadlockDiagnosticMatchesWatchdog(t *testing.T) {
	we := mkEventWorld(t, 2, nil)
	errEvent := we.RunEvent(func(c *Comm) Proc {
		return ProcFunc(func(c *Comm) (bool, error) {
			if c.Rank() == 0 {
				if _, ok := c.TryRecvF64(1, 42); !ok { // never sent
					return false, nil
				}
			}
			return true, nil
		})
	})
	if errEvent == nil {
		t.Fatal("deadlocked event run did not error")
	}

	wg, err := NewWorldWithConfig(2, Config{
		WatchdogTimeout: 50 * time.Millisecond,
		ChannelDepth:    testDepth,
	})
	if err != nil {
		t.Fatal(err)
	}
	errGo := wg.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			c.Recv(1, 42)
		}
		return nil
	})
	if errGo == nil {
		t.Fatal("deadlocked goroutine run did not error")
	}

	// Both schedulers must name the stuck rank and its pending op
	// identically.
	const diag = "rank 0: blocked in recv(src=1, tag=42)"
	for name, e := range map[string]error{"event": errEvent, "goroutine": errGo} {
		if !strings.Contains(e.Error(), diag) {
			t.Errorf("%s diagnostic missing %q: %v", name, diag, e)
		}
	}
	if !strings.Contains(errEvent.Error(), "deadlock") {
		t.Errorf("event error does not say deadlock: %v", errEvent)
	}
}

// TestEventCollectivesMatchBlocking drives the resumable collective
// state machines on event worlds and checks values and virtual times
// bit-match the blocking collectives on goroutine worlds, across world
// sizes (including non-powers of two) and both allreduce algorithms.
func TestEventCollectivesMatchBlocking(t *testing.T) {
	const n = 96
	for _, native := range []bool{false, true} {
		for p := 1; p <= 17; p += 2 {
			goOut := make([][]float64, p)
			wg, err := NewWorldWithConfig(p, Config{
				Fabric: netsim.FastEthernet(), Native: native, ChannelDepth: testDepth,
			})
			if err != nil {
				t.Fatal(err)
			}
			err = wg.Run(func(c *Comm) error {
				buf := make([]float64, n)
				for i := range buf {
					buf[i] = float64(c.Rank()*n + i)
				}
				c.AllreduceInto(Sum, buf)
				goOut[c.Rank()] = buf
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}

			evOut := make([][]float64, p)
			we, err := NewWorldWithConfig(p, Config{
				Fabric: netsim.FastEthernet(), Native: native, Event: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			err = we.RunEvent(func(c *Comm) Proc {
				buf := make([]float64, n)
				for i := range buf {
					buf[i] = float64(c.Rank()*n + i)
				}
				var ar AllreduceState
				started := false
				return ProcFunc(func(c *Comm) (bool, error) {
					if !started {
						ar.Start(c, Sum, buf)
						started = true
					}
					if !ar.Step(c) {
						return false, nil
					}
					evOut[c.Rank()] = buf
					return true, nil
				})
			})
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < p; r++ {
				for i := range goOut[r] {
					if math.Float64bits(goOut[r][i]) != math.Float64bits(evOut[r][i]) {
						t.Fatalf("native=%v p=%d rank %d elem %d: %v vs %v",
							native, p, r, i, goOut[r][i], evOut[r][i])
					}
				}
			}
			if math.Float64bits(wg.MaxTime()) != math.Float64bits(we.MaxTime()) {
				t.Fatalf("native=%v p=%d: makespan %v vs %v", native, p, wg.MaxTime(), we.MaxTime())
			}
		}
	}
}

// TestEventLoopSteadyStateAllocFree pins the event scheduler's
// steady-state allocation behavior: after the first run fills the
// buffer pools and inbox lanes, further event-loop traffic allocates
// (nearly) nothing — the msgQueue deques recycle in place.
func TestEventLoopSteadyStateAllocFree(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const p, n, iters = 8, 64, 300
	w := mkEventWorld(t, p, netsim.FastEthernet())
	sweep := func(iters int) {
		err := w.RunEvent(func(c *Comm) Proc {
			buf := make([]float64, n)
			var ar AllreduceState
			i, inStep := 0, false
			return ProcFunc(func(c *Comm) (bool, error) {
				for ; i < iters; i++ {
					if !inStep {
						buf[0] = float64(c.Rank() + i)
						ar.Start(c, Sum, buf)
						inStep = true
					}
					if !ar.Step(c) {
						return false, nil
					}
					inStep = false
				}
				return true, nil
			})
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	sweep(8) // warmup: pools and inbox lanes reach equilibrium
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sweep(iters)
	runtime.ReadMemStats(&after)
	got := after.Mallocs - before.Mallocs
	// Per-run setup (procs, scheduler, closures) is O(p) allocations;
	// the p*iters allreduce messages themselves must allocate nothing.
	if got > 8*p+iters/10 {
		t.Fatalf("event-loop steady state: %d mallocs over %d iterations", got, iters)
	}
}

// TestExactPredictorsMatchEmergent pins the closed forms in netsim
// against the emergent virtual times of the substrate: AllreduceTime,
// BcastTime, ReduceTime and FanInTime must equal the measured makespan
// bit-for-bit on every topology, with and without port contention,
// across payload sizes (8 B – 4 MB) and world sizes 2..64.
func TestExactPredictorsMatchEmergent(t *testing.T) {
	mkFab := func(topo string, contended bool, p int) *netsim.Fabric {
		f := netsim.FastEthernet()
		f.PortContention = contended
		if err := netsim.ApplyTopology(f, topo, p); err != nil {
			t.Fatal(err)
		}
		return f
	}
	measure := func(f *netsim.Fabric, p int, prog func(c *Comm)) float64 {
		w, err := NewWorldWithConfig(p, Config{Fabric: f, ChannelDepth: testDepth})
		if err != nil {
			t.Fatal(err)
		}
		err = w.Run(func(c *Comm) error { prog(c); return nil })
		if err != nil {
			t.Fatal(err)
		}
		return w.MaxTime()
	}
	for _, topo := range []string{"star", "fattree", "torus2d", "torus3d"} {
		for _, contended := range []bool{false, true} {
			for _, p := range []int{2, 3, 5, 8, 16, 24, 64} {
				for _, elems := range []int{1, 512, 4096, 512 << 10} {
					if elems == 512<<10 && p > 8 {
						continue // 4 MB buffers: keep host memory sane
					}
					bytes := 8 * elems
					f := mkFab(topo, contended, p)
					cases := []struct {
						name string
						want float64
						prog func(c *Comm)
					}{
						{"allreduce", f.AllreduceTime(p, bytes), func(c *Comm) {
							buf := make([]float64, elems)
							c.AllreduceInto(Sum, buf)
						}},
						{"bcast", f.BcastTime(p, bytes), func(c *Comm) {
							buf := make([]float64, elems)
							c.BcastInto(0, buf)
						}},
						{"reduce", f.ReduceTime(p, bytes), func(c *Comm) {
							buf := make([]float64, elems)
							c.ReduceInto(0, Sum, buf)
						}},
						{"fanin", f.FanInTime(p, bytes), func(c *Comm) {
							if c.Rank() == 0 {
								for src := 1; src < p; src++ {
									c.ReleaseF64(c.Recv(src, 0))
								}
							} else {
								c.Send(0, 0, make([]float64, elems))
							}
						}},
					}
					for _, tc := range cases {
						got := measure(f, p, tc.prog)
						if math.Float64bits(got) != math.Float64bits(tc.want) {
							t.Errorf("%s/%s contended=%v p=%d bytes=%d: emergent %.17g, predicted %.17g",
								topo, tc.name, contended, p, bytes, got, tc.want)
						}
					}
				}
			}
		}
	}
}
