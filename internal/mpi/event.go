package mpi

import "fmt"

// The event-driven rank scheduler. Goroutine-per-rank caps practical
// world sizes around a few hundred ranks: size² channels and a host
// stack per rank. In event mode ranks are resumable state machines
// (Proc) dispatched from a min-heap keyed on the virtual clock, sends
// never block, and a blocked receive parks the rank until the awaited
// sender delivers. The dispatch order cannot change results: each
// rank consumes messages in its own program order (tryRecv pops the
// per-sender FIFO), and the contention model's port horizon advances
// in exactly that order, so virtual times, results and counters are
// bit-identical to World.Run.

// msgQueue is one (src → dst) FIFO inbox lane: a deque with a head
// index, recycled in place when drained so steady-state traffic
// allocates nothing.
type msgQueue struct {
	buf  []message
	head int
}

func (q *msgQueue) push(m message) { q.buf = append(q.buf, m) }

func (q *msgQueue) pop() (message, bool) {
	if q.head >= len(q.buf) {
		return message{}, false
	}
	m := q.buf[q.head]
	q.buf[q.head] = message{} // drop payload references
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return m, true
}

// deliver appends m to dst's inbox lane from src and wakes dst if it
// is parked waiting on exactly this sender.
func (w *World) deliver(src, dst int, m message) {
	qm := w.queues[dst]
	if qm == nil {
		qm = make(map[int]*msgQueue)
		w.queues[dst] = qm
	}
	q := qm[src]
	if q == nil {
		q = &msgQueue{}
		qm[src] = q
	}
	q.push(m)
	d := w.comms[dst]
	if w.sched != nil && d.waitOp.Load() == 1 && int(d.waitPeer.Load()) == src {
		w.sched.wake(dst)
	}
}

// Proc is a resumable rank program for RunEvent. Resume advances the
// rank as far as it can and returns done=true when the program is
// complete. Returning done=false means the rank is parked on a
// pending receive (a TryRecv that reported false); the scheduler
// resumes it after the awaited sender delivers. A Proc that returns
// false without a pending receive is never resumed again and shows up
// in the deadlock diagnostic.
type Proc interface {
	Resume(c *Comm) (done bool, err error)
}

// ProcFunc adapts a function to the Proc interface.
type ProcFunc func(c *Comm) (bool, error)

// Resume implements Proc.
func (f ProcFunc) Resume(c *Comm) (bool, error) { return f(c) }

// evScheduler is the ready-rank min-heap, keyed (virtual clock, rank)
// so dispatch is deterministic; the key is a policy choice only —
// any order yields bit-identical results (see the package comment).
type evScheduler struct {
	w      *World
	heap   []int
	inHeap []bool
}

func (s *evScheduler) less(a, b int) bool {
	na, nb := s.w.comms[a].now, s.w.comms[b].now
	return na < nb || (na == nb && a < b)
}

func (s *evScheduler) wake(rank int) {
	if s.inHeap[rank] {
		return
	}
	s.inHeap[rank] = true
	s.heap = append(s.heap, rank)
	s.up(len(s.heap) - 1)
}

func (s *evScheduler) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.heap[i], s.heap[parent]) {
			return
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *evScheduler) pop() int {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	if last > 0 {
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && s.less(s.heap[l], s.heap[small]) {
				small = l
			}
			if r < last && s.less(s.heap[r], s.heap[small]) {
				small = r
			}
			if small == i {
				break
			}
			s.heap[i], s.heap[small] = s.heap[small], s.heap[i]
			i = small
		}
	}
	s.inHeap[top] = false
	return top
}

// EventMode reports whether this world runs the event-driven
// scheduler (drive it with RunEvent) instead of goroutine ranks.
func (w *World) EventMode() bool { return w.cfg.Event }

// resumeProc wraps one dispatch so a panicking rank is converted into
// an error naming it, exactly as the goroutine path does.
func resumeProc(p Proc, c *Comm) (done bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("mpi: rank %d panicked: %v", c.rank, r)
		}
	}()
	return p.Resume(c)
}

// RunEvent executes one Proc per rank on the event loop and waits for
// completion. mk is called once per rank, in rank order, to build its
// state machine. The first rank error (or panic, converted) aborts
// the run. An empty ready heap with unfinished ranks is a deadlock:
// RunEvent returns the same per-rank pending-op diagnostic the
// goroutine watchdog produces — and the wall-clock watchdog stays
// armed as a safety net against a stuck (livelocked) event loop.
func (w *World) RunEvent(mk func(c *Comm) Proc) error {
	if !w.cfg.Event {
		return fmt.Errorf("mpi: RunEvent on a goroutine-mode world (set Config.Event)")
	}
	var stopWatch chan struct{}
	if w.cfg.WatchdogTimeout > 0 {
		w.stallCh = make(chan struct{})
		stopWatch = make(chan struct{})
		go w.watch(w.cfg.WatchdogTimeout, w.stallCh, stopWatch)
		defer close(stopWatch)
	} else {
		w.stallCh = nil
	}
	procs := make([]Proc, w.size)
	for r := range procs {
		procs[r] = mk(w.comms[r])
	}
	sched := &evScheduler{
		w:      w,
		heap:   make([]int, 0, w.size),
		inHeap: make([]bool, w.size),
	}
	w.sched = sched
	defer func() { w.sched = nil }()
	for r := 0; r < w.size; r++ {
		sched.wake(r)
	}
	finished := 0
	done := make([]bool, w.size)
	for len(sched.heap) > 0 {
		if w.stallCh != nil {
			select {
			case <-w.stallCh:
				return fmt.Errorf("mpi: watchdog: no progress for %v; event loop stalled; world state: %s",
					w.cfg.WatchdogTimeout, w.stallDiag)
			default:
			}
		}
		r := sched.pop()
		if done[r] {
			continue
		}
		fin, err := resumeProc(procs[r], w.comms[r])
		if err != nil {
			return err
		}
		if fin {
			done[r] = true
			w.comms[r].waitOp.Store(0)
			finished++
		}
	}
	if finished < w.size {
		return fmt.Errorf("mpi: deadlock: %d of %d ranks blocked with no deliverable message; world state: %s",
			w.size-finished, w.size, w.describeRanks())
	}
	return nil
}

// TryRecvF64 is the event-mode receive for external state machines:
// the payload from src if one is queued (owned by the caller, as
// Recv), or ok=false after recording the pending operation — return
// from Resume and retry on the next dispatch. On a goroutine-mode
// world it blocks like Recv and always reports ok=true, so the same
// Proc code runs under either scheduler.
func (c *Comm) TryRecvF64(src, tag int) (data []float64, ok bool) {
	m, ok := c.tryRecv(src, tag)
	if !ok {
		return nil, false
	}
	return m.f64, true
}

// TryRecvI64 is TryRecvF64 for int64 payloads.
func (c *Comm) TryRecvI64(src, tag int) (data []int64, ok bool) {
	m, ok := c.tryRecv(src, tag)
	if !ok {
		return nil, false
	}
	return m.i64, true
}

// TryRecvBytes is TryRecvF64 for raw byte payloads.
func (c *Comm) TryRecvBytes(src, tag int) (data []byte, ok bool) {
	m, ok := c.tryRecv(src, tag)
	if !ok {
		return nil, false
	}
	return m.bytes, true
}
