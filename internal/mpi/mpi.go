// Package mpi is the message-passing substrate the paper's parallel codes
// (the treecode and the NAS benchmarks) run on. Ranks are goroutines that
// exchange real data over per-pair FIFO channels, so parallel results are
// genuinely computed in parallel; each rank additionally carries a virtual
// clock, advanced by modelled compute time (via the CPU op-mix models) and
// by message costs from a netsim.Fabric, so a run yields both a correct
// answer and a simulated parallel runtime on the modelled cluster.
//
// Collectives are implemented on top of point-to-point sends (binomial
// trees, rings, dissemination barriers), so their virtual-time behaviour
// emerges from the same fabric model the analytical formulas in netsim
// describe — and the two are cross-checked in tests.
package mpi

import (
	"fmt"
	"sync"

	"repro/internal/netsim"
	"repro/internal/obs"
)

// message is one in-flight point-to-point transfer.
type message struct {
	tag     int
	f64     []float64
	i64     []int64
	bytes   []byte
	arrival float64 // virtual time the payload is fully received
}

func (m *message) payloadBytes() int {
	return 8*len(m.f64) + 8*len(m.i64) + len(m.bytes)
}

// World is a communicator universe of Size ranks.
type World struct {
	size   int
	fabric *netsim.Fabric // nil = zero-cost network
	chans  []chan message // chans[src*size+dst]
	comms  []*Comm
	// Tracer, when non-nil, records every point-to-point send as a span
	// in the simulated-cluster time domain (obs.PidSim, virtual seconds
	// rendered as microsecond ticks; tid = sending rank). Collectives
	// are built on sends, so their structure emerges in the trace. Set
	// before Run.
	Tracer *obs.Tracer
}

// ChannelDepth bounds in-flight messages per (src,dst) pair; deep enough
// that the eager sends our codes use never deadlock.
const ChannelDepth = 4096

// NewWorld creates a world. fabric may be nil for an untimed run.
func NewWorld(size int, fabric *netsim.Fabric) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size %d", size)
	}
	if fabric != nil {
		if err := fabric.Validate(); err != nil {
			return nil, err
		}
	}
	w := &World{size: size, fabric: fabric}
	w.chans = make([]chan message, size*size)
	for i := range w.chans {
		w.chans[i] = make(chan message, ChannelDepth)
	}
	w.comms = make([]*Comm, size)
	for r := 0; r < size; r++ {
		w.comms[r] = &Comm{world: w, rank: r}
	}
	return w, nil
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Run executes fn on every rank concurrently and waits for completion. It
// returns the first error any rank reported (panics are converted to
// errors so a failing rank cannot take down the test harness silently).
func (w *World) Run(fn func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = fn(w.comms[rank])
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MaxTime returns the parallel makespan: the maximum virtual clock over
// all ranks (call after Run).
func (w *World) MaxTime() float64 {
	m := 0.0
	for _, c := range w.comms {
		if c.now > m {
			m = c.now
		}
	}
	return m
}

// TotalBytes returns the bytes sent across all ranks (call after Run).
func (w *World) TotalBytes() int64 {
	var n int64
	for _, c := range w.comms {
		n += c.bytesSent
	}
	return n
}

// TotalMessages returns messages sent across all ranks (call after Run).
func (w *World) TotalMessages() int64 {
	var n int64
	for _, c := range w.comms {
		n += c.msgsSent
	}
	return n
}

// Comm is one rank's endpoint.
type Comm struct {
	world     *World
	rank      int
	now       float64 // virtual time, seconds
	bytesSent int64
	msgsSent  int64
}

// Rank returns this rank's id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.world.size }

// Now returns the rank's virtual clock.
func (c *Comm) Now() float64 { return c.now }

// AddCompute advances the virtual clock by modelled computation time.
func (c *Comm) AddCompute(seconds float64) {
	if seconds < 0 {
		panic("mpi: negative compute time")
	}
	c.now += seconds
}

func (c *Comm) chanTo(dst int) chan message {
	return c.world.chans[c.rank*c.world.size+dst]
}

func (c *Comm) chanFrom(src int) chan message {
	return c.world.chans[src*c.world.size+c.rank]
}

func (c *Comm) send(dst int, m message) {
	if dst < 0 || dst >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d sends to invalid rank %d", c.rank, dst))
	}
	if dst == c.rank {
		panic("mpi: self-send not supported; use local data")
	}
	start := c.now
	if f := c.world.fabric; f != nil {
		m.arrival = c.now + f.PointToPoint(m.payloadBytes())
		// The sender's CPU is busy for the software half of the overhead.
		c.now += f.SoftwareOverhead / 2
	} else {
		m.arrival = c.now
	}
	if t := c.world.Tracer; t != nil {
		t.Complete(obs.PidSim, c.rank, "mpi", "send",
			start*1e6, (m.arrival-start)*1e6,
			map[string]any{"dst": dst, "tag": m.tag, "bytes": m.payloadBytes()})
	}
	c.bytesSent += int64(m.payloadBytes())
	c.msgsSent++
	c.chanTo(dst) <- m
}

func (c *Comm) recv(src, tag int) message {
	if src < 0 || src >= c.world.size {
		panic(fmt.Sprintf("mpi: rank %d receives from invalid rank %d", c.rank, src))
	}
	m := <-c.chanFrom(src)
	if m.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, m.tag))
	}
	if m.arrival > c.now {
		c.now = m.arrival
	}
	return m
}

// Send transmits float64 data to dst with a tag. The slice is copied, so
// the caller may reuse it.
func (c *Comm) Send(dst, tag int, data []float64) {
	c.send(dst, message{tag: tag, f64: append([]float64(nil), data...)})
}

// Recv receives float64 data from src; the tag must match the next
// message in FIFO order (our codes use deterministic matching).
func (c *Comm) Recv(src, tag int) []float64 {
	return c.recv(src, tag).f64
}

// SendInts transmits int64 data.
func (c *Comm) SendInts(dst, tag int, data []int64) {
	c.send(dst, message{tag: tag, i64: append([]int64(nil), data...)})
}

// RecvInts receives int64 data.
func (c *Comm) RecvInts(src, tag int) []int64 {
	return c.recv(src, tag).i64
}

// SendBytes transmits raw bytes (for encoded structures).
func (c *Comm) SendBytes(dst, tag int, data []byte) {
	c.send(dst, message{tag: tag, bytes: append([]byte(nil), data...)})
}

// RecvBytes receives raw bytes.
func (c *Comm) RecvBytes(src, tag int) []byte {
	return c.recv(src, tag).bytes
}

// Sendrecv exchanges float64 payloads with a partner without deadlock.
func (c *Comm) Sendrecv(partner, tag int, data []float64) []float64 {
	c.Send(partner, tag, data)
	return c.Recv(partner, tag)
}

// worldMetrics is the World telemetry vocabulary. The byte/message
// counters are per-world totals, so gathering the worlds of a CPU-count
// sweep accumulates traffic across the sweep; the makespan gauge keeps
// the maximum gathered value.
var worldMetrics = []obs.Metric{
	{Name: "mpi.bytes.total", Kind: obs.KindCounter, Unit: "bytes", Help: "payload bytes sent across all ranks"},
	{Name: "mpi.messages.total", Kind: obs.KindCounter, Help: "messages sent across all ranks"},
	{Name: "mpi.time.max", Kind: obs.KindGauge, Unit: "s", Help: "parallel makespan: max rank virtual clock"},
	{Name: "mpi.ranks", Kind: obs.KindGauge, Help: "world size of the last gathered world"},
}

// Describe implements obs.Source.
func (w *World) Describe() []obs.Metric { return worldMetrics }

// Collect implements obs.Source: the deprecated-but-kept accessors
// MaxTime/TotalBytes/TotalMessages remain thin views over the same
// numbers. Call after Run.
func (w *World) Collect(s *obs.Snapshot) {
	s.AddCounter("mpi.bytes.total", "bytes", "payload bytes sent across all ranks", uint64(w.TotalBytes()))
	s.AddCounter("mpi.messages.total", "", "messages sent across all ranks", uint64(w.TotalMessages()))
	s.MaxGauge("mpi.time.max", "s", "parallel makespan: max rank virtual clock", w.MaxTime())
	s.SetGauge("mpi.ranks", "", "world size of the last gathered world", float64(w.size))
}
